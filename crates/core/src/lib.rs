//! # vnettracer — efficient and programmable packet tracing for
//! virtualized networks
//!
//! A from-scratch reproduction of **vNetTracer** (Suo, Zhao, Chen, Rao —
//! IEEE ICDCS 2018): an eBPF-based tracing framework that follows
//! individual packets across the protection-domain boundaries of a
//! virtualized network (guest OS ↔ hypervisor ↔ virtual switches ↔
//! overlay devices) with negligible overhead, reconfigurable at runtime.
//!
//! The architecture mirrors the paper's Fig. 2:
//!
//! * [`dispatcher`] — the master-side *control data dispatcher* formats
//!   user input (filter rules, tracepoints, actions, global config) into
//!   JSON control packages, one per monitored node;
//! * [`agent`] — per-node daemons compile each trace spec to eBPF
//!   ([`compile`]), load it through the verifier, attach it at kprobes /
//!   kretprobes / device taps, and periodically dump the kernel-side perf
//!   buffers;
//! * [`collector`] — the master-side *raw data collector* ingests record
//!   batches into a per-tracepoint trace database (`vnet-tsdb`) and
//!   doubles as a heartbeat monitor;
//! * [`record`] / [`packet_id`] — the 4-byte per-packet trace ID embedded
//!   in TCP options or appended to UDP payloads, which is what lets
//!   records from isolated domains be joined;
//! * [`clock_sync`] — Cristian's-algorithm skew estimation for
//!   cross-machine alignment;
//! * [`metrics`] / [`analysis`] — offline computation of throughput,
//!   latency (and its end-to-end decomposition), jitter and packet loss.
//!
//! The traced "virtualized network" is the deterministic simulator in
//! `vnet-sim`; the eBPF runtime is `vnet-ebpf`. See `DESIGN.md` at the
//! repository root for the full substitution map against the paper's
//! testbed.
//!
//! ## Quickstart
//!
//! The repository's `examples/quickstart.rs` walks through the paper's
//! §III-A example — measuring latency between two VXLAN devices of a
//! multi-host container network:
//!
//! ```
//! use vnettracer::config::{Action, ControlPackage, FilterRule, HookSpec, TraceSpec};
//!
//! // 1. Describe what to trace (the user input of §III-A).
//! let spec = TraceSpec {
//!     name: "flannel1_rx".into(),
//!     node: "server1".into(),
//!     hook: HookSpec::DeviceRx("flannel.1".into()),
//!     filter: FilterRule::udp_flow(
//!         ("10.32.0.2".parse().unwrap(), 9000),
//!         ("10.40.0.2".parse().unwrap(), 7),
//!     ),
//!     action: Action::RecordPacketInfo,
//! };
//! // 2. The dispatcher ships it as a formatted control package…
//! let package = ControlPackage::new(vec![spec]);
//! let json = package.to_json();
//! assert!(json.contains("flannel1_rx"));
//! // 3. …agents install it into the live network; see the examples for
//! //    the full deploy / run / collect / analyze cycle.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod analysis;
pub mod clock_sync;
pub mod collector;
pub mod compile;
pub mod config;
pub mod dispatcher;
pub mod error;
pub mod metrics;
pub mod modules;
pub mod packet_id;
pub mod record;
pub mod tracer;

pub use agent::{Agent, ScriptId, ScriptStats};
pub use clock_sync::{estimate_skew, SkewEstimate, SkewSample};
pub use collector::{Collector, IngestSubscriber};
pub use config::{
    Action, ControlPackage, FilterRule, GlobalConfig, HookSpec, TraceSpec, TracerConfig,
};
pub use dispatcher::Dispatcher;
pub use error::{Result, TracerError};
pub use modules::{MetricSpec, Module, ModuleRegistry, ModuleScope, OvsTap, TapSpec};
pub use record::TraceRecord;
pub use tracer::{DeployedScript, VNetTracer};
