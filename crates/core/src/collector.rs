//! The raw-data collector (master side).
//!
//! "The raw data collector also executes on the master node. It collects
//! the raw tracing data from the agents and performs offline analysis
//! based on the tracing data. … As the raw data collector periodically
//! receives tracing data from the agents, it also acts as a heartbeat
//! monitor to guarantee that the agents work properly." (§III-A, §III-C)

use std::collections::HashMap;

use vnet_sim::time::{SimDuration, SimTime};
use vnet_tsdb::TraceDb;

use crate::record::TraceRecord;

#[derive(Debug, Clone, Copy)]
struct AgentHealth {
    last_seq: u64,
    last_seen: SimTime,
}

/// The collector: ingests agent batches into the trace database and
/// monitors agent liveness.
#[derive(Debug, Default)]
pub struct Collector {
    db: TraceDb,
    health: HashMap<String, AgentHealth>,
    records_ingested: u64,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests a batch of `(table, record)` pairs from `node`'s agent,
    /// which doubles as a heartbeat.
    pub fn ingest(
        &mut self,
        node: &str,
        heartbeat_seq: u64,
        batch: Vec<(String, TraceRecord)>,
        now: SimTime,
    ) {
        self.heartbeat(node, heartbeat_seq, now);
        for (table, record) in batch {
            self.records_ingested += 1;
            self.db.insert(record.to_point(&table, node));
        }
    }

    /// Records a standalone heartbeat from `node`.
    pub fn heartbeat(&mut self, node: &str, seq: u64, now: SimTime) {
        self.health.insert(
            node.to_owned(),
            AgentHealth {
                last_seq: seq,
                last_seen: now,
            },
        );
    }

    /// Agents that have not been heard from within `timeout` of `now`.
    pub fn silent_agents(&self, now: SimTime, timeout: SimDuration) -> Vec<String> {
        let mut out: Vec<String> = self
            .health
            .iter()
            .filter(|(_, h)| now.saturating_since(h.last_seen) > timeout)
            .map(|(n, _)| n.clone())
            .collect();
        out.sort();
        out
    }

    /// Last heartbeat sequence number seen from `node`.
    pub fn last_heartbeat(&self, node: &str) -> Option<u64> {
        self.health.get(node).map(|h| h.last_seq)
    }

    /// Total records ingested.
    pub fn records_ingested(&self) -> u64 {
        self.records_ingested
    }

    /// The trace database.
    pub fn db(&self) -> &TraceDb {
        &self.db
    }

    /// Consumes the collector, returning the database.
    pub fn into_db(self) -> TraceDb {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts: u64) -> TraceRecord {
        TraceRecord {
            timestamp_ns: ts,
            trace_id: 7,
            flags: 1,
            ..Default::default()
        }
    }

    #[test]
    fn ingest_fills_tables() {
        let mut c = Collector::new();
        c.ingest(
            "server1",
            1,
            vec![("tp_a".into(), record(10)), ("tp_b".into(), record(20))],
            SimTime::from_micros(1),
        );
        assert_eq!(c.records_ingested(), 2);
        assert_eq!(c.db().table("tp_a").unwrap().len(), 1);
        assert_eq!(c.db().table("tp_b").unwrap().len(), 1);
        let p = &c.db().table("tp_a").unwrap().points()[0];
        assert_eq!(p.tag_value("node"), Some("server1"));
    }

    #[test]
    fn heartbeat_monitoring() {
        let mut c = Collector::new();
        c.heartbeat("a", 1, SimTime::from_millis(0));
        c.heartbeat("b", 1, SimTime::from_millis(100));
        let silent = c.silent_agents(SimTime::from_millis(150), SimDuration::from_millis(60));
        assert_eq!(silent, vec!["a".to_owned()]);
        assert_eq!(c.last_heartbeat("a"), Some(1));
        assert_eq!(c.last_heartbeat("zzz"), None);
        // Agent `a` reports again and is healthy; `b` (last seen at
        // 100ms) has now gone silent.
        c.heartbeat("a", 2, SimTime::from_millis(160));
        assert_eq!(
            c.silent_agents(SimTime::from_millis(200), SimDuration::from_millis(60)),
            vec!["b".to_owned()]
        );
    }

    #[test]
    fn into_db_transfers_ownership() {
        let mut c = Collector::new();
        c.ingest("n", 1, vec![("t".into(), record(5))], SimTime::ZERO);
        let db = c.into_db();
        assert_eq!(db.len(), 1);
    }
}
