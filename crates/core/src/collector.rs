//! The raw-data collector (master side).
//!
//! "The raw data collector also executes on the master node. It collects
//! the raw tracing data from the agents and performs offline analysis
//! based on the tracing data. … As the raw data collector periodically
//! receives tracing data from the agents, it also acts as a heartbeat
//! monitor to guarantee that the agents work properly." (§III-A, §III-C)
//!
//! The collector ingests whole [`RecordBatch`]es through
//! [`Collector::ingest_batch`] — one call per agent per collection cycle
//! — and keeps per-agent ingest statistics (records, batches, bytes,
//! perf-ring losses, heartbeat lag) that [`Collector::stats`] exposes as
//! the tracer's self-observability surface.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use vnet_sim::time::{SimDuration, SimTime};
use vnet_tsdb::{RecordBatch, StorageStats, TraceDb, COMPACT_RECORD_BYTES};

use crate::record::TraceRecord;

/// An online consumer of the collector's ingest stream.
///
/// Subscribers registered via [`Collector::subscribe`] see every record
/// batch *at ingest time* — before it disappears into the trace
/// database — plus every agent heartbeat. This is the hook a streaming
/// analysis engine (e.g. `vnet-live`) attaches to: it can maintain
/// windowed metrics incrementally instead of rescanning the database,
/// and derive watermarks from the heartbeat stream.
pub trait IngestSubscriber: fmt::Debug {
    /// Called once per ingested batch, before the heartbeat it carries
    /// is forwarded (so watermark-style consumers see the records ahead
    /// of the frontier advance that covers them). `lost_records` is the
    /// agent's cumulative perf-ring loss counter; `now` is the master
    /// clock at ingest.
    fn on_batch(
        &mut self,
        node: &str,
        heartbeat_seq: u64,
        batch: &RecordBatch,
        lost_records: u64,
        now: SimTime,
    );

    /// Called on every heartbeat (standalone or batch-borne). Default:
    /// ignored.
    fn on_heartbeat(&mut self, node: &str, seq: u64, now: SimTime) {
        let _ = (node, seq, now);
    }
}

/// Running ingest totals, kept per agent and summed for the collector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Records ingested into the database.
    pub records: u64,
    /// Batches (or legacy per-record calls) ingested.
    pub batches: u64,
    /// Wire bytes those records represent.
    pub bytes: u64,
}

impl IngestStats {
    fn add(&mut self, records: u64, bytes: u64) {
        self.records += records;
        self.batches += 1;
        self.bytes += bytes;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct AgentHealth {
    last_seq: u64,
    last_seen: SimTime,
    lost_records: u64,
    stats: IngestStats,
}

/// One agent's row in the collector's stats report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentStatus {
    /// The agent's node name.
    pub node: String,
    /// Last heartbeat sequence number received.
    pub last_seq: u64,
    /// Time since the last heartbeat.
    pub lag: SimDuration,
    /// Records the agent reported lost to perf-ring overflow.
    pub lost_records: u64,
    /// Ingest totals for this agent.
    pub stats: IngestStats,
}

/// Snapshot of the collector's self-observability counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectorStats {
    /// Ingest totals across all agents.
    pub totals: IngestStats,
    /// Total records lost to perf-ring overflow across all agents.
    pub lost_records: u64,
    /// Per-agent status rows, sorted by node name.
    pub agents: Vec<AgentStatus>,
    /// Segment-store state when the trace database is disk-backed
    /// (`None` for the in-memory store): segments, WAL backlog, seal
    /// and compaction counters.
    pub storage: Option<StorageStats>,
}

/// The collector: ingests agent batches into the trace database and
/// monitors agent liveness.
#[derive(Debug, Default)]
pub struct Collector {
    db: TraceDb,
    health: HashMap<String, AgentHealth>,
    records_ingested: u64,
    subscribers: Vec<Rc<RefCell<dyn IngestSubscriber>>>,
}

impl Collector {
    /// Creates an empty collector over an in-memory database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collector over an existing database — e.g. one opened
    /// on a directory with [`TraceDb::open`], so every ingested batch is
    /// journaled and sealed to disk.
    pub fn with_db(db: TraceDb) -> Self {
        Collector {
            db,
            ..Self::default()
        }
    }

    /// Registers an online subscriber; every subsequent batch and
    /// heartbeat is forwarded to it at ingest time. The caller keeps its
    /// own `Rc` to query the subscriber's state between cycles.
    pub fn subscribe(&mut self, subscriber: Rc<RefCell<dyn IngestSubscriber>>) {
        self.subscribers.push(subscriber);
    }

    /// Number of registered ingest subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Ingests a whole record batch from `node`'s agent, which doubles as
    /// a heartbeat. `lost_records` is the agent's cumulative perf-ring
    /// loss counter, carried alongside the batch. Returns the number of
    /// records ingested.
    pub fn ingest_batch(
        &mut self,
        node: &str,
        heartbeat_seq: u64,
        batch: &RecordBatch,
        lost_records: u64,
        now: SimTime,
    ) -> u64 {
        let ingested = self.db.insert_batch(batch);
        self.records_ingested += ingested;
        for sub in &self.subscribers {
            sub.borrow_mut()
                .on_batch(node, heartbeat_seq, batch, lost_records, now);
        }
        // The heartbeat is notified after the batch it rode in on: it
        // asserts "nothing below `now` remains on this agent", which only
        // holds once the batch has been delivered — subscribers deriving
        // watermarks from heartbeats would otherwise count the batch's
        // own records as late.
        self.heartbeat(node, heartbeat_seq, now);
        let health = self.health.get_mut(node).expect("heartbeat inserted it");
        health.lost_records = lost_records;
        health.stats.add(ingested, ingested * COMPACT_RECORD_BYTES);
        ingested
    }

    /// Ingests a batch of `(table, record)` pairs from `node`'s agent,
    /// which doubles as a heartbeat — the legacy single-record path,
    /// which materializes one point per record.
    pub fn ingest(
        &mut self,
        node: &str,
        heartbeat_seq: u64,
        batch: Vec<(String, TraceRecord)>,
        now: SimTime,
    ) {
        self.heartbeat(node, heartbeat_seq, now);
        let count = batch.len() as u64;
        for (table, record) in batch {
            self.records_ingested += 1;
            self.db.insert(record.to_point(&table, node));
        }
        let health = self.health.get_mut(node).expect("heartbeat inserted it");
        health.stats.add(count, count * COMPACT_RECORD_BYTES);
    }

    /// Records a standalone heartbeat from `node`.
    pub fn heartbeat(&mut self, node: &str, seq: u64, now: SimTime) {
        let health = self.health.entry(node.to_owned()).or_default();
        health.last_seq = seq;
        health.last_seen = now;
        for sub in &self.subscribers {
            sub.borrow_mut().on_heartbeat(node, seq, now);
        }
    }

    /// Agents that have not been heard from within `timeout` of `now`.
    pub fn silent_agents(&self, now: SimTime, timeout: SimDuration) -> Vec<String> {
        let mut out: Vec<String> = self
            .health
            .iter()
            .filter(|(_, h)| now.saturating_since(h.last_seen) > timeout)
            .map(|(n, _)| n.clone())
            .collect();
        out.sort();
        out
    }

    /// Last heartbeat sequence number seen from `node`.
    pub fn last_heartbeat(&self, node: &str) -> Option<u64> {
        self.health.get(node).map(|h| h.last_seq)
    }

    /// Total records ingested.
    pub fn records_ingested(&self) -> u64 {
        self.records_ingested
    }

    /// Snapshot of ingest totals and per-agent status at time `now`
    /// (heartbeat lag is computed against it).
    pub fn stats(&self, now: SimTime) -> CollectorStats {
        let mut agents: Vec<AgentStatus> = self
            .health
            .iter()
            .map(|(node, h)| AgentStatus {
                node: node.clone(),
                last_seq: h.last_seq,
                lag: now.saturating_since(h.last_seen),
                lost_records: h.lost_records,
                stats: h.stats,
            })
            .collect();
        agents.sort_by(|a, b| a.node.cmp(&b.node));
        let mut totals = IngestStats::default();
        let mut lost_records = 0;
        for a in &agents {
            totals.records += a.stats.records;
            totals.batches += a.stats.batches;
            totals.bytes += a.stats.bytes;
            lost_records += a.lost_records;
        }
        CollectorStats {
            totals,
            lost_records,
            agents,
            storage: self.db.storage_stats(),
        }
    }

    /// The trace database.
    pub fn db(&self) -> &TraceDb {
        &self.db
    }

    /// Mutably borrows the trace database — e.g. to
    /// [`flush`](TraceDb::flush) a disk-backed store before shutdown.
    pub fn db_mut(&mut self) -> &mut TraceDb {
        &mut self.db
    }

    /// Consumes the collector, returning the database.
    pub fn into_db(self) -> TraceDb {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts: u64) -> TraceRecord {
        TraceRecord {
            timestamp_ns: ts,
            trace_id: 7,
            flags: 1,
            ..Default::default()
        }
    }

    #[test]
    fn ingest_fills_tables() {
        let mut c = Collector::new();
        c.ingest(
            "server1",
            1,
            vec![("tp_a".into(), record(10)), ("tp_b".into(), record(20))],
            SimTime::from_micros(1),
        );
        assert_eq!(c.records_ingested(), 2);
        assert_eq!(c.db().table("tp_a").unwrap().len(), 1);
        assert_eq!(c.db().table("tp_b").unwrap().len(), 1);
        let table = c.db().table("tp_a").unwrap();
        let entries = table.entries();
        assert_eq!(entries[0].tag("node").as_deref(), Some("server1"));
    }

    #[test]
    fn ingest_batch_fills_shards_and_stats() {
        let mut c = Collector::new();
        let mut batch = RecordBatch::new();
        batch.push("tp_a", "server1", record(10).to_compact());
        batch.push("tp_a", "server1", record(20).to_compact());
        batch.push("tp_b", "server1", record(30).to_compact());
        let n = c.ingest_batch("server1", 1, &batch, 2, SimTime::from_micros(5));
        assert_eq!(n, 3);
        assert_eq!(c.records_ingested(), 3);
        assert_eq!(c.db().table("tp_a").unwrap().len(), 2);
        assert_eq!(c.db().table("tp_a").unwrap().shards().len(), 1);
        assert_eq!(c.last_heartbeat("server1"), Some(1));

        let stats = c.stats(SimTime::from_micros(9));
        assert_eq!(stats.totals.records, 3);
        assert_eq!(stats.totals.batches, 1);
        assert_eq!(stats.totals.bytes, 3 * COMPACT_RECORD_BYTES);
        assert_eq!(stats.lost_records, 2);
        assert_eq!(stats.agents.len(), 1);
        let a = &stats.agents[0];
        assert_eq!(a.node, "server1");
        assert_eq!(a.last_seq, 1);
        assert_eq!(a.lag, SimDuration::from_micros(4));
        assert_eq!(a.lost_records, 2);
    }

    #[test]
    fn stats_aggregate_multiple_agents_sorted() {
        let mut c = Collector::new();
        let mut batch = RecordBatch::new();
        batch.push("tp", "n2", record(1).to_compact());
        c.ingest_batch("n2", 1, &batch, 0, SimTime::from_micros(1));
        batch.clear();
        batch.push("tp", "n1", record(2).to_compact());
        batch.push("tp", "n1", record(3).to_compact());
        c.ingest_batch("n1", 4, &batch, 1, SimTime::from_micros(2));

        let stats = c.stats(SimTime::from_micros(2));
        assert_eq!(stats.totals.records, 3);
        assert_eq!(stats.totals.batches, 2);
        assert_eq!(stats.lost_records, 1);
        let nodes: Vec<&str> = stats.agents.iter().map(|a| a.node.as_str()).collect();
        assert_eq!(nodes, vec!["n1", "n2"], "sorted by node");
        assert_eq!(stats.agents[0].last_seq, 4);
        assert_eq!(stats.agents[0].lag, SimDuration::ZERO);
        // The two shards of table "tp" keep node streams separate.
        assert_eq!(c.db().table("tp").unwrap().shards().len(), 2);
    }

    #[test]
    fn heartbeat_monitoring() {
        let mut c = Collector::new();
        c.heartbeat("a", 1, SimTime::from_millis(0));
        c.heartbeat("b", 1, SimTime::from_millis(100));
        let silent = c.silent_agents(SimTime::from_millis(150), SimDuration::from_millis(60));
        assert_eq!(silent, vec!["a".to_owned()]);
        assert_eq!(c.last_heartbeat("a"), Some(1));
        assert_eq!(c.last_heartbeat("zzz"), None);
        // Agent `a` reports again and is healthy; `b` (last seen at
        // 100ms) has now gone silent.
        c.heartbeat("a", 2, SimTime::from_millis(160));
        assert_eq!(
            c.silent_agents(SimTime::from_millis(200), SimDuration::from_millis(60)),
            vec!["b".to_owned()]
        );
    }

    #[derive(Debug, Default)]
    struct CountingSub {
        batches: u64,
        records: u64,
        heartbeats: u64,
        last_now: SimTime,
    }

    impl IngestSubscriber for CountingSub {
        fn on_batch(
            &mut self,
            _node: &str,
            _seq: u64,
            batch: &RecordBatch,
            _lost: u64,
            now: SimTime,
        ) {
            self.batches += 1;
            self.records += batch.len() as u64;
            self.last_now = now;
        }

        fn on_heartbeat(&mut self, _node: &str, _seq: u64, _now: SimTime) {
            self.heartbeats += 1;
        }
    }

    #[test]
    fn subscribers_see_batches_and_heartbeats_at_ingest() {
        let mut c = Collector::new();
        let sub = std::rc::Rc::new(std::cell::RefCell::new(CountingSub::default()));
        c.subscribe(sub.clone());
        assert_eq!(c.subscriber_count(), 1);

        let mut batch = RecordBatch::new();
        batch.push("tp", "n1", record(10).to_compact());
        batch.push("tp", "n1", record(20).to_compact());
        c.ingest_batch("n1", 1, &batch, 0, SimTime::from_micros(3));
        c.heartbeat("n1", 2, SimTime::from_micros(5));

        let s = sub.borrow();
        assert_eq!(s.batches, 1);
        assert_eq!(s.records, 2);
        // The batch-borne heartbeat and the standalone one both arrive.
        assert_eq!(s.heartbeats, 2);
        assert_eq!(s.last_now, SimTime::from_micros(3));
    }

    #[test]
    fn into_db_transfers_ownership() {
        let mut c = Collector::new();
        c.ingest("n", 1, vec![("t".into(), record(5))], SimTime::ZERO);
        let db = c.into_db();
        assert_eq!(db.len(), 1);
    }
}
