//! The `VNetTracer` façade: dispatcher + agents + collector wired
//! together (Fig. 2 of the paper).

use std::collections::HashMap;

use vnet_sim::world::World;
use vnet_tsdb::{RecordBatch, TraceDb};

use crate::agent::{Agent, ScriptId, ScriptStats};
use crate::collector::{Collector, CollectorStats};
use crate::config::ControlPackage;
use crate::dispatcher::Dispatcher;
use crate::error::{Result, TracerError};
use crate::metrics;

/// A handle to one deployed script: the node it runs on and its id there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployedScript {
    /// Script (table) name.
    pub name: String,
    /// Node name.
    pub node: String,
    /// Agent-local script id.
    pub id: ScriptId,
}

/// Run statistics of one deployed script, with its deployment identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptRunStats {
    /// Script (table) name.
    pub name: String,
    /// Node name.
    pub node: String,
    /// The script's execution counters.
    pub stats: ScriptStats,
}

/// The whole tracing system: a control-data dispatcher and raw-data
/// collector on the master, plus one agent per monitored node.
///
/// # Examples
///
/// See the crate-level documentation and `examples/quickstart.rs` for an
/// end-to-end walkthrough.
#[derive(Debug, Default)]
pub struct VNetTracer {
    dispatcher: Dispatcher,
    agents: HashMap<String, Agent>,
    collector: Collector,
    deployed: Vec<DeployedScript>,
    batch: RecordBatch,
}

impl VNetTracer {
    /// Creates a tracer with no agents.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracer whose collector writes into an existing database
    /// — typically a disk-backed one from [`TraceDb::open`], so every
    /// collected batch is journaled to the write-ahead log and sealed
    /// into columnar segments as it grows.
    pub fn with_db(db: TraceDb) -> Self {
        VNetTracer {
            collector: Collector::with_db(db),
            ..Self::default()
        }
    }

    /// Registers an agent for its node. Replaces any previous agent with
    /// the same node name.
    pub fn add_agent(&mut self, agent: Agent) {
        self.agents.insert(agent.node_name().to_owned(), agent);
    }

    /// Borrows an agent by node name.
    pub fn agent(&self, node: &str) -> Option<&Agent> {
        self.agents.get(node)
    }

    /// Mutably borrows an agent by node name.
    pub fn agent_mut(&mut self, node: &str) -> Option<&mut Agent> {
        self.agents.get_mut(node)
    }

    /// Deploys a control package: the dispatcher formats per-node control
    /// messages (JSON), each agent parses its message and installs its
    /// scripts into the live world.
    ///
    /// # Errors
    ///
    /// Returns a [`TracerError`] if validation, compilation or
    /// installation fails. Scripts installed before the failure stay
    /// installed (matching the incremental nature of runtime
    /// reconfiguration); call [`VNetTracer::undeploy_all`] to roll back.
    pub fn deploy(
        &mut self,
        world: &mut World,
        package: &ControlPackage,
    ) -> Result<Vec<DeployedScript>> {
        let messages = self.dispatcher.dispatch(package)?;
        let mut newly = Vec::new();
        for message in messages {
            let agent = self
                .agents
                .get_mut(&message.node)
                .ok_or_else(|| TracerError::UnknownNode(message.node.clone()))?;
            let sub = ControlPackage::from_json(&message.payload).map_err(TracerError::Config)?;
            for spec in &sub.traces {
                let id = agent.install_with_config(world, spec, &sub.global)?;
                let handle = DeployedScript {
                    name: spec.name.clone(),
                    node: message.node.clone(),
                    id,
                };
                self.deployed.push(handle.clone());
                newly.push(handle);
            }
        }
        Ok(newly)
    }

    /// Detaches every deployed script, flushing pending kernel buffers to
    /// the collector first so no records are lost.
    pub fn undeploy_all(&mut self, world: &mut World) {
        self.collect(world);
        for handle in self.deployed.drain(..) {
            if let Some(agent) = self.agents.get_mut(&handle.node) {
                let _ = agent.uninstall(world, handle.id);
            }
        }
    }

    /// Detaches one set of deployed scripts (e.g. everything a profile's
    /// `deploy` call returned), flushing pending kernel buffers to the
    /// collector first. Handles that are not (or no longer) deployed are
    /// ignored, so detach is idempotent.
    pub fn undeploy(&mut self, world: &mut World, handles: &[DeployedScript]) {
        self.collect(world);
        for handle in handles {
            let Some(i) = self.deployed.iter().position(|d| d == handle) else {
                continue;
            };
            self.deployed.remove(i);
            if let Some(agent) = self.agents.get_mut(&handle.node) {
                let _ = agent.uninstall(world, handle.id);
            }
        }
    }

    /// Currently deployed scripts.
    pub fn deployed(&self) -> &[DeployedScript] {
        &self.deployed
    }

    /// Execution statistics of a deployed script, by name.
    pub fn script_stats(&self, name: &str) -> Option<ScriptStats> {
        let handle = self.deployed.iter().find(|d| d.name == name)?;
        self.agents.get(&handle.node)?.stats(handle.id)
    }

    /// Kernel-style run stats for every deployed script, in deployment
    /// order — run count, accumulated run time, instruction/op counters
    /// and the execution tier, alongside the script's identity.
    pub fn run_stats(&self) -> Vec<ScriptRunStats> {
        self.deployed
            .iter()
            .filter_map(|d| {
                let stats = self.agents.get(&d.node)?.stats(d.id)?;
                Some(ScriptRunStats {
                    name: d.name.clone(),
                    node: d.node.clone(),
                    stats,
                })
            })
            .collect()
    }

    /// Per-CPU counter values of a deployed [`crate::config::Action::CountPerCpu`]
    /// script, by name.
    pub fn counter_per_cpu(&self, name: &str) -> Option<Vec<u64>> {
        let handle = self.deployed.iter().find(|d| d.name == name)?;
        self.agents.get(&handle.node)?.counter_per_cpu(handle.id)
    }

    /// Records lost to perf-buffer overflow for a deployed script.
    pub fn lost_records(&self, name: &str) -> u64 {
        let Some(handle) = self.deployed.iter().find(|d| d.name == name) else {
            return 0;
        };
        self.agents
            .get(&handle.node)
            .map_or(0, |a| a.lost_records(handle.id))
    }

    /// The periodic collection cycle: every agent drains its kernel
    /// buffers into the tracer's reusable batch, which the collector
    /// ingests whole (with a heartbeat and the agent's loss counter).
    /// Returns the number of records collected.
    pub fn collect(&mut self, world: &World) -> usize {
        let now = world.now();
        let mut total = 0;
        let mut names: Vec<String> = self.agents.keys().cloned().collect();
        names.sort();
        for name in names {
            let agent = self.agents.get_mut(&name).expect("listed agent exists");
            self.batch.clear();
            total += agent.drain_into(&mut self.batch);
            let seq = agent.heartbeat();
            let lost = agent.lost_records_total();
            self.collector
                .ingest_batch(&name, seq, &self.batch, lost, now);
        }
        self.batch.clear();
        total
    }

    /// Registers an online subscriber on the collector: every batch an
    /// agent drains (and every heartbeat) is forwarded to it during
    /// [`VNetTracer::collect`], before the records reach the database —
    /// the attachment point for streaming analysis engines.
    pub fn subscribe(
        &mut self,
        subscriber: std::rc::Rc<std::cell::RefCell<dyn crate::collector::IngestSubscriber>>,
    ) {
        self.collector.subscribe(subscriber);
    }

    /// Snapshot of the collector's self-observability counters (ingest
    /// totals, per-agent heartbeat lag and perf-ring losses) at the
    /// world's current time.
    pub fn stats(&self, world: &World) -> CollectorStats {
        self.collector.stats(world.now())
    }

    /// The trace database accumulated so far.
    pub fn db(&self) -> &TraceDb {
        self.collector.db()
    }

    /// The collector (heartbeat status, ingest counters).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Flushes the underlying database: seals the hot tail into a
    /// columnar segment, finishes any in-flight compaction and syncs the
    /// write-ahead log. A no-op for in-memory databases.
    ///
    /// # Errors
    ///
    /// Returns a [`vnet_tsdb::StoreError`] if sealing or syncing fails.
    pub fn flush_db(&mut self) -> std::result::Result<(), vnet_tsdb::StoreError> {
        self.collector.db_mut().flush()
    }

    /// Convenience: per-packet latency samples between two deployed
    /// tracepoints (same clock domain).
    pub fn latency_between(&self, from: &str, to: &str) -> Vec<u64> {
        metrics::latency_between(self.db(), from, to, None)
    }

    /// Convenience: throughput observed at a tracepoint.
    pub fn throughput_at(&self, measurement: &str) -> f64 {
        metrics::throughput_at(self.db(), measurement)
    }

    /// Convenience: latency decomposition across a tracepoint chain.
    pub fn decompose(&self, tracepoints: &[&str]) -> Vec<metrics::SegmentStats> {
        metrics::decompose(self.db(), tracepoints)
    }

    /// Convenience: packet loss between two tracepoints.
    pub fn packet_loss(&self, upstream: &str, downstream: &str) -> metrics::PacketLoss {
        metrics::packet_loss(self.db(), upstream, downstream)
    }

    /// Convenience: jitter range of the latency between two tracepoints
    /// (`None` with fewer than two joinable packets).
    pub fn jitter_between(&self, from: &str, to: &str) -> Option<(i64, i64)> {
        metrics::jitter_range(&self.latency_between(from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Action, FilterRule, HookSpec, TraceSpec};
    use std::net::Ipv4Addr;
    use std::net::SocketAddrV4;
    use vnet_sim::device::{DeviceConfig, Forwarding, ServiceModel};
    use vnet_sim::node::NodeClock;
    use vnet_sim::packet::{FlowKey, PacketBuilder, SocketAddrV4Ext};
    use vnet_sim::time::{SimDuration, SimTime};

    /// Two devices in series on one node; probes at both; UDP flow with
    /// injected trace IDs.
    fn setup() -> (World, VNetTracer, vnet_sim::DeviceId) {
        let mut w = World::new(3);
        let n = w.add_node("server1", 4, NodeClock::perfect());
        let d0 = w.add_device(
            DeviceConfig::new("eth0", n)
                .service(ServiceModel::Fixed(SimDuration::from_micros(5)))
                .trace_id(vnet_sim::device::TraceIdRole::Inject),
        );
        let d1 = w.add_device(
            DeviceConfig::new("eth1", n)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .forwarding(Forwarding::Deliver),
        );
        w.connect(d0, d1, SimDuration::from_micros(10));

        let mut tracer = VNetTracer::new();
        tracer.add_agent(Agent::new(n, "server1", 4));
        (w, tracer, d0)
    }

    fn flow_spec(name: &str, hook: HookSpec) -> TraceSpec {
        TraceSpec {
            name: name.into(),
            node: "server1".into(),
            hook,
            filter: FilterRule::udp_flow(
                (Ipv4Addr::new(10, 0, 0, 1), 1000),
                (Ipv4Addr::new(10, 0, 0, 2), 2000),
            ),
            action: Action::RecordPacketInfo,
        }
    }

    fn send_packets(w: &mut World, d0: vnet_sim::DeviceId, n: usize) {
        // Inject via a sender app so the trace-ID patch applies.
        struct Sender {
            count: usize,
        }
        impl vnet_sim::app::App for Sender {
            fn on_start(&mut self, ctx: &mut vnet_sim::app::AppCtx<'_>) {
                for _ in 0..self.count {
                    let flow = FlowKey::udp(
                        SocketAddrV4::sock("10.0.0.1", 1000),
                        SocketAddrV4::sock("10.0.0.2", 2000),
                    );
                    ctx.send(PacketBuilder::udp(flow, vec![1u8; 56]).build());
                }
            }
            fn on_packet(
                &mut self,
                _: &mut vnet_sim::app::AppCtx<'_>,
                _: vnet_sim::packet::Packet,
            ) {
            }
        }
        w.add_app(vnet_sim::NodeId(0), d0, Box::new(Sender { count: n }));
    }

    #[test]
    fn end_to_end_deploy_trace_collect_analyze() {
        let (mut w, mut tracer, d0) = setup();
        // Pinned to the interpreter: the latency windows below encode
        // the interpreter's per-instruction cost arithmetic. The jit
        // tier's cost model is covered separately.
        let mut pkg = ControlPackage::new(vec![
            flow_spec("eth0_rx", HookSpec::DeviceRx("eth0".into())),
            flow_spec("eth1_rx", HookSpec::DeviceRx("eth1".into())),
        ]);
        pkg.global.exec_tier = crate::config::ExecTier::Interp;
        let deployed = tracer.deploy(&mut w, &pkg).unwrap();
        assert_eq!(deployed.len(), 2);
        send_packets(&mut w, d0, 10);
        w.run_until(SimTime::from_millis(5));
        let collected = tracer.collect(&w);
        assert_eq!(collected, 20, "10 packets at 2 tracepoints");
        // Latency eth0->eth1 = 5us service + 10us link (+probe overhead).
        // All 10 packets are injected at t=0, so they queue at eth0's
        // 5us server: packet i leaves at 5us*(i+1) and crosses the 10us
        // link, while its eth0_rx record was stamped at arrival (t=0).
        let mut lat = tracer.latency_between("eth0_rx", "eth1_rx");
        lat.sort_unstable();
        assert_eq!(lat.len(), 10);
        assert!(
            (15_000..17_000).contains(&lat[0]),
            "fastest packet ~15us + probe overhead, got {}ns",
            lat[0]
        );
        assert!(
            (60_000..62_000).contains(&lat[9]),
            "slowest packet queued behind 9 others, got {}ns",
            lat[9]
        );
        // No loss between the two tracepoints.
        let loss = tracer.packet_loss("eth0_rx", "eth1_rx");
        assert_eq!(loss.lost, 0);
        // Decomposition over the chain gives one segment.
        let segs = tracer.decompose(&["eth0_rx", "eth1_rx"]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].stats.count, 10);
        // Throughput at eth1_rx (timestamps spread by eth0's service
        // times) is positive; at eth0_rx all records share one arrival
        // instant, so the T_N − T_1 denominator is zero.
        assert!(tracer.throughput_at("eth1_rx") > 0.0);
        assert_eq!(tracer.throughput_at("eth0_rx"), 0.0);
        // Stats: every firing matched.
        let stats = tracer.script_stats("eth0_rx").unwrap();
        assert_eq!(stats.executions, 10);
        assert_eq!(stats.matched, 10);
        assert_eq!(stats.errors, 0);
        // Heartbeats recorded.
        assert_eq!(tracer.collector().last_heartbeat("server1"), Some(1));
        // Self-observability: one batch of 20 records, nothing lost.
        let cstats = tracer.stats(&w);
        assert_eq!(cstats.totals.records, 20);
        assert_eq!(cstats.totals.batches, 1);
        assert_eq!(cstats.totals.bytes, 20 * vnet_tsdb::COMPACT_RECORD_BYTES);
        assert_eq!(cstats.lost_records, 0);
        assert_eq!(cstats.agents.len(), 1);
        assert_eq!(cstats.agents[0].node, "server1");
        // Records landed in shards, not materialized points.
        assert_eq!(tracer.db().table("eth0_rx").unwrap().shards().len(), 1);
    }

    #[test]
    fn jit_tier_is_default_and_traces_identically() {
        // Same scenario on both tiers: identical records, match counts
        // and charged CPU (both tiers charge the path's toll under the
        // shared cost table), but the jit tier reports fused ops and
        // fewer dispatched ops than retired instructions.
        let run = |tier: crate::config::ExecTier| {
            let (mut w, mut tracer, d0) = setup();
            let mut pkg = ControlPackage::new(vec![
                flow_spec("eth0_rx", HookSpec::DeviceRx("eth0".into())),
                flow_spec("eth1_rx", HookSpec::DeviceRx("eth1".into())),
            ]);
            pkg.global.exec_tier = tier;
            tracer.deploy(&mut w, &pkg).unwrap();
            send_packets(&mut w, d0, 10);
            w.run_until(SimTime::from_millis(5));
            tracer.collect(&w);
            let recs: Vec<_> = tracer
                .db()
                .table("eth0_rx")
                .unwrap()
                .entries()
                .iter()
                .map(|e| {
                    (
                        e.timestamp_ns(),
                        e.tag(vnet_tsdb::TRACE_ID_TAG).map(|t| t.into_owned()),
                        e.field_u64("pkt_len"),
                    )
                })
                .collect();
            let stats = tracer.script_stats("eth0_rx").unwrap();
            (recs, stats, tracer.run_stats())
        };
        // Default tier is jit.
        assert_eq!(
            ControlPackage::new(vec![]).global.exec_tier,
            crate::config::ExecTier::Jit
        );
        let (recs_i, stats_i, _) = run(crate::config::ExecTier::Interp);
        let (recs_j, stats_j, run_stats) = run(crate::config::ExecTier::Jit);
        assert_eq!(recs_i, recs_j, "tiers must trace identical records");
        assert_eq!(stats_i.executions, stats_j.executions);
        assert_eq!(stats_i.matched, stats_j.matched);
        assert_eq!(stats_i.insns_retired, stats_j.insns_retired);
        assert_eq!(stats_j.tier, crate::config::ExecTier::Jit);
        assert!(
            stats_j.fused_hits > 0,
            "trace programs contain fusable runs"
        );
        assert!(
            stats_j.ops_executed < stats_i.ops_executed,
            "fusion dispatches fewer ops ({} vs {})",
            stats_j.ops_executed,
            stats_i.ops_executed
        );
        assert_eq!(
            stats_j.run_time_ns, stats_i.run_time_ns,
            "tiers charge the same per-path cost under the shared table"
        );
        assert_eq!(stats_j.certified_cost_ns, stats_i.certified_cost_ns);
        assert!(
            stats_j.run_time_ns <= stats_j.executions * stats_j.certified_cost_ns,
            "dynamic cost bounded by the certificate"
        );
        // Run stats surface one entry per deployed script.
        assert_eq!(run_stats.len(), 2);
        assert!(run_stats.iter().all(|s| s.node == "server1"));
        assert!(run_stats.iter().all(|s| s.stats.avg_run_ns() > 0));
    }

    #[test]
    fn deploy_unknown_node_fails() {
        let (mut w, mut tracer, _) = setup();
        let mut spec = flow_spec("x", HookSpec::DeviceRx("eth0".into()));
        spec.node = "mars".into();
        let err = tracer
            .deploy(&mut w, &ControlPackage::new(vec![spec]))
            .unwrap_err();
        assert!(matches!(err, TracerError::UnknownNode(_)));
    }

    #[test]
    fn undeploy_stops_tracing() {
        let (mut w, mut tracer, d0) = setup();
        let pkg = ControlPackage::new(vec![flow_spec(
            "eth0_rx",
            HookSpec::DeviceRx("eth0".into()),
        )]);
        tracer.deploy(&mut w, &pkg).unwrap();
        send_packets(&mut w, d0, 2);
        w.run_until(SimTime::from_millis(1));
        tracer.undeploy_all(&mut w);
        assert!(tracer.deployed().is_empty());
        // Undeploy flushed the pending records first.
        assert_eq!(tracer.db().table("eth0_rx").unwrap().len(), 2);
        // New traffic after undeploy is not traced.
        send_packets(&mut w, d0, 3);
        w.run_until(SimTime::from_millis(2));
        assert_eq!(tracer.collect(&w), 0);
        assert_eq!(tracer.db().table("eth0_rx").unwrap().len(), 2);
    }

    #[test]
    fn runtime_reconfiguration_swaps_scripts() {
        let (mut w, mut tracer, d0) = setup();
        let pkg1 =
            ControlPackage::new(vec![flow_spec("phase1", HookSpec::DeviceRx("eth0".into()))]);
        tracer.deploy(&mut w, &pkg1).unwrap();
        send_packets(&mut w, d0, 1);
        w.run_until(SimTime::from_millis(1));
        tracer.undeploy_all(&mut w);
        // Reconfigure at runtime: different tracepoint, different table.
        let pkg2 =
            ControlPackage::new(vec![flow_spec("phase2", HookSpec::DeviceRx("eth1".into()))]);
        tracer.deploy(&mut w, &pkg2).unwrap();
        send_packets(&mut w, d0, 1);
        w.run_until(SimTime::from_millis(2));
        tracer.collect(&w);
        assert_eq!(tracer.db().table("phase1").unwrap().len(), 1);
        assert_eq!(tracer.db().table("phase2").unwrap().len(), 1);
    }
}
