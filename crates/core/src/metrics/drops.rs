//! Per-reason drop breakdown over `skb-drop` tables.
//!
//! The `skb-drop` module records one entry per `kfree_skb` firing with
//! the typed drop-reason code folded into the record's flag bits; this
//! metric groups a drop table back into kernel-style reason counts — the
//! `vnt drops` report and the scenario pack's ground-truth check.

use std::collections::BTreeMap;

use vnet_tsdb::{Query, TraceDb, DROP_REASON_TAG};

/// Reason label used for drop records whose flag bits carry no known
/// reason code (e.g. a record produced by a plain `RecordPacketInfo`
/// program attached at a drop site).
pub const UNATTRIBUTED: &str = "unattributed";

/// Counts the records of `table` grouped by drop reason, sorted by
/// reason name. Scans sealed segments as well as the hot tail, so the
/// breakdown is identical on a reopened disk-backed store. Returns an
/// empty vector when the table does not exist (or cannot be scanned).
pub fn drop_breakdown(db: &TraceDb, table: &str) -> Vec<(String, u64)> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    if let Ok(scan) = Query::new(table).scan(db) {
        for e in scan.entries() {
            let reason = e
                .tag(DROP_REASON_TAG)
                .map(|c| c.into_owned())
                .unwrap_or_else(|| UNATTRIBUTED.to_owned());
            *counts.entry(reason).or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

/// [`drop_breakdown`] summed across every measurement whose name ends in
/// `_drops` — the whole-world view `vnt drops` prints when no table is
/// named.
pub fn drop_breakdown_all(db: &TraceDb) -> Vec<(String, u64)> {
    let tables: Vec<String> = db
        .measurements()
        .filter(|m| m.ends_with("_drops"))
        .map(str::to_owned)
        .collect();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for table in tables {
        for (reason, n) in drop_breakdown(db, &table) {
            *counts.entry(reason).or_insert(0) += n;
        }
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_tsdb::{drop_reason_name, DataPoint};

    fn drop_point(table: &str, ts: u64, code: u8) -> DataPoint {
        let mut p = DataPoint::new(table, ts);
        if let Some(name) = drop_reason_name(code) {
            p = p.tag(DROP_REASON_TAG, name);
        }
        p
    }

    #[test]
    fn breakdown_groups_by_reason() {
        let mut db = TraceDb::new();
        for (i, code) in [1u8, 1, 2, 5, 0].iter().enumerate() {
            db.insert(drop_point("lab_drops", i as u64 * 10, *code));
        }
        let b = drop_breakdown(&db, "lab_drops");
        assert_eq!(
            b,
            vec![
                ("link-loss".to_owned(), 1),
                ("policed".to_owned(), 1),
                ("queue-full".to_owned(), 2),
                (UNATTRIBUTED.to_owned(), 1),
            ]
        );
        assert!(drop_breakdown(&db, "missing").is_empty());
    }

    #[test]
    fn breakdown_all_sums_drop_tables_only() {
        let mut db = TraceDb::new();
        db.insert(drop_point("s1_drops", 0, 3));
        db.insert(drop_point("s2_drops", 5, 3));
        db.insert(drop_point("packets", 9, 3));
        assert_eq!(drop_breakdown_all(&db), vec![("device-down".to_owned(), 2)]);
    }
}
