//! Jitter: variability of packet latency.
//!
//! "We calculate the network jitter as ΔT_{i+1} − ΔT_i, where ΔT_i refers
//! to the i-th network latency of traced packet." (§III-D) The paper
//! reports jitter as a range, e.g. "(−7.2 µs, 9.2 µs)" growing to
//! "(−117.8 µs, 1041.4 µs)" under CPU contention (Case Study II).
//!
//! Both the offline path ([`jitter_range`]) and the live streaming
//! operator feed the same [`JitterTracker`], so the two computations
//! cannot drift: the tracker keeps the successive-difference extremes
//! plus the RFC 3550 smoothed interarrival-jitter estimate
//! (`J ← J + (|D| − J)/16`) in O(1) state per latency stream.

/// Streaming jitter state over a latency sample stream: successive
/// differences' min/max plus the RFC 3550 smoothed estimate. One latency
/// sample at a time via [`JitterTracker::push`]; constant memory.
///
/// # Examples
///
/// ```
/// use vnettracer::metrics::JitterTracker;
///
/// let mut t = JitterTracker::new();
/// for l in [100u64, 150, 120, 300] {
///     t.push(l);
/// }
/// assert_eq!(t.range(), Some((-30, 180)));
/// assert!(t.smoothed_ns() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JitterTracker {
    last_ns: Option<u64>,
    min_ns: i64,
    max_ns: i64,
    smoothed_ns: f64,
    diffs: u64,
}

impl JitterTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next latency sample (in arrival order).
    pub fn push(&mut self, latency_ns: u64) {
        if let Some(last) = self.last_ns {
            let d = latency_ns as i64 - last as i64;
            if self.diffs == 0 {
                self.min_ns = d;
                self.max_ns = d;
            } else {
                self.min_ns = self.min_ns.min(d);
                self.max_ns = self.max_ns.max(d);
            }
            self.diffs += 1;
            // RFC 3550 §6.4.1: J += (|D| − J) / 16.
            self.smoothed_ns += (d.unsigned_abs() as f64 - self.smoothed_ns) / 16.0;
        }
        self.last_ns = Some(latency_ns);
    }

    /// The (min, max) successive-difference range in signed nanoseconds;
    /// `None` before two samples.
    pub fn range(&self) -> Option<(i64, i64)> {
        (self.diffs > 0).then_some((self.min_ns, self.max_ns))
    }

    /// The RFC 3550 smoothed jitter estimate, 0 before two samples.
    pub fn smoothed_ns(&self) -> f64 {
        self.smoothed_ns
    }

    /// Number of successive differences observed (samples − 1).
    pub fn diff_count(&self) -> u64 {
        self.diffs
    }
}

/// Successive differences of a latency series, in signed nanoseconds.
pub fn jitter_series(latencies_ns: &[u64]) -> Vec<i64> {
    latencies_ns
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect()
}

/// The (min, max) jitter range, in signed nanoseconds. `None` with fewer
/// than two latency samples.
pub fn jitter_range(latencies_ns: &[u64]) -> Option<(i64, i64)> {
    let mut tracker = JitterTracker::new();
    for &l in latencies_ns {
        tracker.push(l);
    }
    tracker.range()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_successive_differences() {
        assert_eq!(jitter_series(&[100, 150, 120, 120]), vec![50, -30, 0]);
        assert!(jitter_series(&[42]).is_empty());
    }

    #[test]
    fn range_captures_extremes() {
        assert_eq!(jitter_range(&[100, 150, 120, 300]), Some((-30, 180)));
        assert_eq!(jitter_range(&[5]), None);
        assert_eq!(jitter_range(&[]), None);
    }

    #[test]
    fn steady_latency_has_zero_jitter() {
        assert_eq!(jitter_range(&[77, 77, 77]), Some((0, 0)));
    }

    #[test]
    fn tracker_matches_series_on_any_stream() {
        let latencies: Vec<u64> = (0..200u64).map(|i| (i * 7919) % 10_000).collect();
        let series = jitter_series(&latencies);
        let mut t = JitterTracker::new();
        for &l in &latencies {
            t.push(l);
        }
        assert_eq!(t.range().unwrap().0, *series.iter().min().unwrap());
        assert_eq!(t.range().unwrap().1, *series.iter().max().unwrap());
        assert_eq!(t.diff_count(), series.len() as u64);
    }

    #[test]
    fn smoothed_follows_rfc3550_recurrence() {
        let mut t = JitterTracker::new();
        let mut expect = 0.0f64;
        let latencies = [1_000u64, 1_400, 900, 2_000, 2_000];
        for (i, &l) in latencies.iter().enumerate() {
            t.push(l);
            if i > 0 {
                let d = (l as i64 - latencies[i - 1] as i64).unsigned_abs() as f64;
                expect += (d - expect) / 16.0;
            }
        }
        assert!((t.smoothed_ns() - expect).abs() < 1e-9);
        // Steady stream decays toward zero.
        let mut steady = JitterTracker::new();
        for _ in 0..100 {
            steady.push(500);
        }
        assert_eq!(steady.smoothed_ns(), 0.0);
    }
}
