//! Jitter: variability of packet latency.
//!
//! "We calculate the network jitter as ΔT_{i+1} − ΔT_i, where ΔT_i refers
//! to the i-th network latency of traced packet." (§III-D) The paper
//! reports jitter as a range, e.g. "(−7.2 µs, 9.2 µs)" growing to
//! "(−117.8 µs, 1041.4 µs)" under CPU contention (Case Study II).

/// Successive differences of a latency series, in signed nanoseconds.
pub fn jitter_series(latencies_ns: &[u64]) -> Vec<i64> {
    latencies_ns
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect()
}

/// The (min, max) jitter range, in signed nanoseconds. `None` with fewer
/// than two latency samples.
pub fn jitter_range(latencies_ns: &[u64]) -> Option<(i64, i64)> {
    let series = jitter_series(latencies_ns);
    let min = *series.iter().min()?;
    let max = *series.iter().max()?;
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_successive_differences() {
        assert_eq!(jitter_series(&[100, 150, 120, 120]), vec![50, -30, 0]);
        assert!(jitter_series(&[42]).is_empty());
    }

    #[test]
    fn range_captures_extremes() {
        assert_eq!(jitter_range(&[100, 150, 120, 300]), Some((-30, 180)));
        assert_eq!(jitter_range(&[5]), None);
        assert_eq!(jitter_range(&[]), None);
    }

    #[test]
    fn steady_latency_has_zero_jitter() {
        assert_eq!(jitter_range(&[77, 77, 77]), Some((0, 0)));
    }
}
