//! Per-flow metrics.
//!
//! Combining filter rules with trace records tagged by flow gives the
//! "advanced tracing information, like per-flow throughput" of §III-D
//! (Fig. 6) — the capability Case Study I leans on to separate the
//! Sockperf flow from the competing iPerf flows inside OVS.

use std::collections::BTreeMap;

use vnet_tsdb::{TraceDb, TRACE_ID_TAG};

use super::loss::PacketLoss;
use super::throughput::throughput_bps;

/// Computes throughput per flow (grouped by the `flow` tag) at a
/// tracepoint's table. Returns `(flow, bits/sec)` sorted by flow name.
pub fn per_flow_throughput(db: &TraceDb, measurement: &str) -> Vec<(String, f64)> {
    let Some(table) = db.table(measurement) else {
        return Vec::new();
    };
    let mut groups: BTreeMap<String, Vec<(u64, u32, bool)>> = BTreeMap::new();
    for e in table.entries() {
        let Some(flow) = e.tag("flow") else {
            continue;
        };
        let Some(len) = e.field_u64("pkt_len") else {
            continue;
        };
        groups.entry(flow.into_owned()).or_default().push((
            e.timestamp_ns(),
            len as u32,
            e.tag(TRACE_ID_TAG).is_some(),
        ));
    }
    groups
        .into_iter()
        .map(|(flow, samples)| (flow, throughput_bps(&samples)))
        .collect()
}

/// Computes packet loss per flow between two tracepoints, grouping by
/// the `flow` tag — the per-flow counterpart of
/// [`super::loss::packet_loss`], which lets a user tell *which* flow a
/// congested device is dropping. Returns `(flow, loss)` sorted by flow.
pub fn per_flow_loss(db: &TraceDb, upstream: &str, downstream: &str) -> Vec<(String, PacketLoss)> {
    let count_by_flow = |measurement: &str| -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        if let Some(table) = db.table(measurement) {
            for e in table.entries() {
                if let Some(flow) = e.tag("flow") {
                    *out.entry(flow.into_owned()).or_insert(0) += 1;
                }
            }
        }
        out
    };
    let up = count_by_flow(upstream);
    let down = count_by_flow(downstream);
    up.into_iter()
        .map(|(flow, n_i)| {
            let n_j = down.get(&flow).copied().unwrap_or(0);
            let lost = n_i.saturating_sub(n_j);
            (
                flow,
                PacketLoss {
                    upstream: n_i,
                    downstream: n_j,
                    lost,
                    rate: if n_i == 0 {
                        0.0
                    } else {
                        lost as f64 / n_i as f64
                    },
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_tsdb::DataPoint;

    #[test]
    fn groups_by_flow_tag() {
        let mut db = TraceDb::new();
        // Flow A: 10 x 1000B over 1ms; flow B: 10 x 100B over 1ms.
        for i in 0..10u64 {
            db.insert(
                DataPoint::new("ovs", i * 111_111)
                    .tag("flow", "10.0.0.1:1->10.0.0.2:2")
                    .field("pkt_len", 1000u64),
            );
            db.insert(
                DataPoint::new("ovs", i * 111_111)
                    .tag("flow", "10.0.0.3:3->10.0.0.2:2")
                    .field("pkt_len", 100u64),
            );
        }
        let flows = per_flow_throughput(&db, "ovs");
        assert_eq!(flows.len(), 2);
        assert!(
            flows[0].1 > flows[1].1 * 9.0,
            "1000B flow ~10x the 100B flow"
        );
        assert!(per_flow_throughput(&db, "absent").is_empty());
    }

    #[test]
    fn per_flow_loss_separates_victims() {
        let mut db = TraceDb::new();
        // Flow A: 10 in, 4 out (congested). Flow B: 5 in, 5 out.
        for i in 0..10u64 {
            db.insert(DataPoint::new("up", i).tag("flow", "A"));
            if i < 4 {
                db.insert(DataPoint::new("down", i).tag("flow", "A"));
            }
        }
        for i in 0..5u64 {
            db.insert(DataPoint::new("up", 100 + i).tag("flow", "B"));
            db.insert(DataPoint::new("down", 100 + i).tag("flow", "B"));
        }
        let losses = per_flow_loss(&db, "up", "down");
        assert_eq!(losses.len(), 2);
        assert_eq!(losses[0].0, "A");
        assert_eq!(losses[0].1.lost, 6);
        assert!((losses[0].1.rate - 0.6).abs() < 1e-12);
        assert_eq!(losses[1].1.lost, 0);
        assert!(per_flow_loss(&db, "absent", "down").is_empty());
    }

    #[test]
    fn untagged_points_skipped() {
        let mut db = TraceDb::new();
        db.insert(DataPoint::new("m", 0).field("pkt_len", 10u64));
        db.insert(
            DataPoint::new("m", 10)
                .tag("flow", "f")
                .field("pkt_len", 10u64),
        );
        db.insert(
            DataPoint::new("m", 1_000)
                .tag("flow", "f")
                .field("pkt_len", 10u64),
        );
        let flows = per_flow_throughput(&db, "m");
        assert_eq!(flows.len(), 1);
        assert!(flows[0].1 > 0.0);
    }
}
