//! Packet arrival-time metrics.
//!
//! §III-D's "additional metrics": "more information could also be dug
//! from the raw data for certain scenarios, such as packet arrival
//! time". Inter-arrival gaps expose burstiness; bucketed arrival rates
//! expose rate changes over time (e.g. the congestion episodes of Case
//! Study I).

use vnet_tsdb::TraceDb;

/// Inter-arrival gaps (ns) between consecutive records at a tracepoint,
/// in time order.
pub fn interarrival_ns(db: &TraceDb, measurement: &str) -> Vec<u64> {
    let Some(table) = db.table(measurement) else {
        return Vec::new();
    };
    let mut stamps: Vec<u64> = table.entries().iter().map(|e| e.timestamp_ns()).collect();
    stamps.sort_unstable();
    stamps.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Packet arrival rate per time bucket: returns `(bucket_start_ns,
/// packets)` for every bucket from the first to the last record.
///
/// # Panics
///
/// Panics if `bucket_ns` is zero.
pub fn arrival_rate(db: &TraceDb, measurement: &str, bucket_ns: u64) -> Vec<(u64, u64)> {
    assert!(bucket_ns > 0, "bucket width must be positive");
    let Some(table) = db.table(measurement) else {
        return Vec::new();
    };
    if table.is_empty() {
        return Vec::new();
    }
    let mut stamps: Vec<u64> = table.entries().iter().map(|e| e.timestamp_ns()).collect();
    stamps.sort_unstable();
    let first = stamps[0] / bucket_ns * bucket_ns;
    let last = *stamps.last().expect("non-empty");
    let buckets = (last - first) / bucket_ns + 1;
    let mut out: Vec<(u64, u64)> = (0..buckets).map(|i| (first + i * bucket_ns, 0)).collect();
    for t in stamps {
        let idx = ((t - first) / bucket_ns) as usize;
        out[idx].1 += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_tsdb::DataPoint;

    fn db_with(stamps: &[u64]) -> TraceDb {
        let mut db = TraceDb::new();
        for &t in stamps {
            db.insert(DataPoint::new("m", t));
        }
        db
    }

    #[test]
    fn interarrival_gaps() {
        let db = db_with(&[100, 300, 350, 1000]);
        assert_eq!(interarrival_ns(&db, "m"), vec![200, 50, 650]);
        assert!(interarrival_ns(&db, "absent").is_empty());
        assert!(interarrival_ns(&db_with(&[5]), "m").is_empty());
    }

    #[test]
    fn interarrival_sorts_out_of_order_records() {
        // Records from different CPUs/buffers may be ingested out of
        // order; gaps are still computed over time-sorted stamps.
        let db = db_with(&[300, 100, 200]);
        assert_eq!(interarrival_ns(&db, "m"), vec![100, 100]);
    }

    #[test]
    fn arrival_rate_buckets() {
        let db = db_with(&[0, 10, 20, 1_050, 2_700]);
        let rate = arrival_rate(&db, "m", 1_000);
        assert_eq!(rate, vec![(0, 3), (1_000, 1), (2_000, 1)]);
        // Buckets with no arrivals still appear (value 0).
        let db = db_with(&[0, 2_500]);
        let rate = arrival_rate(&db, "m", 1_000);
        assert_eq!(rate, vec![(0, 1), (1_000, 0), (2_000, 1)]);
    }

    #[test]
    fn arrival_rate_empty_inputs() {
        assert!(arrival_rate(&TraceDb::new(), "m", 100).is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_rejected() {
        let _ = arrival_rate(&TraceDb::new(), "m", 0);
    }
}
