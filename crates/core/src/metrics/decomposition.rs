//! End-to-end latency decomposition across an ordered tracepoint chain.
//!
//! The "advanced" metric of §III-D (Fig. 6) and the workhorse of all
//! three case studies: given tracepoints along a packet's path (e.g.
//! application socket → OVS ingress → OVS egress → receiver socket), the
//! per-packet time spent in each segment is the timestamp difference
//! between consecutive tracepoints, joined by trace ID.

use serde::{Deserialize, Serialize};
use vnet_tsdb::TraceDb;

use super::latency::{stats_from_ns, LatencyStats};

/// Latency statistics for one segment of the path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentStats {
    /// Upstream tracepoint (table name).
    pub from: String,
    /// Downstream tracepoint (table name).
    pub to: String,
    /// Statistics over all packets observed at both ends.
    pub stats: LatencyStats,
}

/// Decomposes latency across consecutive pairs of `tracepoints`.
/// Segments with no joinable packets are omitted.
pub fn decompose(db: &TraceDb, tracepoints: &[&str]) -> Vec<SegmentStats> {
    tracepoints
        .windows(2)
        .filter_map(|w| {
            let deltas = super::latency::latency_between(db, w[0], w[1], None);
            stats_from_ns(&deltas).map(|stats| SegmentStats {
                from: w[0].to_owned(),
                to: w[1].to_owned(),
                stats,
            })
        })
        .collect()
}

/// Per-packet segment latencies, for Fig. 11-style per-packet plots:
/// returns, for each trace ID seen at the *first* tracepoint and ordered
/// by its timestamp there, the latency of every segment (or `None` where
/// the packet was not observed downstream).
pub fn per_packet_segments(db: &TraceDb, tracepoints: &[&str]) -> Vec<(String, Vec<Option<u64>>)> {
    let Some(first) = tracepoints.first().and_then(|t| db.table(t)) else {
        return Vec::new();
    };
    // Trace IDs ordered by first-tracepoint timestamp.
    let mut ids: Vec<(u64, String)> = first
        .trace_ids()
        .into_iter()
        .filter_map(|id| {
            first
                .by_trace_id(&id)
                .first()
                .map(|e| (e.timestamp_ns(), id.clone()))
        })
        .collect();
    ids.sort();
    let tables: Vec<_> = tracepoints.iter().map(|t| db.table(t)).collect();
    ids.into_iter()
        .map(|(_, id)| {
            let stamps: Vec<Option<u64>> = tables
                .iter()
                .map(|t| {
                    t.and_then(|t| t.by_trace_id(&id).first().copied())
                        .map(|e| e.timestamp_ns())
                })
                .collect();
            let segs: Vec<Option<u64>> = stamps
                .windows(2)
                .map(|w| match (w[0], w[1]) {
                    (Some(a), Some(b)) => b.checked_sub(a),
                    _ => None,
                })
                .collect();
            (id, segs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_tsdb::{DataPoint, TRACE_ID_TAG};

    /// Three tracepoints; packet `i` takes 100ns in segment 1 and
    /// `50*i` ns in segment 2.
    fn chain_db(n: u64) -> TraceDb {
        let mut db = TraceDb::new();
        for i in 0..n {
            let id = format!("{i:08x}");
            let t0 = i * 10_000;
            db.insert(DataPoint::new("tp0", t0).tag(TRACE_ID_TAG, &id));
            db.insert(DataPoint::new("tp1", t0 + 100).tag(TRACE_ID_TAG, &id));
            db.insert(DataPoint::new("tp2", t0 + 100 + 50 * i).tag(TRACE_ID_TAG, &id));
        }
        db
    }

    #[test]
    fn decompose_reports_per_segment_stats() {
        let db = chain_db(5);
        let segs = decompose(&db, &["tp0", "tp1", "tp2"]);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].from, "tp0");
        assert_eq!(segs[0].stats.mean_ns, 100.0);
        assert_eq!(segs[1].stats.min_ns, 0);
        assert_eq!(segs[1].stats.max_ns, 200);
        assert_eq!(segs[1].stats.mean_ns, 100.0);
    }

    #[test]
    fn per_packet_segments_ordered_by_arrival() {
        let db = chain_db(3);
        let rows = per_packet_segments(&db, &["tp0", "tp1", "tp2"]);
        assert_eq!(rows.len(), 3);
        let seg2: Vec<Option<u64>> = rows.iter().map(|(_, s)| s[1]).collect();
        assert_eq!(seg2, vec![Some(0), Some(50), Some(100)]);
    }

    #[test]
    fn missing_downstream_observation_is_none() {
        let mut db = chain_db(2);
        // A third packet only seen at tp0 (lost).
        db.insert(DataPoint::new("tp0", 1_000_000).tag(TRACE_ID_TAG, "deadbeef"));
        let rows = per_packet_segments(&db, &["tp0", "tp1"]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].0, "deadbeef");
        assert_eq!(rows[2].1, vec![None]);
        // decompose simply skips the unjoinable packet.
        let segs = decompose(&db, &["tp0", "tp1"]);
        assert_eq!(segs[0].stats.count, 2);
    }

    #[test]
    fn empty_inputs() {
        let db = TraceDb::new();
        assert!(decompose(&db, &["a", "b"]).is_empty());
        assert!(per_packet_segments(&db, &["a", "b"]).is_empty());
        assert!(per_packet_segments(&db, &[]).is_empty());
    }
}
