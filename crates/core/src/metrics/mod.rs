//! Network performance metrics computed from raw trace data (§III-D).
//!
//! All metrics are *offline* computations over the trace database:
//! throughput, latency (two-tracepoint deltas joined by trace ID), jitter,
//! packet loss, per-flow breakdowns and end-to-end latency decomposition.

pub mod arrival;
pub mod decomposition;
pub mod drops;
pub mod flow;
pub mod jitter;
pub mod latency;
pub mod loss;
pub mod throughput;

pub use arrival::{arrival_rate, interarrival_ns};
pub use decomposition::{decompose, per_packet_segments, SegmentStats};
pub use drops::{drop_breakdown, drop_breakdown_all};
pub use flow::{per_flow_loss, per_flow_throughput};
pub use jitter::{jitter_range, jitter_series, JitterTracker};
pub use latency::{latency_between, stats_from_ns, LatencyStats};
pub use loss::{packet_loss, PacketLoss};
pub use throughput::{throughput_at, throughput_bps, TRACE_ID_WIRE_BYTES};
