//! Throughput at a tracepoint.
//!
//! "We track the packet size S_i and the arrival time T_i during the data
//! transmission, and calculate the network throughput as
//! Σ_{i=1}^{N} (S_i − S_ID) / (T_N − T_1), where … S_ID is the 4 bytes
//! packet unique ID." (§III-D)

use vnet_tsdb::{TraceDb, TRACE_ID_TAG};

/// Bytes the trace ID adds to each packet on the wire (`S_ID`).
pub const TRACE_ID_WIRE_BYTES: u64 = 4;

/// Computes throughput in bits/second from `(timestamp_ns, size_bytes,
/// carries_trace_id)` samples. Returns 0.0 with fewer than two samples or
/// zero elapsed time.
pub fn throughput_bps(samples: &[(u64, u32, bool)]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let t_first = samples.iter().map(|s| s.0).min().expect("non-empty");
    let t_last = samples.iter().map(|s| s.0).max().expect("non-empty");
    if t_last == t_first {
        return 0.0;
    }
    let bytes: u64 = samples
        .iter()
        .map(|&(_, len, has_id)| {
            u64::from(len).saturating_sub(if has_id { TRACE_ID_WIRE_BYTES } else { 0 })
        })
        .sum();
    (bytes * 8) as f64 / ((t_last - t_first) as f64 / 1e9)
}

/// Computes throughput at a tracepoint's table, reading each record's
/// `pkt_len` field and whether it carries a trace ID.
pub fn throughput_at(db: &TraceDb, measurement: &str) -> f64 {
    let Some(table) = db.table(measurement) else {
        return 0.0;
    };
    let samples: Vec<(u64, u32, bool)> = table
        .entries()
        .iter()
        .filter_map(|e| {
            let len = e.field_u64("pkt_len")? as u32;
            Some((e.timestamp_ns(), len, e.tag(TRACE_ID_TAG).is_some()))
        })
        .collect();
    throughput_bps(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_tsdb::DataPoint;

    #[test]
    fn formula_subtracts_trace_id_bytes() {
        // 10 packets of 104 bytes with IDs over 1 ms: (104-4)*10*8 bits.
        let samples: Vec<(u64, u32, bool)> = (0..10).map(|i| (i * 111_111, 104, true)).collect();
        let elapsed_s = (9.0 * 111_111.0) / 1e9;
        let expected = 100.0 * 10.0 * 8.0 / elapsed_s;
        assert!((throughput_bps(&samples) - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn untagged_packets_count_fully() {
        let with_id = [(0u64, 104u32, true), (1_000_000, 104, true)];
        let without = [(0u64, 104u32, false), (1_000_000, 104, false)];
        assert!(throughput_bps(&without) > throughput_bps(&with_id));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(throughput_bps(&[]), 0.0);
        assert_eq!(throughput_bps(&[(5, 100, false)]), 0.0);
        assert_eq!(throughput_bps(&[(5, 100, false), (5, 100, false)]), 0.0);
    }

    #[test]
    fn throughput_from_database() {
        let mut db = TraceDb::new();
        for i in 0..100u64 {
            db.insert(
                DataPoint::new("nic_rx", i * 1_000)
                    .tag(TRACE_ID_TAG, format!("{i:08x}"))
                    .field("pkt_len", 104u64),
            );
        }
        // 100 packets * 100 effective bytes * 8 bits over 99us.
        let bps = throughput_at(&db, "nic_rx");
        let expected = (100.0 * 100.0 * 8.0) / (99_000.0 / 1e9);
        assert!((bps - expected).abs() / expected < 1e-9);
        assert_eq!(throughput_at(&db, "absent"), 0.0);
    }
}
