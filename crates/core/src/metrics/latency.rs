//! Latency: per-packet deltas between two tracepoints.
//!
//! "Based on the packet ID …, we track two packets for the same packet ID
//! at two tracepoints and record the system time through tracing scripts.
//! … the latency between the two tracepoints is treated as ΔT = t2 − t1.
//! If the two tracepoints are located on two different nodes, the latency
//! can be calculated as ΔT = t2 − t1 + ΔT_skew." (§III-D)

use serde::{Deserialize, Serialize};
use vnet_tsdb::TraceDb;

use crate::clock_sync::SkewEstimate;

/// Summary statistics over a latency sample set, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean.
    pub mean_ns: f64,
    /// Minimum.
    pub min_ns: u64,
    /// Maximum.
    pub max_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile — the tail the paper's case studies focus on.
    pub p999_ns: u64,
}

impl LatencyStats {
    /// Mean in microseconds (the unit the paper plots).
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1e3
    }

    /// 99.9th percentile in microseconds.
    pub fn p999_us(&self) -> f64 {
        self.p999_ns as f64 / 1e3
    }
}

/// Computes summary statistics; `None` for an empty sample set.
pub fn stats_from_ns(samples: &[u64]) -> Option<LatencyStats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let pct = |q: f64| -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    };
    let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
    Some(LatencyStats {
        count: sorted.len(),
        mean_ns: sum as f64 / sorted.len() as f64,
        min_ns: sorted[0],
        max_ns: *sorted.last().expect("non-empty"),
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
        p999_ns: pct(0.999),
    })
}

/// Per-packet latency between tracepoint tables `from` and `to`, joining
/// records by trace ID. `skew` (if given) aligns `to`'s node clock onto
/// `from`'s before subtraction. Deltas that come out negative (clock
/// inversion beyond the skew estimate) are dropped, as data cleaning
/// would.
pub fn latency_between(
    db: &TraceDb,
    from: &str,
    to: &str,
    skew: Option<&SkewEstimate>,
) -> Vec<u64> {
    db.join_timestamps(from, to)
        .into_iter()
        .filter_map(|(t1, t2)| {
            let t2 = match skew {
                Some(s) => s.align_remote_ns(t2),
                None => t2,
            };
            t2.checked_sub(t1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_tsdb::{DataPoint, TRACE_ID_TAG};

    #[test]
    fn stats_basics() {
        let s = stats_from_ns(&[10, 20, 30, 40, 50]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean_ns, 30.0);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 50);
        assert_eq!(s.p50_ns, 30);
        assert_eq!(s.p999_ns, 50);
        assert!(stats_from_ns(&[]).is_none());
    }

    #[test]
    fn tail_percentile_catches_outlier() {
        // Nearest-rank: with 500 samples, p99.9 ranks at ceil(0.999*500)
        // = 500, the maximum — one outlier in 500 shows in the tail.
        let mut samples = vec![100u64; 499];
        samples.push(10_000);
        let s = stats_from_ns(&samples).unwrap();
        assert_eq!(s.p50_ns, 100);
        assert_eq!(s.p999_ns, 10_000);
        assert_eq!(s.p999_us(), 10.0);
        assert_eq!(s.mean_us(), s.mean_ns / 1e3);
        // With 1000 samples, a single outlier sits exactly past the
        // 99.9th rank.
        let mut samples = vec![100u64; 999];
        samples.push(10_000);
        let s = stats_from_ns(&samples).unwrap();
        assert_eq!(s.p999_ns, 100);
        assert_eq!(s.max_ns, 10_000);
    }

    fn db_with_pair(id: &str, t1: u64, t2: u64) -> TraceDb {
        let mut db = TraceDb::new();
        db.insert(DataPoint::new("a", t1).tag(TRACE_ID_TAG, id));
        db.insert(DataPoint::new("b", t2).tag(TRACE_ID_TAG, id));
        db
    }

    #[test]
    fn latency_join_same_node() {
        let db = db_with_pair("x", 1_000, 1_750);
        assert_eq!(latency_between(&db, "a", "b", None), vec![750]);
    }

    #[test]
    fn latency_join_with_skew_alignment() {
        // Remote clock leads by 500ns: raw t2 = 1_750 includes the lead.
        let db = db_with_pair("x", 1_000, 1_750);
        let skew = SkewEstimate {
            one_way_ns: 0,
            offset_ns: 500,
            skew_ns: 500,
            samples: 100,
        };
        assert_eq!(latency_between(&db, "a", "b", Some(&skew)), vec![250]);
    }

    #[test]
    fn negative_deltas_dropped() {
        let db = db_with_pair("x", 2_000, 1_000);
        assert!(latency_between(&db, "a", "b", None).is_empty());
    }
}
