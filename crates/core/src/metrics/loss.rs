//! Packet loss between two tracepoints.
//!
//! "To measure packet loss, we track the number of packet N_i at each
//! tracepoint and calculate the packet loss between two tracepoints as
//! N_loss = N_i − N_j and the packet loss rate as R_loss = N_loss / N_i."
//! (§III-D)

use serde::{Deserialize, Serialize};
use vnet_tsdb::TraceDb;

/// Loss between an upstream and a downstream tracepoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketLoss {
    /// Packets seen upstream (`N_i`).
    pub upstream: u64,
    /// Packets seen downstream (`N_j`).
    pub downstream: u64,
    /// `N_loss = N_i − N_j` (zero if downstream saw more).
    pub lost: u64,
    /// `R_loss = N_loss / N_i` (zero when upstream is empty).
    pub rate: f64,
}

/// Computes packet loss between tracepoint tables `upstream` and
/// `downstream`.
pub fn packet_loss(db: &TraceDb, upstream: &str, downstream: &str) -> PacketLoss {
    let n_i = db.table(upstream).map_or(0, |t| t.len() as u64);
    let n_j = db.table(downstream).map_or(0, |t| t.len() as u64);
    let lost = n_i.saturating_sub(n_j);
    PacketLoss {
        upstream: n_i,
        downstream: n_j,
        lost,
        rate: if n_i == 0 {
            0.0
        } else {
            lost as f64 / n_i as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_tsdb::DataPoint;

    #[test]
    fn counts_and_rate() {
        let mut db = TraceDb::new();
        for i in 0..10u64 {
            db.insert(DataPoint::new("in", i));
        }
        for i in 0..7u64 {
            db.insert(DataPoint::new("out", i));
        }
        let loss = packet_loss(&db, "in", "out");
        assert_eq!(loss.upstream, 10);
        assert_eq!(loss.downstream, 7);
        assert_eq!(loss.lost, 3);
        assert!((loss.rate - 0.3).abs() < 1e-12);
    }

    #[test]
    fn no_loss_and_empty_tables() {
        let mut db = TraceDb::new();
        db.insert(DataPoint::new("in", 0));
        db.insert(DataPoint::new("out", 0));
        let loss = packet_loss(&db, "in", "out");
        assert_eq!(loss.lost, 0);
        assert_eq!(loss.rate, 0.0);
        let loss = packet_loss(&db, "absent_a", "absent_b");
        assert_eq!(loss.upstream, 0);
        assert_eq!(loss.rate, 0.0);
    }

    #[test]
    fn downstream_surplus_clamps_to_zero() {
        let mut db = TraceDb::new();
        db.insert(DataPoint::new("in", 0));
        for i in 0..3u64 {
            db.insert(DataPoint::new("out", i));
        }
        assert_eq!(packet_loss(&db, "in", "out").lost, 0);
    }
}
