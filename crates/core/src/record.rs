//! The on-wire trace record trace scripts emit into the perf buffer.
//!
//! Besides the unique packet ID, "vNetTracer also records the packet
//! number, packet length and current system time for the detailed network
//! measurement" (§III-B); the flow tuple is captured too so per-flow
//! metrics (§III-D) can be computed offline. The layout is fixed at 32
//! bytes; the eBPF trace scripts build it on their stack and the agent
//! decodes it when draining buffers.

use serde::{Deserialize, Serialize};

/// Size of an encoded record in bytes.
pub const RECORD_SIZE: usize = 32;

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Node-local `CLOCK_MONOTONIC` timestamp, nanoseconds.
    pub timestamp_ns: u64,
    /// The packet's trace ID (0 when absent; see `has_trace_id`).
    pub trace_id: u32,
    /// Packet length in bytes (including the 4-byte trace ID for UDP).
    pub pkt_len: u32,
    /// Source IPv4 address (numeric, host order).
    pub saddr: u32,
    /// Destination IPv4 address (numeric, host order).
    pub daddr: u32,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// CPU the probe fired on.
    pub cpu: u16,
    /// 0 = RX, 1 = TX.
    pub direction: u8,
    /// Bit 0: a trace ID was found in the packet. Bits 1–3: the typed
    /// drop-reason code captured at `kfree_skb` hooks (0 on all other
    /// records).
    pub flags: u8,
}

impl TraceRecord {
    /// Whether the packet carried a trace ID.
    pub fn has_trace_id(&self) -> bool {
        self.flags & 1 != 0
    }

    /// The typed drop-reason code carried in flag bits 1–3 (0 when the
    /// record is not a drop record).
    pub fn drop_reason_code(&self) -> u8 {
        (self.flags >> 1) & 0x7
    }

    /// The drop-reason tag value, when the record is a drop record with
    /// a known reason code.
    pub fn drop_reason(&self) -> Option<&'static str> {
        vnet_tsdb::drop_reason_name(self.drop_reason_code())
    }

    /// Encodes to the 32-byte layout (matching the eBPF stack layout:
    /// offsets 0 ts, 8 id, 12 len, 16 saddr, 20 daddr, 24 sport,
    /// 26 dport, 28 cpu, 30 direction, 31 flags).
    pub fn encode(&self) -> [u8; RECORD_SIZE] {
        let mut b = [0u8; RECORD_SIZE];
        b[0..8].copy_from_slice(&self.timestamp_ns.to_le_bytes());
        b[8..12].copy_from_slice(&self.trace_id.to_le_bytes());
        b[12..16].copy_from_slice(&self.pkt_len.to_le_bytes());
        b[16..20].copy_from_slice(&self.saddr.to_le_bytes());
        b[20..24].copy_from_slice(&self.daddr.to_le_bytes());
        b[24..26].copy_from_slice(&self.sport.to_le_bytes());
        b[26..28].copy_from_slice(&self.dport.to_le_bytes());
        b[28..30].copy_from_slice(&self.cpu.to_le_bytes());
        b[30] = self.direction;
        b[31] = self.flags;
        b
    }

    /// Decodes from the 32-byte layout.
    ///
    /// Returns `None` if `bytes` is not exactly [`RECORD_SIZE`] long.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != RECORD_SIZE {
            return None;
        }
        Some(TraceRecord {
            timestamp_ns: u64::from_le_bytes(bytes[0..8].try_into().ok()?),
            trace_id: u32::from_le_bytes(bytes[8..12].try_into().ok()?),
            pkt_len: u32::from_le_bytes(bytes[12..16].try_into().ok()?),
            saddr: u32::from_le_bytes(bytes[16..20].try_into().ok()?),
            daddr: u32::from_le_bytes(bytes[20..24].try_into().ok()?),
            sport: u16::from_le_bytes(bytes[24..26].try_into().ok()?),
            dport: u16::from_le_bytes(bytes[26..28].try_into().ok()?),
            cpu: u16::from_le_bytes(bytes[28..30].try_into().ok()?),
            direction: bytes[30],
            flags: bytes[31],
        })
    }

    /// Converts to the store's compact form — a field-for-field copy, so
    /// the batched ingest path can move records without materializing
    /// tags or fields.
    pub fn to_compact(&self) -> vnet_tsdb::CompactRecord {
        vnet_tsdb::CompactRecord {
            timestamp_ns: self.timestamp_ns,
            trace_id: self.trace_id,
            pkt_len: self.pkt_len,
            saddr: self.saddr,
            daddr: self.daddr,
            sport: self.sport,
            dport: self.dport,
            cpu: self.cpu,
            direction: self.direction,
            flags: self.flags,
        }
    }

    /// Converts to a database point for the table `measurement`, tagged
    /// with node name, flow and trace ID.
    pub fn to_point(&self, measurement: &str, node: &str) -> vnet_tsdb::DataPoint {
        let src = std::net::Ipv4Addr::from(self.saddr);
        let dst = std::net::Ipv4Addr::from(self.daddr);
        let mut p = vnet_tsdb::DataPoint::new(measurement, self.timestamp_ns)
            .tag("node", node)
            .tag(
                "flow",
                format!("{src}:{}->{dst}:{}", self.sport, self.dport),
            )
            .tag("direction", if self.direction == 0 { "rx" } else { "tx" })
            .field("pkt_len", u64::from(self.pkt_len))
            .field("cpu", u64::from(self.cpu));
        if self.has_trace_id() {
            p = p.tag(vnet_tsdb::TRACE_ID_TAG, format!("{:08x}", self.trace_id));
        }
        if let Some(reason) = self.drop_reason() {
            p = p.tag(vnet_tsdb::DROP_REASON_TAG, reason);
        }
        p
    }
}

/// Byte offsets of the record fields, used by the script compiler when
/// building the record on the eBPF stack (negative offsets from the frame
/// pointer: field at offset `o` lives at `fp - RECORD_SIZE + o`).
pub mod offsets {
    /// Timestamp.
    pub const TIMESTAMP: i16 = 0;
    /// Trace ID.
    pub const TRACE_ID: i16 = 8;
    /// Packet length.
    pub const PKT_LEN: i16 = 12;
    /// Source address.
    pub const SADDR: i16 = 16;
    /// Destination address.
    pub const DADDR: i16 = 20;
    /// Source port.
    pub const SPORT: i16 = 24;
    /// Destination port.
    pub const DPORT: i16 = 26;
    /// CPU.
    pub const CPU: i16 = 28;
    /// Direction.
    pub const DIRECTION: i16 = 30;
    /// Flags.
    pub const FLAGS: i16 = 31;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceRecord {
        TraceRecord {
            timestamp_ns: 0x1122334455667788,
            trace_id: 0xdeadbeef,
            pkt_len: 102,
            saddr: u32::from(std::net::Ipv4Addr::new(10, 0, 0, 1)),
            daddr: u32::from(std::net::Ipv4Addr::new(10, 0, 0, 2)),
            sport: 9000,
            dport: 7,
            cpu: 3,
            direction: 1,
            flags: 1,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = sample();
        let b = r.encode();
        assert_eq!(TraceRecord::decode(&b), Some(r));
        assert_eq!(TraceRecord::decode(&b[..31]), None);
    }

    #[test]
    fn flags_gate_trace_id() {
        let mut r = sample();
        assert!(r.has_trace_id());
        r.flags = 0;
        assert!(!r.has_trace_id());
    }

    #[test]
    fn to_point_tags_and_fields() {
        let p = sample().to_point("ovs_rx", "server1");
        assert_eq!(p.measurement, "ovs_rx");
        assert_eq!(p.timestamp_ns, 0x1122334455667788);
        assert_eq!(p.tag_value("node"), Some("server1"));
        assert_eq!(p.tag_value(vnet_tsdb::TRACE_ID_TAG), Some("deadbeef"));
        assert_eq!(p.tag_value("flow"), Some("10.0.0.1:9000->10.0.0.2:7"));
        assert_eq!(p.tag_value("direction"), Some("tx"));
        assert_eq!(p.field_value("pkt_len").unwrap().as_u64(), Some(102));
    }

    #[test]
    fn drop_reason_decodes_from_flag_bits() {
        let mut r = sample();
        r.flags = 1 | (2 << 1); // trace id + "policed"
        assert!(r.has_trace_id());
        assert_eq!(r.drop_reason_code(), 2);
        assert_eq!(r.drop_reason(), Some("policed"));
        let p = r.to_point("skb_drop", "n");
        assert_eq!(p.tag_value(vnet_tsdb::DROP_REASON_TAG), Some("policed"));
    }

    #[test]
    fn compact_form_materializes_identically() {
        for flags in [0u8, 1, 1 | (3 << 1), 5 << 1] {
            let mut r = sample();
            r.flags = flags;
            assert_eq!(
                r.to_compact().to_point("ovs_rx", "server1"),
                r.to_point("ovs_rx", "server1"),
                "compact round trip must match the direct point"
            );
        }
    }

    #[test]
    fn point_without_trace_id_untagged() {
        let mut r = sample();
        r.flags = 0;
        let p = r.to_point("m", "n");
        assert_eq!(p.tag_value(vnet_tsdb::TRACE_ID_TAG), None);
    }
}
