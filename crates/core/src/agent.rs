//! The per-node tracing agent.
//!
//! Agents are the daemons of §III-A: they receive configured trace
//! scripts from the dispatcher, load them (verifier + relocation) into
//! the node's eBPF runtime, attach them at the requested tracepoints, and
//! periodically drain the kernel-side buffers toward the collector. All
//! of this happens at runtime against a live [`World`] — no restart of
//! the monitored network.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use vnet_ebpf::context::TraceContext;
use vnet_ebpf::jit::CompiledProgram;
use vnet_ebpf::map::{MapDef, MapRegistry};
use vnet_ebpf::program::LoadedProgram;
use vnet_ebpf::vm::{jit_compile_cost_ns, standard_helpers, Vm, VmEnv, PROBE_BASE_COST_NS};
use vnet_sim::ids::NodeId;
use vnet_sim::probe::{Direction, ProbeEvent, ProbeId, ProbeOutcome, ProbeSink};
use vnet_sim::time::SimDuration;
use vnet_sim::world::World;

use crate::config::{Action, CollectionMode, ExecTier, GlobalConfig, TraceSpec};
use crate::error::{Result, TracerError};
use crate::record::{TraceRecord, RECORD_SIZE};

/// Identifies an installed script on an agent.
pub type ScriptId = u64;

/// Execution statistics for one installed script — the simulator's
/// version of the kernel's `bpf_prog_info` run stats (`run_cnt`,
/// `run_time_ns`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScriptStats {
    /// Times the probe fired and the program ran (`run_cnt`).
    pub executions: u64,
    /// Times the program reported a rule match.
    pub matched: u64,
    /// Runtime aborts (should stay zero for compiler-generated scripts).
    pub errors: u64,
    /// Total simulated CPU time spent executing the program, excluding
    /// the one-time compile cost and per-record ship cost
    /// (`run_time_ns`).
    pub run_time_ns: u64,
    /// Original instructions retired across all runs (tier-independent:
    /// both tiers retire the same count for the same inputs).
    pub insns_retired: u64,
    /// Ops dispatched across all runs: equals `insns_retired` on the
    /// interpreter, less on the threaded tier where fused ops retire
    /// several instructions each.
    pub ops_executed: u64,
    /// Fused-op executions on the threaded tier (0 on the interpreter).
    pub fused_hits: u64,
    /// Runtime checks skipped across all runs because the verifier's
    /// abstract interpretation proved them redundant — bounds checks,
    /// region dispatches and decided branches on the threaded tier,
    /// divisor zero-tests on both tiers.
    pub checks_elided: u64,
    /// The program's certified worst-case cost per firing in simulated
    /// nanoseconds, probe entry included — the static bound from
    /// [`vnet_ebpf::cost::certify`] that [`Self::avg_run_ns`] can never
    /// exceed. Constant for the script's lifetime.
    pub certified_cost_ns: u64,
    /// Instructions the load-time optimizer removed from the program
    /// (0 when loaded without optimization).
    pub insns_eliminated: u64,
    /// The tier this script executes on.
    pub tier: ExecTier,
}

impl ScriptStats {
    /// Average simulated nanoseconds per run, 0 before the first run.
    /// Always at most [`Self::certified_cost_ns`]: the certificate is a
    /// sound worst-case bound over every execution path.
    pub fn avg_run_ns(&self) -> u64 {
        self.run_time_ns.checked_div(self.executions).unwrap_or(0)
    }
}

/// CPU cost of shipping one record to user space immediately in
/// [`CollectionMode::Online`]: a wakeup, a copy out of the ring and a
/// send. The offline mode amortizes this over whole-buffer dumps, which
/// is why the paper recommends it for overhead-sensitive applications
/// (§III-C).
pub const ONLINE_SHIP_COST_NS: u64 = 1_500;

/// The execution engine behind a probe: the interpreter re-decodes
/// bytecode every firing; the threaded tier runs the pre-compiled form,
/// paying a one-time compile cost on its first firing.
enum Engine {
    Interp(Vm),
    Jit {
        compiled: CompiledProgram,
        /// Compile cost not yet charged; taken (zeroed) on first run.
        pending_compile_ns: u64,
    },
}

/// The [`ProbeSink`] wrapper that runs a loaded eBPF program each time
/// its hook fires, charging the simulated CPU cost of the execution back
/// to the packet being processed — the mechanism behind the overhead
/// measurements of Fig. 7.
pub struct EbpfProbeSink {
    program: LoadedProgram,
    maps: Arc<Mutex<MapRegistry>>,
    engine: Engine,
    stats: ScriptStats,
    prandom_state: u64,
    per_match_extra_ns: u64,
}

impl EbpfProbeSink {
    fn new(
        loaded: LoadedProgram,
        maps: Arc<Mutex<MapRegistry>>,
        tier: ExecTier,
        prandom_state: u64,
        per_match_extra_ns: u64,
    ) -> Self {
        let engine = match tier {
            ExecTier::Interp => Engine::Interp(Vm::new()),
            ExecTier::Jit => Engine::Jit {
                compiled: vnet_ebpf::jit::compile(&loaded),
                pending_compile_ns: jit_compile_cost_ns(loaded.insns().len()),
            },
        };
        let stats = ScriptStats {
            tier,
            certified_cost_ns: PROBE_BASE_COST_NS + loaded.certificate().worst_case_ns,
            insns_eliminated: loaded.opt_stats().insns_eliminated() as u64,
            ..ScriptStats::default()
        };
        EbpfProbeSink {
            program: loaded,
            maps,
            engine,
            stats,
            prandom_state,
            per_match_extra_ns,
        }
    }
}

impl std::fmt::Debug for EbpfProbeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EbpfProbeSink")
            .field("program", &self.program.name())
            .field("stats", &self.stats)
            .finish()
    }
}

struct EventEnv<'a> {
    time_ns: u64,
    cpu: u32,
    prandom_state: &'a mut u64,
}

impl VmEnv for EventEnv<'_> {
    fn ktime_get_ns(&mut self) -> u64 {
        self.time_ns
    }

    fn prandom_u32(&mut self) -> u32 {
        *self.prandom_state = self.prandom_state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *self.prandom_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as u32
    }

    fn smp_processor_id(&self) -> u32 {
        self.cpu
    }
}

impl ProbeSink for EbpfProbeSink {
    fn handle(&mut self, event: &ProbeEvent<'_>) -> ProbeOutcome {
        let pkt: &[u8] = event.packet.map(|p| p.bytes()).unwrap_or(&[]);
        let ctx = TraceContext {
            timestamp_ns: event.monotonic_ns,
            pkt_len: pkt.len() as u32,
            cpu: u32::from(event.cpu.0),
            node: event.node.0,
            device: event.device.map_or(u32::MAX, |d| d.0),
            direction: match event.direction {
                Direction::Rx => 0,
                Direction::Tx => 1,
            },
            aux: event.aux,
        };
        let mut env = EventEnv {
            time_ns: event.monotonic_ns,
            cpu: ctx.cpu,
            prandom_state: &mut self.prandom_state,
        };
        let mut maps = self.maps.lock().unwrap();
        // (return value, execution cost, one-time extra) per tier; both
        // tiers produce identical results, side effects and per-path
        // costs (fused ops charge the sum of their components) — they
        // differ only in the one-time compile charge. The charged cost
        // is the path's toll under the shared table in `vnet_ebpf::cost`
        // and is bounded by the program's certificate, so a script that
        // passed the probe-budget check can never exceed its budget
        // here. Aborts charge the probe entry only.
        let (result, one_time_ns) = match &mut self.engine {
            Engine::Interp(vm) => (
                vm.execute(&self.program, &ctx, pkt, &mut maps, &mut env)
                    .map(|out| {
                        self.stats.insns_retired += out.insns_executed;
                        self.stats.ops_executed += out.insns_executed;
                        self.stats.checks_elided += out.checks_elided;
                        (out.ret, PROBE_BASE_COST_NS + out.cost_ns)
                    })
                    .map_err(|_| PROBE_BASE_COST_NS),
                0,
            ),
            Engine::Jit {
                compiled,
                pending_compile_ns,
            } => (
                compiled
                    .execute(&ctx, pkt, &mut maps, &mut env)
                    .map(|out| {
                        self.stats.insns_retired += out.insns_retired;
                        self.stats.ops_executed += out.ops_executed;
                        self.stats.fused_hits += out.fused_hits;
                        self.stats.checks_elided += out.checks_elided;
                        (out.ret, PROBE_BASE_COST_NS + out.cost_ns)
                    })
                    .map_err(|_| PROBE_BASE_COST_NS),
                // First firing pays the compile.
                std::mem::take(pending_compile_ns),
            ),
        };
        match result {
            Ok((ret, exec_ns)) => {
                self.stats.executions += 1;
                self.stats.run_time_ns += exec_ns;
                let mut cost = exec_ns + one_time_ns;
                if ret == 1 {
                    self.stats.matched += 1;
                    cost += self.per_match_extra_ns;
                }
                ProbeOutcome::with_cost(SimDuration::from_nanos(cost))
            }
            Err(base_ns) => {
                self.stats.errors += 1;
                ProbeOutcome::with_cost(SimDuration::from_nanos(base_ns + one_time_ns))
            }
        }
    }
}

/// The attach-time probe-budget gate: rejects a loaded program whose
/// certified worst-case cost per firing (probe entry included) exceeds
/// `budget`, with a kernel-verifier-style annotated cost report showing
/// where the worst-case path spends its time.
fn check_budget(loaded: &LoadedProgram, budget: Option<u64>) -> Result<()> {
    let Some(budget_ns) = budget else {
        return Ok(());
    };
    let certified_ns = PROBE_BASE_COST_NS + loaded.certificate().worst_case_ns;
    if certified_ns > budget_ns {
        return Err(TracerError::OverBudget {
            name: loaded.name().to_owned(),
            certified_ns,
            budget_ns,
            report: vnet_ebpf::cost::render_cost_report(
                loaded.insns(),
                loaded.analysis(),
                loaded.certificate(),
            ),
        });
    }
    Ok(())
}

#[derive(Debug)]
struct Installed {
    spec: TraceSpec,
    probe: ProbeId,
    perf_fd: Option<i32>,
    counter_fd: Option<i32>,
    sink: Arc<Mutex<EbpfProbeSink>>,
}

/// A per-node tracing agent.
#[derive(Debug)]
pub struct Agent {
    node: NodeId,
    node_name: String,
    num_cpus: u16,
    maps: Arc<Mutex<MapRegistry>>,
    installed: HashMap<ScriptId, Installed>,
    next_id: ScriptId,
    heartbeat_seq: u64,
}

impl Agent {
    /// Creates an agent for `node`.
    pub fn new(node: NodeId, node_name: impl Into<String>, num_cpus: u16) -> Self {
        Agent {
            node,
            node_name: node_name.into(),
            num_cpus,
            maps: Arc::new(Mutex::new(MapRegistry::new())),
            installed: HashMap::new(),
            next_id: 1,
            heartbeat_seq: 0,
        }
    }

    /// The node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's name.
    pub fn node_name(&self) -> &str {
        &self.node_name
    }

    /// Compiles, loads and attaches a trace script; `buffer_size` sizes
    /// the per-CPU perf buffer for record-producing scripts.
    ///
    /// # Errors
    ///
    /// Returns a [`TracerError`] if maps cannot be created, the program
    /// fails verification, or assembly fails.
    pub fn install(
        &mut self,
        world: &mut World,
        spec: &TraceSpec,
        buffer_size: u32,
    ) -> Result<ScriptId> {
        self.install_with_mode(world, spec, buffer_size, CollectionMode::Offline)
    }

    /// Like [`Agent::install`], with an explicit collection mode: in
    /// [`CollectionMode::Online`] every matched record additionally pays
    /// [`ONLINE_SHIP_COST_NS`] of CPU to be shipped to user space
    /// immediately.
    ///
    /// # Errors
    ///
    /// See [`Agent::install`].
    pub fn install_with_mode(
        &mut self,
        world: &mut World,
        spec: &TraceSpec,
        buffer_size: u32,
        mode: CollectionMode,
    ) -> Result<ScriptId> {
        let global = GlobalConfig {
            buffer_size,
            mode,
            ..GlobalConfig::default()
        };
        self.install_with_config(world, spec, &global)
    }

    /// Like [`Agent::install`], taking the full global configuration:
    /// collection mode (online shipping costs per-match CPU) and
    /// execution tier (the threaded tier pays a one-time compile cost on
    /// the script's first firing, then a reduced per-op cost).
    ///
    /// # Errors
    ///
    /// See [`Agent::install`].
    pub fn install_with_config(
        &mut self,
        world: &mut World,
        spec: &TraceSpec,
        global: &GlobalConfig,
    ) -> Result<ScriptId> {
        let buffer_size = global.buffer_size;
        let cpus = usize::from(self.num_cpus);
        let (perf_fd, counter_fd) = match spec.action {
            Action::RecordPacketInfo | Action::RecordDropInfo => {
                let fd = self
                    .maps
                    .lock()
                    .unwrap()
                    .create(MapDef::perf(buffer_size), cpus)?;
                (Some(fd), None)
            }
            Action::CountPerCpu => {
                let fd = self
                    .maps
                    .lock()
                    .unwrap()
                    .create(MapDef::per_cpu_array(8, 1), cpus)?;
                (None, Some(fd))
            }
        };
        let program = crate::compile::compile(spec, perf_fd, counter_fd)?;
        let loaded = {
            let maps = self.maps.lock().unwrap();
            vnet_ebpf::program::load(program, &maps, &standard_helpers())?
        };
        check_budget(&loaded, global.probe_budget)?;
        let per_match_extra_ns = match global.mode {
            CollectionMode::Offline => 0,
            CollectionMode::Online => ONLINE_SHIP_COST_NS,
        };
        let sink = Arc::new(Mutex::new(EbpfProbeSink::new(
            loaded,
            Arc::clone(&self.maps),
            global.exec_tier,
            0x5eed ^ self.next_id,
            per_match_extra_ns,
        )));
        let probe = world.attach_probe(self.node, spec.hook.to_sim_hook(), sink.clone());
        let id = self.next_id;
        self.next_id += 1;
        self.installed.insert(
            id,
            Installed {
                spec: spec.clone(),
                probe,
                perf_fd,
                counter_fd,
                sink,
            },
        );
        Ok(id)
    }

    /// Loads and attaches a hand-written eBPF program at `hook` — the
    /// escape hatch for trace logic beyond the built-in filter/action
    /// compiler. The program is verified and its map fds relocated
    /// against this agent's map registry (see [`Agent::maps`]).
    ///
    /// # Errors
    ///
    /// Returns [`TracerError::Load`] if verification or relocation fails.
    pub fn install_raw(
        &mut self,
        world: &mut World,
        name: &str,
        hook: &crate::config::HookSpec,
        insns: Vec<vnet_ebpf::Insn>,
    ) -> Result<ScriptId> {
        self.install_raw_with_config(world, name, hook, insns, &GlobalConfig::default())
    }

    /// Like [`Agent::install_raw`], taking the full global configuration:
    /// the program runs on the configured execution tier and — when
    /// [`GlobalConfig::probe_budget`] is set — is rejected with
    /// [`TracerError::OverBudget`] if its certified worst-case cost
    /// exceeds the budget.
    ///
    /// # Errors
    ///
    /// See [`Agent::install_raw`]; additionally [`TracerError::OverBudget`].
    pub fn install_raw_with_config(
        &mut self,
        world: &mut World,
        name: &str,
        hook: &crate::config::HookSpec,
        insns: Vec<vnet_ebpf::Insn>,
        global: &GlobalConfig,
    ) -> Result<ScriptId> {
        let program = vnet_ebpf::Program::new(name, crate::compile::attach_type(hook), insns);
        let loaded = {
            let maps = self.maps.lock().unwrap();
            vnet_ebpf::program::load(program, &maps, &standard_helpers())?
        };
        check_budget(&loaded, global.probe_budget)?;
        let sink = Arc::new(Mutex::new(EbpfProbeSink::new(
            loaded,
            Arc::clone(&self.maps),
            global.exec_tier,
            0x5eed ^ self.next_id,
            0,
        )));
        let probe = world.attach_probe(self.node, hook.to_sim_hook(), sink.clone());
        let id = self.next_id;
        self.next_id += 1;
        let spec = TraceSpec {
            name: name.to_owned(),
            node: self.node_name.clone(),
            hook: hook.clone(),
            filter: crate::config::FilterRule::any(),
            action: Action::CountPerCpu,
        };
        self.installed.insert(
            id,
            Installed {
                spec,
                probe,
                perf_fd: None,
                counter_fd: None,
                sink,
            },
        );
        Ok(id)
    }

    /// The agent's map registry, shared with its loaded programs. Create
    /// maps here before assembling a raw program that references their
    /// fds, and read results back after the run.
    pub fn maps(&self) -> Arc<Mutex<MapRegistry>> {
        Arc::clone(&self.maps)
    }

    /// Detaches and removes a script (runtime reconfiguration).
    ///
    /// # Errors
    ///
    /// Returns [`TracerError::UnknownScript`] if `id` is not installed.
    pub fn uninstall(&mut self, world: &mut World, id: ScriptId) -> Result<()> {
        let installed = self
            .installed
            .remove(&id)
            .ok_or(TracerError::UnknownScript(id))?;
        world.detach_probe(installed.probe);
        Ok(())
    }

    /// Detaches every installed script.
    pub fn uninstall_all(&mut self, world: &mut World) {
        let ids: Vec<ScriptId> = self.installed.keys().copied().collect();
        for id in ids {
            let _ = self.uninstall(world, id);
        }
    }

    /// Installed script ids.
    pub fn script_ids(&self) -> Vec<ScriptId> {
        let mut ids: Vec<ScriptId> = self.installed.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Execution statistics for a script.
    pub fn stats(&self, id: ScriptId) -> Option<ScriptStats> {
        self.installed
            .get(&id)
            .map(|i| i.sink.lock().unwrap().stats)
    }

    /// Drains all perf buffers: the periodic buffer dump of §III-C.
    /// Returns `(table name, record)` pairs.
    pub fn drain(&mut self) -> Vec<(String, TraceRecord)> {
        let mut batch = vnet_tsdb::RecordBatch::new();
        self.drain_into(&mut batch);
        let mut out = Vec::new();
        for group in batch.groups() {
            for r in &group.records {
                out.push((
                    group.measurement.clone(),
                    TraceRecord {
                        timestamp_ns: r.timestamp_ns,
                        trace_id: r.trace_id,
                        pkt_len: r.pkt_len,
                        saddr: r.saddr,
                        daddr: r.daddr,
                        sport: r.sport,
                        dport: r.dport,
                        cpu: r.cpu,
                        direction: r.direction,
                        flags: r.flags,
                    },
                ));
            }
        }
        out
    }

    /// Drains every perf buffer straight into `batch`, grouped by
    /// (table, node) — the allocation-free half of the batched collection
    /// path. Records are decoded in place from the ring and appended in
    /// compact form; scripts are visited in install order so output is
    /// deterministic. Returns the number of records drained.
    pub fn drain_into(&mut self, batch: &mut vnet_tsdb::RecordBatch) -> usize {
        let mut drained = 0;
        let mut maps = self.maps.lock().unwrap();
        for id in self.script_ids() {
            let installed = &self.installed[&id];
            let Some(fd) = installed.perf_fd else {
                continue;
            };
            let Some(map) = maps.get_mut(fd) else {
                continue;
            };
            let group = batch.group_mut(&installed.spec.name, &self.node_name);
            for cpu in 0..usize::from(self.num_cpus) {
                map.perf_drain_with(cpu, |raw| {
                    if raw.len() == RECORD_SIZE {
                        if let Some(rec) = TraceRecord::decode(raw) {
                            group.records.push(rec.to_compact());
                            drained += 1;
                        }
                    }
                });
            }
        }
        drained
    }

    /// Number of records lost to perf-buffer overflow for a script.
    pub fn lost_records(&self, id: ScriptId) -> u64 {
        let Some(installed) = self.installed.get(&id) else {
            return 0;
        };
        let Some(fd) = installed.perf_fd else {
            return 0;
        };
        let maps = self.maps.lock().unwrap();
        let Some(map) = maps.get(fd) else { return 0 };
        (0..usize::from(self.num_cpus))
            .map(|c| map.perf_lost(c))
            .sum()
    }

    /// Total records lost to perf-buffer overflow across all installed
    /// scripts — reported with each batch so the collector's stats
    /// surface can track drops per agent.
    pub fn lost_records_total(&self) -> u64 {
        self.installed.keys().map(|&id| self.lost_records(id)).sum()
    }

    /// Per-CPU counter values of a [`Action::CountPerCpu`] script.
    pub fn counter_per_cpu(&self, id: ScriptId) -> Option<Vec<u64>> {
        let installed = self.installed.get(&id)?;
        let fd = installed.counter_fd?;
        let mut maps = self.maps.lock().unwrap();
        let map = maps.get_mut(fd)?;
        let mut out = Vec::with_capacity(usize::from(self.num_cpus));
        for cpu in 0..usize::from(self.num_cpus) {
            let v = map
                .lookup(&0u32.to_le_bytes(), cpu)
                .ok()
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte counter")))
                .unwrap_or(0);
            out.push(v);
        }
        Some(out)
    }

    /// Produces the next heartbeat sequence number (the collector uses
    /// these to monitor agent liveness, §III-C).
    pub fn heartbeat(&mut self) -> u64 {
        self.heartbeat_seq += 1;
        self.heartbeat_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FilterRule, HookSpec};
    use std::net::Ipv4Addr;
    use std::net::SocketAddrV4;
    use vnet_sim::device::{DeviceConfig, Forwarding};
    use vnet_sim::node::NodeClock;
    use vnet_sim::packet::{FlowKey, PacketBuilder, SocketAddrV4Ext};
    use vnet_sim::time::SimTime;

    fn world_with_device() -> (World, NodeId) {
        let mut w = World::new(11);
        let n = w.add_node("server1", 4, NodeClock::perfect());
        let _eth0 = w.add_device(DeviceConfig::new("eth0", n).forwarding(Forwarding::Deliver));
        (w, n)
    }

    fn udp_spec() -> TraceSpec {
        TraceSpec {
            name: "eth0_rx".into(),
            node: "server1".into(),
            hook: HookSpec::DeviceRx("eth0".into()),
            filter: FilterRule::udp_flow(
                (Ipv4Addr::new(10, 0, 0, 1), 1000),
                (Ipv4Addr::new(10, 0, 0, 2), 2000),
            ),
            action: Action::RecordPacketInfo,
        }
    }

    fn udp_pkt() -> vnet_sim::packet::Packet {
        let flow = FlowKey::udp(
            SocketAddrV4::sock("10.0.0.1", 1000),
            SocketAddrV4::sock("10.0.0.2", 2000),
        );
        PacketBuilder::udp(flow, vec![0xaa; 20]).build()
    }

    #[test]
    fn install_fire_drain_cycle() {
        let (mut w, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        let id = agent.install(&mut w, &udp_spec(), 4096).unwrap();
        let dev = w.find_device(n, "eth0").unwrap();
        for _ in 0..3 {
            w.inject(dev, udp_pkt());
        }
        w.run_until(SimTime::from_millis(1));
        let stats = agent.stats(id).unwrap();
        assert_eq!(stats.executions, 3);
        assert_eq!(stats.matched, 3);
        assert_eq!(stats.errors, 0);
        let records = agent.drain();
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|(name, _)| name == "eth0_rx"));
        // Second drain is empty.
        assert!(agent.drain().is_empty());
    }

    #[test]
    fn non_matching_traffic_not_recorded() {
        let (mut w, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        let id = agent.install(&mut w, &udp_spec(), 4096).unwrap();
        let dev = w.find_device(n, "eth0").unwrap();
        let other = FlowKey::udp(
            SocketAddrV4::sock("10.9.9.9", 1),
            SocketAddrV4::sock("10.0.0.2", 2000),
        );
        w.inject(dev, PacketBuilder::udp(other, vec![0; 8]).build());
        w.run_until(SimTime::from_millis(1));
        let stats = agent.stats(id).unwrap();
        assert_eq!(stats.executions, 1, "program ran");
        assert_eq!(stats.matched, 0, "but did not match");
        assert!(agent.drain().is_empty());
    }

    #[test]
    fn uninstall_detaches_probe() {
        let (mut w, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        let id = agent.install(&mut w, &udp_spec(), 4096).unwrap();
        agent.uninstall(&mut w, id).unwrap();
        assert!(matches!(
            agent.uninstall(&mut w, id),
            Err(TracerError::UnknownScript(_))
        ));
        let dev = w.find_device(n, "eth0").unwrap();
        w.inject(dev, udp_pkt());
        w.run_until(SimTime::from_millis(1));
        assert_eq!(w.probes_fired(), 0);
    }

    #[test]
    fn counter_script_counts() {
        let (mut w, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        let spec = TraceSpec {
            name: "count".into(),
            node: "server1".into(),
            hook: HookSpec::DeviceRx("eth0".into()),
            filter: FilterRule::any(),
            action: Action::CountPerCpu,
        };
        let id = agent.install(&mut w, &spec, 4096).unwrap();
        let dev = w.find_device(n, "eth0").unwrap();
        for _ in 0..5 {
            w.inject(dev, udp_pkt());
        }
        w.run_until(SimTime::from_millis(1));
        let counts = agent.counter_per_cpu(id).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 5);
        assert_eq!(agent.counter_per_cpu(999), None);
    }

    #[test]
    fn probe_timestamps_use_node_clock() {
        let mut w = World::new(12);
        let n = w.add_node("skewed", 2, NodeClock::with_offset_ns(1_000_000));
        w.add_device(DeviceConfig::new("eth0", n).forwarding(Forwarding::Deliver));
        let mut agent = Agent::new(n, "skewed", 2);
        agent.install(&mut w, &udp_spec(), 4096).unwrap();
        let dev = w.find_device(n, "eth0").unwrap();
        w.inject(dev, udp_pkt());
        w.run_until(SimTime::from_millis(1));
        let records = agent.drain();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].1.timestamp_ns, 1_000_000,
            "injection at t=0 on a +1ms clock"
        );
    }

    #[test]
    fn certified_cost_bounds_actual_cost() {
        let (mut w, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        let id = agent.install(&mut w, &udp_spec(), 4096).unwrap();
        let dev = w.find_device(n, "eth0").unwrap();
        for _ in 0..3 {
            w.inject(dev, udp_pkt());
        }
        w.run_until(SimTime::from_millis(1));
        let stats = agent.stats(id).unwrap();
        assert!(stats.certified_cost_ns > PROBE_BASE_COST_NS);
        assert!(
            stats.avg_run_ns() <= stats.certified_cost_ns,
            "dynamic {} ns exceeded certificate {} ns",
            stats.avg_run_ns(),
            stats.certified_cost_ns
        );
        assert!(stats.insns_eliminated > 0, "optimizer shrank the filter");
    }

    #[test]
    fn over_budget_script_rejected_at_attach() {
        let (mut w, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        // A one-nanosecond budget is under even the bare probe entry.
        let global = GlobalConfig {
            probe_budget: Some(1),
            ..GlobalConfig::default()
        };
        let err = agent
            .install_with_config(&mut w, &udp_spec(), &global)
            .unwrap_err();
        match err {
            TracerError::OverBudget {
                certified_ns,
                budget_ns,
                ref report,
                ..
            } => {
                assert_eq!(budget_ns, 1);
                assert!(certified_ns > budget_ns);
                assert!(report.contains("certified worst-case"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Nothing was attached.
        assert!(agent.script_ids().is_empty());
        // A generous budget admits the same script.
        let global = GlobalConfig {
            probe_budget: Some(1_000_000),
            ..GlobalConfig::default()
        };
        agent
            .install_with_config(&mut w, &udp_spec(), &global)
            .unwrap();
    }

    #[test]
    fn raw_install_respects_budget() {
        use vnet_ebpf::asm::{reg::*, Asm};
        let (mut w, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        let insns = Asm::new().mov64_imm(R0, 0).exit().build().unwrap();
        let hook = HookSpec::DeviceRx("eth0".into());
        let global = GlobalConfig {
            probe_budget: Some(PROBE_BASE_COST_NS),
            ..GlobalConfig::default()
        };
        // mov+exit certifies above the bare entry cost: rejected.
        assert!(matches!(
            agent.install_raw_with_config(&mut w, "tiny", &hook, insns.clone(), &global),
            Err(TracerError::OverBudget { .. })
        ));
        let global = GlobalConfig {
            probe_budget: Some(PROBE_BASE_COST_NS + 10),
            ..GlobalConfig::default()
        };
        agent
            .install_raw_with_config(&mut w, "tiny", &hook, insns, &global)
            .unwrap();
    }

    #[test]
    fn heartbeats_increment() {
        let (_, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        assert_eq!(agent.heartbeat(), 1);
        assert_eq!(agent.heartbeat(), 2);
    }

    #[test]
    fn lost_records_counted_on_tiny_buffer() {
        let (mut w, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        // 32-byte buffer holds exactly one record.
        let id = agent.install(&mut w, &udp_spec(), 32).unwrap();
        let dev = w.find_device(n, "eth0").unwrap();
        for _ in 0..4 {
            w.inject(dev, udp_pkt());
        }
        w.run_until(SimTime::from_millis(1));
        assert_eq!(agent.lost_records(id), 3);
        assert_eq!(agent.lost_records_total(), 3);
        assert_eq!(agent.drain().len(), 1);
    }

    #[test]
    fn drain_into_batches_by_script_and_reuses_buffers() {
        let (mut w, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        agent.install(&mut w, &udp_spec(), 4096).unwrap();
        let dev = w.find_device(n, "eth0").unwrap();
        for _ in 0..3 {
            w.inject(dev, udp_pkt());
        }
        w.run_until(SimTime::from_millis(1));
        let mut batch = vnet_tsdb::RecordBatch::new();
        assert_eq!(agent.drain_into(&mut batch), 3);
        assert_eq!(batch.len(), 3);
        let group = &batch.groups()[0];
        assert_eq!(group.measurement, "eth0_rx");
        assert_eq!(group.node, "server1");
        assert!(group.records.iter().all(|r| r.pkt_len > 0));
        // Second cycle: clear, fire again, drain into the same batch.
        batch.clear();
        w.inject(dev, udp_pkt());
        w.run_until(SimTime::from_millis(2));
        assert_eq!(agent.drain_into(&mut batch), 1);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.groups().len(), 1, "group was reused, not re-added");
        // Nothing left after the drain.
        batch.clear();
        assert_eq!(agent.drain_into(&mut batch), 0);
    }

    #[test]
    fn drain_and_drain_into_agree() {
        let (mut w, n) = world_with_device();
        let mut agent = Agent::new(n, "server1", 4);
        agent.install(&mut w, &udp_spec(), 4096).unwrap();
        let dev = w.find_device(n, "eth0").unwrap();
        for _ in 0..2 {
            w.inject(dev, udp_pkt());
        }
        w.run_until(SimTime::from_millis(1));
        let mut batch = vnet_tsdb::RecordBatch::new();
        agent.drain_into(&mut batch);
        // Re-run the same traffic and use the legacy drain.
        for _ in 0..2 {
            w.inject(dev, udp_pkt());
        }
        w.run_until(SimTime::from_millis(2));
        let legacy = agent.drain();
        assert_eq!(legacy.len(), batch.len());
        for ((table, rec), compact) in legacy.iter().zip(&batch.groups()[0].records) {
            assert_eq!(table, "eth0_rx");
            assert_eq!(rec.to_compact().pkt_len, compact.pkt_len);
        }
    }
}
