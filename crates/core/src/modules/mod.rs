//! The module registry: tracing organized as pluggable modules selected
//! by named profiles (the retis-style answer to "write a trace program
//! per question").
//!
//! A **module** bundles everything one tracing question needs:
//!
//! * the trace programs it installs (as [`TraceSpec`]s, compiled and
//!   budget-checked through the same `compile.rs`/`install_with_config`
//!   pipeline as everything else),
//! * the typed record schema its tables carry (so collectors and the
//!   tsdb know which tags and fields to expect), and
//! * the streaming metric operators and alert kinds it contributes to
//!   `vnet-live`.
//!
//! A **profile** is a named set of modules resolved and attached in one
//! call; `ModuleRegistry::package` is the single plumbing path from a
//! profile to the [`ControlPackage`] the dispatcher ships. Modules are
//! topology-agnostic: a scenario describes *where* to attach through a
//! [`ModuleScope`] (packet taps, drop taps, OVS fabrics, request-chain
//! tiers), and each module turns the slice of the scope it understands
//! into concrete trace programs and metric specs.

mod builtin;

pub use builtin::{OvsFlowModule, PacketPathModule, RequestTraceModule, SkbDropModule};

use std::collections::BTreeMap;

use crate::config::{ControlPackage, FilterRule, GlobalConfig, HookSpec, TraceSpec};
use crate::error::{Result, TracerError};

/// One packet tap: a table name plus the node, hook and filter a
/// packet-record trace program attaches with.
#[derive(Debug, Clone, PartialEq)]
pub struct TapSpec {
    /// Table (script) name the tap's records land in.
    pub table: String,
    /// Node the program runs on.
    pub node: String,
    /// Where it attaches.
    pub hook: HookSpec,
    /// Which packets it matches.
    pub filter: FilterRule,
}

impl TapSpec {
    /// A device-receive tap.
    pub fn rx(table: &str, node: &str, device: &str, filter: FilterRule) -> Self {
        TapSpec {
            table: table.to_owned(),
            node: node.to_owned(),
            hook: HookSpec::DeviceRx(device.to_owned()),
            filter,
        }
    }

    /// A device-transmit tap.
    pub fn tx(table: &str, node: &str, device: &str, filter: FilterRule) -> Self {
        TapSpec {
            table: table.to_owned(),
            node: node.to_owned(),
            hook: HookSpec::DeviceTx(device.to_owned()),
            filter,
        }
    }

    /// A drop tap: attaches at the node's `kfree_skb` tracepoint, where
    /// the simulated kernel reports every device drop with its typed
    /// reason code.
    pub fn drops(table: &str, node: &str, filter: FilterRule) -> Self {
        TapSpec {
            table: table.to_owned(),
            node: node.to_owned(),
            hook: HookSpec::Tracepoint("kfree_skb".to_owned()),
            filter,
        }
    }
}

/// An OVS fabric attachment point for the `ovs-flow` module: the module
/// derives its three tables (`{prefix}_lookup`, `{prefix}_lookup_ret`,
/// `{prefix}_upcall`) from the prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct OvsTap {
    /// Table-name prefix for the fabric's three tables.
    pub prefix: String,
    /// Node hosting the OVS fabric device.
    pub node: String,
    /// Which packets to trace through the flow table.
    pub filter: FilterRule,
}

/// Where a profile's modules attach in a concrete topology. A scenario
/// builds one of these; each module consumes the slice it understands
/// and ignores the rest, so one scope drives any profile.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModuleScope {
    /// Packet-path taps, in installation (and table-creation) order.
    pub packet_taps: Vec<TapSpec>,
    /// `(from, to)` table pairs to track latency/jitter/loss between.
    pub latency_pairs: Vec<(String, String)>,
    /// Tables to track windowed throughput on.
    pub throughput_tables: Vec<String>,
    /// Drop taps (usually one `kfree_skb` tap per traced node).
    pub drop_taps: Vec<TapSpec>,
    /// OVS fabric devices to trace flow-table lookups and upcalls on.
    pub ovs_taps: Vec<OvsTap>,
    /// Request-chain taps in tier order (client → tiers → client); the
    /// `request-trace` module decomposes latency between consecutive
    /// entries.
    pub request_taps: Vec<TapSpec>,
}

/// How a module's metric contribution is described — data only, so the
/// registry (in `vnettracer`) never depends on `vnet-live`; the live
/// crate converts a spec list into a `LiveConfig`.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSpec {
    /// Windowed latency (and jitter) between two tables' records,
    /// joined by trace ID.
    Latency {
        /// Upstream table.
        from: String,
        /// Downstream table.
        to: String,
    },
    /// Windowed throughput (packets and bytes) of one table.
    Throughput {
        /// The table.
        table: String,
    },
    /// Windowed loss between two tables (IDs seen upstream but never
    /// downstream).
    Loss {
        /// Upstream table.
        upstream: String,
        /// Downstream table.
        downstream: String,
    },
}

/// The typed record schema a module's tables carry: which tags and
/// fields its records materialize in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSchema {
    /// Schema name.
    pub name: &'static str,
    /// Tags every record of this schema materializes (optional tags are
    /// suffixed with `?`).
    pub tags: &'static [&'static str],
    /// Numeric fields every record carries.
    pub fields: &'static [&'static str],
}

/// A pluggable tracing module: programs + record schema + metric
/// operators, bundled under one name.
pub trait Module: std::fmt::Debug {
    /// The module's registry name (also the name profiles refer to it by).
    fn name(&self) -> &'static str;
    /// One-line description for `vnt modules`.
    fn description(&self) -> &'static str;
    /// The record schema of the tables this module creates.
    fn schema(&self) -> RecordSchema;
    /// The alert kinds this module's metrics can raise in `vnet-live`.
    fn alert_kinds(&self) -> &'static [&'static str];
    /// The trace programs to install for `scope`.
    fn programs(&self, scope: &ModuleScope) -> Vec<TraceSpec>;
    /// The streaming metrics to compute for `scope`.
    fn metrics(&self, scope: &ModuleScope) -> Vec<MetricSpec>;
}

/// The registry: modules by name plus named profiles over them.
pub struct ModuleRegistry {
    modules: Vec<Box<dyn Module>>,
    profiles: BTreeMap<String, Vec<String>>,
}

impl std::fmt::Debug for ModuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleRegistry")
            .field("modules", &self.module_names())
            .field("profiles", &self.profiles)
            .finish()
    }
}

impl ModuleRegistry {
    /// An empty registry with no modules or profiles.
    pub fn new() -> Self {
        ModuleRegistry {
            modules: Vec::new(),
            profiles: BTreeMap::new(),
        }
    }

    /// The built-in registry: the `packet-path`, `skb-drop`, `ovs-flow`
    /// and `request-trace` modules, with profiles
    ///
    /// * `default` — the packet-path probe set every testbed deploys,
    /// * `drops` — packet-drop root-cause tracing,
    /// * `ovs` — flow-table lookup and upcall tracing,
    /// * `requests` — cross-tier request-chain tracing,
    /// * `full` — all of the above.
    pub fn builtin() -> Self {
        let mut r = ModuleRegistry::new();
        r.register(Box::new(PacketPathModule));
        r.register(Box::new(SkbDropModule));
        r.register(Box::new(OvsFlowModule));
        r.register(Box::new(RequestTraceModule));
        for (profile, modules) in [
            ("default", vec!["packet-path"]),
            ("drops", vec!["skb-drop"]),
            ("ovs", vec!["ovs-flow"]),
            ("requests", vec!["request-trace"]),
            (
                "full",
                vec!["packet-path", "skb-drop", "ovs-flow", "request-trace"],
            ),
        ] {
            r.define_profile(profile, &modules)
                .expect("builtin profiles reference builtin modules");
        }
        r
    }

    /// Adds a module. A module re-registered under an existing name
    /// replaces the old one.
    pub fn register(&mut self, module: Box<dyn Module>) {
        if let Some(i) = self.modules.iter().position(|m| m.name() == module.name()) {
            self.modules[i] = module;
        } else {
            self.modules.push(module);
        }
    }

    /// Defines (or redefines) a profile as an ordered module set.
    ///
    /// # Errors
    ///
    /// [`TracerError::UnknownModule`] if any named module is not
    /// registered.
    pub fn define_profile(&mut self, name: &str, modules: &[&str]) -> Result<()> {
        for m in modules {
            self.module(m)?;
        }
        self.profiles.insert(
            name.to_owned(),
            modules.iter().map(|m| (*m).to_owned()).collect(),
        );
        Ok(())
    }

    /// Registered module names, in registration order.
    pub fn module_names(&self) -> Vec<&'static str> {
        self.modules.iter().map(|m| m.name()).collect()
    }

    /// Registered profile names, sorted.
    pub fn profile_names(&self) -> Vec<&str> {
        self.profiles.keys().map(String::as_str).collect()
    }

    /// Looks up a module by name, suggesting the closest registered name
    /// on a miss.
    ///
    /// # Errors
    ///
    /// [`TracerError::UnknownModule`] when no module has that name.
    pub fn module(&self, name: &str) -> Result<&dyn Module> {
        self.modules
            .iter()
            .find(|m| m.name() == name)
            .map(Box::as_ref)
            .ok_or_else(|| TracerError::UnknownModule {
                name: name.to_owned(),
                suggestion: closest(name, self.module_names().into_iter()),
            })
    }

    /// Resolves a profile to its modules, in profile order.
    ///
    /// # Errors
    ///
    /// [`TracerError::UnknownProfile`] when the profile is not defined
    /// (with the closest defined name as a suggestion).
    pub fn resolve(&self, profile: &str) -> Result<Vec<&dyn Module>> {
        let names = self
            .profiles
            .get(profile)
            .ok_or_else(|| TracerError::UnknownProfile {
                name: profile.to_owned(),
                suggestion: closest(profile, self.profiles.keys().map(String::as_str)),
            })?;
        names.iter().map(|n| self.module(n)).collect()
    }

    /// THE plumbing path: resolves `profile`, asks each module for its
    /// programs under `scope`, and assembles the control package the
    /// dispatcher ships. Program order is profile order, then each
    /// module's own order — deterministic, so repeated calls build
    /// byte-identical packages.
    ///
    /// # Errors
    ///
    /// [`TracerError::UnknownProfile`] / [`TracerError::UnknownModule`]
    /// from resolution.
    pub fn package(
        &self,
        profile: &str,
        scope: &ModuleScope,
        global: GlobalConfig,
    ) -> Result<ControlPackage> {
        let modules = self.resolve(profile)?;
        let traces = modules.iter().flat_map(|m| m.programs(scope)).collect();
        Ok(ControlPackage { global, traces })
    }

    /// The metric specs a profile contributes under `scope`, in the same
    /// order as [`ModuleRegistry::package`] emits programs.
    ///
    /// # Errors
    ///
    /// Same as [`ModuleRegistry::package`].
    pub fn metrics(&self, profile: &str, scope: &ModuleScope) -> Result<Vec<MetricSpec>> {
        let modules = self.resolve(profile)?;
        Ok(modules.iter().flat_map(|m| m.metrics(scope)).collect())
    }

    /// Renders the `vnt modules` listing: every module with its schema
    /// and alert kinds, then every profile with its module set.
    pub fn render_listing(&self) -> String {
        let mut out = String::new();
        out.push_str("modules:\n");
        for m in &self.modules {
            let s = m.schema();
            out.push_str(&format!("  {:<14} {}\n", m.name(), m.description()));
            out.push_str(&format!(
                "  {:<14}   schema {}: tags [{}], fields [{}]\n",
                "",
                s.name,
                s.tags.join(", "),
                s.fields.join(", ")
            ));
            out.push_str(&format!(
                "  {:<14}   alerts [{}]\n",
                "",
                m.alert_kinds().join(", ")
            ));
        }
        out.push_str("profiles:\n");
        for (profile, modules) in &self.profiles {
            out.push_str(&format!("  {:<14} {}\n", profile, modules.join(" + ")));
        }
        out
    }
}

impl Default for ModuleRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// The closest candidate by edit distance, when it is close enough to
/// plausibly be a typo (distance at most half the query length, and
/// never more than 3).
fn closest<'a>(query: &str, candidates: impl Iterator<Item = &'a str>) -> Option<String> {
    let max = (query.len() / 2).clamp(1, 3);
    candidates
        .map(|c| (edit_distance(query, c), c))
        .filter(|(d, _)| *d <= max)
        .min_by_key(|(d, _)| *d)
        .map(|(_, c)| c.to_owned())
}

/// Plain Levenshtein distance over bytes — module and profile names are
/// ASCII.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Action;

    fn scope() -> ModuleScope {
        ModuleScope {
            packet_taps: vec![
                TapSpec::rx("a_rx", "n1", "eth0", FilterRule::any()),
                TapSpec::tx("b_tx", "n2", "eth0", FilterRule::any()),
            ],
            latency_pairs: vec![("a_rx".into(), "b_tx".into())],
            throughput_tables: vec!["b_tx".into()],
            drop_taps: vec![TapSpec::drops("n1_drops", "n1", FilterRule::any())],
            ovs_taps: vec![OvsTap {
                prefix: "br0".into(),
                node: "n1".into(),
                filter: FilterRule::any(),
            }],
            request_taps: vec![
                TapSpec::rx("req_client", "c", "eth0", FilterRule::any()),
                TapSpec::rx("req_tier1", "t1", "eth0", FilterRule::any()),
                TapSpec::rx("req_tier2", "t2", "eth0", FilterRule::any()),
            ],
        }
    }

    #[test]
    fn unknown_profile_suggests_closest() {
        let r = ModuleRegistry::builtin();
        let err = r.resolve("defult").unwrap_err();
        match err {
            TracerError::UnknownProfile { name, suggestion } => {
                assert_eq!(name, "defult");
                assert_eq!(suggestion.as_deref(), Some("default"));
            }
            other => panic!("wrong error: {other}"),
        }
        // Nothing near: no suggestion.
        match r.resolve("zzz").unwrap_err() {
            TracerError::UnknownProfile { suggestion, .. } => assert_eq!(suggestion, None),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn unknown_module_suggests_closest() {
        let mut r = ModuleRegistry::builtin();
        let err = r.define_profile("p", &["skb-drp"]).unwrap_err();
        match err {
            TracerError::UnknownModule { name, suggestion } => {
                assert_eq!(name, "skb-drp");
                assert_eq!(suggestion.as_deref(), Some("skb-drop"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn default_profile_is_exactly_the_packet_path() {
        let r = ModuleRegistry::builtin();
        let pkg = r
            .package("default", &scope(), GlobalConfig::default())
            .unwrap();
        let names: Vec<&str> = pkg.traces.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["a_rx", "b_tx"]);
        assert!(pkg
            .traces
            .iter()
            .all(|t| t.action == Action::RecordPacketInfo));
    }

    #[test]
    fn drops_profile_uses_drop_records() {
        let r = ModuleRegistry::builtin();
        let pkg = r
            .package("drops", &scope(), GlobalConfig::default())
            .unwrap();
        assert_eq!(pkg.traces.len(), 1);
        assert_eq!(pkg.traces[0].name, "n1_drops");
        assert_eq!(pkg.traces[0].action, Action::RecordDropInfo);
        assert_eq!(pkg.traces[0].hook, HookSpec::Tracepoint("kfree_skb".into()));
    }

    #[test]
    fn ovs_profile_derives_three_tables_per_fabric() {
        let r = ModuleRegistry::builtin();
        let pkg = r.package("ovs", &scope(), GlobalConfig::default()).unwrap();
        let names: Vec<&str> = pkg.traces.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["br0_lookup", "br0_lookup_ret", "br0_upcall"]);
        assert_eq!(
            pkg.traces[0].hook,
            HookSpec::Kprobe("ovs_flow_tbl_lookup".into())
        );
        assert_eq!(
            pkg.traces[1].hook,
            HookSpec::Kretprobe("ovs_flow_tbl_lookup".into())
        );
        assert_eq!(pkg.traces[2].hook, HookSpec::Kprobe("ovs_dp_upcall".into()));
        let metrics = r.metrics("ovs", &scope()).unwrap();
        assert!(metrics.contains(&MetricSpec::Latency {
            from: "br0_lookup".into(),
            to: "br0_lookup_ret".into()
        }));
        assert!(metrics.contains(&MetricSpec::Throughput {
            table: "br0_upcall".into()
        }));
    }

    #[test]
    fn request_profile_chains_consecutive_tiers() {
        let r = ModuleRegistry::builtin();
        let metrics = r.metrics("requests", &scope()).unwrap();
        assert_eq!(
            metrics,
            vec![
                MetricSpec::Latency {
                    from: "req_client".into(),
                    to: "req_tier1".into()
                },
                MetricSpec::Latency {
                    from: "req_tier1".into(),
                    to: "req_tier2".into()
                },
                MetricSpec::Latency {
                    from: "req_client".into(),
                    to: "req_tier2".into()
                },
            ]
        );
    }

    #[test]
    fn full_profile_concatenates_in_profile_order() {
        let r = ModuleRegistry::builtin();
        let pkg = r
            .package("full", &scope(), GlobalConfig::default())
            .unwrap();
        let names: Vec<&str> = pkg.traces.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "a_rx",
                "b_tx",
                "n1_drops",
                "br0_lookup",
                "br0_lookup_ret",
                "br0_upcall",
                "req_client",
                "req_tier1",
                "req_tier2",
            ]
        );
    }

    #[test]
    fn packaging_is_deterministic() {
        let r = ModuleRegistry::builtin();
        let a = r
            .package("full", &scope(), GlobalConfig::default())
            .unwrap();
        let b = r
            .package("full", &scope(), GlobalConfig::default())
            .unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn listing_names_every_module_and_profile() {
        let r = ModuleRegistry::builtin();
        let listing = r.render_listing();
        for name in r.module_names() {
            assert!(listing.contains(name), "listing missing module {name}");
        }
        for profile in r.profile_names() {
            assert!(
                listing.contains(profile),
                "listing missing profile {profile}"
            );
        }
    }

    #[test]
    fn drop_reason_names_agree_with_the_sim() {
        // The sim's typed reason codes and the store's tag values are
        // maintained separately; the registry is where they meet.
        for reason in vnet_sim::device::DropReason::ALL {
            assert_eq!(
                vnet_tsdb::drop_reason_name(reason.code() as u8),
                Some(reason.name()),
                "code {} maps to different names in sim and tsdb",
                reason.code()
            );
        }
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(
            closest("ovz", ["ovs", "full"].into_iter()),
            Some("ovs".into())
        );
        assert_eq!(closest("qqqqq", ["ovs", "full"].into_iter()), None);
    }
}
