//! The built-in modules: the default packet-path probe set plus the
//! drop-reason / OVS-upcall / request-tracing scenario pack.

use crate::config::{Action, HookSpec, TraceSpec};

use super::{MetricSpec, Module, ModuleScope, RecordSchema, TapSpec};

fn spec_from_tap(tap: &TapSpec, action: Action) -> TraceSpec {
    TraceSpec {
        name: tap.table.clone(),
        node: tap.node.clone(),
        hook: tap.hook.clone(),
        filter: tap.filter,
        action,
    }
}

/// The default module: the per-device packet taps every testbed deploys
/// (the paper's original probe set), with latency/jitter/loss pairs and
/// throughput tables over them.
#[derive(Debug, Clone, Copy, Default)]
pub struct PacketPathModule;

impl Module for PacketPathModule {
    fn name(&self) -> &'static str {
        "packet-path"
    }

    fn description(&self) -> &'static str {
        "per-device packet records along the datapath (the built-in probe set)"
    }

    fn schema(&self) -> RecordSchema {
        RecordSchema {
            name: "packet-record",
            tags: &["node", "flow", "direction", "trace_id?"],
            fields: &["pkt_len", "cpu"],
        }
    }

    fn alert_kinds(&self) -> &'static [&'static str] {
        &["latency-spike", "loss-burst", "throughput-collapse"]
    }

    fn programs(&self, scope: &ModuleScope) -> Vec<TraceSpec> {
        scope
            .packet_taps
            .iter()
            .map(|t| spec_from_tap(t, Action::RecordPacketInfo))
            .collect()
    }

    fn metrics(&self, scope: &ModuleScope) -> Vec<MetricSpec> {
        let mut out = Vec::new();
        for (from, to) in &scope.latency_pairs {
            out.push(MetricSpec::Latency {
                from: from.clone(),
                to: to.clone(),
            });
            out.push(MetricSpec::Loss {
                upstream: from.clone(),
                downstream: to.clone(),
            });
        }
        for table in &scope.throughput_tables {
            out.push(MetricSpec::Throughput {
                table: table.clone(),
            });
        }
        out
    }
}

/// Packet-drop root-cause tracing: one `kfree_skb` tap per traced node,
/// with the typed drop reason (policer, HTB/ring overflow, loss profile,
/// device-down, no-route) captured into record flag bits — the data
/// behind per-reason counters and the `vnt drops` breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct SkbDropModule;

impl Module for SkbDropModule {
    fn name(&self) -> &'static str {
        "skb-drop"
    }

    fn description(&self) -> &'static str {
        "drop tracing at kfree_skb with typed reasons (queue-full, policed, ...)"
    }

    fn schema(&self) -> RecordSchema {
        RecordSchema {
            name: "drop-record",
            tags: &["node", "flow", "direction", "trace_id?", "drop_reason"],
            fields: &["pkt_len", "cpu"],
        }
    }

    fn alert_kinds(&self) -> &'static [&'static str] {
        &["throughput-collapse"]
    }

    fn programs(&self, scope: &ModuleScope) -> Vec<TraceSpec> {
        scope
            .drop_taps
            .iter()
            .map(|t| spec_from_tap(t, Action::RecordDropInfo))
            .collect()
    }

    fn metrics(&self, scope: &ModuleScope) -> Vec<MetricSpec> {
        // The windowed rate of each drop table is the drop rate.
        scope
            .drop_taps
            .iter()
            .map(|t| MetricSpec::Throughput {
                table: t.table.clone(),
            })
            .collect()
    }
}

/// Flow-table lookup and upcall tracing on OVS fabric devices:
/// entry/return records around `ovs_flow_tbl_lookup` give per-packet
/// lookup latency, and `ovs_dp_upcall` records (fired only on megaflow
/// misses) give the upcall rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct OvsFlowModule;

impl OvsFlowModule {
    /// The lookup-entry table for a fabric prefix.
    pub fn lookup_table(prefix: &str) -> String {
        format!("{prefix}_lookup")
    }

    /// The lookup-return table for a fabric prefix.
    pub fn lookup_ret_table(prefix: &str) -> String {
        format!("{prefix}_lookup_ret")
    }

    /// The upcall table for a fabric prefix.
    pub fn upcall_table(prefix: &str) -> String {
        format!("{prefix}_upcall")
    }
}

impl Module for OvsFlowModule {
    fn name(&self) -> &'static str {
        "ovs-flow"
    }

    fn description(&self) -> &'static str {
        "OVS flow-table lookup latency and upcall-rate tracing"
    }

    fn schema(&self) -> RecordSchema {
        RecordSchema {
            name: "packet-record",
            tags: &["node", "flow", "direction", "trace_id?"],
            fields: &["pkt_len", "cpu"],
        }
    }

    fn alert_kinds(&self) -> &'static [&'static str] {
        &["latency-spike", "throughput-collapse"]
    }

    fn programs(&self, scope: &ModuleScope) -> Vec<TraceSpec> {
        let mut out = Vec::new();
        for tap in &scope.ovs_taps {
            let mk = |table: String, hook: HookSpec| TraceSpec {
                name: table,
                node: tap.node.clone(),
                hook,
                filter: tap.filter,
                action: Action::RecordPacketInfo,
            };
            out.push(mk(
                Self::lookup_table(&tap.prefix),
                HookSpec::Kprobe("ovs_flow_tbl_lookup".to_owned()),
            ));
            out.push(mk(
                Self::lookup_ret_table(&tap.prefix),
                HookSpec::Kretprobe("ovs_flow_tbl_lookup".to_owned()),
            ));
            out.push(mk(
                Self::upcall_table(&tap.prefix),
                HookSpec::Kprobe("ovs_dp_upcall".to_owned()),
            ));
        }
        out
    }

    fn metrics(&self, scope: &ModuleScope) -> Vec<MetricSpec> {
        let mut out = Vec::new();
        for tap in &scope.ovs_taps {
            out.push(MetricSpec::Latency {
                from: Self::lookup_table(&tap.prefix),
                to: Self::lookup_ret_table(&tap.prefix),
            });
            out.push(MetricSpec::Throughput {
                table: Self::upcall_table(&tap.prefix),
            });
        }
        out
    }
}

/// Nahida-style in-band request tracing: the packet-ID technique
/// extended to request chains — each tier propagates the trace ID into
/// the packets it forwards, and latency between consecutive tier taps
/// decomposes end-to-end request latency per tier.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequestTraceModule;

impl Module for RequestTraceModule {
    fn name(&self) -> &'static str {
        "request-trace"
    }

    fn description(&self) -> &'static str {
        "in-band request-chain tracing with per-tier latency decomposition"
    }

    fn schema(&self) -> RecordSchema {
        RecordSchema {
            name: "packet-record",
            tags: &["node", "flow", "direction", "trace_id?"],
            fields: &["pkt_len", "cpu"],
        }
    }

    fn alert_kinds(&self) -> &'static [&'static str] {
        &["latency-spike", "loss-burst"]
    }

    fn programs(&self, scope: &ModuleScope) -> Vec<TraceSpec> {
        scope
            .request_taps
            .iter()
            .map(|t| spec_from_tap(t, Action::RecordPacketInfo))
            .collect()
    }

    fn metrics(&self, scope: &ModuleScope) -> Vec<MetricSpec> {
        let mut out = Vec::new();
        // Per-tier segments between consecutive taps...
        for pair in scope.request_taps.windows(2) {
            out.push(MetricSpec::Latency {
                from: pair[0].table.clone(),
                to: pair[1].table.clone(),
            });
        }
        // ...plus the end-to-end chain they decompose.
        if scope.request_taps.len() > 2 {
            out.push(MetricSpec::Latency {
                from: scope.request_taps[0].table.clone(),
                to: scope
                    .request_taps
                    .last()
                    .expect("len checked above")
                    .table
                    .clone(),
            });
        }
        out
    }
}
