//! The control-data dispatcher (master side).
//!
//! "The control data dispatcher executes on the master node. It reads the
//! user input and generates formatted configuration files in control
//! packages and tracing scripts. Then the dispatcher sends the files to
//! agents on remote monitoring machines." (§III-A)
//!
//! Control data really travels as JSON here: the dispatcher splits a
//! [`ControlPackage`] into per-node sub-packages, serializes them, and
//! queues them for delivery; the tracer façade hands each JSON payload to
//! its node's agent, which parses it back. Re-dispatching at runtime
//! reconfigures tracing without touching the monitored system (§III-D).

use std::collections::BTreeMap;

use crate::config::{ControlPackage, GlobalConfig};
use crate::error::{Result, TracerError};

/// A formatted control message addressed to one node's agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlMessage {
    /// Target node name.
    pub node: String,
    /// The JSON-serialized sub-package for that node.
    pub payload: String,
}

/// The dispatcher: formats user input into per-node control messages.
#[derive(Debug, Default)]
pub struct Dispatcher {
    dispatched: u64,
}

impl Dispatcher {
    /// Creates a dispatcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of control messages formatted so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Splits `package` by node and serializes one control message per
    /// node, validating it first.
    ///
    /// # Errors
    ///
    /// Returns [`TracerError::Config`] for duplicate script names or
    /// buffer sizes outside the supported range.
    pub fn dispatch(&mut self, package: &ControlPackage) -> Result<Vec<ControlMessage>> {
        validate(package)?;
        let mut per_node: BTreeMap<String, ControlPackage> = BTreeMap::new();
        for spec in &package.traces {
            per_node
                .entry(spec.node.clone())
                .or_insert_with(|| ControlPackage {
                    global: package.global.clone(),
                    traces: Vec::new(),
                })
                .traces
                .push(spec.clone());
        }
        let mut out = Vec::with_capacity(per_node.len());
        for (node, pkg) in per_node {
            self.dispatched += 1;
            out.push(ControlMessage {
                node,
                payload: pkg.to_json(),
            });
        }
        Ok(out)
    }
}

fn validate(package: &ControlPackage) -> Result<()> {
    let GlobalConfig { buffer_size, .. } = package.global;
    let size = buffer_size as usize;
    if !(vnet_ebpf::map::MIN_BUFFER_SIZE..=vnet_ebpf::map::MAX_BUFFER_SIZE).contains(&size) {
        return Err(TracerError::Config(format!(
            "buffer size {size} outside {}..={}",
            vnet_ebpf::map::MIN_BUFFER_SIZE,
            vnet_ebpf::map::MAX_BUFFER_SIZE
        )));
    }
    let mut names = std::collections::HashSet::new();
    for spec in &package.traces {
        if spec.name.is_empty() {
            return Err(TracerError::Config("empty script name".into()));
        }
        if !names.insert(&spec.name) {
            return Err(TracerError::Config(format!(
                "duplicate script name `{}` (each script gets its own table)",
                spec.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Action, FilterRule, HookSpec, TraceSpec};

    fn spec(name: &str, node: &str) -> TraceSpec {
        TraceSpec {
            name: name.into(),
            node: node.into(),
            hook: HookSpec::DeviceRx("eth0".into()),
            filter: FilterRule::any(),
            action: Action::CountPerCpu,
        }
    }

    #[test]
    fn splits_by_node_and_serializes() {
        let mut d = Dispatcher::new();
        let pkg = ControlPackage::new(vec![
            spec("a", "server1"),
            spec("b", "server2"),
            spec("c", "server1"),
        ]);
        let messages = d.dispatch(&pkg).unwrap();
        assert_eq!(messages.len(), 2);
        assert_eq!(messages[0].node, "server1");
        let sub = ControlPackage::from_json(&messages[0].payload).unwrap();
        assert_eq!(sub.traces.len(), 2);
        assert_eq!(sub.traces[1].name, "c");
        let sub2 = ControlPackage::from_json(&messages[1].payload).unwrap();
        assert_eq!(sub2.traces.len(), 1);
        assert_eq!(d.dispatched(), 2);
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut d = Dispatcher::new();
        let pkg = ControlPackage::new(vec![spec("same", "n1"), spec("same", "n2")]);
        assert!(matches!(d.dispatch(&pkg), Err(TracerError::Config(_))));
    }

    #[test]
    fn rejects_bad_buffer_size() {
        let mut d = Dispatcher::new();
        let mut pkg = ControlPackage::new(vec![spec("a", "n1")]);
        pkg.global.buffer_size = 16; // below 32
        assert!(matches!(d.dispatch(&pkg), Err(TracerError::Config(_))));
        pkg.global.buffer_size = 128 * 1024; // above 128k-16
        assert!(matches!(d.dispatch(&pkg), Err(TracerError::Config(_))));
    }

    #[test]
    fn rejects_empty_name() {
        let mut d = Dispatcher::new();
        let pkg = ControlPackage::new(vec![spec("", "n1")]);
        assert!(matches!(d.dispatch(&pkg), Err(TracerError::Config(_))));
    }
}
