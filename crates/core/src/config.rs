//! Control packages: the formatted configuration vNetTracer's dispatcher
//! ships to agents.
//!
//! The paper's control-plane workflow (§III-A, §III-D): the user supplies
//! (1) filter rules (source/destination IP and port, protocol, ethernet
//! type), (2) tracepoint information (device or kernel function, node),
//! (3) the action to perform, and (4) global configuration (database,
//! table names, buffer sizes). The dispatcher formats these into a
//! *control package* per trace script and sends them to the agents; all
//! of it can be modified and re-sent at runtime.
//!
//! Everything here is serde-serializable — control packages really travel
//! as JSON between dispatcher and agents in this implementation.

use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};
use serde_json::{member, object, Error as JsonError, FromJson, ToJson, Value};

/// Transport protocol selector for filter rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Proto {
    /// Match TCP segments.
    Tcp,
    /// Match UDP datagrams.
    Udp,
}

/// A packet filter rule: the five-tuple (plus EtherType) match of §III-A.
/// Every field is optional; an empty rule matches everything (used for
/// kernel-function counting probes that are not packet-specific).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FilterRule {
    /// EtherType to match (`0x0800` for IPv4; the only type the
    /// simulated stack carries).
    pub ether_type: Option<u16>,
    /// Transport protocol.
    pub protocol: Option<Proto>,
    /// Source IPv4 address.
    pub src_ip: Option<Ipv4Addr>,
    /// Destination IPv4 address.
    pub dst_ip: Option<Ipv4Addr>,
    /// Source transport port.
    pub src_port: Option<u16>,
    /// Destination transport port.
    pub dst_port: Option<u16>,
}

impl FilterRule {
    /// A rule matching every packet.
    pub fn any() -> Self {
        Self::default()
    }

    /// A rule matching one direction of a UDP flow.
    pub fn udp_flow(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16)) -> Self {
        FilterRule {
            ether_type: Some(0x0800),
            protocol: Some(Proto::Udp),
            src_ip: Some(src.0),
            dst_ip: Some(dst.0),
            src_port: Some(src.1),
            dst_port: Some(dst.1),
        }
    }

    /// A rule matching one direction of a TCP flow.
    pub fn tcp_flow(src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16)) -> Self {
        FilterRule {
            protocol: Some(Proto::Tcp),
            ..Self::udp_flow(src, dst)
        }
    }

    /// Whether the rule matches everything (no packet parsing needed).
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// The rule matching the opposite direction of the same flow.
    pub fn reversed(&self) -> FilterRule {
        FilterRule {
            ether_type: self.ether_type,
            protocol: self.protocol,
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }
}

/// The action a trace script performs when its rule matches (§III-A item
/// 3: e.g. "records the current system time in nanosecond").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Emit a full [`crate::record::TraceRecord`] (timestamp, trace ID,
    /// length, flow, CPU, direction) into the perf buffer.
    RecordPacketInfo,
    /// Count matching events in a per-CPU counter (used for
    /// `net_rx_action` / `get_rps_cpu` statistics, Fig. 13a).
    CountPerCpu,
    /// Emit a [`crate::record::TraceRecord`] that additionally captures
    /// the hook's auxiliary context word (the typed drop-reason code at
    /// `kfree_skb`) into record flag bits 1–3. Used by the `skb-drop`
    /// module; identical to [`Action::RecordPacketInfo`] at hooks whose
    /// auxiliary word is zero.
    RecordDropInfo,
}

/// Where the script attaches, by name, on a named node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HookSpec {
    /// Kernel function entry (kprobe).
    Kprobe(String),
    /// Kernel function return (kretprobe).
    Kretprobe(String),
    /// A static kernel tracepoint (attached like a function-entry hook;
    /// the simulated kernel names its tracepoints after the functions
    /// that would host them).
    Tracepoint(String),
    /// Device receive tap (raw socket).
    DeviceRx(String),
    /// Device transmit tap.
    DeviceTx(String),
    /// User-level probe on a named application (uprobe, §III-B:
    /// "Application monitoring could be traced through user level
    /// tracepoints such as uprobe and uretprobe").
    Uprobe(String),
}

impl HookSpec {
    /// Converts to the simulator's hook representation.
    pub fn to_sim_hook(&self) -> vnet_sim::probe::Hook {
        use vnet_sim::probe::Hook;
        match self {
            HookSpec::Kprobe(f) => Hook::FunctionEntry(f.clone()),
            HookSpec::Kretprobe(f) => Hook::FunctionReturn(f.clone()),
            HookSpec::Tracepoint(f) => Hook::FunctionEntry(f.clone()),
            HookSpec::DeviceRx(d) => Hook::DeviceRx(d.clone()),
            HookSpec::DeviceTx(d) => Hook::DeviceTx(d.clone()),
            HookSpec::Uprobe(a) => Hook::Uprobe(a.clone()),
        }
    }

    /// The attach target's name.
    pub fn target(&self) -> &str {
        match self {
            HookSpec::Kprobe(s)
            | HookSpec::Kretprobe(s)
            | HookSpec::Tracepoint(s)
            | HookSpec::DeviceRx(s)
            | HookSpec::DeviceTx(s)
            | HookSpec::Uprobe(s) => s,
        }
    }
}

/// One trace script: name (its table in the database), node, tracepoint,
/// filter and action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Script name; trace records land in the table of this name.
    pub name: String,
    /// Node (by name) the script runs on.
    pub node: String,
    /// Where it attaches.
    pub hook: HookSpec,
    /// Which packets it matches.
    pub filter: FilterRule,
    /// What it records.
    pub action: Action,
}

/// How trace data travels from agents to the collector (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CollectionMode {
    /// Records buffered in kernel memory, dumped and shipped
    /// periodically — the low-overhead default.
    #[default]
    Offline,
    /// Records shipped as soon as collected (costs CPU and bandwidth).
    Online,
}

/// Which execution tier agents run trace programs on (the paper's §II:
/// "the JIT compiling minimizes the execution overhead of the eBPF
/// code").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecTier {
    /// The bytecode interpreter: no compile cost, full per-instruction
    /// decode cost on every probe firing.
    Interp,
    /// The threaded-code tier: a one-time compile cost on a program's
    /// first firing, reduced per-op cost afterwards — the default, as
    /// in the kernel.
    #[default]
    Jit,
}

/// Global configuration carried in every control package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalConfig {
    /// Trace database name.
    pub database: String,
    /// Per-CPU kernel buffer size in bytes (the `mmap`ed buffer of
    /// §III-C; valid range 32..=128k−16 per the paper's footnote).
    pub buffer_size: u32,
    /// Collection mode.
    pub mode: CollectionMode,
    /// Execution tier for the deployed trace programs.
    pub exec_tier: ExecTier,
    /// Maximum certified worst-case cost (in simulated nanoseconds,
    /// including the fixed probe-entry cost) a deployed program may have
    /// per firing. Programs whose static cost certificate exceeds this
    /// are rejected at attach time with an annotated cost report
    /// ([`crate::error::TracerError::OverBudget`]); `None` disables the
    /// check. Because the certificate is a sound worst-case bound, a
    /// passing program can never cost more than this at runtime.
    pub probe_budget: Option<u64>,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        GlobalConfig {
            database: "vnettracer".into(),
            buffer_size: 64 * 1024,
            mode: CollectionMode::Offline,
            exec_tier: ExecTier::Jit,
            probe_budget: None,
        }
    }
}

/// The tracer-facing name for the global configuration: what callers
/// tune when deploying (buffering, collection mode, execution tier,
/// probe overhead budget).
pub type TracerConfig = GlobalConfig;

/// A complete control package: global config plus trace scripts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlPackage {
    /// Global configuration.
    pub global: GlobalConfig,
    /// The trace scripts to deploy.
    pub traces: Vec<TraceSpec>,
}

impl ControlPackage {
    /// Creates a package with default global configuration.
    pub fn new(traces: Vec<TraceSpec>) -> Self {
        ControlPackage {
            global: GlobalConfig::default(),
            traces,
        }
    }

    /// Serializes to the JSON wire form the dispatcher sends.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("control packages are always serializable")
    }

    /// Parses the JSON wire form.
    ///
    /// # Errors
    ///
    /// Returns the serde error text if the JSON is malformed.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

// --- JSON wire encoding ---
//
// The control package really travels as JSON between dispatcher and
// agents; the vendored serde derives are inert, so the encoding is
// written out by hand. Layout matches what serde's derive would emit:
// unit enum variants as bare strings, newtype variants as one-member
// objects, options as null-or-value, IPs as dotted strings.

impl ToJson for Proto {
    fn to_json(&self) -> Value {
        Value::String(
            match self {
                Proto::Tcp => "Tcp",
                Proto::Udp => "Udp",
            }
            .to_owned(),
        )
    }
}

impl FromJson for Proto {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Tcp") => Ok(Proto::Tcp),
            Some("Udp") => Ok(Proto::Udp),
            _ => Err(JsonError::msg("expected \"Tcp\" or \"Udp\"")),
        }
    }
}

/// Wraps `Ipv4Addr` (a std type, so no direct impl is possible here)
/// for JSON conversion as a dotted-quad string.
struct JsonIp(Ipv4Addr);

impl ToJson for JsonIp {
    fn to_json(&self) -> Value {
        Value::String(self.0.to_string())
    }
}

impl FromJson for JsonIp {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        value
            .as_str()
            .and_then(|s| s.parse().ok())
            .map(JsonIp)
            .ok_or_else(|| JsonError::msg("expected dotted IPv4 address"))
    }
}

impl ToJson for FilterRule {
    fn to_json(&self) -> Value {
        object([
            ("ether_type", self.ether_type.to_json()),
            ("protocol", self.protocol.to_json()),
            ("src_ip", self.src_ip.map(JsonIp).to_json()),
            ("dst_ip", self.dst_ip.map(JsonIp).to_json()),
            ("src_port", self.src_port.to_json()),
            ("dst_port", self.dst_port.to_json()),
        ])
    }
}

impl FromJson for FilterRule {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(FilterRule {
            ether_type: member(value, "ether_type")?,
            protocol: member(value, "protocol")?,
            src_ip: member::<Option<JsonIp>>(value, "src_ip")?.map(|ip| ip.0),
            dst_ip: member::<Option<JsonIp>>(value, "dst_ip")?.map(|ip| ip.0),
            src_port: member(value, "src_port")?,
            dst_port: member(value, "dst_port")?,
        })
    }
}

impl ToJson for Action {
    fn to_json(&self) -> Value {
        Value::String(
            match self {
                Action::RecordPacketInfo => "RecordPacketInfo",
                Action::CountPerCpu => "CountPerCpu",
                Action::RecordDropInfo => "RecordDropInfo",
            }
            .to_owned(),
        )
    }
}

impl FromJson for Action {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("RecordPacketInfo") => Ok(Action::RecordPacketInfo),
            Some("CountPerCpu") => Ok(Action::CountPerCpu),
            Some("RecordDropInfo") => Ok(Action::RecordDropInfo),
            _ => Err(JsonError::msg("unknown action")),
        }
    }
}

impl ToJson for HookSpec {
    fn to_json(&self) -> Value {
        let (variant, target) = match self {
            HookSpec::Kprobe(s) => ("Kprobe", s),
            HookSpec::Kretprobe(s) => ("Kretprobe", s),
            HookSpec::Tracepoint(s) => ("Tracepoint", s),
            HookSpec::DeviceRx(s) => ("DeviceRx", s),
            HookSpec::DeviceTx(s) => ("DeviceTx", s),
            HookSpec::Uprobe(s) => ("Uprobe", s),
        };
        object([(variant, target.to_json())])
    }
}

impl FromJson for HookSpec {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let obj = value
            .as_object()
            .ok_or_else(|| JsonError::msg("expected hook object"))?;
        let (variant, target) = obj
            .iter()
            .next()
            .ok_or_else(|| JsonError::msg("empty hook object"))?;
        let target = String::from_json(target)?;
        match variant.as_str() {
            "Kprobe" => Ok(HookSpec::Kprobe(target)),
            "Kretprobe" => Ok(HookSpec::Kretprobe(target)),
            "Tracepoint" => Ok(HookSpec::Tracepoint(target)),
            "DeviceRx" => Ok(HookSpec::DeviceRx(target)),
            "DeviceTx" => Ok(HookSpec::DeviceTx(target)),
            "Uprobe" => Ok(HookSpec::Uprobe(target)),
            other => Err(JsonError::msg(format!("unknown hook '{other}'"))),
        }
    }
}

impl ToJson for TraceSpec {
    fn to_json(&self) -> Value {
        object([
            ("name", self.name.to_json()),
            ("node", self.node.to_json()),
            ("hook", self.hook.to_json()),
            ("filter", self.filter.to_json()),
            ("action", self.action.to_json()),
        ])
    }
}

impl FromJson for TraceSpec {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(TraceSpec {
            name: member(value, "name")?,
            node: member(value, "node")?,
            hook: member(value, "hook")?,
            filter: member(value, "filter")?,
            action: member(value, "action")?,
        })
    }
}

impl ToJson for CollectionMode {
    fn to_json(&self) -> Value {
        Value::String(
            match self {
                CollectionMode::Offline => "Offline",
                CollectionMode::Online => "Online",
            }
            .to_owned(),
        )
    }
}

impl FromJson for CollectionMode {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Offline") => Ok(CollectionMode::Offline),
            Some("Online") => Ok(CollectionMode::Online),
            _ => Err(JsonError::msg("unknown collection mode")),
        }
    }
}

impl ToJson for ExecTier {
    fn to_json(&self) -> Value {
        Value::String(
            match self {
                ExecTier::Interp => "Interp",
                ExecTier::Jit => "Jit",
            }
            .to_owned(),
        )
    }
}

impl FromJson for ExecTier {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Interp") => Ok(ExecTier::Interp),
            Some("Jit") => Ok(ExecTier::Jit),
            _ => Err(JsonError::msg("unknown exec tier")),
        }
    }
}

impl ToJson for GlobalConfig {
    fn to_json(&self) -> Value {
        object([
            ("database", self.database.to_json()),
            ("buffer_size", self.buffer_size.to_json()),
            ("mode", self.mode.to_json()),
            ("exec_tier", self.exec_tier.to_json()),
            ("probe_budget", self.probe_budget.to_json()),
        ])
    }
}

impl FromJson for GlobalConfig {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(GlobalConfig {
            database: member(value, "database")?,
            buffer_size: member(value, "buffer_size")?,
            mode: member(value, "mode")?,
            // Absent in packages written before the tier existed: those
            // get the default, keeping old JSON deployable.
            exec_tier: match value.get("exec_tier") {
                Some(v) => ExecTier::from_json(v)?,
                None => ExecTier::default(),
            },
            // Same pattern: packages written before budgets existed
            // parse as "no budget".
            probe_budget: match value.get("probe_budget") {
                Some(v) => Option::<u64>::from_json(v)?,
                None => None,
            },
        })
    }
}

impl ToJson for ControlPackage {
    fn to_json(&self) -> Value {
        object([
            ("global", self.global.to_json()),
            ("traces", self.traces.to_json()),
        ])
    }
}

impl FromJson for ControlPackage {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(ControlPackage {
            global: member(value, "global")?,
            traces: member(value, "traces")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> TraceSpec {
        TraceSpec {
            name: "flannel1_rx".into(),
            node: "server1".into(),
            hook: HookSpec::DeviceRx("flannel.1".into()),
            filter: FilterRule::udp_flow(
                (Ipv4Addr::new(10, 0, 0, 1), 9000),
                (Ipv4Addr::new(10, 0, 0, 2), 7),
            ),
            action: Action::RecordPacketInfo,
        }
    }

    #[test]
    fn package_json_round_trip() {
        let pkg = ControlPackage::new(vec![sample_spec()]);
        let json = pkg.to_json();
        let back = ControlPackage::from_json(&json).unwrap();
        assert_eq!(back, pkg);
        assert!(ControlPackage::from_json("{nope").is_err());
    }

    #[test]
    fn empty_rule_detection() {
        assert!(FilterRule::any().is_empty());
        assert!(!sample_spec().filter.is_empty());
        let mut r = FilterRule::any();
        r.dst_port = Some(80);
        assert!(!r.is_empty());
    }

    #[test]
    fn flow_constructors() {
        let f = FilterRule::tcp_flow(
            (Ipv4Addr::new(1, 2, 3, 4), 5),
            (Ipv4Addr::new(6, 7, 8, 9), 10),
        );
        assert_eq!(f.protocol, Some(Proto::Tcp));
        assert_eq!(f.ether_type, Some(0x0800));
        assert_eq!(f.src_port, Some(5));
        assert_eq!(f.dst_port, Some(10));
    }

    #[test]
    fn hook_spec_conversion() {
        use vnet_sim::probe::Hook;
        assert_eq!(
            HookSpec::Kprobe("net_rx_action".into()).to_sim_hook(),
            Hook::FunctionEntry("net_rx_action".into())
        );
        assert_eq!(
            HookSpec::DeviceTx("vnet0".into()).to_sim_hook(),
            Hook::DeviceTx("vnet0".into())
        );
        assert_eq!(HookSpec::Kretprobe("f".into()).target(), "f");
    }

    #[test]
    fn default_global_config_is_offline() {
        let g = GlobalConfig::default();
        assert_eq!(g.mode, CollectionMode::Offline);
        assert!(g.buffer_size as usize <= 128 * 1024 - 16);
        assert_eq!(g.exec_tier, ExecTier::Jit);
    }

    #[test]
    fn exec_tier_round_trips_and_defaults_when_absent() {
        let mut pkg = ControlPackage::new(vec![sample_spec()]);
        pkg.global.exec_tier = ExecTier::Interp;
        let back = ControlPackage::from_json(&pkg.to_json()).unwrap();
        assert_eq!(back.global.exec_tier, ExecTier::Interp);

        // A pre-tier package (no exec_tier member) still parses, with
        // the default tier.
        let legacy = r#"{
            "global": {"database": "db", "buffer_size": 4096, "mode": "Offline"},
            "traces": []
        }"#;
        let parsed = ControlPackage::from_json(legacy).unwrap();
        assert_eq!(parsed.global.exec_tier, ExecTier::Jit);
    }

    #[test]
    fn probe_budget_round_trips_and_defaults_when_absent() {
        let mut pkg = ControlPackage::new(vec![sample_spec()]);
        pkg.global.probe_budget = Some(120);
        let back = ControlPackage::from_json(&pkg.to_json()).unwrap();
        assert_eq!(back.global.probe_budget, Some(120));

        let legacy = r#"{
            "global": {"database": "db", "buffer_size": 4096, "mode": "Offline"},
            "traces": []
        }"#;
        let parsed = ControlPackage::from_json(legacy).unwrap();
        assert_eq!(parsed.global.probe_budget, None);
    }
}
