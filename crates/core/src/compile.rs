//! Compiles trace specifications into eBPF programs.
//!
//! This is vNetTracer's "customized tracing scripts" generator (§III-D):
//! the dispatcher formats the user's filter rules, tracepoint locations
//! and actions into per-script configuration, and this module turns each
//! into verified eBPF bytecode:
//!
//! * the **filter** parses the packet's Ethernet/IPv4/transport headers
//!   in-place (through the context's `data`/`data_end` pointers, every
//!   access bounds-checked) and bails out early on mismatch, so
//!   "network packets which do not match the tracing rules will not be
//!   traced" at a cost of a few instructions;
//! * the **trace-ID extractor** pulls the 4-byte packet ID from the UDP
//!   payload trailer, or scans the TCP options for the experimental
//!   option kind 253 — with a bounded, *unrolled* scan, since verified
//!   programs cannot loop;
//! * the **action** either emits a 32-byte [`TraceRecord`] into the perf
//!   buffer or bumps a per-CPU counter.
//!
//! [`TraceRecord`]: crate::record::TraceRecord

use vnet_ebpf::asm::{reg::*, AluOp, Asm, Cond, Size};
use vnet_ebpf::context::{
    CTX_OFF_AUX, CTX_OFF_DATA, CTX_OFF_DATA_END, CTX_OFF_DIRECTION, CTX_OFF_PKT_LEN,
};
use vnet_ebpf::program::{AttachType, Program};
use vnet_ebpf::vm::helper_ids;

use crate::config::{Action, FilterRule, HookSpec, Proto, TraceSpec};
use crate::error::{Result, TracerError};
use crate::record::{offsets, RECORD_SIZE};

// Frame offsets: Ethernet header is 14 bytes, IPv4 fixed 20 (the
// simulated stack never emits IP options), so L4 starts at 34.
const OFF_ETHERTYPE: i16 = 12;
const OFF_PROTO: i16 = 23;
const OFF_SADDR: i16 = 26;
const OFF_DADDR: i16 = 30;
const OFF_SPORT: i16 = 34;
const OFF_DPORT: i16 = 36;
const OFF_TCP_DOFF: i16 = 46;
const OFF_TCP_OPTS: i32 = 54;
/// Smallest frame the filter needs to parse through the L4 ports.
const MIN_PARSE_LEN: i32 = 38;
/// Iterations of the unrolled TCP option scan (each option is ≥1 byte;
/// 10 iterations cover any realistic option mix in a 40-byte area).
const TCP_OPT_SCAN_ITERS: usize = 10;
/// TCP option kind carrying the trace ID.
const TRACE_ID_OPTION_KIND: i32 = 253;

const R_SIZE: i16 = RECORD_SIZE as i16;

/// Field offset → frame-pointer-relative stack offset.
fn fp_off(field: i16) -> i16 {
    field - R_SIZE
}

/// Converts a [`HookSpec`] into an eBPF attach type.
pub fn attach_type(hook: &HookSpec) -> AttachType {
    match hook {
        HookSpec::Kprobe(f) => AttachType::Kprobe(f.clone()),
        HookSpec::Kretprobe(f) => AttachType::Kretprobe(f.clone()),
        HookSpec::Tracepoint(f) => AttachType::Tracepoint(f.clone()),
        HookSpec::DeviceRx(d) => AttachType::SocketRx(d.clone()),
        HookSpec::DeviceTx(d) => AttachType::SocketTx(d.clone()),
        HookSpec::Uprobe(a) => AttachType::Uprobe(a.clone()),
    }
}

/// Compiles `spec` into an eBPF program.
///
/// `perf_fd` must be provided for [`Action::RecordPacketInfo`] and
/// `counter_fd` for [`Action::CountPerCpu`]; the agent creates the maps
/// and passes their fds.
///
/// # Errors
///
/// Returns [`TracerError::Config`] when the needed map fd is missing, or
/// [`TracerError::Assemble`] if the generated program fails to assemble
/// (an internal invariant violation).
pub fn compile(spec: &TraceSpec, perf_fd: Option<i32>, counter_fd: Option<i32>) -> Result<Program> {
    let asm = match spec.action {
        Action::RecordPacketInfo | Action::RecordDropInfo => {
            let fd = perf_fd.ok_or_else(|| {
                TracerError::Config(format!("script `{}` needs a perf buffer", spec.name))
            })?;
            emit_record_program(&spec.filter, fd, spec.action == Action::RecordDropInfo)
        }
        Action::CountPerCpu => {
            let fd = counter_fd.ok_or_else(|| {
                TracerError::Config(format!("script `{}` needs a counter map", spec.name))
            })?;
            emit_count_program(&spec.filter, fd)
        }
    };
    let insns = asm.build()?;
    Ok(Program::new(
        spec.name.clone(),
        attach_type(&spec.hook),
        insns,
    ))
}

/// Emits the shared prologue: save the context in `r6`, load the packet
/// region bounds into `r7`/`r8`, and verify the frame is long enough to
/// parse (jumping to `miss` otherwise).
fn emit_prologue(asm: Asm) -> Asm {
    asm.mov64(R6, R1)
        .ldx(Size::DW, R7, R1, CTX_OFF_DATA)
        .ldx(Size::DW, R8, R1, CTX_OFF_DATA_END)
        .mov64(R2, R7)
        .add64_imm(R2, MIN_PARSE_LEN)
        .jmp_reg(Cond::Gt, R2, R8, "miss")
}

/// Emits the filter-rule checks; each mismatch jumps to `miss`.
fn emit_filter(mut asm: Asm, rule: &FilterRule) -> Asm {
    if let Some(et) = rule.ether_type {
        asm = asm.ldx(Size::H, R2, R7, OFF_ETHERTYPE).be16(R2).jmp32_imm(
            Cond::Ne,
            R2,
            i32::from(et),
            "miss",
        );
    }
    if let Some(proto) = rule.protocol {
        let p = match proto {
            Proto::Tcp => 6,
            Proto::Udp => 17,
        };
        asm = asm
            .ldx(Size::B, R2, R7, OFF_PROTO)
            .jmp32_imm(Cond::Ne, R2, p, "miss");
    }
    if let Some(ip) = rule.src_ip {
        asm = asm.ldx(Size::W, R2, R7, OFF_SADDR).be32(R2).jmp32_imm(
            Cond::Ne,
            R2,
            u32::from(ip) as i32,
            "miss",
        );
    }
    if let Some(ip) = rule.dst_ip {
        asm = asm.ldx(Size::W, R2, R7, OFF_DADDR).be32(R2).jmp32_imm(
            Cond::Ne,
            R2,
            u32::from(ip) as i32,
            "miss",
        );
    }
    if let Some(port) = rule.src_port {
        asm = asm.ldx(Size::H, R2, R7, OFF_SPORT).be16(R2).jmp32_imm(
            Cond::Ne,
            R2,
            i32::from(port),
            "miss",
        );
    }
    if let Some(port) = rule.dst_port {
        asm = asm.ldx(Size::H, R2, R7, OFF_DPORT).be16(R2).jmp32_imm(
            Cond::Ne,
            R2,
            i32::from(port),
            "miss",
        );
    }
    asm
}

/// Emits trace-ID extraction into the record's `TRACE_ID` and `FLAGS`
/// stack slots; all paths continue at `emit`.
fn emit_trace_id(mut asm: Asm) -> Asm {
    // Default: no ID.
    asm = asm
        .st(Size::W, R10, fp_off(offsets::TRACE_ID), 0)
        .st(Size::B, R10, fp_off(offsets::FLAGS), 0)
        .ldx(Size::B, R2, R7, OFF_PROTO)
        .jmp32_imm(Cond::Eq, R2, 17, "udp_id")
        .jmp32_imm(Cond::Eq, R2, 6, "tcp_id")
        .jump("emit");

    // UDP: the 4-byte trailer appended by `udp_send_skb` sits at the very
    // end of the datagram.
    asm = asm
        .label("udp_id")
        .mov64(R2, R8)
        .add64_imm(R2, -4)
        .mov64(R4, R7)
        .add64_imm(R4, 42) // eth(14) + ip(20) + udp(8): payload start
        .jmp_reg(Cond::Lt, R2, R4, "emit")
        .ldx(Size::W, R3, R2, 0)
        .be32(R3)
        .stx(Size::W, R10, R3, fp_off(offsets::TRACE_ID))
        .st(Size::B, R10, fp_off(offsets::FLAGS), 1)
        .jump("emit");

    // TCP: unrolled scan of the options area for kind 253.
    asm = asm
        .label("tcp_id")
        .ldx(Size::B, R2, R7, OFF_TCP_DOFF)
        .alu64_imm(AluOp::Rsh, R2, 4)
        .alu64_imm(AluOp::Lsh, R2, 2)
        .mov64(R5, R7)
        .add64_imm(R5, OFF_SPORT as i32) // L4 start
        .add64(R5, R2) // options end
        .jmp_reg(Cond::Gt, R5, R8, "emit") // malformed header
        .mov64(R9, R7)
        .add64_imm(R9, OFF_TCP_OPTS); // cursor

    for i in 0..TCP_OPT_SCAN_ITERS {
        let next = if i + 1 == TCP_OPT_SCAN_ITERS {
            "emit".to_owned()
        } else {
            format!("opt{}", i + 1)
        };
        if i > 0 {
            asm = asm.label(&format!("opt{i}"));
        }
        asm = asm
            .jmp_reg(Cond::Ge, R9, R5, "emit")
            .ldx(Size::B, R2, R9, 0)
            .jmp32_imm(Cond::Eq, R2, 0, "emit") // end-of-options
            .jmp32_imm(Cond::Ne, R2, 1, &format!("notnop{i}"))
            .add64_imm(R9, 1)
            .jump(&next)
            .label(&format!("notnop{i}"))
            .jmp32_imm(Cond::Ne, R2, TRACE_ID_OPTION_KIND, &format!("skip{i}"))
            // Found the trace-ID option: ensure its 6 bytes fit.
            .mov64(R2, R9)
            .add64_imm(R2, 6)
            .jmp_reg(Cond::Gt, R2, R5, "emit")
            .ldx(Size::W, R3, R9, 2)
            .be32(R3)
            .stx(Size::W, R10, R3, fp_off(offsets::TRACE_ID))
            .st(Size::B, R10, fp_off(offsets::FLAGS), 1)
            .jump("emit")
            .label(&format!("skip{i}"))
            .ldx(Size::B, R4, R9, 1)
            .jmp32_imm(Cond::Lt, R4, 2, "emit") // malformed option
            .add64(R9, R4);
        if i + 1 == TCP_OPT_SCAN_ITERS {
            asm = asm.jump("emit");
        }
    }
    asm
}

/// Emits the record-building action and the `miss` tail. With
/// `capture_aux`, the hook's auxiliary context word (the typed
/// drop-reason code at `kfree_skb`) is folded into flag bits 1–3.
fn emit_record_action(asm: Asm, perf_fd: i32, capture_aux: bool) -> Asm {
    let mut asm = asm
        .label("emit")
        // Timestamp from the node's CLOCK_MONOTONIC (§III-B).
        .call(helper_ids::KTIME_GET_NS)
        .stx(Size::DW, R10, R0, fp_off(offsets::TIMESTAMP))
        .call(helper_ids::GET_SMP_PROCESSOR_ID)
        .stx(Size::H, R10, R0, fp_off(offsets::CPU))
        // Packet length and direction from the context.
        .ldx(Size::W, R2, R6, CTX_OFF_PKT_LEN)
        .stx(Size::W, R10, R2, fp_off(offsets::PKT_LEN))
        .ldx(Size::W, R2, R6, CTX_OFF_DIRECTION)
        .stx(Size::B, R10, R2, fp_off(offsets::DIRECTION));
    if capture_aux {
        asm = asm
            .ldx(Size::W, R2, R6, CTX_OFF_AUX)
            .alu64_imm(AluOp::And, R2, 7)
            .alu64_imm(AluOp::Lsh, R2, 1)
            .ldx(Size::B, R3, R10, fp_off(offsets::FLAGS))
            .alu64(AluOp::Or, R3, R2)
            .stx(Size::B, R10, R3, fp_off(offsets::FLAGS));
    }
    asm
        // Flow tuple from the packet bytes.
        .ldx(Size::W, R2, R7, OFF_SADDR)
        .be32(R2)
        .stx(Size::W, R10, R2, fp_off(offsets::SADDR))
        .ldx(Size::W, R2, R7, OFF_DADDR)
        .be32(R2)
        .stx(Size::W, R10, R2, fp_off(offsets::DADDR))
        .ldx(Size::H, R2, R7, OFF_SPORT)
        .be16(R2)
        .stx(Size::H, R10, R2, fp_off(offsets::SPORT))
        .ldx(Size::H, R2, R7, OFF_DPORT)
        .be16(R2)
        .stx(Size::H, R10, R2, fp_off(offsets::DPORT))
        // Ship the record.
        .mov64(R1, R6)
        .ld_map_fd(R2, perf_fd)
        .mov32_imm(R3, -1) // BPF_F_CURRENT_CPU
        .mov64(R4, R10)
        .add64_imm(R4, -(R_SIZE as i32))
        .mov64_imm(R5, R_SIZE as i32)
        .call(helper_ids::PERF_EVENT_OUTPUT)
        .mov64_imm(R0, 1)
        .exit()
        .label("miss")
        .mov64_imm(R0, 0)
        .exit()
}

fn emit_record_program(rule: &FilterRule, perf_fd: i32, capture_aux: bool) -> Asm {
    let mut asm = emit_prologue(Asm::new());
    asm = emit_filter(asm, rule);
    asm = emit_trace_id(asm);
    emit_record_action(asm, perf_fd, capture_aux)
}

fn emit_count_program(rule: &FilterRule, counter_fd: i32) -> Asm {
    let mut asm = Asm::new();
    let filtered = !rule.is_empty();
    if filtered {
        asm = emit_prologue(asm);
        asm = emit_filter(asm, rule);
    }
    asm = asm
        .st(Size::W, R10, -4, 0)
        .ld_map_fd(R1, counter_fd)
        .mov64(R2, R10)
        .add64_imm(R2, -4)
        .call(helper_ids::MAP_LOOKUP_ELEM)
        .jmp_imm(Cond::Eq, R0, 0, "miss")
        .ldx(Size::DW, R2, R0, 0)
        .add64_imm(R2, 1)
        .stx(Size::DW, R0, R2, 0)
        .mov64_imm(R0, 1)
        .exit()
        .label("miss")
        .mov64_imm(R0, 0)
        .exit();
    asm
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::net::SocketAddrV4;
    use vnet_ebpf::context::TraceContext;
    use vnet_ebpf::map::{MapDef, MapRegistry};
    use vnet_ebpf::program::load;
    use vnet_ebpf::vm::{standard_helpers, FixedEnv, Vm};
    use vnet_sim::packet::{
        trace_id, FlowKey, PacketBuilder, SocketAddrV4Ext, TcpFlags, TcpOption,
    };

    fn spec(filter: FilterRule, action: Action) -> TraceSpec {
        TraceSpec {
            name: "t".into(),
            node: "n".into(),
            hook: HookSpec::DeviceRx("eth0".into()),
            filter,
            action,
        }
    }

    fn udp_rule() -> FilterRule {
        FilterRule::udp_flow(
            (Ipv4Addr::new(10, 0, 0, 1), 9000),
            (Ipv4Addr::new(10, 0, 0, 2), 7),
        )
    }

    fn udp_flow() -> FlowKey {
        FlowKey::udp(
            SocketAddrV4::sock("10.0.0.1", 9000),
            SocketAddrV4::sock("10.0.0.2", 7),
        )
    }

    /// Runs a compiled record program against a packet; returns
    /// (matched, drained perf records).
    fn run_record(rule: FilterRule, pkt: &[u8]) -> (bool, Vec<crate::record::TraceRecord>) {
        let mut maps = MapRegistry::new();
        let perf_fd = maps.create(MapDef::perf(4096), 2).unwrap();
        let prog = compile(&spec(rule, Action::RecordPacketInfo), Some(perf_fd), None).unwrap();
        let loaded = load(prog, &maps, &standard_helpers()).unwrap();
        let ctx = TraceContext {
            timestamp_ns: 5555,
            pkt_len: pkt.len() as u32,
            cpu: 1,
            node: 0,
            device: 0,
            direction: 0,
            aux: 0,
        };
        let mut env = FixedEnv {
            time_ns: 5555,
            cpu: 1,
            ..Default::default()
        };
        let out = Vm::new()
            .execute(&loaded, &ctx, pkt, &mut maps, &mut env)
            .unwrap();
        let recs = maps
            .get_mut(perf_fd)
            .unwrap()
            .perf_drain_all()
            .iter()
            .map(|b| crate::record::TraceRecord::decode(b).unwrap())
            .collect();
        (out.ret == 1, recs)
    }

    #[test]
    fn matching_udp_packet_produces_record_with_trace_id() {
        let mut pkt = PacketBuilder::udp(udp_flow(), vec![7u8; 56]).build();
        trace_id::inject_udp_trailer(&mut pkt, 0xfeedc0de).unwrap();
        let (matched, recs) = run_record(udp_rule(), pkt.bytes());
        assert!(matched);
        assert_eq!(recs.len(), 1);
        let r = recs[0];
        assert!(r.has_trace_id());
        assert_eq!(r.trace_id, 0xfeedc0de);
        assert_eq!(r.timestamp_ns, 5555);
        assert_eq!(r.pkt_len as usize, pkt.len());
        assert_eq!(r.sport, 9000);
        assert_eq!(r.dport, 7);
        assert_eq!(
            std::net::Ipv4Addr::from(r.saddr),
            Ipv4Addr::new(10, 0, 0, 1)
        );
        assert_eq!(
            std::net::Ipv4Addr::from(r.daddr),
            Ipv4Addr::new(10, 0, 0, 2)
        );
        assert_eq!(r.cpu, 1);
        assert_eq!(r.direction, 0);
    }

    #[test]
    fn non_matching_packets_filtered_out() {
        // Wrong dst port.
        let other = FlowKey::udp(
            SocketAddrV4::sock("10.0.0.1", 9000),
            SocketAddrV4::sock("10.0.0.2", 8),
        );
        let pkt = PacketBuilder::udp(other, vec![0; 16]).build();
        let (matched, recs) = run_record(udp_rule(), pkt.bytes());
        assert!(!matched);
        assert!(recs.is_empty());
        // Wrong src ip.
        let other = FlowKey::udp(
            SocketAddrV4::sock("10.0.0.9", 9000),
            SocketAddrV4::sock("10.0.0.2", 7),
        );
        let pkt = PacketBuilder::udp(other, vec![0; 16]).build();
        assert!(!run_record(udp_rule(), pkt.bytes()).0);
        // Wrong protocol (TCP packet against a UDP rule).
        let tcp = FlowKey::tcp(
            SocketAddrV4::sock("10.0.0.1", 9000),
            SocketAddrV4::sock("10.0.0.2", 7),
        );
        let pkt = PacketBuilder::tcp(tcp, 0, 0, TcpFlags::ACK, vec![]).build();
        assert!(!run_record(udp_rule(), pkt.bytes()).0);
    }

    #[test]
    fn udp_without_trailer_reports_no_id() {
        // A 56-byte payload without injection: the "trailer" would be
        // payload bytes; but the packet is still recorded. The program
        // cannot distinguish, so it reports whatever the last 4 bytes
        // hold — with flag set. To test the *absent* case use a packet
        // whose payload is empty (no room for a trailer).
        let pkt = PacketBuilder::udp(udp_flow(), vec![]).build();
        let (matched, recs) = run_record(udp_rule(), pkt.bytes());
        assert!(matched);
        assert_eq!(recs.len(), 1);
        assert!(!recs[0].has_trace_id());
    }

    #[test]
    fn tcp_option_scan_finds_trace_id() {
        let tcp = FlowKey::tcp(
            SocketAddrV4::sock("10.0.0.1", 9000),
            SocketAddrV4::sock("10.0.0.2", 7),
        );
        let rule = FilterRule::tcp_flow(
            (Ipv4Addr::new(10, 0, 0, 1), 9000),
            (Ipv4Addr::new(10, 0, 0, 2), 7),
        );
        // Trace ID as the only option.
        let pkt = PacketBuilder::tcp(tcp, 1, 2, TcpFlags::ACK, vec![1, 2, 3])
            .tcp_option(TcpOption::TraceId(0xabcd1234))
            .build();
        let (matched, recs) = run_record(rule, pkt.bytes());
        assert!(matched);
        assert_eq!(recs[0].trace_id, 0xabcd1234);
        assert!(recs[0].has_trace_id());
        // Trace ID after an MSS option.
        let pkt = PacketBuilder::tcp(tcp, 1, 2, TcpFlags::ACK, vec![])
            .tcp_option(TcpOption::Mss(1460))
            .tcp_option(TcpOption::TraceId(0x00c0ffee))
            .build();
        let (_, recs) = run_record(rule, pkt.bytes());
        assert_eq!(recs[0].trace_id, 0x00c0ffee);
        // No options at all: no id.
        let pkt = PacketBuilder::tcp(tcp, 1, 2, TcpFlags::ACK, vec![]).build();
        let (matched, recs) = run_record(rule, pkt.bytes());
        assert!(matched);
        assert!(!recs[0].has_trace_id());
        // Unrelated option only.
        let pkt = PacketBuilder::tcp(tcp, 1, 2, TcpFlags::ACK, vec![])
            .tcp_option(TcpOption::Other(99, vec![1, 2]))
            .build();
        let (_, recs) = run_record(rule, pkt.bytes());
        assert!(!recs[0].has_trace_id());
    }

    #[test]
    fn drop_record_program_captures_aux_reason() {
        let mut maps = MapRegistry::new();
        let perf_fd = maps.create(MapDef::perf(4096), 2).unwrap();
        let prog = compile(
            &spec(udp_rule(), Action::RecordDropInfo),
            Some(perf_fd),
            None,
        )
        .unwrap();
        let loaded = load(prog, &maps, &standard_helpers()).unwrap();
        let mut pkt = PacketBuilder::udp(udp_flow(), vec![7u8; 56]).build();
        trace_id::inject_udp_trailer(&mut pkt, 0xfeedc0de).unwrap();
        for aux in [0u32, 2, 5] {
            let ctx = TraceContext {
                pkt_len: pkt.len() as u32,
                aux,
                ..Default::default()
            };
            let mut env = FixedEnv::default();
            let out = Vm::new()
                .execute(&loaded, &ctx, pkt.bytes(), &mut maps, &mut env)
                .unwrap();
            assert_eq!(out.ret, 1);
            let recs: Vec<_> = maps
                .get_mut(perf_fd)
                .unwrap()
                .perf_drain_all()
                .iter()
                .map(|b| crate::record::TraceRecord::decode(b).unwrap())
                .collect();
            assert_eq!(recs.len(), 1);
            assert_eq!(u32::from(recs[0].drop_reason_code()), aux);
            assert!(recs[0].has_trace_id(), "trace id survives aux capture");
            assert_eq!(recs[0].trace_id, 0xfeedc0de);
        }
    }

    #[test]
    fn count_program_counts_per_cpu() {
        let mut maps = MapRegistry::new();
        let counter_fd = maps.create(MapDef::per_cpu_array(8, 1), 4).unwrap();
        let prog = compile(
            &spec(FilterRule::any(), Action::CountPerCpu),
            None,
            Some(counter_fd),
        )
        .unwrap();
        let loaded = load(prog, &maps, &standard_helpers()).unwrap();
        for cpu in [0u32, 0, 2] {
            let mut env = FixedEnv {
                cpu,
                ..Default::default()
            };
            let out = Vm::new()
                .execute(&loaded, &TraceContext::default(), &[], &mut maps, &mut env)
                .unwrap();
            assert_eq!(out.ret, 1);
        }
        let map = maps.get_mut(counter_fd).unwrap();
        let v0 = u64::from_le_bytes(
            map.lookup(&0u32.to_le_bytes(), 0)
                .unwrap()
                .try_into()
                .unwrap(),
        );
        let v2 = u64::from_le_bytes(
            map.lookup(&0u32.to_le_bytes(), 2)
                .unwrap()
                .try_into()
                .unwrap(),
        );
        assert_eq!((v0, v2), (2, 1));
    }

    #[test]
    fn filtered_count_program_respects_rule() {
        let mut maps = MapRegistry::new();
        let counter_fd = maps.create(MapDef::per_cpu_array(8, 1), 1).unwrap();
        let prog = compile(
            &spec(udp_rule(), Action::CountPerCpu),
            None,
            Some(counter_fd),
        )
        .unwrap();
        let loaded = load(prog, &maps, &standard_helpers()).unwrap();
        let matching = PacketBuilder::udp(udp_flow(), vec![0; 8]).build();
        let other = PacketBuilder::udp(udp_flow().reversed(), vec![0; 8]).build();
        for pkt in [&matching, &other, &matching] {
            let ctx = TraceContext {
                pkt_len: pkt.len() as u32,
                ..Default::default()
            };
            let mut env = FixedEnv::default();
            Vm::new()
                .execute(&loaded, &ctx, pkt.bytes(), &mut maps, &mut env)
                .unwrap();
        }
        let map = maps.get_mut(counter_fd).unwrap();
        let v = u64::from_le_bytes(
            map.lookup(&0u32.to_le_bytes(), 0)
                .unwrap()
                .try_into()
                .unwrap(),
        );
        assert_eq!(v, 2, "only the two matching packets counted");
    }

    #[test]
    fn compile_rejects_missing_maps() {
        assert!(compile(&spec(udp_rule(), Action::RecordPacketInfo), None, None).is_err());
        assert!(compile(&spec(udp_rule(), Action::CountPerCpu), None, None).is_err());
    }

    #[test]
    fn compiled_programs_pass_the_verifier() {
        // `load` runs the verifier; exercise all rule shapes.
        let mut maps = MapRegistry::new();
        let perf = maps.create(MapDef::perf(4096), 1).unwrap();
        let counter = maps.create(MapDef::per_cpu_array(8, 1), 1).unwrap();
        let rules = [
            FilterRule::any(),
            udp_rule(),
            FilterRule {
                dst_port: Some(80),
                ..FilterRule::any()
            },
            FilterRule {
                protocol: Some(Proto::Tcp),
                ..FilterRule::any()
            },
        ];
        for rule in rules {
            let p = compile(&spec(rule, Action::RecordPacketInfo), Some(perf), None).unwrap();
            assert!(p.insns.len() <= vnet_ebpf::MAX_INSNS);
            load(p, &maps, &standard_helpers()).expect("record program verifies");
            let p = compile(&spec(rule, Action::CountPerCpu), None, Some(counter)).unwrap();
            load(p, &maps, &standard_helpers()).expect("count program verifies");
        }
    }

    #[test]
    fn compiled_programs_carry_elision_facts() {
        // The generated trace programs are exactly what the analysis is
        // for: ctx-relative loads and fp-relative record assembly should
        // yield proven facts, and the threaded-code tier should find
        // sites to elide.
        let mut maps = MapRegistry::new();
        let perf = maps.create(MapDef::perf(4096), 1).unwrap();
        let counter = maps.create(MapDef::per_cpu_array(8, 1), 1).unwrap();
        for (action, fds) in [
            (Action::RecordPacketInfo, (Some(perf), None)),
            (Action::CountPerCpu, (None, Some(counter))),
        ] {
            let p = compile(&spec(udp_rule(), action), fds.0, fds.1).unwrap();
            let loaded = load(p, &maps, &standard_helpers()).unwrap();
            assert!(
                loaded.analysis().proven_facts() > 0,
                "{action:?} program should carry proven facts"
            );
            let compiled = vnet_ebpf::compile(&loaded);
            assert!(
                compiled.elided_site_count() > 0,
                "{action:?} program should have elided check sites"
            );
        }
    }

    #[test]
    fn record_program_ignores_packetless_hooks() {
        // No packet bytes: bounds check fails, nothing recorded.
        let (matched, recs) = run_record(FilterRule::any(), &[]);
        assert!(!matched);
        assert!(recs.is_empty());
    }
}
