//! Offline data cleaning and timestamp alignment (§III-C).
//!
//! "After the data cleaning and recomputation, such as identifying
//! incomplete records, timestamp alignment for the clock skew, etc., one
//! then can query the database to perform customized analysis."

use std::collections::{BTreeSet, HashMap};

use vnet_tsdb::{DataPoint, TraceDb};

use crate::clock_sync::SkewEstimate;

/// Trace IDs observed at **every** tracepoint in `tracepoints` — the
/// "complete" records safe for end-to-end analysis.
pub fn complete_ids(db: &TraceDb, tracepoints: &[&str]) -> BTreeSet<String> {
    let mut iter = tracepoints.iter();
    let Some(first) = iter.next().and_then(|t| db.table(t)) else {
        return BTreeSet::new();
    };
    let mut ids: BTreeSet<String> = first.trace_ids().into_iter().collect();
    for tp in iter {
        let Some(table) = db.table(tp) else {
            return BTreeSet::new();
        };
        let present: BTreeSet<String> = table.trace_ids().into_iter().collect();
        ids = ids.intersection(&present).cloned().collect();
    }
    ids
}

/// Trace IDs observed at the first tracepoint but missing from at least
/// one later tracepoint — incomplete records (lost packets, truncated
/// traces).
pub fn incomplete_ids(db: &TraceDb, tracepoints: &[&str]) -> BTreeSet<String> {
    let Some(first) = tracepoints.first().and_then(|t| db.table(t)) else {
        return BTreeSet::new();
    };
    let all: BTreeSet<String> = first.trace_ids().into_iter().collect();
    let complete = complete_ids(db, tracepoints);
    all.difference(&complete).cloned().collect()
}

/// Rebuilds the database with every point's timestamp aligned onto the
/// master clock, using each node's skew estimate (points from nodes
/// without an estimate pass through unchanged — e.g. the master itself).
pub fn align_timestamps(db: &TraceDb, skew_by_node: &HashMap<String, SkewEstimate>) -> TraceDb {
    let mut out = TraceDb::new();
    for measurement in db.measurements() {
        let table = db.table(measurement).expect("listed measurement exists");
        for e in table.entries() {
            let mut p: DataPoint = e.to_point();
            if let Some(skew) = p.tag_value("node").and_then(|n| skew_by_node.get(n)) {
                p.timestamp_ns = skew.align_remote_ns(p.timestamp_ns);
            }
            out.insert(p);
        }
    }
    out
}

/// Convenience: aligns timestamps with the per-node skew estimates and
/// decomposes latency across `tracepoints` in one step — the full
/// cross-machine offline pipeline (clean → align → decompose).
pub fn decompose_aligned(
    db: &TraceDb,
    tracepoints: &[&str],
    skew_by_node: &HashMap<String, SkewEstimate>,
) -> Vec<crate::metrics::SegmentStats> {
    let aligned = align_timestamps(db, skew_by_node);
    crate::metrics::decompose(&aligned, tracepoints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_tsdb::TRACE_ID_TAG;

    fn tagged(m: &str, ts: u64, id: &str, node: &str) -> DataPoint {
        DataPoint::new(m, ts)
            .tag(TRACE_ID_TAG, id)
            .tag("node", node)
    }

    #[test]
    fn complete_and_incomplete_partition() {
        let mut db = TraceDb::new();
        for id in ["a", "b", "c"] {
            db.insert(tagged("tp0", 1, id, "n0"));
        }
        for id in ["a", "b"] {
            db.insert(tagged("tp1", 2, id, "n0"));
        }
        db.insert(tagged("tp2", 3, "a", "n0"));
        let complete = complete_ids(&db, &["tp0", "tp1", "tp2"]);
        assert_eq!(
            complete.into_iter().collect::<Vec<_>>(),
            vec!["a".to_owned()]
        );
        let incomplete = incomplete_ids(&db, &["tp0", "tp1", "tp2"]);
        assert_eq!(
            incomplete.into_iter().collect::<Vec<_>>(),
            vec!["b".to_owned(), "c".to_owned()]
        );
    }

    #[test]
    fn missing_table_means_nothing_complete() {
        let mut db = TraceDb::new();
        db.insert(tagged("tp0", 1, "a", "n0"));
        assert!(complete_ids(&db, &["tp0", "absent"]).is_empty());
        assert!(complete_ids(&TraceDb::new(), &["tp0"]).is_empty());
    }

    #[test]
    fn alignment_applies_per_node_offsets() {
        let mut db = TraceDb::new();
        db.insert(tagged("tp0", 1_000, "a", "master"));
        db.insert(tagged("tp1", 2_000, "a", "remote"));
        let mut skews = HashMap::new();
        skews.insert(
            "remote".to_owned(),
            SkewEstimate {
                one_way_ns: 0,
                offset_ns: 700,
                skew_ns: 700,
                samples: 100,
            },
        );
        let aligned = align_timestamps(&db, &skews);
        assert_eq!(
            aligned.table("tp0").unwrap().entries()[0].timestamp_ns(),
            1_000
        );
        assert_eq!(
            aligned.table("tp1").unwrap().entries()[0].timestamp_ns(),
            1_300
        );
        // Join now reflects true latency.
        assert_eq!(aligned.join_timestamps("tp0", "tp1"), vec![(1_000, 1_300)]);
    }

    #[test]
    fn decompose_aligned_pipeline() {
        let mut db = TraceDb::new();
        for (id, t0, t1) in [("a", 100u64, 900u64), ("b", 200, 1_000)] {
            db.insert(tagged("tp0", t0, id, "master"));
            db.insert(tagged("tp1", t1, id, "remote"));
        }
        let mut skews = HashMap::new();
        skews.insert(
            "remote".to_owned(),
            SkewEstimate {
                one_way_ns: 0,
                offset_ns: 300,
                skew_ns: 300,
                samples: 100,
            },
        );
        let segs = decompose_aligned(&db, &["tp0", "tp1"], &skews);
        assert_eq!(segs.len(), 1);
        // Raw delta is 800ns; aligned is 500ns.
        assert_eq!(segs[0].stats.mean_ns, 500.0);
    }
}
