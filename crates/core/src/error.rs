//! Error types for the tracer.

use vnet_ebpf::program::LoadError;

/// Errors surfaced by vNetTracer operations.
#[derive(Debug)]
pub enum TracerError {
    /// The control package referenced a node the tracer has no agent on.
    UnknownNode(String),
    /// The tracepoint referenced a device that does not exist on the node.
    UnknownDevice {
        /// Node name.
        node: String,
        /// Device name.
        device: String,
    },
    /// A generated or user-supplied eBPF program failed to load.
    Load(LoadError),
    /// A map could not be created.
    Map(vnet_ebpf::map::MapError),
    /// The generated program failed to assemble (an internal bug if it
    /// ever happens for a valid rule).
    Assemble(vnet_ebpf::asm::AsmError),
    /// A control package failed to serialize or parse.
    Config(String),
    /// A script id that is not installed.
    UnknownScript(u64),
    /// A profile named a module the registry does not provide.
    UnknownModule {
        /// The requested module name.
        name: String,
        /// Closest registered module name, when one is plausibly meant.
        suggestion: Option<String>,
    },
    /// A requested profile is not registered.
    UnknownProfile {
        /// The requested profile name.
        name: String,
        /// Closest registered profile name, when one is plausibly meant.
        suggestion: Option<String>,
    },
    /// The program's certified worst-case execution cost exceeds the
    /// configured probe budget — rejected at attach time, before the
    /// probe can perturb the traced system.
    OverBudget {
        /// Program name.
        name: String,
        /// Certified worst-case cost per firing (includes probe entry).
        certified_ns: u64,
        /// The configured [`crate::config::GlobalConfig::probe_budget`].
        budget_ns: u64,
        /// Kernel-verifier-style annotated cost report showing where the
        /// worst-case path spends its budget.
        report: String,
    },
}

impl core::fmt::Display for TracerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TracerError::UnknownNode(n) => write!(f, "no agent registered for node `{n}`"),
            TracerError::UnknownDevice { node, device } => {
                write!(f, "device `{device}` not found on node `{node}`")
            }
            TracerError::Load(e) => write!(f, "program load failed: {e}"),
            TracerError::Map(e) => write!(f, "map creation failed: {e}"),
            TracerError::Assemble(e) => write!(f, "program assembly failed: {e}"),
            TracerError::Config(s) => write!(f, "invalid control package: {s}"),
            TracerError::UnknownScript(id) => write!(f, "script {id} is not installed"),
            TracerError::UnknownModule { name, suggestion } => {
                write!(f, "unknown module `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                Ok(())
            }
            TracerError::UnknownProfile { name, suggestion } => {
                write!(f, "unknown profile `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                Ok(())
            }
            TracerError::OverBudget {
                name,
                certified_ns,
                budget_ns,
                report,
            } => write!(
                f,
                "program `{name}` rejected: certified worst-case cost \
                 {certified_ns} ns exceeds probe budget {budget_ns} ns\n{report}"
            ),
        }
    }
}

impl std::error::Error for TracerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TracerError::Load(e) => Some(e),
            TracerError::Map(e) => Some(e),
            TracerError::Assemble(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LoadError> for TracerError {
    fn from(e: LoadError) -> Self {
        TracerError::Load(e)
    }
}

impl From<vnet_ebpf::map::MapError> for TracerError {
    fn from(e: vnet_ebpf::map::MapError) -> Self {
        TracerError::Map(e)
    }
}

impl From<vnet_ebpf::asm::AsmError> for TracerError {
    fn from(e: vnet_ebpf::asm::AsmError) -> Self {
        TracerError::Assemble(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, TracerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errs: Vec<TracerError> = vec![
            TracerError::UnknownNode("n".into()),
            TracerError::UnknownDevice {
                node: "n".into(),
                device: "d".into(),
            },
            TracerError::Config("bad".into()),
            TracerError::UnknownScript(9),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
