//! The per-packet trace ID (§III-B, Fig. 3).
//!
//! vNetTracer identifies individual packets across protection-domain
//! boundaries by embedding a 32-bit random ID in the packet itself:
//!
//! * **TCP** — a 4-byte option (experimental kind 253) written into the
//!   header at `tcp_options_write`;
//! * **UDP** — 4 bytes appended to the payload via `__skb_put()` at
//!   `udp_send_skb`, removed via `pskb_trim_rcsum()` before the receiving
//!   application sees the data.
//!
//! The byte-level operations live in the simulated kernel
//! ([`vnet_sim::packet::trace_id`] — the "tens of lines of code
//! modification inside the kernel"); this module re-exports them and adds
//! the ID-generation and read-back conveniences the tracer uses. The
//! paper notes the add/remove operations "only involve tens of
//! nanoseconds overhead"; the repository's Criterion bench
//! (`cargo bench -p vnet-bench --bench packet_id`) verifies that claim
//! holds for this implementation.

use rand::Rng;

pub use vnet_sim::packet::trace_id::{
    inject_tcp_option, inject_udp_trailer, read_tcp_option, read_udp_trailer, strip_udp_trailer,
    TRACE_ID_LEN,
};

use vnet_sim::packet::{IpProtocol, Packet, ParseError};

/// Generates a fresh random 32-bit trace ID.
pub fn generate_id(rng: &mut impl Rng) -> u32 {
    rng.gen()
}

/// Injects a trace ID into `pkt` according to its transport protocol,
/// returning the ID used.
///
/// # Errors
///
/// Returns a [`ParseError`] if the packet is malformed or of an
/// unsupported protocol.
pub fn inject(pkt: &mut Packet, rng: &mut impl Rng) -> Result<u32, ParseError> {
    let id = generate_id(rng);
    match pkt.parse()?.ipv4.protocol {
        IpProtocol::Tcp => inject_tcp_option(pkt, id)?,
        IpProtocol::Udp => inject_udp_trailer(pkt, id)?,
        IpProtocol::Other(_) => return Err(ParseError::BadTransport),
    }
    Ok(id)
}

/// Reads the trace ID from `pkt` without modifying it (TCP option or UDP
/// trailer, by protocol).
pub fn read(pkt: &Packet) -> Option<u32> {
    match pkt.parse().ok()?.ipv4.protocol {
        IpProtocol::Tcp => read_tcp_option(pkt),
        IpProtocol::Udp => read_udp_trailer(pkt),
        IpProtocol::Other(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::net::SocketAddrV4;
    use vnet_sim::packet::{FlowKey, PacketBuilder, SocketAddrV4Ext, TcpFlags};

    #[test]
    fn inject_and_read_udp() {
        let flow = FlowKey::udp(
            SocketAddrV4::sock("10.0.0.1", 1),
            SocketAddrV4::sock("10.0.0.2", 2),
        );
        let mut pkt = PacketBuilder::udp(flow, vec![0; 32]).build();
        let mut rng = SmallRng::seed_from_u64(1);
        let id = inject(&mut pkt, &mut rng).unwrap();
        assert_eq!(read(&pkt), Some(id));
    }

    #[test]
    fn inject_and_read_tcp() {
        let flow = FlowKey::tcp(
            SocketAddrV4::sock("10.0.0.1", 1),
            SocketAddrV4::sock("10.0.0.2", 2),
        );
        let mut pkt = PacketBuilder::tcp(flow, 0, 0, TcpFlags::ACK, vec![0; 32]).build();
        let mut rng = SmallRng::seed_from_u64(2);
        let id = inject(&mut pkt, &mut rng).unwrap();
        assert_eq!(read(&pkt), Some(id));
    }

    #[test]
    fn ids_are_random_per_packet() {
        let flow = FlowKey::udp(
            SocketAddrV4::sock("10.0.0.1", 1),
            SocketAddrV4::sock("10.0.0.2", 2),
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let mut a = PacketBuilder::udp(flow, vec![0; 8]).build();
        let mut b = PacketBuilder::udp(flow, vec![0; 8]).build();
        let id_a = inject(&mut a, &mut rng).unwrap();
        let id_b = inject(&mut b, &mut rng).unwrap();
        assert_ne!(id_a, id_b);
    }
}
