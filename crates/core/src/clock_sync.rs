//! Cross-machine clock-skew estimation via Cristian's algorithm.
//!
//! Per-node monotonic clocks inevitably disagree; vNetTracer aligns
//! timestamps offline using the relative skew between the master and each
//! monitoring node (§III-B, Fig. 4). Two trace scripts at the NIC
//! interfaces record:
//!
//! * `t1` — master clock when the probe request leaves,
//! * `t2` — remote clock when it arrives,
//! * `t3` — remote clock when the reply leaves,
//! * `t4` — master clock when the reply arrives.
//!
//! Then `T_RTT = t4 − t1`, `T_pro = t3 − t2`, and the one-way time is
//! `(T_RTT − T_pro)/2`. To mitigate network interference the paper takes
//! **100 samples and selects the minimum** one-way time; the skew is
//! `t1 + T_1wt − t2` (the paper reports its absolute value).

use serde::{Deserialize, Serialize};

/// Number of probe samples the paper collects per estimate.
pub const DEFAULT_SAMPLES: usize = 100;

/// One probe exchange's four timestamps (nanoseconds on each node's own
/// clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewSample {
    /// Master clock at request transmission.
    pub t1: u64,
    /// Remote clock at request arrival.
    pub t2: u64,
    /// Remote clock at reply transmission.
    pub t3: u64,
    /// Master clock at reply arrival.
    pub t4: u64,
}

impl SkewSample {
    /// Round-trip time as seen by the master.
    pub fn rtt_ns(&self) -> u64 {
        self.t4.saturating_sub(self.t1)
    }

    /// Remote processing time.
    pub fn processing_ns(&self) -> u64 {
        self.t3.saturating_sub(self.t2)
    }

    /// One-way transmission estimate `(T_RTT − T_pro) / 2`.
    pub fn one_way_ns(&self) -> u64 {
        self.rtt_ns().saturating_sub(self.processing_ns()) / 2
    }

    /// Signed clock offset estimate: remote − master.
    pub fn offset_ns(&self) -> i64 {
        self.t2 as i64 - (self.t1 + self.one_way_ns()) as i64
    }
}

/// The skew estimate produced from a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewEstimate {
    /// One-way transmission time of the best (minimum) sample.
    pub one_way_ns: u64,
    /// Signed offset (remote clock − master clock), used to align remote
    /// timestamps onto the master's time base.
    pub offset_ns: i64,
    /// The `ΔT_skew` the paper reports: the offset's magnitude.
    pub skew_ns: u64,
    /// Number of samples used.
    pub samples: usize,
}

impl SkewEstimate {
    /// Aligns a remote-clock timestamp onto the master clock's time base.
    pub fn align_remote_ns(&self, remote_ts_ns: u64) -> u64 {
        (remote_ts_ns as i64 - self.offset_ns).max(0) as u64
    }
}

/// Estimates the skew from probe samples, selecting the sample with the
/// minimum one-way time as the paper prescribes. Returns `None` when
/// `samples` is empty.
pub fn estimate_skew(samples: &[SkewSample]) -> Option<SkewEstimate> {
    let best = samples.iter().min_by_key(|s| s.one_way_ns())?;
    let offset = best.offset_ns();
    Some(SkewEstimate {
        one_way_ns: best.one_way_ns(),
        offset_ns: offset,
        skew_ns: offset.unsigned_abs(),
        samples: samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a sample where the remote clock leads the master by
    /// `offset`, the wire takes `fwd`/`back`, and the remote processes
    /// for `proc`.
    fn sample(start: u64, offset: i64, fwd: u64, back: u64, proc_ns: u64) -> SkewSample {
        let t1 = start;
        let arrive_true = start + fwd;
        let t2 = (arrive_true as i64 + offset) as u64;
        let t3 = t2 + proc_ns;
        let depart_true = arrive_true + proc_ns;
        let t4 = depart_true + back;
        SkewSample { t1, t2, t3, t4 }
    }

    #[test]
    fn symmetric_path_recovers_exact_offset() {
        let s = sample(1_000_000, 2_500, 30_000, 30_000, 5_000);
        assert_eq!(s.rtt_ns(), 65_000);
        assert_eq!(s.processing_ns(), 5_000);
        assert_eq!(s.one_way_ns(), 30_000);
        assert_eq!(s.offset_ns(), 2_500);
    }

    #[test]
    fn negative_offset_recovered() {
        let s = sample(1_000_000, -4_000, 20_000, 20_000, 1_000);
        assert_eq!(s.offset_ns(), -4_000);
        let est = estimate_skew(&[s]).unwrap();
        assert_eq!(est.offset_ns, -4_000);
        assert_eq!(est.skew_ns, 4_000);
    }

    #[test]
    fn minimum_one_way_sample_wins() {
        // Congested samples have inflated one-way times and distorted
        // offsets; the clean (minimum) sample should be chosen.
        let clean = sample(0, 1_000, 10_000, 10_000, 500);
        let mut samples: Vec<SkewSample> = (0..99)
            .map(|i: u64| sample(i * 100_000, 1_000, 10_000 + 40_000, 10_000, 500))
            .collect();
        samples.push(clean);
        let est = estimate_skew(&samples).unwrap();
        assert_eq!(est.samples, 100);
        assert_eq!(est.one_way_ns, 10_000);
        assert_eq!(est.offset_ns, 1_000);
    }

    #[test]
    fn asymmetry_bounds_the_error() {
        // Cristian's algorithm errs by at most half the path asymmetry.
        let s = sample(0, 0, 10_000, 14_000, 0);
        assert!(s.offset_ns().unsigned_abs() <= 2_000);
    }

    #[test]
    fn align_remote_timestamp() {
        let est = SkewEstimate {
            one_way_ns: 10,
            offset_ns: 2_500,
            skew_ns: 2_500,
            samples: 1,
        };
        assert_eq!(est.align_remote_ns(10_000), 7_500);
        let est = SkewEstimate {
            one_way_ns: 10,
            offset_ns: -2_500,
            skew_ns: 2_500,
            samples: 1,
        };
        assert_eq!(est.align_remote_ns(10_000), 12_500);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(estimate_skew(&[]).is_none());
    }
}
