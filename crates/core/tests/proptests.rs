//! Property-based tests for the tracer core: the compiled eBPF filter
//! agrees with a host-side reference matcher on arbitrary packets and
//! rules, and records round-trip.

use proptest::prelude::*;
use std::net::{Ipv4Addr, SocketAddrV4};
use vnet_ebpf::context::TraceContext;
use vnet_ebpf::map::{MapDef, MapRegistry};
use vnet_ebpf::program::load;
use vnet_ebpf::vm::{standard_helpers, FixedEnv, Vm};
use vnet_sim::packet::{FlowKey, IpProtocol, Packet, PacketBuilder, TcpFlags};
use vnettracer::compile::compile;
use vnettracer::config::{Action, FilterRule, HookSpec, Proto, TraceSpec};
use vnettracer::record::TraceRecord;

// A small IP space so random rules and packets collide often.
fn small_ip() -> impl Strategy<Value = Ipv4Addr> {
    (0u8..=1, 1u8..=3).prop_map(|(c, d)| Ipv4Addr::new(10, 0, c, d))
}

fn small_port() -> impl Strategy<Value = u16> {
    prop_oneof![Just(7u16), Just(80), Just(5001), Just(9000)]
}

fn arb_flow() -> impl Strategy<Value = FlowKey> {
    (
        small_ip(),
        small_ip(),
        small_port(),
        small_port(),
        any::<bool>(),
    )
        .prop_map(|(src, dst, sp, dp, tcp)| {
            if tcp {
                FlowKey::tcp(SocketAddrV4::new(src, sp), SocketAddrV4::new(dst, dp))
            } else {
                FlowKey::udp(SocketAddrV4::new(src, sp), SocketAddrV4::new(dst, dp))
            }
        })
}

fn arb_rule() -> impl Strategy<Value = FilterRule> {
    (
        proptest::option::of(prop_oneof![Just(Proto::Tcp), Just(Proto::Udp)]),
        proptest::option::of(small_ip()),
        proptest::option::of(small_ip()),
        proptest::option::of(small_port()),
        proptest::option::of(small_port()),
    )
        .prop_map(
            |(protocol, src_ip, dst_ip, src_port, dst_port)| FilterRule {
                ether_type: Some(0x0800),
                protocol,
                src_ip,
                dst_ip,
                src_port,
                dst_port,
            },
        )
}

/// Host-side reference implementation of rule matching.
fn reference_match(rule: &FilterRule, pkt: &Packet) -> bool {
    let Ok(parsed) = pkt.parse() else {
        return false;
    };
    let flow = parsed.flow();
    if let Some(p) = rule.protocol {
        let want = match p {
            Proto::Tcp => IpProtocol::Tcp,
            Proto::Udp => IpProtocol::Udp,
        };
        if flow.protocol != want {
            return false;
        }
    }
    rule.src_ip.is_none_or(|ip| ip == flow.src_ip)
        && rule.dst_ip.is_none_or(|ip| ip == flow.dst_ip)
        && rule.src_port.is_none_or(|p| p == flow.src_port)
        && rule.dst_port.is_none_or(|p| p == flow.dst_port)
}

fn run_compiled(rule: FilterRule, pkt: &Packet) -> (bool, Vec<TraceRecord>) {
    let mut maps = MapRegistry::new();
    let perf_fd = maps.create(MapDef::perf(65536), 1).unwrap();
    let spec = TraceSpec {
        name: "t".into(),
        node: "n".into(),
        hook: HookSpec::DeviceRx("d".into()),
        filter: rule,
        action: Action::RecordPacketInfo,
    };
    let prog = compile(&spec, Some(perf_fd), None).unwrap();
    let loaded = load(prog, &maps, &standard_helpers()).unwrap();
    let ctx = TraceContext {
        pkt_len: pkt.len() as u32,
        ..Default::default()
    };
    let mut env = FixedEnv::default();
    let out = Vm::new()
        .execute(&loaded, &ctx, pkt.bytes(), &mut maps, &mut env)
        .unwrap();
    let recs = maps
        .get_mut(perf_fd)
        .unwrap()
        .perf_drain_all()
        .iter()
        .map(|b| TraceRecord::decode(b).unwrap())
        .collect();
    (out.ret == 1, recs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled eBPF filter and the host-side reference matcher agree
    /// on every (rule, packet) pair.
    #[test]
    fn compiled_filter_matches_reference(
        rule in arb_rule(),
        flow in arb_flow(),
        payload_len in 0usize..256,
    ) {
        let pkt = match flow.protocol {
            IpProtocol::Tcp => {
                PacketBuilder::tcp(flow, 1, 2, TcpFlags::ACK, vec![0xab; payload_len]).build()
            }
            _ => PacketBuilder::udp(flow, vec![0xab; payload_len]).build(),
        };
        let (matched, recs) = run_compiled(rule, &pkt);
        prop_assert_eq!(matched, reference_match(&rule, &pkt), "rule {:?} flow {}", rule, flow);
        prop_assert_eq!(recs.len(), usize::from(matched));
        if let Some(r) = recs.first() {
            prop_assert_eq!(r.sport, flow.src_port);
            prop_assert_eq!(r.dport, flow.dst_port);
            prop_assert_eq!(Ipv4Addr::from(r.saddr), flow.src_ip);
            prop_assert_eq!(Ipv4Addr::from(r.daddr), flow.dst_ip);
            prop_assert_eq!(r.pkt_len as usize, pkt.len());
        }
    }

    /// Trace IDs injected by the (simulated) kernel patch are recovered
    /// verbatim by the compiled extractor, for both protocols.
    #[test]
    fn trace_id_extraction_agrees_with_injection(
        flow in arb_flow(),
        payload_len in 0usize..256,
        id in any::<u32>(),
    ) {
        let mut pkt = match flow.protocol {
            IpProtocol::Tcp => {
                PacketBuilder::tcp(flow, 1, 2, TcpFlags::ACK, vec![0u8; payload_len]).build()
            }
            _ => PacketBuilder::udp(flow, vec![0u8; payload_len]).build(),
        };
        match flow.protocol {
            IpProtocol::Tcp => {
                vnet_sim::packet::trace_id::inject_tcp_option(&mut pkt, id).unwrap()
            }
            _ => vnet_sim::packet::trace_id::inject_udp_trailer(&mut pkt, id).unwrap(),
        }
        let (matched, recs) = run_compiled(FilterRule::any(), &pkt);
        prop_assert!(matched);
        prop_assert!(recs[0].has_trace_id());
        prop_assert_eq!(recs[0].trace_id, id);
    }

    /// Record encode/decode round-trips for arbitrary field values.
    #[test]
    fn record_round_trip(
        timestamp_ns in any::<u64>(),
        trace_id in any::<u32>(),
        pkt_len in any::<u32>(),
        saddr in any::<u32>(),
        daddr in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        cpu in any::<u16>(),
        direction in 0u8..2,
        flags in 0u8..4,
    ) {
        let r = TraceRecord {
            timestamp_ns, trace_id, pkt_len, saddr, daddr, sport, dport, cpu, direction, flags,
        };
        prop_assert_eq!(TraceRecord::decode(&r.encode()), Some(r));
    }
}
