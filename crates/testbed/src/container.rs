//! The Case Study III testbed (Figs. 12–13): bottlenecks of the container
//! overlay network.
//!
//! Two KVM VMs (4 vCPUs each) on one host. In **VM mode** applications
//! talk VM-to-VM through virtio and the host bridge. In **overlay mode**
//! they run in containers connected by a Docker overlay network: packets
//! traverse veth → docker0 → VXLAN encapsulation before even reaching the
//! VM's own stack, and the mirror chain on the receive side — every layer
//! processed in softirq context. Because all those softirqs stem from one
//! interrupt source (and RPS cannot split a single connection), they
//! serialize on few CPUs: `net_rx_action` runs ~4–5× as often per
//! delivered packet, concentrated on CPU 0, and container throughput
//! collapses to a fraction of the VM-to-VM number (Fig. 12b).

use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};

use vnet_sim::device::{
    DeviceConfig, Forwarding, Gate, KernelFunctions, ServiceModel, Steering, TraceIdRole, Transform,
};
use vnet_sim::node::NodeClock;
use vnet_sim::packet::{FlowKey, IpProtocol};
use vnet_sim::time::SimDuration;
use vnet_sim::world::World;
use vnet_sim::NodeId;
use vnet_workloads::stats::ThroughputRecorder;
use vnet_workloads::{IperfClient, IperfServer, NetperfClient, NetperfServer};
use vnettracer::config::{Action, ControlPackage, FilterRule, HookSpec, TraceSpec};
use vnettracer::{Agent, VNetTracer};

use crate::route;

/// VM-to-VM or container-overlay networking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMode {
    /// Direct VM networking (virtio + host bridge).
    VmDirect,
    /// Docker overlay network (veth + bridge + VXLAN) on top of the VM
    /// network.
    Overlay,
}

/// Transport driving the throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Netperf TCP_STREAM (closed loop, window 32).
    NetperfTcp,
    /// Netperf UDP_STREAM (open loop above capacity).
    NetperfUdp,
    /// iPerf TCP (closed loop, window 64).
    IperfTcp,
}

/// Configuration for the container scenario.
#[derive(Debug, Clone)]
pub struct ContainerConfig {
    /// RNG seed.
    pub seed: u64,
    /// Networking mode.
    pub mode: NetMode,
    /// Transport.
    pub transport: Transport,
    /// Number of data packets/segments.
    pub count: u64,
}

impl Default for ContainerConfig {
    fn default() -> Self {
        ContainerConfig {
            seed: 19,
            mode: NetMode::VmDirect,
            transport: Transport::NetperfTcp,
            count: 2_000,
        }
    }
}

/// The built scenario.
#[derive(Debug)]
pub struct ContainerScenario {
    /// The simulated world.
    pub world: World,
    /// The physical host.
    pub host: NodeId,
    /// Sender VM.
    pub vm1: NodeId,
    /// Receiver VM.
    pub vm2: NodeId,
    /// Server-side goodput recorder.
    pub throughput: Arc<Mutex<ThroughputRecorder>>,
    /// The (inner, for overlay) data flow client → server.
    pub flow: FlowKey,
}

/// VM1 underlay address.
pub const VM1_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
/// VM2 underlay address.
pub const VM2_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
/// Container on VM1 (overlay address).
pub const C1_IP: Ipv4Addr = Ipv4Addr::new(172, 17, 0, 2);
/// Container on VM2 (overlay address).
pub const C2_IP: Ipv4Addr = Ipv4Addr::new(172, 17, 0, 3);
const SERVER_PORT: u16 = 5201;
/// The overlay VNI.
pub const VNI: u32 = 256;

/// Picks a client port whose flow RPS-hashes off CPU 0 on a 4-CPU VM, so
/// the post-decapsulation softirqs (steered by the *inner* flow) land on
/// a different core than the IRQ-affine outer processing — the partial
/// spread of Fig. 13(a).
fn pick_client_port(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProtocol) -> u16 {
    (50_000..50_200u16)
        .find(|&p| {
            let f = FlowKey {
                src_ip: src,
                dst_ip: dst,
                src_port: p,
                dst_port: SERVER_PORT,
                protocol: proto,
            };
            !f.rps_hash().is_multiple_of(4)
        })
        .expect("some port hashes off cpu0")
}

impl ContainerScenario {
    /// Builds the topology and workload.
    pub fn build(cfg: &ContainerConfig) -> Self {
        let mut w = World::new(cfg.seed);
        let host = w.add_node("host", 20, NodeClock::perfect());
        let vm1 = w.add_node("vm1", 4, NodeClock::perfect());
        let vm2 = w.add_node("vm2", 4, NodeClock::perfect());

        let softirq_fns = KernelFunctions::new(&["net_rx_action", "get_rps_cpu"], &[]);

        // --- vm1 transmit side ---
        let stack_tx = w.add_device(
            DeviceConfig::new("stack-tx", vm1)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .trace_id(TraceIdRole::Inject),
        );
        let veth_c1 = w.add_device(
            DeviceConfig::new("veth-c1", vm1)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(400))),
        );
        let docker0_1 = w.add_device(
            DeviceConfig::new("docker0", vm1)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500))),
        );
        let flannel_tx = w.add_device(
            DeviceConfig::new("flannel.1", vm1)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .transform(Transform::VxlanEncap {
                    vni: VNI,
                    src: VM1_IP,
                    dst: VM2_IP,
                    src_port: 51_823,
                }),
        );
        let eth0_tx_1 = w.add_device(
            DeviceConfig::new("eth0-tx", vm1)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .queue_capacity(4096),
        );
        // vm1 receive side (acks / replies).
        let eth0_1 = w.add_device(
            DeviceConfig::new("eth0", vm1)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .gate(Gate::Softirq(Steering::IrqAffinity(0)))
                .kernel_functions(softirq_fns.clone())
                .queue_capacity(4096)
                .forwarding(match cfg.mode {
                    NetMode::VmDirect => Forwarding::Deliver,
                    NetMode::Overlay => Forwarding::Port(0),
                })
                .trace_id(TraceIdRole::StripUdpTrailer),
        );
        let ov_rx_1 = w.add_device(
            DeviceConfig::new("ov-rx", vm1)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .gate(Gate::Softirq(Steering::IrqAffinity(0)))
                .kernel_functions(softirq_fns.clone())
                .queue_capacity(4096)
                .transform(Transform::VxlanDecap)
                .forwarding(Forwarding::Deliver)
                .trace_id(TraceIdRole::StripUdpTrailer),
        );
        w.connect(eth0_1, ov_rx_1, SimDuration::ZERO);

        // --- host fabric ---
        let vhost1 = w.add_device(
            DeviceConfig::new("vhost1", host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .queue_capacity(4096),
        );
        let br_host = w.add_device(
            DeviceConfig::new("br-host", host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .queue_capacity(4096),
        );
        let vhost2 = w.add_device(
            DeviceConfig::new("vhost2", host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .queue_capacity(4096),
        );

        // --- vm2 receive side ---
        let eth0_2 = w.add_device(
            DeviceConfig::new("eth0", vm2)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(1_500)))
                .gate(Gate::Softirq(Steering::IrqAffinity(0)))
                .kernel_functions(softirq_fns.clone())
                .queue_capacity(4096)
                .forwarding(match cfg.mode {
                    NetMode::VmDirect => Forwarding::Deliver,
                    NetMode::Overlay => Forwarding::Port(0),
                })
                .trace_id(TraceIdRole::StripUdpTrailer),
        );
        let flannel_rx = w.add_device(
            DeviceConfig::new("flannel.1", vm2)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(4_500)))
                .gate(Gate::Softirq(Steering::IrqAffinity(0)))
                .kernel_functions(softirq_fns.clone())
                .queue_capacity(4096)
                .transform(Transform::VxlanDecap),
        );
        let docker0_2 = w.add_device(
            DeviceConfig::new("docker0", vm2)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(2_000)))
                .gate(Gate::Softirq(Steering::IrqAffinity(0)))
                .kernel_functions(softirq_fns.clone())
                .queue_capacity(4096),
        );
        let veth_c2 = w.add_device(
            DeviceConfig::new("veth-c2", vm2)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(1_500)))
                .gate(Gate::Softirq(Steering::Rps))
                .kernel_functions(softirq_fns.clone())
                .queue_capacity(4096)
                .forwarding(Forwarding::Deliver)
                .trace_id(TraceIdRole::StripUdpTrailer),
        );
        // vm2 transmit side (acks).
        let c2_tx = w.add_device(
            DeviceConfig::new("c2-tx", vm2)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .trace_id(TraceIdRole::Inject),
        );
        let flannel_tx_2 = w.add_device(
            DeviceConfig::new("flannel-tx", vm2)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .gate(Gate::Softirq(Steering::IrqAffinity(0)))
                .kernel_functions(softirq_fns)
                .queue_capacity(4096)
                .transform(Transform::VxlanEncap {
                    vni: VNI,
                    src: VM2_IP,
                    dst: VM1_IP,
                    src_port: 51_824,
                }),
        );
        let eth0_tx_2 = w.add_device(
            DeviceConfig::new("eth0-tx", vm2)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .queue_capacity(4096),
        );

        // --- wiring ---
        match cfg.mode {
            NetMode::VmDirect => {
                w.connect(stack_tx, eth0_tx_1, SimDuration::ZERO);
                w.connect(c2_tx, eth0_tx_2, SimDuration::ZERO);
            }
            NetMode::Overlay => {
                w.connect(stack_tx, veth_c1, SimDuration::ZERO);
                w.connect(veth_c1, docker0_1, SimDuration::ZERO);
                w.connect(docker0_1, flannel_tx, SimDuration::ZERO);
                w.connect(flannel_tx, eth0_tx_1, SimDuration::ZERO);
                w.connect(c2_tx, flannel_tx_2, SimDuration::ZERO);
                w.connect(flannel_tx_2, eth0_tx_2, SimDuration::ZERO);
            }
        }
        w.connect(eth0_tx_1, vhost1, SimDuration::ZERO);
        w.connect(vhost1, br_host, SimDuration::ZERO);
        let p_vm2 = w.connect(br_host, eth0_2, SimDuration::ZERO);
        let p_vm1 = w.connect(br_host, eth0_1, SimDuration::ZERO);
        route(&mut w, br_host, &[(VM2_IP, p_vm2), (VM1_IP, p_vm1)]);
        w.connect(eth0_tx_2, vhost2, SimDuration::ZERO);
        w.connect(vhost2, br_host, SimDuration::ZERO);
        w.connect(eth0_2, flannel_rx, SimDuration::ZERO);
        w.connect(flannel_rx, docker0_2, SimDuration::ZERO);
        w.connect(docker0_2, veth_c2, SimDuration::ZERO);

        // --- workload ---
        let (src_ip, dst_ip) = match cfg.mode {
            NetMode::VmDirect => (VM1_IP, VM2_IP),
            NetMode::Overlay => (C1_IP, C2_IP),
        };
        let proto = match cfg.transport {
            Transport::NetperfUdp => IpProtocol::Udp,
            _ => IpProtocol::Tcp,
        };
        let cport = pick_client_port(src_ip, dst_ip, proto);
        let flow = FlowKey {
            src_ip,
            dst_ip,
            src_port: cport,
            dst_port: SERVER_PORT,
            protocol: proto,
        };
        let client_tx = match cfg.mode {
            NetMode::VmDirect => stack_tx,
            NetMode::Overlay => stack_tx,
        };
        let server_rx = match cfg.mode {
            NetMode::VmDirect => eth0_2,
            NetMode::Overlay => veth_c2,
        };
        let client_rx = match cfg.mode {
            NetMode::VmDirect => eth0_1,
            NetMode::Overlay => ov_rx_1,
        };
        let throughput = ThroughputRecorder::shared();
        match cfg.transport {
            Transport::NetperfTcp | Transport::IperfTcp => {
                let window = if cfg.transport == Transport::NetperfTcp {
                    32
                } else {
                    64
                };
                let server = w.add_app(
                    vm2,
                    c2_tx,
                    Box::new(NetperfServer::new(Arc::clone(&throughput))),
                );
                w.bind_app(server_rx, SERVER_PORT, server);
                let client = w.add_app(
                    vm1,
                    client_tx,
                    Box::new(NetperfClient::new(
                        flow,
                        vnet_workloads::netperf::DEFAULT_MSS,
                        window,
                        cfg.count,
                    )),
                );
                w.bind_app(client_rx, cport, client);
            }
            Transport::NetperfUdp => {
                let server = w.add_app(
                    vm2,
                    c2_tx,
                    Box::new(IperfServer::new(Arc::clone(&throughput))),
                );
                w.bind_app(server_rx, SERVER_PORT, server);
                // Open loop above the fastest capacity (1.5us/pkt): one
                // packet every 1.2us.
                w.add_app(
                    vm1,
                    client_tx,
                    Box::new(IperfClient::new(
                        flow,
                        1470,
                        SimDuration::from_nanos(1_200),
                        cfg.count,
                    )),
                );
            }
        }

        ContainerScenario {
            world: w,
            host,
            vm1,
            vm2,
            throughput,
            flow,
        }
    }

    /// Runs to completion.
    pub fn run(&mut self, cfg: &ContainerConfig) {
        // Worst-case overlay TCP: ~10us per segment.
        let budget = SimDuration::from_nanos(cfg.count * 15_000 + 20_000_000);
        self.world.run_for(budget);
    }

    /// Goodput in Mbit/s.
    pub fn goodput_mbps(&self) -> f64 {
        self.throughput.lock().unwrap().throughput_mbps()
    }

    /// `net_rx_action` executions on the receiver VM, per CPU.
    pub fn vm2_net_rx_per_cpu(&self) -> Vec<u64> {
        self.world
            .softirq_engine(self.vm2)
            .all_counters()
            .iter()
            .map(|c| c.net_rx_actions)
            .collect()
    }

    /// The softirq concentration statistic on the receiver VM.
    pub fn vm2_concentration(&self) -> f64 {
        self.world.softirq_engine(self.vm2).concentration()
    }

    /// The device chain a data packet traverses, in order (Fig. 13b).
    pub fn data_path(mode: NetMode) -> Vec<&'static str> {
        match mode {
            NetMode::VmDirect => {
                vec!["stack-tx", "eth0-tx", "vhost1", "br-host", "eth0"]
            }
            NetMode::Overlay => vec![
                "stack-tx",
                "veth-c1",
                "docker0",
                "flannel.1",
                "eth0-tx",
                "vhost1",
                "br-host",
                "eth0",
                "flannel.1(rx)",
                "docker0(rx)",
                "veth-c2",
            ],
        }
    }

    /// A control package counting `net_rx_action` and `get_rps_cpu`
    /// executions per CPU on the receiver VM (the Fig. 13a scripts).
    pub fn control_package(&self) -> ControlPackage {
        ControlPackage::new(vec![
            TraceSpec {
                name: "net_rx_action".into(),
                node: "vm2".into(),
                hook: HookSpec::Kprobe("net_rx_action".into()),
                filter: FilterRule::any(),
                action: Action::CountPerCpu,
            },
            TraceSpec {
                name: "get_rps_cpu".into(),
                node: "vm2".into(),
                hook: HookSpec::Kprobe("get_rps_cpu".into()),
                filter: FilterRule::any(),
                action: Action::CountPerCpu,
            },
        ])
    }

    /// Creates a tracer with agents for the host and both VMs.
    pub fn make_tracer(&self) -> VNetTracer {
        self.make_tracer_with_db(vnet_tsdb::TraceDb::new())
    }

    /// Like [`ContainerScenario::make_tracer`] with a caller-provided
    /// trace database (e.g. a disk-backed one).
    pub fn make_tracer_with_db(&self, db: vnet_tsdb::TraceDb) -> VNetTracer {
        let mut tracer = VNetTracer::with_db(db);
        tracer.add_agent(Agent::new(self.host, "host", 20));
        tracer.add_agent(Agent::new(self.vm1, "vm1", 4));
        tracer.add_agent(Agent::new(self.vm2, "vm2", 4));
        tracer
    }
}

/// Runs one configuration and returns `(goodput_mbps, net_rx_per_packet,
/// concentration)` on the receiver VM.
pub fn run_throughput(mode: NetMode, transport: Transport, count: u64) -> (f64, f64, f64) {
    let cfg = ContainerConfig {
        mode,
        transport,
        count,
        ..Default::default()
    };
    let mut s = ContainerScenario::build(&cfg);
    s.run(&cfg);
    let delivered = s.throughput.lock().unwrap().packets().max(1);
    let net_rx: u64 = s.vm2_net_rx_per_cpu().iter().sum();
    (
        s.goodput_mbps(),
        net_rx as f64 / delivered as f64,
        s.vm2_concentration(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_tcp_throughput_collapses() {
        let (vm, vm_rx, _) = run_throughput(NetMode::VmDirect, Transport::NetperfTcp, 1_000);
        let (ov, ov_rx, conc) = run_throughput(NetMode::Overlay, Transport::NetperfTcp, 1_000);
        let ratio = ov / vm;
        assert!(
            (0.10..0.30).contains(&ratio),
            "overlay TCP should be ~17% of VM (paper 16.8%): vm={vm:.0} ov={ov:.0} ratio={ratio:.3}"
        );
        // net_rx_action per delivered packet multiplies (paper: 4.54x).
        let rx_ratio = ov_rx / vm_rx;
        assert!(
            (3.0..6.5).contains(&rx_ratio),
            "net_rx_action ratio {rx_ratio:.2} (vm {vm_rx:.2}/pkt, overlay {ov_rx:.2}/pkt)"
        );
        // Softirqs concentrate on few CPUs but not all on one (RPS moves
        // post-decap processing of the inner flow).
        assert!(
            (0.5..1.0).contains(&conc),
            "overlay concentration {conc:.3} should be high but split"
        );
    }

    #[test]
    fn overlay_udp_ratio_slightly_higher_than_tcp() {
        let (vm_t, _, _) = run_throughput(NetMode::VmDirect, Transport::NetperfTcp, 1_000);
        let (ov_t, _, _) = run_throughput(NetMode::Overlay, Transport::NetperfTcp, 1_000);
        let (vm_u, _, _) = run_throughput(NetMode::VmDirect, Transport::NetperfUdp, 1_000);
        let (ov_u, _, _) = run_throughput(NetMode::Overlay, Transport::NetperfUdp, 1_000);
        let tcp_ratio = ov_t / vm_t;
        let udp_ratio = ov_u / vm_u;
        assert!(
            udp_ratio > tcp_ratio,
            "UDP ratio {udp_ratio:.3} should exceed TCP ratio {tcp_ratio:.3} (paper: 22.9% vs 16.8%)"
        );
    }

    #[test]
    fn vm_mode_concentrates_everything_on_cpu0() {
        let (_, _, conc) = run_throughput(NetMode::VmDirect, Transport::NetperfTcp, 500);
        assert!(conc > 0.99, "VM-mode concentration {conc}");
    }

    #[test]
    fn data_path_is_much_longer_for_containers() {
        let vm = ContainerScenario::data_path(NetMode::VmDirect);
        let ov = ContainerScenario::data_path(NetMode::Overlay);
        assert!(ov.len() >= vm.len() * 2, "{} vs {}", ov.len(), vm.len());
    }

    #[test]
    fn tracer_counts_net_rx_action_per_cpu() {
        let cfg = ContainerConfig {
            mode: NetMode::Overlay,
            transport: Transport::NetperfUdp,
            count: 300,
            ..Default::default()
        };
        let mut s = ContainerScenario::build(&cfg);
        let pkg = s.control_package();
        let mut tracer = s.make_tracer();
        tracer.deploy(&mut s.world, &pkg).unwrap();
        s.run(&cfg);
        let counts = tracer.counter_per_cpu("net_rx_action").unwrap();
        let total: u64 = counts.iter().sum();
        let engine_total: u64 = s.vm2_net_rx_per_cpu().iter().sum();
        assert_eq!(
            total, engine_total,
            "eBPF per-CPU counters must agree with ground truth: {counts:?}"
        );
        assert!(counts[0] > 0, "CPU0 handles the IRQ-affine softirqs");
    }
}
