//! Trace-driven link emulation: adversarial network conditions replayed
//! against the prebuilt testbeds, with a `vnet-live` engine attached and
//! its alerts scored against the generators' ground truth.
//!
//! Each [`AdversarialProfile`] builds one of the `vnet-sim` condition
//! generators (LEO handover steps, congested-WAN rate dips, flapping
//! links, asymmetric-route skew, Gilbert–Elliott burst loss), attaches
//! it to the scenario's physical links, runs the workload with the
//! streaming anomaly detector subscribed to the collector, and matches
//! every emitted [`Alert`] against the exact condition-active windows
//! the generator recorded. The result is a per-condition
//! precision/recall score — the detector-validation number the
//! `detector-validation` CI step and `vnt emulate` report.
//!
//! ## Matching rule
//!
//! An alert *matches* an episode when its event time falls inside the
//! episode widened by a slack of one window width plus the pair timeout
//! ([`match_slack`](AdversarialProfile::match_slack)) — windowed alerts
//! carry the *window start* as their timestamp, latency samples land in
//! the window of their downstream record, and loss is only final once
//! the pairing timeout has elapsed, so a detection of a real condition
//! can be stamped up to `window + pair_timeout` away from the episode
//! boundary. The congested-WAN condition additionally gets a longer
//! trailing slack: a rate dip leaves a serialization backlog that keeps
//! the receiver's throughput collapsed while the queue drains, and
//! alerts raised during that drain are still true detections of the dip.
//!
//! Only alerts of the condition's *characteristic kind on its
//! characteristic stream* (see
//! [`is_expected`](AdversarialProfile::is_expected)) are scored;
//! everything else the detector raised is reported separately in
//! [`EmulationReport::other_alerts`]. Precision is the fraction of
//! expected-kind alerts that match an episode; recall is the fraction of
//! episodes with at least one matching alert.

use std::cell::RefCell;
use std::rc::Rc;
use std::str::FromStr;

use vnet_live::{Alert, AlertKind, LiveConfig, LiveEngine, WindowSpec};
use vnet_sim::profile::{
    asymmetric_skew, congested_wan, flapping, gilbert_elliott, leo_handover, Episode,
};
use vnet_sim::time::{SimDuration, SimTime};
use vnet_workloads::datacenter_rack::{RackConfig, RackScenario};
use vnettracer::config::{FilterRule, GlobalConfig, Proto};
use vnettracer::modules::{ModuleRegistry, ModuleScope, TapSpec};
use vnettracer::{IngestSubscriber, VNetTracer};

use crate::two_host::{
    TwoHostConfig, TwoHostScenario, SOCKPERF_CLIENT_PORT, SOCKPERF_SERVER_PORT, VM1_IP, VM2_IP,
};

/// Tumbling analysis window width.
pub const WINDOW: SimDuration = SimDuration::from_millis(5);
/// Collection interval: how often the simulated world is stepped and
/// the collector drained into the engine.
pub const COLLECT: SimDuration = SimDuration::from_millis(1);
/// Pairing timeout for the latency/loss operators.
pub const PAIR_TIMEOUT: SimDuration = SimDuration::from_millis(20);
/// Clean traffic before the first episode, so every EWMA baseline is
/// warmed up (3 windows) with margin before conditions start.
pub const WARMUP: SimDuration = SimDuration::from_millis(50);
/// Episode spacing for the periodic conditions.
pub const PERIOD: SimDuration = SimDuration::from_millis(80);
/// Episode length for the delay-step conditions.
pub const DWELL: SimDuration = SimDuration::from_millis(20);
/// Outage length for the flapping-link condition.
pub const FLAP_DOWNTIME: SimDuration = SimDuration::from_millis(10);
/// Dip length for the congested-WAN condition (kept short so the
/// serialization backlog drains well before the next episode).
pub const CW_DWELL: SimDuration = SimDuration::from_millis(5);
/// Elevated one-way delay during LEO-handover / asymmetric-skew
/// episodes (~10x the two-host wire's 30us base).
pub const STEP_DELAY: SimDuration = SimDuration::from_micros(300);
/// Congested-WAN healthy link rate.
pub const CW_BASE_BPS: u64 = 100_000_000;
/// Congested-WAN dipped link rate.
pub const CW_DIP_BPS: u64 = 1_000_000;
/// Gilbert–Elliott loss rate in the bad state.
pub const GE_LOSS_BAD: f64 = 0.4;
/// Gilbert–Elliott per-step probability of entering the bad state.
pub const GE_P_ENTER: f64 = 0.08;
/// Gilbert–Elliott per-step probability of leaving the bad state.
pub const GE_P_EXIT: f64 = 0.5;
/// Gilbert–Elliott chain step (one analysis window, so bad runs align
/// with whole windows).
pub const GE_STEP: SimDuration = SimDuration::from_millis(5);

/// The library of adversarial link conditions the harness can replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarialProfile {
    /// LEO-handover delay steps on both directions of the link.
    LeoHandover,
    /// Congested-WAN rate dips on the forward direction.
    CongestedWan,
    /// Periodic administrative up/down flaps of the receiving NIC.
    Flapping,
    /// Delay skew on the *reverse* direction only; the forward path
    /// must stay clean.
    AsymmetricSkew,
    /// Bursty Gilbert–Elliott loss on the forward direction.
    GilbertElliott,
}

impl AdversarialProfile {
    /// All five conditions, in reporting order.
    pub fn all() -> [AdversarialProfile; 5] {
        [
            AdversarialProfile::LeoHandover,
            AdversarialProfile::CongestedWan,
            AdversarialProfile::Flapping,
            AdversarialProfile::AsymmetricSkew,
            AdversarialProfile::GilbertElliott,
        ]
    }

    /// Stable CLI/report name.
    pub fn name(&self) -> &'static str {
        match self {
            AdversarialProfile::LeoHandover => "leo-handover",
            AdversarialProfile::CongestedWan => "congested-wan",
            AdversarialProfile::Flapping => "flapping",
            AdversarialProfile::AsymmetricSkew => "asymmetric-skew",
            AdversarialProfile::GilbertElliott => "gilbert-elliott",
        }
    }

    /// The matching tolerance `(before, after)` around each episode.
    ///
    /// Both sides get `WINDOW + PAIR_TIMEOUT` (see the module docs); the
    /// congested-WAN condition's trailing slack is extended to cover the
    /// serialization-backlog drain after each dip.
    pub fn match_slack(&self) -> (SimDuration, SimDuration) {
        let slack = WINDOW + PAIR_TIMEOUT;
        match self {
            AdversarialProfile::CongestedWan => (slack, SimDuration::from_millis(45)),
            _ => (slack, slack),
        }
    }

    /// Whether `kind` is this condition's characteristic alert on the
    /// scenario's characteristic stream.
    pub fn is_expected(&self, kind: &AlertKind, labels: &StreamLabels) -> bool {
        match (self, kind) {
            (AdversarialProfile::LeoHandover, AlertKind::LatencySpike { pair, .. }) => {
                pair == &labels.forward_pair || Some(pair) == labels.reverse_pair.as_ref()
            }
            (AdversarialProfile::AsymmetricSkew, AlertKind::LatencySpike { pair, .. }) => {
                // Reverse-only skew must be caught on the reverse pair
                // (the rack variant has no reverse flow and applies the
                // skew to the downlink leg of the forward route).
                match &labels.reverse_pair {
                    Some(rev) => pair == rev,
                    None => pair == &labels.forward_pair,
                }
            }
            (
                AdversarialProfile::CongestedWan,
                AlertKind::ThroughputCollapse { tracepoint, .. },
            ) => tracepoint == &labels.throughput,
            (
                AdversarialProfile::Flapping | AdversarialProfile::GilbertElliott,
                AlertKind::LossBurst { pair, .. },
            ) => pair == &labels.forward_pair,
            _ => false,
        }
    }
}

impl FromStr for AdversarialProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AdversarialProfile::all()
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown profile `{s}` (expected one of: {})",
                    AdversarialProfile::all().map(|p| p.name()).join(", ")
                )
            })
    }
}

/// The stream names a scenario's detector operates on, used to scope
/// [`AdversarialProfile::is_expected`] to the degraded path.
#[derive(Debug, Clone)]
pub struct StreamLabels {
    /// Latency/loss pair label covering the forward (degraded) path.
    pub forward_pair: String,
    /// Latency pair label covering the reverse path, if the scenario
    /// has reply traffic.
    pub reverse_pair: Option<String>,
    /// Throughput tracepoint downstream of the degraded link.
    pub throughput: String,
}

/// Knobs for one emulated validation run.
#[derive(Debug, Clone)]
pub struct EmulationConfig {
    /// World RNG seed (also seeds the Gilbert–Elliott chain).
    pub seed: u64,
    /// Messages per sender app; the condition schedule spans
    /// `messages x 100us`.
    pub messages: u64,
    /// Worker threads for the sharded event loop.
    pub threads: usize,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            seed: 7,
            messages: 3_500,
            threads: 1,
        }
    }
}

impl EmulationConfig {
    /// The span the condition schedules cover: the workload send phase.
    pub fn condition_span(&self) -> SimDuration {
        SimDuration::from_nanos(self.messages * 100_000)
    }

    fn ge_seed(&self) -> u64 {
        // Decorrelate the loss chain from the world's own RNG streams.
        self.seed ^ 0x9E37_79B9_7F4A_7C15
    }
}

/// One emulated run, scored against ground truth.
#[derive(Debug, Clone)]
pub struct EmulationReport {
    /// The replayed condition.
    pub profile: AdversarialProfile,
    /// Exact condition-active windows from the generator.
    pub episodes: Vec<Episode>,
    /// Alerts of the condition's characteristic kind.
    pub expected_alerts: Vec<Alert>,
    /// Every other alert the detector raised (not scored).
    pub other_alerts: Vec<Alert>,
    /// Expected-kind alerts that matched an episode.
    pub matched_alerts: usize,
    /// Episodes with at least one matching alert.
    pub detected_episodes: usize,
    /// Events processed by the simulator (a determinism fingerprint).
    pub events_processed: u64,
}

impl EmulationReport {
    /// Fraction of expected-kind alerts that hit a ground-truth episode
    /// (1.0 when the detector stayed silent).
    pub fn precision(&self) -> f64 {
        if self.expected_alerts.is_empty() {
            1.0
        } else {
            self.matched_alerts as f64 / self.expected_alerts.len() as f64
        }
    }

    /// Fraction of ground-truth episodes detected.
    ///
    /// # Panics
    ///
    /// Panics if the generator produced no episodes — a run with no
    /// ground truth cannot be scored.
    pub fn recall(&self) -> f64 {
        assert!(
            !self.episodes.is_empty(),
            "cannot score recall without ground-truth episodes"
        );
        self.detected_episodes as f64 / self.episodes.len() as f64
    }
}

fn score(
    profile: AdversarialProfile,
    labels: &StreamLabels,
    episodes: Vec<Episode>,
    alerts: Vec<Alert>,
    events_processed: u64,
) -> EmulationReport {
    let (pre, post) = profile.match_slack();
    let (expected_alerts, other_alerts): (Vec<Alert>, Vec<Alert>) = alerts
        .into_iter()
        .partition(|a| profile.is_expected(&a.kind, labels));
    let in_episode = |ep: &Episode, at_ns: u64| {
        let lo = ep.start.as_nanos().saturating_sub(pre.as_nanos());
        let hi = ep.end.as_nanos().saturating_add(post.as_nanos());
        (lo..hi).contains(&at_ns)
    };
    let matched_alerts = expected_alerts
        .iter()
        .filter(|a| episodes.iter().any(|ep| in_episode(ep, a.at_ns)))
        .count();
    let detected_episodes = episodes
        .iter()
        .filter(|ep| expected_alerts.iter().any(|a| in_episode(ep, a.at_ns)))
        .count();
    EmulationReport {
        profile,
        episodes,
        expected_alerts,
        other_alerts,
        matched_alerts,
        detected_episodes,
        events_processed,
    }
}

/// Builds the live-engine config from the scope's module metrics — the
/// same declarations that drive `vnt live` — with the harness's pairing
/// timeout applied.
fn live_config(registry: &ModuleRegistry, scope: &ModuleScope) -> LiveConfig {
    let specs = registry
        .metrics("default", scope)
        .expect("builtin default profile resolves");
    let mut cfg = LiveConfig::from_metric_specs(WindowSpec::tumbling(WINDOW.as_nanos()), &specs);
    cfg.pair_timeout_ns = PAIR_TIMEOUT.as_nanos();
    cfg
}

/// Steps `world` to `total` in [`COLLECT`] slices, draining the
/// collector into the subscribed engine after each slice.
fn step_collected(world: &mut vnet_sim::world::World, tracer: &mut VNetTracer, total: SimDuration) {
    let total_ns = total.as_nanos();
    let step_ns = COLLECT.as_nanos();
    let mut t = 0u64;
    while t < total_ns {
        t = (t + step_ns).min(total_ns);
        world.run_until(SimTime::from_nanos(t));
        tracer.collect(world);
    }
}

/// The stream labels of the two-host harness.
fn two_host_labels() -> StreamLabels {
    StreamLabels {
        forward_pair: "s1_ovs_br1->s2_ovs_br1".into(),
        reverse_pair: Some("s2_ovs_br1_rev->s1_ens3".into()),
        throughput: "s2_ovs_br1".into(),
    }
}

/// The stream labels of the rack harness.
fn rack_labels() -> StreamLabels {
    StreamLabels {
        forward_pair: "emu_up->emu_down".into(),
        reverse_pair: None,
        throughput: "emu_down".into(),
    }
}

/// Runs one adversarial condition against the two-host Sockperf testbed
/// and scores the streaming detector's alerts against ground truth.
///
/// The condition degrades the physical wire between the two servers
/// (forward = server1 -> server2; the flapping condition instead flaps
/// server2's `eth0-rx`). The live engine watches the paper's four trace
/// scripts plus one extra reverse-direction tap at server2's bridge, so
/// the reply path is observable for the asymmetric-skew condition.
pub fn run_two_host(profile: AdversarialProfile, cfg: &EmulationConfig) -> EmulationReport {
    let (episodes, alerts, events) = two_host_impl(Some(profile), cfg);
    score(profile, &two_host_labels(), episodes, alerts, events)
}

/// Runs the two-host harness with *no* condition attached and returns
/// every alert the detector raised — the false-positive check: a clean
/// run at the default [`vnet_live::DetectorConfig`] must stay silent.
pub fn run_two_host_clean(cfg: &EmulationConfig) -> Vec<Alert> {
    two_host_impl(None, cfg).1
}

fn two_host_impl(
    profile: Option<AdversarialProfile>,
    cfg: &EmulationConfig,
) -> (Vec<Episode>, Vec<Alert>, u64) {
    let base_wire = SimDuration::from_micros(30);
    let span = cfg.condition_span();
    let two_host = TwoHostConfig {
        seed: cfg.seed,
        messages: cfg.messages,
        interval: SimDuration::from_micros(100),
        background_mbps: 0.0,
    };
    let mut s = TwoHostScenario::build(&two_host);
    s.world.set_parallelism(cfg.threads);

    let fwd_wire = s.world.find_device(s.server1, "eth0-tx").expect("eth0-tx");
    let rev_wire = s.world.find_device(s.server2, "eth0-tx").expect("eth0-tx");
    let victim = s.world.find_device(s.server2, "eth0-rx").expect("eth0-rx");

    let episodes = match profile {
        None => Vec::new(),
        Some(AdversarialProfile::LeoHandover) => {
            let (p, eps) = leo_handover(base_wire, STEP_DELAY, WARMUP, PERIOD, DWELL, span);
            s.world.attach_link_profile(fwd_wire, 0, p.clone());
            s.world.attach_link_profile(rev_wire, 0, p);
            eps
        }
        Some(AdversarialProfile::CongestedWan) => {
            let (p, eps) = congested_wan(
                base_wire,
                CW_BASE_BPS,
                CW_DIP_BPS,
                WARMUP,
                PERIOD,
                CW_DWELL,
                span,
            );
            s.world.attach_link_profile(fwd_wire, 0, p);
            eps
        }
        Some(AdversarialProfile::Flapping) => {
            let (schedule, eps) = flapping(WARMUP, PERIOD, FLAP_DOWNTIME, span);
            for (at, down) in schedule {
                s.world.schedule_device_down(victim, at, down);
            }
            eps
        }
        Some(AdversarialProfile::AsymmetricSkew) => {
            let (p, eps) = asymmetric_skew(base_wire, STEP_DELAY, WARMUP, PERIOD, DWELL, span);
            s.world.attach_link_profile(rev_wire, 0, p);
            eps
        }
        Some(AdversarialProfile::GilbertElliott) => {
            let (p, eps) = gilbert_elliott(
                base_wire,
                GE_LOSS_BAD,
                cfg.ge_seed(),
                GE_P_ENTER,
                GE_P_EXIT,
                GE_STEP,
                WARMUP,
                span,
            );
            s.world.attach_link_profile(fwd_wire, 0, p);
            eps
        }
    };

    // The paper's four taps plus a reverse-direction tap at server2's
    // bridge, so reply-path latency is measurable end to end.
    let req = FilterRule::udp_flow(
        (VM1_IP, SOCKPERF_CLIENT_PORT),
        (VM2_IP, SOCKPERF_SERVER_PORT),
    );
    let mut scope = s.module_scope();
    scope.packet_taps.push(TapSpec::rx(
        "s2_ovs_br1_rev",
        "server2",
        "ovs-br1",
        req.reversed(),
    ));
    scope
        .latency_pairs
        .push(("s2_ovs_br1_rev".into(), "s1_ens3".into()));
    let registry = ModuleRegistry::builtin();
    let package = registry
        .package("default", &scope, GlobalConfig::default())
        .expect("builtin default profile resolves");

    let live = live_config(&registry, &scope);
    let mut engine = LiveEngine::new(live);
    engine.register_agent("server1", None);
    engine.register_agent("server2", None);
    let engine = Rc::new(RefCell::new(engine));

    let mut tracer = s.make_tracer();
    tracer.subscribe(engine.clone() as Rc<RefCell<dyn IngestSubscriber>>);
    tracer.deploy(&mut s.world, &package).expect("deploy");

    let total = SimDuration::from_nanos(two_host.interval.as_nanos() * (cfg.messages + 2))
        + SimDuration::from_millis(50);
    step_collected(&mut s.world, &mut tracer, total);
    engine.borrow_mut().finish();
    let alerts = engine.borrow_mut().drain_alerts();
    (episodes, alerts, s.world.events_processed())
}

/// Runs one adversarial condition against a small datacenter rack.
///
/// The condition degrades host0's uplink cable to the ToR (the
/// flapping condition flaps host1's `eth0-rx`; the LEO and skew
/// conditions also/only touch the ToR -> host1 downlink). The detector
/// watches the `vm0-0 -> vm1-0` flow at the two host bridges, which
/// brackets the degraded cables.
pub fn run_rack(profile: AdversarialProfile, cfg: &EmulationConfig) -> EmulationReport {
    let (episodes, alerts, events) = rack_impl(Some(profile), cfg);
    score(profile, &rack_labels(), episodes, alerts, events)
}

/// Runs the rack harness with *no* condition attached and returns every
/// alert — the clean-rack false-positive check (seed recorded in
/// [`EmulationConfig::default`]: 7).
pub fn run_rack_clean(cfg: &EmulationConfig) -> Vec<Alert> {
    rack_impl(None, cfg).1
}

fn rack_impl(
    profile: Option<AdversarialProfile>,
    cfg: &EmulationConfig,
) -> (Vec<Episode>, Vec<Alert>, u64) {
    let tor_link = SimDuration::from_micros(5);
    let span = cfg.condition_span();
    let rack_cfg = RackConfig {
        seed: cfg.seed,
        hosts: 4,
        vms_per_host: 2,
        apps_per_vm: 2,
        flows_per_app: 8,
        packets_per_app: cfg.messages,
        send_interval: SimDuration::from_micros(100),
        payload: 128,
    };
    let mut s = RackScenario::build(&rack_cfg);
    s.world.set_parallelism(cfg.threads);

    // host0's uplink NIC: its only outgoing port (0) is the cable to the
    // ToR. The ToR's port h is its cable down to host h.
    let uplink = s
        .world
        .find_device(s.host_nodes[0], "eth0-tx")
        .expect("eth0-tx");
    let tor_sw = s.world.find_device(s.tor, "tor-sw").expect("tor-sw");
    let victim = s
        .world
        .find_device(s.host_nodes[1], "eth0-rx")
        .expect("eth0-rx");

    let episodes = match profile {
        None => Vec::new(),
        Some(AdversarialProfile::LeoHandover) => {
            let (p, eps) = leo_handover(tor_link, STEP_DELAY, WARMUP, PERIOD, DWELL, span);
            s.world.attach_link_profile(uplink, 0, p.clone());
            s.world.attach_link_profile(tor_sw, 1, p);
            eps
        }
        Some(AdversarialProfile::CongestedWan) => {
            let (p, eps) = congested_wan(
                tor_link,
                1_000_000_000,
                10_000_000,
                WARMUP,
                PERIOD,
                CW_DWELL,
                span,
            );
            s.world.attach_link_profile(uplink, 0, p);
            eps
        }
        Some(AdversarialProfile::Flapping) => {
            let (schedule, eps) = flapping(WARMUP, PERIOD, FLAP_DOWNTIME, span);
            for (at, down) in schedule {
                s.world.schedule_device_down(victim, at, down);
            }
            eps
        }
        Some(AdversarialProfile::AsymmetricSkew) => {
            // Skew only the downlink leg; the uplink keeps its base
            // profile — an asymmetric route through the fabric.
            let (p, eps) = asymmetric_skew(tor_link, STEP_DELAY, WARMUP, PERIOD, DWELL, span);
            s.world.attach_link_profile(tor_sw, 1, p);
            eps
        }
        Some(AdversarialProfile::GilbertElliott) => {
            let (p, eps) = gilbert_elliott(
                tor_link,
                GE_LOSS_BAD,
                cfg.ge_seed(),
                GE_P_ENTER,
                GE_P_EXIT,
                GE_STEP,
                WARMUP,
                span,
            );
            s.world.attach_link_profile(uplink, 0, p);
            eps
        }
    };

    // Bracket the degraded cables with taps on the vm0-0 -> vm1-0 flow:
    // at host0's bridge before VXLAN encap, at host1's bridge after
    // decap.
    let filter = FilterRule {
        ether_type: Some(0x0800),
        protocol: Some(Proto::Udp),
        src_ip: Some(RackConfig::vm_ip(0, 0)),
        dst_ip: Some(RackConfig::vm_ip(1, 0)),
        ..FilterRule::any()
    };
    let scope = ModuleScope {
        packet_taps: vec![
            TapSpec::rx("emu_up", "host0", "ovs-br", filter),
            TapSpec::rx("emu_down", "host1", "ovs-br", filter),
        ],
        latency_pairs: vec![("emu_up".into(), "emu_down".into())],
        throughput_tables: vec!["emu_down".into()],
        ..Default::default()
    };
    let registry = ModuleRegistry::builtin();
    let package = registry
        .package("default", &scope, GlobalConfig::default())
        .expect("builtin default profile resolves");

    let live = live_config(&registry, &scope);
    let mut engine = LiveEngine::new(live);
    engine.register_agent("host0", None);
    engine.register_agent("host1", None);
    let engine = Rc::new(RefCell::new(engine));

    let mut tracer = VNetTracer::new();
    tracer.add_agent(vnettracer::Agent::new(s.host_nodes[0], "host0", 16));
    tracer.add_agent(vnettracer::Agent::new(s.host_nodes[1], "host1", 16));
    tracer.subscribe(engine.clone() as Rc<RefCell<dyn IngestSubscriber>>);
    tracer.deploy(&mut s.world, &package).expect("deploy");

    let total =
        SimDuration::from_nanos(rack_cfg.send_interval.as_nanos() * (rack_cfg.packets_per_app + 2))
            + SimDuration::from_millis(50);
    step_collected(&mut s.world, &mut tracer, total);
    engine.borrow_mut().finish();
    let alerts = engine.borrow_mut().drain_alerts();

    (episodes, alerts, s.world.events_processed())
}
