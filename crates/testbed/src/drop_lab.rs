//! The drop lab: a single host engineered so that every typed drop cause
//! fires a known number of times, plus an OVS fabric bridge for flow-table
//! tracing — the ground-truth scenario behind the `skb-drop` and
//! `ovs-flow` modules.
//!
//! Six parallel lanes share one node, each a source device feeding a lane
//! device built to exercise exactly one behaviour:
//!
//! * **queue-full** — a slow lane (200us service) with a 2-packet queue,
//!   flooded faster than it drains;
//! * **policed** — an ingress policer whose burst is smaller than one
//!   frame, so nothing is ever admitted;
//! * **device-down** — the lane NIC is administratively down from t=0;
//! * **no-route** — a bridge with an empty forwarding table;
//! * **link-loss** — a wire carrying a `loss_rate = 1.0` link profile;
//! * **ovs** — an [`ServiceModel::OvsFabric`] bridge that switches its
//!   lane cleanly, firing `ovs_flow_tbl_lookup`/`ovs_dp_upcall` hooks.
//!
//! The per-device [`vnet_sim::device::DeviceCounters`] are the ground
//! truth: the scenario-pack test asserts the `skb-drop` breakdown from
//! the trace database matches them *exactly*.

use std::net::{Ipv4Addr, SocketAddrV4};

use vnet_sim::device::{DeviceConfig, Forwarding, PolicerConfig, ServiceModel};
use vnet_sim::node::NodeClock;
use vnet_sim::packet::FlowKey;
use vnet_sim::profile::{LinkProfile, LinkSegment};
use vnet_sim::time::{SimDuration, SimTime};
use vnet_sim::world::World;
use vnet_sim::{DeviceId, NodeId};
use vnet_workloads::stats::ThroughputRecorder;
use vnet_workloads::{IperfClient, IperfServer};
use vnettracer::config::{ControlPackage, FilterRule, GlobalConfig};
use vnettracer::modules::{ModuleRegistry, ModuleScope, OvsTap, TapSpec};
use vnettracer::{Agent, VNetTracer};

/// The lab's sink address; every lane sends to it on its own port.
pub const SINK_IP: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 9);
/// UDP payload bytes per injected packet (1600 bits on the policer).
pub const PKT_SIZE: usize = 200;
/// The drop table the `skb-drop` module fills on this testbed.
pub const DROP_TABLE: &str = "lab_drops";
/// Table prefix of the `ovs-flow` module on this testbed.
pub const OVS_PREFIX: &str = "lab_ovs";

/// Knobs for one lab run.
#[derive(Debug, Clone)]
pub struct DropLabConfig {
    /// World RNG seed.
    pub seed: u64,
    /// Packets injected into each lane.
    pub packets_per_lane: u64,
    /// Injection interval per lane.
    pub interval: SimDuration,
}

impl Default for DropLabConfig {
    fn default() -> Self {
        DropLabConfig {
            seed: 11,
            packets_per_lane: 40,
            interval: SimDuration::from_micros(20),
        }
    }
}

/// The built lab.
#[derive(Debug)]
pub struct DropLab {
    /// The simulated world.
    pub world: World,
    /// The single lab host.
    pub node: NodeId,
    /// Every device in the lab, for ground-truth counter sums.
    pub devices: Vec<DeviceId>,
    cfg: DropLabConfig,
}

impl DropLab {
    /// Builds the six lanes.
    pub fn build(cfg: &DropLabConfig) -> Self {
        let mut w = World::new(cfg.seed);
        let node = w.add_node("labhost", 8, NodeClock::perfect());
        let fast = || ServiceModel::Fixed(SimDuration::from_nanos(100));

        let sink = w.add_device(
            DeviceConfig::new("sink", node)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .forwarding(Forwarding::Deliver),
        );
        let sink_tx = w.add_device(DeviceConfig::new("sink-tx", node).service(fast()));

        // queue-full: slower than the flood, 2-deep queue.
        let qf_src = w.add_device(DeviceConfig::new("qf-src", node).service(fast()));
        let qf = w.add_device(
            DeviceConfig::new("qf", node)
                .service(ServiceModel::Fixed(SimDuration::from_micros(200)))
                .queue_capacity(2),
        );
        w.connect(qf_src, qf, SimDuration::ZERO);
        w.connect(qf, sink, SimDuration::ZERO);

        // policed: burst (1 kb = 1000 bits) below one 200-byte frame.
        let po_src = w.add_device(DeviceConfig::new("po-src", node).service(fast()));
        let po = w.add_device(DeviceConfig::new("po", node).service(fast()).policer(
            PolicerConfig {
                rate_kbps: 1,
                burst_kb: 1,
            },
        ));
        w.connect(po_src, po, SimDuration::ZERO);
        w.connect(po, sink, SimDuration::ZERO);

        // device-down from t=0.
        let dn_src = w.add_device(DeviceConfig::new("dn-src", node).service(fast()));
        let dn = w.add_device(DeviceConfig::new("dn", node).service(fast()));
        w.connect(dn_src, dn, SimDuration::ZERO);
        w.connect(dn, sink, SimDuration::ZERO);
        w.schedule_device_down(dn, SimTime::ZERO, true);

        // no-route: an empty forwarding table, no default.
        let nr_src = w.add_device(DeviceConfig::new("nr-src", node).service(fast()));
        let nr = w.add_device(DeviceConfig::new("nr", node).service(fast()).forwarding(
            Forwarding::ByDstIp {
                routes: std::collections::HashMap::new(),
                default: None,
            },
        ));
        w.connect(nr_src, nr, SimDuration::ZERO);
        w.connect(nr, sink, SimDuration::ZERO);

        // link-loss: a certain-loss profile on the lane's wire, so every
        // frame dies on the link without perturbing the RNG stream.
        let ll_src = w.add_device(DeviceConfig::new("ll-src", node).service(fast()));
        let ll = w.add_device(DeviceConfig::new("ll", node).service(fast()));
        w.connect(ll_src, ll, SimDuration::ZERO);
        let ll_port = w.connect(ll, sink, SimDuration::ZERO);
        let lossy = LinkProfile::new(vec![LinkSegment {
            start: SimTime::ZERO,
            delay: SimDuration::from_micros(1),
            loss_rate: 1.0,
            rate_bps: None,
        }])
        .expect("valid profile");
        w.attach_link_profile(ll, ll_port, lossy);

        // ovs: a clean fabric lane with a megaflow cache.
        let ovs_src = w.add_device(DeviceConfig::new("ovs-src", node).service(fast()));
        let ovs_br = w.add_device(DeviceConfig::new("ovs-br", node).service(
            ServiceModel::OvsFabric {
                base: SimDuration::from_micros(1),
                per_extra_port: SimDuration::from_nanos(500),
                port_active_window: SimDuration::from_micros(50),
            },
        ));
        w.connect(ovs_src, ovs_br, SimDuration::ZERO);
        w.connect(ovs_br, sink, SimDuration::ZERO);

        let devices = vec![
            sink, sink_tx, qf_src, qf, po_src, po, dn_src, dn, nr_src, nr, ll_src, ll, ovs_src,
            ovs_br,
        ];

        // One injector per lane, one shared sink server.
        let tput = ThroughputRecorder::shared();
        let server = w.add_app(node, sink_tx, Box::new(IperfServer::new(tput)));
        let lanes = [
            (qf_src, 7001u16),
            (po_src, 7002),
            (dn_src, 7003),
            (nr_src, 7004),
            (ll_src, 7005),
            (ovs_src, 7006),
        ];
        for (i, (src, port)) in lanes.into_iter().enumerate() {
            let flow = FlowKey::udp(
                SocketAddrV4::new(Ipv4Addr::new(10, 1, 0, 1 + i as u8), 30_000 + port),
                SocketAddrV4::new(SINK_IP, port),
            );
            let client = w.add_app(
                node,
                src,
                Box::new(IperfClient::new(
                    flow,
                    PKT_SIZE,
                    cfg.interval,
                    cfg.packets_per_lane,
                )),
            );
            let _ = client;
            w.bind_app(sink, port, server);
        }

        DropLab {
            world: w,
            node,
            devices,
            cfg: cfg.clone(),
        }
    }

    /// Where the module profiles attach: the `skb-drop` tap and the
    /// `ovs-flow` tap, both unfiltered — this lab has no packet-path
    /// chain of its own.
    pub fn module_scope(&self) -> ModuleScope {
        ModuleScope {
            drop_taps: vec![TapSpec::drops(DROP_TABLE, "labhost", FilterRule::any())],
            ovs_taps: vec![OvsTap {
                prefix: OVS_PREFIX.into(),
                node: "labhost".into(),
                filter: FilterRule::any(),
            }],
            ..Default::default()
        }
    }

    /// Packages a named profile (`drops`, `ovs`, `full`, ...) over the
    /// lab's scope.
    ///
    /// # Panics
    ///
    /// Panics if `profile` is not defined in the builtin registry.
    pub fn control_package(&self, profile: &str) -> ControlPackage {
        ModuleRegistry::builtin()
            .package(profile, &self.module_scope(), GlobalConfig::default())
            .expect("builtin profile resolves")
    }

    /// A tracer with an agent on the lab host.
    pub fn make_tracer(&self) -> VNetTracer {
        self.make_tracer_with_db(vnet_tsdb::TraceDb::new())
    }

    /// Like [`DropLab::make_tracer`] with a caller-provided trace
    /// database (e.g. a disk-backed one).
    pub fn make_tracer_with_db(&self, db: vnet_tsdb::TraceDb) -> VNetTracer {
        let mut tracer = VNetTracer::with_db(db);
        tracer.add_agent(Agent::new(self.node, "labhost", 8));
        tracer
    }

    /// Runs the injection phase plus the slow queue's drain time.
    pub fn run(&mut self) {
        let send =
            SimDuration::from_nanos(self.cfg.interval.as_nanos() * (self.cfg.packets_per_lane + 2));
        self.world.run_for(send + SimDuration::from_millis(15));
    }

    /// The per-reason drop ground truth from the device counters, summed
    /// across every device and sorted by reason name — the exact shape
    /// [`vnettracer::metrics::drop_breakdown`] reports, so the two can be
    /// compared with `assert_eq!`. Reasons with zero drops are omitted.
    pub fn ground_truth(&self) -> Vec<(String, u64)> {
        let mut sums = [0u64; 5];
        for &d in &self.devices {
            let c = self.world.device_counters(d);
            sums[0] += c.dropped_down;
            sums[1] += c.dropped_link;
            sums[2] += c.dropped_no_route;
            sums[3] += c.dropped_policed;
            sums[4] += c.dropped_queue_full;
        }
        // Alphabetical by reason name, matching the breakdown's BTreeMap.
        let names = [
            "device-down",
            "link-loss",
            "no-route",
            "policed",
            "queue-full",
        ];
        names
            .into_iter()
            .zip(sums)
            .filter(|&(_, n)| n > 0)
            .map(|(name, n)| (name.to_owned(), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_engineered_cause_fires() {
        let mut lab = DropLab::build(&DropLabConfig::default());
        lab.run();
        let truth = lab.ground_truth();
        assert_eq!(truth.len(), 5, "all five causes must drop: {truth:?}");
        for (reason, n) in &truth {
            assert!(*n > 0, "{reason} must have drops");
        }
        // device-down, no-route and link-loss lanes lose everything.
        let count = |name: &str| {
            truth
                .iter()
                .find(|(r, _)| r == name)
                .map(|&(_, n)| n)
                .unwrap()
        };
        assert_eq!(count("device-down"), 40);
        assert_eq!(count("no-route"), 40);
        assert_eq!(count("link-loss"), 40);
        assert_eq!(count("policed"), 40);
    }

    #[test]
    fn untraced_lab_is_deterministic() {
        let run = || {
            let mut lab = DropLab::build(&DropLabConfig::default());
            lab.run();
            (lab.ground_truth(), lab.world.events_processed())
        };
        assert_eq!(run(), run());
    }
}
