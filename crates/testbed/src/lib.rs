//! # vnet-testbed — prebuilt evaluation scenarios
//!
//! One module per experiment of the paper's §IV, each assembling the
//! topology, workloads and trace-script packages so that examples,
//! integration tests and the benchmark harness drive identical setups:
//!
//! * [`two_host`] — Fig. 7(a): Sockperf between two KVM VMs on two hosts,
//!   with and without vNetTracer.
//! * [`netperf_xen`] — Fig. 7(b): Netperf TCP into a Xen VM; vNetTracer
//!   vs SystemTap at `tcp_recvmsg`, 1 GbE and 10 GbE.
//! * [`ovs`] — Figs. 8–9: Sockperf + iPerf congestion through Open
//!   vSwitch; latency decomposition and ingress rate limiting.
//! * [`xen`] — Figs. 10–11: the credit2 rate-limit tail-latency problem
//!   under CPU consolidation, Sockperf and Data Caching.
//! * [`container`] — Figs. 12–13: VM versus container-overlay (VXLAN)
//!   networking; softirq rates, distribution and data paths.
//! * [`rack`] — the `datacenter_rack` scale scenario with a tracing
//!   agent on every node, driving the sharded event loop.
//! * [`emulate`] — trace-driven adversarial link conditions (LEO
//!   handover, congested WAN, flapping, asymmetric skew, bursty loss)
//!   replayed against the two-host and rack testbeds, with the
//!   `vnet-live` anomaly detector scored against ground truth.
//! * [`drop_lab`] — engineered drop lanes (one per typed
//!   [`vnet_sim::device::DropReason`]) plus an OVS fabric bridge: the
//!   ground-truth scenario for the `skb-drop` and `ovs-flow` modules.
//! * [`memcached_chain`] — client → proxy → backend memcached tiers with
//!   the in-band trace ID carried across the proxy hop: the
//!   `request-trace` module's cross-tier decomposition scenario.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod container;
pub mod drop_lab;
pub mod emulate;
pub mod memcached_chain;
pub mod netperf_xen;
pub mod ovs;
pub mod rack;
pub mod two_host;
pub mod xen;

use std::collections::HashMap;
use std::net::Ipv4Addr;

use vnet_sim::device::Forwarding;
use vnet_sim::world::World;
use vnet_sim::DeviceId;

/// Installs destination-IP routes on a switch/bridge device whose output
/// ports were wired with [`World::connect`].
pub fn route(world: &mut World, dev: DeviceId, routes: &[(Ipv4Addr, usize)]) {
    let map: HashMap<Ipv4Addr, usize> = routes.iter().copied().collect();
    world.set_forwarding(
        dev,
        Forwarding::ByDstIp {
            routes: map,
            default: None,
        },
    );
}
