//! The request-tracing chain: client → proxy → backend memcached tiers
//! with Nahida-style in-band context propagation.
//!
//! The client's TX stack injects the 4-byte trace-ID trailer
//! ([`vnet_sim::device::TraceIdRole::Inject`]); the proxy tier forwards
//! the request *payload verbatim* — trailer included — so the same ID is
//! observable at every tap along the chain even though the proxy mints a
//! brand-new packet for the upstream hop. The `request-trace` module taps
//! the chain at four points (client egress, proxy ingress, proxy egress,
//! backend ingress) and the per-request segment latencies joined by that
//! ID decompose the end-to-end request latency across tiers — the
//! cross-tier decomposition the scenario-pack CI step asserts sums
//! exactly to the end-to-end figure.

use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::{Arc, Mutex};

use vnet_sim::device::{DeviceConfig, Forwarding, ServiceModel, TraceIdRole};
use vnet_sim::node::NodeClock;
use vnet_sim::packet::FlowKey;
use vnet_sim::time::SimDuration;
use vnet_sim::world::World;
use vnet_sim::NodeId;
use vnet_workloads::stats::LatencyRecorder;
use vnet_workloads::{DataCachingClient, DataCachingServer, MemcachedProxy};
use vnettracer::config::{ControlPackage, FilterRule, GlobalConfig};
use vnettracer::modules::{ModuleRegistry, ModuleScope, TapSpec};
use vnettracer::{Agent, VNetTracer};

use crate::route;

/// Client tier address.
pub const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 1);
/// Proxy tier address.
pub const PROXY_IP: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 2);
/// Backend tier address.
pub const BACKEND_IP: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 3);
/// Client UDP source port.
pub const CLIENT_PORT: u16 = 41000;
/// Proxy's client-facing memcached port.
pub const PROXY_PORT: u16 = 11212;
/// Proxy's upstream source port.
pub const UPSTREAM_PORT: u16 = 42000;
/// Backend memcached port.
pub const BACKEND_PORT: u16 = 11211;

/// Knobs for one chain run.
#[derive(Debug, Clone)]
pub struct ChainConfig {
    /// World RNG seed.
    pub seed: u64,
    /// Requests the client issues.
    pub requests: u64,
    /// Client request rate (requests per second).
    pub rps: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            seed: 23,
            requests: 50,
            rps: 5000,
        }
    }
}

/// The built chain.
#[derive(Debug)]
pub struct MemcachedChain {
    /// The simulated world.
    pub world: World,
    /// Client tier node.
    pub client: NodeId,
    /// Proxy tier node.
    pub proxy: NodeId,
    /// Backend tier node.
    pub backend: NodeId,
    /// Client-observed response latencies.
    pub latency: Arc<Mutex<LatencyRecorder>>,
    cfg: ChainConfig,
}

impl MemcachedChain {
    /// Builds the three tiers.
    pub fn build(cfg: &ChainConfig) -> Self {
        let mut w = World::new(cfg.seed);
        let client = w.add_node("client", 4, NodeClock::perfect());
        let proxy = w.add_node("proxy", 8, NodeClock::perfect());
        let backend = w.add_node("backend", 8, NodeClock::perfect());

        // Client: the TX stack injects the in-band trace ID.
        let c_tx = w.add_device(
            DeviceConfig::new("c-tx", client)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500)))
                .trace_id(TraceIdRole::Inject),
        );
        let c_rx = w.add_device(
            DeviceConfig::new("c-rx", client)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .forwarding(Forwarding::Deliver),
        );

        // Proxy: must neither strip nor re-inject, so the client's ID
        // survives the tier boundary inside the forwarded payload.
        let p_rx = w.add_device(
            DeviceConfig::new("p-rx", proxy)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .forwarding(Forwarding::Deliver),
        );
        let p_tx = w.add_device(
            DeviceConfig::new("p-tx", proxy)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500))),
        );

        // Backend.
        let b_rx = w.add_device(
            DeviceConfig::new("b-rx", backend)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .forwarding(Forwarding::Deliver),
        );
        let b_tx = w.add_device(
            DeviceConfig::new("b-tx", backend)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500))),
        );

        let hop = SimDuration::from_micros(20);
        w.connect(c_tx, p_rx, hop);
        let p_up = w.connect(p_tx, b_rx, hop);
        let p_down = w.connect(p_tx, c_rx, hop);
        route(&mut w, p_tx, &[(BACKEND_IP, p_up), (CLIENT_IP, p_down)]);
        w.connect(b_tx, p_rx, hop);

        let client_flow = FlowKey::udp(
            SocketAddrV4::new(CLIENT_IP, CLIENT_PORT),
            SocketAddrV4::new(PROXY_IP, PROXY_PORT),
        );
        let upstream = FlowKey::udp(
            SocketAddrV4::new(PROXY_IP, UPSTREAM_PORT),
            SocketAddrV4::new(BACKEND_IP, BACKEND_PORT),
        );

        let latency = LatencyRecorder::shared();
        let client_app = w.add_app(
            client,
            c_tx,
            Box::new(DataCachingClient::new(
                client_flow,
                cfg.rps,
                cfg.requests,
                Arc::clone(&latency),
            )),
        );
        let proxy_app = w.add_app(proxy, p_tx, Box::new(MemcachedProxy::new(upstream)));
        let server_app = w.add_app(backend, b_tx, Box::new(DataCachingServer::new()));
        // Requests from the client and responses from the backend both
        // land on the proxy's RX stack, on different ports.
        w.bind_app(p_rx, PROXY_PORT, proxy_app);
        w.bind_app(p_rx, UPSTREAM_PORT, proxy_app);
        w.bind_app(b_rx, BACKEND_PORT, server_app);
        w.bind_app(c_rx, CLIENT_PORT, client_app);

        MemcachedChain {
            world: w,
            client,
            proxy,
            backend,
            latency,
            cfg: cfg.clone(),
        }
    }

    /// Where the `request-trace` module taps the chain, in path order:
    /// client egress, proxy ingress, proxy egress, backend ingress. The
    /// first two watch the client → proxy flow, the last two the
    /// proxy → backend flow; the in-band ID joins them.
    pub fn module_scope(&self) -> ModuleScope {
        let req1 = FilterRule::udp_flow((CLIENT_IP, CLIENT_PORT), (PROXY_IP, PROXY_PORT));
        let req2 = FilterRule::udp_flow((PROXY_IP, UPSTREAM_PORT), (BACKEND_IP, BACKEND_PORT));
        ModuleScope {
            request_taps: vec![
                TapSpec::tx("req_client", "client", "c-tx", req1),
                TapSpec::rx("req_proxy_in", "proxy", "p-rx", req1),
                TapSpec::tx("req_proxy_out", "proxy", "p-tx", req2),
                TapSpec::rx("req_backend", "backend", "b-rx", req2),
            ],
            ..Default::default()
        }
    }

    /// The chain's tap tables in path order, for
    /// [`vnettracer::metrics::decompose`] and
    /// [`vnettracer::metrics::per_packet_segments`].
    pub fn decomposition_chain() -> [&'static str; 4] {
        ["req_client", "req_proxy_in", "req_proxy_out", "req_backend"]
    }

    /// The `requests` profile packaged over this chain's scope.
    pub fn control_package(&self) -> ControlPackage {
        ModuleRegistry::builtin()
            .package("requests", &self.module_scope(), GlobalConfig::default())
            .expect("builtin requests profile resolves")
    }

    /// A tracer with an agent on each tier.
    pub fn make_tracer(&self) -> VNetTracer {
        self.make_tracer_with_db(vnet_tsdb::TraceDb::new())
    }

    /// Like [`MemcachedChain::make_tracer`] with a caller-provided trace
    /// database (e.g. a disk-backed one).
    pub fn make_tracer_with_db(&self, db: vnet_tsdb::TraceDb) -> VNetTracer {
        let mut tracer = VNetTracer::with_db(db);
        tracer.add_agent(Agent::new(self.client, "client", 4));
        tracer.add_agent(Agent::new(self.proxy, "proxy", 8));
        tracer.add_agent(Agent::new(self.backend, "backend", 8));
        tracer
    }

    /// Runs the request phase plus drain margin.
    pub fn run(&mut self) {
        let span =
            SimDuration::from_nanos((1_000_000_000 / self.cfg.rps) * (self.cfg.requests + 1));
        self.world.run_for(span + SimDuration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_completes_through_the_proxy() {
        let cfg = ChainConfig::default();
        let mut chain = MemcachedChain::build(&cfg);
        chain.run();
        let s = chain.latency.lock().unwrap().summary().unwrap();
        assert_eq!(
            s.count, cfg.requests as usize,
            "every request gets a response"
        );
        // Two 20us hops out, two back, plus device services: RTT > 80us.
        assert!(s.p50_ns > 80_000, "median RTT {}ns", s.p50_ns);
    }

    #[test]
    fn traced_chain_observes_all_requests_at_all_taps() {
        let cfg = ChainConfig::default();
        let mut chain = MemcachedChain::build(&cfg);
        let pkg = chain.control_package();
        let mut tracer = chain.make_tracer();
        tracer.deploy(&mut chain.world, &pkg).unwrap();
        chain.run();
        tracer.collect(&chain.world);
        for table in MemcachedChain::decomposition_chain() {
            let t = tracer.db().table(table).unwrap_or_else(|| {
                panic!("table {table} must exist");
            });
            assert_eq!(t.len(), cfg.requests as usize, "table {table}");
        }
    }
}
