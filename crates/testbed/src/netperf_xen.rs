//! The Fig. 7(b) testbed: Netperf TCP into a Xen VM, tracing
//! `tcp_recvmsg` with vNetTracer or SystemTap.
//!
//! "We built a VM which had one vCPU and 4GB memory on Xen and executed
//! the Netperf server inside the VM. A Netperf client was sending TCP
//! packets on another physical server. We wrote a SystemTap script
//! attached at tcp_recvmsg … In comparison, we used vNetTracer to attach
//! the same kernel function" (§IV-B). The paper measures ~10% throughput
//! loss under SystemTap on 1 GbE and 26.5% on 10 GbE, while vNetTracer's
//! impact is marginal.
//!
//! Calibration: the VM's receive stack costs 10 µs/segment. On 1 GbE the
//! wire (12 µs/segment) is the bottleneck; on 10 GbE the stack is. Any
//! per-packet probe cost at `tcp_recvmsg` adds to the stack service time,
//! so a ~3.6 µs SystemTap handler pushes the stack past the wire on 1 GbE
//! (≈10% loss) and inflates the already-binding stack on 10 GbE (≈26%).

use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::{Arc, Mutex};

use vnet_baselines::SystemTapProbe;
use vnet_sim::device::{DeviceConfig, Forwarding, KernelFunctions, ServiceModel};
use vnet_sim::node::NodeClock;
use vnet_sim::packet::FlowKey;
use vnet_sim::probe::Hook;
use vnet_sim::time::SimDuration;
use vnet_sim::world::World;
use vnet_sim::NodeId;
use vnet_workloads::stats::ThroughputRecorder;
use vnet_workloads::{NetperfClient, NetperfServer};
use vnettracer::config::{Action, ControlPackage, FilterRule, HookSpec, Proto, TraceSpec};
use vnettracer::{Agent, VNetTracer};

/// Which tracer (if any) is attached at `tcp_recvmsg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracerKind {
    /// No tracing: the baseline.
    None,
    /// vNetTracer (eBPF) script.
    VNetTracer,
    /// The SystemTap cost model.
    SystemTap,
}

/// Configuration for the Netperf/Xen scenario.
#[derive(Debug, Clone)]
pub struct NetperfXenConfig {
    /// RNG seed.
    pub seed: u64,
    /// Link rate in Gbit/s (the paper uses 1 and 10).
    pub link_gbps: f64,
    /// Segments to stream.
    pub segments: u64,
    /// Which tracer to attach.
    pub tracer: TracerKind,
}

impl Default for NetperfXenConfig {
    fn default() -> Self {
        NetperfXenConfig {
            seed: 11,
            link_gbps: 1.0,
            segments: 5_000,
            tracer: TracerKind::None,
        }
    }
}

/// The built scenario.
pub struct NetperfXenScenario {
    /// The simulated world.
    pub world: World,
    /// The client host.
    pub client_host: NodeId,
    /// The Xen host running the Netperf server VM.
    pub xen_host: NodeId,
    /// Server-side goodput recorder.
    pub throughput: Arc<Mutex<ThroughputRecorder>>,
    /// The tracer, when [`TracerKind::VNetTracer`] was requested.
    pub tracer: Option<VNetTracer>,
    /// The SystemTap probe, when [`TracerKind::SystemTap`] was requested.
    pub systemtap: Option<Arc<Mutex<SystemTapProbe>>>,
}

impl std::fmt::Debug for NetperfXenScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetperfXenScenario")
            .field("world", &self.world)
            .finish()
    }
}

/// Client address.
pub const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
/// Server VM address.
pub const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);
const NETPERF_PORT: u16 = 12865;
const CLIENT_PORT: u16 = 40000;

/// Receive-stack service time per segment inside the VM (calibrated; see
/// module docs).
pub const STACK_SERVICE: SimDuration = SimDuration::from_micros(10);

impl NetperfXenScenario {
    /// Builds the topology, workload and requested tracer.
    pub fn build(cfg: &NetperfXenConfig) -> Self {
        let mut w = World::new(cfg.seed);
        let client_host = w.add_node("client", 20, NodeClock::perfect());
        let xen_host = w.add_node("xenhost", 20, NodeClock::perfect());

        // Client: NIC serializes at the link rate.
        let c_nic = w.add_device(
            DeviceConfig::new("eth0", client_host)
                .service(ServiceModel::nic_gbps(cfg.link_gbps))
                .queue_capacity(4096),
        );
        let c_rx = w.add_device(
            DeviceConfig::new("stack-rx", client_host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(200)))
                .forwarding(Forwarding::Deliver),
        );

        // Xen host: NIC -> vif -> guest stack (tcp_recvmsg lives here).
        let x_nic = w.add_device(
            DeviceConfig::new("eth0", xen_host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .queue_capacity(4096),
        );
        let vif = w.add_device(
            DeviceConfig::new("vif1.0", xen_host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500)))
                .queue_capacity(4096),
        );
        let stack = w.add_device(
            DeviceConfig::new("tcp-stack", xen_host)
                .service(ServiceModel::Fixed(STACK_SERVICE))
                .queue_capacity(4096)
                .kernel_functions(KernelFunctions::new(&["tcp_recvmsg"], &[]))
                .forwarding(Forwarding::Deliver),
        );
        // Ack return path (fast, never the bottleneck).
        let guest_tx = w.add_device(
            DeviceConfig::new("guest-tx", xen_host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .queue_capacity(4096),
        );

        let wire = SimDuration::from_micros(10);
        w.connect(c_nic, x_nic, wire);
        w.connect(x_nic, vif, SimDuration::ZERO);
        w.connect(vif, stack, SimDuration::ZERO);
        w.connect(guest_tx, c_rx, wire);

        // Workload.
        let flow = FlowKey::tcp(
            SocketAddrV4::new(CLIENT_IP, CLIENT_PORT),
            SocketAddrV4::new(SERVER_IP, NETPERF_PORT),
        );
        let throughput = ThroughputRecorder::shared();
        let server = w.add_app(
            xen_host,
            guest_tx,
            Box::new(NetperfServer::new(Arc::clone(&throughput))),
        );
        w.bind_app(stack, NETPERF_PORT, server);
        let client = w.add_app(
            client_host,
            c_nic,
            Box::new(NetperfClient::new(
                flow,
                vnet_workloads::netperf::DEFAULT_MSS,
                vnet_workloads::netperf::DEFAULT_WINDOW,
                cfg.segments,
            )),
        );
        w.bind_app(c_rx, CLIENT_PORT, client);

        // Tracer.
        let mut tracer = None;
        let mut systemtap = None;
        match cfg.tracer {
            TracerKind::None => {}
            TracerKind::VNetTracer => {
                let mut t = VNetTracer::new();
                t.add_agent(Agent::new(xen_host, "xenhost", 20));
                let pkg = ControlPackage::new(vec![TraceSpec {
                    name: "tcp_recvmsg".into(),
                    node: "xenhost".into(),
                    hook: HookSpec::Kprobe("tcp_recvmsg".into()),
                    filter: FilterRule {
                        protocol: Some(Proto::Tcp),
                        dst_port: Some(NETPERF_PORT),
                        ..FilterRule::any()
                    },
                    action: Action::RecordPacketInfo,
                }]);
                t.deploy(&mut w, &pkg).expect("tcp_recvmsg script deploys");
                tracer = Some(t);
            }
            TracerKind::SystemTap => {
                let probe = Arc::new(Mutex::new(SystemTapProbe::new()));
                w.attach_probe(xen_host, Hook::kprobe("tcp_recvmsg"), probe.clone());
                systemtap = Some(probe);
            }
        }

        NetperfXenScenario {
            world: w,
            client_host,
            xen_host,
            throughput,
            tracer,
            systemtap,
        }
    }

    /// Runs until the stream drains.
    pub fn run(&mut self, cfg: &NetperfXenConfig) {
        // Worst-case per segment is stack + tracer ~ 15us.
        let budget = SimDuration::from_nanos(cfg.segments * 20_000 + 10_000_000);
        self.world.run_for(budget);
    }

    /// Measured goodput in Mbit/s.
    pub fn goodput_mbps(&self) -> f64 {
        self.throughput.lock().unwrap().throughput_mbps()
    }
}

/// Runs the scenario for a tracer kind and returns goodput in Mbit/s.
pub fn run_netperf(link_gbps: f64, segments: u64, tracer: TracerKind) -> f64 {
    let cfg = NetperfXenConfig {
        link_gbps,
        segments,
        tracer,
        ..Default::default()
    };
    let mut s = NetperfXenScenario::build(&cfg);
    s.run(&cfg);
    if let Some(t) = s.tracer.as_mut() {
        t.collect(&s.world);
    }
    s.goodput_mbps()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_reaches_line_rate_on_1g() {
        let mbps = run_netperf(1.0, 2_000, TracerKind::None);
        assert!((900.0..980.0).contains(&mbps), "got {mbps}");
    }

    #[test]
    fn baseline_is_stack_bound_on_10g() {
        let mbps = run_netperf(10.0, 2_000, TracerKind::None);
        // 1448B / 10us ≈ 1158 Mbps: a 1-vCPU Xen VM cannot fill 10G.
        assert!((1050.0..1250.0).contains(&mbps), "got {mbps}");
    }

    #[test]
    fn vnettracer_loss_is_marginal() {
        let base = run_netperf(1.0, 2_000, TracerKind::None);
        let traced = run_netperf(1.0, 2_000, TracerKind::VNetTracer);
        let loss = (base - traced) / base;
        assert!(
            loss < 0.02,
            "vNetTracer 1G loss {:.1}% must be <2%",
            loss * 100.0
        );
        let base10 = run_netperf(10.0, 2_000, TracerKind::None);
        let traced10 = run_netperf(10.0, 2_000, TracerKind::VNetTracer);
        let loss10 = (base10 - traced10) / base10;
        assert!(
            loss10 < 0.03,
            "vNetTracer 10G loss {:.1}% must be small",
            loss10 * 100.0
        );
    }

    #[test]
    fn systemtap_loss_reproduces_fig7b() {
        let base = run_netperf(1.0, 2_000, TracerKind::None);
        let stap = run_netperf(1.0, 2_000, TracerKind::SystemTap);
        let loss_1g = (base - stap) / base;
        assert!(
            (0.05..0.18).contains(&loss_1g),
            "SystemTap 1G loss {:.1}% should be around 10%",
            loss_1g * 100.0
        );
        let base10 = run_netperf(10.0, 2_000, TracerKind::None);
        let stap10 = run_netperf(10.0, 2_000, TracerKind::SystemTap);
        let loss_10g = (base10 - stap10) / base10;
        assert!(
            (0.20..0.33).contains(&loss_10g),
            "SystemTap 10G loss {:.1}% should be around 26.5%",
            loss_10g * 100.0
        );
        assert!(loss_10g > loss_1g, "loss grows with link speed");
    }
}
