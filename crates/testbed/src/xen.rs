//! The Case Study II testbed (Figs. 10–11): long tail latency from the
//! Xen credit2 context-switch rate limit.
//!
//! A server VM (1 vCPU) runs the latency-sensitive workload inside a
//! container; a CPU-bound VM shares the same physical CPU. The client
//! runs on a separate physical server. Under the default credit2
//! rate limit (1000 µs), a packet arriving while the CPU-hog runs cannot
//! be delivered to the guest until the hog has used up its rate-limit
//! window — the 99.9th-percentile latency inflates ~22× (Sockperf) and
//! the scheduling delay traces out the sawtooth of Fig. 11(b). Setting
//! the rate limit to 0 restores near-baseline latency.
//!
//! The tracepoints mirror the paper's: `eth0` on the client, `xenbr0`
//! and `vif1.0` in Dom0, `eth1` in the server VM and `veth684a1d9`
//! inside the container.

use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::{Arc, Mutex};

use vnet_sim::device::{DeviceConfig, Forwarding, Gate, ServiceModel, TraceIdRole};
use vnet_sim::node::NodeClock;
use vnet_sim::packet::FlowKey;
use vnet_sim::sched::{Credit2Scheduler, CreditScheduler, HyperScheduler};
use vnet_sim::time::SimDuration;
use vnet_sim::world::World;
use vnet_sim::{CpuId, NodeId, VcpuId};
use vnet_workloads::stats::LatencyRecorder;
use vnet_workloads::{DataCachingClient, DataCachingServer, SockperfClient, SockperfServer};
use vnettracer::config::{Action, ControlPackage, FilterRule, HookSpec, TraceSpec};
use vnettracer::{Agent, VNetTracer};

use crate::route;

/// Which latency workload drives the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XenWorkload {
    /// Sockperf UDP ping-pong (Figs. 10a, 11).
    Sockperf,
    /// CloudSuite Data Caching at 5000 rps (Fig. 10b).
    DataCaching,
}

/// Which Xen scheduler generation runs the host (the paper notes the
/// rate-limit issue and its fix apply to both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Xen credit1 (BOOST priorities + rate limit).
    Credit1,
    /// Xen credit2 (pure credit order + rate limit).
    Credit2,
}

/// Scheduler contention configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consolidation {
    /// The I/O VM runs alone on its pCPU (baseline).
    Alone,
    /// A CPU-hog VM shares the pCPU, default 1000 µs rate limit.
    SharedDefaultRatelimit,
    /// A CPU-hog VM shares the pCPU, rate limit tuned to zero (the fix).
    SharedNoRatelimit,
}

/// Configuration for the Xen scenario.
#[derive(Debug, Clone)]
pub struct XenConfig {
    /// RNG seed.
    pub seed: u64,
    /// The workload.
    pub workload: XenWorkload,
    /// The contention configuration.
    pub consolidation: Consolidation,
    /// Number of requests.
    pub requests: u64,
    /// Request interval (Sockperf; Data Caching uses its 5000 rps rate).
    pub interval: SimDuration,
    /// Clock offset of the Xen host relative to the client, in ns
    /// (exercises cross-machine skew handling).
    pub xen_clock_offset_ns: i64,
    /// Overrides the scheduler rate limit in shared configurations
    /// (`None` keeps the consolidation default) — the sweep knob of the
    /// ratelimit ablation.
    pub ratelimit: Option<SimDuration>,
    /// Scheduler generation.
    pub scheduler: SchedulerKind,
}

impl Default for XenConfig {
    fn default() -> Self {
        XenConfig {
            seed: 17,
            workload: XenWorkload::Sockperf,
            consolidation: Consolidation::Alone,
            requests: 500,
            interval: SimDuration::from_micros(100),
            xen_clock_offset_ns: 0,
            ratelimit: None,
            scheduler: SchedulerKind::Credit2,
        }
    }
}

/// The built scenario.
#[derive(Debug)]
pub struct XenScenario {
    /// The simulated world.
    pub world: World,
    /// The client host.
    pub client: NodeId,
    /// The Xen host.
    pub xen: NodeId,
    /// Workload latency samples (as the application reports them).
    pub latency: Arc<Mutex<LatencyRecorder>>,
    /// The request flow (client → server).
    pub flow: FlowKey,
}

/// Client address.
pub const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 1);
/// Server (container) address.
pub const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 2);
const CLIENT_PORT: u16 = 40000;
const SERVER_PORT: u16 = 11211;

/// The I/O VM's vCPU.
pub const IO_VCPU: VcpuId = VcpuId(1);
/// The CPU-hog VM's vCPU.
pub const HOG_VCPU: VcpuId = VcpuId(2);

impl XenScenario {
    /// Builds the topology, scheduler and workload.
    pub fn build(cfg: &XenConfig) -> Self {
        let mut w = World::new(cfg.seed);
        let client = w.add_node("client", 20, NodeClock::perfect());
        let xen = w.add_node(
            "xenhost",
            20,
            NodeClock::with_offset_ns(cfg.xen_clock_offset_ns),
        );

        // Hypervisor scheduler on the Xen host.
        let mut sched: Box<dyn HyperScheduler> = match cfg.scheduler {
            SchedulerKind::Credit1 => Box::new(CreditScheduler::new()),
            SchedulerKind::Credit2 => Box::new(Credit2Scheduler::new()),
        };
        sched.add_vcpu(IO_VCPU, CpuId(0), 256, false);
        match cfg.consolidation {
            Consolidation::Alone => {}
            Consolidation::SharedDefaultRatelimit => {
                sched.add_vcpu(HOG_VCPU, CpuId(0), 256, true);
            }
            Consolidation::SharedNoRatelimit => {
                sched.add_vcpu(HOG_VCPU, CpuId(0), 256, true);
                sched.set_ratelimit(SimDuration::ZERO);
            }
        }
        if let Some(rl) = cfg.ratelimit {
            sched.set_ratelimit(rl);
        }
        w.set_scheduler(xen, sched);

        // --- client devices ---
        let c_stack_tx = w.add_device(
            DeviceConfig::new("em-c", client)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .trace_id(TraceIdRole::Inject),
        );
        let c_eth0 =
            w.add_device(DeviceConfig::new("eth0", client).service(ServiceModel::nic_gbps(1.0)));
        let c_rx = w.add_device(
            DeviceConfig::new("em-c-rx", client)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500)))
                .forwarding(Forwarding::Deliver)
                .trace_id(TraceIdRole::StripUdpTrailer),
        );

        // --- xen host devices (request path) ---
        let x_eth0 = w.add_device(
            DeviceConfig::new("eth0", xen)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300))),
        );
        let xenbr0 = w.add_device(
            DeviceConfig::new("xenbr0", xen)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500))),
        );
        let vif = w.add_device(
            DeviceConfig::new("vif1.0", xen)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(700)))
                .queue_capacity(2048),
        );
        // The guest frontend: arrival requires the I/O VM's vCPU.
        let eth1 = w.add_device(
            DeviceConfig::new("eth1", xen)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .gate(Gate::Vcpu(IO_VCPU))
                .queue_capacity(2048),
        );
        let veth = w.add_device(
            DeviceConfig::new("veth684a1d9", xen)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500)))
                .forwarding(Forwarding::Deliver)
                .trace_id(TraceIdRole::StripUdpTrailer),
        );
        // Reply path.
        let guest_tx = w.add_device(
            DeviceConfig::new("guest-tx", xen)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500)))
                .trace_id(TraceIdRole::Inject),
        );
        let x_eth0_tx =
            w.add_device(DeviceConfig::new("eth0-tx", xen).service(ServiceModel::nic_gbps(1.0)));

        // Wiring.
        let wire = SimDuration::from_micros(15);
        w.connect(c_stack_tx, c_eth0, SimDuration::ZERO);
        w.connect(c_eth0, x_eth0, wire);
        w.connect(x_eth0, xenbr0, SimDuration::ZERO);
        let p_vif = w.connect(xenbr0, vif, SimDuration::ZERO);
        let p_out = w.connect(xenbr0, x_eth0_tx, SimDuration::ZERO);
        route(&mut w, xenbr0, &[(SERVER_IP, p_vif), (CLIENT_IP, p_out)]);
        w.connect(vif, eth1, SimDuration::ZERO);
        w.connect(eth1, veth, SimDuration::ZERO);
        w.connect(guest_tx, xenbr0, SimDuration::ZERO);
        w.connect(x_eth0_tx, c_rx, wire);

        // Workload.
        let flow = FlowKey::udp(
            SocketAddrV4::new(CLIENT_IP, CLIENT_PORT),
            SocketAddrV4::new(SERVER_IP, SERVER_PORT),
        );
        let latency = LatencyRecorder::shared();
        let client_app: vnet_sim::AppId;
        match cfg.workload {
            XenWorkload::Sockperf => {
                client_app = w.add_app(
                    client,
                    c_stack_tx,
                    Box::new(SockperfClient::new(
                        flow,
                        vnet_workloads::sockperf::DEFAULT_MSG_SIZE,
                        cfg.interval,
                        cfg.requests,
                        Arc::clone(&latency),
                    )),
                );
                let server = w.add_app(xen, guest_tx, Box::new(SockperfServer::new()));
                w.bind_app(veth, SERVER_PORT, server);
            }
            XenWorkload::DataCaching => {
                client_app = w.add_app(
                    client,
                    c_stack_tx,
                    Box::new(DataCachingClient::new(
                        flow,
                        vnet_workloads::memcached::DEFAULT_RPS,
                        cfg.requests,
                        Arc::clone(&latency),
                    )),
                );
                let server = w.add_app(xen, guest_tx, Box::new(DataCachingServer::new()));
                w.bind_app(veth, SERVER_PORT, server);
            }
        }
        w.bind_app(c_rx, CLIENT_PORT, client_app);

        XenScenario {
            world: w,
            client,
            xen,
            latency,
            flow,
        }
    }

    /// The paper's five tracepoints for the Fig. 11 decomposition,
    /// filtered to the request flow.
    pub fn control_package(&self) -> ControlPackage {
        let req = FilterRule::udp_flow((CLIENT_IP, CLIENT_PORT), (SERVER_IP, SERVER_PORT));
        let spec = |name: &str, node: &str, hook: HookSpec| TraceSpec {
            name: name.into(),
            node: node.into(),
            hook,
            filter: req,
            action: Action::RecordPacketInfo,
        };
        ControlPackage::new(vec![
            spec("tp_eth0", "client", HookSpec::DeviceRx("eth0".into())),
            spec("tp_xenbr0", "xenhost", HookSpec::DeviceRx("xenbr0".into())),
            spec("tp_vif", "xenhost", HookSpec::DeviceRx("vif1.0".into())),
            spec("tp_eth1", "xenhost", HookSpec::DeviceRx("eth1".into())),
            spec(
                "tp_veth",
                "xenhost",
                HookSpec::DeviceRx("veth684a1d9".into()),
            ),
        ])
    }

    /// The tracepoint chain for the Fig. 11 per-packet decomposition.
    pub fn decomposition_chain() -> [&'static str; 5] {
        ["tp_eth0", "tp_xenbr0", "tp_vif", "tp_eth1", "tp_veth"]
    }

    /// Creates a tracer with agents for both hosts.
    pub fn make_tracer(&self) -> VNetTracer {
        let mut tracer = VNetTracer::new();
        tracer.add_agent(Agent::new(self.client, "client", 20));
        tracer.add_agent(Agent::new(self.xen, "xenhost", 20));
        tracer
    }

    /// Runs to completion.
    pub fn run(&mut self, cfg: &XenConfig) {
        let interval_ns = match cfg.workload {
            XenWorkload::Sockperf => cfg.interval.as_nanos(),
            XenWorkload::DataCaching => 1_000_000_000 / vnet_workloads::memcached::DEFAULT_RPS,
        };
        let total = SimDuration::from_nanos(interval_ns * (cfg.requests + 2))
            + SimDuration::from_millis(20);
        self.world.run_for(total);
    }
}

/// Runs one configuration and returns the application latency summary.
pub fn run_latency(
    workload: XenWorkload,
    consolidation: Consolidation,
    requests: u64,
) -> vnet_workloads::LatencySummary {
    run_latency_with_ratelimit(workload, consolidation, requests, None)
}

/// Like [`run_latency`], overriding the scheduler rate limit (the
/// ablation sweep of Case Study II's knob).
pub fn run_latency_with_ratelimit(
    workload: XenWorkload,
    consolidation: Consolidation,
    requests: u64,
    ratelimit: Option<SimDuration>,
) -> vnet_workloads::LatencySummary {
    let cfg = XenConfig {
        workload,
        consolidation,
        requests,
        ratelimit,
        ..Default::default()
    };
    let mut s = XenScenario::build(&cfg);
    s.run(&cfg);
    let summary = s
        .latency
        .lock()
        .unwrap()
        .summary()
        .expect("workload produced samples");
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidation_inflates_tail_latency() {
        let alone = run_latency(XenWorkload::Sockperf, Consolidation::Alone, 400);
        let shared = run_latency(
            XenWorkload::Sockperf,
            Consolidation::SharedDefaultRatelimit,
            400,
        );
        let inflation = shared.p999_ns as f64 / alone.p999_ns as f64;
        assert!(
            inflation > 8.0,
            "99.9p must inflate by an order of magnitude: alone {} shared {} ({inflation:.1}x)",
            alone.p999_ns,
            shared.p999_ns
        );
    }

    #[test]
    fn zero_ratelimit_restores_latency() {
        let alone = run_latency(XenWorkload::Sockperf, Consolidation::Alone, 400);
        let fixed = run_latency(XenWorkload::Sockperf, Consolidation::SharedNoRatelimit, 400);
        let ratio = fixed.mean_ns / alone.mean_ns;
        assert!(
            ratio < 1.5,
            "ratelimit=0 must be close to baseline: alone {} fixed {} ({ratio:.2}x)",
            alone.mean_ns,
            fixed.mean_ns
        );
    }

    #[test]
    fn data_caching_shows_same_problem() {
        let alone = run_latency(XenWorkload::DataCaching, Consolidation::Alone, 300);
        let shared = run_latency(
            XenWorkload::DataCaching,
            Consolidation::SharedDefaultRatelimit,
            300,
        );
        assert!(
            shared.mean_ns > 2.0 * alone.mean_ns,
            "avg inflates (paper: 4.7x)"
        );
        assert!(
            shared.p999_ns > 4 * alone.p999_ns,
            "tail inflates (paper: 7.5x)"
        );
        let fixed = run_latency(
            XenWorkload::DataCaching,
            Consolidation::SharedNoRatelimit,
            300,
        );
        assert!(fixed.mean_ns < 1.5 * alone.mean_ns);
    }

    #[test]
    fn decomposition_attributes_delay_to_vif_eth1_segment() {
        let cfg = XenConfig {
            consolidation: Consolidation::SharedDefaultRatelimit,
            requests: 300,
            ..Default::default()
        };
        let mut s = XenScenario::build(&cfg);
        let pkg = s.control_package();
        let mut tracer = s.make_tracer();
        tracer.deploy(&mut s.world, &pkg).unwrap();
        s.run(&cfg);
        tracer.collect(&s.world);
        let segs = tracer.decompose(&XenScenario::decomposition_chain());
        assert_eq!(segs.len(), 4);
        let total_mean: f64 = segs.iter().map(|s| s.stats.mean_ns).sum();
        let vif_eth1 = segs
            .iter()
            .find(|s| s.from == "tp_vif" && s.to == "tp_eth1")
            .unwrap();
        assert!(
            vif_eth1.stats.mean_ns / total_mean > 0.8,
            "vif->eth1 (scheduling) must dominate: {} of {}",
            vif_eth1.stats.mean_ns,
            total_mean
        );
    }

    #[test]
    fn sawtooth_scheduling_delay_visible_per_packet() {
        let cfg = XenConfig {
            consolidation: Consolidation::SharedDefaultRatelimit,
            requests: 300,
            ..Default::default()
        };
        let mut s = XenScenario::build(&cfg);
        let pkg = s.control_package();
        let mut tracer = s.make_tracer();
        tracer.deploy(&mut s.world, &pkg).unwrap();
        s.run(&cfg);
        tracer.collect(&s.world);
        let rows = vnettracer::metrics::per_packet_segments(
            tracer.db(),
            &XenScenario::decomposition_chain(),
        );
        // Segment index 2 = vif -> eth1.
        let delays: Vec<u64> = rows.iter().filter_map(|(_, segs)| segs[2]).collect();
        assert!(delays.len() > 100);
        let max = *delays.iter().max().unwrap();
        assert!(
            (800_000..1_100_000).contains(&max),
            "peak scheduling delay near the 1000us ratelimit, got {max}ns"
        );
        // Sawtooth: within a burst the delay descends by one send
        // interval (100us) per packet, then resets near the full
        // ratelimit once the vCPU has run and slept again.
        let descents = delays
            .windows(2)
            .filter(|w| w[0] > 500_000 && w[0].saturating_sub(w[1]) > 90_000)
            .count();
        assert!(
            descents > 20,
            "expected many descending steps, got {descents}"
        );
        let resets = delays.windows(2).filter(|w| w[1] > w[0] + 500_000).count();
        assert!(resets > 3, "expected periodic resets, got {resets}");
    }

    #[test]
    fn credit1_shows_the_same_problem_and_fix() {
        // "Such a solution also works for the same issue in credit1
        // scheduler inside Xen."
        let run = |consolidation, ratelimit| {
            let cfg = XenConfig {
                consolidation,
                requests: 300,
                ratelimit,
                scheduler: SchedulerKind::Credit1,
                ..Default::default()
            };
            let mut s = XenScenario::build(&cfg);
            s.run(&cfg);
            let summary = s.latency.lock().unwrap().summary().unwrap();
            summary
        };
        let alone = run(Consolidation::Alone, None);
        let shared = run(Consolidation::SharedDefaultRatelimit, None);
        let fixed = run(Consolidation::SharedNoRatelimit, None);
        assert!(
            shared.p999_ns > 8 * alone.p999_ns,
            "credit1 tail inflates too"
        );
        assert!(
            fixed.mean_ns < 1.5 * alone.mean_ns,
            "ratelimit=0 fixes credit1 too"
        );
    }

    #[test]
    fn jitter_range_grows_under_consolidation() {
        let cfg_alone = XenConfig {
            requests: 300,
            ..Default::default()
        };
        let mut a = XenScenario::build(&cfg_alone);
        a.run(&cfg_alone);
        let alone_range =
            vnettracer::metrics::jitter_range(a.latency.lock().unwrap().samples()).unwrap();
        let cfg_shared = XenConfig {
            consolidation: Consolidation::SharedDefaultRatelimit,
            requests: 300,
            ..Default::default()
        };
        let mut b = XenScenario::build(&cfg_shared);
        b.run(&cfg_shared);
        let shared_range =
            vnettracer::metrics::jitter_range(b.latency.lock().unwrap().samples()).unwrap();
        let alone_span = alone_range.1 - alone_range.0;
        let shared_span = shared_range.1 - shared_range.0;
        assert!(
            shared_span > 10 * alone_span,
            "jitter range must blow up: alone {alone_span} vs shared {shared_span}"
        );
    }
}
