//! The Fig. 7(a) overhead testbed: Sockperf between two KVM VMs on two
//! servers connected by OVS bridges and a physical link.
//!
//! "We created two VMs using KVM on two servers … executed Sockperf
//! client side on one VM and sent UDP requests to the Sockperf server
//! side on another VM … executed four tracing scripts and attached them
//! into the Open vSwitch port ovs-br1 in the hypervisor and virtual
//! ethernet port ens3 in the VM on the two physical servers." (§IV-B)
//!
//! A light background iPerf flow shares the OVS bridges and NICs so the
//! Sockperf latency distribution has a realistic tail.

use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::{Arc, Mutex};

use vnet_sim::device::{DeviceConfig, Forwarding, ServiceModel, TraceIdRole};
use vnet_sim::node::NodeClock;
use vnet_sim::packet::FlowKey;
use vnet_sim::time::SimDuration;
use vnet_sim::world::World;
use vnet_sim::NodeId;
use vnet_workloads::stats::LatencyRecorder;
use vnet_workloads::{IperfClient, IperfServer, SockperfClient, SockperfServer};
use vnettracer::config::{ControlPackage, FilterRule, GlobalConfig};
use vnettracer::modules::{ModuleRegistry, ModuleScope, TapSpec};
use vnettracer::{Agent, VNetTracer};

use crate::route;

/// Configuration of the two-host overhead scenario.
#[derive(Debug, Clone)]
pub struct TwoHostConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of Sockperf messages.
    pub messages: u64,
    /// Sockperf send interval.
    pub interval: SimDuration,
    /// Background iPerf rate in Mbps (0 disables it).
    pub background_mbps: f64,
}

impl Default for TwoHostConfig {
    fn default() -> Self {
        TwoHostConfig {
            seed: 7,
            messages: 2_000,
            interval: SimDuration::from_micros(100),
            background_mbps: 300.0,
        }
    }
}

/// The built scenario.
#[derive(Debug)]
pub struct TwoHostScenario {
    /// The simulated world.
    pub world: World,
    /// First server (Sockperf client VM).
    pub server1: NodeId,
    /// Second server (Sockperf server VM).
    pub server2: NodeId,
    /// Sockperf latency samples.
    pub latency: Arc<Mutex<LatencyRecorder>>,
    /// The Sockperf flow (client → server).
    pub flow: FlowKey,
}

/// VM1 (client) address.
pub const VM1_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
/// VM2 (server) address.
pub const VM2_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
/// Sockperf client UDP source port (the request flow's `src_port`).
pub const SOCKPERF_CLIENT_PORT: u16 = 40000;
/// Sockperf server UDP destination port.
pub const SOCKPERF_SERVER_PORT: u16 = 11111;
const IPERF_CLIENT_PORT: u16 = 50000;
const IPERF_SERVER_PORT: u16 = 5201;

impl TwoHostScenario {
    /// Builds the topology and workloads.
    pub fn build(cfg: &TwoHostConfig) -> Self {
        let mut w = World::new(cfg.seed);
        let s1 = w.add_node("server1", 20, NodeClock::perfect());
        let s2 = w.add_node("server2", 20, NodeClock::perfect());

        // --- server1 devices ---
        let ens3_tx_1 = w.add_device(
            DeviceConfig::new("ens3-tx", s1)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500)))
                .trace_id(TraceIdRole::Inject),
        );
        let ovs_br1 = w.add_device(
            DeviceConfig::new("ovs-br1", s1)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(1_500)))
                .queue_capacity(1024),
        );
        let eth_tx_1 =
            w.add_device(DeviceConfig::new("eth0-tx", s1).service(ServiceModel::nic_gbps(1.0)));
        let eth_rx_1 = w.add_device(
            DeviceConfig::new("eth0-rx", s1)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300))),
        );
        let ens3_1 = w.add_device(
            DeviceConfig::new("ens3", s1)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .forwarding(Forwarding::Deliver)
                .trace_id(TraceIdRole::StripUdpTrailer),
        );

        // --- server2 devices (mirror) ---
        let ens3_tx_2 = w.add_device(
            DeviceConfig::new("ens3-tx", s2)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(500)))
                .trace_id(TraceIdRole::Inject),
        );
        let ovs_br2 = w.add_device(
            DeviceConfig::new("ovs-br1", s2)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(1_500)))
                .queue_capacity(1024),
        );
        let eth_tx_2 =
            w.add_device(DeviceConfig::new("eth0-tx", s2).service(ServiceModel::nic_gbps(1.0)));
        let eth_rx_2 = w.add_device(
            DeviceConfig::new("eth0-rx", s2)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300))),
        );
        let ens3_2 = w.add_device(
            DeviceConfig::new("ens3", s2)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .forwarding(Forwarding::Deliver)
                .trace_id(TraceIdRole::StripUdpTrailer),
        );

        // --- wiring ---
        let wire = SimDuration::from_micros(30);
        // VM1 out -> OVS1 -> NIC1 -> wire -> NIC2-rx -> OVS2 -> VM2.
        w.connect(ens3_tx_1, ovs_br1, SimDuration::ZERO);
        let p_to_eth1 = w.connect(ovs_br1, eth_tx_1, SimDuration::ZERO);
        let p_to_vm1 = w.connect(ovs_br1, ens3_1, SimDuration::ZERO);
        route(&mut w, ovs_br1, &[(VM2_IP, p_to_eth1), (VM1_IP, p_to_vm1)]);
        w.connect(eth_tx_1, eth_rx_2, wire);
        w.connect(eth_rx_2, ovs_br2, SimDuration::ZERO);
        w.connect(ens3_tx_2, ovs_br2, SimDuration::ZERO);
        let p_to_eth2 = w.connect(ovs_br2, eth_tx_2, SimDuration::ZERO);
        let p_to_vm2 = w.connect(ovs_br2, ens3_2, SimDuration::ZERO);
        route(&mut w, ovs_br2, &[(VM1_IP, p_to_eth2), (VM2_IP, p_to_vm2)]);
        w.connect(eth_tx_2, eth_rx_1, wire);
        w.connect(eth_rx_1, ovs_br1, SimDuration::ZERO);

        // --- workloads ---
        let flow = FlowKey::udp(
            SocketAddrV4::new(VM1_IP, SOCKPERF_CLIENT_PORT),
            SocketAddrV4::new(VM2_IP, SOCKPERF_SERVER_PORT),
        );
        let latency = LatencyRecorder::shared();
        let client = w.add_app(
            s1,
            ens3_tx_1,
            Box::new(SockperfClient::new(
                flow,
                vnet_workloads::sockperf::DEFAULT_MSG_SIZE,
                cfg.interval,
                cfg.messages,
                Arc::clone(&latency),
            )),
        );
        let server = w.add_app(s2, ens3_tx_2, Box::new(SockperfServer::new()));
        w.bind_app(ens3_2, SOCKPERF_SERVER_PORT, server);
        w.bind_app(ens3_1, SOCKPERF_CLIENT_PORT, client);

        if cfg.background_mbps > 0.0 {
            let bg_flow = FlowKey::udp(
                SocketAddrV4::new(VM1_IP, IPERF_CLIENT_PORT),
                SocketAddrV4::new(VM2_IP, IPERF_SERVER_PORT),
            );
            // Run background traffic for the whole experiment.
            let duration_ns = cfg.interval.as_nanos() * cfg.messages;
            let pkt_size = 1470;
            let count = (cfg.background_mbps * 1e6 / 8.0 * (duration_ns as f64 / 1e9)
                / pkt_size as f64) as u64;
            w.add_app(
                s1,
                ens3_tx_1,
                Box::new(IperfClient::with_rate_mbps(
                    bg_flow,
                    pkt_size,
                    cfg.background_mbps,
                    count,
                )),
            );
            let bg_tput = vnet_workloads::stats::ThroughputRecorder::shared();
            let bg_server = w.add_app(s2, ens3_tx_2, Box::new(IperfServer::new(bg_tput)));
            w.bind_app(ens3_2, IPERF_SERVER_PORT, bg_server);
        }

        TwoHostScenario {
            world: w,
            server1: s1,
            server2: s2,
            latency,
            flow,
        }
    }

    /// Where the module profiles attach on this topology: the paper's
    /// four packet taps (OVS port and VM ethernet port on both servers,
    /// filtered to the Sockperf flow) plus a drop tap per server for the
    /// `skb-drop` module.
    pub fn module_scope(&self) -> ModuleScope {
        let req = FilterRule::udp_flow(
            (VM1_IP, SOCKPERF_CLIENT_PORT),
            (VM2_IP, SOCKPERF_SERVER_PORT),
        );
        ModuleScope {
            packet_taps: vec![
                TapSpec::rx("s1_ovs_br1", "server1", "ovs-br1", req),
                TapSpec::rx("s1_ens3", "server1", "ens3", req.reversed()),
                TapSpec::rx("s2_ovs_br1", "server2", "ovs-br1", req),
                TapSpec::rx("s2_ens3", "server2", "ens3", req),
            ],
            latency_pairs: vec![("s1_ovs_br1".into(), "s2_ovs_br1".into())],
            throughput_tables: vec!["s2_ovs_br1".into()],
            drop_taps: vec![
                TapSpec::drops("s1_drops", "server1", FilterRule::any()),
                TapSpec::drops("s2_drops", "server2", FilterRule::any()),
            ],
            ..Default::default()
        }
    }

    /// The paper's four trace scripts — the registry's `default` profile
    /// over this scenario's [`TwoHostScenario::module_scope`].
    pub fn control_package(&self) -> ControlPackage {
        ModuleRegistry::builtin()
            .package("default", &self.module_scope(), GlobalConfig::default())
            .expect("builtin default profile resolves")
    }

    /// Creates a tracer with agents registered for both servers.
    pub fn make_tracer(&self) -> VNetTracer {
        self.make_tracer_with_db(vnet_tsdb::TraceDb::new())
    }

    /// Like [`TwoHostScenario::make_tracer`], but collecting into an
    /// existing database — e.g. a disk-backed one from
    /// [`vnet_tsdb::TraceDb::open`].
    pub fn make_tracer_with_db(&self, db: vnet_tsdb::TraceDb) -> VNetTracer {
        let mut tracer = VNetTracer::with_db(db);
        tracer.add_agent(Agent::new(self.server1, "server1", 20));
        tracer.add_agent(Agent::new(self.server2, "server2", 20));
        tracer
    }

    /// Runs to completion: total duration plus drain time.
    pub fn run(&mut self, cfg: &TwoHostConfig) {
        let total = SimDuration::from_nanos(cfg.interval.as_nanos() * (cfg.messages + 2))
            + SimDuration::from_millis(50);
        self.world.run_for(total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_sim::time::SimTime;

    #[test]
    fn sockperf_runs_and_reports_latency() {
        let cfg = TwoHostConfig {
            messages: 200,
            ..Default::default()
        };
        let mut s = TwoHostScenario::build(&cfg);
        s.run(&cfg);
        let summary = s.latency.lock().unwrap().summary().unwrap();
        assert_eq!(summary.count, 200);
        // One-way ~ 36us (0.5+1.5+~1 NIC+30 wire+0.3+1.5+1).
        assert!(
            (30_000..55_000).contains(&summary.p50_ns),
            "median one-way {}ns",
            summary.p50_ns
        );
        // Background traffic produces a tail above the median.
        assert!(
            summary.p999_ns > summary.p50_ns,
            "tail {} vs median {}",
            summary.p999_ns,
            summary.p50_ns
        );
    }

    #[test]
    fn tracing_adds_under_one_percent_latency() {
        let cfg = TwoHostConfig {
            messages: 500,
            ..Default::default()
        };
        // Untraced run.
        let mut base = TwoHostScenario::build(&cfg);
        base.run(&cfg);
        let base_summary = base.latency.lock().unwrap().summary().unwrap();
        // Traced run: 4 eBPF scripts.
        let mut traced = TwoHostScenario::build(&cfg);
        let pkg = traced.control_package();
        let mut tracer = traced.make_tracer();
        tracer.deploy(&mut traced.world, &pkg).unwrap();
        traced.run(&cfg);
        tracer.collect(&traced.world);
        let traced_summary = traced.latency.lock().unwrap().summary().unwrap();
        let overhead = (traced_summary.mean_ns - base_summary.mean_ns) / base_summary.mean_ns;
        assert!(
            overhead.abs() < 0.01,
            "vNetTracer overhead must stay under 1%: base {} traced {} ({:+.3}%)",
            base_summary.mean_ns,
            traced_summary.mean_ns,
            overhead * 100.0
        );
        // And the tracer actually captured the flow at all 4 points.
        for table in ["s1_ovs_br1", "s2_ovs_br1", "s2_ens3", "s1_ens3"] {
            assert!(
                tracer.db().table(table).is_some_and(|t| !t.is_empty()),
                "table {table} should have records"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TwoHostConfig {
            messages: 100,
            ..Default::default()
        };
        let mut a = TwoHostScenario::build(&cfg);
        a.run(&cfg);
        let mut b = TwoHostScenario::build(&cfg);
        b.run(&cfg);
        assert_eq!(
            a.latency.lock().unwrap().samples(),
            b.latency.lock().unwrap().samples()
        );
        assert!(a.world.now() > SimTime::ZERO);
    }
}
