//! The Case Study I testbed (Figs. 8–9): network delay inside Open
//! vSwitch.
//!
//! Three (plus one) VMs on a single host, all connected through OVS:
//! Sockperf and iPerf clients on VM0, another iPerf client on VM1 (and,
//! for Case III+, VM3), with the Sockperf server and iPerf servers on
//! VM2 (Fig. 8a). The experiment cases:
//!
//! * **Case I** — Sockperf alone (uncongested baseline);
//! * **Case II** — plus an iPerf client on VM0: the *ingress queue* of
//!   `vnet0` saturates, adding queueing delay;
//! * **Case II+** — more iPerf clients on VM0: the queue is already
//!   saturated, so the delay does *not* grow;
//! * **Case III** — plus iPerf from VM1 (`vnet1`): the OVS fabric now
//!   switches flows from more ingress ports, adding processing delay;
//! * **Case III+** — iPerf from an additional VM (`vnet3`): more ports,
//!   more processing delay.
//!
//! Fig. 9(b)'s mitigation sets OVS ingress policing
//! (`rate 1e5 kbps, burst 1e4 kb`) on `vnet0`/`vnet1`, which drops the
//! iPerf load at admission and restores Sockperf latency.

use std::net::{Ipv4Addr, SocketAddrV4};
use std::sync::{Arc, Mutex};

use vnet_sim::device::{
    DeviceConfig, Forwarding, HtbConfig, PolicerConfig, ServiceModel, TraceIdRole,
};
use vnet_sim::node::NodeClock;
use vnet_sim::packet::FlowKey;
use vnet_sim::time::SimDuration;
use vnet_sim::world::World;
use vnet_sim::NodeId;
use vnet_workloads::stats::{LatencyRecorder, ThroughputRecorder};
use vnet_workloads::{
    IperfClient, IperfServer, NetperfServer, SockperfClient, SockperfServer, TcpStreamClient,
};
use vnettracer::config::{ControlPackage, FilterRule, GlobalConfig};
use vnettracer::modules::{ModuleRegistry, ModuleScope, OvsTap, TapSpec};
use vnettracer::{Agent, VNetTracer};

use crate::route;

/// The experiment case (Fig. 8/9 terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OvsCase {
    /// Sockperf alone.
    I,
    /// One iPerf client on VM0.
    II,
    /// Three iPerf clients on VM0.
    IIPlus,
    /// Case II plus an iPerf client on VM1.
    III,
    /// Case III plus an iPerf client on VM3.
    IIIPlus,
}

impl OvsCase {
    /// All cases in figure order.
    pub const ALL: [OvsCase; 5] = [
        OvsCase::I,
        OvsCase::II,
        OvsCase::IIPlus,
        OvsCase::III,
        OvsCase::IIIPlus,
    ];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            OvsCase::I => "Case I",
            OvsCase::II => "Case II",
            OvsCase::IIPlus => "Case II+",
            OvsCase::III => "Case III",
            OvsCase::IIIPlus => "Case III+",
        }
    }
}

/// What transport the congesting iPerf clients run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionTransport {
    /// Open-loop UDP at a fixed rate: sustained overload, the queue
    /// stays pinned at capacity (the default used for the figures).
    #[default]
    Udp,
    /// AIMD TCP (iPerf's default transport): the offered load breathes
    /// with congestion control, so the shared queue oscillates and the
    /// latency probes see a tail well above the average — the avg ≪
    /// p99.9 structure of the paper's Fig. 8(b).
    Tcp,
}

/// The mitigation applied at the OVS ingress ports (Fig. 9b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mitigation {
    /// No mitigation.
    #[default]
    None,
    /// Ingress policing (`ingress_policing_rate` 1e5 kbps,
    /// `ingress_policing_burst` 1e4 kb): excess packets are dropped.
    Policing,
    /// HTB QoS at the virtual port: the bulk class is shaped to the same
    /// rate but queued rather than dropped ("the effect was similar as
    /// the results using rate limit").
    Htb,
}

/// Configuration for the OVS scenario.
#[derive(Debug, Clone)]
pub struct OvsConfig {
    /// RNG seed.
    pub seed: u64,
    /// The experiment case.
    pub case: OvsCase,
    /// Mitigation on vnet0/vnet1 (Fig. 9b).
    pub mitigation: Mitigation,
    /// Transport of the congesting clients.
    pub transport: CongestionTransport,
    /// Sockperf messages.
    pub messages: u64,
    /// Sockperf send interval.
    pub interval: SimDuration,
}

impl Default for OvsConfig {
    fn default() -> Self {
        OvsConfig {
            seed: 13,
            case: OvsCase::I,
            mitigation: Mitigation::None,
            transport: CongestionTransport::Udp,
            messages: 1_000,
            interval: SimDuration::from_micros(500),
        }
    }
}

/// The built scenario.
#[derive(Debug)]
pub struct OvsScenario {
    /// The simulated world.
    pub world: World,
    /// The single host.
    pub host: NodeId,
    /// Sockperf latency samples.
    pub latency: Arc<Mutex<LatencyRecorder>>,
    /// iPerf delivered throughput (aggregate).
    pub iperf_throughput: Arc<Mutex<ThroughputRecorder>>,
    /// The Sockperf request flow.
    pub flow: FlowKey,
}

/// VM0 address (Sockperf + iPerf clients).
pub const VM0_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
/// VM1 address (iPerf client, Case III).
pub const VM1_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
/// VM2 address (servers).
pub const VM2_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
/// VM3 address (iPerf client, Case III+).
pub const VM3_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 4);
const SOCKPERF_CPORT: u16 = 40000;
const SOCKPERF_SPORT: u16 = 11111;
const IPERF_SPORT: u16 = 5201;

/// Per-packet admission service at an OVS ingress port (vnet*).
const VNET_SERVICE: SimDuration = SimDuration::from_micros(4);
/// Ingress queue capacity in packets.
const VNET_QUEUE: usize = 256;

impl OvsScenario {
    /// Builds the topology and workloads for `cfg`.
    pub fn build(cfg: &OvsConfig) -> Self {
        let mut w = World::new(cfg.seed);
        let host = w.add_node("server1", 20, NodeClock::perfect());

        let vnet = |w: &mut World, name: &str, mitigation: Mitigation| {
            let mut cfg_dev = DeviceConfig::new(name, host)
                .service(ServiceModel::Fixed(VNET_SERVICE))
                .queue_capacity(VNET_QUEUE);
            match mitigation {
                Mitigation::None => {}
                Mitigation::Policing => {
                    cfg_dev = cfg_dev.policer(PolicerConfig {
                        rate_kbps: 100_000,
                        burst_kb: 10_000,
                    });
                }
                Mitigation::Htb => {
                    // Same rate as the policer; the size filter puts the
                    // 1470-byte iPerf bulk frames in the shaped class and
                    // leaves the 56-byte Sockperf probes in the latency
                    // class.
                    cfg_dev = cfg_dev.htb(HtbConfig {
                        rate_kbps: 100_000,
                        burst_kb: 10_000,
                        shape_min_len: 500,
                    });
                }
            }
            w.add_device(cfg_dev)
        };

        // Guest socket layers.
        let em0 = w.add_device(
            DeviceConfig::new("em0", host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .trace_id(TraceIdRole::Inject),
        );
        let em1 = w.add_device(
            DeviceConfig::new("em1", host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .trace_id(TraceIdRole::Inject),
        );
        let em3 = w.add_device(
            DeviceConfig::new("em3", host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .trace_id(TraceIdRole::Inject),
        );
        let em2_tx = w.add_device(
            DeviceConfig::new("em2-tx", host)
                .service(ServiceModel::Fixed(SimDuration::from_nanos(300)))
                .trace_id(TraceIdRole::Inject),
        );
        // OVS ingress ports.
        let vnet0 = vnet(&mut w, "vnet0", cfg.mitigation);
        let vnet1 = vnet(&mut w, "vnet1", cfg.mitigation);
        let vnet2 = vnet(&mut w, "vnet2", Mitigation::None);
        let vnet3 = vnet(&mut w, "vnet3", Mitigation::None);
        // The switching fabric: processing cost grows with the number of
        // ingress ports active in the last millisecond.
        let ovs_br = w.add_device(
            DeviceConfig::new("ovs-br", host)
                .service(ServiceModel::OvsFabric {
                    base: SimDuration::from_nanos(500),
                    per_extra_port: SimDuration::from_nanos(800),
                    port_active_window: SimDuration::from_millis(1),
                })
                .queue_capacity(512),
        );
        // Receive stacks.
        let em2 = w.add_device(
            DeviceConfig::new("em2", host)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .queue_capacity(1024)
                .forwarding(Forwarding::Deliver)
                .trace_id(TraceIdRole::StripUdpTrailer),
        );
        let em0_rx = w.add_device(
            DeviceConfig::new("em0-rx", host)
                .service(ServiceModel::Fixed(SimDuration::from_micros(1)))
                .forwarding(Forwarding::Deliver)
                .trace_id(TraceIdRole::StripUdpTrailer),
        );

        // Wiring.
        w.connect(em0, vnet0, SimDuration::ZERO);
        w.connect(em1, vnet1, SimDuration::ZERO);
        w.connect(em3, vnet3, SimDuration::ZERO);
        w.connect(em2_tx, vnet2, SimDuration::ZERO);
        for v in [vnet0, vnet1, vnet2, vnet3] {
            w.connect(v, ovs_br, SimDuration::ZERO);
        }
        let p_vm2 = w.connect(ovs_br, em2, SimDuration::ZERO);
        let p_vm0 = w.connect(ovs_br, em0_rx, SimDuration::ZERO);
        route(&mut w, ovs_br, &[(VM2_IP, p_vm2), (VM0_IP, p_vm0)]);

        // Sockperf.
        let flow = FlowKey::udp(
            SocketAddrV4::new(VM0_IP, SOCKPERF_CPORT),
            SocketAddrV4::new(VM2_IP, SOCKPERF_SPORT),
        );
        let latency = LatencyRecorder::shared();
        let sock_client = w.add_app(
            host,
            em0,
            Box::new(SockperfClient::new(
                flow,
                vnet_workloads::sockperf::DEFAULT_MSG_SIZE,
                cfg.interval,
                cfg.messages,
                Arc::clone(&latency),
            )),
        );
        let sock_server = w.add_app(host, em2_tx, Box::new(SockperfServer::new()));
        w.bind_app(em2, SOCKPERF_SPORT, sock_server);
        w.bind_app(em0_rx, SOCKPERF_CPORT, sock_client);

        // iPerf congestion per case.
        let iperf_throughput = ThroughputRecorder::shared();
        let duration_ns = cfg.interval.as_nanos() * cfg.messages + 10_000_000;
        let iperf_count = duration_ns / 2_000; // one packet per 2us
        let mut iperf_port = 50_000u16;
        let transport = cfg.transport;
        let mut add_iperf = |w: &mut World, src_dev, src_ip: Ipv4Addr| {
            iperf_port += 1;
            match transport {
                CongestionTransport::Udp => {
                    let f = FlowKey::udp(
                        SocketAddrV4::new(src_ip, iperf_port),
                        SocketAddrV4::new(VM2_IP, IPERF_SPORT),
                    );
                    w.add_app(
                        host,
                        src_dev,
                        Box::new(IperfClient::new(
                            f,
                            vnet_workloads::iperf::DEFAULT_PKT_SIZE,
                            SimDuration::from_micros(2),
                            iperf_count,
                        )),
                    );
                }
                CongestionTransport::Tcp => {
                    let f = FlowKey::tcp(
                        SocketAddrV4::new(src_ip, iperf_port),
                        SocketAddrV4::new(VM2_IP, IPERF_SPORT),
                    );
                    let stats = Arc::new(Mutex::new(vnet_workloads::TcpStreamStats::default()));
                    let app = w.add_app(
                        host,
                        src_dev,
                        Box::new(TcpStreamClient::new(
                            f,
                            vnet_workloads::netperf::DEFAULT_MSS,
                            iperf_count,
                            SimDuration::from_millis(2),
                            stats,
                        )),
                    );
                    // Acks return to the sender's receive stack.
                    let rx = if src_ip == VM0_IP { "em0-rx" } else { "em-rx" };
                    let _ = rx;
                    w.bind_app(
                        w.find_device(vnet_sim::NodeId(0), "em0-rx")
                            .expect("em0-rx exists"),
                        iperf_port,
                        app,
                    );
                }
            }
        };
        match cfg.case {
            OvsCase::I => {}
            OvsCase::II => add_iperf(&mut w, em0, VM0_IP),
            OvsCase::IIPlus => {
                for _ in 0..3 {
                    add_iperf(&mut w, em0, VM0_IP);
                }
            }
            OvsCase::III => {
                add_iperf(&mut w, em0, VM0_IP);
                add_iperf(&mut w, em1, VM1_IP);
            }
            OvsCase::IIIPlus => {
                add_iperf(&mut w, em0, VM0_IP);
                add_iperf(&mut w, em1, VM1_IP);
                add_iperf(&mut w, em3, VM3_IP);
            }
        }
        let iperf_server: vnet_sim::AppId = match cfg.transport {
            CongestionTransport::Udp => w.add_app(
                host,
                em2_tx,
                Box::new(IperfServer::new(Arc::clone(&iperf_throughput))),
            ),
            CongestionTransport::Tcp => w.add_app(
                host,
                em2_tx,
                Box::new(NetperfServer::new(Arc::clone(&iperf_throughput))),
            ),
        };
        w.bind_app(em2, IPERF_SPORT, iperf_server);

        OvsScenario {
            world: w,
            host,
            latency,
            iperf_throughput,
            flow,
        }
    }

    /// Where the module profiles attach on this testbed: packet taps at
    /// the application socket, the OVS ingress port, and the receiving
    /// stack's entry and delivery points (all filtered to the Sockperf
    /// request flow), plus a host drop tap for `skb-drop` and an OVS tap
    /// for `ovs-flow`.
    pub fn module_scope(&self) -> ModuleScope {
        let req = FilterRule::udp_flow((VM0_IP, SOCKPERF_CPORT), (VM2_IP, SOCKPERF_SPORT));
        ModuleScope {
            packet_taps: vec![
                TapSpec::rx("sock_em0", "server1", "em0", req),
                TapSpec::rx("sock_vnet0", "server1", "vnet0", req),
                TapSpec::rx("sock_em2_in", "server1", "em2", req),
                TapSpec::tx("sock_em2_out", "server1", "em2", req),
            ],
            latency_pairs: vec![("sock_em0".into(), "sock_em2_out".into())],
            throughput_tables: vec!["sock_em2_out".into()],
            drop_taps: vec![TapSpec::drops("host_drops", "server1", FilterRule::any())],
            ovs_taps: vec![OvsTap {
                prefix: "ovs_br".into(),
                node: "server1".into(),
                filter: req,
            }],
            ..Default::default()
        }
    }

    /// The trace scripts used for the Fig. 9(a) decomposition — the
    /// registry's `default` profile over [`OvsScenario::module_scope`].
    pub fn control_package(&self) -> ControlPackage {
        ModuleRegistry::builtin()
            .package("default", &self.module_scope(), GlobalConfig::default())
            .expect("builtin default profile resolves")
    }

    /// The tracepoint chain for [`vnettracer::metrics::decompose`],
    /// giving the sender-stack / OVS / receiver-stack segments.
    pub fn decomposition_chain() -> [&'static str; 4] {
        ["sock_em0", "sock_vnet0", "sock_em2_in", "sock_em2_out"]
    }

    /// Creates a tracer with an agent for the host.
    pub fn make_tracer(&self) -> VNetTracer {
        let mut tracer = VNetTracer::new();
        tracer.add_agent(Agent::new(self.host, "server1", 20));
        tracer
    }

    /// Runs to completion.
    pub fn run(&mut self, cfg: &OvsConfig) {
        let total = SimDuration::from_nanos(cfg.interval.as_nanos() * (cfg.messages + 2))
            + SimDuration::from_millis(100);
        self.world.run_for(total);
    }
}

/// Runs one case end-to-end with TCP (AIMD) congestion and returns the
/// Sockperf latency summary.
pub fn sockperf_latency_tcp_congestion(
    case: OvsCase,
    messages: u64,
) -> vnet_workloads::LatencySummary {
    let cfg = OvsConfig {
        case,
        transport: CongestionTransport::Tcp,
        messages,
        ..Default::default()
    };
    let mut s = OvsScenario::build(&cfg);
    s.run(&cfg);
    let summary = s
        .latency
        .lock()
        .unwrap()
        .summary()
        .expect("sockperf produced samples");
    summary
}

/// Runs one case end-to-end and returns the Sockperf latency summary.
pub fn sockperf_latency(
    case: OvsCase,
    mitigation: Mitigation,
    messages: u64,
) -> vnet_workloads::LatencySummary {
    let cfg = OvsConfig {
        case,
        mitigation,
        messages,
        ..Default::default()
    };
    let mut s = OvsScenario::build(&cfg);
    s.run(&cfg);
    let summary = s
        .latency
        .lock()
        .unwrap()
        .summary()
        .expect("sockperf produced samples");
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_ordering_matches_fig8b() {
        let i = sockperf_latency(OvsCase::I, Mitigation::None, 300);
        let ii = sockperf_latency(OvsCase::II, Mitigation::None, 300);
        let iii = sockperf_latency(OvsCase::III, Mitigation::None, 300);
        // Uncongested baseline is microseconds; congestion is 100s of us.
        assert!(i.p999_ns < 20_000, "Case I tail {}ns", i.p999_ns);
        assert!(
            ii.p999_ns > 10 * i.p999_ns,
            "Case II tail {} must dwarf Case I {}",
            ii.p999_ns,
            i.p999_ns
        );
        assert!(
            iii.p999_ns > ii.p999_ns,
            "Case III {} adds processing delay over II {}",
            iii.p999_ns,
            ii.p999_ns
        );
    }

    #[test]
    fn saturated_ingress_makes_ii_plus_equal_ii() {
        let ii = sockperf_latency(OvsCase::II, Mitigation::None, 300);
        let ii_plus = sockperf_latency(OvsCase::IIPlus, Mitigation::None, 300);
        let ratio = ii_plus.mean_ns / ii.mean_ns;
        assert!(
            (0.8..1.25).contains(&ratio),
            "II+ ({}) should track II ({}): the queue is already saturated",
            ii_plus.mean_ns,
            ii.mean_ns
        );
    }

    #[test]
    fn more_ingress_ports_grow_the_processing_delay() {
        let iii = sockperf_latency(OvsCase::III, Mitigation::None, 300);
        let iii_plus = sockperf_latency(OvsCase::IIIPlus, Mitigation::None, 300);
        assert!(
            iii_plus.mean_ns > iii.mean_ns,
            "III+ ({}) must exceed III ({})",
            iii_plus.mean_ns,
            iii.mean_ns
        );
    }

    #[test]
    fn rate_limiting_restores_latency() {
        let congested = sockperf_latency(OvsCase::II, Mitigation::None, 300);
        let policed = sockperf_latency(OvsCase::II, Mitigation::Policing, 300);
        assert!(
            policed.mean_ns < congested.mean_ns / 5.0_f64,
            "policing ({}) must cut Case II latency ({}) drastically",
            policed.mean_ns,
            congested.mean_ns
        );
        let policed3 = sockperf_latency(OvsCase::III, Mitigation::Policing, 300);
        assert!(
            policed3.mean_ns < sockperf_latency(OvsCase::III, Mitigation::None, 300).mean_ns / 5.0
        );
    }

    #[test]
    fn tcp_congestion_produces_a_latency_tail_above_the_average() {
        // With AIMD congestion (iPerf's default TCP), the ingress queue
        // oscillates: probes see Fig. 8(b)'s avg << p99.9 structure
        // instead of the flat delay of sustained UDP overload.
        let s = sockperf_latency_tcp_congestion(OvsCase::II, 400);
        assert!(
            s.p999_ns as f64 > 1.5 * s.mean_ns,
            "tail {} should be well above avg {}",
            s.p999_ns,
            s.mean_ns
        );
        // And still clearly congested relative to Case I.
        let base = sockperf_latency(OvsCase::I, Mitigation::None, 200);
        assert!(s.p999_ns as f64 > 5.0 * base.p999_ns as f64);
    }

    #[test]
    fn htb_qos_has_a_similar_effect_to_rate_limiting() {
        // "In addition to the rate limit, we also tried setting QoS
        // policy with HTB at the virtual port of OVS … The effect was
        // similar as the results using rate limit."
        let congested = sockperf_latency(OvsCase::II, Mitigation::None, 300);
        let htb = sockperf_latency(OvsCase::II, Mitigation::Htb, 300);
        assert!(
            htb.mean_ns < congested.mean_ns / 5.0,
            "HTB ({}) must cut Case II latency ({}) like policing does",
            htb.mean_ns,
            congested.mean_ns
        );
        // Unlike policing, shaping never drops the latency-class probes:
        // every Sockperf message gets an answer.
        assert_eq!(htb.count, 300, "no sockperf losses under HTB");
    }
}
