//! The `datacenter_rack` scenario wired up with vNetTracer: the
//! rack-scale topology from `vnet-workloads` with a tracing agent on
//! every node and trace scripts at every OVS bridge and VM ethernet
//! port — the configuration the scale and determinism evaluations run.

use vnet_workloads::datacenter_rack::{RackConfig, RackScenario};
use vnettracer::config::{ControlPackage, FilterRule, GlobalConfig};
use vnettracer::modules::{ModuleRegistry, ModuleScope, TapSpec};
use vnettracer::{Agent, VNetTracer};

/// The rack testbed: scenario plus tracer wiring.
#[derive(Debug)]
pub struct RackTestbed {
    /// The scale configuration the rack was built with.
    pub cfg: RackConfig,
    /// The built scenario (world, nodes, recorders).
    pub scenario: RackScenario,
}

impl RackTestbed {
    /// Builds the rack.
    pub fn build(cfg: &RackConfig) -> Self {
        RackTestbed {
            cfg: cfg.clone(),
            scenario: RackScenario::build(cfg),
        }
    }

    /// Where the module profiles attach on the rack: one unfiltered
    /// packet tap per host OVS bridge and per VM ethernet port, plus a
    /// drop tap per host for the `skb-drop` module.
    pub fn module_scope(&self) -> ModuleScope {
        let mut scope = ModuleScope::default();
        for h in 0..self.cfg.hosts {
            scope.packet_taps.push(TapSpec::rx(
                &format!("h{h}_ovs_br"),
                &format!("host{h}"),
                "ovs-br",
                FilterRule::any(),
            ));
            for v in 0..self.cfg.vms_per_host {
                scope.packet_taps.push(TapSpec::rx(
                    &format!("vm{h}_{v}_ens3"),
                    &format!("vm{h}-{v}"),
                    "ens3",
                    FilterRule::any(),
                ));
            }
            scope.drop_taps.push(TapSpec::drops(
                &format!("h{h}_drops"),
                &format!("host{h}"),
                FilterRule::any(),
            ));
        }
        scope
    }

    /// Trace scripts at every hook in the rack — the registry's
    /// `default` profile over [`RackTestbed::module_scope`].
    pub fn control_package(&self) -> ControlPackage {
        ModuleRegistry::builtin()
            .package("default", &self.module_scope(), GlobalConfig::default())
            .expect("builtin default profile resolves")
    }

    /// Creates a tracer with an agent registered on every node of the
    /// rack — ToR, hosts and VMs.
    pub fn make_tracer(&self) -> VNetTracer {
        let mut tracer = VNetTracer::new();
        tracer.add_agent(Agent::new(self.scenario.tor, "tor", 8));
        for (h, &node) in self.scenario.host_nodes.iter().enumerate() {
            tracer.add_agent(Agent::new(node, format!("host{h}"), 16));
        }
        for h in 0..self.cfg.hosts {
            for v in 0..self.cfg.vms_per_host {
                let node = self.scenario.vm_nodes[h * self.cfg.vms_per_host + v];
                tracer.add_agent(Agent::new(node, format!("vm{h}-{v}"), 4));
            }
        }
        tracer
    }

    /// Runs the send phase plus drain margin.
    pub fn run(&mut self) {
        let cfg = self.cfg.clone();
        self.scenario.run(&cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented distortion bound for the traced rack: with one
    /// unfiltered record-producing script on every bridge and VM port,
    /// measured per-flow goodput must stay within 10% of the untraced
    /// run, and no packet may be lost to tracing. This encodes the
    /// edge-testbed paper's caution — if tracing (or the parallel
    /// engine) ever skews the workload's own measurements beyond this,
    /// the reproduction is no longer trustworthy.
    const DISTORTION_BOUND: f64 = 0.10;

    #[test]
    fn tracing_does_not_distort_rack_measurements() {
        let cfg = RackConfig::small();

        let mut base = RackTestbed::build(&cfg);
        base.run();
        let base_packets = base.scenario.delivered_packets();
        let base_bytes = base.scenario.delivered_bytes();
        assert_eq!(base_packets, cfg.total_packets());

        let mut traced = RackTestbed::build(&cfg);
        let pkg = traced.control_package();
        let mut tracer = traced.make_tracer();
        tracer.deploy(&mut traced.scenario.world, &pkg).unwrap();
        traced.run();
        tracer.collect(&traced.scenario.world);

        // No packet is lost to tracing, and byte counts agree exactly.
        assert_eq!(traced.scenario.delivered_packets(), base_packets);
        assert_eq!(traced.scenario.delivered_bytes(), base_bytes);

        // Per-VM goodput may shift (probe cost perturbs timing) but must
        // stay within the documented bound.
        for (vm, (b, t)) in base
            .scenario
            .delivered
            .iter()
            .zip(&traced.scenario.delivered)
            .enumerate()
        {
            let b = b.lock().unwrap().throughput_bps();
            let t = t.lock().unwrap().throughput_bps();
            if b > 0.0 {
                let delta = (t - b).abs() / b;
                assert!(
                    delta <= DISTORTION_BOUND,
                    "vm {vm}: traced goodput {t:.0} vs untraced {b:.0} bps \
                     ({:+.2}% > {:.0}% bound)",
                    delta * 100.0,
                    DISTORTION_BOUND * 100.0
                );
            }
        }

        // The tracer actually observed the traffic at every hook.
        assert!(traced.scenario.world.probes_fired() > 0);
        let db = tracer.db();
        for h in 0..cfg.hosts {
            assert!(
                db.table(&format!("h{h}_ovs_br"))
                    .is_some_and(|t| !t.is_empty()),
                "host {h} bridge table should have records"
            );
        }
    }

    #[test]
    fn traced_rack_is_deterministic_across_threads() {
        let cfg = RackConfig::small();
        let run = |threads: usize| {
            let mut tb = RackTestbed::build(&cfg);
            tb.scenario.world.set_parallelism(threads);
            let pkg = tb.control_package();
            let mut tracer = tb.make_tracer();
            tracer.deploy(&mut tb.scenario.world, &pkg).unwrap();
            tb.run();
            tracer.collect(&tb.scenario.world);
            let mut buf = Vec::new();
            vnet_tsdb::persist::write_json_lines(tracer.db(), &mut buf).unwrap();
            (
                buf,
                tb.scenario.world.probes_fired(),
                tb.scenario.world.events_processed(),
            )
        };
        let (db1, fired1, events1) = run(1);
        let (db2, fired2, events2) = run(2);
        assert_eq!(fired1, fired2, "probes_fired");
        assert_eq!(events1, events2, "events_processed");
        assert_eq!(db1, db2, "trace DB bytes");
    }
}
