//! Property-based tests for the eBPF toolchain: the verifier is total,
//! verified programs terminate, and the interpreter respects its sandbox.

use proptest::prelude::*;
use vnet_ebpf::asm::{reg::*, AluOp, Asm};
use vnet_ebpf::context::TraceContext;
use vnet_ebpf::insn::{decode_program, encode_program, Insn};
use vnet_ebpf::map::MapRegistry;
use vnet_ebpf::program::{load, AttachType, Program};
use vnet_ebpf::verifier::verify;
use vnet_ebpf::vm::{standard_helpers, FixedEnv, Vm};

prop_compose! {
    fn arb_insn()(opcode in any::<u8>(), dst in 0u8..16, src in 0u8..16, off in any::<i16>(), imm in any::<i32>()) -> Insn {
        Insn { opcode, dst, src, off, imm }
    }
}

// A random straight-line ALU program over initialised registers, always
// ending in exit. Every such program must verify and execute.
prop_compose! {
    fn arb_alu_program()(ops in proptest::collection::vec((0usize..8, 0u8..5, any::<i32>()), 1..64)) -> Vec<Insn> {
        let mut asm = Asm::new();
        // Initialise r0..r4.
        for r in 0..5u8 {
            asm = asm.mov64_imm(r, i32::from(r) + 1);
        }
        for (op, reg, imm) in ops {
            let alu = [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Or, AluOp::And,
                       AluOp::Xor, AluOp::Lsh, AluOp::Rsh][op];
            // Shift amounts are masked by the VM; immediates are safe.
            asm = asm.alu64_imm(alu, reg, imm);
        }
        asm.exit().build().expect("assembles")
    }
}

proptest! {
    /// The verifier never panics, whatever bytes it is fed.
    #[test]
    fn verifier_total_on_garbage(insns in proptest::collection::vec(arb_insn(), 0..128)) {
        let _ = verify(&insns, &standard_helpers()); // must not panic
    }

    /// Instruction encode/decode round-trips (dst/src restricted to the
    /// 4-bit fields they occupy).
    #[test]
    fn insn_encoding_round_trip(mut insns in proptest::collection::vec(arb_insn(), 0..64)) {
        for i in &mut insns {
            i.dst &= 0x0f;
            i.src &= 0x0f;
        }
        let bytes = encode_program(&insns);
        prop_assert_eq!(decode_program(&bytes).unwrap(), insns);
    }

    /// Random straight-line ALU programs verify, load, terminate within
    /// the budget, and never touch memory.
    #[test]
    fn random_alu_programs_execute(insns in arb_alu_program()) {
        let maps = MapRegistry::new();
        let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
        let loaded = load(prog, &maps, &standard_helpers()).expect("verifies");
        let mut maps = MapRegistry::new();
        let mut env = FixedEnv::default();
        let out = Vm::new()
            .execute(&loaded, &TraceContext::default(), &[], &mut maps, &mut env)
            .expect("executes");
        prop_assert!(out.insns_executed <= 4096 + 6);
    }

    /// A verified program's execution is deterministic.
    #[test]
    fn execution_deterministic(insns in arb_alu_program()) {
        let maps = MapRegistry::new();
        let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
        let loaded = load(prog, &maps, &standard_helpers()).unwrap();
        let run = || {
            let mut maps = MapRegistry::new();
            let mut env = FixedEnv::default();
            Vm::new()
                .execute(&loaded, &TraceContext::default(), &[], &mut maps, &mut env)
                .unwrap()
                .ret
        };
        prop_assert_eq!(run(), run());
    }

    /// Whatever a program computes as an address, loads through it either
    /// succeed inside a region or abort cleanly — never panic.
    #[test]
    fn wild_loads_abort_cleanly(addr in any::<i32>(), pkt_len in 0usize..64) {
        let insns = Asm::new()
            .mov64_imm(R2, addr)
            .ldx(vnet_ebpf::asm::Size::DW, R0, R2, 0)
            .exit()
            .build()
            .unwrap();
        let maps = MapRegistry::new();
        let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
        let loaded = load(prog, &maps, &standard_helpers()).unwrap();
        let mut maps = MapRegistry::new();
        let mut env = FixedEnv::default();
        let pkt = vec![0u8; pkt_len];
        let _ = Vm::new().execute(&loaded, &TraceContext::default(), &pkt, &mut maps, &mut env);
    }

    /// Perf buffers never deliver more bytes than their capacity between
    /// drains, and account every overflow as lost.
    #[test]
    fn perf_buffer_conservation(
        sizes in proptest::collection::vec(1usize..128, 1..64),
        cap in 32u32..4096,
    ) {
        let mut map = vnet_ebpf::map::Map::new(vnet_ebpf::map::MapDef::perf(cap), 1).unwrap();
        let mut pushed = 0usize;
        for s in &sizes {
            map.perf_output(0, &vec![0u8; *s]).unwrap();
            pushed += 1;
        }
        let drained = map.perf_drain(0);
        let drained_bytes: usize = drained.iter().map(Vec::len).sum();
        prop_assert!(drained_bytes <= cap as usize);
        prop_assert_eq!(drained.len() as u64 + map.perf_lost(0), pushed as u64);
    }
}
