//! Property-based tests for the eBPF toolchain: the verifier is total,
//! verified programs terminate, and the interpreter respects its sandbox.

use proptest::prelude::*;
use vnet_ebpf::asm::{reg::*, AluOp, Asm, Cond, Size};
use vnet_ebpf::context::TraceContext;
use vnet_ebpf::disasm::disassemble;
use vnet_ebpf::insn::*;
use vnet_ebpf::map::{MapDef, MapRegistry};
use vnet_ebpf::parse::parse_program;
use vnet_ebpf::program::{load, load_with_opts, AttachType, LoadOpts, Program};
use vnet_ebpf::verifier::verify;
use vnet_ebpf::vm::{standard_helpers, FixedEnv, Vm};

/// Runs one loaded program on the interpreter and on the threaded-code
/// tier both with and without verifier-proved check elision, each against
/// independent but identically-constructed map registries, then checks
/// the tier contract: same result or same error, and every compiled
/// variant retires exactly the instruction count the interpreter
/// executed (elision must be observationally invisible). Returns the
/// registries (interp, jit-elide, jit-no-elide) so callers can compare
/// map side effects.
fn run_both_tiers(
    loaded: &vnet_ebpf::program::LoadedProgram,
    pkt: &[u8],
    mut mk_maps: impl FnMut() -> MapRegistry,
) -> (MapRegistry, MapRegistry, MapRegistry) {
    let ctx = TraceContext::default();
    let mut maps_i = mk_maps();
    let mut env_i = FixedEnv::default();
    let interp = Vm::new().execute(loaded, &ctx, pkt, &mut maps_i, &mut env_i);
    let compiled = vnet_ebpf::jit::compile(loaded);
    let mut maps_j = mk_maps();
    let mut env_j = FixedEnv::default();
    let jit = compiled.execute(&ctx, pkt, &mut maps_j, &mut env_j);
    let baseline =
        vnet_ebpf::jit::compile_with(loaded, vnet_ebpf::jit::CompileOpts { elide: false });
    assert_eq!(
        baseline.elided_site_count(),
        0,
        "elide:false must elide nothing"
    );
    let mut maps_b = mk_maps();
    let mut env_b = FixedEnv::default();
    let base = baseline.execute(&ctx, pkt, &mut maps_b, &mut env_b);
    match (interp, jit, base) {
        (Ok(i), Ok(j), Ok(b)) => {
            assert_eq!(i.ret, j.ret, "tiers must return the same value");
            assert_eq!(j.ret, b.ret, "elision must not change the result");
            assert_eq!(
                i.insns_executed, j.insns_retired,
                "fused ops must retire the same instruction count"
            );
            assert_eq!(
                j.insns_retired, b.insns_retired,
                "elided branches must keep retired-instruction parity"
            );
            assert_eq!(b.checks_elided, 0, "elide:false must skip no checks");
        }
        (Err(i), Err(j), Err(b)) => {
            assert_eq!(i, j, "tiers must abort identically");
            assert_eq!(j, b, "elision must not change the abort");
        }
        (i, j, b) => panic!("tiers diverge: interp {i:?} vs jit {j:?} vs no-elide {b:?}"),
    }
    (maps_i, maps_j, maps_b)
}

/// Executes `loaded` on both tiers with identical fresh registries and
/// checks the cost contract on top of the tier contract: the two tiers
/// charge the same per-path cost (fused ops charge the sum of their
/// components), and both the dynamic cost and the retired instruction
/// count are bounded by the program's static certificate. Returns the
/// interpreter's outcome (return value or abort) and its registry.
fn run_certified(
    loaded: &vnet_ebpf::program::LoadedProgram,
    pkt: &[u8],
    mut mk_maps: impl FnMut() -> MapRegistry,
) -> (Result<u64, vnet_ebpf::vm::VmError>, MapRegistry) {
    let ctx = TraceContext::default();
    let cert = loaded.certificate();
    let mut maps_i = mk_maps();
    let mut env_i = FixedEnv::default();
    let interp = Vm::new().execute(loaded, &ctx, pkt, &mut maps_i, &mut env_i);
    let compiled = vnet_ebpf::jit::compile(loaded);
    let mut maps_j = mk_maps();
    let mut env_j = FixedEnv::default();
    let jit = compiled.execute(&ctx, pkt, &mut maps_j, &mut env_j);
    let outcome = match (interp, jit) {
        (Ok(i), Ok(j)) => {
            assert_eq!(i.ret, j.ret, "tiers must return the same value");
            assert_eq!(
                i.cost_ns, j.cost_ns,
                "tiers must charge the same per-path cost"
            );
            assert!(
                i.cost_ns <= cert.worst_case_ns,
                "dynamic cost {} ns exceeds certificate {} ns",
                i.cost_ns,
                cert.worst_case_ns
            );
            assert!(
                i.insns_executed <= cert.worst_case_insns,
                "retired {} insns exceeds certified bound {}",
                i.insns_executed,
                cert.worst_case_insns
            );
            Ok(i.ret)
        }
        (Err(i), Err(j)) => {
            assert_eq!(i, j, "tiers must abort identically");
            Err(i)
        }
        (i, j) => panic!("tiers diverge: interp {i:?} vs jit {j:?}"),
    };
    (outcome, maps_i)
}

/// One map's interpreter-visible contents, sorted for comparison.
fn hash_contents(maps: &MapRegistry, fd: i32) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut entries: Vec<_> = maps
        .get(fd)
        .expect("map exists")
        .iter_hash()
        .map(|(k, v)| (k.to_vec(), v.to_vec()))
        .collect();
    entries.sort();
    entries
}

prop_compose! {
    fn arb_insn()(opcode in any::<u8>(), dst in 0u8..16, src in 0u8..16, off in any::<i16>(), imm in any::<i32>()) -> Insn {
        Insn { opcode, dst, src, off, imm }
    }
}

// One randomly chosen *encodable* instruction — a form the assembler can
// emit and the disassembler prints unambiguously. Yields one slot, or two
// for the `lddw` forms.
prop_compose! {
    fn arb_encodable()(
        kind in 0usize..21,
        dst in 0u8..11,
        src in 0u8..11,
        off in any::<i16>(),
        imm in any::<i32>(),
        wide in any::<u64>(),
        sel in any::<u8>(),
    ) -> Vec<Insn> {
        let alu_ops = [BPF_ADD, BPF_SUB, BPF_MUL, BPF_DIV, BPF_OR, BPF_AND,
                       BPF_LSH, BPF_RSH, BPF_MOD, BPF_XOR, BPF_MOV, BPF_ARSH];
        let jmp_ops = [BPF_JEQ, BPF_JNE, BPF_JGT, BPF_JGE, BPF_JLT, BPF_JLE,
                       BPF_JSET, BPF_JSGT, BPF_JSGE, BPF_JSLT, BPF_JSLE];
        let sizes = [BPF_W, BPF_H, BPF_B, BPF_DW];
        let alu = alu_ops[usize::from(sel) % alu_ops.len()];
        let jmp = jmp_ops[usize::from(sel) % jmp_ops.len()];
        let size = sizes[usize::from(sel) % sizes.len()];
        let atomic_size = [BPF_W, BPF_DW][usize::from(sel) % 2];
        match kind {
            0 => vec![Insn::new(BPF_ALU64 | alu | BPF_K, dst, 0, 0, imm)],
            1 => vec![Insn::new(BPF_ALU | alu | BPF_K, dst, 0, 0, imm)],
            2 => vec![Insn::new(BPF_ALU64 | alu | BPF_X, dst, src, 0, 0)],
            3 => vec![Insn::new(BPF_ALU | alu | BPF_X, dst, src, 0, 0)],
            4 => vec![Insn::new(BPF_ALU64 | BPF_NEG, dst, 0, 0, 0)],
            5 => vec![Insn::new(BPF_ALU | BPF_NEG, dst, 0, 0, 0)],
            6 => vec![Insn::new(BPF_ALU | BPF_END | BPF_X, dst, 0, 0,
                                [16, 32, 64][usize::from(sel) % 3])],
            7 => vec![
                Insn::new(BPF_LD | BPF_IMM | BPF_DW, dst, 0, 0, wide as u32 as i32),
                Insn::new(0, 0, 0, 0, (wide >> 32) as u32 as i32),
            ],
            8 => vec![
                Insn::new(BPF_LD | BPF_IMM | BPF_DW, dst, PSEUDO_MAP_FD, 0, imm),
                Insn::new(0, 0, 0, 0, 0),
            ],
            9 => vec![Insn::new(BPF_LDX | BPF_MEM | size, dst, src, off, 0)],
            10 => vec![Insn::new(BPF_ST | BPF_MEM | size, dst, 0, off, imm)],
            11 => vec![Insn::new(BPF_STX | BPF_MEM | size, dst, src, off, 0)],
            12 => vec![Insn::new(BPF_STX | BPF_ATOMIC | atomic_size, dst, src, off,
                                 BPF_ADD as i32)],
            13 => vec![Insn::new(BPF_STX | BPF_ATOMIC | atomic_size, dst, src, off,
                                 BPF_ADD as i32 | BPF_FETCH)],
            14 => vec![Insn::new(BPF_JMP | BPF_JA, 0, 0, off, 0)],
            15 => vec![Insn::new(BPF_JMP | jmp | BPF_K, dst, 0, off, imm)],
            16 => vec![Insn::new(BPF_JMP32 | jmp | BPF_K, dst, 0, off, imm)],
            17 => vec![Insn::new(BPF_JMP | jmp | BPF_X, dst, src, off, 0)],
            18 => vec![Insn::new(BPF_JMP32 | jmp | BPF_X, dst, src, off, 0)],
            19 => vec![Insn::new(BPF_JMP | BPF_CALL, 0, 0, 0, imm)],
            _ => vec![Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0)],
        }
    }
}

// A random hash-map workload shaped like a real trace script: per step,
// update (op 0), delete (op 1) or lookup + in-place counter bump (op 2)
// under a random small key, finishing with a perf record emission.
prop_compose! {
    fn arb_map_ops()(ops in proptest::collection::vec((0u8..3, 0u32..8, any::<i32>()), 1..24)) -> Vec<(u8, u32, i32)> {
        ops
    }
}

/// Assembles the [`arb_map_ops`] workload against a hash map `fd` and a
/// perf buffer `perf_fd`.
fn assemble_map_workload(ops: &[(u8, u32, i32)], fd: i32, perf_fd: i32) -> Vec<Insn> {
    let mut asm = Asm::new();
    for (i, &(op, key, val)) in ops.iter().enumerate() {
        asm = asm.st(Size::W, R10, -4, key as i32);
        match op {
            0 => {
                asm = asm
                    .mov64_imm(R2, val)
                    .stx(Size::DW, R10, R2, -16)
                    .ld_map_fd(R1, fd)
                    .mov64(R2, R10)
                    .add64_imm(R2, -4)
                    .mov64(R3, R10)
                    .add64_imm(R3, -16)
                    .mov64_imm(R4, 0)
                    .call(vnet_ebpf::vm::helper_ids::MAP_UPDATE_ELEM);
            }
            1 => {
                asm = asm
                    .ld_map_fd(R1, fd)
                    .mov64(R2, R10)
                    .add64_imm(R2, -4)
                    .call(vnet_ebpf::vm::helper_ids::MAP_DELETE_ELEM);
            }
            _ => {
                let merge = format!("merge{i}");
                asm = asm
                    .ld_map_fd(R1, fd)
                    .mov64(R2, R10)
                    .add64_imm(R2, -4)
                    .call(vnet_ebpf::vm::helper_ids::MAP_LOOKUP_ELEM)
                    .jmp_imm(Cond::Eq, R0, 0, &merge)
                    .ldx(Size::DW, R2, R0, 0)
                    .add64_imm(R2, 1)
                    .stx(Size::DW, R0, R2, 0)
                    .label(&merge);
            }
        }
    }
    asm.mov64_imm(R2, 0x5eed)
        .stx(Size::DW, R10, R2, -8)
        .mov64(R4, R10)
        .add64_imm(R4, -8)
        .ld_map_fd(R2, perf_fd)
        .mov32_imm(R3, 0xffff_ffffu32 as i32) // BPF_F_CURRENT_CPU
        .mov64_imm(R5, 8)
        .call(vnet_ebpf::vm::helper_ids::PERF_EVENT_OUTPUT)
        .exit()
        .build()
        .expect("workload assembles")
}

// A random straight-line ALU program over initialised registers, always
// ending in exit. Every such program must verify and execute.
prop_compose! {
    fn arb_alu_program()(ops in proptest::collection::vec((0usize..8, 0u8..5, any::<i32>()), 1..64)) -> Vec<Insn> {
        let mut asm = Asm::new();
        // Initialise r0..r4.
        for r in 0..5u8 {
            asm = asm.mov64_imm(r, i32::from(r) + 1);
        }
        for (op, reg, imm) in ops {
            let alu = [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Or, AluOp::And,
                       AluOp::Xor, AluOp::Lsh, AluOp::Rsh][op];
            // Shift amounts are masked by the VM; immediates are safe.
            asm = asm.alu64_imm(alu, reg, imm);
        }
        asm.exit().build().expect("assembles")
    }
}

proptest! {
    /// The verifier never panics, whatever bytes it is fed.
    #[test]
    fn verifier_total_on_garbage(insns in proptest::collection::vec(arb_insn(), 0..128)) {
        let _ = verify(&insns, &standard_helpers()); // must not panic
    }

    /// Instruction encode/decode round-trips (dst/src restricted to the
    /// 4-bit fields they occupy).
    #[test]
    fn insn_encoding_round_trip(mut insns in proptest::collection::vec(arb_insn(), 0..64)) {
        for i in &mut insns {
            i.dst &= 0x0f;
            i.src &= 0x0f;
        }
        let bytes = encode_program(&insns);
        prop_assert_eq!(decode_program(&bytes).unwrap(), insns);
    }

    /// Random straight-line ALU programs verify, load, terminate within
    /// the budget, and never touch memory.
    #[test]
    fn random_alu_programs_execute(insns in arb_alu_program()) {
        let maps = MapRegistry::new();
        let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
        let loaded = load(prog, &maps, &standard_helpers()).expect("verifies");
        let mut maps = MapRegistry::new();
        let mut env = FixedEnv::default();
        let out = Vm::new()
            .execute(&loaded, &TraceContext::default(), &[], &mut maps, &mut env)
            .expect("executes");
        prop_assert!(out.insns_executed <= 4096 + 6);
    }

    /// A verified program's execution is deterministic.
    #[test]
    fn execution_deterministic(insns in arb_alu_program()) {
        let maps = MapRegistry::new();
        let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
        let loaded = load(prog, &maps, &standard_helpers()).unwrap();
        let run = || {
            let mut maps = MapRegistry::new();
            let mut env = FixedEnv::default();
            Vm::new()
                .execute(&loaded, &TraceContext::default(), &[], &mut maps, &mut env)
                .unwrap()
                .ret
        };
        prop_assert_eq!(run(), run());
    }

    /// Whatever a program computes as an address, loads through it either
    /// succeed inside a region or abort cleanly — never panic.
    #[test]
    fn wild_loads_abort_cleanly(addr in any::<i32>(), pkt_len in 0usize..64) {
        let insns = Asm::new()
            .mov64_imm(R2, addr)
            .ldx(vnet_ebpf::asm::Size::DW, R0, R2, 0)
            .exit()
            .build()
            .unwrap();
        let maps = MapRegistry::new();
        let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
        let loaded = load(prog, &maps, &standard_helpers()).unwrap();
        let mut maps = MapRegistry::new();
        let mut env = FixedEnv::default();
        let pkt = vec![0u8; pkt_len];
        let _ = Vm::new().execute(&loaded, &TraceContext::default(), &pkt, &mut maps, &mut env);
    }

    /// Arbitrary instruction streams never panic the toolchain: either
    /// the verifier rejects the stream, or the program loads and the
    /// interpreter terminates within the instruction budget (possibly
    /// with a clean runtime error).
    #[test]
    fn garbage_streams_verify_or_terminate(insns in proptest::collection::vec(arb_insn(), 0..256)) {
        if verify(&insns, &standard_helpers()).is_ok() {
            let maps = MapRegistry::new();
            let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
            let loaded = load(prog, &maps, &standard_helpers()).expect("verified streams load");
            let mut maps = MapRegistry::new();
            let mut env = FixedEnv::default();
            let pkt = [0u8; 64];
            if let Ok(out) = Vm::new().execute(&loaded, &TraceContext::default(), &pkt, &mut maps, &mut env) {
                prop_assert!(out.insns_executed <= MAX_INSNS as u64 + 6);
            }
        }
    }

    /// Disassembling any encodable program and parsing the listing back
    /// reproduces the original bytecode bit for bit.
    #[test]
    fn disasm_parse_round_trip(chunks in proptest::collection::vec(arb_encodable(), 0..64)) {
        let insns: Vec<Insn> = chunks.into_iter().flatten().collect();
        let listing = disassemble(&insns);
        let parsed = parse_program(&listing)
            .unwrap_or_else(|e| panic!("{e}\nlisting: {listing:#?}"));
        prop_assert_eq!(encode_program(&parsed), encode_program(&insns));
    }

    /// Differential: on every verifier-accepted instruction stream — not
    /// just well-formed programs — the threaded-code tier returns the
    /// interpreter's value, retires the interpreter's instruction count,
    /// and aborts with the interpreter's exact error.
    #[test]
    fn tiers_agree_on_verified_garbage(
        insns in proptest::collection::vec(arb_insn(), 0..256),
        pkt_len in 0usize..64,
    ) {
        if verify(&insns, &standard_helpers()).is_ok() {
            let maps = MapRegistry::new();
            let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
            let loaded = load(prog, &maps, &standard_helpers()).expect("verified streams load");
            let pkt = vec![0u8; pkt_len];
            run_both_tiers(&loaded, &pkt, MapRegistry::new);
        }
    }

    /// Differential: random ALU programs (always accepted) compute the
    /// same value on both tiers.
    #[test]
    fn tiers_agree_on_alu_programs(insns in arb_alu_program()) {
        let maps = MapRegistry::new();
        let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
        let loaded = load(prog, &maps, &standard_helpers()).expect("verifies");
        run_both_tiers(&loaded, &[], MapRegistry::new);
    }

    /// Differential: random map workloads leave byte-identical hash-map
    /// contents and emit byte-identical perf records on both tiers —
    /// the side effects the collector turns into trace records.
    #[test]
    fn tiers_agree_on_map_side_effects(ops in arb_map_ops()) {
        let mk_maps = || {
            let mut m = MapRegistry::new();
            m.create(MapDef::hash(4, 8, 16), 1).unwrap();
            m.create(MapDef::perf(4096), 4).unwrap();
            m
        };
        let maps = mk_maps();
        let prog = Program::new(
            "p",
            AttachType::Kprobe("f".into()),
            assemble_map_workload(&ops, 0, 1),
        );
        let loaded = load(prog, &maps, &standard_helpers()).expect("workload verifies");
        let (mut maps_i, mut maps_j, mut maps_b) = run_both_tiers(&loaded, &[], mk_maps);
        prop_assert_eq!(hash_contents(&maps_i, 0), hash_contents(&maps_j, 0));
        prop_assert_eq!(hash_contents(&maps_j, 0), hash_contents(&maps_b, 0));
        let recs_i = maps_i.get_mut(1).unwrap().perf_drain_all();
        let recs_j = maps_j.get_mut(1).unwrap().perf_drain_all();
        let recs_b = maps_b.get_mut(1).unwrap().perf_drain_all();
        prop_assert_eq!(&recs_i, &recs_j);
        prop_assert_eq!(&recs_j, &recs_b, "elision must not change emitted records");
    }

    /// Every rejection names an in-bounds instruction: whatever bytes the
    /// analysis is fed, each diagnostic (and the legacy first error)
    /// points inside the program so `vnt verify` can annotate the
    /// offending line. (Empty/oversized programs have no insn to name.)
    #[test]
    fn rejections_name_in_bounds_insns(insns in proptest::collection::vec(arb_insn(), 1..200)) {
        let analysis = vnet_ebpf::analyze(&insns, &standard_helpers(), |_| None);
        if !analysis.ok() {
            for d in analysis.diagnostics() {
                prop_assert!(
                    d.insn < insns.len(),
                    "diagnostic names insn {} of {}",
                    d.insn,
                    insns.len()
                );
            }
            if let Some(i) = analysis.first_error().and_then(|e| e.insn()) {
                prop_assert!(i < insns.len());
            }
        }
    }

    /// Differential: on every verifier-accepted instruction stream, the
    /// optimized program (the default load) produces the raw program's
    /// exact outcome — same return value or same abort — on both tiers,
    /// never grows, always re-verifies, and never certifies a worse
    /// worst-case cost; on every arm the dynamic cost and retired count
    /// stay within the static certificate.
    #[test]
    fn optimizer_preserves_verified_garbage(
        insns in proptest::collection::vec(arb_insn(), 0..256),
        pkt_len in 0usize..64,
    ) {
        if verify(&insns, &standard_helpers()).is_ok() {
            let registry = MapRegistry::new();
            // A raw load can fail on live references to maps the empty
            // registry lacks; skip those streams.
            if let Ok(raw) = load_with_opts(
                Program::new("p", AttachType::Kprobe("f".into()), insns.clone()),
                &registry,
                &standard_helpers(),
                &LoadOpts { optimize: false },
            ) {
            let opt = load_with_opts(
                Program::new("p", AttachType::Kprobe("f".into()), insns),
                &registry,
                &standard_helpers(),
                &LoadOpts { optimize: true },
            )
            .expect("raw-loadable programs load optimized");
            prop_assert!(opt.opt_stats().reverified, "optimized program must re-verify");
            prop_assert!(opt.insns().len() <= raw.insns().len());
            prop_assert!(
                opt.certificate().worst_case_ns <= raw.certificate().worst_case_ns,
                "optimization must never certify a worse worst case"
            );
            let pkt = vec![0u8; pkt_len];
            let (out_raw, _) = run_certified(&raw, &pkt, MapRegistry::new);
            let (out_opt, _) = run_certified(&opt, &pkt, MapRegistry::new);
            prop_assert_eq!(out_raw, out_opt, "optimization must preserve the outcome");
            }
        }
    }

    /// Differential: raw and optimized forms of random map workloads
    /// leave byte-identical hash-map contents and emit byte-identical
    /// perf records — optimization must not change what the collector
    /// sees.
    #[test]
    fn optimizer_preserves_map_side_effects(ops in arb_map_ops()) {
        let mk_maps = || {
            let mut m = MapRegistry::new();
            m.create(MapDef::hash(4, 8, 16), 1).unwrap();
            m.create(MapDef::perf(4096), 4).unwrap();
            m
        };
        let registry = mk_maps();
        let insns = assemble_map_workload(&ops, 0, 1);
        let raw = load_with_opts(
            Program::new("p", AttachType::Kprobe("f".into()), insns.clone()),
            &registry,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .expect("workload verifies");
        let opt = load(
            Program::new("p", AttachType::Kprobe("f".into()), insns),
            &registry,
            &standard_helpers(),
        )
        .expect("workload optimizes");
        let (out_raw, mut maps_raw) = run_certified(&raw, &[], mk_maps);
        let (out_opt, mut maps_opt) = run_certified(&opt, &[], mk_maps);
        prop_assert_eq!(out_raw, out_opt);
        prop_assert_eq!(hash_contents(&maps_raw, 0), hash_contents(&maps_opt, 0));
        prop_assert_eq!(
            maps_raw.get_mut(1).unwrap().perf_drain_all(),
            maps_opt.get_mut(1).unwrap().perf_drain_all(),
            "optimization must not change emitted records"
        );
    }

    /// Perf buffers never deliver more bytes than their capacity between
    /// drains, and account every overflow as lost.
    #[test]
    fn perf_buffer_conservation(
        sizes in proptest::collection::vec(1usize..128, 1..64),
        cap in 32u32..4096,
    ) {
        let mut map = vnet_ebpf::map::Map::new(vnet_ebpf::map::MapDef::perf(cap), 1).unwrap();
        let mut pushed = 0usize;
        for s in &sizes {
            map.perf_output(0, &vec![0u8; *s]).unwrap();
            pushed += 1;
        }
        let drained = map.perf_drain(0);
        let drained_bytes: usize = drained.iter().map(Vec::len).sum();
        prop_assert!(drained_bytes <= cap as usize);
        prop_assert_eq!(drained.len() as u64 + map.perf_lost(0), pushed as u64);
    }
}
