//! Verifier regression corpus.
//!
//! Every `tests/corpus/*.bpf` file is a kernel-style program listing
//! with a header declaring the expected verdict:
//!
//! ```text
//! # expect: accepted | rejected
//! # error: <substring of the first diagnostic>       (optional)
//! # min-diagnostics: <N>                             (optional)
//! # post-opt-insns: <N>                              (optional, accepted only)
//! # certified-cost: <N>                              (optional, accepted only)
//! ```
//!
//! The runner parses each listing, runs the abstract-interpretation
//! verifier against the standard helper set, and checks the verdict —
//! plus, for rejections, that every diagnostic names an in-bounds
//! instruction index. Accepted listings must additionally survive an
//! annotate-and-reparse round trip, pinning the `;`-annotation syntax,
//! and are run through the load-time optimizer: the rewritten program
//! must re-verify, never be longer, and never certify a worse
//! worst-case cost. `# post-opt-insns:` pins the optimized slot count
//! and `# certified-cost:` the optimized program's certified worst-case
//! nanoseconds, so optimizer and cost-model regressions show up as
//! corpus diffs.

use std::path::{Path, PathBuf};

use vnet_ebpf::analyze;
use vnet_ebpf::cost::certify;
use vnet_ebpf::disasm::disassemble_annotated;
use vnet_ebpf::opt::optimize;
use vnet_ebpf::parse::parse_program;
use vnet_ebpf::standard_helpers;

struct Expectation {
    accepted: bool,
    error_substring: Option<String>,
    min_diagnostics: usize,
    post_opt_insns: Option<usize>,
    certified_cost: Option<u64>,
}

fn parse_header(name: &str, text: &str) -> Expectation {
    let mut accepted = None;
    let mut error_substring = None;
    let mut min_diagnostics = 1;
    let mut post_opt_insns = None;
    let mut certified_cost = None;
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix('#') else {
            continue;
        };
        let rest = rest.trim();
        if let Some(v) = rest.strip_prefix("expect:") {
            accepted = match v.trim() {
                "accepted" => Some(true),
                "rejected" => Some(false),
                other => panic!("{name}: bad `# expect:` value `{other}`"),
            };
        } else if let Some(v) = rest.strip_prefix("error:") {
            error_substring = Some(v.trim().to_owned());
        } else if let Some(v) = rest.strip_prefix("min-diagnostics:") {
            min_diagnostics = v.trim().parse().expect("min-diagnostics number");
        } else if let Some(v) = rest.strip_prefix("post-opt-insns:") {
            post_opt_insns = Some(v.trim().parse().expect("post-opt-insns number"));
        } else if let Some(v) = rest.strip_prefix("certified-cost:") {
            certified_cost = Some(v.trim().parse().expect("certified-cost number"));
        }
    }
    Expectation {
        accepted: accepted.unwrap_or_else(|| panic!("{name}: missing `# expect:` header")),
        error_substring,
        min_diagnostics,
        post_opt_insns,
        certified_cost,
    }
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_verdicts_match() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "bpf"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 12,
        "corpus should not silently shrink (found {})",
        paths.len()
    );

    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        let expect = parse_header(&name, &text);
        let lines: Vec<&str> = text.lines().collect();
        let insns = parse_program(&lines).unwrap_or_else(|e| panic!("{name}: {e}"));
        let analysis = analyze(&insns, &standard_helpers(), |_| None);

        if expect.accepted {
            assert!(
                analysis.ok(),
                "{name}: expected accepted, rejected with {:?}",
                analysis.first_error()
            );
            // The annotated listing must reassemble to the same bytecode.
            let annotated = disassemble_annotated(&insns, &analysis);
            let reparsed = parse_program(&annotated)
                .unwrap_or_else(|e| panic!("{name}: annotated listing does not reparse: {e}"));
            assert_eq!(reparsed, insns, "{name}: annotate/reparse round trip");
            // Every accepted listing goes through the optimizer: sound
            // (re-verifies), shrinking, and never costlier.
            let raw_cert = certify(&insns, &analysis);
            let opt = optimize(&insns, &standard_helpers(), &|_| None);
            assert!(
                opt.stats.reverified,
                "{name}: optimized program must re-verify"
            );
            assert!(
                opt.insns.len() <= insns.len(),
                "{name}: optimization must never grow the program"
            );
            let opt_cert = certify(&opt.insns, &opt.analysis);
            assert!(
                opt_cert.worst_case_ns <= raw_cert.worst_case_ns,
                "{name}: optimized certificate {} ns exceeds original {} ns",
                opt_cert.worst_case_ns,
                raw_cert.worst_case_ns
            );
            if let Some(want) = expect.post_opt_insns {
                assert_eq!(
                    opt.insns.len(),
                    want,
                    "{name}: `# post-opt-insns:` header drifted"
                );
            }
            if let Some(want) = expect.certified_cost {
                assert_eq!(
                    opt_cert.worst_case_ns, want,
                    "{name}: `# certified-cost:` header drifted"
                );
            }
        } else {
            assert!(!analysis.ok(), "{name}: expected rejected, was accepted");
            let diags = analysis.diagnostics();
            assert!(
                diags.len() >= expect.min_diagnostics,
                "{name}: wanted at least {} diagnostics, got {}",
                expect.min_diagnostics,
                diags.len()
            );
            for d in diags {
                assert!(
                    d.insn < insns.len(),
                    "{name}: diagnostic names out-of-bounds insn {} (program has {})",
                    d.insn,
                    insns.len()
                );
            }
            if let Some(sub) = &expect.error_substring {
                let msg = analysis.first_error().expect("rejected").to_string();
                assert!(
                    msg.contains(sub.as_str()),
                    "{name}: first error `{msg}` does not mention `{sub}`"
                );
            }
        }
    }
}
