//! Verifier regression corpus.
//!
//! Every `tests/corpus/*.bpf` file is a kernel-style program listing
//! with a header declaring the expected verdict:
//!
//! ```text
//! # expect: accepted | rejected
//! # error: <substring of the first diagnostic>       (optional)
//! # min-diagnostics: <N>                             (optional)
//! ```
//!
//! The runner parses each listing, runs the abstract-interpretation
//! verifier against the standard helper set, and checks the verdict —
//! plus, for rejections, that every diagnostic names an in-bounds
//! instruction index. Accepted listings must additionally survive an
//! annotate-and-reparse round trip, pinning the `;`-annotation syntax.

use std::path::{Path, PathBuf};

use vnet_ebpf::analyze;
use vnet_ebpf::disasm::disassemble_annotated;
use vnet_ebpf::parse::parse_program;
use vnet_ebpf::standard_helpers;

struct Expectation {
    accepted: bool,
    error_substring: Option<String>,
    min_diagnostics: usize,
}

fn parse_header(name: &str, text: &str) -> Expectation {
    let mut accepted = None;
    let mut error_substring = None;
    let mut min_diagnostics = 1;
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix('#') else {
            continue;
        };
        let rest = rest.trim();
        if let Some(v) = rest.strip_prefix("expect:") {
            accepted = match v.trim() {
                "accepted" => Some(true),
                "rejected" => Some(false),
                other => panic!("{name}: bad `# expect:` value `{other}`"),
            };
        } else if let Some(v) = rest.strip_prefix("error:") {
            error_substring = Some(v.trim().to_owned());
        } else if let Some(v) = rest.strip_prefix("min-diagnostics:") {
            min_diagnostics = v.trim().parse().expect("min-diagnostics number");
        }
    }
    Expectation {
        accepted: accepted.unwrap_or_else(|| panic!("{name}: missing `# expect:` header")),
        error_substring,
        min_diagnostics,
    }
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_verdicts_match() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "bpf"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 12,
        "corpus should not silently shrink (found {})",
        paths.len()
    );

    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        let expect = parse_header(&name, &text);
        let lines: Vec<&str> = text.lines().collect();
        let insns = parse_program(&lines).unwrap_or_else(|e| panic!("{name}: {e}"));
        let analysis = analyze(&insns, &standard_helpers(), |_| None);

        if expect.accepted {
            assert!(
                analysis.ok(),
                "{name}: expected accepted, rejected with {:?}",
                analysis.first_error()
            );
            // The annotated listing must reassemble to the same bytecode.
            let annotated = disassemble_annotated(&insns, &analysis);
            let reparsed = parse_program(&annotated)
                .unwrap_or_else(|e| panic!("{name}: annotated listing does not reparse: {e}"));
            assert_eq!(reparsed, insns, "{name}: annotate/reparse round trip");
        } else {
            assert!(!analysis.ok(), "{name}: expected rejected, was accepted");
            let diags = analysis.diagnostics();
            assert!(
                diags.len() >= expect.min_diagnostics,
                "{name}: wanted at least {} diagnostics, got {}",
                expect.min_diagnostics,
                diags.len()
            );
            for d in diags {
                assert!(
                    d.insn < insns.len(),
                    "{name}: diagnostic names out-of-bounds insn {} (program has {})",
                    d.insn,
                    insns.len()
                );
            }
            if let Some(sub) = &expect.error_substring {
                let msg = analysis.first_error().expect("rejected").to_string();
                assert!(
                    msg.contains(sub.as_str()),
                    "{name}: first error `{msg}` does not mention `{sub}`"
                );
            }
        }
    }
}
