//! Region-boundary edge cases, run on both execution tiers.
//!
//! The VM exposes four tagged memory regions to programs — context,
//! packet, stack and map values — and the threaded-code tier elides some
//! per-access checks using verifier facts. These tests pin the exact
//! boundary behaviour: accesses ending flush against a region end
//! succeed, accesses straddling an end or landing in the gaps between
//! regions abort, and both tiers agree bit for bit on every case.
//!
//! All accesses go through *copied* pointers (`r2 = r10`, `r2 = ctx`,
//! packet pointer loaded from the context). The abstract interpreter
//! now tracks stack and ctx copies, so the in-bounds cases may run on
//! the verifier-proved elided path — the boundary values pin that the
//! proofs draw the region edges exactly where the runtime checks do.
//! The straddling and gap cases can never carry a proof (and packet
//! pointers are never classified), so they exercise the runtime-checked
//! path the jit tier must not have optimised away; both must agree with
//! the interpreter bit for bit either way.

use vnet_ebpf::asm::{reg::*, Asm, Size};
use vnet_ebpf::context::{TraceContext, CTX_OFF_DATA, CTX_SIZE};
use vnet_ebpf::insn::STACK_SIZE;
use vnet_ebpf::map::{MapDef, MapRegistry};
use vnet_ebpf::program::{load, AttachType, Program};
use vnet_ebpf::vm::{helper_ids, standard_helpers, FixedEnv, Vm, VmError};

/// Runs `asm` on the interpreter and the threaded-code tier with
/// identically-built registries; asserts both tiers produce the same
/// result (value and retired-instruction count, or the same error) and
/// returns it.
fn both_tiers(
    asm: Asm,
    pkt: &[u8],
    mut mk_maps: impl FnMut() -> MapRegistry,
) -> Result<u64, VmError> {
    let insns = asm.build().expect("assembles");
    let maps = mk_maps();
    let prog = Program::new("edge", AttachType::Kprobe("f".into()), insns);
    let loaded = load(prog, &maps, &standard_helpers()).expect("verifies");
    let ctx = TraceContext::default();
    let mut maps_i = mk_maps();
    let mut env_i = FixedEnv::default();
    let interp = Vm::new().execute(&loaded, &ctx, pkt, &mut maps_i, &mut env_i);
    let compiled = vnet_ebpf::jit::compile(&loaded);
    let mut maps_j = mk_maps();
    let mut env_j = FixedEnv::default();
    let jit = compiled.execute(&ctx, pkt, &mut maps_j, &mut env_j);
    match (interp, jit) {
        (Ok(i), Ok(j)) => {
            assert_eq!(i.ret, j.ret, "tiers must agree on the return value");
            assert_eq!(i.insns_executed, j.insns_retired);
            Ok(i.ret)
        }
        (Err(i), Err(j)) => {
            assert_eq!(i, j, "tiers must abort with the same error");
            Err(i)
        }
        (i, j) => panic!("tiers diverge: interp {i:?} vs jit {j:?}"),
    }
}

fn no_maps() -> MapRegistry {
    MapRegistry::new()
}

/// `r2 = r1` (context base) — a copy the verifier can't track.
fn ctx_copy() -> Asm {
    Asm::new().mov64(R2, R1)
}

/// `r2 = *(ctx + CTX_OFF_DATA)` — the packet pointer.
fn pkt_copy() -> Asm {
    Asm::new().ldx(Size::DW, R2, R1, CTX_OFF_DATA)
}

/// `r2 = r10` — the frame pointer, laundered through a scratch register.
fn fp_copy() -> Asm {
    Asm::new().mov64(R2, R10)
}

#[test]
fn ctx_load_at_exact_end_succeeds() {
    let end = CTX_SIZE as i16;
    for (size, bytes) in [(Size::B, 1), (Size::H, 2), (Size::W, 4), (Size::DW, 8)] {
        let ret = both_tiers(
            ctx_copy().ldx(size, R0, R2, end - bytes).exit(),
            &[],
            no_maps,
        )
        .expect("flush-to-end context load succeeds");
        assert_eq!(ret, 0, "default context tail bytes are zero");
    }
}

#[test]
fn ctx_load_straddling_end_faults_identically() {
    let end = CTX_SIZE as i16;
    for (size, bytes) in [(Size::H, 2), (Size::W, 4), (Size::DW, 8)] {
        let err = both_tiers(
            ctx_copy().ldx(size, R0, R2, end - bytes + 1).exit(),
            &[],
            no_maps,
        )
        .expect_err("straddling load faults");
        assert!(matches!(err, VmError::MemoryOutOfBounds { .. }), "{err:?}");
    }
    // One past the end lands in the gap between regions.
    let err = both_tiers(ctx_copy().ldx(Size::B, R0, R2, end).exit(), &[], no_maps)
        .expect_err("gap load faults");
    assert!(matches!(err, VmError::MemoryOutOfBounds { .. }));
}

#[test]
fn ctx_store_rejected_as_read_only() {
    let err = both_tiers(
        ctx_copy().mov64_imm(R0, 0).st(Size::W, R2, 0, 1).exit(),
        &[],
        no_maps,
    )
    .expect_err("context is read-only");
    assert!(matches!(err, VmError::WriteToReadOnly { .. }), "{err:?}");
}

#[test]
fn packet_load_at_exact_end_succeeds() {
    let pkt: Vec<u8> = (1..=16).collect();
    for (size, bytes, want) in [
        (Size::B, 1i16, 0x10u64),
        (Size::H, 2, 0x100f),
        (Size::W, 4, 0x100f_0e0d),
        (Size::DW, 8, 0x100f_0e0d_0c0b_0a09),
    ] {
        let ret = both_tiers(
            pkt_copy().ldx(size, R0, R2, 16 - bytes).exit(),
            &pkt,
            no_maps,
        )
        .expect("flush-to-end packet load succeeds");
        assert_eq!(ret, want, "little-endian load of the packet tail");
    }
}

#[test]
fn packet_load_straddling_end_faults_identically() {
    let pkt = [0u8; 16];
    for (size, bytes) in [(Size::B, 1i16), (Size::H, 2), (Size::W, 4), (Size::DW, 8)] {
        let err = both_tiers(
            pkt_copy().ldx(size, R0, R2, 16 - bytes + 1).exit(),
            &pkt,
            no_maps,
        )
        .expect_err("straddling packet load faults");
        assert!(matches!(err, VmError::MemoryOutOfBounds { .. }), "{err:?}");
    }
}

#[test]
fn empty_packet_rejects_every_load() {
    let err = both_tiers(pkt_copy().ldx(Size::B, R0, R2, 0).exit(), &[], no_maps)
        .expect_err("zero-length packet region");
    assert!(matches!(err, VmError::MemoryOutOfBounds { .. }));
}

#[test]
fn packet_store_rejected_as_read_only() {
    let pkt = [0u8; 16];
    let err = both_tiers(
        pkt_copy().mov64_imm(R0, 0).st(Size::B, R2, 0, 1).exit(),
        &pkt,
        no_maps,
    )
    .expect_err("packet is read-only");
    assert!(matches!(err, VmError::WriteToReadOnly { .. }), "{err:?}");
}

#[test]
fn stack_bottom_roundtrip_at_exact_limit() {
    // fp - STACK_SIZE is the lowest addressable byte; a DW there is the
    // deepest legal access. Store through the laundered pointer, load
    // back through fp (the jit's elided-check path) — both tiers agree.
    let low = -(STACK_SIZE as i16);
    let ret = both_tiers(
        fp_copy()
            .mov64_imm(R3, 0x7a)
            .stx(Size::DW, R2, R3, low)
            .ldx(Size::DW, R0, R10, low)
            .exit(),
        &[],
        no_maps,
    )
    .expect("deepest stack slot is addressable");
    assert_eq!(ret, 0x7a);
}

#[test]
fn stack_access_below_limit_faults_identically() {
    let low = -(STACK_SIZE as i16);
    // One byte below the stack floor.
    let err = both_tiers(fp_copy().ldx(Size::B, R0, R2, low - 1).exit(), &[], no_maps)
        .expect_err("below-floor load faults");
    assert!(matches!(err, VmError::MemoryOutOfBounds { .. }));
    // A DW that begins in-bounds but straddles the floor.
    let err = both_tiers(
        fp_copy()
            .mov64_imm(R0, 0)
            .stx(Size::DW, R2, R1, low - 4)
            .exit(),
        &[],
        no_maps,
    )
    .expect_err("floor-straddling store faults");
    assert!(matches!(err, VmError::MemoryOutOfBounds { .. }));
}

#[test]
fn stack_top_is_exclusive() {
    // fp itself is one past the last stack byte: a load at offset 0
    // faults, the highest legal DW sits at fp-8, and a DW straddling the
    // top (fp-4) faults.
    let err = both_tiers(fp_copy().ldx(Size::B, R0, R2, 0).exit(), &[], no_maps)
        .expect_err("fp points one past the stack");
    assert!(matches!(err, VmError::MemoryOutOfBounds { .. }));
    let ret = both_tiers(
        fp_copy()
            .mov64_imm(R3, 9)
            .stx(Size::DW, R2, R3, -8)
            .ldx(Size::DW, R0, R10, -8)
            .exit(),
        &[],
        no_maps,
    )
    .expect("highest DW slot works");
    assert_eq!(ret, 9);
    let err = both_tiers(fp_copy().ldx(Size::DW, R0, R2, -4).exit(), &[], no_maps)
        .expect_err("top-straddling load faults");
    assert!(matches!(err, VmError::MemoryOutOfBounds { .. }));
}

/// A program prologue that leaves a pointer to map 0's value for key 0
/// in `r0` (aborting with `ret = 0` if the lookup misses).
fn lookup_value_ptr() -> Asm {
    Asm::new()
        .st(Size::W, R10, -4, 0)
        .ld_map_fd(R1, 0)
        .mov64(R2, R10)
        .add64_imm(R2, -4)
        .call(helper_ids::MAP_LOOKUP_ELEM)
        .jmp_imm(vnet_ebpf::asm::Cond::Ne, R0, 0, "hit")
        .exit()
        .label("hit")
}

fn one_array_map() -> MapRegistry {
    let mut m = MapRegistry::new();
    m.create(MapDef::array(8, 4), 1).unwrap();
    m
}

#[test]
fn map_value_access_at_exact_end_succeeds() {
    // Value size is 8: a W store at offset 4 ends flush with the value.
    let ret = both_tiers(
        lookup_value_ptr()
            .st(Size::W, R0, 4, 0x55)
            .ldx(Size::DW, R0, R0, 0)
            .exit(),
        &[],
        one_array_map,
    )
    .expect("flush-to-end value access succeeds");
    assert_eq!(ret, 0x55u64 << 32);
}

#[test]
fn map_value_access_straddling_end_faults_identically() {
    for (size, off) in [(Size::DW, 4i16), (Size::W, 6), (Size::H, 7), (Size::B, 8)] {
        let err = both_tiers(
            lookup_value_ptr().ldx(size, R0, R0, off).exit(),
            &[],
            one_array_map,
        )
        .expect_err("straddling value access faults");
        assert!(matches!(err, VmError::MemoryOutOfBounds { .. }), "{err:?}");
    }
}

#[test]
fn map_value_writes_visible_to_host_on_both_tiers() {
    // The boundary-respecting write path must leave identical bytes in
    // the map on both tiers, byte for byte.
    let insns = lookup_value_ptr()
        .mov64_imm(R2, 0x0102_0304)
        .stx(Size::W, R0, R2, 4)
        .st(Size::H, R0, 2, 0x0a0b)
        .mov64_imm(R0, 0)
        .exit()
        .build()
        .unwrap();
    let maps = one_array_map();
    let prog = Program::new("edge", AttachType::Kprobe("f".into()), insns);
    let loaded = load(prog, &maps, &standard_helpers()).unwrap();
    let ctx = TraceContext::default();
    let mut maps_i = one_array_map();
    let mut maps_j = one_array_map();
    Vm::new()
        .execute(&loaded, &ctx, &[], &mut maps_i, &mut FixedEnv::default())
        .unwrap();
    vnet_ebpf::jit::compile(&loaded)
        .execute(&ctx, &[], &mut maps_j, &mut FixedEnv::default())
        .unwrap();
    let key = 0u32.to_le_bytes();
    let want = maps_i.get_mut(0).unwrap().lookup(&key, 0).unwrap().to_vec();
    let got = maps_j.get_mut(0).unwrap().lookup(&key, 0).unwrap().to_vec();
    assert_eq!(want, got);
    assert_eq!(want, [0, 0, 0x0b, 0x0a, 0x04, 0x03, 0x02, 0x01]);
}
