//! The eBPF instruction set.
//!
//! Instructions use the Linux eBPF encoding: a 64-bit slot holding an 8-bit
//! opcode, 4-bit destination and source registers, a 16-bit signed offset
//! and a 32-bit signed immediate. 64-bit immediate loads (`lddw`) occupy
//! two slots. Opcode values match the kernel's `bpf.h` so that programs
//! assembled here are byte-compatible with real eBPF bytecode.

use serde::{Deserialize, Serialize};

/// Number of general-purpose registers (r0–r10).
pub const NUM_REGS: usize = 11;
/// The read-only frame-pointer register.
pub const REG_FP: u8 = 10;
/// Size of a program's stack frame in bytes (as in Linux).
pub const STACK_SIZE: usize = 512;
/// Maximum number of instructions the verifier accepts (paper §II:
/// "the eBPF program is limited by its size, which allows at most 4k
/// instructions").
pub const MAX_INSNS: usize = 4096;

// --- Instruction classes (low 3 bits of the opcode) ---
/// Immediate 64-bit load class.
pub const BPF_LD: u8 = 0x00;
/// Register memory load class.
pub const BPF_LDX: u8 = 0x01;
/// Immediate memory store class.
pub const BPF_ST: u8 = 0x02;
/// Register memory store class.
pub const BPF_STX: u8 = 0x03;
/// 32-bit ALU class.
pub const BPF_ALU: u8 = 0x04;
/// 64-bit jump class.
pub const BPF_JMP: u8 = 0x05;
/// 32-bit jump class.
pub const BPF_JMP32: u8 = 0x06;
/// 64-bit ALU class.
pub const BPF_ALU64: u8 = 0x07;

// --- Size modifiers (bits 3–4) for load/store ---
/// 4-byte access.
pub const BPF_W: u8 = 0x00;
/// 2-byte access.
pub const BPF_H: u8 = 0x08;
/// 1-byte access.
pub const BPF_B: u8 = 0x10;
/// 8-byte access.
pub const BPF_DW: u8 = 0x18;

// --- Mode modifiers (bits 5–7) for load/store ---
/// Immediate load mode (`lddw`).
pub const BPF_IMM: u8 = 0x00;
/// Regular memory access mode.
pub const BPF_MEM: u8 = 0x60;
/// Atomic read-modify-write mode (`BPF_STX` only).
pub const BPF_ATOMIC: u8 = 0xc0;
/// `imm` flag on atomic ops: also return the old value in the source
/// register (`BPF_FETCH`).
pub const BPF_FETCH: i32 = 0x01;

// --- Source modifier (bit 3) for ALU/JMP ---
/// Operand is the immediate.
pub const BPF_K: u8 = 0x00;
/// Operand is the source register.
pub const BPF_X: u8 = 0x08;

// --- ALU operations (bits 4–7) ---
/// Addition.
pub const BPF_ADD: u8 = 0x00;
/// Subtraction.
pub const BPF_SUB: u8 = 0x10;
/// Multiplication.
pub const BPF_MUL: u8 = 0x20;
/// Unsigned division.
pub const BPF_DIV: u8 = 0x30;
/// Bitwise OR.
pub const BPF_OR: u8 = 0x40;
/// Bitwise AND.
pub const BPF_AND: u8 = 0x50;
/// Left shift.
pub const BPF_LSH: u8 = 0x60;
/// Logical right shift.
pub const BPF_RSH: u8 = 0x70;
/// Negation.
pub const BPF_NEG: u8 = 0x80;
/// Unsigned modulo.
pub const BPF_MOD: u8 = 0x90;
/// Bitwise XOR.
pub const BPF_XOR: u8 = 0xa0;
/// Move.
pub const BPF_MOV: u8 = 0xb0;
/// Arithmetic right shift.
pub const BPF_ARSH: u8 = 0xc0;
/// Endianness conversion.
pub const BPF_END: u8 = 0xd0;

// --- Jump operations (bits 4–7) ---
/// Unconditional jump.
pub const BPF_JA: u8 = 0x00;
/// Jump if equal.
pub const BPF_JEQ: u8 = 0x10;
/// Jump if unsigned greater-than.
pub const BPF_JGT: u8 = 0x20;
/// Jump if unsigned greater-or-equal.
pub const BPF_JGE: u8 = 0x30;
/// Jump if `dst & src`.
pub const BPF_JSET: u8 = 0x40;
/// Jump if not equal.
pub const BPF_JNE: u8 = 0x50;
/// Jump if signed greater-than.
pub const BPF_JSGT: u8 = 0x60;
/// Jump if signed greater-or-equal.
pub const BPF_JSGE: u8 = 0x70;
/// Helper call.
pub const BPF_CALL: u8 = 0x80;
/// Program exit.
pub const BPF_EXIT: u8 = 0x90;
/// Jump if unsigned less-than.
pub const BPF_JLT: u8 = 0xa0;
/// Jump if unsigned less-or-equal.
pub const BPF_JLE: u8 = 0xb0;
/// Jump if signed less-than.
pub const BPF_JSLT: u8 = 0xc0;
/// Jump if signed less-or-equal.
pub const BPF_JSLE: u8 = 0xd0;

/// `src` value marking an `lddw` whose immediate is a map fd
/// (`BPF_PSEUDO_MAP_FD` in the kernel).
pub const PSEUDO_MAP_FD: u8 = 1;

/// One eBPF instruction slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Insn {
    /// Operation code.
    pub opcode: u8,
    /// Destination register (0–10).
    pub dst: u8,
    /// Source register (0–10).
    pub src: u8,
    /// Signed 16-bit offset (jumps, memory).
    pub off: i16,
    /// Signed 32-bit immediate.
    pub imm: i32,
}

impl Insn {
    /// Creates an instruction.
    pub const fn new(opcode: u8, dst: u8, src: u8, off: i16, imm: i32) -> Self {
        Insn {
            opcode,
            dst,
            src,
            off,
            imm,
        }
    }

    /// The instruction class (low three opcode bits).
    pub const fn class(&self) -> u8 {
        self.opcode & 0x07
    }

    /// Whether this is the first slot of a two-slot `lddw`.
    pub const fn is_lddw(&self) -> bool {
        self.opcode == BPF_LD | BPF_IMM | BPF_DW
    }

    /// Encodes into the 8-byte kernel wire format (little-endian fields).
    pub fn encode(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0] = self.opcode;
        out[1] = (self.src << 4) | (self.dst & 0x0f);
        out[2..4].copy_from_slice(&self.off.to_le_bytes());
        out[4..8].copy_from_slice(&self.imm.to_le_bytes());
        out
    }

    /// Decodes from the 8-byte kernel wire format.
    pub fn decode(bytes: [u8; 8]) -> Self {
        Insn {
            opcode: bytes[0],
            dst: bytes[1] & 0x0f,
            src: bytes[1] >> 4,
            off: i16::from_le_bytes([bytes[2], bytes[3]]),
            imm: i32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
        }
    }
}

/// Encodes a program to its kernel wire format (8 bytes per slot).
pub fn encode_program(insns: &[Insn]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insns.len() * 8);
    for insn in insns {
        out.extend_from_slice(&insn.encode());
    }
    out
}

/// Decodes a program from its kernel wire format.
///
/// Returns `None` if the byte length is not a multiple of 8.
pub fn decode_program(bytes: &[u8]) -> Option<Vec<Insn>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| Insn::decode([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let insn = Insn::new(BPF_ALU64 | BPF_MOV | BPF_K, 3, 0, -2, -100);
        assert_eq!(Insn::decode(insn.encode()), insn);
        let insn2 = Insn::new(BPF_JMP | BPF_JEQ | BPF_X, 1, 9, 0x7fff, i32::MAX);
        assert_eq!(Insn::decode(insn2.encode()), insn2);
    }

    #[test]
    fn class_extraction() {
        assert_eq!(
            Insn::new(BPF_ALU64 | BPF_ADD | BPF_K, 0, 0, 0, 1).class(),
            BPF_ALU64
        );
        assert_eq!(
            Insn::new(BPF_LDX | BPF_MEM | BPF_W, 0, 1, 0, 0).class(),
            BPF_LDX
        );
        assert_eq!(Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0).class(), BPF_JMP);
    }

    #[test]
    fn lddw_detection() {
        assert!(Insn::new(BPF_LD | BPF_IMM | BPF_DW, 1, 0, 0, 42).is_lddw());
        assert!(!Insn::new(BPF_LDX | BPF_MEM | BPF_DW, 1, 1, 0, 0).is_lddw());
    }

    #[test]
    fn program_round_trip() {
        let prog = vec![
            Insn::new(BPF_ALU64 | BPF_MOV | BPF_K, 0, 0, 0, 7),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        let bytes = encode_program(&prog);
        assert_eq!(bytes.len(), 16);
        assert_eq!(decode_program(&bytes).unwrap(), prog);
        assert!(decode_program(&bytes[..15]).is_none());
    }

    #[test]
    fn register_fields_pack_into_one_byte() {
        let insn = Insn::new(BPF_ALU64 | BPF_MOV | BPF_X, 10, 7, 0, 0);
        let enc = insn.encode();
        assert_eq!(enc[1], (7 << 4) | 10);
    }
}
