//! # vnet-ebpf — an eBPF-compatible virtual machine
//!
//! vNetTracer's trace scripts are eBPF programs; this crate provides the
//! full in-kernel runtime the paper relies on, implemented from scratch:
//!
//! * [`insn`] — the Linux eBPF instruction encoding (byte-compatible);
//! * [`asm`] — an assembler with labels, used by vNetTracer's filter/action
//!   compiler;
//! * [`verifier`] — static safety checks, including the 4096-instruction
//!   limit the paper cites (§II) and loop rejection;
//! * [`vm`] — the interpreter, with a per-instruction cost model that
//!   feeds tracing overhead back into the simulated system;
//! * [`jit`] — the threaded-code tier: programs pre-decoded once into
//!   typed ops with resolved jumps, bound helper thunks and fused
//!   sequences, the simulator's stand-in for the kernel's JIT (§II);
//! * [`opt`] — the analysis-driven optimizer: constant/copy propagation,
//!   branch folding, redundant-load elimination and dead-code/dead-store
//!   removal over the verified CFG, with mandatory re-verification;
//! * [`cost`] — the shared static cost model and the longest-path
//!   worst-case certificate every loaded program carries;
//! * [`map`] — hash / array / per-CPU / perf-event maps (the perf buffer
//!   honours the paper's 32 B..128 KiB−16 size constraint);
//! * [`program`] — programs, attach types (kprobe, kretprobe, tracepoint,
//!   raw socket, uprobe) and the loader with map-fd relocation;
//! * [`context`] — the fixed-layout context handed to programs.
//!
//! ## Example
//!
//! ```
//! use vnet_ebpf::asm::{reg::*, Asm};
//! use vnet_ebpf::context::TraceContext;
//! use vnet_ebpf::map::MapRegistry;
//! use vnet_ebpf::program::{load, AttachType, Program};
//! use vnet_ebpf::vm::{standard_helpers, FixedEnv, Vm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let insns = Asm::new().mov64_imm(R0, 42).exit().build()?;
//! let prog = Program::new("answer", AttachType::Kprobe("net_rx_action".into()), insns);
//! let mut maps = MapRegistry::new();
//! let loaded = load(prog, &maps, &standard_helpers())?;
//! let mut env = FixedEnv::default();
//! let out = Vm::new().execute(&loaded, &TraceContext::default(), &[], &mut maps, &mut env)?;
//! assert_eq!(out.ret, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod asm;
pub mod context;
pub mod cost;
pub mod disasm;
pub mod insn;
pub mod jit;
pub mod map;
pub mod opt;
pub mod parse;
pub mod program;
pub mod tnum;
pub mod verifier;
pub mod vm;

pub use analysis::{
    analyze, Analysis, BranchFact, Diagnostic, InsnFact, MemFact, RegState, RegType,
};
pub use context::TraceContext;
pub use cost::{certify, render_cost_report, CostCertificate};
pub use disasm::disassemble;
pub use insn::{Insn, MAX_INSNS};
pub use jit::{compile, compile_with, CompileOpts, CompiledProgram, JitOutcome};
pub use map::{MapDef, MapRegistry, MapType};
pub use opt::{optimize, OptResult, OptStats};
pub use program::{load, load_with_opts, AttachType, LoadOpts, LoadedProgram, Program};
pub use tnum::Tnum;
pub use verifier::{verify, VerifyError};
pub use vm::{standard_helpers, ExecOutcome, Vm, VmEnv, VmError};
