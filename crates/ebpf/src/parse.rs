//! A parser for the disassembler's listing syntax — the inverse of
//! [`crate::disasm`].
//!
//! Accepts the kernel-verifier-style lines `disasm` emits (`r2 = *(u16
//! *)(r7 +12)`, `if r0 == 0 goto +3`, …) and rebuilds the bytecode, so a
//! listing can be edited by hand and reassembled, and so tests can assert
//! that disassembly loses no information (`asm → disasm → parse` must
//! reproduce the original instructions bit for bit).

use crate::insn::*;

/// Error produced when a listing line does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Zero-based line index within the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, String> {
    Err(message.into())
}

fn alu_opcode(sym: &str) -> Option<u8> {
    Some(match sym {
        "+=" => BPF_ADD,
        "-=" => BPF_SUB,
        "*=" => BPF_MUL,
        "/=" => BPF_DIV,
        "|=" => BPF_OR,
        "&=" => BPF_AND,
        "<<=" => BPF_LSH,
        ">>=" => BPF_RSH,
        "%=" => BPF_MOD,
        "^=" => BPF_XOR,
        "=" => BPF_MOV,
        "s>>=" => BPF_ARSH,
        _ => return None,
    })
}

fn jmp_opcode(sym: &str) -> Option<u8> {
    Some(match sym {
        "==" => BPF_JEQ,
        "!=" => BPF_JNE,
        ">" => BPF_JGT,
        ">=" => BPF_JGE,
        "<" => BPF_JLT,
        "<=" => BPF_JLE,
        "&" => BPF_JSET,
        "s>" => BPF_JSGT,
        "s>=" => BPF_JSGE,
        "s<" => BPF_JSLT,
        "s<=" => BPF_JSLE,
        _ => return None,
    })
}

fn size_bits(name: &str) -> Option<u8> {
    Some(match name {
        "u32" => BPF_W,
        "u16" => BPF_H,
        "u8" => BPF_B,
        "u64" => BPF_DW,
        _ => return None,
    })
}

/// Parses `r{n}` or `wr{n}`, returning `(narrow, reg)`.
fn parse_reg(tok: &str) -> Result<(bool, u8), String> {
    let (narrow, rest) = match tok.strip_prefix("wr") {
        Some(r) => (true, r),
        None => match tok.strip_prefix('r') {
            Some(r) => (false, r),
            None => return err(format!("expected register, got `{tok}`")),
        },
    };
    let n: u8 = rest
        .parse()
        .map_err(|_| format!("bad register number in `{tok}`"))?;
    if usize::from(n) >= NUM_REGS {
        return err(format!("register r{n} out of range"));
    }
    Ok((narrow, n))
}

fn parse_i32(tok: &str) -> Result<i32, String> {
    tok.parse()
        .map_err(|_| format!("expected immediate, got `{tok}`"))
}

fn parse_off(tok: &str) -> Result<i16, String> {
    tok.parse()
        .map_err(|_| format!("expected offset, got `{tok}`"))
}

/// A memory reference `({sz} *)(r{reg} {off:+})`, spread over three
/// whitespace tokens whose leading decoration varies by form.
fn parse_mem(size_tok: &str, reg_tok: &str, off_tok: &str) -> Result<(u8, u8, i16), String> {
    let size = size_bits(size_tok).ok_or_else(|| format!("bad access size `{size_tok}`"))?;
    let reg_tok = reg_tok
        .strip_prefix("*)(")
        .ok_or_else(|| format!("expected `*)(r…`, got `{reg_tok}`"))?;
    let (narrow, reg) = parse_reg(reg_tok)?;
    if narrow {
        return err("memory base register cannot be narrow");
    }
    let off = parse_off(off_tok)?;
    Ok((size, reg, off))
}

/// Strips a trailing `)` (or `),`) from the offset token of a memory
/// reference.
fn strip_close(tok: &str, suffix: &str) -> Result<String, String> {
    tok.strip_suffix(suffix)
        .map(str::to_owned)
        .ok_or_else(|| format!("expected `…{suffix}`, got `{tok}`"))
}

/// Parses one listing line (without a line-number prefix) into one slot,
/// or two for `lddw` forms.
pub fn parse_insn(text: &str) -> Result<Vec<Insn>, String> {
    let toks: Vec<&str> = text.split_whitespace().collect();
    match toks.as_slice() {
        ["exit"] => Ok(vec![Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0)]),
        ["call", imm] => Ok(vec![Insn::new(
            BPF_JMP | BPF_CALL,
            0,
            0,
            0,
            parse_i32(imm)?,
        )]),
        ["goto", off] => Ok(vec![Insn::new(BPF_JMP | BPF_JA, 0, 0, parse_off(off)?, 0)]),
        ["if", dst, sym, operand, "goto", off] => {
            let (narrow, dst) = parse_reg(dst)?;
            let op = jmp_opcode(sym).ok_or_else(|| format!("bad jump operator `{sym}`"))?;
            let class = if narrow { BPF_JMP32 } else { BPF_JMP };
            let off = parse_off(off)?;
            match parse_reg(operand) {
                Ok((src_narrow, src)) => {
                    if src_narrow != narrow {
                        return err("jump operand width mismatch");
                    }
                    Ok(vec![Insn::new(class | op | BPF_X, dst, src, off, 0)])
                }
                Err(_) => Ok(vec![Insn::new(
                    class | op | BPF_K,
                    dst,
                    0,
                    off,
                    parse_i32(operand)?,
                )]),
            }
        }
        ["lock", size, reg, off, "+=", src] => {
            let size = size
                .strip_prefix("*(")
                .ok_or_else(|| format!("expected `*({{size}}`, got `{size}`"))?;
            let off = strip_close(off, ")")?;
            let (size, dst, off) = parse_mem(size, reg, &off)?;
            if size != BPF_W && size != BPF_DW {
                return err("atomic add is word or double-word only");
            }
            let (narrow, src) = parse_reg(src)?;
            if narrow {
                return err("atomic source register cannot be narrow");
            }
            Ok(vec![Insn::new(
                BPF_STX | BPF_ATOMIC | size,
                dst,
                src,
                off,
                BPF_ADD as i32,
            )])
        }
        // `*({sz} *)(r{dst} {off:+}) = …` — store immediate or register.
        [size, reg, off, "=", value] if size.starts_with("*(") => {
            let size = size.strip_prefix("*(").expect("guarded").to_owned();
            let off = strip_close(off, ")")?;
            let (size, dst, off) = parse_mem(&size, reg, &off)?;
            match parse_reg(value) {
                Ok((narrow, src)) => {
                    if narrow {
                        return err("store source register cannot be narrow");
                    }
                    Ok(vec![Insn::new(BPF_STX | BPF_MEM | size, dst, src, off, 0)])
                }
                Err(_) => Ok(vec![Insn::new(
                    BPF_ST | BPF_MEM | size,
                    dst,
                    0,
                    off,
                    parse_i32(value)?,
                )]),
            }
        }
        // `r{src} = atomic_fetch_add(({sz} *)(r{dst} {off:+}), r{src})`
        [lhs, "=", size, reg, off, src] if size.starts_with("atomic_fetch_add((") => {
            let (narrow, lhs) = parse_reg(lhs)?;
            if narrow {
                return err("atomic destination register cannot be narrow");
            }
            let size = size.strip_prefix("atomic_fetch_add((").expect("guarded");
            let off = strip_close(off, "),")?;
            let (size, dst, off) = parse_mem(size, reg, &off)?;
            if size != BPF_W && size != BPF_DW {
                return err("atomic fetch-add is word or double-word only");
            }
            let src = strip_close(src, ")")?;
            let (narrow, src) = parse_reg(&src)?;
            if narrow || src != lhs {
                return err("atomic fetch-add must name the source register on both sides");
            }
            Ok(vec![Insn::new(
                BPF_STX | BPF_ATOMIC | size,
                dst,
                src,
                off,
                BPF_ADD as i32 | BPF_FETCH,
            )])
        }
        // `r{dst} = *({sz} *)(r{src} {off:+})` — memory load.
        [dst, "=", size, reg, off] if size.starts_with("*(") => {
            let (narrow, dst) = parse_reg(dst)?;
            if narrow {
                return err("load destination register cannot be narrow");
            }
            let size = size.strip_prefix("*(").expect("guarded");
            let off = strip_close(off, ")")?;
            let (size, src, off) = parse_mem(size, reg, &off)?;
            Ok(vec![Insn::new(BPF_LDX | BPF_MEM | size, dst, src, off, 0)])
        }
        // `r{dst} = {value:#x} ll` — 64-bit immediate load, two slots.
        [dst, "=", value, "ll"] => {
            let (narrow, dst) = parse_reg(dst)?;
            if narrow {
                return err("lddw destination register cannot be narrow");
            }
            let digits = value
                .strip_prefix("0x")
                .ok_or_else(|| format!("expected hex literal, got `{value}`"))?;
            let value = u64::from_str_radix(digits, 16)
                .map_err(|_| format!("bad hex literal `{value}`"))?;
            Ok(vec![
                Insn::new(BPF_LD | BPF_IMM | BPF_DW, dst, 0, 0, value as u32 as i32),
                Insn::new(0, 0, 0, 0, (value >> 32) as u32 as i32),
            ])
        }
        // `r{dst} = map_fd({fd})` — pseudo map load, two slots.
        [dst, "=", fd] if fd.starts_with("map_fd(") => {
            let (narrow, dst) = parse_reg(dst)?;
            if narrow {
                return err("map load destination register cannot be narrow");
            }
            let fd = fd.strip_prefix("map_fd(").expect("guarded");
            let fd = strip_close(fd, ")")?;
            Ok(vec![
                Insn::new(
                    BPF_LD | BPF_IMM | BPF_DW,
                    dst,
                    PSEUDO_MAP_FD,
                    0,
                    parse_i32(&fd)?,
                ),
                Insn::new(0, 0, 0, 0, 0),
            ])
        }
        // `r{dst} = be{bits} r{dst}` — endianness conversion.
        [dst, "=", be, rhs] if be.starts_with("be") => {
            let (narrow, dst) = parse_reg(dst)?;
            if narrow {
                return err("endian conversion register cannot be narrow");
            }
            let bits = parse_i32(be.strip_prefix("be").expect("guarded"))?;
            if !matches!(bits, 16 | 32 | 64) {
                return err(format!("bad endian width `{be}`"));
            }
            let (_, rhs) = parse_reg(rhs)?;
            if rhs != dst {
                return err("endian conversion must name the same register twice");
            }
            Ok(vec![Insn::new(BPF_ALU | BPF_END | BPF_X, dst, 0, 0, bits)])
        }
        // `{n}r{dst} = -{n}r{dst}` — negation.
        [dst, "=", rhs] if rhs.starts_with('-') && parse_reg(&rhs[1..]).is_ok() => {
            let (narrow, dst) = parse_reg(dst)?;
            let (rhs_narrow, rhs) = parse_reg(&rhs[1..]).expect("guarded");
            if rhs != dst || rhs_narrow != narrow {
                return err("negation must name the same register twice");
            }
            let class = if narrow { BPF_ALU } else { BPF_ALU64 };
            Ok(vec![Insn::new(class | BPF_NEG, dst, 0, 0, 0)])
        }
        // `{n}r{dst} {sym} {operand}` — ALU with register or immediate.
        [dst, sym, operand] => {
            let (narrow, dst) = parse_reg(dst)?;
            let op = alu_opcode(sym).ok_or_else(|| format!("bad ALU operator `{sym}`"))?;
            let class = if narrow { BPF_ALU } else { BPF_ALU64 };
            match parse_reg(operand) {
                Ok((src_narrow, src)) => {
                    if src_narrow != narrow {
                        return err("ALU operand width mismatch");
                    }
                    Ok(vec![Insn::new(class | op | BPF_X, dst, src, 0, 0)])
                }
                Err(_) => Ok(vec![Insn::new(
                    class | op | BPF_K,
                    dst,
                    0,
                    0,
                    parse_i32(operand)?,
                )]),
            }
        }
        [] => err("empty line"),
        _ => err(format!("unrecognized instruction `{text}`")),
    }
}

/// Parses a whole listing back into bytecode. Lines may carry the
/// `{index}: ` prefix [`crate::disasm::disassemble`] emits (it is
/// ignored) or be bare instruction text; blank lines are skipped, as are
/// `#` comment lines and everything after a `;` (the annotation marker
/// [`crate::disasm::disassemble_annotated`] uses), so annotated listings
/// and commented corpus files reassemble cleanly.
pub fn parse_program<S: AsRef<str>>(lines: &[S]) -> Result<Vec<Insn>, ParseError> {
    let mut out = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        let mut text = line.as_ref().trim();
        if text.starts_with('#') {
            continue;
        }
        if let Some((code, _comment)) = text.split_once(';') {
            text = code.trim();
        }
        if let Some((prefix, rest)) = text.split_once(':') {
            if prefix.trim().parse::<usize>().is_ok() {
                text = rest.trim();
            }
        }
        if text.is_empty() {
            continue;
        }
        let insns = parse_insn(text).map_err(|message| ParseError { line: i, message })?;
        out.extend(insns);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg::*, AluOp, Asm, Cond, Size};
    use crate::disasm::disassemble;

    fn round_trip(insns: Vec<Insn>) {
        let listing = disassemble(&insns);
        let parsed = parse_program(&listing).expect("listing parses");
        assert_eq!(parsed, insns, "listing: {listing:#?}");
    }

    #[test]
    fn alu_and_endian_forms_round_trip() {
        round_trip(
            Asm::new()
                .mov64_imm(R0, 42)
                .add64_imm(R0, -7)
                .alu64(AluOp::Xor, R0, R3)
                .mov32_imm(R2, 5)
                .neg64(R1)
                .be16(R4)
                .be64(R5)
                .exit()
                .build()
                .unwrap(),
        );
    }

    #[test]
    fn memory_and_atomic_forms_round_trip() {
        round_trip(
            Asm::new()
                .ldx(Size::H, R2, R7, 12)
                .stx(Size::DW, R10, R2, -8)
                .st(Size::B, R10, -16, 1)
                .atomic_add(Size::W, R1, R2, 0)
                .atomic_fetch_add(Size::DW, R1, R2, 8)
                .exit()
                .build()
                .unwrap(),
        );
    }

    #[test]
    fn jumps_and_wide_loads_round_trip() {
        round_trip(
            Asm::new()
                .jmp_imm(Cond::Eq, R1, 0, "end")
                .jmp32_imm(Cond::Ge, R2, 7, "end")
                .jmp_reg(Cond::SLt, R3, R4, "end")
                .lddw(R3, 0x1122_3344_5566_7788)
                .ld_map_fd(R1, 4)
                .call(5)
                .label("end")
                .mov64_imm(R0, 0)
                .exit()
                .build()
                .unwrap(),
        );
    }

    #[test]
    fn numbered_and_bare_lines_both_parse() {
        let bare = parse_program(&["r0 = 1", "exit"]).unwrap();
        let numbered = parse_program(&["   0: r0 = 1", "   1: exit"]).unwrap();
        assert_eq!(bare, numbered);
        assert_eq!(bare.len(), 2);
    }

    #[test]
    fn bad_lines_are_rejected_with_position() {
        let e = parse_program(&["exit", "r0 ?= 3"]).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("?="), "message: {}", e.message);
        assert!(parse_program(&["r99 = 1"]).is_err());
        assert!(parse_program(&["goto nowhere"]).is_err());
        assert!(parse_program(&["r1 = be17 r1"]).is_err());
        assert!(parse_program(&["r1 = -r2"]).is_err());
    }
}
