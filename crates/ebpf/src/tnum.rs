//! Tracked-number ("tnum") arithmetic: the known-bits abstract domain used by
//! the verifier's register state, modeled after the kernel's `tnum.c`.
//!
//! A tnum represents a set of concrete 64-bit values with a pair
//! `(value, mask)`: bits set in `mask` are unknown, bits clear in `mask` are
//! known and equal to the corresponding bit of `value`. The invariant
//! `value & mask == 0` always holds (a known bit cannot also be unknown).

/// A tracked number: partially-known 64-bit value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tnum {
    /// Known bit values. Only meaningful where `mask` is 0.
    pub value: u64,
    /// Unknown-bit mask: set bits are unknown.
    pub mask: u64,
}

impl Tnum {
    /// A fully known constant.
    pub const fn constant(v: u64) -> Self {
        Tnum { value: v, mask: 0 }
    }

    /// A fully unknown value.
    pub const fn unknown() -> Self {
        Tnum {
            value: 0,
            mask: u64::MAX,
        }
    }

    /// True if every bit is known (the tnum denotes exactly one value).
    pub const fn is_const(&self) -> bool {
        self.mask == 0
    }

    /// True if the tnum denotes a set containing `v`.
    pub fn contains(&self, v: u64) -> bool {
        (v & !self.mask) == self.value
    }

    /// True if every value this tnum denotes is also denoted by `other`.
    pub fn is_subset_of(&self, other: &Tnum) -> bool {
        // other must not know any bit self doesn't know, and on bits both
        // know they must agree.
        (self.mask & !other.mask) == 0 && (self.value & !other.mask) == other.value
    }

    /// Greatest lower bound: the tnum containing exactly the values both
    /// operands can denote, or `None` when the known bits conflict (the
    /// intersection is empty).
    pub fn meet(self, other: Tnum) -> Option<Tnum> {
        // Bits known on either side must agree where both are known.
        if (self.value ^ other.value) & !(self.mask | other.mask) != 0 {
            return None;
        }
        let mask = self.mask & other.mask;
        Some(Tnum {
            value: (self.value | other.value) & !mask,
            mask,
        })
    }

    /// Least upper bound: the smallest tnum containing both operand sets.
    pub fn join(self, other: Tnum) -> Tnum {
        // Bits that differ in value, or are unknown on either side, are unknown.
        let mu = self.mask | other.mask | (self.value ^ other.value);
        Tnum {
            value: self.value & !mu,
            mask: mu,
        }
    }

    /// Abstract addition (kernel `tnum_add`). Named after the kernel
    /// helper, not `std::ops::Add` — abstract operations are not the
    /// concrete arithmetic the operator traits promise.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Tnum) -> Tnum {
        let sm = self.mask.wrapping_add(other.mask);
        let sv = self.value.wrapping_add(other.value);
        let sigma = sm.wrapping_add(sv);
        let chi = sigma ^ sv;
        let mu = chi | self.mask | other.mask;
        Tnum {
            value: sv & !mu,
            mask: mu,
        }
    }

    /// Abstract subtraction (kernel `tnum_sub`).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Tnum) -> Tnum {
        let dv = self.value.wrapping_sub(other.value);
        let alpha = dv.wrapping_add(self.mask);
        let beta = dv.wrapping_sub(other.mask);
        let chi = alpha ^ beta;
        let mu = chi | self.mask | other.mask;
        Tnum {
            value: dv & !mu,
            mask: mu,
        }
    }

    /// Abstract bitwise AND.
    pub fn and(self, other: Tnum) -> Tnum {
        let alpha = self.value | self.mask;
        let beta = other.value | other.mask;
        let v = self.value & other.value;
        Tnum {
            value: v,
            mask: alpha & beta & !v,
        }
    }

    /// Abstract bitwise OR.
    pub fn or(self, other: Tnum) -> Tnum {
        let v = self.value | other.value;
        let mu = self.mask | other.mask;
        Tnum {
            value: v,
            mask: mu & !v,
        }
    }

    /// Abstract bitwise XOR.
    pub fn xor(self, other: Tnum) -> Tnum {
        let v = self.value ^ other.value;
        let mu = self.mask | other.mask;
        Tnum {
            value: v & !mu,
            mask: mu,
        }
    }

    /// Abstract left shift by a known amount.
    pub fn lshift(self, shift: u32) -> Tnum {
        let shift = shift & 63;
        Tnum {
            value: self.value << shift,
            mask: self.mask << shift,
        }
    }

    /// Abstract logical right shift by a known amount.
    pub fn rshift(self, shift: u32) -> Tnum {
        let shift = shift & 63;
        Tnum {
            value: self.value >> shift,
            mask: self.mask >> shift,
        }
    }

    /// Abstract arithmetic right shift by a known amount.
    pub fn arshift(self, shift: u32) -> Tnum {
        let shift = shift & 63;
        Tnum {
            value: ((self.value as i64) >> shift) as u64,
            mask: ((self.mask as i64) >> shift) as u64,
        }
    }

    /// Abstract multiplication (kernel `tnum_mul`, decomposition by bits of self).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Tnum) -> Tnum {
        let acc_v = self.value.wrapping_mul(other.value);
        let mut acc_m = Tnum::constant(0);
        let mut a = self;
        let mut b = other;
        while a.value != 0 || a.mask != 0 {
            if a.value & 1 != 0 {
                acc_m = acc_m.add(Tnum {
                    value: 0,
                    mask: b.mask,
                });
            } else if a.mask & 1 != 0 {
                acc_m = acc_m.add(Tnum {
                    value: 0,
                    mask: b.value | b.mask,
                });
            }
            a = a.rshift(1);
            b = b.lshift(1);
        }
        Tnum::constant(acc_v).add(acc_m)
    }

    /// Truncate to the low 32 bits (ALU32 result semantics: upper bits zeroed).
    pub fn subreg(self) -> Tnum {
        Tnum {
            value: self.value as u32 as u64,
            mask: self.mask as u32 as u64,
        }
    }

    /// Unsigned minimum value this tnum can denote.
    pub fn umin(&self) -> u64 {
        self.value
    }

    /// Unsigned maximum value this tnum can denote.
    pub fn umax(&self) -> u64 {
        self.value | self.mask
    }
}

impl core::fmt::Display for Tnum {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_const() {
            write!(f, "{:#x}", self.value)
        } else if *self == Tnum::unknown() {
            write!(f, "?")
        } else {
            write!(f, "(v={:#x},m={:#x})", self.value, self.mask)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All concrete values a (small) tnum denotes, for brute-force soundness.
    fn enumerate(t: Tnum, width: u32) -> Vec<u64> {
        let lim = 1u64 << width;
        (0..lim).filter(|&v| t.contains(v)).collect()
    }

    /// A small universe of 4-bit tnums for exhaustive pairwise checks.
    fn universe() -> Vec<Tnum> {
        let mut out = Vec::new();
        for mask in 0u64..16 {
            for value in 0u64..16 {
                if value & mask == 0 {
                    out.push(Tnum { value, mask });
                }
            }
        }
        out
    }

    fn check_binop(f: fn(Tnum, Tnum) -> Tnum, g: fn(u64, u64) -> u64) {
        for &a in &universe() {
            for &b in &universe() {
                let r = f(a, b);
                for av in enumerate(a, 4) {
                    for bv in enumerate(b, 4) {
                        let cv = g(av, bv);
                        assert!(
                            r.contains(cv),
                            "unsound: {a} op {b} -> {r} missing {av} op {bv} = {cv:#x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn add_sound() {
        check_binop(Tnum::add, |a, b| a.wrapping_add(b));
    }

    #[test]
    fn sub_sound() {
        check_binop(Tnum::sub, |a, b| a.wrapping_sub(b));
    }

    #[test]
    fn and_sound() {
        check_binop(Tnum::and, |a, b| a & b);
    }

    #[test]
    fn or_sound() {
        check_binop(Tnum::or, |a, b| a | b);
    }

    #[test]
    fn xor_sound() {
        check_binop(Tnum::xor, |a, b| a ^ b);
    }

    #[test]
    fn mul_sound() {
        check_binop(Tnum::mul, |a, b| a.wrapping_mul(b));
    }

    #[test]
    fn shifts_sound() {
        for &a in &universe() {
            for sh in 0..8u32 {
                let l = a.lshift(sh);
                let r = a.rshift(sh);
                let ar = a.arshift(sh);
                for av in enumerate(a, 4) {
                    assert!(l.contains(av << sh), "lshift unsound");
                    assert!(r.contains(av >> sh), "rshift unsound");
                    assert!(ar.contains(((av as i64) >> sh) as u64), "arshift unsound");
                }
            }
        }
    }

    #[test]
    fn meet_is_glb() {
        for &a in &universe() {
            for &b in &universe() {
                let m = a.meet(b);
                for v in 0u64..16 {
                    let in_both = a.contains(v) && b.contains(v);
                    match m {
                        Some(m) => {
                            assert_eq!(m.contains(v), in_both, "meet of {a} and {b} wrong at {v}")
                        }
                        None => assert!(!in_both, "meet of {a} and {b} empty but share {v}"),
                    }
                }
            }
        }
    }

    #[test]
    fn join_is_lub() {
        for &a in &universe() {
            for &b in &universe() {
                let j = a.join(b);
                assert!(a.is_subset_of(&j), "{a} not subset of join {j}");
                assert!(b.is_subset_of(&j), "{b} not subset of join {j}");
            }
        }
    }

    #[test]
    fn constants_exact() {
        let c = Tnum::constant(42);
        assert!(c.is_const());
        assert_eq!(c.umin(), 42);
        assert_eq!(c.umax(), 42);
        assert!(c.contains(42));
        assert!(!c.contains(41));
        assert_eq!(c.add(Tnum::constant(8)), Tnum::constant(50));
        assert_eq!(c.and(Tnum::constant(0xf)), Tnum::constant(10));
    }

    #[test]
    fn subreg_truncates() {
        let t = Tnum {
            value: 0xdead_beef_0000_1234,
            mask: 0xff00,
        };
        let s = t.subreg();
        assert_eq!(s.value, 0x1234);
        assert_eq!(s.mask, 0xff00);
        assert_eq!(s.umax() >> 32, 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tnum::constant(16).to_string(), "0x10");
        assert_eq!(Tnum::unknown().to_string(), "?");
        assert_eq!(Tnum { value: 2, mask: 1 }.to_string(), "(v=0x2,m=0x1)");
    }
}
