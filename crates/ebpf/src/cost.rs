//! The static cost model: per-op and per-helper charges, and the
//! longest-path worst-case certificate.
//!
//! The verifier's CFG is a DAG (backward jumps are rejected), so every
//! execution visits each instruction at most once and the worst-case
//! path cost is the longest path from the entry to any `exit` — an exact
//! bound computable in one forward pass, no widening, no loops to
//! summarise. [`certify`] runs that pass and attaches the result to the
//! loaded program; the certificate is *load-bearing*:
//!
//! * the agent rejects programs whose certified cost exceeds the
//!   configured probe budget **before** attaching them;
//! * the simulator charges the traced packet the per-path cost under
//!   the same table (the interpreter per retired instruction, the
//!   threaded tier per dispatched op), so the certificate is an upper
//!   bound on what any firing can ever cost the system;
//! * `vnt analyze` renders the per-instruction worst-case-to-here
//!   column from the same artifact.
//!
//! The table is deliberately coarse — dispatch-granularity integers, not
//! measured nanoseconds — but it is *shared*: the certifier, the
//! interpreter, the threaded tier and the simulator all charge from
//! these constants, which is what makes "certified ≥ actual" a checked
//! invariant rather than a hope (see the optimizer proptests).

use crate::analysis::Analysis;
use crate::insn::*;

/// Cost of one ALU op, move, endian swap or taken/kept branch: a single
/// dispatch.
pub const ALU_COST_NS: u64 = 1;
/// Cost of a memory load or store: dispatch plus region resolution.
pub const MEM_COST_NS: u64 = 2;
/// Cost of an atomic read-modify-write.
pub const ATOMIC_COST_NS: u64 = 4;
/// Dispatch cost of a helper call, on top of the helper's own charge.
pub const CALL_DISPATCH_COST_NS: u64 = 1;

/// Per-helper execution charge, on top of [`CALL_DISPATCH_COST_NS`].
/// Ids are [`crate::vm::helper_ids`]; unknown helpers get the default
/// charge (they abort at runtime anyway, so the bound stays sound).
pub fn helper_cost_ns(id: i32) -> u64 {
    use crate::vm::helper_ids::*;
    match id {
        MAP_LOOKUP_ELEM => 10,
        MAP_UPDATE_ELEM => 14,
        MAP_DELETE_ELEM => 12,
        KTIME_GET_NS => 4,
        TRACE_PRINTK => 8,
        GET_PRANDOM_U32 => 4,
        GET_SMP_PROCESSOR_ID => 2,
        PERF_EVENT_OUTPUT => 20,
        SKB_LOAD_BYTES => 8,
        _ => 10,
    }
}

/// The static charge for one instruction (an `lddw` pair counts once,
/// keyed on its first slot, matching how both tiers retire it).
pub fn insn_cost_ns(insn: &Insn) -> u64 {
    match insn.class() {
        BPF_LDX | BPF_ST => MEM_COST_NS,
        BPF_STX => {
            if insn.opcode & 0xe0 == BPF_ATOMIC {
                ATOMIC_COST_NS
            } else {
                MEM_COST_NS
            }
        }
        BPF_JMP if insn.opcode & 0xf0 == BPF_CALL => {
            CALL_DISPATCH_COST_NS + helper_cost_ns(insn.imm)
        }
        // ALU, lddw, jumps, exit: one dispatch each.
        _ => ALU_COST_NS,
    }
}

/// The certified worst-case execution cost of one program: the longest
/// path through its DAG CFG under the shared cost table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostCertificate {
    /// Worst-case cost of one execution, in model nanoseconds, excluding
    /// the fixed probe-entry cost ([`crate::vm::PROBE_BASE_COST_NS`]).
    pub worst_case_ns: u64,
    /// Worst-case instructions retired on any path (`lddw` counts one).
    pub worst_case_insns: u64,
    /// Per-slot worst-case cost *of any path reaching* the instruction,
    /// inclusive of the instruction itself; `None` for instructions no
    /// path reaches (dead code contributes nothing to the bound) and
    /// for `lddw` body slots.
    pub worst_to_here_ns: Vec<Option<u64>>,
}

impl CostCertificate {
    /// A zero certificate for an empty program.
    fn empty() -> Self {
        CostCertificate {
            worst_case_ns: 0,
            worst_case_insns: 0,
            worst_to_here_ns: Vec::new(),
        }
    }
}

/// Computes the cost certificate for a verified program.
///
/// Walks the instruction stream in index order (topological, since the
/// verifier rejects backward jumps) propagating the maximum cost and
/// instruction count over every CFG edge; the certificate is the maximum
/// over all `exit` instructions. `analysis` is only consulted for
/// reachability — statically dead instructions do not inflate the bound.
/// Conditional branches keep both edges even when the analysis decided
/// them: the bound must stay valid for the unoptimized runtime too.
pub fn certify(insns: &[Insn], analysis: &Analysis) -> CostCertificate {
    if insns.is_empty() {
        return CostCertificate::empty();
    }
    // (cost, insns) pair reaching each slot; entry starts at zero.
    let mut best: Vec<Option<(u64, u64)>> = vec![None; insns.len()];
    let mut to_here: Vec<Option<u64>> = vec![None; insns.len()];
    best[0] = Some((0, 0));
    let mut worst = (0u64, 0u64);

    let relax = |best: &mut Vec<Option<(u64, u64)>>, target: usize, cand: (u64, u64)| {
        if target >= best.len() {
            return;
        }
        let slot = &mut best[target];
        match slot {
            Some((c, n)) => {
                *c = (*c).max(cand.0);
                *n = (*n).max(cand.1);
            }
            None => *slot = Some(cand),
        }
    };

    let mut pc = 0usize;
    while pc < insns.len() {
        let insn = insns[pc];
        let width = if insn.is_lddw() { 2 } else { 1 };
        let Some((cost_in, insns_in)) = best[pc] else {
            // Unreachable from entry (or a jump target the analysis
            // proved dead): skip, it cannot be on any executed path.
            pc += width;
            continue;
        };
        if !analysis.fact(pc).reachable && pc != 0 {
            pc += width;
            continue;
        }
        let here = (cost_in + insn_cost_ns(&insn), insns_in + 1);
        to_here[pc] = Some(here.0);
        match insn.class() {
            BPF_JMP | BPF_JMP32 => match insn.opcode & 0xf0 {
                BPF_EXIT => {
                    worst.0 = worst.0.max(here.0);
                    worst.1 = worst.1.max(here.1);
                }
                BPF_JA => {
                    let t = (pc as i64 + 1 + i64::from(insn.off)) as usize;
                    relax(&mut best, t, here);
                }
                BPF_CALL => relax(&mut best, pc + 1, here),
                _ => {
                    let t = (pc as i64 + 1 + i64::from(insn.off)) as usize;
                    relax(&mut best, t, here);
                    relax(&mut best, pc + 1, here);
                }
            },
            _ => relax(&mut best, pc + width, here),
        }
        pc += width;
    }

    CostCertificate {
        worst_case_ns: worst.0,
        worst_case_insns: worst.1,
        worst_to_here_ns: to_here,
    }
}

/// Renders the shared kernel-style annotated listing: every instruction
/// with its per-op charge and worst-case-to-here column, the analysis
/// annotations (`disassemble_annotated`), and a certificate footer.
/// `vnt verify`, `vnt analyze` and the agent's over-budget report all
/// print this same form.
pub fn render_cost_report(insns: &[Insn], analysis: &Analysis, cert: &CostCertificate) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:>6}  {:>4}  insn", "worst", "cost");
    let annotated = crate::disasm::disassemble_annotated(insns, analysis);
    let mut pc = 0usize;
    for line in &annotated {
        let cost = insn_cost_ns(&insns[pc]);
        match cert.worst_to_here_ns.get(pc).copied().flatten() {
            Some(w) => {
                let _ = writeln!(out, "{w:>6}  {cost:>4}  {line}");
            }
            None => {
                let _ = writeln!(out, "{:>6}  {:>4}  {line}", "-", "-");
            }
        }
        pc += if insns[pc].is_lddw() { 2 } else { 1 };
    }
    let _ = writeln!(
        out,
        "certified worst-case: {} ns over {} insn(s) (+{} ns probe entry)",
        cert.worst_case_ns,
        cert.worst_case_insns,
        crate::vm::PROBE_BASE_COST_NS,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::asm::{reg::*, Asm, Cond, Size};
    use crate::vm::{standard_helpers, FixedEnv, Vm};

    fn certified(asm: Asm) -> (Vec<Insn>, CostCertificate) {
        let insns = asm.build().expect("assembles");
        let analysis = analyze(&insns, &standard_helpers(), |_| None);
        assert!(analysis.ok(), "{:?}", analysis.first_error());
        let cert = certify(&insns, &analysis);
        (insns, cert)
    }

    #[test]
    fn straight_line_sums_costs() {
        let (insns, cert) = certified(Asm::new().mov64_imm(R0, 1).add64_imm(R0, 2).exit());
        assert_eq!(cert.worst_case_insns, 3);
        // mov + add + exit, one ALU charge each.
        assert_eq!(cert.worst_case_ns, 3 * ALU_COST_NS);
        assert_eq!(cert.worst_to_here_ns.len(), insns.len());
        assert_eq!(cert.worst_to_here_ns[0], Some(ALU_COST_NS));
        assert_eq!(cert.worst_to_here_ns[2], Some(3 * ALU_COST_NS));
    }

    #[test]
    fn branches_take_the_longer_arm() {
        // The packet length is unknown statically, so neither arm is
        // dead: one is a single mov, the other three movs.
        let (_, cert) = certified(
            Asm::new()
                .ldx(Size::W, R2, R1, crate::context::CTX_OFF_PKT_LEN)
                .jmp_imm(Cond::Eq, R2, 0, "short")
                .mov64_imm(R0, 1)
                .mov64_imm(R0, 2)
                .mov64_imm(R0, 3)
                .exit()
                .label("short")
                .mov64_imm(R0, 0)
                .exit(),
        );
        // Entry load + branch + the 3-mov arm + exit.
        assert_eq!(cert.worst_case_insns, 6);
        assert_eq!(cert.worst_case_ns, MEM_COST_NS + 5 * ALU_COST_NS);
    }

    #[test]
    fn helpers_and_memory_are_charged() {
        let (_, cert) = certified(
            Asm::new()
                .st(Size::DW, R10, -8, 7)
                .ldx(Size::DW, R0, R10, -8)
                .call(crate::vm::helper_ids::KTIME_GET_NS)
                .exit(),
        );
        assert_eq!(
            cert.worst_case_ns,
            MEM_COST_NS * 2
                + CALL_DISPATCH_COST_NS
                + helper_cost_ns(crate::vm::helper_ids::KTIME_GET_NS)
                + ALU_COST_NS
        );
        assert_eq!(cert.worst_case_insns, 4);
    }

    #[test]
    fn lddw_counts_once() {
        let (insns, cert) = certified(Asm::new().lddw(R0, 0x1_0000_0000).exit());
        assert_eq!(insns.len(), 3);
        assert_eq!(cert.worst_case_insns, 2);
        assert_eq!(cert.worst_to_here_ns[1], None, "lddw body has no cost row");
    }

    #[test]
    fn interpreter_path_cost_never_exceeds_certificate() {
        let asm = Asm::new()
            .mov64_imm(R1, 5)
            .jmp_imm(Cond::Gt, R1, 3, "big")
            .mov64_imm(R0, 0)
            .exit()
            .label("big")
            .st(Size::W, R10, -4, 9)
            .ldx(Size::W, R0, R10, -4)
            .exit();
        let insns = asm.build().unwrap();
        let analysis = analyze(&insns, &standard_helpers(), |_| None);
        let cert = certify(&insns, &analysis);
        let prog = crate::program::Program::new(
            "p",
            crate::program::AttachType::Kprobe("f".into()),
            insns,
        );
        let loaded = crate::program::load_with_opts(
            prog,
            &crate::map::MapRegistry::new(),
            &standard_helpers(),
            &crate::program::LoadOpts { optimize: false },
        )
        .unwrap();
        let mut maps = crate::map::MapRegistry::new();
        let mut env = FixedEnv::default();
        let out = Vm::new()
            .execute(
                &loaded,
                &crate::context::TraceContext::default(),
                &[],
                &mut maps,
                &mut env,
            )
            .unwrap();
        assert!(out.cost_ns <= cert.worst_case_ns);
        assert!(out.insns_executed <= cert.worst_case_insns);
    }

    #[test]
    fn report_renders_cost_columns() {
        let (insns, cert) = certified(Asm::new().mov64_imm(R0, 0).exit());
        let analysis = analyze(&insns, &standard_helpers(), |_| None);
        let report = render_cost_report(&insns, &analysis, &cert);
        assert!(report.contains("certified worst-case"));
        assert!(report.contains("exit"));
    }
}
