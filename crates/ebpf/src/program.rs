//! Programs, attach types and the loader.
//!
//! Loading mirrors the kernel flow: a [`Program`] (bytecode + attach
//! metadata) passes through the verifier, its pseudo map-fd loads are
//! relocated against a live [`MapRegistry`], and the result is a
//! [`LoadedProgram`] ready for the interpreter.

use serde::{Deserialize, Serialize};

use crate::analysis::{analyze, Analysis};
use crate::cost::{certify, CostCertificate};
use crate::insn::{Insn, PSEUDO_MAP_FD};
use crate::map::MapRegistry;
use crate::opt::{optimize, OptStats};
use crate::verifier::VerifyError;
use crate::vm::MAP_HANDLE_BASE;

/// Where a program attaches — the paper's §III-B attach surface:
/// "kernel functions, return of kernel functions, kernel tracepoints and
/// raw sockets through kprobe, kretprobe, tracepoints and network
/// devices", plus user-level uprobes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttachType {
    /// Entry of a kernel function.
    Kprobe(String),
    /// Return of a kernel function.
    Kretprobe(String),
    /// A static kernel tracepoint (treated as a function-entry hook).
    Tracepoint(String),
    /// Raw-socket tap on a device's receive path.
    SocketRx(String),
    /// Raw-socket tap on a device's transmit path.
    SocketTx(String),
    /// User-level probe (application function entry).
    Uprobe(String),
}

impl AttachType {
    /// The name of the function or device this attaches to.
    pub fn target(&self) -> &str {
        match self {
            AttachType::Kprobe(s)
            | AttachType::Kretprobe(s)
            | AttachType::Tracepoint(s)
            | AttachType::SocketRx(s)
            | AttachType::SocketTx(s)
            | AttachType::Uprobe(s) => s,
        }
    }
}

impl core::fmt::Display for AttachType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AttachType::Kprobe(s) => write!(f, "kprobe:{s}"),
            AttachType::Kretprobe(s) => write!(f, "kretprobe:{s}"),
            AttachType::Tracepoint(s) => write!(f, "tracepoint:{s}"),
            AttachType::SocketRx(s) => write!(f, "socket-rx:{s}"),
            AttachType::SocketTx(s) => write!(f, "socket-tx:{s}"),
            AttachType::Uprobe(s) => write!(f, "uprobe:{s}"),
        }
    }
}

/// An unloaded program: bytecode plus attach metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable name (shown in diagnostics).
    pub name: String,
    /// The instruction stream.
    pub insns: Vec<Insn>,
    /// Where the program attaches.
    pub attach: AttachType,
}

impl Program {
    /// Creates a program.
    pub fn new(name: impl Into<String>, attach: AttachType, insns: Vec<Insn>) -> Self {
        Program {
            name: name.into(),
            insns,
            attach,
        }
    }
}

/// Errors from loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The verifier rejected the program.
    Verify(VerifyError),
    /// A pseudo map-fd load referenced an fd not present in the registry.
    UnknownMapFd {
        /// The offending fd.
        fd: i32,
        /// Instruction index.
        insn: usize,
    },
}

impl core::fmt::Display for LoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadError::Verify(e) => write!(f, "verifier rejected program: {e}"),
            LoadError::UnknownMapFd { fd, insn } => {
                write!(f, "unknown map fd {fd} at instruction {insn}")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Verify(e) => Some(e),
            LoadError::UnknownMapFd { .. } => None,
        }
    }
}

impl From<VerifyError> for LoadError {
    fn from(e: VerifyError) -> Self {
        LoadError::Verify(e)
    }
}

/// A verified, relocated program ready to execute.
#[derive(Debug, Clone)]
pub struct LoadedProgram {
    name: String,
    attach: AttachType,
    insns: Vec<Insn>,
    analysis: Analysis,
    opt_stats: OptStats,
    certificate: CostCertificate,
}

impl LoadedProgram {
    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attach point.
    pub fn attach(&self) -> &AttachType {
        &self.attach
    }

    /// The relocated instruction stream.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// The verifier's abstract-interpretation artifact: per-instruction
    /// proven facts (in-bounds accesses, nonzero divisors, decided
    /// branches) that the execution tiers may use to elide runtime
    /// checks. Relocation rewrites `lddw` immediates in place, so the
    /// instruction indices the facts are keyed on remain valid.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// What the optimizer did during loading (all-zero when loading
    /// with [`LoadOpts { optimize: false }`](LoadOpts)).
    pub fn opt_stats(&self) -> &OptStats {
        &self.opt_stats
    }

    /// The certified worst-case execution cost of this program, under
    /// the shared cost table in [`crate::cost`]. The agent checks this
    /// against the configured probe budget before attaching, and the
    /// interpreter/JIT dynamic costs can never exceed it.
    pub fn certificate(&self) -> &CostCertificate {
        &self.certificate
    }

    /// A human-readable listing of the program (kernel-verifier style).
    pub fn disassemble(&self) -> Vec<String> {
        crate::disasm::disassemble(&self.insns)
    }
}

/// Loader knobs. The default runs the [`crate::opt`] rewrite pipeline;
/// turning it off loads the raw verified stream (the differential
/// proptests and benches use this to pin raw and optimized behavior to
/// each other).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOpts {
    /// Run the optimizer between verification and relocation.
    pub optimize: bool,
}

impl Default for LoadOpts {
    fn default() -> Self {
        LoadOpts { optimize: true }
    }
}

/// Verifies `program` against `helpers` (the set of available helper ids),
/// optimizes it, and relocates its map references against `maps`.
///
/// # Errors
///
/// Returns [`LoadError::Verify`] for verifier rejections and
/// [`LoadError::UnknownMapFd`] for references to maps that do not exist.
pub fn load(
    program: Program,
    maps: &MapRegistry,
    helpers: &[i32],
) -> Result<LoadedProgram, LoadError> {
    load_with_opts(program, maps, helpers, &LoadOpts::default())
}

/// [`load`] with explicit [`LoadOpts`].
///
/// # Errors
///
/// Same contract as [`load`].
pub fn load_with_opts(
    program: Program,
    maps: &MapRegistry,
    helpers: &[i32],
    opts: &LoadOpts,
) -> Result<LoadedProgram, LoadError> {
    let map_value_size = |fd: i32| maps.get(fd).map(|m| m.def().value_size as u64);
    let analysis = analyze(&program.insns, helpers, map_value_size);
    if let Some(e) = analysis.first_error() {
        return Err(LoadError::Verify(e.clone()));
    }
    // The optimizer runs pre-relocation so its analysis facts are keyed
    // to the pseudo-fd form, then re-verifies its own output; loading
    // proceeds on the rewritten, re-verified stream.
    let (mut insns, analysis, opt_stats) = if opts.optimize {
        let r = optimize(&program.insns, helpers, &map_value_size);
        (r.insns, r.analysis, r.stats)
    } else {
        (program.insns, analysis, OptStats::default())
    };
    let certificate = certify(&insns, &analysis);
    let mut i = 0;
    while i < insns.len() {
        let insn = insns[i];
        if insn.is_lddw() {
            if insn.src == PSEUDO_MAP_FD {
                let fd = insn.imm;
                if maps.get(fd).is_none() {
                    return Err(LoadError::UnknownMapFd { fd, insn: i });
                }
                let handle = MAP_HANDLE_BASE | (fd as u32 as u64);
                insns[i].imm = handle as u32 as i32;
                insns[i].src = 0;
                insns[i + 1].imm = (handle >> 32) as u32 as i32;
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(LoadedProgram {
        name: program.name,
        attach: program.attach,
        insns,
        analysis,
        opt_stats,
        certificate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg::*, Asm};
    use crate::map::MapDef;

    #[test]
    fn attach_type_display_and_target() {
        assert_eq!(
            AttachType::Kprobe("net_rx_action".into()).to_string(),
            "kprobe:net_rx_action"
        );
        assert_eq!(AttachType::SocketRx("eth0".into()).target(), "eth0");
        assert_eq!(AttachType::Uprobe("main".into()).to_string(), "uprobe:main");
    }

    #[test]
    fn load_relocates_map_fds() {
        let mut maps = MapRegistry::new();
        let fd = maps.create(MapDef::array(8, 1), 1).unwrap();
        let insns = Asm::new()
            .ld_map_fd(R1, fd)
            .mov64_imm(R0, 0)
            .exit()
            .build()
            .unwrap();
        let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
        // Raw load: the optimizer would remove the dead handle load.
        let loaded = load_with_opts(prog, &maps, &[], &LoadOpts { optimize: false }).unwrap();
        let handle =
            (loaded.insns()[0].imm as u32 as u64) | ((loaded.insns()[1].imm as u32 as u64) << 32);
        assert_eq!(handle, MAP_HANDLE_BASE | fd as u64);
        assert_eq!(loaded.insns()[0].src, 0, "pseudo marker cleared");
        assert_eq!(loaded.name(), "p");
    }

    #[test]
    fn optimized_load_prunes_dead_map_handle() {
        let mut maps = MapRegistry::new();
        let fd = maps.create(MapDef::array(8, 1), 1).unwrap();
        let insns = Asm::new()
            .ld_map_fd(R1, fd)
            .mov64_imm(R0, 0)
            .exit()
            .build()
            .unwrap();
        let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
        let loaded = load(prog, &maps, &[]).unwrap();
        assert_eq!(loaded.insns().len(), 2, "dead lddw pruned");
        assert!(loaded.opt_stats().insns_eliminated() >= 2);
        assert!(loaded.opt_stats().reverified);
        assert!(loaded.certificate().worst_case_ns > 0);
    }

    #[test]
    fn load_rejects_unknown_map_fd() {
        let maps = MapRegistry::new();
        let insns = Asm::new()
            .ld_map_fd(R1, 3)
            .mov64_imm(R0, 0)
            .exit()
            .build()
            .unwrap();
        let prog = Program::new("p", AttachType::Kprobe("f".into()), insns);
        match load_with_opts(prog, &maps, &[], &LoadOpts { optimize: false }) {
            Err(LoadError::UnknownMapFd { fd: 3, insn: 0 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_runs_verifier() {
        // A program that falls off the end must be rejected.
        let insns = Asm::new().mov64_imm(R0, 0).build().unwrap();
        let prog = Program::new("bad", AttachType::Kprobe("f".into()), insns);
        assert!(matches!(
            load(prog, &MapRegistry::new(), &[]),
            Err(LoadError::Verify(_))
        ));
    }
}
