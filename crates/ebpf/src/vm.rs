//! The in-kernel eBPF virtual machine (interpreter).
//!
//! Executes verified, relocated programs against a [`TraceContext`] and a
//! read-only packet buffer. The VM emulates the kernel's flat address
//! space with tagged regions — context, packet, stack, and map values —
//! every access bounds-checked at runtime (the simulator's equivalent of
//! the kernel verifier's pointer tracking: an out-of-bounds access aborts
//! the program, it can never touch anything else).
//!
//! The VM also exposes the *cost model* used to charge tracing overhead to
//! the traced system: a fixed trampoline cost per probe firing plus a
//! per-instruction cost, approximating a JIT-compiled program (§II: "the
//! JIT compiling minimizes the execution overhead of the eBPF code").

use crate::context::{TraceContext, CTX_SIZE};
use crate::insn::*;
use crate::map::{MapError, MapRegistry};
use crate::program::LoadedProgram;

/// Base of the region where `lddw`-loaded map handles live. Looks like a
/// kernel pointer, as real map pointers do.
pub const MAP_HANDLE_BASE: u64 = 0xffff_8800_0000_0000;

pub(crate) const CTX_BASE: u64 = 0x0000_0000_1000_0000;
pub(crate) const PKT_BASE: u64 = 0x0000_0000_2000_0000;
pub(crate) const STACK_BASE: u64 = 0x0000_0000_3000_0000;
pub(crate) const MAP_VAL_BASE: u64 = 0x0000_0000_4000_0000;
pub(crate) const MAP_VAL_STRIDE: u64 = 1 << 20;

/// Fixed cost of entering a probe (trampoline + register save), in
/// simulated nanoseconds.
pub const PROBE_BASE_COST_NS: u64 = 25;
/// Cost per executed instruction, in simulated nanoseconds (JIT-compiled
/// eBPF executes close to native speed).
pub const COST_PER_INSN_NS: u64 = 1;

/// The simulated CPU time an interpreted program execution consumes.
pub fn execution_cost_ns(insns_executed: u64) -> u64 {
    PROBE_BASE_COST_NS + insns_executed * COST_PER_INSN_NS
}

/// One-time cost, per original instruction, of lowering a program to the
/// threaded-code tier (decode, jump resolution, helper binding). Charged
/// once per installed program, on its first execution.
pub const JIT_COMPILE_COST_PER_INSN_NS: u64 = 12;

/// The one-time compile cost of the threaded-code tier for a program of
/// `insn_count` instructions.
pub fn jit_compile_cost_ns(insn_count: usize) -> u64 {
    insn_count as u64 * JIT_COMPILE_COST_PER_INSN_NS
}

/// The simulated CPU time a compiled (threaded-code) execution consumes.
///
/// The per-op constant matches [`COST_PER_INSN_NS`], but `ops_executed`
/// counts *pre-decoded ops*, of which fused sequences (compare+branch,
/// map-lookup + null check, stack-store runs) retire several original
/// instructions each — so a compiled execution charges less than
/// [`execution_cost_ns`] would for the same path.
pub fn jit_execution_cost_ns(ops_executed: u64) -> u64 {
    PROBE_BASE_COST_NS + ops_executed * COST_PER_INSN_NS
}

/// Helper function ids (matching Linux `bpf.h` numbering).
pub mod helper_ids {
    /// `void *bpf_map_lookup_elem(map, key)`.
    pub const MAP_LOOKUP_ELEM: i32 = 1;
    /// `long bpf_map_update_elem(map, key, value, flags)`.
    pub const MAP_UPDATE_ELEM: i32 = 2;
    /// `long bpf_map_delete_elem(map, key)`.
    pub const MAP_DELETE_ELEM: i32 = 3;
    /// `u64 bpf_ktime_get_ns(void)` — reads the node's CLOCK_MONOTONIC
    /// (§III-B).
    pub const KTIME_GET_NS: i32 = 5;
    /// `long bpf_trace_printk(fmt, fmt_size)`.
    pub const TRACE_PRINTK: i32 = 6;
    /// `u32 bpf_get_prandom_u32(void)`.
    pub const GET_PRANDOM_U32: i32 = 7;
    /// `u32 bpf_get_smp_processor_id(void)`.
    pub const GET_SMP_PROCESSOR_ID: i32 = 8;
    /// `long bpf_perf_event_output(ctx, map, flags, data, size)`.
    pub const PERF_EVENT_OUTPUT: i32 = 25;
    /// `long bpf_skb_load_bytes(skb, offset, to, len)`.
    pub const SKB_LOAD_BYTES: i32 = 26;
}

/// A bound helper implementation: reads its arguments from `r1`–`r5`,
/// leaves its result in `r0`. Both execution tiers dispatch through
/// these; the threaded-code tier binds one per call site at compile time.
pub(crate) type HelperFn = fn(
    &mut [u64; NUM_REGS],
    &mut Memory<'_>,
    &mut MapRegistry,
    &mut dyn VmEnv,
    &mut Vec<u8>,
) -> Result<(), VmError>;

/// The single source of truth for which helpers exist: id → thunk.
/// [`standard_helpers`] (what the verifier accepts) and both execution
/// tiers (what actually runs) all derive from this table, so a helper
/// cannot be registered with the verifier but not the runtime, or vice
/// versa.
pub(crate) static HELPER_TABLE: &[(i32, HelperFn)] = &[
    (helper_ids::MAP_LOOKUP_ELEM, helper_map_lookup),
    (helper_ids::MAP_UPDATE_ELEM, helper_map_update),
    (helper_ids::MAP_DELETE_ELEM, helper_map_delete),
    (helper_ids::KTIME_GET_NS, helper_ktime_get_ns),
    (helper_ids::TRACE_PRINTK, helper_trace_printk),
    (helper_ids::GET_PRANDOM_U32, helper_get_prandom_u32),
    (
        helper_ids::GET_SMP_PROCESSOR_ID,
        helper_get_smp_processor_id,
    ),
    (helper_ids::PERF_EVENT_OUTPUT, helper_perf_event_output),
    (helper_ids::SKB_LOAD_BYTES, helper_skb_load_bytes),
];

/// Looks up the bound implementation of a helper id.
pub(crate) fn helper_by_id(id: i32) -> Option<HelperFn> {
    HELPER_TABLE
        .iter()
        .find(|(hid, _)| *hid == id)
        .map(|(_, f)| *f)
}

/// The set of helpers this VM implements (what the verifier accepts),
/// derived from [`HELPER_TABLE`].
pub fn standard_helpers() -> Vec<i32> {
    HELPER_TABLE.iter().map(|(id, _)| *id).collect()
}

/// Flag value for `perf_event_output` meaning "use the current CPU's
/// ring" (`BPF_F_CURRENT_CPU`).
pub const BPF_F_CURRENT_CPU: u64 = 0xffff_ffff;

/// Host services a program execution needs.
pub trait VmEnv {
    /// The node's `CLOCK_MONOTONIC`, in nanoseconds.
    fn ktime_get_ns(&mut self) -> u64;
    /// A pseudo-random 32-bit value.
    fn prandom_u32(&mut self) -> u32;
    /// The CPU the program runs on.
    fn smp_processor_id(&self) -> u32;
    /// Receives `bpf_trace_printk` output.
    fn trace_printk(&mut self, msg: &str) {
        let _ = msg;
    }
}

/// A fixed-value environment for tests and standalone use.
#[derive(Debug, Clone, Default)]
pub struct FixedEnv {
    /// Value returned by `ktime_get_ns`.
    pub time_ns: u64,
    /// Value returned by `smp_processor_id`.
    pub cpu: u32,
    /// Seed for the deterministic `prandom_u32` sequence.
    pub prandom_state: u64,
    /// Captured `trace_printk` output.
    pub printk: Vec<String>,
}

impl VmEnv for FixedEnv {
    fn ktime_get_ns(&mut self) -> u64 {
        self.time_ns
    }

    fn prandom_u32(&mut self) -> u32 {
        // SplitMix64 step — deterministic and well distributed.
        self.prandom_state = self.prandom_state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.prandom_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as u32
    }

    fn smp_processor_id(&self) -> u32 {
        self.cpu
    }

    fn trace_printk(&mut self, msg: &str) {
        self.printk.push(msg.to_owned());
    }
}

/// Runtime errors: a misbehaving program is aborted, never allowed to
/// touch anything outside its regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A load or store outside every region.
    MemoryOutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Access size.
        len: usize,
    },
    /// A store to a read-only region (context or packet).
    WriteToReadOnly {
        /// Faulting address.
        addr: u64,
    },
    /// A helper received something that is not a live map handle.
    BadMapHandle(u64),
    /// A map operation failed structurally (sizes, bounds).
    Map(MapError),
    /// A call to an unimplemented helper (should be caught at verify).
    UnknownHelper(i32),
    /// The instruction budget was exhausted.
    BudgetExceeded(u64),
    /// An instruction the interpreter cannot execute (should be caught at
    /// verify).
    BadInstruction(usize),
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::MemoryOutOfBounds { addr, len } => {
                write!(f, "out-of-bounds access of {len} bytes at {addr:#x}")
            }
            VmError::WriteToReadOnly { addr } => write!(f, "write to read-only {addr:#x}"),
            VmError::BadMapHandle(h) => write!(f, "bad map handle {h:#x}"),
            VmError::Map(e) => write!(f, "map operation failed: {e}"),
            VmError::UnknownHelper(id) => write!(f, "unknown helper {id}"),
            VmError::BudgetExceeded(n) => write!(f, "instruction budget {n} exceeded"),
            VmError::BadInstruction(i) => write!(f, "cannot execute instruction {i}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<MapError> for VmError {
    fn from(e: MapError) -> Self {
        VmError::Map(e)
    }
}

/// Result of a program execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// The program's return value (`r0` at exit).
    pub ret: u64,
    /// Instructions executed (drives [`execution_cost_ns`]).
    pub insns_executed: u64,
    /// The path's dynamic cost under the shared static cost table
    /// ([`crate::cost`]): per-op charges plus per-helper charges.
    /// Always bounded by the loaded program's
    /// [`certificate`](crate::program::LoadedProgram::certificate).
    pub cost_ns: u64,
    /// Runtime checks skipped because the verifier's analysis proved
    /// them redundant (in the interpreter tier: divisor zero-tests).
    pub checks_elided: u64,
}

/// A map key captured when a lookup allocates a value slot. Keys of up
/// to eight bytes (every key the standard trace scripts use) are stored
/// inline, so the per-lookup heap allocation is only paid for oversized
/// keys.
#[derive(Debug, Clone)]
pub(crate) enum KeyBuf {
    Inline { buf: [u8; 8], len: u8 },
    Heap(Vec<u8>),
}

impl KeyBuf {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            KeyBuf::Inline { buf, len } => &buf[..*len as usize],
            KeyBuf::Heap(v) => v,
        }
    }
}

#[derive(Debug, Clone)]
struct ValueSlot {
    fd: i32,
    key: KeyBuf,
    value_size: usize,
}

/// Value-slot table. The first two slots live inline — the standard
/// trace scripts perform at most a couple of lookups per run, so a
/// lookup-heavy execution allocates nothing; further slots spill to the
/// heap.
#[derive(Debug)]
struct Slots {
    inline: [Option<ValueSlot>; 2],
    spill: Vec<ValueSlot>,
    len: usize,
}

impl Slots {
    fn new() -> Self {
        Slots {
            inline: [None, None],
            spill: Vec::new(),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, idx: usize) -> Option<&ValueSlot> {
        match self.inline.get(idx) {
            Some(slot) => slot.as_ref(),
            None => self.spill.get(idx - self.inline.len()),
        }
    }

    fn push(&mut self, slot: ValueSlot) {
        match self.inline.get_mut(self.len) {
            Some(entry) => *entry = Some(slot),
            None => self.spill.push(slot),
        }
        self.len += 1;
    }
}

/// The tagged flat address space a program execution sees. Shared by
/// both execution tiers so addresses, map-value slot allocation order and
/// error behaviour are bit-identical between them (addresses are data —
/// a program may return or store one).
pub(crate) struct Memory<'a> {
    pub(crate) ctx: [u8; CTX_SIZE],
    pub(crate) pkt: &'a [u8],
    pub(crate) stack: [u8; STACK_SIZE],
    slots: Slots,
    pub(crate) cpu: usize,
}

impl<'a> Memory<'a> {
    pub(crate) fn new(ctx: &TraceContext, pkt: &'a [u8], cpu: usize) -> Self {
        let ctx_bytes = ctx.to_bytes(PKT_BASE, PKT_BASE + pkt.len() as u64);
        Memory {
            ctx: ctx_bytes,
            pkt,
            stack: [0u8; STACK_SIZE],
            slots: Slots::new(),
            cpu,
        }
    }

    pub(crate) fn alloc_slot(&mut self, fd: i32, key: KeyBuf, value_size: usize) -> u64 {
        self.slots.push(ValueSlot {
            fd,
            key,
            value_size,
        });
        MAP_VAL_BASE + (self.slots.len() as u64 - 1) * MAP_VAL_STRIDE
    }

    pub(crate) fn read_bytes(
        &self,
        maps: &mut MapRegistry,
        addr: u64,
        len: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), VmError> {
        out.clear();
        if len == 0 {
            return Ok(());
        }
        let oob = VmError::MemoryOutOfBounds { addr, len };
        if addr >= CTX_BASE && addr + len as u64 <= CTX_BASE + CTX_SIZE as u64 {
            let s = (addr - CTX_BASE) as usize;
            out.extend_from_slice(&self.ctx[s..s + len]);
        } else if addr >= PKT_BASE && addr + len as u64 <= PKT_BASE + self.pkt.len() as u64 {
            let s = (addr - PKT_BASE) as usize;
            out.extend_from_slice(&self.pkt[s..s + len]);
        } else if addr >= STACK_BASE && addr + len as u64 <= STACK_BASE + STACK_SIZE as u64 {
            let s = (addr - STACK_BASE) as usize;
            out.extend_from_slice(&self.stack[s..s + len]);
        } else if addr >= MAP_VAL_BASE {
            let slot_idx = ((addr - MAP_VAL_BASE) / MAP_VAL_STRIDE) as usize;
            let off = ((addr - MAP_VAL_BASE) % MAP_VAL_STRIDE) as usize;
            let slot = self.slots.get(slot_idx).ok_or_else(|| oob.clone())?;
            if off + len > slot.value_size {
                return Err(oob);
            }
            let map = maps.get_mut(slot.fd).ok_or(VmError::BadMapHandle(addr))?;
            let value = map
                .lookup(slot.key.as_slice(), self.cpu)
                .map_err(VmError::Map)?;
            out.extend_from_slice(&value[off..off + len]);
        } else {
            return Err(oob);
        }
        Ok(())
    }

    pub(crate) fn read_u64(
        &self,
        maps: &mut MapRegistry,
        addr: u64,
        len: usize,
    ) -> Result<u64, VmError> {
        let mut buf = Vec::with_capacity(8);
        self.read_bytes(maps, addr, len, &mut buf)?;
        let mut b = [0u8; 8];
        b[..len].copy_from_slice(&buf);
        Ok(u64::from_le_bytes(b))
    }

    /// Allocation-free scalar load used by the compiled tier: accesses
    /// that land wholly inside the context, packet, stack or a map-value
    /// region read directly from the backing storage; everything else
    /// (faults, address-space edge cases) defers to [`Memory::read_u64`]
    /// so the result — value or error — is identical to the interpreter.
    #[inline]
    pub(crate) fn read_scalar(
        &self,
        maps: &mut MapRegistry,
        addr: u64,
        len: usize,
    ) -> Result<u64, VmError> {
        if len > 0 {
            if let Some(end) = addr.checked_add(len as u64) {
                if addr >= CTX_BASE && end <= CTX_BASE + CTX_SIZE as u64 {
                    return Ok(read_le(&self.ctx[(addr - CTX_BASE) as usize..], len));
                }
                if addr >= PKT_BASE && end <= PKT_BASE + self.pkt.len() as u64 {
                    return Ok(read_le(&self.pkt[(addr - PKT_BASE) as usize..], len));
                }
                if addr >= STACK_BASE && end <= STACK_BASE + STACK_SIZE as u64 {
                    return Ok(read_le(&self.stack[(addr - STACK_BASE) as usize..], len));
                }
                if (MAP_VAL_BASE..MAP_HANDLE_BASE).contains(&addr) {
                    let slot_idx = ((addr - MAP_VAL_BASE) / MAP_VAL_STRIDE) as usize;
                    let off = ((addr - MAP_VAL_BASE) % MAP_VAL_STRIDE) as usize;
                    let oob = VmError::MemoryOutOfBounds { addr, len };
                    let slot = self.slots.get(slot_idx).ok_or_else(|| oob.clone())?;
                    if off + len > slot.value_size {
                        return Err(oob);
                    }
                    let map = maps.get_mut(slot.fd).ok_or(VmError::BadMapHandle(addr))?;
                    let value = map
                        .lookup(slot.key.as_slice(), self.cpu)
                        .map_err(VmError::Map)?;
                    return Ok(read_le(&value[off..], len));
                }
            }
        }
        self.read_u64(maps, addr, len)
    }

    /// Read-modify-write for the compiled tier's fused `ldx; add imm;
    /// stx` sequence: one region resolution (and, for map values, one
    /// map lookup) covers both accesses, which is sound because the
    /// store targets the exact address and width the load just proved
    /// accessible. Off the writable fast paths it falls back to the
    /// split read-then-write, so faults (including stores to read-only
    /// regions) are ordered exactly as the interpreter orders them.
    pub(crate) fn rmw_add(
        &mut self,
        maps: &mut MapRegistry,
        addr: u64,
        len: usize,
        add: u64,
    ) -> Result<u64, VmError> {
        if len > 0 {
            if let Some(end) = addr.checked_add(len as u64) {
                if addr >= STACK_BASE && end <= STACK_BASE + STACK_SIZE as u64 {
                    let s = (addr - STACK_BASE) as usize;
                    let new = read_le(&self.stack[s..], len).wrapping_add(add);
                    write_le(&mut self.stack[s..], len, new);
                    return Ok(new);
                }
                if (MAP_VAL_BASE..MAP_HANDLE_BASE).contains(&addr) {
                    let slot_idx = ((addr - MAP_VAL_BASE) / MAP_VAL_STRIDE) as usize;
                    let off = ((addr - MAP_VAL_BASE) % MAP_VAL_STRIDE) as usize;
                    let oob = VmError::MemoryOutOfBounds { addr, len };
                    let slot = self.slots.get(slot_idx).ok_or_else(|| oob.clone())?;
                    if off + len > slot.value_size {
                        return Err(oob);
                    }
                    let map = maps.get_mut(slot.fd).ok_or(VmError::BadMapHandle(addr))?;
                    let value = map
                        .lookup(slot.key.as_slice(), self.cpu)
                        .map_err(VmError::Map)?;
                    let new = read_le(&value[off..], len).wrapping_add(add);
                    write_le(&mut value[off..], len, new);
                    return Ok(new);
                }
            }
        }
        let new = self.read_u64(maps, addr, len)?.wrapping_add(add);
        self.write(maps, addr, len, new)?;
        Ok(new)
    }

    /// Map-value load with the region dispatch and value-size bounds
    /// check elided: only sound when the verifier proved the access is a
    /// `PtrToMapValue` whose whole `[off, off+len)` window lies inside
    /// the map's value size (a [`crate::analysis::MemFact::MapValue`]
    /// fact). The slot/map resolution itself cannot be skipped — it is
    /// what binds the address to live map storage.
    #[inline]
    pub(crate) fn map_val_read(
        &self,
        maps: &mut MapRegistry,
        addr: u64,
        len: usize,
    ) -> Result<u64, VmError> {
        let slot_idx = ((addr - MAP_VAL_BASE) / MAP_VAL_STRIDE) as usize;
        let off = ((addr - MAP_VAL_BASE) % MAP_VAL_STRIDE) as usize;
        let slot = self
            .slots
            .get(slot_idx)
            .ok_or(VmError::MemoryOutOfBounds { addr, len })?;
        let map = maps.get_mut(slot.fd).ok_or(VmError::BadMapHandle(addr))?;
        let value = map
            .lookup(slot.key.as_slice(), self.cpu)
            .map_err(VmError::Map)?;
        Ok(read_le(&value[off..], len))
    }

    /// Map-value store counterpart of [`Memory::map_val_read`]; same
    /// soundness requirement.
    #[inline]
    pub(crate) fn map_val_write(
        &mut self,
        maps: &mut MapRegistry,
        addr: u64,
        len: usize,
        val: u64,
    ) -> Result<(), VmError> {
        let slot_idx = ((addr - MAP_VAL_BASE) / MAP_VAL_STRIDE) as usize;
        let off = ((addr - MAP_VAL_BASE) % MAP_VAL_STRIDE) as usize;
        let slot = self
            .slots
            .get(slot_idx)
            .ok_or(VmError::MemoryOutOfBounds { addr, len })?;
        let map = maps.get_mut(slot.fd).ok_or(VmError::BadMapHandle(addr))?;
        let value = map
            .lookup(slot.key.as_slice(), self.cpu)
            .map_err(VmError::Map)?;
        write_le(&mut value[off..], len, val);
        Ok(())
    }

    /// Stack load through a computed (non-constant) offset the verifier
    /// proved in-frame ([`crate::analysis::MemFact::StackDyn`]): no
    /// region dispatch, no bounds check.
    #[inline]
    pub(crate) fn stack_dyn_read(&self, addr: u64, len: usize) -> u64 {
        read_le(&self.stack[(addr - STACK_BASE) as usize..], len)
    }

    /// Stack store counterpart of [`Memory::stack_dyn_read`].
    #[inline]
    pub(crate) fn stack_dyn_write(&mut self, addr: u64, len: usize, val: u64) {
        write_le(&mut self.stack[(addr - STACK_BASE) as usize..], len, val);
    }

    pub(crate) fn write(
        &mut self,
        maps: &mut MapRegistry,
        addr: u64,
        len: usize,
        val: u64,
    ) -> Result<(), VmError> {
        if addr >= STACK_BASE && addr + len as u64 <= STACK_BASE + STACK_SIZE as u64 {
            let s = (addr - STACK_BASE) as usize;
            write_le(&mut self.stack[s..], len, val);
            Ok(())
        } else if (MAP_VAL_BASE..MAP_HANDLE_BASE).contains(&addr) {
            let slot_idx = ((addr - MAP_VAL_BASE) / MAP_VAL_STRIDE) as usize;
            let off = ((addr - MAP_VAL_BASE) % MAP_VAL_STRIDE) as usize;
            let slot = self
                .slots
                .get(slot_idx)
                .ok_or(VmError::MemoryOutOfBounds { addr, len })?;
            if off + len > slot.value_size {
                return Err(VmError::MemoryOutOfBounds { addr, len });
            }
            let map = maps.get_mut(slot.fd).ok_or(VmError::BadMapHandle(addr))?;
            let value = map
                .lookup(slot.key.as_slice(), self.cpu)
                .map_err(VmError::Map)?;
            write_le(&mut value[off..], len, val);
            Ok(())
        } else if (addr >= CTX_BASE && addr < CTX_BASE + CTX_SIZE as u64)
            || (addr >= PKT_BASE && addr < PKT_BASE + self.pkt.len() as u64)
        {
            Err(VmError::WriteToReadOnly { addr })
        } else {
            Err(VmError::MemoryOutOfBounds { addr, len })
        }
    }
}

/// The interpreter.
#[derive(Debug, Clone)]
pub struct Vm {
    budget: u64,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

impl Vm {
    /// Creates a VM with the default instruction budget (64 Ki — far
    /// above any loop-free 4096-instruction program, purely a backstop).
    pub fn new() -> Self {
        Vm { budget: 65_536 }
    }

    /// Overrides the instruction budget.
    pub fn with_budget(budget: u64) -> Self {
        Vm { budget }
    }

    /// Executes `prog` over `ctx` and `packet`, using `maps` for map
    /// helpers and `env` for host services.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if the program misbehaves at runtime; the
    /// caller should detach or flag the program, as the kernel would.
    pub fn execute(
        &self,
        prog: &LoadedProgram,
        ctx: &TraceContext,
        packet: &[u8],
        maps: &mut MapRegistry,
        env: &mut dyn VmEnv,
    ) -> Result<ExecOutcome, VmError> {
        let insns = prog.insns();
        let facts = prog.analysis().facts();
        let mut reg = [0u64; NUM_REGS];
        let mut mem = Memory::new(ctx, packet, env.smp_processor_id() as usize);
        reg[1] = CTX_BASE;
        reg[10] = STACK_BASE + STACK_SIZE as u64;

        let mut pc = 0usize;
        let mut executed: u64 = 0;
        let mut cost_ns: u64 = 0;
        let mut checks_elided: u64 = 0;
        let mut scratch = Vec::with_capacity(64);

        loop {
            if executed >= self.budget {
                return Err(VmError::BudgetExceeded(self.budget));
            }
            let insn = *insns.get(pc).ok_or(VmError::BadInstruction(pc))?;
            executed += 1;
            cost_ns += crate::cost::insn_cost_ns(&insn);
            let dst = insn.dst as usize;
            let src = insn.src as usize;
            match insn.class() {
                BPF_ALU64 | BPF_ALU => {
                    let is64 = insn.class() == BPF_ALU64;
                    let op = insn.opcode & 0xf0;
                    if op == BPF_END {
                        reg[dst] = match insn.imm {
                            16 => u64::from((reg[dst] as u16).to_be()),
                            32 => u64::from((reg[dst] as u32).to_be()),
                            _ => reg[dst].to_be(),
                        };
                        pc += 1;
                        continue;
                    }
                    let rhs = if insn.opcode & 0x08 == BPF_X {
                        reg[src]
                    } else {
                        insn.imm as i64 as u64
                    };
                    let lhs = reg[dst];
                    // Register divisors the analysis proved nonzero skip
                    // the zero test entirely — the one elision the
                    // interpreter tier performs.
                    let val = if (op == BPF_DIV || op == BPF_MOD)
                        && insn.opcode & 0x08 == BPF_X
                        && facts.get(pc).is_some_and(|f| f.div_nonzero)
                    {
                        checks_elided += 1;
                        if is64 {
                            if op == BPF_DIV {
                                lhs / rhs
                            } else {
                                lhs % rhs
                            }
                        } else {
                            let (l, r) = (lhs as u32, rhs as u32);
                            u64::from(if op == BPF_DIV { l / r } else { l % r })
                        }
                    } else if is64 {
                        alu64(op, lhs, rhs)
                    } else {
                        u64::from(alu32(op, lhs as u32, rhs as u32))
                    };
                    reg[dst] = val;
                    pc += 1;
                }
                BPF_LD => {
                    // lddw: combine with next slot.
                    let hi = insns.get(pc + 1).ok_or(VmError::BadInstruction(pc))?;
                    reg[dst] = (insn.imm as u32 as u64) | ((hi.imm as u32 as u64) << 32);
                    pc += 2;
                }
                BPF_LDX => {
                    let size = access_size(insn.opcode);
                    let addr = reg[src].wrapping_add(insn.off as i64 as u64);
                    reg[dst] = mem.read_u64(maps, addr, size)?;
                    pc += 1;
                }
                BPF_ST | BPF_STX => {
                    let size = access_size(insn.opcode);
                    let addr = reg[dst].wrapping_add(insn.off as i64 as u64);
                    if insn.class() == BPF_STX && insn.opcode & 0xe0 == BPF_ATOMIC {
                        // Atomic add (single-threaded VM: plain RMW).
                        let old = mem.read_u64(maps, addr, size)?;
                        let new = if size == 4 {
                            u64::from((old as u32).wrapping_add(reg[src] as u32))
                        } else {
                            old.wrapping_add(reg[src])
                        };
                        mem.write(maps, addr, size, new)?;
                        if insn.imm & BPF_FETCH != 0 {
                            reg[src] = old;
                        }
                    } else {
                        let val = if insn.class() == BPF_STX {
                            reg[src]
                        } else {
                            insn.imm as i64 as u64
                        };
                        mem.write(maps, addr, size, val)?;
                    }
                    pc += 1;
                }
                BPF_JMP | BPF_JMP32 => {
                    let op = insn.opcode & 0xf0;
                    match op {
                        BPF_EXIT => {
                            return Ok(ExecOutcome {
                                ret: reg[0],
                                insns_executed: executed,
                                cost_ns,
                                checks_elided,
                            })
                        }
                        BPF_CALL => {
                            self.call_helper(
                                insn.imm,
                                &mut reg,
                                &mut mem,
                                maps,
                                env,
                                &mut scratch,
                            )?;
                            pc += 1;
                        }
                        BPF_JA => {
                            pc = (pc as i64 + 1 + insn.off as i64) as usize;
                        }
                        _ => {
                            let (lhs, rhs) = if insn.class() == BPF_JMP {
                                (
                                    reg[dst],
                                    if insn.opcode & 0x08 == BPF_X {
                                        reg[src]
                                    } else {
                                        insn.imm as i64 as u64
                                    },
                                )
                            } else {
                                (
                                    u64::from(reg[dst] as u32),
                                    if insn.opcode & 0x08 == BPF_X {
                                        u64::from(reg[src] as u32)
                                    } else {
                                        u64::from(insn.imm as u32)
                                    },
                                )
                            };
                            let take = jump_taken(op, lhs, rhs, insn.class() == BPF_JMP32);
                            pc = if take {
                                (pc as i64 + 1 + insn.off as i64) as usize
                            } else {
                                pc + 1
                            };
                        }
                    }
                }
                _ => return Err(VmError::BadInstruction(pc)),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn call_helper(
        &self,
        id: i32,
        reg: &mut [u64; NUM_REGS],
        mem: &mut Memory<'_>,
        maps: &mut MapRegistry,
        env: &mut dyn VmEnv,
        scratch: &mut Vec<u8>,
    ) -> Result<(), VmError> {
        let thunk = helper_by_id(id).ok_or(VmError::UnknownHelper(id))?;
        thunk(reg, mem, maps, env, scratch)
    }
}

fn helper_ktime_get_ns(
    reg: &mut [u64; NUM_REGS],
    _mem: &mut Memory<'_>,
    _maps: &mut MapRegistry,
    env: &mut dyn VmEnv,
    _scratch: &mut Vec<u8>,
) -> Result<(), VmError> {
    reg[0] = env.ktime_get_ns();
    Ok(())
}

fn helper_get_prandom_u32(
    reg: &mut [u64; NUM_REGS],
    _mem: &mut Memory<'_>,
    _maps: &mut MapRegistry,
    env: &mut dyn VmEnv,
    _scratch: &mut Vec<u8>,
) -> Result<(), VmError> {
    reg[0] = u64::from(env.prandom_u32());
    Ok(())
}

fn helper_get_smp_processor_id(
    reg: &mut [u64; NUM_REGS],
    _mem: &mut Memory<'_>,
    _maps: &mut MapRegistry,
    env: &mut dyn VmEnv,
    _scratch: &mut Vec<u8>,
) -> Result<(), VmError> {
    reg[0] = u64::from(env.smp_processor_id());
    Ok(())
}

pub(crate) fn helper_map_lookup(
    reg: &mut [u64; NUM_REGS],
    mem: &mut Memory<'_>,
    maps: &mut MapRegistry,
    _env: &mut dyn VmEnv,
    scratch: &mut Vec<u8>,
) -> Result<(), VmError> {
    let fd = map_fd(reg[1])?;
    let map = maps.get_mut(fd).ok_or(VmError::BadMapHandle(reg[1]))?;
    let key_size = map.def().key_size as usize;
    let value_size = map.def().value_size as usize;
    // Small keys (all the standard trace scripts') read and store inline;
    // `read_scalar` applies the same single-region bounds check as
    // `read_bytes`, so faults are unchanged.
    let key = if key_size <= 8 {
        let v = mem.read_scalar(maps, reg[2], key_size)?;
        KeyBuf::Inline {
            buf: v.to_le_bytes(),
            len: key_size as u8,
        }
    } else {
        mem.read_bytes(maps, reg[2], key_size, scratch)?;
        KeyBuf::Heap(scratch.clone())
    };
    let map = maps.get_mut(fd).expect("fd checked");
    reg[0] = match map.lookup(key.as_slice(), mem.cpu) {
        Ok(_) => mem.alloc_slot(fd, key, value_size),
        Err(_) => 0,
    };
    Ok(())
}

fn helper_map_update(
    reg: &mut [u64; NUM_REGS],
    mem: &mut Memory<'_>,
    maps: &mut MapRegistry,
    _env: &mut dyn VmEnv,
    scratch: &mut Vec<u8>,
) -> Result<(), VmError> {
    let fd = map_fd(reg[1])?;
    let (key_size, value_size) = {
        let map = maps.get(fd).ok_or(VmError::BadMapHandle(reg[1]))?;
        (map.def().key_size as usize, map.def().value_size as usize)
    };
    mem.read_bytes(maps, reg[2], key_size, scratch)?;
    let key = scratch.clone();
    mem.read_bytes(maps, reg[3], value_size, scratch)?;
    let value = scratch.clone();
    let map = maps.get_mut(fd).expect("fd checked");
    reg[0] = match map.update(&key, &value, mem.cpu) {
        Ok(()) => 0,
        Err(_) => (-1i64) as u64,
    };
    Ok(())
}

fn helper_map_delete(
    reg: &mut [u64; NUM_REGS],
    mem: &mut Memory<'_>,
    maps: &mut MapRegistry,
    _env: &mut dyn VmEnv,
    scratch: &mut Vec<u8>,
) -> Result<(), VmError> {
    let fd = map_fd(reg[1])?;
    let key_size = {
        let map = maps.get(fd).ok_or(VmError::BadMapHandle(reg[1]))?;
        map.def().key_size as usize
    };
    mem.read_bytes(maps, reg[2], key_size, scratch)?;
    let key = scratch.clone();
    let map = maps.get_mut(fd).expect("fd checked");
    reg[0] = match map.delete(&key) {
        Ok(()) => 0,
        Err(_) => (-1i64) as u64,
    };
    Ok(())
}

fn helper_perf_event_output(
    reg: &mut [u64; NUM_REGS],
    mem: &mut Memory<'_>,
    maps: &mut MapRegistry,
    _env: &mut dyn VmEnv,
    scratch: &mut Vec<u8>,
) -> Result<(), VmError> {
    let fd = map_fd(reg[2])?;
    let len = reg[5] as usize;
    mem.read_bytes(maps, reg[4], len, scratch)?;
    let cpu = if reg[3] == BPF_F_CURRENT_CPU {
        mem.cpu
    } else {
        reg[3] as usize
    };
    let map = maps.get_mut(fd).ok_or(VmError::BadMapHandle(reg[2]))?;
    reg[0] = match map.perf_output(cpu, scratch) {
        Ok(()) => 0,
        Err(_) => (-1i64) as u64,
    };
    Ok(())
}

fn helper_skb_load_bytes(
    reg: &mut [u64; NUM_REGS],
    mem: &mut Memory<'_>,
    maps: &mut MapRegistry,
    _env: &mut dyn VmEnv,
    _scratch: &mut Vec<u8>,
) -> Result<(), VmError> {
    let off = reg[2] as usize;
    let len = reg[4] as usize;
    reg[0] = if off + len > mem.pkt.len() {
        (-1i64) as u64
    } else {
        let data = mem.pkt[off..off + len].to_vec();
        let mut dst_addr = reg[3];
        for chunk in data.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            mem.write(maps, dst_addr, chunk.len(), u64::from_le_bytes(b))?;
            dst_addr += chunk.len() as u64;
        }
        0
    };
    Ok(())
}

fn helper_trace_printk(
    reg: &mut [u64; NUM_REGS],
    mem: &mut Memory<'_>,
    maps: &mut MapRegistry,
    env: &mut dyn VmEnv,
    scratch: &mut Vec<u8>,
) -> Result<(), VmError> {
    let len = (reg[2] as usize).min(512);
    mem.read_bytes(maps, reg[1], len, scratch)?;
    let msg = String::from_utf8_lossy(scratch).into_owned();
    env.trace_printk(msg.trim_end_matches('\0'));
    reg[0] = 0;
    Ok(())
}

/// Little-endian scalar read out of a region slice; `len` is 1/2/4/8 and
/// the caller has already bounds-checked `b.len() >= len`. Each width is
/// a fixed-size load rather than a variable-length copy.
#[inline]
pub(crate) fn read_le(b: &[u8], len: usize) -> u64 {
    match len {
        1 => u64::from(b[0]),
        2 => u64::from(u16::from_le_bytes([b[0], b[1]])),
        4 => u64::from(u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        8 => u64::from_le_bytes(b[..8].try_into().expect("8-byte slice")),
        _ => {
            let mut buf = [0u8; 8];
            buf[..len].copy_from_slice(&b[..len]);
            u64::from_le_bytes(buf)
        }
    }
}

/// Little-endian scalar store into a region slice; the counterpart of
/// [`read_le`], with the same fixed-width specialisation.
#[inline]
pub(crate) fn write_le(b: &mut [u8], len: usize, val: u64) {
    match len {
        1 => b[0] = val as u8,
        2 => b[..2].copy_from_slice(&(val as u16).to_le_bytes()),
        4 => b[..4].copy_from_slice(&(val as u32).to_le_bytes()),
        8 => b[..8].copy_from_slice(&val.to_le_bytes()),
        _ => b[..len].copy_from_slice(&val.to_le_bytes()[..len]),
    }
}

#[inline]
pub(crate) fn map_fd(handle: u64) -> Result<i32, VmError> {
    if handle & MAP_HANDLE_BASE == MAP_HANDLE_BASE {
        Ok((handle & 0xffff_ffff) as i32)
    } else {
        Err(VmError::BadMapHandle(handle))
    }
}

#[inline]
pub(crate) fn access_size(opcode: u8) -> usize {
    match opcode & 0x18 {
        BPF_W => 4,
        BPF_H => 2,
        BPF_B => 1,
        _ => 8,
    }
}

// Divide-by-zero handling is deliberate eBPF semantics (div -> 0,
// mod -> dst unchanged), not a checked_div candidate.
#[allow(clippy::manual_checked_ops)]
#[inline]
pub(crate) fn alu64(op: u8, lhs: u64, rhs: u64) -> u64 {
    match op {
        BPF_ADD => lhs.wrapping_add(rhs),
        BPF_SUB => lhs.wrapping_sub(rhs),
        BPF_MUL => lhs.wrapping_mul(rhs),
        BPF_DIV => {
            if rhs == 0 {
                0
            } else {
                lhs / rhs
            }
        }
        BPF_MOD => {
            if rhs == 0 {
                lhs
            } else {
                lhs % rhs
            }
        }
        BPF_OR => lhs | rhs,
        BPF_AND => lhs & rhs,
        BPF_LSH => lhs.wrapping_shl(rhs as u32 & 63),
        BPF_RSH => lhs.wrapping_shr(rhs as u32 & 63),
        BPF_ARSH => ((lhs as i64).wrapping_shr(rhs as u32 & 63)) as u64,
        BPF_XOR => lhs ^ rhs,
        BPF_MOV => rhs,
        BPF_NEG => (lhs as i64).wrapping_neg() as u64,
        _ => unreachable!("verified ALU op"),
    }
}

#[allow(clippy::manual_checked_ops)]
#[inline]
pub(crate) fn alu32(op: u8, lhs: u32, rhs: u32) -> u32 {
    match op {
        BPF_ADD => lhs.wrapping_add(rhs),
        BPF_SUB => lhs.wrapping_sub(rhs),
        BPF_MUL => lhs.wrapping_mul(rhs),
        BPF_DIV => {
            if rhs == 0 {
                0
            } else {
                lhs / rhs
            }
        }
        BPF_MOD => {
            if rhs == 0 {
                lhs
            } else {
                lhs % rhs
            }
        }
        BPF_OR => lhs | rhs,
        BPF_AND => lhs & rhs,
        BPF_LSH => lhs.wrapping_shl(rhs & 31),
        BPF_RSH => lhs.wrapping_shr(rhs & 31),
        BPF_ARSH => ((lhs as i32).wrapping_shr(rhs & 31)) as u32,
        BPF_XOR => lhs ^ rhs,
        BPF_MOV => rhs,
        BPF_NEG => (lhs as i32).wrapping_neg() as u32,
        _ => unreachable!("verified ALU op"),
    }
}

#[inline]
pub(crate) fn jump_taken(op: u8, lhs: u64, rhs: u64, narrow: bool) -> bool {
    let (slhs, srhs) = if narrow {
        (i64::from(lhs as u32 as i32), i64::from(rhs as u32 as i32))
    } else {
        (lhs as i64, rhs as i64)
    };
    match op {
        BPF_JEQ => lhs == rhs,
        BPF_JNE => lhs != rhs,
        BPF_JGT => lhs > rhs,
        BPF_JGE => lhs >= rhs,
        BPF_JLT => lhs < rhs,
        BPF_JLE => lhs <= rhs,
        BPF_JSET => lhs & rhs != 0,
        BPF_JSGT => slhs > srhs,
        BPF_JSGE => slhs >= srhs,
        BPF_JSLT => slhs < srhs,
        BPF_JSLE => slhs <= srhs,
        _ => unreachable!("verified jump op"),
    }
}

#[cfg(test)]
mod tests {
    use super::helper_ids::*;
    use super::*;
    use crate::asm::{reg::*, AluOp, Asm, Cond, Size};
    use crate::context::*;
    use crate::map::MapDef;
    use crate::program::{load_with_opts, AttachType, LoadOpts, Program};

    fn run(asm: Asm) -> u64 {
        run_with(asm, &TraceContext::default(), &[], &mut MapRegistry::new()).ret
    }

    // The interpreter tests pin tier behavior on exact instruction
    // shapes, so they load raw; the optimizer has its own suite.
    fn run_with(asm: Asm, ctx: &TraceContext, pkt: &[u8], maps: &mut MapRegistry) -> ExecOutcome {
        let prog = Program::new(
            "t",
            AttachType::Kprobe("f".into()),
            asm.build().expect("assembles"),
        );
        let loaded = load_with_opts(
            prog,
            maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .expect("loads");
        let mut env = FixedEnv {
            time_ns: 123_456,
            cpu: 2,
            ..Default::default()
        };
        Vm::new()
            .execute(&loaded, ctx, pkt, maps, &mut env)
            .expect("executes")
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(
            run(Asm::new().mov64_imm(R0, 20).add64_imm(R0, 22).exit()),
            42
        );
        assert_eq!(
            run(Asm::new()
                .mov64_imm(R0, 7)
                .mov64_imm(R2, 6)
                .alu64(AluOp::Mul, R0, R2)
                .exit()),
            42
        );
        assert_eq!(
            run(Asm::new()
                .mov64_imm(R0, 100)
                .alu64_imm(AluOp::Div, R0, 7)
                .exit()),
            14
        );
        assert_eq!(
            run(Asm::new()
                .mov64_imm(R0, 100)
                .alu64_imm(AluOp::Mod, R0, 7)
                .exit()),
            2
        );
    }

    #[test]
    fn division_by_zero_register_semantics() {
        // The verifier now rejects any register divisor it cannot prove
        // nonzero, so no *loaded* program can divide by zero — but the
        // ALU semantics (div → 0, mod → lhs, kernel behaviour) are still
        // the contract for the checked execution paths.
        assert_eq!(alu64(BPF_DIV, 100, 0), 0);
        assert_eq!(alu64(BPF_MOD, 100, 0), 100);
        assert_eq!(alu32(BPF_DIV, 100, 0), 0);
        assert_eq!(alu32(BPF_MOD, 100, 0), 100);
        // A guarded divisor is accepted and divides normally.
        assert_eq!(
            run(Asm::new()
                .mov64_imm(R0, 100)
                .mov64_imm(R2, 0)
                .jmp_imm(Cond::Eq, R2, 0, "skip")
                .alu64(AluOp::Div, R0, R2)
                .label("skip")
                .exit()),
            100
        );
    }

    #[test]
    fn negative_immediates_sign_extend() {
        assert_eq!(run(Asm::new().mov64_imm(R0, -1).exit()), u64::MAX);
        assert_eq!(
            run(Asm::new().mov64_imm(R0, 5).add64_imm(R0, -6).exit()) as i64,
            -1
        );
    }

    #[test]
    fn mov32_clears_upper_half() {
        assert_eq!(run(Asm::new().mov64_imm(R0, -1).mov32_imm(R0, 7).exit()), 7);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(
            run(Asm::new()
                .mov64_imm(R0, 1)
                .alu64_imm(AluOp::Lsh, R0, 65)
                .exit()),
            2,
            "shift by 65 masks to 1"
        );
        assert_eq!(
            run(Asm::new()
                .mov64_imm(R0, -8)
                .alu64_imm(AluOp::Arsh, R0, 1)
                .exit()) as i64,
            -4
        );
    }

    #[test]
    fn endianness_conversion() {
        assert_eq!(
            run(Asm::new().mov64_imm(R0, 0x1234).be16(R0).exit()),
            0x3412
        );
        assert_eq!(
            run(Asm::new().mov64_imm(R0, 0x12345678).be32(R0).exit()),
            0x78563412
        );
    }

    #[test]
    fn stack_store_load_round_trip() {
        let v = run(Asm::new()
            .mov64_imm(R2, 0x55aa)
            .stx(Size::DW, R10, R2, -8)
            .ldx(Size::DW, R0, R10, -8)
            .exit());
        assert_eq!(v, 0x55aa);
        // Byte-granular access of the same slot.
        let v = run(Asm::new()
            .mov64_imm(R2, 0x55aa)
            .stx(Size::DW, R10, R2, -8)
            .ldx(Size::B, R0, R10, -8)
            .exit());
        assert_eq!(v, 0xaa);
    }

    #[test]
    fn context_fields_readable() {
        let ctx = TraceContext {
            timestamp_ns: 999,
            pkt_len: 77,
            cpu: 3,
            node: 2,
            device: 5,
            direction: 1,
            aux: 0,
        };
        let out = run_with(
            Asm::new().ldx(Size::W, R0, R1, CTX_OFF_PKT_LEN).exit(),
            &ctx,
            &[0u8; 77],
            &mut MapRegistry::new(),
        );
        assert_eq!(out.ret, 77);
        let out = run_with(
            Asm::new().ldx(Size::DW, R0, R1, CTX_OFF_TIMESTAMP).exit(),
            &ctx,
            &[],
            &mut MapRegistry::new(),
        );
        assert_eq!(out.ret, 999);
    }

    #[test]
    fn packet_bytes_readable_through_data_pointer() {
        let pkt = [0xde, 0xad, 0xbe, 0xef, 0x01, 0x02];
        let out = run_with(
            Asm::new()
                .ldx(Size::DW, R2, R1, CTX_OFF_DATA)
                .ldx(Size::B, R0, R2, 3)
                .exit(),
            &TraceContext::default(),
            &pkt,
            &mut MapRegistry::new(),
        );
        assert_eq!(out.ret, 0xef);
    }

    #[test]
    fn packet_read_past_end_aborts() {
        let prog = Program::new(
            "t",
            AttachType::Kprobe("f".into()),
            Asm::new()
                .ldx(Size::DW, R2, R1, CTX_OFF_DATA)
                .ldx(Size::W, R0, R2, 10)
                .exit()
                .build()
                .unwrap(),
        );
        let mut maps = MapRegistry::new();
        let loaded = load_with_opts(
            prog,
            &maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .unwrap();
        let mut env = FixedEnv::default();
        let err = Vm::new()
            .execute(
                &loaded,
                &TraceContext::default(),
                &[0u8; 8],
                &mut maps,
                &mut env,
            )
            .unwrap_err();
        assert!(matches!(err, VmError::MemoryOutOfBounds { .. }));
    }

    #[test]
    fn writes_to_packet_and_ctx_rejected() {
        let mut maps = MapRegistry::new();
        for asm in [
            Asm::new()
                .mov64_imm(R2, 1)
                .stx(Size::B, R1, R2, 0)
                .mov64_imm(R0, 0)
                .exit(),
            Asm::new()
                .ldx(Size::DW, R3, R1, CTX_OFF_DATA)
                .mov64_imm(R2, 1)
                .stx(Size::B, R3, R2, 0)
                .mov64_imm(R0, 0)
                .exit(),
        ] {
            let prog = Program::new("t", AttachType::Kprobe("f".into()), asm.build().unwrap());
            let loaded = load_with_opts(
                prog,
                &maps,
                &standard_helpers(),
                &LoadOpts { optimize: false },
            )
            .unwrap();
            let mut env = FixedEnv::default();
            let err = Vm::new()
                .execute(
                    &loaded,
                    &TraceContext::default(),
                    &[0u8; 16],
                    &mut maps,
                    &mut env,
                )
                .unwrap_err();
            assert!(
                matches!(err, VmError::WriteToReadOnly { .. }),
                "got {err:?}"
            );
        }
    }

    #[test]
    fn ktime_helper_reads_env_clock() {
        let out = run(Asm::new().call(KTIME_GET_NS).exit());
        assert_eq!(out, 123_456);
    }

    #[test]
    fn smp_processor_id_helper() {
        assert_eq!(run(Asm::new().call(GET_SMP_PROCESSOR_ID).exit()), 2);
    }

    #[test]
    fn prandom_helper_changes() {
        // Two calls give different values.
        let out = run(Asm::new()
            .call(GET_PRANDOM_U32)
            .mov64(R6, R0)
            .call(GET_PRANDOM_U32)
            .sub64(R0, R6)
            .exit());
        assert_ne!(out, 0);
    }

    #[test]
    fn map_update_lookup_through_helpers() {
        let mut maps = MapRegistry::new();
        let fd = maps.create(MapDef::hash(4, 8, 16), 1).unwrap();
        // key = 7 on stack, value = 99 on stack; update then lookup and
        // load the value back.
        let asm = Asm::new()
            .st(Size::W, R10, -4, 7) // key
            .mov64_imm(R2, 99)
            .stx(Size::DW, R10, R2, -16) // value
            .ld_map_fd(R1, fd)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .mov64(R3, R10)
            .add64_imm(R3, -16)
            .mov64_imm(R4, 0)
            .call(MAP_UPDATE_ELEM)
            .ld_map_fd(R1, fd)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(MAP_LOOKUP_ELEM)
            .jmp_imm(Cond::Ne, R0, 0, "found")
            .mov64_imm(R0, 0)
            .exit()
            .label("found")
            .ldx(Size::DW, R0, R0, 0)
            .exit();
        let out = run_with(asm, &TraceContext::default(), &[], &mut maps);
        assert_eq!(out.ret, 99);
        // The value is also visible from the host side.
        let map = maps.get_mut(fd).unwrap();
        assert_eq!(
            map.lookup(&7u32.to_le_bytes(), 0).unwrap(),
            &99u64.to_le_bytes()
        );
    }

    #[test]
    fn in_place_counter_increment_via_lookup_pointer() {
        let mut maps = MapRegistry::new();
        let fd = maps.create(MapDef::array(8, 1), 1).unwrap();
        let asm = || {
            Asm::new()
                .st(Size::W, R10, -4, 0)
                .ld_map_fd(R1, fd)
                .mov64(R2, R10)
                .add64_imm(R2, -4)
                .call(MAP_LOOKUP_ELEM)
                .jmp_imm(Cond::Ne, R0, 0, "found")
                .mov64_imm(R0, 0)
                .exit()
                .label("found")
                .ldx(Size::DW, R2, R0, 0)
                .add64_imm(R2, 1)
                .stx(Size::DW, R0, R2, 0)
                .mov64(R0, R2)
                .exit()
        };
        for expected in 1..=3u64 {
            let out = run_with(asm(), &TraceContext::default(), &[], &mut maps);
            assert_eq!(out.ret, expected);
        }
    }

    #[test]
    fn map_lookup_missing_key_returns_null() {
        let mut maps = MapRegistry::new();
        let fd = maps.create(MapDef::hash(4, 8, 16), 1).unwrap();
        let asm = Asm::new()
            .st(Size::W, R10, -4, 42)
            .ld_map_fd(R1, fd)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .call(MAP_LOOKUP_ELEM)
            .exit();
        assert_eq!(
            run_with(asm, &TraceContext::default(), &[], &mut maps).ret,
            0
        );
    }

    #[test]
    fn perf_event_output_streams_records() {
        let mut maps = MapRegistry::new();
        let perf_fd = maps.create(MapDef::perf(4096), 4).unwrap();
        let asm = Asm::new()
            .mov64_imm(R2, 0xabcd)
            .stx(Size::DW, R10, R2, -8)
            .mov64(R4, R10)
            .add64_imm(R4, -8)
            .ld_map_fd(R2, perf_fd)
            .mov64_imm(R3, -1) // BPF_F_CURRENT_CPU
            .mov32_imm(R3, 0xffffffffu32 as i32)
            .mov64_imm(R5, 8)
            .call(PERF_EVENT_OUTPUT)
            .exit();
        let out = run_with(asm, &TraceContext::default(), &[], &mut maps);
        assert_eq!(out.ret, 0);
        // FixedEnv cpu = 2.
        let records = maps.get_mut(perf_fd).unwrap().perf_drain(2);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0], 0xabcdu64.to_le_bytes());
    }

    #[test]
    fn skb_load_bytes_copies_packet_to_stack() {
        let pkt: Vec<u8> = (0..32).collect();
        let asm = Asm::new()
            .mov64_imm(R2, 10) // offset
            .mov64(R3, R10)
            .add64_imm(R3, -16) // dst
            .mov64_imm(R4, 4) // len
            .call(SKB_LOAD_BYTES)
            .ldx(Size::W, R0, R10, -16)
            .exit();
        let out = run_with(asm, &TraceContext::default(), &pkt, &mut MapRegistry::new());
        assert_eq!(out.ret, u32::from_le_bytes([10, 11, 12, 13]) as u64);
    }

    #[test]
    fn skb_load_bytes_oob_returns_error_code() {
        let asm = Asm::new()
            .mov64_imm(R2, 100)
            .mov64(R3, R10)
            .add64_imm(R3, -8)
            .mov64_imm(R4, 4)
            .call(SKB_LOAD_BYTES)
            .exit();
        let out = run_with(
            asm,
            &TraceContext::default(),
            &[0u8; 8],
            &mut MapRegistry::new(),
        );
        assert_eq!(out.ret as i64, -1);
    }

    #[test]
    fn trace_printk_reaches_env() {
        let msg = b"hi\0";
        let mut maps = MapRegistry::new();
        let asm = Asm::new()
            .mov64_imm(R2, i32::from_le_bytes([msg[0], msg[1], msg[2], 0]))
            .stx(Size::W, R10, R2, -8)
            .mov64(R1, R10)
            .add64_imm(R1, -8)
            .mov64_imm(R2, 3)
            .call(TRACE_PRINTK)
            .exit();
        let prog = Program::new("t", AttachType::Kprobe("f".into()), asm.build().unwrap());
        let loaded = load_with_opts(
            prog,
            &maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .unwrap();
        let mut env = FixedEnv::default();
        Vm::new()
            .execute(&loaded, &TraceContext::default(), &[], &mut maps, &mut env)
            .unwrap();
        assert_eq!(env.printk, vec!["hi".to_owned()]);
    }

    #[test]
    fn jmp32_uses_narrow_comparison() {
        // r2 = 0x1_0000_0001; 32-bit view is 1.
        let asm = Asm::new()
            .lddw(R2, 0x1_0000_0001)
            .jmp32_imm(Cond::Eq, R2, 1, "yes")
            .mov64_imm(R0, 0)
            .exit()
            .label("yes")
            .mov64_imm(R0, 1)
            .exit();
        assert_eq!(run(asm), 1);
    }

    #[test]
    fn signed_comparisons() {
        let asm = Asm::new()
            .mov64_imm(R2, -5)
            .jmp_imm(Cond::SLt, R2, 0, "neg")
            .mov64_imm(R0, 0)
            .exit()
            .label("neg")
            .mov64_imm(R0, 1)
            .exit();
        assert_eq!(run(asm), 1);
        // Unsigned comparison sees -5 as huge.
        let asm = Asm::new()
            .mov64_imm(R2, -5)
            .jmp_imm(Cond::Gt, R2, 100, "big")
            .mov64_imm(R0, 0)
            .exit()
            .label("big")
            .mov64_imm(R0, 1)
            .exit();
        assert_eq!(run(asm), 1);
    }

    #[test]
    fn insns_executed_counted() {
        let out = run_with(
            Asm::new().mov64_imm(R0, 0).add64_imm(R0, 1).exit(),
            &TraceContext::default(),
            &[],
            &mut MapRegistry::new(),
        );
        assert_eq!(out.insns_executed, 3);
        assert_eq!(
            execution_cost_ns(out.insns_executed),
            PROBE_BASE_COST_NS + 3
        );
    }

    #[test]
    fn lddw_counts_as_one_instruction() {
        let out = run_with(
            Asm::new().lddw(R0, 1).exit(),
            &TraceContext::default(),
            &[],
            &mut MapRegistry::new(),
        );
        assert_eq!(out.insns_executed, 2);
    }
}

#[cfg(test)]
mod atomic_tests {
    use super::*;
    use crate::asm::{reg::*, Asm, Size};
    use crate::context::TraceContext;
    use crate::map::{MapDef, MapRegistry};
    use crate::program::{load_with_opts, AttachType, LoadOpts, Program};

    fn run(asm: Asm, maps: &mut MapRegistry) -> u64 {
        let prog = Program::new("t", AttachType::Kprobe("f".into()), asm.build().unwrap());
        let loaded = load_with_opts(
            prog,
            maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .unwrap();
        let mut env = FixedEnv::default();
        Vm::new()
            .execute(&loaded, &TraceContext::default(), &[], maps, &mut env)
            .unwrap()
            .ret
    }

    #[test]
    fn atomic_add_on_stack() {
        let v = run(
            Asm::new()
                .mov64_imm(R1, 40)
                .stx(Size::DW, R10, R1, -8)
                .mov64_imm(R2, 2)
                .atomic_add(Size::DW, R10, R2, -8)
                .ldx(Size::DW, R0, R10, -8)
                .exit(),
            &mut MapRegistry::new(),
        );
        assert_eq!(v, 42);
    }

    #[test]
    fn atomic_fetch_add_returns_old_value() {
        let v = run(
            Asm::new()
                .mov64_imm(R1, 7)
                .stx(Size::DW, R10, R1, -8)
                .mov64_imm(R2, 100)
                .atomic_fetch_add(Size::DW, R10, R2, -8)
                .mov64(R0, R2) // old value
                .ldx(Size::DW, R3, R10, -8)
                .add64(R0, R3) // old + new = 7 + 107
                .exit(),
            &mut MapRegistry::new(),
        );
        assert_eq!(v, 7 + 107);
    }

    #[test]
    fn atomic_add_on_map_value() {
        // The canonical eBPF counter: lookup then atomic add in place.
        let mut maps = MapRegistry::new();
        let fd = maps.create(MapDef::array(8, 1), 1).unwrap();
        let asm = || {
            Asm::new()
                .st(Size::W, R10, -4, 0)
                .ld_map_fd(R1, fd)
                .mov64(R2, R10)
                .add64_imm(R2, -4)
                .call(helper_ids::MAP_LOOKUP_ELEM)
                .jmp_imm(crate::asm::Cond::Eq, R0, 0, "miss")
                .mov64_imm(R2, 5)
                .atomic_add(Size::DW, R0, R2, 0)
                .mov64_imm(R0, 1)
                .exit()
                .label("miss")
                .mov64_imm(R0, 0)
                .exit()
        };
        for _ in 0..3 {
            assert_eq!(run(asm(), &mut maps), 1);
        }
        let map = maps.get_mut(fd).unwrap();
        let v = u64::from_le_bytes(
            map.lookup(&0u32.to_le_bytes(), 0)
                .unwrap()
                .try_into()
                .unwrap(),
        );
        assert_eq!(v, 15);
    }

    #[test]
    fn atomic_add_32bit_wraps_in_word() {
        let v = run(
            Asm::new()
                .mov64_imm(R1, -1) // 0xffff_ffff in the low word
                .stx(Size::W, R10, R1, -8)
                .mov64_imm(R2, 1)
                .atomic_add(Size::W, R10, R2, -8)
                .ldx(Size::W, R0, R10, -8)
                .exit(),
            &mut MapRegistry::new(),
        );
        assert_eq!(v, 0, "32-bit wraparound");
    }

    #[test]
    fn verifier_rejects_atomic_on_bytes_and_unknown_ops() {
        use crate::insn::*;
        // 1-byte atomic.
        let insns = vec![
            Insn::new(BPF_ALU64 | BPF_MOV | BPF_K, 1, 0, 0, 0),
            Insn::new(BPF_STX | BPF_ATOMIC | BPF_B, 10, 1, -8, BPF_ADD as i32),
            Insn::new(BPF_ALU64 | BPF_MOV | BPF_K, 0, 0, 0, 0),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        assert!(crate::verify(&insns, &standard_helpers()).is_err());
        // Unknown atomic op (XOR not implemented).
        let insns = vec![
            Insn::new(BPF_ALU64 | BPF_MOV | BPF_K, 1, 0, 0, 0),
            Insn::new(BPF_STX | BPF_ATOMIC | BPF_DW, 10, 1, -8, BPF_XOR as i32),
            Insn::new(BPF_ALU64 | BPF_MOV | BPF_K, 0, 0, 0, 0),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        assert!(crate::verify(&insns, &standard_helpers()).is_err());
    }

    #[test]
    fn fetch_initialises_src_for_dataflow() {
        // After a fetch-add, src holds the old value and may be read even
        // if it was clobbered conceptually.
        let v = run(
            Asm::new()
                .mov64_imm(R1, 3)
                .stx(Size::DW, R10, R1, -8)
                .mov64_imm(R2, 4)
                .atomic_fetch_add(Size::DW, R10, R2, -8)
                .mov64(R0, R2)
                .exit(),
            &mut MapRegistry::new(),
        );
        assert_eq!(v, 3);
    }

    #[test]
    fn disasm_renders_atomics() {
        let insns = Asm::new()
            .mov64_imm(R1, 0)
            .atomic_add(Size::DW, R10, R1, -8)
            .atomic_fetch_add(Size::W, R10, R1, -16)
            .mov64_imm(R0, 0)
            .exit()
            .build()
            .unwrap();
        let listing = crate::disassemble(&insns);
        assert!(
            listing[1].contains("lock *(u64 *)(r10 -8) += r1"),
            "{listing:?}"
        );
        assert!(listing[2].contains("atomic_fetch_add"), "{listing:?}");
    }
}
