//! The static verifier.
//!
//! Before a program may attach, it must pass the same class of checks the
//! Linux verifier applies (for the 4.x kernels the paper targets):
//!
//! * at most [`MAX_INSNS`] (4096) instructions — the size limit the paper
//!   calls out in §II;
//! * only known opcodes and registers; `r10` is read-only;
//! * every jump lands in bounds, never into the second slot of an `lddw`,
//!   and never **backwards** — the control-flow graph is a DAG, so every
//!   program provably terminates;
//! * no path falls off the end of the program, and every path reaches
//!   `exit` with `r0` initialised;
//! * no read of an uninitialised register (data-flow analysis over the
//!   DAG);
//! * no division or modulo by a zero immediate;
//! * helper calls reference registered helpers only;
//! * direct stack accesses through `r10` stay within the 512-byte frame.
//!
//! Unlike the kernel, pointer/scalar *type* tracking is not implemented;
//! memory accesses through computed pointers are instead bounds-checked at
//! runtime by the interpreter, which is equivalent for safety in a
//! simulator (a rejected access aborts the program, it cannot corrupt the
//! host).

use crate::insn::*;

/// Why the verifier rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The program is empty.
    Empty,
    /// More than [`MAX_INSNS`] instructions.
    TooLong(usize),
    /// Unknown or malformed opcode at the given index.
    BadOpcode {
        /// The opcode byte.
        opcode: u8,
        /// Instruction index.
        insn: usize,
    },
    /// A register operand above `r10`.
    BadRegister {
        /// The register number.
        reg: u8,
        /// Instruction index.
        insn: usize,
    },
    /// A write targeting the read-only frame pointer.
    WriteToFramePointer(usize),
    /// Jump target outside the program.
    JumpOutOfBounds(usize),
    /// Jump target is the second slot of an `lddw`.
    JumpIntoLddw(usize),
    /// A backward jump (loops are not allowed).
    BackwardJump(usize),
    /// An `lddw` missing its second slot, or a second slot that is not
    /// all-zero apart from the immediate.
    TruncatedLddw(usize),
    /// Execution can run past the last instruction.
    FallsOffEnd(usize),
    /// A read of a register never written on some path.
    UninitializedRegister {
        /// The register number.
        reg: u8,
        /// Instruction index.
        insn: usize,
    },
    /// Division or modulo by a zero immediate.
    DivisionByZero(usize),
    /// A call to a helper id that is not registered.
    UnknownHelper {
        /// The helper id.
        id: i32,
        /// Instruction index.
        insn: usize,
    },
    /// A direct `r10`-relative access outside the 512-byte stack frame.
    InvalidStackAccess {
        /// The offset used.
        off: i32,
        /// Instruction index.
        insn: usize,
    },
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::Empty => f.write_str("empty program"),
            VerifyError::TooLong(n) => write!(f, "program has {n} insns, limit is {MAX_INSNS}"),
            VerifyError::BadOpcode { opcode, insn } => {
                write!(f, "unknown opcode {opcode:#04x} at insn {insn}")
            }
            VerifyError::BadRegister { reg, insn } => {
                write!(f, "invalid register r{reg} at insn {insn}")
            }
            VerifyError::WriteToFramePointer(i) => write!(f, "write to read-only r10 at insn {i}"),
            VerifyError::JumpOutOfBounds(i) => write!(f, "jump out of bounds at insn {i}"),
            VerifyError::JumpIntoLddw(i) => write!(f, "jump into lddw body at insn {i}"),
            VerifyError::BackwardJump(i) => write!(f, "back-edge at insn {i} (loops forbidden)"),
            VerifyError::TruncatedLddw(i) => write!(f, "truncated lddw at insn {i}"),
            VerifyError::FallsOffEnd(i) => write!(f, "control falls off program end at insn {i}"),
            VerifyError::UninitializedRegister { reg, insn } => {
                write!(f, "read of uninitialized r{reg} at insn {insn}")
            }
            VerifyError::DivisionByZero(i) => write!(f, "division by zero immediate at insn {i}"),
            VerifyError::UnknownHelper { id, insn } => {
                write!(f, "unknown helper {id} at insn {insn}")
            }
            VerifyError::InvalidStackAccess { off, insn } => {
                write!(f, "stack access at fp{off:+} outside frame at insn {insn}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

const ALU_OPS: [u8; 13] = [
    BPF_ADD, BPF_SUB, BPF_MUL, BPF_DIV, BPF_OR, BPF_AND, BPF_LSH, BPF_RSH, BPF_NEG, BPF_MOD,
    BPF_XOR, BPF_MOV, BPF_ARSH,
];
const JMP_OPS: [u8; 13] = [
    BPF_JA, BPF_JEQ, BPF_JGT, BPF_JGE, BPF_JSET, BPF_JNE, BPF_JSGT, BPF_JSGE, BPF_JLT, BPF_JLE,
    BPF_JSLT, BPF_JSLE, BPF_CALL,
];

fn size_of_access(opcode: u8) -> usize {
    match opcode & 0x18 {
        BPF_W => 4,
        BPF_H => 2,
        BPF_B => 1,
        _ => 8, // BPF_DW
    }
}

/// Verifies `insns`; `helpers` is the set of callable helper ids.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify(insns: &[Insn], helpers: &[i32]) -> Result<(), VerifyError> {
    if insns.is_empty() {
        return Err(VerifyError::Empty);
    }
    if insns.len() > MAX_INSNS {
        return Err(VerifyError::TooLong(insns.len()));
    }

    // Pass 1: structural checks, and mark lddw second slots.
    let mut is_lddw_body = vec![false; insns.len()];
    {
        let mut i = 0;
        while i < insns.len() {
            let insn = &insns[i];
            if insn.is_lddw() {
                if i + 1 >= insns.len() {
                    return Err(VerifyError::TruncatedLddw(i));
                }
                let body = &insns[i + 1];
                if body.opcode != 0 || body.dst != 0 || body.src != 0 || body.off != 0 {
                    return Err(VerifyError::TruncatedLddw(i));
                }
                is_lddw_body[i + 1] = true;
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    for (i, insn) in insns.iter().enumerate() {
        if is_lddw_body[i] {
            continue;
        }
        if insn.dst as usize >= NUM_REGS {
            return Err(VerifyError::BadRegister {
                reg: insn.dst,
                insn: i,
            });
        }
        if insn.src as usize >= NUM_REGS && !insn.is_lddw() {
            return Err(VerifyError::BadRegister {
                reg: insn.src,
                insn: i,
            });
        }
        match insn.class() {
            BPF_ALU | BPF_ALU64 => {
                let op = insn.opcode & 0xf0;
                if op == BPF_END {
                    if !matches!(insn.imm, 16 | 32 | 64) {
                        return Err(VerifyError::BadOpcode {
                            opcode: insn.opcode,
                            insn: i,
                        });
                    }
                } else if !ALU_OPS.contains(&op) {
                    return Err(VerifyError::BadOpcode {
                        opcode: insn.opcode,
                        insn: i,
                    });
                }
                if (op == BPF_DIV || op == BPF_MOD) && insn.opcode & 0x08 == BPF_K && insn.imm == 0
                {
                    return Err(VerifyError::DivisionByZero(i));
                }
                if insn.dst == REG_FP {
                    return Err(VerifyError::WriteToFramePointer(i));
                }
            }
            BPF_JMP | BPF_JMP32 => {
                let op = insn.opcode & 0xf0;
                if op == BPF_EXIT {
                    if insn.class() != BPF_JMP {
                        return Err(VerifyError::BadOpcode {
                            opcode: insn.opcode,
                            insn: i,
                        });
                    }
                    continue;
                }
                if !JMP_OPS.contains(&op) {
                    return Err(VerifyError::BadOpcode {
                        opcode: insn.opcode,
                        insn: i,
                    });
                }
                if op == BPF_CALL {
                    if insn.class() != BPF_JMP {
                        return Err(VerifyError::BadOpcode {
                            opcode: insn.opcode,
                            insn: i,
                        });
                    }
                    if !helpers.contains(&insn.imm) {
                        return Err(VerifyError::UnknownHelper {
                            id: insn.imm,
                            insn: i,
                        });
                    }
                    continue;
                }
                // Jump target checks.
                if insn.off < 0 {
                    return Err(VerifyError::BackwardJump(i));
                }
                let target = i as i64 + 1 + insn.off as i64;
                if target < 0 || target as usize >= insns.len() {
                    return Err(VerifyError::JumpOutOfBounds(i));
                }
                if is_lddw_body[target as usize] {
                    return Err(VerifyError::JumpIntoLddw(i));
                }
            }
            BPF_LD => {
                if !insn.is_lddw() {
                    return Err(VerifyError::BadOpcode {
                        opcode: insn.opcode,
                        insn: i,
                    });
                }
                if insn.dst == REG_FP {
                    return Err(VerifyError::WriteToFramePointer(i));
                }
            }
            BPF_LDX => {
                if insn.opcode & 0xe0 != BPF_MEM {
                    return Err(VerifyError::BadOpcode {
                        opcode: insn.opcode,
                        insn: i,
                    });
                }
                if insn.dst == REG_FP {
                    return Err(VerifyError::WriteToFramePointer(i));
                }
                if insn.src == REG_FP {
                    check_stack(insn.off, size_of_access(insn.opcode), i)?;
                }
            }
            BPF_ST | BPF_STX => {
                let mode = insn.opcode & 0xe0;
                let atomic = mode == BPF_ATOMIC && insn.class() == BPF_STX;
                if mode != BPF_MEM && !atomic {
                    return Err(VerifyError::BadOpcode {
                        opcode: insn.opcode,
                        insn: i,
                    });
                }
                if atomic {
                    // Only ADD (optionally with FETCH) on W/DW is
                    // implemented, as in pre-5.12 kernels (BPF_XADD).
                    let sz = insn.opcode & 0x18;
                    if (sz != BPF_W && sz != BPF_DW) || (insn.imm & !BPF_FETCH) != BPF_ADD as i32 {
                        return Err(VerifyError::BadOpcode {
                            opcode: insn.opcode,
                            insn: i,
                        });
                    }
                }
                if insn.dst == REG_FP {
                    check_stack(insn.off, size_of_access(insn.opcode), i)?;
                }
            }
            _ => {
                return Err(VerifyError::BadOpcode {
                    opcode: insn.opcode,
                    insn: i,
                })
            }
        }
    }

    // Pass 2: reachability + fall-off-end + register initialisation.
    // Since the CFG is a DAG (no back-edges), a forward pass visiting
    // instructions in order computes, for each reachable instruction, the
    // intersection of initialised-register sets over all inbound paths.
    const UNREACHED: u16 = u16::MAX;
    let mut init_at = vec![UNREACHED; insns.len()];
    // Entry: r1 (context) and r10 (frame pointer) are initialised.
    init_at[0] = (1 << 1) | (1 << 10);

    let mut i = 0;
    while i < insns.len() {
        if is_lddw_body[i] || init_at[i] == UNREACHED {
            i += 1;
            continue;
        }
        let insn = &insns[i];
        let mut regs = init_at[i];
        let require = |regs: u16, reg: u8, at: usize| -> Result<(), VerifyError> {
            if regs & (1 << reg) == 0 {
                Err(VerifyError::UninitializedRegister { reg, insn: at })
            } else {
                Ok(())
            }
        };
        let merge = |init_at: &mut Vec<u16>, target: usize, regs: u16| {
            if init_at[target] == UNREACHED {
                init_at[target] = regs;
            } else {
                init_at[target] &= regs;
            }
        };
        match insn.class() {
            BPF_ALU | BPF_ALU64 => {
                let op = insn.opcode & 0xf0;
                if op == BPF_MOV {
                    if insn.opcode & 0x08 == BPF_X {
                        require(regs, insn.src, i)?;
                    }
                } else if op == BPF_NEG || op == BPF_END {
                    require(regs, insn.dst, i)?;
                } else {
                    require(regs, insn.dst, i)?;
                    if insn.opcode & 0x08 == BPF_X {
                        require(regs, insn.src, i)?;
                    }
                }
                regs |= 1 << insn.dst;
            }
            BPF_LD => {
                // lddw
                regs |= 1 << insn.dst;
                if i + 2 >= insns.len() {
                    return Err(VerifyError::FallsOffEnd(i));
                }
                merge(&mut init_at, i + 2, regs);
                i += 2;
                continue;
            }
            BPF_LDX => {
                require(regs, insn.src, i)?;
                regs |= 1 << insn.dst;
            }
            BPF_ST => {
                require(regs, insn.dst, i)?;
            }
            BPF_STX => {
                require(regs, insn.dst, i)?;
                require(regs, insn.src, i)?;
                // Atomic fetch-and-add writes the old value into src.
                if insn.opcode & 0xe0 == BPF_ATOMIC && insn.imm & BPF_FETCH != 0 {
                    regs |= 1 << insn.src;
                }
            }
            BPF_JMP | BPF_JMP32 => {
                let op = insn.opcode & 0xf0;
                match op {
                    BPF_EXIT => {
                        require(regs, 0, i)?;
                        i += 1;
                        continue;
                    }
                    BPF_CALL => {
                        // Helpers read r1–r5 as needed (checked at
                        // runtime), clobber r1–r5 and set r0.
                        regs &= !0b111110;
                        regs |= 1;
                    }
                    BPF_JA => {
                        let target = i + 1 + insn.off as usize;
                        merge(&mut init_at, target, regs);
                        i += 1;
                        continue;
                    }
                    _ => {
                        require(regs, insn.dst, i)?;
                        if insn.opcode & 0x08 == BPF_X {
                            require(regs, insn.src, i)?;
                        }
                        let target = i + 1 + insn.off as usize;
                        merge(&mut init_at, target, regs);
                    }
                }
            }
            _ => unreachable!("pass 1 validated classes"),
        }
        if i + 1 >= insns.len() {
            return Err(VerifyError::FallsOffEnd(i));
        }
        merge(&mut init_at, i + 1, regs);
        i += 1;
    }

    Ok(())
}

fn check_stack(off: i16, size: usize, insn: usize) -> Result<(), VerifyError> {
    let off = off as i32;
    if off >= 0 || off < -(STACK_SIZE as i32) || off + size as i32 > 0 {
        return Err(VerifyError::InvalidStackAccess { off, insn });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg::*, Asm, Cond, Size};

    const HELPERS: &[i32] = &[1, 2, 3, 5, 6, 7, 8, 25, 26];

    fn ok(asm: Asm) {
        verify(&asm.build().unwrap(), HELPERS).unwrap();
    }

    fn err(asm: Asm) -> VerifyError {
        verify(&asm.build().unwrap(), HELPERS).unwrap_err()
    }

    #[test]
    fn minimal_program_passes() {
        ok(Asm::new().mov64_imm(R0, 0).exit());
    }

    #[test]
    fn empty_and_too_long_rejected() {
        assert_eq!(verify(&[], HELPERS), Err(VerifyError::Empty));
        let mut asm = Asm::new();
        for _ in 0..MAX_INSNS {
            asm = asm.mov64_imm(R0, 0);
        }
        let e = err(asm.exit());
        assert_eq!(e, VerifyError::TooLong(MAX_INSNS + 1));
    }

    #[test]
    fn exactly_4096_insns_accepted() {
        let mut asm = Asm::new();
        for _ in 0..MAX_INSNS - 2 {
            asm = asm.mov64_imm(R0, 0);
        }
        ok(asm.mov64_imm(R0, 0).exit());
    }

    #[test]
    fn falls_off_end_rejected() {
        assert!(matches!(
            err(Asm::new().mov64_imm(R0, 0)),
            VerifyError::FallsOffEnd(0)
        ));
    }

    #[test]
    fn backward_jump_rejected() {
        let e = err(Asm::new().label("top").mov64_imm(R0, 0).jump("top").exit());
        assert_eq!(e, VerifyError::BackwardJump(1));
    }

    #[test]
    fn jump_out_of_bounds_rejected() {
        let insns = vec![
            Insn::new(BPF_JMP | BPF_JA, 0, 0, 100, 0),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        assert_eq!(
            verify(&insns, HELPERS),
            Err(VerifyError::JumpOutOfBounds(0))
        );
    }

    #[test]
    fn jump_into_lddw_body_rejected() {
        let insns = vec![
            Insn::new(BPF_JMP | BPF_JA, 0, 0, 1, 0), // targets slot 2 = lddw body
            Insn::new(BPF_LD | BPF_IMM | BPF_DW, 1, 0, 0, 0),
            Insn::new(0, 0, 0, 0, 0),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        assert_eq!(verify(&insns, HELPERS), Err(VerifyError::JumpIntoLddw(0)));
    }

    #[test]
    fn truncated_lddw_rejected() {
        let insns = vec![Insn::new(BPF_LD | BPF_IMM | BPF_DW, 1, 0, 0, 0)];
        assert_eq!(verify(&insns, HELPERS), Err(VerifyError::TruncatedLddw(0)));
    }

    #[test]
    fn uninitialized_register_read_rejected() {
        let e = err(Asm::new().mov64(R0, R3).exit());
        assert_eq!(e, VerifyError::UninitializedRegister { reg: 3, insn: 0 });
    }

    #[test]
    fn exit_requires_r0() {
        let e = err(Asm::new().exit());
        assert_eq!(e, VerifyError::UninitializedRegister { reg: 0, insn: 0 });
    }

    #[test]
    fn call_clobbers_caller_saved_registers() {
        // r2 set before the call must not satisfy a read after it.
        let e = err(Asm::new()
            .mov64_imm(R2, 1)
            .call(5) // ktime_get_ns
            .mov64(R0, R2)
            .exit());
        assert_eq!(e, VerifyError::UninitializedRegister { reg: 2, insn: 2 });
    }

    #[test]
    fn call_initialises_r0() {
        ok(Asm::new().call(5).exit());
    }

    #[test]
    fn callee_saved_survive_calls() {
        ok(Asm::new().mov64_imm(R6, 1).call(5).mov64(R0, R6).exit());
    }

    #[test]
    fn merge_takes_intersection_at_join() {
        // r2 initialised on only one path into the join: read must fail.
        let e = err(Asm::new()
            .jmp_imm(Cond::Eq, R1, 0, "skip")
            .mov64_imm(R2, 5)
            .label("skip")
            .mov64(R0, R2)
            .exit());
        assert_eq!(e, VerifyError::UninitializedRegister { reg: 2, insn: 2 });
        // Initialised on both paths: fine.
        ok(Asm::new()
            .jmp_imm(Cond::Eq, R1, 0, "other")
            .mov64_imm(R2, 5)
            .jump("join")
            .label("other")
            .mov64_imm(R2, 6)
            .label("join")
            .mov64(R0, R2)
            .exit());
    }

    #[test]
    fn division_by_zero_immediate_rejected() {
        let e = err(Asm::new()
            .mov64_imm(R0, 10)
            .alu64_imm(crate::asm::AluOp::Div, R0, 0)
            .exit());
        assert_eq!(e, VerifyError::DivisionByZero(1));
        let e = err(Asm::new()
            .mov64_imm(R0, 10)
            .alu64_imm(crate::asm::AluOp::Mod, R0, 0)
            .exit());
        assert_eq!(e, VerifyError::DivisionByZero(1));
    }

    #[test]
    fn unknown_helper_rejected() {
        let e = err(Asm::new().call(9999).exit());
        assert_eq!(e, VerifyError::UnknownHelper { id: 9999, insn: 0 });
    }

    #[test]
    fn write_to_frame_pointer_rejected() {
        assert_eq!(
            err(Asm::new().mov64_imm(R10, 0).exit()),
            VerifyError::WriteToFramePointer(0)
        );
        assert_eq!(
            err(Asm::new().mov64_imm(R0, 0).ldx(Size::W, R10, R1, 0).exit()),
            VerifyError::WriteToFramePointer(1)
        );
    }

    #[test]
    fn stack_bounds_checked_for_fp_accesses() {
        ok(Asm::new()
            .mov64_imm(R0, 0)
            .stx(Size::DW, R10, R0, -8)
            .exit());
        ok(Asm::new()
            .mov64_imm(R0, 0)
            .stx(Size::B, R10, R0, -512)
            .exit());
        assert!(matches!(
            err(Asm::new()
                .mov64_imm(R0, 0)
                .stx(Size::DW, R10, R0, -516)
                .exit()),
            VerifyError::InvalidStackAccess { off: -516, .. }
        ));
        assert!(matches!(
            err(Asm::new()
                .mov64_imm(R0, 0)
                .stx(Size::DW, R10, R0, -4)
                .exit()),
            VerifyError::InvalidStackAccess { off: -4, .. }
        ));
        assert!(matches!(
            err(Asm::new().mov64_imm(R0, 0).st(Size::W, R10, 8, 1).exit()),
            VerifyError::InvalidStackAccess { off: 8, .. }
        ));
    }

    #[test]
    fn bad_register_rejected() {
        let insns = vec![
            Insn::new(BPF_ALU64 | BPF_MOV | BPF_K, 11, 0, 0, 0),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        assert_eq!(
            verify(&insns, HELPERS),
            Err(VerifyError::BadRegister { reg: 11, insn: 0 })
        );
    }

    #[test]
    fn bad_opcode_rejected() {
        let insns = vec![
            Insn::new(0xff, 0, 0, 0, 0),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        assert!(matches!(
            verify(&insns, HELPERS),
            Err(VerifyError::BadOpcode {
                opcode: 0xff,
                insn: 0
            })
        ));
    }

    #[test]
    fn unreachable_code_is_ignored() {
        // Dead code after exit never executes; it may read anything.
        ok(Asm::new().mov64_imm(R0, 0).exit().mov64(R0, R9).exit());
    }

    #[test]
    fn errors_display() {
        for e in [
            VerifyError::Empty,
            VerifyError::TooLong(5000),
            VerifyError::BackwardJump(3),
            VerifyError::UninitializedRegister { reg: 4, insn: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
