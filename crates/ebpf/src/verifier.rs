//! The static verifier.
//!
//! Before a program may attach, it must pass the same class of checks the
//! Linux verifier applies (for the 4.x kernels the paper targets):
//!
//! * at most [`MAX_INSNS`] (4096) instructions — the size limit the paper
//!   calls out in §II;
//! * only known opcodes and registers; `r10` is read-only;
//! * every jump lands in bounds, never into the second slot of an `lddw`,
//!   and never **backwards** — the control-flow graph is a DAG, so every
//!   program provably terminates;
//! * no path falls off the end of the program, and every path reaches
//!   `exit` with `r0` initialised;
//! * no read of an uninitialised register on any path;
//! * no division or modulo by a zero immediate, and no division by a
//!   register whose value the analysis cannot prove nonzero;
//! * helper calls reference registered helpers only;
//! * direct stack accesses through `r10` stay within the 512-byte frame.
//!
//! Since PR 4 the data-flow pass is a path-sensitive abstract interpreter
//! over typed register states ([`crate::analysis`]), the same analysis
//! the kernel performs: it tracks pointer/scalar types, known bits and
//! value ranges, narrows states at conditional jumps, and exports the
//! memory accesses it *proved* safe so the JIT can drop their runtime
//! checks. Accesses it cannot prove remain verifier-accepted and
//! bounds-checked at runtime, which is equivalent for safety in a
//! simulator (a rejected access aborts the program, it cannot corrupt
//! the host).
//!
//! [`verify`] keeps the historical single-error contract; use
//! [`crate::analysis::analyze`] for every diagnostic plus the per-
//! instruction facts and register states.

use crate::insn::*;

/// Why the verifier rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The program is empty.
    Empty,
    /// More than [`MAX_INSNS`] instructions.
    TooLong(usize),
    /// Unknown or malformed opcode at the given index.
    BadOpcode {
        /// The opcode byte.
        opcode: u8,
        /// Instruction index.
        insn: usize,
    },
    /// A register operand above `r10`.
    BadRegister {
        /// The register number.
        reg: u8,
        /// Instruction index.
        insn: usize,
    },
    /// A write targeting the read-only frame pointer.
    WriteToFramePointer(usize),
    /// Jump target outside the program.
    JumpOutOfBounds(usize),
    /// Jump target is the second slot of an `lddw`.
    JumpIntoLddw(usize),
    /// A backward jump (loops are not allowed).
    BackwardJump(usize),
    /// An `lddw` missing its second slot, or a second slot that is not
    /// all-zero apart from the immediate.
    TruncatedLddw(usize),
    /// Execution can run past the last instruction.
    FallsOffEnd(usize),
    /// A read of a register never written on some path.
    UninitializedRegister {
        /// The register number.
        reg: u8,
        /// Instruction index.
        insn: usize,
    },
    /// Division or modulo by a zero immediate.
    DivisionByZero(usize),
    /// Division or modulo by a register whose value range contains zero
    /// with no guarding branch.
    DivisorMayBeZero {
        /// The divisor register.
        reg: u8,
        /// Instruction index.
        insn: usize,
    },
    /// A call to a helper id that is not registered.
    UnknownHelper {
        /// The helper id.
        id: i32,
        /// Instruction index.
        insn: usize,
    },
    /// A direct `r10`-relative access outside the 512-byte stack frame.
    InvalidStackAccess {
        /// The offset used.
        off: i32,
        /// Instruction index.
        insn: usize,
    },
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyError::Empty => f.write_str("empty program"),
            VerifyError::TooLong(n) => write!(f, "program has {n} insns, limit is {MAX_INSNS}"),
            VerifyError::BadOpcode { opcode, insn } => {
                write!(f, "unknown opcode {opcode:#04x} at insn {insn}")
            }
            VerifyError::BadRegister { reg, insn } => {
                write!(f, "invalid register r{reg} at insn {insn}")
            }
            VerifyError::WriteToFramePointer(i) => write!(f, "write to read-only r10 at insn {i}"),
            VerifyError::JumpOutOfBounds(i) => write!(f, "jump out of bounds at insn {i}"),
            VerifyError::JumpIntoLddw(i) => write!(f, "jump into lddw body at insn {i}"),
            VerifyError::BackwardJump(i) => write!(f, "back-edge at insn {i} (loops forbidden)"),
            VerifyError::TruncatedLddw(i) => write!(f, "truncated lddw at insn {i}"),
            VerifyError::FallsOffEnd(i) => write!(f, "control falls off program end at insn {i}"),
            VerifyError::UninitializedRegister { reg, insn } => {
                write!(f, "read of uninitialized r{reg} at insn {insn}")
            }
            VerifyError::DivisionByZero(i) => write!(f, "division by zero immediate at insn {i}"),
            VerifyError::DivisorMayBeZero { reg, insn } => {
                write!(f, "divisor r{reg} not proven nonzero at insn {insn}")
            }
            VerifyError::UnknownHelper { id, insn } => {
                write!(f, "unknown helper {id} at insn {insn}")
            }
            VerifyError::InvalidStackAccess { off, insn } => {
                write!(f, "stack access at fp{off:+} outside frame at insn {insn}")
            }
        }
    }
}

impl VerifyError {
    /// The instruction index the error is anchored to, when it has one
    /// (`Empty` and `TooLong` are whole-program errors).
    pub fn insn(&self) -> Option<usize> {
        match self {
            VerifyError::Empty | VerifyError::TooLong(_) => None,
            VerifyError::BadOpcode { insn, .. }
            | VerifyError::BadRegister { insn, .. }
            | VerifyError::UninitializedRegister { insn, .. }
            | VerifyError::UnknownHelper { insn, .. }
            | VerifyError::InvalidStackAccess { insn, .. }
            | VerifyError::DivisorMayBeZero { insn, .. } => Some(*insn),
            VerifyError::WriteToFramePointer(i)
            | VerifyError::JumpOutOfBounds(i)
            | VerifyError::JumpIntoLddw(i)
            | VerifyError::BackwardJump(i)
            | VerifyError::TruncatedLddw(i)
            | VerifyError::FallsOffEnd(i)
            | VerifyError::DivisionByZero(i) => Some(*i),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies `insns`; `helpers` is the set of callable helper ids.
///
/// Thin wrapper over [`crate::analysis::analyze`] preserving the
/// historical single-error contract (no map knowledge, first diagnostic
/// only). The loader runs the analysis itself so it can keep the full
/// [`crate::analysis::Analysis`] artifact.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify(insns: &[Insn], helpers: &[i32]) -> Result<(), VerifyError> {
    let analysis = crate::analysis::analyze(insns, helpers, |_| None);
    match analysis.first_error() {
        Some(e) => Err(e.clone()),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg::*, Asm, Cond, Size};

    const HELPERS: &[i32] = &[1, 2, 3, 5, 6, 7, 8, 25, 26];

    fn ok(asm: Asm) {
        verify(&asm.build().unwrap(), HELPERS).unwrap();
    }

    fn err(asm: Asm) -> VerifyError {
        verify(&asm.build().unwrap(), HELPERS).unwrap_err()
    }

    #[test]
    fn minimal_program_passes() {
        ok(Asm::new().mov64_imm(R0, 0).exit());
    }

    #[test]
    fn empty_and_too_long_rejected() {
        assert_eq!(verify(&[], HELPERS), Err(VerifyError::Empty));
        let mut asm = Asm::new();
        for _ in 0..MAX_INSNS {
            asm = asm.mov64_imm(R0, 0);
        }
        let e = err(asm.exit());
        assert_eq!(e, VerifyError::TooLong(MAX_INSNS + 1));
    }

    #[test]
    fn exactly_4096_insns_accepted() {
        let mut asm = Asm::new();
        for _ in 0..MAX_INSNS - 2 {
            asm = asm.mov64_imm(R0, 0);
        }
        ok(asm.mov64_imm(R0, 0).exit());
    }

    #[test]
    fn falls_off_end_rejected() {
        assert!(matches!(
            err(Asm::new().mov64_imm(R0, 0)),
            VerifyError::FallsOffEnd(0)
        ));
    }

    #[test]
    fn backward_jump_rejected() {
        let e = err(Asm::new().label("top").mov64_imm(R0, 0).jump("top").exit());
        assert_eq!(e, VerifyError::BackwardJump(1));
    }

    #[test]
    fn jump_out_of_bounds_rejected() {
        let insns = vec![
            Insn::new(BPF_JMP | BPF_JA, 0, 0, 100, 0),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        assert_eq!(
            verify(&insns, HELPERS),
            Err(VerifyError::JumpOutOfBounds(0))
        );
    }

    #[test]
    fn jump_into_lddw_body_rejected() {
        let insns = vec![
            Insn::new(BPF_JMP | BPF_JA, 0, 0, 1, 0), // targets slot 2 = lddw body
            Insn::new(BPF_LD | BPF_IMM | BPF_DW, 1, 0, 0, 0),
            Insn::new(0, 0, 0, 0, 0),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        assert_eq!(verify(&insns, HELPERS), Err(VerifyError::JumpIntoLddw(0)));
    }

    #[test]
    fn truncated_lddw_rejected() {
        let insns = vec![Insn::new(BPF_LD | BPF_IMM | BPF_DW, 1, 0, 0, 0)];
        assert_eq!(verify(&insns, HELPERS), Err(VerifyError::TruncatedLddw(0)));
    }

    #[test]
    fn uninitialized_register_read_rejected() {
        let e = err(Asm::new().mov64(R0, R3).exit());
        assert_eq!(e, VerifyError::UninitializedRegister { reg: 3, insn: 0 });
    }

    #[test]
    fn exit_requires_r0() {
        let e = err(Asm::new().exit());
        assert_eq!(e, VerifyError::UninitializedRegister { reg: 0, insn: 0 });
    }

    #[test]
    fn call_clobbers_caller_saved_registers() {
        // r2 set before the call must not satisfy a read after it.
        let e = err(Asm::new()
            .mov64_imm(R2, 1)
            .call(5) // ktime_get_ns
            .mov64(R0, R2)
            .exit());
        assert_eq!(e, VerifyError::UninitializedRegister { reg: 2, insn: 2 });
    }

    #[test]
    fn call_initialises_r0() {
        ok(Asm::new().call(5).exit());
    }

    #[test]
    fn callee_saved_survive_calls() {
        ok(Asm::new().mov64_imm(R6, 1).call(5).mov64(R0, R6).exit());
    }

    #[test]
    fn merge_takes_intersection_at_join() {
        // r2 initialised on only one path into the join: read must fail.
        let e = err(Asm::new()
            .jmp_imm(Cond::Eq, R1, 0, "skip")
            .mov64_imm(R2, 5)
            .label("skip")
            .mov64(R0, R2)
            .exit());
        assert_eq!(e, VerifyError::UninitializedRegister { reg: 2, insn: 2 });
        // Initialised on both paths: fine.
        ok(Asm::new()
            .jmp_imm(Cond::Eq, R1, 0, "other")
            .mov64_imm(R2, 5)
            .jump("join")
            .label("other")
            .mov64_imm(R2, 6)
            .label("join")
            .mov64(R0, R2)
            .exit());
    }

    #[test]
    fn division_by_zero_immediate_rejected() {
        let e = err(Asm::new()
            .mov64_imm(R0, 10)
            .alu64_imm(crate::asm::AluOp::Div, R0, 0)
            .exit());
        assert_eq!(e, VerifyError::DivisionByZero(1));
        let e = err(Asm::new()
            .mov64_imm(R0, 10)
            .alu64_imm(crate::asm::AluOp::Mod, R0, 0)
            .exit());
        assert_eq!(e, VerifyError::DivisionByZero(1));
    }

    #[test]
    fn unknown_helper_rejected() {
        let e = err(Asm::new().call(9999).exit());
        assert_eq!(e, VerifyError::UnknownHelper { id: 9999, insn: 0 });
    }

    #[test]
    fn write_to_frame_pointer_rejected() {
        assert_eq!(
            err(Asm::new().mov64_imm(R10, 0).exit()),
            VerifyError::WriteToFramePointer(0)
        );
        assert_eq!(
            err(Asm::new().mov64_imm(R0, 0).ldx(Size::W, R10, R1, 0).exit()),
            VerifyError::WriteToFramePointer(1)
        );
    }

    #[test]
    fn stack_bounds_checked_for_fp_accesses() {
        ok(Asm::new()
            .mov64_imm(R0, 0)
            .stx(Size::DW, R10, R0, -8)
            .exit());
        ok(Asm::new()
            .mov64_imm(R0, 0)
            .stx(Size::B, R10, R0, -512)
            .exit());
        assert!(matches!(
            err(Asm::new()
                .mov64_imm(R0, 0)
                .stx(Size::DW, R10, R0, -516)
                .exit()),
            VerifyError::InvalidStackAccess { off: -516, .. }
        ));
        assert!(matches!(
            err(Asm::new()
                .mov64_imm(R0, 0)
                .stx(Size::DW, R10, R0, -4)
                .exit()),
            VerifyError::InvalidStackAccess { off: -4, .. }
        ));
        assert!(matches!(
            err(Asm::new().mov64_imm(R0, 0).st(Size::W, R10, 8, 1).exit()),
            VerifyError::InvalidStackAccess { off: 8, .. }
        ));
    }

    #[test]
    fn bad_register_rejected() {
        let insns = vec![
            Insn::new(BPF_ALU64 | BPF_MOV | BPF_K, 11, 0, 0, 0),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        assert_eq!(
            verify(&insns, HELPERS),
            Err(VerifyError::BadRegister { reg: 11, insn: 0 })
        );
    }

    #[test]
    fn bad_opcode_rejected() {
        let insns = vec![
            Insn::new(0xff, 0, 0, 0, 0),
            Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0),
        ];
        assert!(matches!(
            verify(&insns, HELPERS),
            Err(VerifyError::BadOpcode {
                opcode: 0xff,
                insn: 0
            })
        ));
    }

    #[test]
    fn unreachable_code_is_ignored() {
        // Dead code after exit never executes; it may read anything.
        ok(Asm::new().mov64_imm(R0, 0).exit().mov64(R0, R9).exit());
    }

    #[test]
    fn errors_display() {
        for e in [
            VerifyError::Empty,
            VerifyError::TooLong(5000),
            VerifyError::BackwardJump(3),
            VerifyError::UninitializedRegister { reg: 4, insn: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
