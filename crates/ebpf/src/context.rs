//! The trace-program context: the struct a program receives in `r1`.
//!
//! Mirrors the fixed-layout context structs the kernel hands eBPF
//! programs. Trace scripts read packet headers either through the
//! `data`/`data_end` pointers (XDP style) or with the `skb_load_bytes`
//! helper; both are bounds-checked by the VM.

use serde::{Deserialize, Serialize};

/// Byte offset of `timestamp_ns` in the context.
pub const CTX_OFF_TIMESTAMP: i16 = 0;
/// Byte offset of `pkt_len`.
pub const CTX_OFF_PKT_LEN: i16 = 8;
/// Byte offset of `cpu`.
pub const CTX_OFF_CPU: i16 = 12;
/// Byte offset of `node`.
pub const CTX_OFF_NODE: i16 = 16;
/// Byte offset of `device`.
pub const CTX_OFF_DEVICE: i16 = 20;
/// Byte offset of `data` (pointer to first packet byte).
pub const CTX_OFF_DATA: i16 = 24;
/// Byte offset of `data_end` (pointer one past the last packet byte).
pub const CTX_OFF_DATA_END: i16 = 32;
/// Byte offset of `direction` (0 = RX, 1 = TX).
pub const CTX_OFF_DIRECTION: i16 = 40;
/// Byte offset of `aux` (hook-specific auxiliary word).
pub const CTX_OFF_AUX: i16 = 44;
/// Total context size in bytes.
pub const CTX_SIZE: usize = 48;

/// The context handed to a trace program, in its host (Rust) form.
///
/// [`TraceContext::to_bytes`] lays it out exactly as programs expect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceContext {
    /// Node-local `CLOCK_MONOTONIC` at the probe firing, in nanoseconds.
    pub timestamp_ns: u64,
    /// Packet length in bytes (0 when the hook carries no packet).
    pub pkt_len: u32,
    /// CPU the probe fired on.
    pub cpu: u32,
    /// Node id.
    pub node: u32,
    /// Device id (`u32::MAX` when none).
    pub device: u32,
    /// Direction: 0 = RX, 1 = TX.
    pub direction: u32,
    /// Hook-specific auxiliary word: the typed drop-reason code at
    /// `kfree_skb`, the flow-table hit flag at `ovs_flow_tbl_lookup`,
    /// zero everywhere else.
    pub aux: u32,
}

impl TraceContext {
    /// Serializes into the fixed VM layout, with `data`/`data_end` set to
    /// the VM's packet region bounds.
    pub fn to_bytes(self, data: u64, data_end: u64) -> [u8; CTX_SIZE] {
        let mut b = [0u8; CTX_SIZE];
        b[0..8].copy_from_slice(&self.timestamp_ns.to_le_bytes());
        b[8..12].copy_from_slice(&self.pkt_len.to_le_bytes());
        b[12..16].copy_from_slice(&self.cpu.to_le_bytes());
        b[16..20].copy_from_slice(&self.node.to_le_bytes());
        b[20..24].copy_from_slice(&self.device.to_le_bytes());
        b[24..32].copy_from_slice(&data.to_le_bytes());
        b[32..40].copy_from_slice(&data_end.to_le_bytes());
        b[40..44].copy_from_slice(&self.direction.to_le_bytes());
        b[44..48].copy_from_slice(&self.aux.to_le_bytes());
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_offsets() {
        let ctx = TraceContext {
            timestamp_ns: 0x1112131415161718,
            pkt_len: 96,
            cpu: 3,
            node: 1,
            device: 9,
            direction: 1,
            aux: 5,
        };
        let b = ctx.to_bytes(0x2000_0000, 0x2000_0060);
        let ts = u64::from_le_bytes(b[CTX_OFF_TIMESTAMP as usize..8].try_into().unwrap());
        assert_eq!(ts, 0x1112131415161718);
        let len = u32::from_le_bytes(b[CTX_OFF_PKT_LEN as usize..12].try_into().unwrap());
        assert_eq!(len, 96);
        assert_eq!(b[CTX_OFF_CPU as usize], 3);
        assert_eq!(b[CTX_OFF_NODE as usize], 1);
        assert_eq!(b[CTX_OFF_DEVICE as usize], 9);
        let data = u64::from_le_bytes(b[CTX_OFF_DATA as usize..32].try_into().unwrap());
        let data_end = u64::from_le_bytes(b[CTX_OFF_DATA_END as usize..40].try_into().unwrap());
        assert_eq!(data_end - data, 0x60);
        assert_eq!(b[CTX_OFF_DIRECTION as usize], 1);
        assert_eq!(b[CTX_OFF_AUX as usize], 5);
    }
}
