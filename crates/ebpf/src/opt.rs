//! The trace-program optimizer: analysis-driven rewriting between
//! verification and tier lowering.
//!
//! Three dataflow passes run over the verified CFG — which the verifier
//! guarantees is a DAG (backward jumps are rejected), so every pass is a
//! single in-order or reverse-order sweep with no fixpoint iteration:
//!
//! 1. **Forward value propagation** ([`forward_rewrite`]): a symbolic
//!    constant/copy propagation seeded from the verifier's per-insn
//!    facts. Registers hold [`Val`]s — constants or symbolic values
//!    keyed on their defining instruction — and an availability map
//!    remembers what each proven memory location last held, keyed on
//!    the verifier's [`MemFact`]s (ctx/stack) or on symbolic base+offset
//!    (packet/map-value). Statically-decided ALU ops fold to `mov`,
//!    redundant reloads fold to register copies or immediates, and
//!    branches decided either by the propagated constants or by the
//!    verifier's own [`BranchFact`]s collapse to `ja`. Equality
//!    branches refine the surviving edge: the compared symbol becomes a
//!    constant in both the registers *and* the availability map, which
//!    is what lets a packet-field reload after a filter test fold to
//!    the tested immediate.
//! 2. **Backward liveness** ([`liveness`]): dead-code and dead-store
//!    elimination. Register liveness removes side-effect-free defs of
//!    dead registers (all ALU forms — `div`/`mod` are total in this VM —
//!    plus loads the verifier proved cannot fault); byte-granular stack
//!    liveness removes stores to slots never reloaded. Any load the
//!    verifier could not classify may hit the stack at runtime (wild
//!    scalar loads are bounds-checked, not rejected), so it keeps every
//!    stack byte live.
//! 3. **Compaction** ([`compact`]): drops unreachable and dead
//!    instructions, threads `ja`-to-`ja` chains, erases jumps to the
//!    next live instruction, and remaps every branch offset.
//!
//! The rounds repeat until a sweep changes nothing (capped — each round
//! strictly shrinks or strictly folds, so the cap is slack, not a
//! correctness device). **Soundness gate:** the final stream is
//! re-verified with the same analysis that admitted the original; if
//! re-verification failed the optimizer would fall back to the original
//! program and say so in [`OptStats::reverified`]. The differential
//! proptests additionally pin raw and optimized programs to identical
//! returns, records, map side effects and aborts on both tiers.

use crate::analysis::{analyze, Analysis, BranchFact, MemFact};
use crate::insn::*;
use crate::vm::{alu32, alu64, jump_taken};

/// Rounds of (rewrite, liveness, compact) before stopping even if the
/// stream is still changing. Each round either strictly shrinks the
/// program or strictly reduces the set of foldable instructions, so
/// four rounds is far past convergence for real programs.
const MAX_ROUNDS: usize = 4;

/// Synthetic defining-site id for the entry value of `r1` (ctx pointer).
const ENTRY_CTX: u32 = u32::MAX;
/// Synthetic defining-site id for the entry value of `r10` (frame ptr).
const ENTRY_FP: u32 = u32::MAX - 1;

/// What the optimizer did, for `ScriptStats`, `vnt analyze` and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Instruction slots before optimization (`lddw` counts two).
    pub original_insns: usize,
    /// Instruction slots after optimization.
    pub optimized_insns: usize,
    /// ALU/endian ops folded to `mov` immediates.
    pub folded_alu: usize,
    /// Conditional branches collapsed to `ja`.
    pub folded_branches: usize,
    /// Redundant loads rewritten to register copies or immediates.
    pub loads_forwarded: usize,
    /// Dead or unreachable instructions removed outright.
    pub dead_code_removed: usize,
    /// Stores to never-reloaded stack slots removed.
    pub dead_stores_removed: usize,
    /// Rewrite rounds run.
    pub rounds: usize,
    /// The optimized stream passed re-verification (always true for a
    /// returned optimized program; false only on the fallback path).
    pub reverified: bool,
}

impl OptStats {
    /// Instruction slots eliminated end to end.
    pub fn insns_eliminated(&self) -> usize {
        self.original_insns.saturating_sub(self.optimized_insns)
    }
}

/// An optimized program plus the analysis that re-verified it.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// The rewritten instruction stream (verifier-accepted).
    pub insns: Vec<Insn>,
    /// What changed.
    pub stats: OptStats,
    /// The re-verification analysis of `insns` (checked `ok()`).
    pub analysis: Analysis,
}

/// Optimizes a verifier-accepted program.
///
/// `insns` must already have passed [`analyze`] with the same `helpers`
/// and `map_value_size` (the loader guarantees this); the optimizer
/// re-runs the analysis between rounds because folding branches changes
/// reachability. If the optimized stream somehow failed re-verification
/// the original program is returned unchanged with
/// [`OptStats::reverified`] false — optimization can be skipped, never
/// trusted unchecked.
pub fn optimize(
    insns: &[Insn],
    helpers: &[i32],
    map_value_size: &dyn Fn(i32) -> Option<u64>,
) -> OptResult {
    let mut stats = OptStats {
        original_insns: insns.len(),
        ..OptStats::default()
    };
    let mut cur = insns.to_vec();
    for round in 0..MAX_ROUNDS {
        let analysis = analyze(&cur, helpers, map_value_size);
        if !analysis.ok() {
            break; // caller's stream was unverified; fall back below
        }
        stats.rounds = round + 1;
        let rewrote = forward_rewrite(&mut cur, &analysis, &mut stats);
        let analysis = if rewrote {
            analyze(&cur, helpers, map_value_size)
        } else {
            analysis
        };
        if !analysis.ok() {
            break;
        }
        let keep = liveness(&cur, &analysis, &mut stats);
        let compacted = compact(&cur, keep);
        let shrunk = match compacted {
            Some(next) => {
                cur = next;
                true
            }
            None => false,
        };
        if !rewrote && !shrunk {
            break;
        }
    }
    // The soundness gate: the optimized program must satisfy the same
    // verifier that admitted the original.
    let analysis = analyze(&cur, helpers, map_value_size);
    if !analysis.ok() {
        let analysis = analyze(insns, helpers, map_value_size);
        return OptResult {
            insns: insns.to_vec(),
            stats: OptStats {
                original_insns: insns.len(),
                optimized_insns: insns.len(),
                reverified: false,
                ..OptStats::default()
            },
            analysis,
        };
    }
    stats.optimized_insns = cur.len();
    stats.reverified = true;
    OptResult {
        insns: cur,
        stats,
        analysis,
    }
}

/// An abstract value: unknown, a known 64-bit constant, or "whatever
/// the instruction at `def` produced, plus `delta`". Symbolic equality
/// is what licenses copy propagation and redundant-load elimination;
/// `width` records a zero-extension guarantee (a byte load's value fits
/// in 8 bits) so 32-bit branch refinement knows when the lower-half
/// comparison pins the full value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    Top,
    Const(u64),
    Sym { def: u32, delta: i64, width: u8 },
}

impl Val {
    fn sym(def: usize, width: u8) -> Self {
        Val::Sym {
            def: def as u32,
            delta: 0,
            width,
        }
    }
}

/// A tracked memory location. Ctx and stack keys come straight from the
/// verifier's constant-offset proofs; everything else (packet bytes,
/// map values) is keyed symbolically on base value + offset, valid
/// exactly as long as the base symbol is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemKey {
    Ctx {
        off: u16,
        size: u8,
    },
    Stack {
        idx: u16,
        size: u8,
    },
    Sym {
        base_def: u32,
        base_delta: i64,
        off: i16,
        size: u8,
        region: Region,
    },
}

/// Coarse alias class for symbolic keys: map-value pointers cannot
/// alias packet bytes, but a wild scalar pointer can alias anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    Map,
    Other,
}

/// Per-edge dataflow state: register values plus available memory.
#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: [Val; NUM_REGS],
    mem: Vec<(MemKey, Val)>,
}

impl State {
    fn entry() -> Self {
        let mut regs = [Val::Top; NUM_REGS];
        regs[1] = Val::Sym {
            def: ENTRY_CTX,
            delta: 0,
            width: 64,
        };
        regs[10] = Val::Sym {
            def: ENTRY_FP,
            delta: 0,
            width: 64,
        };
        State {
            regs,
            mem: Vec::new(),
        }
    }

    fn mem_get(&self, key: &MemKey) -> Option<Val> {
        self.mem.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    fn mem_put(&mut self, key: MemKey, val: Val) {
        if let Some(slot) = self.mem.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = val;
        } else {
            self.mem.push((key, val));
        }
    }

    /// Drops every tracked location a write through the given access
    /// class could alias.
    fn clobber(&mut self, write: Clobber) {
        self.mem.retain(|(k, _)| match (write, k) {
            (Clobber::All, _) => false,
            // A constant-offset stack write aliases overlapping stack
            // bytes — and any wild (Other-region) location, since a
            // scalar pointer may point into the frame.
            (Clobber::Stack { idx, size }, MemKey::Stack { idx: ki, size: ks }) => {
                let (a0, a1) = (idx as u32, idx as u32 + size as u32);
                let (b0, b1) = (*ki as u32, *ki as u32 + *ks as u32);
                a1 <= b0 || b1 <= a0
            }
            (Clobber::Stack { .. }, MemKey::Sym { region, .. }) => *region != Region::Other,
            (Clobber::Stack { .. }, _) => true,
            (Clobber::StackAll, MemKey::Stack { .. }) => false,
            (Clobber::StackAll, MemKey::Sym { region, .. }) => *region != Region::Other,
            (Clobber::StackAll, _) => true,
            (Clobber::MapValues, MemKey::Sym { .. }) => false,
            (Clobber::MapValues, _) => true,
        });
    }

    /// Replaces every occurrence of `sym` (a delta-0 symbol) with the
    /// constant `c` — the branch-refinement step.
    fn refine(&mut self, sym: Val, c: u64) {
        for r in &mut self.regs {
            if *r == sym {
                *r = Val::Const(c);
            }
        }
        for (_, v) in &mut self.mem {
            if *v == sym {
                *v = Val::Const(c);
            }
        }
    }

    /// Pointwise meet: registers must agree exactly, memory keeps the
    /// intersection of identical entries.
    fn join(&mut self, other: &State) {
        for (a, b) in self.regs.iter_mut().zip(other.regs.iter()) {
            if a != b {
                *a = Val::Top;
            }
        }
        self.mem
            .retain(|(k, v)| other.mem_get(k).is_some_and(|ov| ov == *v));
    }
}

/// Alias class of one store, for [`State::clobber`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Clobber {
    All,
    Stack { idx: u16, size: u8 },
    StackAll,
    MapValues,
}

fn join_into(slot: &mut Option<State>, state: &State) {
    match slot {
        Some(existing) => existing.join(state),
        None => *slot = Some(state.clone()),
    }
}

/// `mov` encodings used by the rewrites.
fn mov64_imm(dst: u8, imm: i32) -> Insn {
    Insn::new(BPF_ALU64 | BPF_MOV | BPF_K, dst, 0, 0, imm)
}
fn mov32_imm(dst: u8, imm: i32) -> Insn {
    Insn::new(BPF_ALU | BPF_MOV | BPF_K, dst, 0, 0, imm)
}
fn mov64_reg(dst: u8, src: u8) -> Insn {
    Insn::new(BPF_ALU64 | BPF_MOV | BPF_X, dst, src, 0, 0)
}
fn ja(off: i16) -> Insn {
    Insn::new(BPF_JMP | BPF_JA, 0, 0, off, 0)
}

/// Picks a `mov` that materialises `v`, if one exists: `mov64` for
/// values that sign-extend from i32, `mov32` for anything below 2^32
/// (it zero-extends).
fn mov_for(dst: u8, v: u64) -> Option<Insn> {
    if v as i32 as i64 as u64 == v {
        Some(mov64_imm(dst, v as i32))
    } else if v <= u64::from(u32::MAX) {
        Some(mov32_imm(dst, v as u32 as i32))
    } else {
        None
    }
}

/// The store-value seen by a later same-sized load: constants truncate
/// to the stored width; symbols survive only when provably narrower
/// than the store (wider symbols become a fresh store-defined symbol).
fn stored_val(val: Val, size: u8, pc: usize) -> Val {
    let bits = u32::from(size) * 8;
    match val {
        Val::Const(c) => Val::Const(if bits >= 64 { c } else { c & ((1 << bits) - 1) }),
        Val::Sym { width, .. } if u32::from(width) <= bits => val,
        _ => Val::sym(pc, (bits.min(64)) as u8),
    }
}

/// Memory key for a load/store at `pc`, using the verifier's fact when
/// it proved a constant region offset and the symbolic base otherwise.
fn mem_key(
    state: &State,
    analysis: &Analysis,
    pc: usize,
    base_reg: usize,
    off: i16,
    size: u8,
) -> Option<MemKey> {
    match analysis.fact(pc).mem {
        Some(MemFact::CtxConst { off }) => Some(MemKey::Ctx { off, size }),
        Some(MemFact::StackConst { idx }) => Some(MemKey::Stack { idx, size }),
        Some(MemFact::StackDyn) => None,
        fact => {
            let region = match fact {
                Some(MemFact::MapValue) => Region::Map,
                _ => Region::Other,
            };
            match state.regs[base_reg] {
                Val::Sym { def, delta, .. } => Some(MemKey::Sym {
                    base_def: def,
                    base_delta: delta,
                    off,
                    size,
                    region,
                }),
                _ => None,
            }
        }
    }
}

/// The forward constant/copy-propagation and branch-folding sweep.
/// Rewrites are strictly in place (never changing stream length), so
/// the verifier facts computed for the incoming stream stay valid for
/// every instruction the sweep has not yet reached.
fn forward_rewrite(insns: &mut [Insn], analysis: &Analysis, stats: &mut OptStats) -> bool {
    let mut changed = false;
    let mut state_in: Vec<Option<State>> = vec![None; insns.len()];
    if insns.is_empty() {
        return false;
    }
    state_in[0] = Some(State::entry());

    let mut pc = 0usize;
    while pc < insns.len() {
        let insn = insns[pc];
        let width = if insn.is_lddw() { 2 } else { 1 };
        let Some(mut state) = state_in[pc].take() else {
            pc += width;
            continue;
        };
        let dst = insn.dst as usize;
        let src = insn.src as usize;
        match insn.class() {
            BPF_LD => {
                state.regs[dst] = if insn.src == PSEUDO_MAP_FD {
                    Val::sym(pc, 64)
                } else {
                    let lo = insn.imm as u32 as u64;
                    let hi = insns[pc + 1].imm as u32 as u64;
                    Val::Const(lo | (hi << 32))
                };
                join_into(&mut state_in[pc + 2], &state);
            }
            BPF_ALU | BPF_ALU64 => {
                let op = insn.opcode & 0xf0;
                let narrow = insn.class() == BPF_ALU;
                let out = alu_transfer(&state, &insn, pc);
                if let Val::Const(v) = out {
                    if let Some(mov) = mov_for(insn.dst, v) {
                        if insns[pc] != mov {
                            insns[pc] = mov;
                            stats.folded_alu += 1;
                            changed = true;
                        }
                    }
                } else if op == BPF_MOV
                    && !narrow
                    && insn.opcode & 0x08 == BPF_X
                    && state.regs[src] == Val::Top
                {
                    // Plain copy of an untracked value: give dst the
                    // same fresh symbol copy propagation can still use.
                    state.regs[src] = Val::sym(pc, 64);
                }
                state.regs[dst] = if op == BPF_MOV && !narrow && insn.opcode & 0x08 == BPF_X {
                    state.regs[src]
                } else {
                    out
                };
                join_into(&mut state_in[pc + 1], &state);
            }
            BPF_LDX => {
                let size = access_bytes(insn.opcode);
                let key = mem_key(&state, analysis, pc, src, insn.off, size);
                let avail = key.and_then(|k| state.mem_get(&k));
                match avail {
                    Some(v) => {
                        let rewrite = match v {
                            Val::Const(c) => mov_for(insn.dst, c),
                            _ => state
                                .regs
                                .iter()
                                .position(|r| *r == v)
                                .map(|r| mov64_reg(insn.dst, r as u8)),
                        };
                        if let Some(mov) = rewrite {
                            if insns[pc] != mov {
                                insns[pc] = mov;
                                stats.loads_forwarded += 1;
                                changed = true;
                            }
                        }
                        state.regs[dst] = v;
                    }
                    None => {
                        let loaded = Val::sym(pc, size * 8);
                        state.regs[dst] = loaded;
                        if let Some(k) = key {
                            state.mem_put(k, loaded);
                        }
                    }
                }
                join_into(&mut state_in[pc + 1], &state);
            }
            BPF_ST | BPF_STX => {
                if insn.class() == BPF_STX && insn.opcode & 0xe0 == BPF_ATOMIC {
                    state.clobber(Clobber::All);
                    if insn.imm & BPF_FETCH != 0 {
                        state.regs[src] = Val::sym(pc, 64);
                    }
                } else {
                    let size = access_bytes(insn.opcode);
                    let val = if insn.class() == BPF_ST {
                        Val::Const(insn.imm as i64 as u64)
                    } else {
                        state.regs[src]
                    };
                    let key = mem_key(&state, analysis, pc, dst, insn.off, size);
                    match analysis.fact(pc).mem {
                        Some(MemFact::StackConst { idx }) => {
                            state.clobber(Clobber::Stack { idx, size });
                        }
                        Some(MemFact::StackDyn) => state.clobber(Clobber::StackAll),
                        Some(MemFact::MapValue) => state.clobber(Clobber::MapValues),
                        Some(MemFact::CtxConst { .. }) | None => state.clobber(Clobber::All),
                    }
                    if let Some(k) = key {
                        if !matches!(
                            k,
                            MemKey::Sym {
                                region: Region::Other,
                                ..
                            }
                        ) {
                            state.mem_put(k, stored_val(val, size, pc));
                        }
                    }
                }
                join_into(&mut state_in[pc + 1], &state);
            }
            BPF_JMP | BPF_JMP32 => {
                let op = insn.opcode & 0xf0;
                match op {
                    BPF_EXIT => {}
                    BPF_CALL => {
                        state.regs[0] = Val::sym(pc, 64);
                        for r in 1..=5 {
                            state.regs[r] = Val::Top;
                        }
                        state.clobber(Clobber::All);
                        join_into(&mut state_in[pc + 1], &state);
                    }
                    BPF_JA => {
                        let t = (pc as i64 + 1 + i64::from(insn.off)) as usize;
                        join_into(&mut state_in[t], &state);
                    }
                    _ => {
                        changed |= cond_branch(insns, &mut state_in, analysis, pc, state, stats);
                    }
                }
            }
            _ => {
                join_into(&mut state_in[pc + 1], &state);
            }
        }
        pc += width;
    }
    changed
}

/// Access width in bytes from a load/store opcode.
fn access_bytes(opcode: u8) -> u8 {
    match opcode & 0x18 {
        BPF_W => 4,
        BPF_H => 2,
        BPF_B => 1,
        _ => 8,
    }
}

/// The abstract ALU transfer function, sharing the interpreter's exact
/// arithmetic so folding can never diverge from execution.
fn alu_transfer(state: &State, insn: &Insn, pc: usize) -> Val {
    let op = insn.opcode & 0xf0;
    let narrow = insn.class() == BPF_ALU;
    let dst = state.regs[insn.dst as usize];
    if op == BPF_END {
        return match dst {
            Val::Const(c) => Val::Const(match insn.imm {
                16 => u64::from((c as u16).to_be()),
                32 => u64::from((c as u32).to_be()),
                _ => c.to_be(),
            }),
            _ => Val::sym(
                pc,
                if insn.imm == 16 {
                    16
                } else if insn.imm == 32 {
                    32
                } else {
                    64
                },
            ),
        };
    }
    if op == BPF_NEG {
        return match dst {
            Val::Const(c) if !narrow => Val::Const(alu64(BPF_NEG, c, 0)),
            Val::Const(c) => Val::Const(u64::from(alu32(BPF_NEG, c as u32, 0))),
            _ => Val::sym(pc, if narrow { 32 } else { 64 }),
        };
    }
    let rhs = if insn.opcode & 0x08 == BPF_X {
        state.regs[insn.src as usize]
    } else {
        Val::Const(insn.imm as i64 as u64)
    };
    if op == BPF_MOV {
        return match rhs {
            Val::Const(c) if narrow => Val::Const(u64::from(c as u32)),
            Val::Const(c) => Val::Const(c),
            Val::Sym { width, delta, .. } if narrow && width <= 32 && delta == 0 => rhs,
            _ if narrow => Val::sym(pc, 32),
            v => v,
        };
    }
    match (dst, rhs) {
        (Val::Const(a), Val::Const(b)) if !narrow => Val::Const(alu64(op, a, b)),
        (Val::Const(a), Val::Const(b)) => Val::Const(u64::from(alu32(op, a as u32, b as u32))),
        // Pointer-style delta tracking keeps symbolic bases usable as
        // availability keys across add/sub of constants.
        (Val::Sym { def, delta, .. }, Val::Const(b)) if !narrow && op == BPF_ADD => Val::Sym {
            def,
            delta: delta.wrapping_add(b as i64),
            width: 64,
        },
        (Val::Sym { def, delta, .. }, Val::Const(b)) if !narrow && op == BPF_SUB => Val::Sym {
            def,
            delta: delta.wrapping_sub(b as i64),
            width: 64,
        },
        _ => Val::sym(pc, if narrow { 32 } else { 64 }),
    }
}

/// Handles one conditional branch: fold it when the verifier or the
/// propagated constants decided it, otherwise propagate to both edges
/// with equality refinement. Returns true when the insn was rewritten.
fn cond_branch(
    insns: &mut [Insn],
    state_in: &mut [Option<State>],
    analysis: &Analysis,
    pc: usize,
    state: State,
    stats: &mut OptStats,
) -> bool {
    let insn = insns[pc];
    let op = insn.opcode & 0xf0;
    let narrow = insn.class() == BPF_JMP32;
    let target = (pc as i64 + 1 + i64::from(insn.off)) as usize;
    let lhs = state.regs[insn.dst as usize];
    let rhs = if insn.opcode & 0x08 == BPF_X {
        state.regs[insn.src as usize]
    } else if narrow {
        Val::Const(u64::from(insn.imm as u32))
    } else {
        Val::Const(insn.imm as i64 as u64)
    };

    let decided = match (lhs, rhs) {
        (Val::Const(a), Val::Const(b)) => {
            let (a, b) = if narrow {
                (u64::from(a as u32), u64::from(b as u32))
            } else {
                (a, b)
            };
            Some(jump_taken(op, a, b, narrow))
        }
        _ => match analysis.fact(pc).branch {
            Some(BranchFact::AlwaysTaken) => Some(true),
            Some(BranchFact::NeverTaken) => Some(false),
            None => None,
        },
    };

    if let Some(take) = decided {
        let folded = ja(if take { insn.off } else { 0 });
        let mut changed = false;
        if insns[pc] != folded {
            insns[pc] = folded;
            stats.folded_branches += 1;
            changed = true;
        }
        let next = if take { target } else { pc + 1 };
        join_into(&mut state_in[next], &state);
        return changed;
    }

    let mut taken = state.clone();
    let mut fall = state;
    // Equality refinement: on the edge where `sym == const` holds, the
    // symbol *is* the constant, everywhere it is tracked. For 32-bit
    // compares this is only sound when the symbol provably fits in the
    // compared half.
    let refinement = match (lhs, rhs) {
        (
            Val::Sym {
                delta: 0, width, ..
            },
            Val::Const(c),
        ) if !narrow || width <= 32 => Some((lhs, c)),
        (
            Val::Const(c),
            Val::Sym {
                delta: 0, width, ..
            },
        ) if !narrow || width <= 32 => Some((rhs, c)),
        _ => None,
    };
    if let Some((sym, c)) = refinement {
        match op {
            BPF_JEQ => taken.refine(sym, c),
            BPF_JNE => fall.refine(sym, c),
            _ => {}
        }
    }
    join_into(&mut state_in[target], &taken);
    join_into(&mut state_in[pc + 1], &fall);
    false
}

/// 512-bit stack-byte liveness set.
type StackSet = [u64; 8];

fn stack_mark(set: &mut StackSet, idx: u16, size: u8) {
    for b in idx..idx.saturating_add(u16::from(size)).min(STACK_SIZE as u16) {
        set[usize::from(b) / 64] |= 1 << (usize::from(b) % 64);
    }
}

fn stack_any(set: &StackSet, idx: u16, size: u8) -> bool {
    (idx..idx.saturating_add(u16::from(size)).min(STACK_SIZE as u16))
        .any(|b| set[usize::from(b) / 64] & (1 << (usize::from(b) % 64)) != 0)
}

fn stack_clear(set: &mut StackSet, idx: u16, size: u8) {
    for b in idx..idx.saturating_add(u16::from(size)).min(STACK_SIZE as u16) {
        set[usize::from(b) / 64] &= !(1 << (usize::from(b) % 64));
    }
}

/// The backward liveness sweep: returns per-slot keep flags with dead
/// register defs, dead stack stores and unreachable code cleared.
fn liveness(insns: &[Insn], analysis: &Analysis, stats: &mut OptStats) -> Vec<bool> {
    let mut keep = vec![true; insns.len()];
    // live-in register mask + live-in stack bytes, per slot.
    let mut live: Vec<(u16, StackSet)> = vec![(0, [0; 8]); insns.len()];

    // Instruction starts, forward, for reverse iteration with widths.
    let mut starts = Vec::with_capacity(insns.len());
    let mut pc = 0usize;
    while pc < insns.len() {
        starts.push(pc);
        pc += if insns[pc].is_lddw() { 2 } else { 1 };
    }

    for (si, &pc) in starts.iter().enumerate().rev() {
        let insn = insns[pc];
        if !analysis.fact(pc).reachable {
            keep[pc] = false;
            if insn.is_lddw() {
                keep[pc + 1] = false;
            }
            stats.dead_code_removed += if insn.is_lddw() { 2 } else { 1 };
            continue;
        }
        let next_in = |pc: usize| -> (u16, StackSet) { live[pc] };
        let succ_next = starts.get(si + 1).copied();
        let mut out: (u16, StackSet) = (0, [0; 8]);
        let merge = |o: &mut (u16, StackSet), s: (u16, StackSet)| {
            o.0 |= s.0;
            for (a, b) in o.1.iter_mut().zip(s.1.iter()) {
                *a |= b;
            }
        };
        let class = insn.class();
        let op = insn.opcode & 0xf0;
        let is_exit = matches!(class, BPF_JMP | BPF_JMP32) && op == BPF_EXIT;
        let is_ja = class == BPF_JMP && op == BPF_JA;
        let is_cond =
            matches!(class, BPF_JMP | BPF_JMP32) && !matches!(op, BPF_EXIT | BPF_CALL | BPF_JA);
        if is_exit {
            // nothing flows out of exit
        } else if is_ja || is_cond {
            let t = (pc as i64 + 1 + i64::from(insn.off)) as usize;
            if t < insns.len() {
                merge(&mut out, next_in(t));
            }
            if is_cond {
                if let Some(n) = succ_next {
                    merge(&mut out, next_in(n));
                }
            }
        } else if let Some(n) = succ_next {
            merge(&mut out, next_in(n));
        }

        let (mut in_regs, mut in_stack) = out;
        let fact = analysis.fact(pc);
        let mut removed = false;
        match class {
            BPF_LD => {
                if out.0 & (1 << insn.dst) == 0 {
                    keep[pc] = false;
                    keep[pc + 1] = false;
                    stats.dead_code_removed += 2;
                    removed = true;
                } else {
                    in_regs &= !(1 << insn.dst);
                }
            }
            BPF_ALU | BPF_ALU64 => {
                if out.0 & (1 << insn.dst) == 0 {
                    keep[pc] = false;
                    stats.dead_code_removed += 1;
                    removed = true;
                } else {
                    in_regs &= !(1 << insn.dst);
                    // Everything but mov reads dst as an input.
                    if op != BPF_MOV {
                        in_regs |= 1 << insn.dst;
                    }
                    // Binary reg-form ops and mov-reg read src. The
                    // 0x08 bit on END encodes to_be, not a register.
                    if insn.opcode & 0x08 == BPF_X && op != BPF_END && op != BPF_NEG {
                        in_regs |= 1 << insn.src;
                    }
                }
            }
            BPF_LDX => {
                let dead = out.0 & (1 << insn.dst) == 0;
                // Only loads with a memory proof cannot fault; a wild
                // load is kept for its potential abort (and may read
                // any stack byte at runtime).
                if dead && fact.mem.is_some() {
                    keep[pc] = false;
                    stats.dead_code_removed += 1;
                    removed = true;
                } else {
                    in_regs &= !(1 << insn.dst);
                    in_regs |= 1 << insn.src;
                    match fact.mem {
                        Some(MemFact::StackConst { idx }) => {
                            stack_mark(&mut in_stack, idx, access_bytes(insn.opcode));
                        }
                        Some(MemFact::StackDyn) | None => in_stack = [u64::MAX; 8],
                        Some(MemFact::CtxConst { .. }) | Some(MemFact::MapValue) => {}
                    }
                }
            }
            BPF_ST | BPF_STX => {
                let atomic = class == BPF_STX && insn.opcode & 0xe0 == BPF_ATOMIC;
                let size = access_bytes(insn.opcode);
                if atomic {
                    // Read-modify-write: the slot's prior value is read.
                    match fact.mem {
                        Some(MemFact::StackConst { idx }) => {
                            stack_mark(&mut in_stack, idx, size);
                        }
                        Some(MemFact::StackDyn) | None => in_stack = [u64::MAX; 8],
                        _ => {}
                    }
                } else if let Some(MemFact::StackConst { idx }) = fact.mem {
                    if !stack_any(&out.1, idx, size) {
                        keep[pc] = false;
                        stats.dead_stores_removed += 1;
                        removed = true;
                    } else {
                        stack_clear(&mut in_stack, idx, size);
                    }
                }
                if !removed {
                    // Address (and for STX the stored reg) are inputs;
                    // atomic fetch defines src but also reads it as the
                    // addend, so it stays live either way.
                    in_regs |= 1 << insn.dst;
                    if class == BPF_STX {
                        in_regs |= 1 << insn.src;
                    }
                }
            }
            BPF_JMP | BPF_JMP32 => match op {
                BPF_EXIT => {
                    in_regs = 1; // r0
                    in_stack = [0; 8];
                }
                BPF_CALL => {
                    // Helpers may read r1-r5 and any stack byte they
                    // were passed a pointer to; they define r0-r5.
                    in_regs &= !0b111111;
                    in_regs |= 0b111110;
                    in_stack = [u64::MAX; 8];
                }
                BPF_JA => {}
                _ => {
                    in_regs |= 1 << insn.dst;
                    if insn.opcode & 0x08 == BPF_X {
                        in_regs |= 1 << insn.src;
                    }
                }
            },
            _ => {}
        }
        if removed {
            live[pc] = out;
        } else {
            live[pc] = (in_regs, in_stack);
        }
    }
    keep
}

/// Drops unkept slots, threads `ja` chains, erases jumps to the next
/// live instruction and remaps every offset. Returns `None` when the
/// stream is already fully compact.
fn compact(insns: &[Insn], mut keep: Vec<bool>) -> Option<Vec<Insn>> {
    let mut starts = Vec::with_capacity(insns.len());
    let mut pc = 0usize;
    while pc < insns.len() {
        starts.push(pc);
        pc += if insns[pc].is_lddw() { 2 } else { 1 };
    }
    let width = |pc: usize| if insns[pc].is_lddw() { 2 } else { 1 };
    let is_ja = |pc: usize| insns[pc].class() == BPF_JMP && insns[pc].opcode & 0xf0 == BPF_JA;

    // Final landing pc when control is transferred to `pc`: skip dead
    // slots, thread kept unconditional jumps. Strictly forward (the
    // verifier rejects backward jumps), so this terminates.
    let resolve = |keep: &[bool], mut pc: usize| -> usize {
        loop {
            if pc >= insns.len() {
                return insns.len().saturating_sub(1);
            }
            if !keep[pc] {
                pc += width(pc);
            } else if is_ja(pc) {
                pc = (pc as i64 + 1 + i64::from(insns[pc].off)) as usize;
            } else {
                return pc;
            }
        }
    };

    // Erase jumps that land exactly where falling through would.
    loop {
        let mut erased = false;
        for (si, &pc) in starts.iter().enumerate() {
            if keep[pc] && is_ja(pc) {
                let target = (pc as i64 + 1 + i64::from(insns[pc].off)) as usize;
                if let Some(&next) = starts.get(si + 1) {
                    if resolve(&keep, target) == resolve(&keep, next) {
                        keep[pc] = false;
                        erased = true;
                    }
                }
            }
        }
        if !erased {
            break;
        }
    }

    // New slot index for each kept start.
    let mut new_idx = vec![usize::MAX; insns.len()];
    let mut n = 0usize;
    for &pc in &starts {
        if keep[pc] {
            new_idx[pc] = n;
            n += width(pc);
        }
    }
    if n == insns.len() {
        // Nothing removed; check whether threading changed any offset.
        let unchanged = starts.iter().all(|&pc| {
            let insn = insns[pc];
            let class = insn.class();
            let op = insn.opcode & 0xf0;
            if matches!(class, BPF_JMP | BPF_JMP32) && !matches!(op, BPF_EXIT | BPF_CALL) {
                let t = (pc as i64 + 1 + i64::from(insn.off)) as usize;
                resolve(&keep, t) == t
            } else {
                true
            }
        });
        if unchanged {
            return None;
        }
    }

    let mut out = Vec::with_capacity(n);
    for &pc in &starts {
        if !keep[pc] {
            continue;
        }
        let mut insn = insns[pc];
        let class = insn.class();
        let op = insn.opcode & 0xf0;
        if matches!(class, BPF_JMP | BPF_JMP32) && !matches!(op, BPF_EXIT | BPF_CALL) {
            let t = (pc as i64 + 1 + i64::from(insn.off)) as usize;
            let rt = resolve(&keep, t);
            insn.off = (new_idx[rt] as i64 - new_idx[pc] as i64 - 1) as i16;
        }
        out.push(insn);
        if insn.is_lddw() {
            out.push(insns[pc + 1]);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg::*, AluOp, Asm, Cond, Size};
    use crate::context::{CTX_OFF_DATA, CTX_OFF_PKT_LEN};
    use crate::map::MapRegistry;
    use crate::program::{load_with_opts, AttachType, LoadOpts, Program};
    use crate::vm::{standard_helpers, FixedEnv, Vm};

    fn opt(asm: Asm) -> OptResult {
        let insns = asm.build().expect("assembles");
        let analysis = analyze(&insns, &standard_helpers(), |_| None);
        assert!(analysis.ok(), "precondition: {:?}", analysis.first_error());
        let r = optimize(&insns, &standard_helpers(), &|_| None);
        assert!(r.stats.reverified, "optimized program must re-verify");
        r
    }

    fn run(insns: Vec<Insn>, packet: &[u8]) -> u64 {
        let prog = Program::new("t", AttachType::Kprobe("f".into()), insns);
        let loaded = load_with_opts(
            prog,
            &MapRegistry::new(),
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .unwrap();
        let mut maps = MapRegistry::new();
        let mut env = FixedEnv::default();
        Vm::new()
            .execute(
                &loaded,
                &crate::context::TraceContext::default(),
                packet,
                &mut maps,
                &mut env,
            )
            .unwrap()
            .ret
    }

    #[test]
    fn constant_chain_folds_to_mov() {
        let r = opt(Asm::new()
            .mov64_imm(R0, 6)
            .alu64_imm(AluOp::Mul, R0, 7)
            .add64_imm(R0, 1)
            .exit());
        // Everything collapses to `mov r0, 43; exit`.
        assert_eq!(r.insns.len(), 2);
        assert_eq!(run(r.insns, &[]), 43);
        assert!(r.stats.folded_alu >= 1);
        assert!(r.stats.dead_code_removed >= 1);
    }

    #[test]
    fn decided_branch_drops_dead_arm() {
        let r = opt(Asm::new()
            .mov64_imm(R1, 5)
            .jmp_imm(Cond::Gt, R1, 3, "big")
            .mov64_imm(R0, 111)
            .mov64_imm(R2, 9)
            .alu64(AluOp::Add, R0, R2)
            .exit()
            .label("big")
            .mov64_imm(R0, 7)
            .exit());
        assert_eq!(run(r.insns.clone(), &[]), 7);
        // The not-taken arm (4 insns) and the decided branch are gone.
        assert!(r.insns.len() <= 2, "got {:?}", r.insns);
        assert!(r.stats.folded_branches >= 1);
    }

    #[test]
    fn redundant_ctx_reload_becomes_copy() {
        let r = opt(Asm::new()
            .ldx(Size::W, R2, R1, CTX_OFF_PKT_LEN)
            .ldx(Size::W, R3, R1, CTX_OFF_PKT_LEN)
            .alu64(AluOp::Add, R2, R3)
            .mov64(R0, R2)
            .exit());
        let loads = r.insns.iter().filter(|i| i.class() == BPF_LDX).count();
        assert_eq!(loads, 1, "second ctx load forwarded: {:?}", r.insns);
        assert!(r.stats.loads_forwarded >= 1);
    }

    #[test]
    fn store_then_reload_forwards_and_store_dies() {
        let r = opt(Asm::new()
            .st(Size::DW, R10, -8, 7)
            .ldx(Size::DW, R0, R10, -8)
            .exit());
        // `mov r0, 7; exit` — the store is dead once the reload folds.
        assert_eq!(r.insns.len(), 2);
        assert_eq!(run(r.insns, &[]), 7);
        assert!(r.stats.loads_forwarded >= 1);
        assert!(r.stats.dead_stores_removed >= 1);
    }

    #[test]
    fn filter_refinement_folds_packet_reload() {
        // The compile.rs shape: filter tests the proto byte, then the
        // trace-id stage reloads it. After refinement the reload is the
        // tested constant and the second dispatch branch folds.
        let asm = Asm::new()
            .ldx(Size::DW, R7, R1, CTX_OFF_DATA)
            .ldx(Size::B, R2, R7, 23)
            .jmp32_imm(Cond::Ne, R2, 17, "miss")
            .ldx(Size::B, R3, R7, 23)
            .jmp32_imm(Cond::Eq, R3, 17, "udp")
            .mov64_imm(R0, 99) // "tcp" arm: dead after folding
            .exit()
            .label("udp")
            .mov64_imm(R0, 1)
            .exit()
            .label("miss")
            .mov64_imm(R0, 0)
            .exit();
        let r = opt(asm);
        assert!(r.stats.loads_forwarded >= 1, "{:?}", r.stats);
        assert!(r.stats.folded_branches >= 1, "{:?}", r.stats);
        // The dead tcp arm is gone.
        assert!(
            !r.insns
                .iter()
                .any(|i| i.opcode == (BPF_ALU64 | BPF_MOV | BPF_K) && i.imm == 99),
            "{:?}",
            r.insns
        );
        // Semantics preserved on both filter outcomes.
        let mut udp = vec![0u8; 64];
        udp[23] = 17;
        let mut tcp = vec![0u8; 64];
        tcp[23] = 6;
        assert_eq!(run(r.insns.clone(), &udp), 1);
        assert_eq!(run(r.insns, &tcp), 0);
    }

    #[test]
    fn wild_load_of_dead_reg_is_kept() {
        // A packet load with no memory proof may abort; it must survive
        // DCE even when its destination is dead.
        let r = opt(Asm::new()
            .ldx(Size::DW, R7, R1, CTX_OFF_DATA)
            .ldx(Size::B, R2, R7, 1000)
            .mov64_imm(R0, 0)
            .exit());
        assert!(
            r.insns
                .iter()
                .any(|i| i.class() == BPF_LDX && i.off == 1000),
            "{:?}",
            r.insns
        );
    }

    #[test]
    fn dead_lddw_pair_removed_together() {
        let r = opt(Asm::new()
            .lddw(R3, 0xdead_beef_0000)
            .mov64_imm(R0, 2)
            .exit());
        assert_eq!(r.insns.len(), 2);
        assert_eq!(run(r.insns, &[]), 2);
    }

    #[test]
    fn ja_chains_thread_and_vanish() {
        let r = opt(Asm::new()
            .jump("a")
            .label("a")
            .jump("b")
            .label("b")
            .mov64_imm(R0, 5)
            .exit());
        assert_eq!(r.insns.len(), 2);
        assert_eq!(run(r.insns, &[]), 5);
    }

    #[test]
    fn call_blocks_store_forwarding() {
        // The helper may observe the stack: the store stays, and the
        // reload after the call is not forwarded across it.
        let r = opt(Asm::new()
            .st(Size::DW, R10, -8, 7)
            .call(crate::vm::helper_ids::KTIME_GET_NS)
            .ldx(Size::DW, R0, R10, -8)
            .exit());
        assert!(r.insns.iter().any(|i| i.class() == BPF_ST));
        assert!(r.insns.iter().any(|i| i.class() == BPF_LDX));
        assert_eq!(run(r.insns, &[]), 7);
    }

    #[test]
    fn optimized_never_longer_and_always_reverifies() {
        let programs = [
            Asm::new().mov64_imm(R0, 0).exit(),
            Asm::new()
                .mov64_imm(R1, 10)
                .mov64_imm(R2, 3)
                .alu64(AluOp::Div, R1, R2)
                .mov64(R0, R1)
                .exit(),
            Asm::new()
                .ldx(Size::W, R0, R1, CTX_OFF_PKT_LEN)
                .jmp_imm(Cond::Eq, R0, 0, "z")
                .mov64_imm(R0, 1)
                .exit()
                .label("z")
                .mov64_imm(R0, 0)
                .exit(),
        ];
        for asm in programs {
            let insns = asm.build().unwrap();
            let r = optimize(&insns, &standard_helpers(), &|_| None);
            assert!(r.stats.reverified);
            assert!(r.insns.len() <= insns.len());
            assert_eq!(r.stats.original_insns, insns.len());
            assert_eq!(r.stats.optimized_insns, r.insns.len());
        }
    }
}
