//! Path-sensitive abstract interpretation over register states.
//!
//! This is the simulator's analogue of the kernel verifier's core analysis
//! (`check_mem_access` / `adjust_reg_min_max_vals` in `verifier.c`): every
//! register carries a *type* ([`RegType`]) plus a known-bits [`Tnum`] and
//! signed/unsigned `[min, max]` ranges, states are propagated per branch
//! with conditional-jump refinement (a `jeq r1, 0` narrows a
//! possibly-null map-value pointer to null/non-null, comparisons narrow
//! scalar ranges), and joined or pruned where paths meet.
//!
//! The analysis serves three masters:
//!
//! * **rejection** — it reports every [`VerifyError`] it finds (not just
//!   the first) as a [`Diagnostic`] with the register state at the point
//!   of rejection, including the one rejection class structural checks
//!   cannot see: a register divisor whose range contains zero;
//! * **elision** — for each instruction it publishes the memory/divisor
//!   facts it proved ([`InsnFact`]) so the JIT can lower the access to a
//!   direct unchecked load/store and skip dead branches;
//! * **explanation** — the joined register state at every reachable
//!   instruction is retained for annotated disassembly (`vnt verify`).
//!
//! Soundness contract: a fact is only emitted when it holds on *every*
//! path reaching the instruction (facts are met across states, and joins
//! over-approximate), and an access the analysis cannot prove stays
//! runtime-checked exactly as before — the analysis never weakens the
//! interpreter's checks, it only licenses skipping ones it proved
//! redundant. Because the CFG is a DAG (no back-edges), visiting
//! instructions in index order is a topological walk and the analysis
//! terminates without widening.

use crate::context::CTX_SIZE;
use crate::insn::*;
use crate::tnum::Tnum;
use crate::verifier::VerifyError;
use crate::vm::helper_ids;

/// Per-instruction-pointer cap on distinct branch states; beyond it all
/// states at that instruction are joined into one summary state. Keeps the
/// walk linear on branch-heavy programs (e.g. a 2^k-path option scan).
const STATE_CAP: usize = 48;

/// What a register holds, as proved by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegType {
    /// Never written on some path reaching here; reading it is an error.
    Uninit,
    /// A plain number (also the fallback for anything unclassifiable —
    /// accesses through it are bounds-checked at runtime).
    Scalar,
    /// Pointer into the trace context; offset tracked from its base.
    PtrToCtx,
    /// Pointer into the 512-byte stack frame; offset tracked from the
    /// frame *bottom* (so the frame pointer itself has offset 512).
    PtrToStack,
    /// Non-null pointer into a map value slot of the given map fd.
    PtrToMapValue {
        /// The map file descriptor the pointer belongs to.
        fd: i32,
    },
    /// Result of `map_lookup_elem`: either null or a map-value pointer.
    /// Must be null-checked before any access proof applies.
    PtrToMapValueOrNull {
        /// The map file descriptor the pointer belongs to.
        fd: i32,
    },
    /// The relocated map handle loaded by `lddw src=1` (pseudo map fd).
    ConstPtrToMap {
        /// The map file descriptor the handle names.
        fd: i32,
    },
}

/// The abstract value of one register: a type plus, for scalars, the
/// value's known bits and ranges — for pointers, the same for the byte
/// *offset* from the region base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegState {
    /// What the register holds.
    pub ty: RegType,
    /// Known bits of the value (scalars) or region offset (pointers).
    pub tnum: Tnum,
    /// Unsigned minimum of the value/offset.
    pub umin: u64,
    /// Unsigned maximum of the value/offset.
    pub umax: u64,
    /// Signed minimum (scalars only; pointers keep the full range).
    pub smin: i64,
    /// Signed maximum (scalars only; pointers keep the full range).
    pub smax: i64,
}

impl RegState {
    /// An unwritten register.
    pub const fn uninit() -> Self {
        RegState {
            ty: RegType::Uninit,
            tnum: Tnum::unknown(),
            umin: 0,
            umax: u64::MAX,
            smin: i64::MIN,
            smax: i64::MAX,
        }
    }

    /// A scalar about which nothing is known.
    pub const fn unknown() -> Self {
        RegState {
            ty: RegType::Scalar,
            tnum: Tnum::unknown(),
            umin: 0,
            umax: u64::MAX,
            smin: i64::MIN,
            smax: i64::MAX,
        }
    }

    /// An exactly-known scalar.
    pub const fn constant(v: u64) -> Self {
        RegState {
            ty: RegType::Scalar,
            tnum: Tnum::constant(v),
            umin: v,
            umax: v,
            smin: v as i64,
            smax: v as i64,
        }
    }

    /// A scalar known only to fit in the low `bits` bits (load results,
    /// byte swaps).
    pub fn unknown_width(bits: u32) -> Self {
        if bits >= 64 {
            return RegState::unknown();
        }
        let mask = (1u64 << bits) - 1;
        RegState {
            ty: RegType::Scalar,
            tnum: Tnum { value: 0, mask },
            umin: 0,
            umax: mask,
            smin: 0,
            smax: mask as i64,
        }
    }

    /// A pointer of type `ty` at offset 0 from its region base.
    pub const fn ptr(ty: RegType) -> Self {
        RegState {
            ty,
            tnum: Tnum::constant(0),
            umin: 0,
            umax: 0,
            smin: i64::MIN,
            smax: i64::MAX,
        }
    }

    /// A pointer of type `ty` at a known constant offset.
    pub const fn ptr_at(ty: RegType, off: u64) -> Self {
        RegState {
            ty,
            tnum: Tnum::constant(off),
            umin: off,
            umax: off,
            smin: i64::MIN,
            smax: i64::MAX,
        }
    }

    /// True when the register was written on every path.
    pub fn is_init(&self) -> bool {
        self.ty != RegType::Uninit
    }

    fn is_region_ptr(&self) -> bool {
        matches!(
            self.ty,
            RegType::PtrToCtx | RegType::PtrToStack | RegType::PtrToMapValue { .. }
        )
    }

    /// Tightens ranges against each other and the tnum. Returns `false`
    /// when the constraints are contradictory (the state is infeasible).
    fn normalize(&mut self) -> bool {
        self.umin = self.umin.max(self.tnum.umin());
        self.umax = self.umax.min(self.tnum.umax());
        if self.ty == RegType::Scalar {
            // Where sign is settled, signed and unsigned orders agree.
            if self.smin >= 0 {
                self.umin = self.umin.max(self.smin as u64);
                self.umax = self.umax.min(self.smax as u64);
            }
            if self.smax < 0 {
                self.umin = self.umin.max(self.smin as u64);
                self.umax = self.umax.min(self.smax as u64);
            }
            if self.umax <= i64::MAX as u64 {
                self.smin = self.smin.max(self.umin as i64);
                self.smax = self.smax.min(self.umax as i64);
            }
            if self.smin > self.smax {
                return false;
            }
        }
        if self.umin > self.umax {
            return false;
        }
        if self.umin == self.umax && !self.tnum.is_const() {
            self.tnum = Tnum::constant(self.umin);
        }
        true
    }

    /// Is the value provably nonzero (for 64-bit division)?
    fn nonzero64(&self) -> bool {
        self.ty == RegType::Scalar && (self.umin > 0 || self.tnum.value != 0)
    }

    /// Are the low 32 bits provably nonzero (for 32-bit division)?
    fn nonzero32(&self) -> bool {
        self.ty == RegType::Scalar
            && (self.tnum.subreg().value != 0 || (self.umax <= u32::MAX as u64 && self.umin > 0))
    }

    /// Least upper bound of two register states.
    fn join(&self, other: &RegState) -> RegState {
        use RegType::*;
        if self == other {
            return *self;
        }
        let ranges = |a: &RegState, b: &RegState, ty: RegType| RegState {
            ty,
            tnum: a.tnum.join(b.tnum),
            umin: a.umin.min(b.umin),
            umax: a.umax.max(b.umax),
            smin: a.smin.min(b.smin),
            smax: a.smax.max(b.smax),
        };
        match (self.ty, other.ty) {
            (Uninit, _) | (_, Uninit) => RegState::uninit(),
            (a, b) if a == b => ranges(self, other, a),
            // A proven pointer joined with its possibly-null form keeps
            // the possibly-null form; a known zero joined with either is
            // exactly "null or valid", which is what OrNull means.
            (PtrToMapValue { fd: f1 }, PtrToMapValueOrNull { fd: f2 }) if f1 == f2 => {
                ranges(self, other, PtrToMapValueOrNull { fd: f1 })
            }
            (PtrToMapValueOrNull { fd: f1 }, PtrToMapValue { fd: f2 }) if f1 == f2 => {
                ranges(self, other, PtrToMapValueOrNull { fd: f1 })
            }
            (Scalar, PtrToMapValue { fd } | PtrToMapValueOrNull { fd })
                if self.umin == 0 && self.umax == 0 =>
            {
                let mut r = *other;
                r.ty = PtrToMapValueOrNull { fd };
                r
            }
            (PtrToMapValue { fd } | PtrToMapValueOrNull { fd }, Scalar)
                if other.umin == 0 && other.umax == 0 =>
            {
                let mut r = *self;
                r.ty = PtrToMapValueOrNull { fd };
                r
            }
            // Mixed types degrade to an unknown scalar: sound in the flat
            // simulator address space, where every access through an
            // unclassified register stays runtime-checked.
            _ => RegState::unknown(),
        }
    }

    /// True when every concrete value of `self` is covered by `other`
    /// *and* `other` is at least as pessimistic (so pruning `self` can
    /// neither hide an error nor strengthen a fact).
    fn subsumed_by(&self, other: &RegState) -> bool {
        use RegType::*;
        if other.ty == Uninit {
            return true;
        }
        if self.ty == Uninit {
            return false;
        }
        if *other == RegState::unknown() {
            return true;
        }
        let within = |a: &RegState, b: &RegState| {
            a.tnum.is_subset_of(&b.tnum)
                && a.umin >= b.umin
                && a.umax <= b.umax
                && a.smin >= b.smin
                && a.smax <= b.smax
        };
        match (self.ty, other.ty) {
            (a, b) if a == b => within(self, other),
            (PtrToMapValue { fd: f1 }, PtrToMapValueOrNull { fd: f2 }) if f1 == f2 => {
                self.tnum.is_subset_of(&other.tnum)
                    && self.umin >= other.umin
                    && self.umax <= other.umax
            }
            (Scalar, PtrToMapValueOrNull { .. }) => self.umin == 0 && self.umax == 0,
            _ => false,
        }
    }
}

impl core::fmt::Display for RegState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        use RegType::*;
        let off = |f: &mut core::fmt::Formatter<'_>, s: &RegState| -> core::fmt::Result {
            if s.tnum.is_const() {
                write!(f, "{:+}", s.tnum.value as i64)
            } else {
                write!(f, "+[{},{}]", s.umin, s.umax)
            }
        };
        match self.ty {
            Uninit => f.write_str("?"),
            Scalar => {
                if self.tnum.is_const() {
                    write!(f, "{}", self.tnum.value as i64)
                } else if *self == RegState::unknown() {
                    f.write_str("scalar")
                } else if self.umax <= i64::MAX as u64 {
                    write!(f, "scalar[{},{}]", self.umin, self.umax)
                } else {
                    write!(f, "scalar(tnum={})", self.tnum)
                }
            }
            PtrToCtx => {
                f.write_str("ctx")?;
                off(f, self)
            }
            PtrToStack => {
                if self.tnum.is_const() {
                    write!(f, "fp{:+}", self.tnum.value as i64 - STACK_SIZE as i64)
                } else {
                    write!(f, "stack+[{},{}]", self.umin, self.umax)
                }
            }
            PtrToMapValue { fd } => {
                write!(f, "map_value(fd={fd})")?;
                off(f, self)
            }
            PtrToMapValueOrNull { fd } => write!(f, "map_value_or_null(fd={fd})"),
            ConstPtrToMap { fd } => write!(f, "map_ptr(fd={fd})"),
        }
    }
}

/// One rejection, with the register state that triggered it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The error itself.
    pub error: VerifyError,
    /// The instruction index the error is anchored to.
    pub insn: usize,
    /// Register state on the offending path (absent for structural
    /// errors, which are found before any path is walked).
    pub regs: Option<[RegState; NUM_REGS]>,
}

/// A memory-safety proof for one load/store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFact {
    /// A load from the context at this constant, in-bounds byte offset.
    CtxConst {
        /// Byte offset into the context struct.
        off: u16,
    },
    /// A stack access at this constant slot offset (bytes from the frame
    /// bottom); always within the 512-byte frame.
    StackConst {
        /// Byte offset of the access start from the frame bottom.
        idx: u16,
    },
    /// A stack access at a variable offset proved to stay in-frame.
    StackDyn,
    /// An access through a proven non-null map-value pointer, within the
    /// map's value size on every path.
    MapValue,
}

/// Resolution of a conditional jump the analysis decided statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchFact {
    /// The branch is taken on every path reaching it.
    AlwaysTaken,
    /// The branch falls through on every path reaching it.
    NeverTaken,
}

/// Everything the analysis proved about one instruction. Facts are the
/// meet over all states that reach the instruction, so they license
/// unconditional elision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsnFact {
    /// Some path reaches this instruction (dead code has no facts).
    pub reachable: bool,
    /// Memory-safety proof for a load/store, if any.
    pub mem: Option<MemFact>,
    /// For `div`/`mod` by register: the divisor is provably nonzero.
    /// Every *accepted* program has this on all register divisions — an
    /// unprovable divisor is rejected — so both tiers may skip the zero
    /// check.
    pub div_nonzero: bool,
    /// For conditional jumps decided statically.
    pub branch: Option<BranchFact>,
}

/// The artifact of verification: per-instruction facts, all diagnostics,
/// and the joined register states for annotation.
#[derive(Debug, Clone)]
pub struct Analysis {
    facts: Vec<InsnFact>,
    diagnostics: Vec<Diagnostic>,
    states: Vec<Option<Box<[RegState; NUM_REGS]>>>,
}

impl Analysis {
    /// True when the program verified cleanly.
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// All rejections, in discovery (instruction) order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The first rejection, if any — the old single-error contract.
    pub fn first_error(&self) -> Option<&VerifyError> {
        self.diagnostics.first().map(|d| &d.error)
    }

    /// Per-instruction proven facts (`facts().len() == insns.len()`).
    pub fn facts(&self) -> &[InsnFact] {
        &self.facts
    }

    /// The facts proved for one instruction.
    pub fn fact(&self, pc: usize) -> InsnFact {
        self.facts.get(pc).copied().unwrap_or_default()
    }

    /// The join of all register states reaching `pc` (None: unreachable).
    pub fn state_at(&self, pc: usize) -> Option<&[RegState; NUM_REGS]> {
        self.states.get(pc).and_then(|s| s.as_deref())
    }

    /// Number of instructions carrying at least one elision-licensing
    /// fact (memory proof, nonzero divisor, or decided branch).
    pub fn proven_facts(&self) -> usize {
        self.facts
            .iter()
            .filter(|f| f.mem.is_some() || f.div_nonzero || f.branch.is_some())
            .count()
    }
}

const ALU_OPS: [u8; 13] = [
    BPF_ADD, BPF_SUB, BPF_MUL, BPF_DIV, BPF_OR, BPF_AND, BPF_LSH, BPF_RSH, BPF_NEG, BPF_MOD,
    BPF_XOR, BPF_MOV, BPF_ARSH,
];
const JMP_OPS: [u8; 13] = [
    BPF_JA, BPF_JEQ, BPF_JGT, BPF_JGE, BPF_JSET, BPF_JNE, BPF_JSGT, BPF_JSGE, BPF_JLT, BPF_JLE,
    BPF_JSLT, BPF_JSLE, BPF_CALL,
];

fn size_bytes(opcode: u8) -> usize {
    match opcode & 0x18 {
        BPF_W => 4,
        BPF_H => 2,
        BPF_B => 1,
        _ => 8, // BPF_DW
    }
}

fn check_stack(off: i16, size: usize, insn: usize) -> Result<(), VerifyError> {
    let off = off as i32;
    if off >= 0 || off < -(STACK_SIZE as i32) || off + size as i32 > 0 {
        return Err(VerifyError::InvalidStackAccess { off, insn });
    }
    Ok(())
}

/// Pass 1: structural checks, collecting *all* errors (at most one per
/// instruction, in the same intra-instruction order the verifier has
/// always used so the first diagnostic matches the old first error).
/// Returns the errors and the lddw-body map.
fn structural(insns: &[Insn], helpers: &[i32]) -> (Vec<VerifyError>, Vec<bool>) {
    let mut errs = Vec::new();
    let mut is_lddw_body = vec![false; insns.len()];
    {
        let mut i = 0;
        while i < insns.len() {
            let insn = &insns[i];
            if insn.is_lddw() {
                if i + 1 >= insns.len() {
                    errs.push(VerifyError::TruncatedLddw(i));
                    break;
                }
                let body = &insns[i + 1];
                if body.opcode != 0 || body.dst != 0 || body.src != 0 || body.off != 0 {
                    errs.push(VerifyError::TruncatedLddw(i));
                }
                is_lddw_body[i + 1] = true;
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    for (i, insn) in insns.iter().enumerate() {
        if is_lddw_body[i] {
            continue;
        }
        if let Err(e) = structural_insn(insns, &is_lddw_body, helpers, i, insn) {
            errs.push(e);
        }
    }
    (errs, is_lddw_body)
}

fn structural_insn(
    insns: &[Insn],
    is_lddw_body: &[bool],
    helpers: &[i32],
    i: usize,
    insn: &Insn,
) -> Result<(), VerifyError> {
    if insn.dst as usize >= NUM_REGS {
        return Err(VerifyError::BadRegister {
            reg: insn.dst,
            insn: i,
        });
    }
    if insn.src as usize >= NUM_REGS && !insn.is_lddw() {
        return Err(VerifyError::BadRegister {
            reg: insn.src,
            insn: i,
        });
    }
    let bad = || VerifyError::BadOpcode {
        opcode: insn.opcode,
        insn: i,
    };
    match insn.class() {
        BPF_ALU | BPF_ALU64 => {
            let op = insn.opcode & 0xf0;
            if op == BPF_END {
                if !matches!(insn.imm, 16 | 32 | 64) {
                    return Err(bad());
                }
            } else if !ALU_OPS.contains(&op) {
                return Err(bad());
            }
            if (op == BPF_DIV || op == BPF_MOD) && insn.opcode & 0x08 == BPF_K && insn.imm == 0 {
                return Err(VerifyError::DivisionByZero(i));
            }
            if insn.dst == REG_FP {
                return Err(VerifyError::WriteToFramePointer(i));
            }
        }
        BPF_JMP | BPF_JMP32 => {
            let op = insn.opcode & 0xf0;
            if op == BPF_EXIT {
                if insn.class() != BPF_JMP {
                    return Err(bad());
                }
                return Ok(());
            }
            if !JMP_OPS.contains(&op) {
                return Err(bad());
            }
            if op == BPF_CALL {
                if insn.class() != BPF_JMP {
                    return Err(bad());
                }
                if !helpers.contains(&insn.imm) {
                    return Err(VerifyError::UnknownHelper {
                        id: insn.imm,
                        insn: i,
                    });
                }
                return Ok(());
            }
            if insn.off < 0 {
                return Err(VerifyError::BackwardJump(i));
            }
            let target = i as i64 + 1 + insn.off as i64;
            if target < 0 || target as usize >= insns.len() {
                return Err(VerifyError::JumpOutOfBounds(i));
            }
            if is_lddw_body[target as usize] {
                return Err(VerifyError::JumpIntoLddw(i));
            }
        }
        BPF_LD => {
            if !insn.is_lddw() {
                return Err(bad());
            }
            if insn.dst == REG_FP {
                return Err(VerifyError::WriteToFramePointer(i));
            }
        }
        BPF_LDX => {
            if insn.opcode & 0xe0 != BPF_MEM {
                return Err(bad());
            }
            if insn.dst == REG_FP {
                return Err(VerifyError::WriteToFramePointer(i));
            }
            if insn.src == REG_FP {
                check_stack(insn.off, size_bytes(insn.opcode), i)?;
            }
        }
        BPF_ST | BPF_STX => {
            let mode = insn.opcode & 0xe0;
            let atomic = mode == BPF_ATOMIC && insn.class() == BPF_STX;
            if mode != BPF_MEM && !atomic {
                return Err(bad());
            }
            if atomic {
                // Only ADD (optionally with FETCH) on W/DW is implemented,
                // as in pre-5.12 kernels (BPF_XADD).
                let sz = insn.opcode & 0x18;
                if (sz != BPF_W && sz != BPF_DW) || (insn.imm & !BPF_FETCH) != BPF_ADD as i32 {
                    return Err(bad());
                }
            }
            if insn.dst == REG_FP {
                check_stack(insn.off, size_bytes(insn.opcode), i)?;
            }
        }
        _ => return Err(bad()),
    }
    Ok(())
}

type Regs = [RegState; NUM_REGS];

/// Per-instruction fact accumulator: facts are met across every state
/// that reaches the instruction.
#[derive(Clone, Copy, Default)]
struct FactAcc {
    reached: bool,
    mem: Option<Option<MemFact>>,
    div: Option<bool>,
    branch: Option<Option<BranchFact>>,
}

impl FactAcc {
    fn mem(&mut self, f: Option<MemFact>) {
        self.mem = Some(match self.mem {
            None => f,
            Some(prev) => meet_mem(prev, f),
        });
    }

    fn div(&mut self, ok: bool) {
        self.div = Some(self.div.unwrap_or(true) && ok);
    }

    fn branch(&mut self, b: Option<BranchFact>) {
        self.branch = Some(match self.branch {
            None => b,
            Some(prev) if prev == b => b,
            Some(_) => None,
        });
    }

    fn finish(self) -> InsnFact {
        InsnFact {
            reachable: self.reached,
            mem: self.mem.flatten(),
            div_nonzero: self.div.unwrap_or(false),
            branch: self.branch.flatten(),
        }
    }
}

fn meet_mem(a: Option<MemFact>, b: Option<MemFact>) -> Option<MemFact> {
    use MemFact::*;
    match (a?, b?) {
        (x, y) if x == y => Some(x),
        // Two different proven stack offsets are still a proven in-frame
        // access; the JIT just has to compute the slot at runtime.
        (StackConst { .. } | StackDyn, StackConst { .. } | StackDyn) => Some(StackDyn),
        _ => None,
    }
}

/// Runs the full verification analysis.
///
/// `map_value_size` supplies the value size for a map fd when known (the
/// loader passes the real registry; bare [`crate::verifier::verify`]
/// passes a closure returning `None`). Map knowledge only *adds* facts —
/// acceptance never depends on it.
pub fn analyze<F>(insns: &[Insn], helpers: &[i32], map_value_size: F) -> Analysis
where
    F: Fn(i32) -> Option<u64>,
{
    let mut diagnostics = Vec::new();
    let empty = |diags: Vec<Diagnostic>| Analysis {
        facts: vec![InsnFact::default(); insns.len()],
        diagnostics: diags,
        states: vec![None; insns.len()],
    };
    if insns.is_empty() {
        diagnostics.push(Diagnostic {
            error: VerifyError::Empty,
            insn: 0,
            regs: None,
        });
        return empty(diagnostics);
    }
    if insns.len() > MAX_INSNS {
        diagnostics.push(Diagnostic {
            error: VerifyError::TooLong(insns.len()),
            insn: 0,
            regs: None,
        });
        return empty(diagnostics);
    }

    let (structural_errs, is_lddw_body) = structural(insns, helpers);
    if !structural_errs.is_empty() {
        for e in structural_errs {
            let insn = e.insn().unwrap_or(0);
            diagnostics.push(Diagnostic {
                error: e,
                insn,
                regs: None,
            });
        }
        // Malformed programs cannot be walked safely (jump targets or
        // opcodes may be invalid); report the structural errors alone.
        return empty(diagnostics);
    }

    let len = insns.len();
    let mut pending: Vec<Vec<Regs>> = vec![Vec::new(); len];
    let mut facts = vec![FactAcc::default(); len];
    let mut states: Vec<Option<Box<Regs>>> = vec![None; len];

    let mut entry = [RegState::uninit(); NUM_REGS];
    entry[1] = RegState::ptr(RegType::PtrToCtx);
    entry[REG_FP as usize] = RegState::ptr_at(RegType::PtrToStack, STACK_SIZE as u64);
    pending[0].push(entry);

    let mut diag = |diags: &mut Vec<Diagnostic>, e: VerifyError, pc: usize, regs: &Regs| {
        if !diags.iter().any(|d| d.error == e) {
            diags.push(Diagnostic {
                error: e,
                insn: pc,
                regs: Some(*regs),
            });
        }
    };

    // The CFG has no back-edges, so instruction order is topological:
    // by the time we reach pc every predecessor has already pushed its
    // state, and each pc is processed exactly once.
    for pc in 0..len {
        if is_lddw_body[pc] {
            continue;
        }
        let mut incoming = std::mem::take(&mut pending[pc]);
        if incoming.is_empty() {
            continue; // unreachable
        }
        // Prune states subsumed by an earlier-kept one, cap the rest.
        let mut kept: Vec<Regs> = Vec::with_capacity(incoming.len().min(STATE_CAP));
        for st in incoming.drain(..) {
            if !kept
                .iter()
                .any(|k| st.iter().zip(k.iter()).all(|(a, b)| a.subsumed_by(b)))
            {
                kept.push(st);
            }
        }
        if kept.len() > STATE_CAP {
            let mut sum = kept[0];
            for st in &kept[1..] {
                for (a, b) in sum.iter_mut().zip(st.iter()) {
                    *a = a.join(b);
                }
            }
            kept = vec![sum];
        }
        // Joined view for annotation.
        let mut joined = kept[0];
        for st in &kept[1..] {
            for (a, b) in joined.iter_mut().zip(st.iter()) {
                *a = a.join(b);
            }
        }
        states[pc] = Some(Box::new(joined));
        facts[pc].reached = true;

        for st in kept {
            step(
                insns,
                pc,
                st,
                &mut pending,
                &mut facts,
                &mut diagnostics,
                &mut diag,
                &map_value_size,
            );
        }
    }

    Analysis {
        facts: facts.into_iter().map(FactAcc::finish).collect(),
        diagnostics,
        states,
    }
}

/// Abstractly executes `insns[pc]` on `st`, pushing successor states,
/// recording facts and reporting diagnostics. A state that errors is
/// dropped (not propagated): the program is rejected anyway, and facts
/// are only consumed from accepted programs.
#[allow(clippy::too_many_arguments)]
fn step<F, D>(
    insns: &[Insn],
    pc: usize,
    mut st: Regs,
    pending: &mut [Vec<Regs>],
    facts: &mut [FactAcc],
    diags: &mut Vec<Diagnostic>,
    diag: &mut D,
    map_value_size: &F,
) where
    F: Fn(i32) -> Option<u64>,
    D: FnMut(&mut Vec<Diagnostic>, VerifyError, usize, &Regs),
{
    let insn = &insns[pc];
    let len = insns.len();
    macro_rules! require {
        ($reg:expr) => {
            if !st[$reg as usize].is_init() {
                diag(
                    diags,
                    VerifyError::UninitializedRegister {
                        reg: $reg,
                        insn: pc,
                    },
                    pc,
                    &st,
                );
                return;
            }
        };
    }
    macro_rules! fallthrough {
        () => {
            if pc + 1 >= len {
                diag(diags, VerifyError::FallsOffEnd(pc), pc, &st);
                return;
            }
            pending[pc + 1].push(st);
        };
    }

    let dst = insn.dst as usize;
    let src = insn.src as usize;
    match insn.class() {
        BPF_ALU | BPF_ALU64 => {
            let op = insn.opcode & 0xf0;
            let is64 = insn.class() == BPF_ALU64;
            let is_x = insn.opcode & 0x08 == BPF_X;
            match op {
                BPF_MOV => {
                    if is_x {
                        require!(insn.src);
                        st[dst] = if is64 { st[src] } else { truncate32(&st[src]) };
                    } else {
                        st[dst] = if is64 {
                            RegState::constant(insn.imm as i64 as u64)
                        } else {
                            RegState::constant(insn.imm as u32 as u64)
                        };
                    }
                }
                BPF_NEG => {
                    require!(insn.dst);
                    st[dst] = alu_transfer(BPF_SUB, is64, &RegState::constant(0), &st[dst]);
                }
                BPF_END => {
                    require!(insn.dst);
                    st[dst] = RegState::unknown_width(insn.imm as u32);
                }
                _ => {
                    require!(insn.dst);
                    if is_x {
                        require!(insn.src);
                    }
                    let rhs = if is_x {
                        st[src]
                    } else if is64 {
                        RegState::constant(insn.imm as i64 as u64)
                    } else {
                        RegState::constant(insn.imm as u32 as u64)
                    };
                    if (op == BPF_DIV || op == BPF_MOD) && is_x {
                        let ok = if is64 {
                            rhs.nonzero64()
                        } else {
                            rhs.nonzero32()
                        };
                        facts[pc].div(ok);
                        if !ok {
                            diag(
                                diags,
                                VerifyError::DivisorMayBeZero {
                                    reg: insn.src,
                                    insn: pc,
                                },
                                pc,
                                &st,
                            );
                            return;
                        }
                    }
                    st[dst] = alu_transfer(op, is64, &st[dst], &rhs);
                }
            }
            fallthrough!();
        }
        BPF_LD => {
            // lddw (structurally guaranteed).
            st[dst] = if insn.src == PSEUDO_MAP_FD {
                RegState::ptr(RegType::ConstPtrToMap { fd: insn.imm })
            } else {
                let lo = insns[pc].imm as u32 as u64;
                let hi = insns[pc + 1].imm as u32 as u64;
                RegState::constant((hi << 32) | lo)
            };
            if pc + 2 >= len {
                diag(diags, VerifyError::FallsOffEnd(pc), pc, &st);
                return;
            }
            pending[pc + 2].push(st);
        }
        BPF_LDX => {
            require!(insn.src);
            let size = size_bytes(insn.opcode);
            facts[pc].mem(mem_fact(&st[src], insn.off, size, true, map_value_size));
            st[dst] = RegState::unknown_width(size as u32 * 8);
            fallthrough!();
        }
        BPF_ST => {
            require!(insn.dst);
            let size = size_bytes(insn.opcode);
            facts[pc].mem(mem_fact(&st[dst], insn.off, size, false, map_value_size));
            fallthrough!();
        }
        BPF_STX => {
            require!(insn.dst);
            require!(insn.src);
            if insn.opcode & 0xe0 == BPF_ATOMIC {
                // Atomics keep the generic runtime path; no fact.
                if insn.imm & BPF_FETCH != 0 {
                    st[src] = RegState::unknown_width(size_bytes(insn.opcode) as u32 * 8);
                }
            } else {
                let size = size_bytes(insn.opcode);
                facts[pc].mem(mem_fact(&st[dst], insn.off, size, false, map_value_size));
            }
            fallthrough!();
        }
        BPF_JMP | BPF_JMP32 => {
            let op = insn.opcode & 0xf0;
            match op {
                BPF_EXIT => {
                    require!(0u8);
                }
                BPF_CALL => {
                    let r0 = if insn.imm == helper_ids::MAP_LOOKUP_ELEM {
                        match st[1].ty {
                            RegType::ConstPtrToMap { fd } => {
                                RegState::ptr(RegType::PtrToMapValueOrNull { fd })
                            }
                            _ => RegState::unknown(),
                        }
                    } else {
                        RegState::unknown()
                    };
                    st[0] = r0;
                    for r in &mut st[1..=5] {
                        *r = RegState::uninit();
                    }
                    fallthrough!();
                }
                BPF_JA => {
                    pending[pc + 1 + insn.off as usize].push(st);
                }
                _ => {
                    require!(insn.dst);
                    let is_x = insn.opcode & 0x08 == BPF_X;
                    if is_x {
                        require!(insn.src);
                    }
                    let is32 = insn.class() == BPF_JMP32;
                    let target = pc + 1 + insn.off as usize;
                    let taken = refine_branch(&st, insn, is32, true);
                    let fall = refine_branch(&st, insn, is32, false);
                    facts[pc].branch(match (&taken, &fall) {
                        (Some(_), Some(_)) => None,
                        (Some(_), None) => Some(BranchFact::AlwaysTaken),
                        (None, Some(_)) => Some(BranchFact::NeverTaken),
                        (None, None) => None, // contradictory state; drop
                    });
                    if let Some(t) = taken {
                        pending[target].push(t);
                    }
                    if let Some(f) = fall {
                        st = f;
                        fallthrough!();
                    }
                }
            }
        }
        _ => unreachable!("structural pass validated classes"),
    }
}

/// Truncation to the low 32 bits with zero extension (ALU32 results).
fn truncate32(r: &RegState) -> RegState {
    if r.ty != RegType::Scalar {
        return RegState::unknown_width(32);
    }
    let tnum = r.tnum.subreg();
    let mut out = RegState {
        ty: RegType::Scalar,
        tnum,
        umin: tnum.umin(),
        umax: tnum.umax(),
        smin: 0,
        smax: u32::MAX as i64,
    };
    if r.umax <= u32::MAX as u64 {
        // The value already fit: truncation preserved it.
        out.umin = out.umin.max(r.umin);
        out.umax = out.umax.min(r.umax);
    }
    out.smin = 0;
    out.smax = out.umax as i64;
    if !out.normalize() {
        return RegState::unknown_width(32);
    }
    out
}

/// ALU transfer function for everything except MOV/NEG/END (handled by
/// the caller). Pointer arithmetic supports `ptr ± scalar` (and
/// `scalar + ptr`); every other pointer operation degrades to an unknown
/// scalar, whose accesses stay runtime-checked.
fn alu_transfer(op: u8, is64: bool, d: &RegState, r: &RegState) -> RegState {
    use RegType::Scalar;
    if is64 {
        match op {
            BPF_ADD if d.is_region_ptr() && r.ty == Scalar => return ptr_offset(d, r, false),
            BPF_ADD if d.ty == Scalar && r.is_region_ptr() => return ptr_offset(r, d, false),
            BPF_SUB if d.is_region_ptr() && r.ty == Scalar => return ptr_offset(d, r, true),
            _ => {}
        }
    }
    if d.ty != Scalar || r.ty != Scalar {
        return if is64 {
            RegState::unknown()
        } else {
            RegState::unknown_width(32)
        };
    }
    if is64 {
        let mut out = scalar_alu(op, d, r, 63);
        if !out.normalize() {
            return RegState::unknown();
        }
        out
    } else {
        let d32 = truncate32(d);
        let r32 = truncate32(r);
        truncate32(&scalar_alu(op, &d32, &r32, 31))
    }
}

/// `ptr ± scalar`: the region offset moves, the type is preserved.
fn ptr_offset(ptr: &RegState, delta: &RegState, sub: bool) -> RegState {
    let tnum = if sub {
        ptr.tnum.sub(delta.tnum)
    } else {
        ptr.tnum.add(delta.tnum)
    };
    let bounds = if sub {
        (
            ptr.umin.checked_sub(delta.umax),
            ptr.umax.checked_sub(delta.umin),
        )
    } else {
        (
            ptr.umin.checked_add(delta.umin),
            ptr.umax.checked_add(delta.umax),
        )
    };
    let (umin, umax) = match bounds {
        (Some(lo), Some(hi)) => (lo.max(tnum.umin()), hi.min(tnum.umax())),
        _ => (tnum.umin(), tnum.umax()),
    };
    RegState {
        ty: ptr.ty,
        tnum,
        umin,
        umax,
        smin: i64::MIN,
        smax: i64::MAX,
    }
}

/// Scalar × scalar transfer. `shift_mask` is 63 (64-bit) or 31 (32-bit).
fn scalar_alu(op: u8, d: &RegState, r: &RegState, shift_mask: u32) -> RegState {
    let mut out = RegState::unknown();
    match op {
        BPF_ADD => {
            out.tnum = d.tnum.add(r.tnum);
            if let (Some(lo), Some(hi)) = (d.umin.checked_add(r.umin), d.umax.checked_add(r.umax)) {
                out.umin = lo;
                out.umax = hi;
            }
            if let (Some(lo), Some(hi)) = (d.smin.checked_add(r.smin), d.smax.checked_add(r.smax)) {
                out.smin = lo;
                out.smax = hi;
            }
        }
        BPF_SUB => {
            out.tnum = d.tnum.sub(r.tnum);
            if let (Some(lo), Some(hi)) = (d.umin.checked_sub(r.umax), d.umax.checked_sub(r.umin)) {
                out.umin = lo;
                out.umax = hi;
            }
            if let (Some(lo), Some(hi)) = (d.smin.checked_sub(r.smax), d.smax.checked_sub(r.smin)) {
                out.smin = lo;
                out.smax = hi;
            }
        }
        BPF_MUL => {
            out.tnum = d.tnum.mul(r.tnum);
        }
        BPF_DIV | BPF_MOD => {
            // Exact only when both operands are constants (matching the
            // interpreter's div-by-zero semantics: div → 0, mod → lhs).
            if d.tnum.is_const() && r.tnum.is_const() {
                let (a, b) = (d.tnum.value, r.tnum.value);
                let v = match (op, b) {
                    (BPF_DIV, 0) => 0,
                    (BPF_MOD, 0) => a,
                    (BPF_DIV, _) => a / b,
                    (BPF_MOD, _) => a % b,
                    _ => unreachable!(),
                };
                return RegState::constant(v);
            }
            // Unsigned div/mod never grows the dividend (with the
            // rhs == 0 semantics above, the result is still ≤ lhs).
            out.umax = d.umax;
            if d.umax <= i64::MAX as u64 {
                out.smin = 0;
                out.smax = d.umax as i64;
            }
        }
        BPF_OR => {
            out.tnum = d.tnum.or(r.tnum);
            out.umin = d.umin.max(r.umin).max(out.tnum.umin());
            out.umax = out.tnum.umax();
        }
        BPF_AND => {
            out.tnum = d.tnum.and(r.tnum);
            out.umin = out.tnum.umin();
            out.umax = d.umax.min(r.umax).min(out.tnum.umax());
        }
        BPF_XOR => {
            out.tnum = d.tnum.xor(r.tnum);
            out.umin = out.tnum.umin();
            out.umax = out.tnum.umax();
        }
        BPF_LSH | BPF_RSH | BPF_ARSH => {
            if !r.tnum.is_const() {
                return RegState::unknown();
            }
            let sh = (r.tnum.value as u32) & shift_mask;
            match op {
                BPF_LSH => {
                    out.tnum = d.tnum.lshift(sh);
                    if d.umax.leading_zeros() >= sh {
                        out.umin = d.umin << sh;
                        out.umax = d.umax << sh;
                    }
                }
                BPF_RSH => {
                    out.tnum = d.tnum.rshift(sh);
                    out.umin = d.umin >> sh;
                    out.umax = d.umax >> sh;
                }
                _ => {
                    out.tnum = d.tnum.arshift(sh);
                    out.smin = d.smin >> sh;
                    out.smax = d.smax >> sh;
                    out.umin = out.tnum.umin();
                    out.umax = out.tnum.umax();
                }
            }
        }
        _ => {}
    }
    out
}

/// Tight bounds for `base_offset + c` (`c` from a signed insn offset).
fn shifted_bounds(base: &RegState, c: i64, tnum: &Tnum) -> (u64, u64) {
    let (mut lo, mut hi) = (tnum.umin(), tnum.umax());
    let r = if c >= 0 {
        match (
            base.umin.checked_add(c as u64),
            base.umax.checked_add(c as u64),
        ) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    } else {
        let m = c.unsigned_abs();
        if base.umin >= m {
            Some((base.umin - m, base.umax - m))
        } else {
            None // some offsets wrap; fall back to the tnum bounds
        }
    };
    if let Some((rlo, rhi)) = r {
        lo = lo.max(rlo);
        hi = hi.min(rhi);
    }
    (lo, hi)
}

/// Tries to prove one memory access safe. Returns `None` when it cannot —
/// the access then keeps its runtime bounds check, exactly as before this
/// analysis existed.
fn mem_fact<F>(
    base: &RegState,
    off: i16,
    size: usize,
    is_load: bool,
    map_value_size: &F,
) -> Option<MemFact>
where
    F: Fn(i32) -> Option<u64>,
{
    let c = off as i64;
    let total = base.tnum.add(Tnum::constant(c as u64));
    let (lo, hi) = shifted_bounds(base, c, &total);
    if lo > hi {
        return None;
    }
    match base.ty {
        // Context loads are proved at constant offsets only; context
        // *stores* fault at runtime (the region is read-only) and must
        // keep the check.
        RegType::PtrToCtx => {
            if is_load && total.is_const() && total.value as usize + size <= CTX_SIZE {
                Some(MemFact::CtxConst {
                    off: total.value as u16,
                })
            } else {
                None
            }
        }
        RegType::PtrToStack => {
            let end = hi.checked_add(size as u64)?;
            if end <= STACK_SIZE as u64 {
                if total.is_const() {
                    Some(MemFact::StackConst {
                        idx: total.value as u16,
                    })
                } else {
                    Some(MemFact::StackDyn)
                }
            } else {
                None
            }
        }
        RegType::PtrToMapValue { fd } => {
            let vs = map_value_size(fd)?;
            let end = hi.checked_add(size as u64)?;
            if end <= vs {
                Some(MemFact::MapValue)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The jump conditions, with `NSet` as the negation of `Set`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cond {
    Eq,
    Ne,
    Gt,
    Ge,
    Lt,
    Le,
    SGt,
    SGe,
    SLt,
    SLe,
    Set,
    NSet,
}

impl Cond {
    fn from_op(op: u8) -> Cond {
        match op {
            BPF_JEQ => Cond::Eq,
            BPF_JNE => Cond::Ne,
            BPF_JGT => Cond::Gt,
            BPF_JGE => Cond::Ge,
            BPF_JLT => Cond::Lt,
            BPF_JLE => Cond::Le,
            BPF_JSGT => Cond::SGt,
            BPF_JSGE => Cond::SGe,
            BPF_JSLT => Cond::SLt,
            BPF_JSLE => Cond::SLe,
            BPF_JSET => Cond::Set,
            _ => unreachable!("not a conditional jump"),
        }
    }

    fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Gt => Cond::Le,
            Cond::Le => Cond::Gt,
            Cond::Ge => Cond::Lt,
            Cond::Lt => Cond::Ge,
            Cond::SGt => Cond::SLe,
            Cond::SLe => Cond::SGt,
            Cond::SGe => Cond::SLt,
            Cond::SLt => Cond::SGe,
            Cond::Set => Cond::NSet,
            Cond::NSet => Cond::Set,
        }
    }

    fn is_signed(self) -> bool {
        matches!(self, Cond::SGt | Cond::SGe | Cond::SLt | Cond::SLe)
    }
}

/// Produces the register state on the `outcome` edge of a conditional
/// jump, or `None` when that edge is infeasible (the branch direction is
/// statically decided). Refinement applies to scalars and to the
/// null-check of a possibly-null map-value pointer; comparisons involving
/// any other pointer refine nothing (both edges stay feasible with
/// unchanged state) — claiming less is always sound.
fn refine_branch(st: &Regs, insn: &Insn, is32: bool, outcome: bool) -> Option<Regs> {
    let mut out = *st;
    let dst = insn.dst as usize;
    let is_x = insn.opcode & 0x08 == BPF_X;
    let cond = Cond::from_op(insn.opcode & 0xf0);
    let eff = if outcome { cond } else { cond.negate() };

    // Null-check narrowing: `if rX ==/!= 0` on a maybe-null map value.
    if !is32 && !is_x && insn.imm == 0 && matches!(cond, Cond::Eq | Cond::Ne) {
        if let RegType::PtrToMapValueOrNull { fd } = st[dst].ty {
            let is_null = matches!(eff, Cond::Eq);
            out[dst] = if is_null {
                RegState::constant(0)
            } else {
                let mut p = st[dst];
                p.ty = RegType::PtrToMapValue { fd };
                p
            };
            return Some(out);
        }
    }

    let d = st[dst];
    let rhs_reg = is_x.then_some(insn.src as usize);
    let r = match rhs_reg {
        Some(s) => st[s],
        None => {
            if is32 {
                RegState::constant(insn.imm as u32 as u64)
            } else {
                RegState::constant(insn.imm as i64 as u64)
            }
        }
    };
    if d.ty != RegType::Scalar || r.ty != RegType::Scalar {
        return Some(out); // pointers compare at runtime; no refinement
    }
    if is32 {
        // Narrow compares refine only when both operands provably fit in
        // 32 bits (then the low words *are* the values); signed narrow
        // compares additionally need the sign bit clear.
        let fits = d.umax <= u32::MAX as u64 && r.umax <= u32::MAX as u64;
        let signed_ok = d.umax <= i32::MAX as u64 && r.umax <= i32::MAX as u64;
        if !fits || (eff.is_signed() && !signed_ok) {
            return Some(out);
        }
    }
    let (nd, nr) = apply_cond(eff, d, r)?;
    out[dst] = nd;
    if let Some(s) = rhs_reg {
        out[s] = nr;
    }
    Some(out)
}

/// Narrows `d` and `r` under the assumption `d <cond> r` holds. Returns
/// `None` when the assumption is contradictory.
fn apply_cond(cond: Cond, mut d: RegState, mut r: RegState) -> Option<(RegState, RegState)> {
    match cond {
        Cond::Eq => {
            let tnum = d.tnum.meet(r.tnum)?;
            let m = RegState {
                ty: RegType::Scalar,
                tnum,
                umin: d.umin.max(r.umin),
                umax: d.umax.min(r.umax),
                smin: d.smin.max(r.smin),
                smax: d.smax.min(r.smax),
            };
            d = m;
            r = m;
        }
        Cond::Ne => {
            if d.tnum.is_const() && r.tnum.is_const() {
                if d.tnum.value == r.tnum.value {
                    return None;
                }
            } else if r.tnum.is_const() {
                nudge_ne(&mut d, r.tnum.value);
            } else if d.tnum.is_const() {
                nudge_ne(&mut r, d.tnum.value);
            }
        }
        Cond::Gt => {
            d.umin = d.umin.max(r.umin.checked_add(1)?);
            r.umax = r.umax.min(d.umax.checked_sub(1)?);
        }
        Cond::Ge => {
            d.umin = d.umin.max(r.umin);
            r.umax = r.umax.min(d.umax);
        }
        Cond::Lt => {
            d.umax = d.umax.min(r.umax.checked_sub(1)?);
            r.umin = r.umin.max(d.umin.checked_add(1)?);
        }
        Cond::Le => {
            d.umax = d.umax.min(r.umax);
            r.umin = r.umin.max(d.umin);
        }
        Cond::SGt => {
            d.smin = d.smin.max(r.smin.checked_add(1)?);
            r.smax = r.smax.min(d.smax.checked_sub(1)?);
        }
        Cond::SGe => {
            d.smin = d.smin.max(r.smin);
            r.smax = r.smax.min(d.smax);
        }
        Cond::SLt => {
            d.smax = d.smax.min(r.smax.checked_sub(1)?);
            r.smin = r.smin.max(d.smin.checked_add(1)?);
        }
        Cond::SLe => {
            d.smax = d.smax.min(r.smax);
            r.smin = r.smin.max(d.smin);
        }
        Cond::Set => {
            // `d & r != 0` needs a common possibly-set bit.
            if (d.tnum.umax() & r.tnum.umax()) == 0 {
                return None;
            }
        }
        Cond::NSet => {
            // `d & r == 0`: a bit known-set in both contradicts; bits
            // known-set in a constant rhs are known-clear in d.
            if d.tnum.value & r.tnum.value != 0 {
                return None;
            }
            if r.tnum.is_const() {
                d.tnum.mask &= !r.tnum.value;
            }
            if d.tnum.is_const() {
                r.tnum.mask &= !d.tnum.value;
            }
        }
    }
    if !d.normalize() || !r.normalize() {
        return None;
    }
    Some((d, r))
}

/// `reg != c`: trims `c` off range endpoints.
fn nudge_ne(reg: &mut RegState, c: u64) {
    if reg.umin == c {
        reg.umin = reg.umin.saturating_add(1);
    }
    if reg.umax == c {
        reg.umax = reg.umax.saturating_sub(1);
    }
    let sc = c as i64;
    if reg.smin == sc {
        reg.smin = reg.smin.saturating_add(1);
    }
    if reg.smax == sc {
        reg.smax = reg.smax.saturating_sub(1);
    }
}

/// Renders the kernel-style verifier log: the annotated listing (joined
/// register state after each reachable instruction's *inputs*, proven
/// facts) followed by every diagnostic with the register state at the
/// point of rejection.
pub fn render_log(insns: &[Insn], analysis: &Analysis) -> String {
    use core::fmt::Write as _;
    let mut out = crate::disasm::disassemble_annotated(insns, analysis).join("\n");
    out.push('\n');
    if analysis.ok() {
        let proven = analysis.proven_facts();
        let _ = writeln!(out, "verification OK, {proven} insn(s) carry proven facts");
    } else {
        for d in analysis.diagnostics() {
            let _ = writeln!(out, "error at insn {}: {}", d.insn, d.error);
            if let Some(regs) = &d.regs {
                let _ = writeln!(out, "  {}", fmt_regs(regs));
            }
        }
        let _ = writeln!(
            out,
            "verification FAILED: {} error(s)",
            analysis.diagnostics().len()
        );
    }
    out
}

/// Formats the interesting (initialised) registers of a state on one line.
pub(crate) fn fmt_regs(regs: &[RegState; NUM_REGS]) -> String {
    let mut parts = Vec::new();
    for (i, r) in regs.iter().enumerate() {
        if r.is_init() && *r != RegState::unknown() {
            parts.push(format!("R{i}={r}"));
        }
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use crate::vm::standard_helpers;

    // ---- helpers ---------------------------------------------------

    /// Does the abstract state admit the concrete value `v`?
    fn contains(r: &RegState, v: u64) -> bool {
        r.ty == RegType::Scalar
            && v >= r.umin
            && v <= r.umax
            && (v as i64) >= r.smin
            && (v as i64) <= r.smax
            && r.tnum.contains(v)
    }

    /// The tightest abstract state covering a concrete value set, built
    /// the same way the analysis would: joining exact constants.
    fn abstract_of(values: &[u64]) -> RegState {
        let mut st = RegState::constant(values[0]);
        for &v in &values[1..] {
            st = st.join(&RegState::constant(v));
        }
        st
    }

    fn regs() -> Regs {
        [RegState::unknown(); NUM_REGS]
    }

    fn analyze_src(src: &str) -> Analysis {
        let lines: Vec<&str> = src.lines().collect();
        let insns = parse_program(&lines).expect("test listing parses");
        analyze(&insns, &standard_helpers(), |fd| (fd == 0).then_some(64))
    }

    // ---- join ------------------------------------------------------

    #[test]
    fn join_of_constants_covers_both() {
        let j = RegState::constant(3).join(&RegState::constant(7));
        assert_eq!(j.ty, RegType::Scalar);
        assert_eq!((j.umin, j.umax), (3, 7));
        assert_eq!((j.smin, j.smax), (3, 7));
        assert!(j.tnum.contains(3) && j.tnum.contains(7));
        // Bit 2 differs between 0b011 and 0b111, the rest are shared.
        assert_eq!((j.tnum.value, j.tnum.mask), (0b011, 0b100));
    }

    #[test]
    fn join_with_uninit_is_uninit() {
        let j = RegState::constant(1).join(&RegState::uninit());
        assert_eq!(j.ty, RegType::Uninit);
        let j = RegState::uninit().join(&RegState::ptr(RegType::PtrToCtx));
        assert_eq!(j.ty, RegType::Uninit);
    }

    #[test]
    fn join_ptr_with_maybe_null_keeps_maybe_null() {
        let p = RegState::ptr(RegType::PtrToMapValue { fd: 3 });
        let q = RegState::ptr(RegType::PtrToMapValueOrNull { fd: 3 });
        assert_eq!(p.join(&q).ty, RegType::PtrToMapValueOrNull { fd: 3 });
        assert_eq!(q.join(&p).ty, RegType::PtrToMapValueOrNull { fd: 3 });
    }

    #[test]
    fn join_map_ptr_with_zero_is_maybe_null() {
        let p = RegState::ptr(RegType::PtrToMapValue { fd: 3 });
        let zero = RegState::constant(0);
        assert_eq!(p.join(&zero).ty, RegType::PtrToMapValueOrNull { fd: 3 });
        assert_eq!(zero.join(&p).ty, RegType::PtrToMapValueOrNull { fd: 3 });
    }

    #[test]
    fn join_of_mixed_types_degrades_to_unknown_scalar() {
        let p = RegState::ptr(RegType::PtrToCtx);
        let s = RegState::constant(4);
        assert_eq!(p.join(&s), RegState::unknown());
        let m1 = RegState::ptr(RegType::PtrToMapValue { fd: 1 });
        let m2 = RegState::ptr(RegType::PtrToMapValue { fd: 2 });
        assert_eq!(m1.join(&m2), RegState::unknown());
    }

    #[test]
    fn join_is_an_upper_bound() {
        let samples = [
            RegState::constant(0),
            RegState::constant(u64::MAX),
            RegState::unknown_width(16),
            RegState::ptr_at(RegType::PtrToStack, 504),
            RegState::ptr(RegType::PtrToMapValueOrNull { fd: 0 }),
            RegState::unknown(),
        ];
        for a in &samples {
            for b in &samples {
                let j = a.join(b);
                assert!(a.subsumed_by(&j), "{a:?} not below join {j:?}");
                assert!(b.subsumed_by(&j), "{b:?} not below join {j:?}");
            }
        }
    }

    // ---- subsumption (pruning order) -------------------------------

    #[test]
    fn constant_subsumed_by_covering_range() {
        let five = RegState::constant(5);
        let wide = abstract_of(&[0, 5, 9]);
        assert!(five.subsumed_by(&wide));
        assert!(!wide.subsumed_by(&five));
        assert!(five.subsumed_by(&RegState::unknown()));
    }

    #[test]
    fn uninit_is_most_pessimistic() {
        // Pruning a state against a *more* pessimistic one is safe:
        // anything may be dropped in favour of uninit, and uninit may
        // only be dropped for uninit.
        let u = RegState::uninit();
        assert!(RegState::constant(1).subsumed_by(&u));
        assert!(u.subsumed_by(&u));
        assert!(!u.subsumed_by(&RegState::unknown()));
    }

    #[test]
    fn nonnull_subsumed_by_maybe_null_same_fd_only() {
        let p = RegState::ptr(RegType::PtrToMapValue { fd: 3 });
        let or3 = RegState::ptr(RegType::PtrToMapValueOrNull { fd: 3 });
        let or4 = RegState::ptr(RegType::PtrToMapValueOrNull { fd: 4 });
        assert!(p.subsumed_by(&or3));
        assert!(!p.subsumed_by(&or4));
        // The reverse direction would *strengthen* a null-safety claim.
        assert!(!or3.subsumed_by(&p));
        assert!(RegState::constant(0).subsumed_by(&or3));
        assert!(!RegState::constant(1).subsumed_by(&or3));
    }

    // ---- branch refinement: every jump condition -------------------

    /// Concrete truth of `a <cond> b` per eBPF semantics.
    fn concrete(cond: u8, is32: bool, a: u64, b: u64) -> bool {
        let (au, bu) = if is32 {
            (a as u32 as u64, b as u32 as u64)
        } else {
            (a, b)
        };
        let (asi, bsi) = if is32 {
            (a as u32 as i32 as i64, b as u32 as i32 as i64)
        } else {
            (a as i64, b as i64)
        };
        match cond {
            BPF_JEQ => au == bu,
            BPF_JNE => au != bu,
            BPF_JGT => au > bu,
            BPF_JGE => au >= bu,
            BPF_JLT => au < bu,
            BPF_JLE => au <= bu,
            BPF_JSGT => asi > bsi,
            BPF_JSGE => asi >= bsi,
            BPF_JSLT => asi < bsi,
            BPF_JSLE => asi <= bsi,
            BPF_JSET => au & bu != 0,
            _ => unreachable!(),
        }
    }

    const ALL_JUMPS: [u8; 11] = [
        BPF_JEQ, BPF_JNE, BPF_JGT, BPF_JGE, BPF_JLT, BPF_JLE, BPF_JSGT, BPF_JSGE, BPF_JSLT,
        BPF_JSLE, BPF_JSET,
    ];

    /// For every jump condition, both widths, both edges, and both the
    /// immediate and register forms: the refined state on an edge must
    /// still admit every concrete value that takes that edge, and an
    /// edge taken by some concrete value must stay feasible.
    #[test]
    fn refinement_is_sound_for_every_condition() {
        let dvals: &[u64] = &[0, 1, 5, 8, 15, u64::MAX, i64::MIN as u64];
        let rvals: &[u64] = &[0, 6, 8];
        for &cond in &ALL_JUMPS {
            for is32 in [false, true] {
                // Narrow compares only refine when both sides provably
                // fit in 32 (signed: 31) bits; use a fitting value set.
                let dvals: &[u64] = if is32 { &[0, 1, 5, 8, 15] } else { dvals };
                for (is_x, rhs) in [(false, 8i32), (true, 0)] {
                    let rset: &[u64] = if is_x { rvals } else { &[8] };
                    let mut st = regs();
                    st[1] = abstract_of(dvals);
                    if is_x {
                        st[2] = abstract_of(rset);
                    }
                    let class = if is32 { BPF_JMP32 } else { BPF_JMP };
                    let mode = if is_x { BPF_X } else { BPF_K };
                    let insn = Insn::new(class | cond | mode, 1, 2, 1, rhs);
                    for outcome in [true, false] {
                        let refined = refine_branch(&st, &insn, is32, outcome);
                        let takers: Vec<(u64, u64)> = dvals
                            .iter()
                            .flat_map(|&a| rset.iter().map(move |&b| (a, b)))
                            .filter(|&(a, b)| concrete(cond, is32, a, b) == outcome)
                            .collect();
                        if takers.is_empty() {
                            continue; // edge may (but need not) be pruned
                        }
                        let out = refined.unwrap_or_else(|| {
                            panic!("cond {cond:#x} is32={is32} outcome={outcome}: feasible edge pruned")
                        });
                        for (a, b) in takers {
                            assert!(
                                contains(&out[1], a),
                                "cond {cond:#x} is32={is32} is_x={is_x} outcome={outcome}: \
                                 lost dst value {a} from {:?}",
                                out[1]
                            );
                            if is_x {
                                assert!(
                                    contains(&out[2], b),
                                    "cond {cond:#x} is32={is32} outcome={outcome}: \
                                     lost src value {b} from {:?}",
                                    out[2]
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn eq_refines_to_the_constant() {
        let mut st = regs();
        st[1] = abstract_of(&[0, 5, 200]);
        let insn = Insn::new(BPF_JMP | BPF_JEQ | BPF_K, 1, 0, 1, 5);
        let taken = refine_branch(&st, &insn, false, true).unwrap();
        assert_eq!(taken[1], RegState::constant(5));
    }

    #[test]
    fn contradictory_edge_is_infeasible() {
        let mut st = regs();
        st[1] = RegState::constant(5);
        // `if r1 == 5`: the fall-through edge asserts r1 != 5.
        let insn = Insn::new(BPF_JMP | BPF_JEQ | BPF_K, 1, 0, 1, 5);
        assert!(refine_branch(&st, &insn, false, false).is_none());
        assert!(refine_branch(&st, &insn, false, true).is_some());
        // `if r1 > 5` can never hold for a constant 5.
        let insn = Insn::new(BPF_JMP | BPF_JGT | BPF_K, 1, 0, 1, 5);
        assert!(refine_branch(&st, &insn, false, true).is_none());
    }

    #[test]
    fn unsigned_bounds_tighten_both_operands() {
        let mut st = regs();
        st[1] = abstract_of(&[20, 100]);
        st[2] = abstract_of(&[10, 50]);
        let insn = Insn::new(BPF_JMP | BPF_JLT | BPF_X, 1, 2, 1, 0);
        let taken = refine_branch(&st, &insn, false, true).unwrap();
        assert_eq!(taken[1].umax, 49); // r1 < r2 <= 50
        assert_eq!(taken[2].umin, 21); // r2 > r1 >= 20
                                       // The fall-through (r1 >= r2) stays feasible, bounds intact.
        let fall = refine_branch(&st, &insn, false, false).unwrap();
        assert_eq!((fall[1].umin, fall[2].umax), (20, 50));
    }

    #[test]
    fn signed_refinement_keeps_negative_values() {
        let mut st = regs();
        st[1] = abstract_of(&[u64::MAX, 1, 7]); // {-1, 1, 7} as signed
        let insn = Insn::new(BPF_JMP | BPF_JSGT | BPF_K, 1, 0, 1, 0);
        let taken = refine_branch(&st, &insn, false, true).unwrap();
        assert!(contains(&taken[1], 1) && contains(&taken[1], 7));
        assert_eq!(taken[1].smin, 1);
        let fall = refine_branch(&st, &insn, false, false).unwrap();
        assert!(contains(&fall[1], u64::MAX));
        assert_eq!(fall[1].smax, 0);
    }

    #[test]
    fn nset_fallthrough_clears_known_bits() {
        let mut st = regs();
        st[1] = abstract_of(&[0, 1, 2, 3]);
        // `if r1 & 1 goto`: fall-through proves the low bit clear.
        let insn = Insn::new(BPF_JMP | BPF_JSET | BPF_K, 1, 0, 1, 1);
        let fall = refine_branch(&st, &insn, false, false).unwrap();
        assert_eq!(fall[1].tnum.value & 1, 0);
        assert_eq!(fall[1].tnum.mask & 1, 0);
        assert!(contains(&fall[1], 0) && contains(&fall[1], 2));
        assert!(!contains(&fall[1], 1));
    }

    #[test]
    fn narrow_compare_refines_nothing_for_wide_values() {
        let mut st = regs();
        st[1] = RegState::unknown(); // may exceed u32::MAX
        let insn = Insn::new(BPF_JMP32 | BPF_JGT | BPF_K, 1, 0, 1, 10);
        // The low word being > 10 says nothing about the 64-bit range.
        let taken = refine_branch(&st, &insn, true, true).unwrap();
        assert_eq!(taken[1], RegState::unknown());
    }

    #[test]
    fn null_check_splits_maybe_null_pointer() {
        let mut st = regs();
        st[1] = RegState::ptr(RegType::PtrToMapValueOrNull { fd: 7 });
        let insn = Insn::new(BPF_JMP | BPF_JEQ | BPF_K, 1, 0, 1, 0);
        let null_edge = refine_branch(&st, &insn, false, true).unwrap();
        assert_eq!(null_edge[1], RegState::constant(0));
        let ok_edge = refine_branch(&st, &insn, false, false).unwrap();
        assert_eq!(ok_edge[1].ty, RegType::PtrToMapValue { fd: 7 });
    }

    #[test]
    fn comparisons_on_other_pointers_refine_nothing() {
        let mut st = regs();
        st[1] = RegState::ptr(RegType::PtrToCtx);
        let insn = Insn::new(BPF_JMP | BPF_JEQ | BPF_K, 1, 0, 1, 0);
        // Both edges stay feasible with unchanged state.
        assert_eq!(refine_branch(&st, &insn, false, true).unwrap()[1], st[1]);
        assert_eq!(refine_branch(&st, &insn, false, false).unwrap()[1], st[1]);
    }

    // ---- whole-program fact emission -------------------------------

    #[test]
    fn merge_joins_constant_ranges() {
        let a = analyze_src(
            "r2 = 3\n\
             if r1 == 0 goto +1\n\
             r2 = 7\n\
             r0 = r2\n\
             exit",
        );
        assert!(a.ok());
        let r2 = a.state_at(3).expect("reachable")[2];
        assert_eq!((r2.umin, r2.umax), (3, 7));
        assert!(r2.tnum.contains(3) && r2.tnum.contains(7));
    }

    #[test]
    fn statically_false_branch_is_never_taken_and_kills_the_tail() {
        let a = analyze_src(
            "r2 = 3\n\
             if r2 > 5 goto +2\n\
             r0 = 0\n\
             exit\n\
             r0 = r9\n\
             exit",
        );
        // The dead tail reads uninitialized r9 — accepted only because
        // the analysis proved it unreachable.
        assert!(a.ok());
        assert_eq!(a.fact(1).branch, Some(BranchFact::NeverTaken));
        assert!(!a.fact(4).reachable);
        assert!(a.state_at(4).is_none());
    }

    #[test]
    fn statically_true_branch_is_always_taken() {
        let a = analyze_src(
            "r2 = 9\n\
             if r2 > 5 goto +2\n\
             r0 = r9\n\
             exit\n\
             r0 = 0\n\
             exit",
        );
        assert!(a.ok());
        assert_eq!(a.fact(1).branch, Some(BranchFact::AlwaysTaken));
        assert!(!a.fact(2).reachable);
    }

    #[test]
    fn unproven_register_divisor_is_rejected() {
        let a = analyze_src(
            "r2 = *(u64 *)(r1 +0)\n\
             r0 = 100\n\
             r0 /= r2\n\
             exit",
        );
        assert!(!a.ok());
        let err = a.first_error().expect("rejected");
        assert!(matches!(
            err,
            VerifyError::DivisorMayBeZero { reg: 2, insn: 2 }
        ));
        assert!(!a.fact(2).div_nonzero);
    }

    #[test]
    fn guarded_divisor_is_proved_nonzero() {
        let a = analyze_src(
            "r2 = *(u64 *)(r1 +0)\n\
             r0 = 100\n\
             if r2 == 0 goto +1\n\
             r0 /= r2\n\
             exit",
        );
        assert!(a.ok(), "guarded division rejected: {:?}", a.first_error());
        assert!(a.fact(3).div_nonzero);
    }

    #[test]
    fn known_bits_prove_divisor_nonzero() {
        let a = analyze_src(
            "r2 = *(u64 *)(r1 +0)\n\
             r2 |= 1\n\
             r0 = 100\n\
             r0 %= r2\n\
             exit",
        );
        assert!(a.ok());
        assert!(a.fact(3).div_nonzero);
    }

    #[test]
    fn ctx_and_computed_stack_accesses_carry_mem_facts() {
        let a = analyze_src(
            "r2 = *(u32 *)(r1 +4)\n\
             r3 = r10\n\
             r3 += -16\n\
             *(u64 *)(r3 +0) = r2\n\
             r0 = *(u64 *)(r3 +8)\n\
             exit",
        );
        assert!(a.ok());
        assert_eq!(a.fact(0).mem, Some(MemFact::CtxConst { off: 4 }));
        let base = (STACK_SIZE - 16) as u16;
        assert_eq!(a.fact(3).mem, Some(MemFact::StackConst { idx: base }));
        assert_eq!(a.fact(4).mem, Some(MemFact::StackConst { idx: base + 8 }));
    }

    #[test]
    fn null_checked_map_value_access_carries_map_fact() {
        let a = analyze_src(
            "r1 = 0\n\
             *(u64 *)(r10 -8) = r1\n\
             r2 = r10\n\
             r2 += -8\n\
             r1 = map_fd(0)\n\
             call 1\n\
             if r0 == 0 goto +2\n\
             r1 = *(u64 *)(r0 +0)\n\
             r0 = 0\n\
             exit",
        );
        assert!(a.ok(), "map idiom rejected: {:?}", a.first_error());
        // lddw occupies insns 4–5; the deref behind the null check is 8.
        assert_eq!(a.fact(8).mem, Some(MemFact::MapValue));
        assert!(a.proven_facts() >= 2);
    }

    #[test]
    fn unchecked_map_value_access_has_no_fact_but_is_accepted() {
        let a = analyze_src(
            "r1 = 0\n\
             *(u64 *)(r10 -8) = r1\n\
             r2 = r10\n\
             r2 += -8\n\
             r1 = map_fd(0)\n\
             call 1\n\
             if r0 == 0 goto +2\n\
             r1 = *(u64 *)(r0 +128)\n\
             r0 = 0\n\
             exit",
        );
        // Offset 128 exceeds the 64-byte value size: no proof, but the
        // access stays runtime-checked — permissiveness contract.
        assert!(a.ok());
        assert_eq!(a.fact(8).mem, None);
    }
}
