//! The threaded-code compilation tier.
//!
//! The paper attributes vNetTracer's low overhead to the kernel's JIT
//! (§II: "the JIT compiling minimizes the execution overhead of the eBPF
//! code"). This module is the simulator's equivalent: it lowers a
//! verified [`LoadedProgram`] once, into a dense array of pre-decoded
//! typed ops, and then executes that instead of re-decoding raw bytecode
//! on every probe firing.
//!
//! What compilation buys, concretely:
//!
//! * **decode once** — opcode/class/size splitting, immediate sign
//!   extension and `lddw` pairing happen at compile time, never in the
//!   hot loop;
//! * **jump pre-resolution** — branch targets are op-array indices, not
//!   signed instruction offsets to be re-computed per taken branch;
//! * **helper binding** — each `call` site holds a direct function
//!   pointer ([`HelperFn`]), resolved from the shared helper table at
//!   compile time, so there is no id lookup at run time;
//! * **bounds-check elision** — the verifier proves every `r10`-relative
//!   access lands inside the 512-byte stack and that `r10` is never
//!   written, so stack loads/stores compile to direct array indexing
//!   with no region dispatch;
//! * **verifier-proved check elision** — the abstract-interpretation
//!   [`Analysis`](crate::analysis::Analysis) attached to every loaded
//!   program proves facts the syntactic `r10` rule cannot: in-bounds
//!   context reads at constant offsets, stack accesses through
//!   *computed* pointers, map-value accesses inside the value size
//!   (after the null check), nonzero register divisors and
//!   statically-decided branches. Each proved site lowers to an
//!   unchecked op (`LoadCtx`, `LoadStackDyn`, `LoadMapVal`, `DivReg`,
//!   `Nop`/`JaElided` and store counterparts); [`compile_with`] can
//!   switch the whole mechanism off, which the differential proptests
//!   use to pin elided and checked executions against each other;
//! * **fusion** — sequences the trace-program compiler emits constantly
//!   become single ops: load(+byteswap)+compare-branch (filter field
//!   checks), load(+byteswap)+store-to-stack (field extraction),
//!   load+add-imm+store (counter increments, resolved against the map
//!   value once), mov+add-imm address formation, map-lookup +
//!   null-check (counter programs), runs of immediate stack stores
//!   (key/scratch initialisation), and mov-imm-to-`r0`+`exit` returns.
//!
//! Execution semantics are bit-identical to the interpreter — same
//! [`Memory`] address space, same map-value slot allocation order, same
//! error values — which the differential proptests in
//! `tests/proptests.rs` enforce. The two tiers differ only in speed and
//! in the sim cost model ([`crate::vm::jit_execution_cost_ns`] plus the
//! one-time [`crate::vm::jit_compile_cost_ns`]).

use crate::analysis::{BranchFact, InsnFact, MemFact};
use crate::context::TraceContext;
use crate::insn::*;
use crate::map::MapRegistry;
use crate::program::LoadedProgram;
use crate::vm::{
    access_size, alu32, alu64, helper_by_id, helper_ids, helper_map_lookup, jump_taken, read_le,
    write_le, HelperFn, Memory, VmEnv, VmError,
};

/// Default instruction budget, matching [`crate::vm::Vm::new`]. Purely a
/// backstop: verified programs are loop-free and at most 4096
/// instructions, so they can never reach it.
const DEFAULT_BUDGET: u64 = 65_536;

/// One immediate store to a statically-bounded stack slot, part of a
/// fused [`Op::StoreRun`]. Kept in a side table so `Op` stays small.
#[derive(Debug, Clone, Copy)]
struct StackStore {
    idx: u16,
    len: u8,
    imm: u64,
}

/// A pre-decoded op. Everything static — operand widths, sign-extended
/// immediates, resolved jump targets, bound helper thunks — is baked in
/// at compile time.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// 64-bit ALU with pre-sign-extended immediate.
    Alu64Imm { op: u8, dst: u8, imm: u64 },
    /// 64-bit ALU, register operand.
    Alu64Reg { op: u8, dst: u8, src: u8 },
    /// 32-bit ALU with pre-truncated immediate.
    Alu32Imm { op: u8, dst: u8, imm: u32 },
    /// 32-bit ALU, register operand.
    Alu32Reg { op: u8, dst: u8, src: u8 },
    /// `be16`/`be32`/`be64` (width 16/32/64).
    Endian { dst: u8, width: u8 },
    /// `lddw`: both slots pre-combined (map handles pre-materialised at
    /// load time). Retires one instruction, like the interpreter.
    MovImm64 { dst: u8, imm: u64 },
    /// Stack load with the region check elided (verifier-proven bounds).
    LoadStack { size: u8, dst: u8, idx: u16 },
    /// Stack store of a register, region check elided.
    StoreStackReg { size: u8, src: u8, idx: u16 },
    /// Stack store of an immediate, region check elided.
    StoreStackImm { size: u8, idx: u16, imm: u64 },
    /// General load through the tagged address space.
    Load {
        size: u8,
        dst: u8,
        src: u8,
        off: i16,
    },
    /// General register store through the tagged address space.
    StoreReg {
        size: u8,
        dst: u8,
        src: u8,
        off: i16,
    },
    /// General immediate store through the tagged address space.
    StoreImm {
        size: u8,
        dst: u8,
        off: i16,
        imm: u64,
    },
    /// Atomic add (plain RMW in the single-threaded VM).
    AtomicAdd {
        size: u8,
        dst: u8,
        src: u8,
        off: i16,
        fetch: bool,
    },
    /// Unconditional jump to a pre-resolved op index.
    Ja { target: u32 },
    /// 64-bit conditional branch against a pre-sign-extended immediate.
    JmpImm {
        op: u8,
        dst: u8,
        rhs: u64,
        target: u32,
    },
    /// 64-bit conditional branch against a register.
    JmpReg {
        op: u8,
        dst: u8,
        src: u8,
        target: u32,
    },
    /// 32-bit conditional branch against an immediate.
    Jmp32Imm {
        op: u8,
        dst: u8,
        rhs: u32,
        target: u32,
    },
    /// 32-bit conditional branch against a register.
    Jmp32Reg {
        op: u8,
        dst: u8,
        src: u8,
        target: u32,
    },
    /// Helper call bound to a direct thunk at compile time. `cost` is
    /// the static charge (dispatch + per-helper) from [`crate::cost`],
    /// captured here because the thunk erases the helper id.
    Call { thunk: HelperFn, cost: u32 },
    /// Call to a helper id with no bound implementation; aborts with
    /// [`VmError::UnknownHelper`] exactly as the interpreter would.
    CallUnknown { id: i32 },
    /// Program exit.
    Exit,
    /// An instruction the tier cannot execute; aborts with
    /// [`VmError::BadInstruction`] exactly as the interpreter would.
    Abort { pc: u32 },
    /// Fused load (+ optional byteswap) + compare-branch — the shape of
    /// every filter field check. Still writes the loaded (swapped)
    /// value to `dst`, so register state matches the interpreter.
    LoadBranch {
        size: u8,
        dst: u8,
        src: u8,
        off: i16,
        /// 0 = no byteswap, else 16/32/64.
        be: u8,
        cond: u8,
        /// The branch compares 32-bit (`BPF_JMP32`).
        narrow: bool,
        rhs: u64,
        target: u32,
        retire: u8,
        /// `Some(off)` when the verifier proved the load is an in-bounds
        /// context read at constant offset `off`: the region dispatch is
        /// elided inside the fused op.
        ctx_off: Option<u16>,
    },
    /// Fused load (+ optional byteswap) + store of the loaded register
    /// into a verifier-proven stack slot — the record-building idiom
    /// (`ldx; be*; stx [fp-n]`). Still writes `dst`, so register state
    /// matches the interpreter.
    LoadToStack {
        size: u8,
        dst: u8,
        src: u8,
        off: i16,
        /// 0 = no byteswap, else 16/32/64.
        be: u8,
        st_size: u8,
        idx: u16,
        retire: u8,
        /// As in [`Op::LoadBranch`]: proved constant context offset.
        ctx_off: Option<u16>,
    },
    /// Fused address computation: `mov64 dst, src; dst += imm`.
    Lea { dst: u8, src: u8, imm: u64 },
    /// Fused read-modify-write: `ldx dst, [src+off]; dst += imm;
    /// stx [src+off], dst` — the counter-increment idiom. One region
    /// resolution (and, for map values, one map lookup) covers both
    /// accesses; still leaves the full 64-bit sum in `dst`, matching
    /// the interpreter. Retires three instructions.
    LoadAddStore {
        size: u8,
        dst: u8,
        src: u8,
        off: i16,
        imm: u64,
    },
    /// Fused `call map_lookup_elem` + null-check branch (`cond` is
    /// `BPF_JEQ` or `BPF_JNE` against 0). The lookup is dispatched as a
    /// direct (inlinable) call rather than through a bound thunk.
    /// Retires two instructions.
    MapLookupNull { cond: u8, target: u32 },
    /// Fused `mov64 r0, imm; exit` — the universal return idiom.
    /// Retires two instructions.
    ExitImm { imm: u64 },
    /// Fused run of immediate stack stores; `count` side-table entries
    /// starting at `start`, retiring `count` instructions.
    StoreRun { start: u32, count: u16 },
    /// Context load at a verifier-proved constant in-bounds offset
    /// (`MemFact::CtxConst`): the base register is ignored — the
    /// analysis proved its value is exactly `CTX_BASE + off`.
    LoadCtx { size: u8, dst: u8, off: u16 },
    /// Stack access through a *computed* pointer the verifier proved
    /// in-frame (`MemFact::StackConst`/`StackDyn`): region dispatch and
    /// bounds check elided, the runtime address is trusted.
    LoadStackDyn {
        size: u8,
        dst: u8,
        src: u8,
        off: i16,
    },
    /// Register-store counterpart of [`Op::LoadStackDyn`].
    StoreStackDynReg {
        size: u8,
        dst: u8,
        src: u8,
        off: i16,
    },
    /// Immediate-store counterpart of [`Op::LoadStackDyn`].
    StoreStackDynImm {
        size: u8,
        dst: u8,
        off: i16,
        imm: u64,
    },
    /// Map-value load the verifier proved inside the value size after a
    /// null check (`MemFact::MapValue`): region dispatch and the
    /// value-size bounds check elided; only the slot/map resolution
    /// remains.
    LoadMapVal {
        size: u8,
        dst: u8,
        src: u8,
        off: i16,
    },
    /// Register-store counterpart of [`Op::LoadMapVal`].
    StoreMapValReg {
        size: u8,
        dst: u8,
        src: u8,
        off: i16,
    },
    /// Immediate-store counterpart of [`Op::LoadMapVal`].
    StoreMapValImm {
        size: u8,
        dst: u8,
        off: i16,
        imm: u64,
    },
    /// Register divide/modulo whose divisor the verifier proved nonzero:
    /// the zero test is elided. `narrow` selects the 32-bit form.
    DivReg {
        dst: u8,
        src: u8,
        rem: bool,
        narrow: bool,
    },
    /// A conditional branch the verifier proved never taken: compare
    /// elided, falls through. Retires one instruction, like the branch.
    Nop,
    /// A conditional branch the verifier proved always taken: compare
    /// elided, unconditional jump.
    JaElided { target: u32 },
}

/// Result of a compiled execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitOutcome {
    /// The program's return value (`r0` at exit).
    pub ret: u64,
    /// Pre-decoded ops dispatched (drives
    /// [`crate::vm::jit_execution_cost_ns`]).
    pub ops_executed: u64,
    /// Original instructions retired — matches the interpreter's
    /// `insns_executed` for the same input, fused ops retiring several.
    pub insns_retired: u64,
    /// The path's dynamic cost under the shared static cost table
    /// ([`crate::cost`]). Fused ops charge the sum of their components,
    /// so this matches the interpreter's `cost_ns` for the same input
    /// and is bounded by the program's certificate.
    pub cost_ns: u64,
    /// Fused ops dispatched this run.
    pub fused_hits: u64,
    /// Runtime checks skipped this run because the verifier's analysis
    /// proved them redundant (bounds checks, region dispatches, divisor
    /// zero-tests, decided branch compares).
    pub checks_elided: u64,
}

/// A program lowered to threaded code, ready to execute.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    name: String,
    ops: Box<[Op]>,
    /// Static charge per op under the shared cost table, precomputed so
    /// the dispatch loop pays one indexed add instead of a match.
    op_costs: Box<[u32]>,
    stores: Box<[StackStore]>,
    insn_count: usize,
    fused_ops: usize,
    elided_sites: usize,
    budget: u64,
}

/// The static charge of one pre-decoded op: the [`crate::cost`] table
/// applied per component, so a fused op costs exactly what its source
/// instructions would under the interpreter.
fn op_cost(op: &Op) -> u32 {
    use crate::cost::{
        helper_cost_ns, ALU_COST_NS, ATOMIC_COST_NS, CALL_DISPATCH_COST_NS, MEM_COST_NS,
    };
    use crate::vm::helper_ids::MAP_LOOKUP_ELEM;
    let (alu, mem) = (ALU_COST_NS as u32, MEM_COST_NS as u32);
    match *op {
        Op::Load { .. }
        | Op::LoadStack { .. }
        | Op::LoadStackDyn { .. }
        | Op::LoadCtx { .. }
        | Op::LoadMapVal { .. }
        | Op::StoreReg { .. }
        | Op::StoreImm { .. }
        | Op::StoreStackReg { .. }
        | Op::StoreStackImm { .. }
        | Op::StoreStackDynReg { .. }
        | Op::StoreStackDynImm { .. }
        | Op::StoreMapValReg { .. }
        | Op::StoreMapValImm { .. } => mem,
        Op::AtomicAdd { .. } => ATOMIC_COST_NS as u32,
        Op::Call { cost, .. } => cost,
        Op::MapLookupNull { .. } => {
            (CALL_DISPATCH_COST_NS + helper_cost_ns(MAP_LOOKUP_ELEM)) as u32 + alu
        }
        Op::LoadBranch { be, .. } => mem + alu + if be != 0 { alu } else { 0 },
        Op::LoadToStack { be, .. } => mem + mem + if be != 0 { alu } else { 0 },
        Op::Lea { .. } => alu + alu,
        Op::LoadAddStore { .. } => mem + alu + mem,
        Op::ExitImm { .. } => alu + alu,
        Op::StoreRun { count, .. } => mem * u32::from(count),
        // ALU, moves, endian swaps, branches (elided or not), div with
        // the zero test elided, exit, aborts: one dispatch each.
        _ => alu,
    }
}

impl CompiledProgram {
    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Original instruction-stream length (drives the one-time
    /// [`crate::vm::jit_compile_cost_ns`]).
    pub fn insn_count(&self) -> usize {
        self.insn_count
    }

    /// Number of pre-decoded ops in the compiled body.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of fused ops in the compiled body (static count, not hits).
    pub fn fused_op_count(&self) -> usize {
        self.fused_ops
    }

    /// Number of sites where compilation elided a runtime check on the
    /// strength of a verifier-proved fact (static count; the dynamic
    /// counterpart is [`JitOutcome::checks_elided`]).
    pub fn elided_site_count(&self) -> usize {
        self.elided_sites
    }

    /// Overrides the instruction budget (a testing hook; the default
    /// matches the interpreter's).
    pub fn set_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Executes the compiled program. Same contract as
    /// [`crate::vm::Vm::execute`]: identical results, map side effects
    /// and error values, differing only in what the run costs.
    ///
    /// # Errors
    ///
    /// Returns the same [`VmError`] the interpreter would for the same
    /// program and input.
    pub fn execute(
        &self,
        ctx: &TraceContext,
        packet: &[u8],
        maps: &mut MapRegistry,
        env: &mut dyn VmEnv,
    ) -> Result<JitOutcome, VmError> {
        let mut reg = [0u64; NUM_REGS];
        let mut mem = Memory::new(ctx, packet, env.smp_processor_id() as usize);
        reg[1] = crate::vm::CTX_BASE;
        reg[10] = crate::vm::STACK_BASE + STACK_SIZE as u64;

        let mut ip = 0usize;
        let mut ops_executed: u64 = 0;
        let mut retired: u64 = 0;
        let mut cost_ns: u64 = 0;
        let mut fused_hits: u64 = 0;
        let mut checks_elided: u64 = 0;
        // Grows on first helper use; branch-heavy filter runs that call
        // no helpers never pay the allocation.
        let mut scratch = Vec::new();

        loop {
            if retired >= self.budget {
                return Err(VmError::BudgetExceeded(self.budget));
            }
            let op = self.ops.get(ip).ok_or(VmError::BadInstruction(ip))?;
            ops_executed += 1;
            retired += 1;
            cost_ns += u64::from(self.op_costs[ip]);
            match *op {
                Op::Alu64Imm { op, dst, imm } => {
                    reg[dst as usize] = alu64(op, reg[dst as usize], imm);
                    ip += 1;
                }
                Op::Alu64Reg { op, dst, src } => {
                    reg[dst as usize] = alu64(op, reg[dst as usize], reg[src as usize]);
                    ip += 1;
                }
                Op::Alu32Imm { op, dst, imm } => {
                    reg[dst as usize] = u64::from(alu32(op, reg[dst as usize] as u32, imm));
                    ip += 1;
                }
                Op::Alu32Reg { op, dst, src } => {
                    reg[dst as usize] = u64::from(alu32(
                        op,
                        reg[dst as usize] as u32,
                        reg[src as usize] as u32,
                    ));
                    ip += 1;
                }
                Op::Endian { dst, width } => {
                    reg[dst as usize] = byteswap(reg[dst as usize], width);
                    ip += 1;
                }
                Op::MovImm64 { dst, imm } => {
                    reg[dst as usize] = imm;
                    ip += 1;
                }
                Op::LoadStack { size, dst, idx } => {
                    reg[dst as usize] = stack_load(&mem, idx, size);
                    ip += 1;
                }
                Op::StoreStackReg { size, src, idx } => {
                    stack_store(&mut mem, idx, size, reg[src as usize]);
                    ip += 1;
                }
                Op::StoreStackImm { size, idx, imm } => {
                    stack_store(&mut mem, idx, size, imm);
                    ip += 1;
                }
                Op::Load {
                    size,
                    dst,
                    src,
                    off,
                } => {
                    let addr = reg[src as usize].wrapping_add(off as i64 as u64);
                    reg[dst as usize] = mem.read_scalar(maps, addr, size as usize)?;
                    ip += 1;
                }
                Op::StoreReg {
                    size,
                    dst,
                    src,
                    off,
                } => {
                    let addr = reg[dst as usize].wrapping_add(off as i64 as u64);
                    mem.write(maps, addr, size as usize, reg[src as usize])?;
                    ip += 1;
                }
                Op::StoreImm {
                    size,
                    dst,
                    off,
                    imm,
                } => {
                    let addr = reg[dst as usize].wrapping_add(off as i64 as u64);
                    mem.write(maps, addr, size as usize, imm)?;
                    ip += 1;
                }
                Op::AtomicAdd {
                    size,
                    dst,
                    src,
                    off,
                    fetch,
                } => {
                    let addr = reg[dst as usize].wrapping_add(off as i64 as u64);
                    let old = mem.read_scalar(maps, addr, size as usize)?;
                    let new = if size == 4 {
                        u64::from((old as u32).wrapping_add(reg[src as usize] as u32))
                    } else {
                        old.wrapping_add(reg[src as usize])
                    };
                    mem.write(maps, addr, size as usize, new)?;
                    if fetch {
                        reg[src as usize] = old;
                    }
                    ip += 1;
                }
                Op::Ja { target } => ip = target as usize,
                Op::JmpImm {
                    op,
                    dst,
                    rhs,
                    target,
                } => {
                    ip = if jump_taken(op, reg[dst as usize], rhs, false) {
                        target as usize
                    } else {
                        ip + 1
                    };
                }
                Op::JmpReg {
                    op,
                    dst,
                    src,
                    target,
                } => {
                    ip = if jump_taken(op, reg[dst as usize], reg[src as usize], false) {
                        target as usize
                    } else {
                        ip + 1
                    };
                }
                Op::Jmp32Imm {
                    op,
                    dst,
                    rhs,
                    target,
                } => {
                    ip = if jump_taken(
                        op,
                        u64::from(reg[dst as usize] as u32),
                        u64::from(rhs),
                        true,
                    ) {
                        target as usize
                    } else {
                        ip + 1
                    };
                }
                Op::Jmp32Reg {
                    op,
                    dst,
                    src,
                    target,
                } => {
                    ip = if jump_taken(
                        op,
                        u64::from(reg[dst as usize] as u32),
                        u64::from(reg[src as usize] as u32),
                        true,
                    ) {
                        target as usize
                    } else {
                        ip + 1
                    };
                }
                Op::Call { thunk, .. } => {
                    thunk(&mut reg, &mut mem, maps, env, &mut scratch)?;
                    ip += 1;
                }
                Op::CallUnknown { id } => return Err(VmError::UnknownHelper(id)),
                Op::Exit => {
                    return Ok(JitOutcome {
                        ret: reg[0],
                        ops_executed,
                        insns_retired: retired,
                        cost_ns,
                        fused_hits,
                        checks_elided,
                    })
                }
                Op::Abort { pc } => return Err(VmError::BadInstruction(pc as usize)),
                Op::LoadBranch {
                    size,
                    dst,
                    src,
                    off,
                    be,
                    cond,
                    narrow,
                    rhs,
                    target,
                    retire,
                    ctx_off,
                } => {
                    fused_hits += 1;
                    retired += u64::from(retire) - 1;
                    let mut val = match ctx_off {
                        Some(o) => {
                            checks_elided += 1;
                            read_le(&mem.ctx[o as usize..], size as usize)
                        }
                        None => {
                            let addr = reg[src as usize].wrapping_add(off as i64 as u64);
                            mem.read_scalar(maps, addr, size as usize)?
                        }
                    };
                    if be != 0 {
                        val = byteswap(val, be);
                    }
                    reg[dst as usize] = val;
                    let (lhs, cmp) = if narrow {
                        (u64::from(val as u32), u64::from(rhs as u32))
                    } else {
                        (val, rhs)
                    };
                    ip = if jump_taken(cond, lhs, cmp, narrow) {
                        target as usize
                    } else {
                        ip + 1
                    };
                }
                Op::LoadToStack {
                    size,
                    dst,
                    src,
                    off,
                    be,
                    st_size,
                    idx,
                    retire,
                    ctx_off,
                } => {
                    fused_hits += 1;
                    retired += u64::from(retire) - 1;
                    let mut val = match ctx_off {
                        Some(o) => {
                            checks_elided += 1;
                            read_le(&mem.ctx[o as usize..], size as usize)
                        }
                        None => {
                            let addr = reg[src as usize].wrapping_add(off as i64 as u64);
                            mem.read_scalar(maps, addr, size as usize)?
                        }
                    };
                    if be != 0 {
                        val = byteswap(val, be);
                    }
                    reg[dst as usize] = val;
                    stack_store(&mut mem, idx, st_size, val);
                    ip += 1;
                }
                Op::Lea { dst, src, imm } => {
                    fused_hits += 1;
                    retired += 1;
                    reg[dst as usize] = reg[src as usize].wrapping_add(imm);
                    ip += 1;
                }
                Op::LoadAddStore {
                    size,
                    dst,
                    src,
                    off,
                    imm,
                } => {
                    fused_hits += 1;
                    retired += 2;
                    let addr = reg[src as usize].wrapping_add(off as i64 as u64);
                    reg[dst as usize] = mem.rmw_add(maps, addr, size as usize, imm)?;
                    ip += 1;
                }
                Op::MapLookupNull { cond, target } => {
                    fused_hits += 1;
                    retired += 1;
                    helper_map_lookup(&mut reg, &mut mem, maps, env, &mut scratch)?;
                    ip = if jump_taken(cond, reg[0], 0, false) {
                        target as usize
                    } else {
                        ip + 1
                    };
                }
                Op::ExitImm { imm } => {
                    fused_hits += 1;
                    retired += 1;
                    return Ok(JitOutcome {
                        ret: imm,
                        ops_executed,
                        insns_retired: retired,
                        cost_ns,
                        fused_hits,
                        checks_elided,
                    });
                }
                Op::StoreRun { start, count } => {
                    fused_hits += 1;
                    retired += u64::from(count) - 1;
                    for s in &self.stores[start as usize..start as usize + count as usize] {
                        stack_store(&mut mem, s.idx, s.len, s.imm);
                    }
                    ip += 1;
                }
                Op::LoadCtx { size, dst, off } => {
                    checks_elided += 1;
                    reg[dst as usize] = read_le(&mem.ctx[off as usize..], size as usize);
                    ip += 1;
                }
                Op::LoadStackDyn {
                    size,
                    dst,
                    src,
                    off,
                } => {
                    checks_elided += 1;
                    let addr = reg[src as usize].wrapping_add(off as i64 as u64);
                    reg[dst as usize] = mem.stack_dyn_read(addr, size as usize);
                    ip += 1;
                }
                Op::StoreStackDynReg {
                    size,
                    dst,
                    src,
                    off,
                } => {
                    checks_elided += 1;
                    let addr = reg[dst as usize].wrapping_add(off as i64 as u64);
                    mem.stack_dyn_write(addr, size as usize, reg[src as usize]);
                    ip += 1;
                }
                Op::StoreStackDynImm {
                    size,
                    dst,
                    off,
                    imm,
                } => {
                    checks_elided += 1;
                    let addr = reg[dst as usize].wrapping_add(off as i64 as u64);
                    mem.stack_dyn_write(addr, size as usize, imm);
                    ip += 1;
                }
                Op::LoadMapVal {
                    size,
                    dst,
                    src,
                    off,
                } => {
                    checks_elided += 1;
                    let addr = reg[src as usize].wrapping_add(off as i64 as u64);
                    reg[dst as usize] = mem.map_val_read(maps, addr, size as usize)?;
                    ip += 1;
                }
                Op::StoreMapValReg {
                    size,
                    dst,
                    src,
                    off,
                } => {
                    checks_elided += 1;
                    let addr = reg[dst as usize].wrapping_add(off as i64 as u64);
                    mem.map_val_write(maps, addr, size as usize, reg[src as usize])?;
                    ip += 1;
                }
                Op::StoreMapValImm {
                    size,
                    dst,
                    off,
                    imm,
                } => {
                    checks_elided += 1;
                    let addr = reg[dst as usize].wrapping_add(off as i64 as u64);
                    mem.map_val_write(maps, addr, size as usize, imm)?;
                    ip += 1;
                }
                Op::DivReg {
                    dst,
                    src,
                    rem,
                    narrow,
                } => {
                    checks_elided += 1;
                    let (l, r) = (reg[dst as usize], reg[src as usize]);
                    reg[dst as usize] = if narrow {
                        let (l, r) = (l as u32, r as u32);
                        u64::from(if rem { l % r } else { l / r })
                    } else if rem {
                        l % r
                    } else {
                        l / r
                    };
                    ip += 1;
                }
                Op::Nop => {
                    checks_elided += 1;
                    ip += 1;
                }
                Op::JaElided { target } => {
                    checks_elided += 1;
                    ip = target as usize;
                }
            }
        }
    }
}

#[inline]
fn byteswap(val: u64, width: u8) -> u64 {
    match width {
        16 => u64::from((val as u16).to_be()),
        32 => u64::from((val as u32).to_be()),
        _ => val.to_be(),
    }
}

#[inline]
fn stack_load(mem: &Memory<'_>, idx: u16, len: u8) -> u64 {
    read_le(&mem.stack[idx as usize..], len as usize)
}

#[inline]
fn stack_store(mem: &mut Memory<'_>, idx: u16, len: u8, val: u64) {
    write_le(&mut mem.stack[idx as usize..], len as usize, val);
}

/// For an `r10`-relative access the verifier proved in-bounds, the
/// direct stack index (`off` is in `[-512, -size]`).
fn stack_idx(off: i16) -> u16 {
    (STACK_SIZE as i32 + i32::from(off)) as u16
}

/// Compilation options for [`compile_with`].
#[derive(Debug, Clone, Copy)]
pub struct CompileOpts {
    /// Lower verifier-proved facts to unchecked ops. On by default;
    /// switching it off reproduces the purely syntactic tier (the
    /// differential proptests run both and require identical behaviour).
    pub elide: bool,
}

impl Default for CompileOpts {
    fn default() -> Self {
        CompileOpts { elide: true }
    }
}

/// Lowers a verified program into threaded code with elision on — see
/// [`compile_with`].
pub fn compile(prog: &LoadedProgram) -> CompiledProgram {
    compile_with(prog, CompileOpts::default())
}

/// Lowers a verified program into threaded code. Total: any instruction
/// the tier cannot lower (impossible for verifier-accepted programs)
/// becomes an [`Op::Abort`] that reproduces the interpreter's runtime
/// error, so compilation itself never fails.
///
/// With `opts.elide` set, each instruction carrying a fact from the
/// program's [`Analysis`](crate::analysis::Analysis) lowers to an
/// unchecked op; the per-instruction order is fuse first (fused ops are
/// already past the dispatch the facts would elide, except for the
/// context fast path folded into the load-carrying fusions), then fact
/// lowering, then the generic op. `r10`-relative accesses keep the
/// original syntactic lowering in both modes so the baseline tier is
/// exactly the pre-analysis compiler.
pub fn compile_with(prog: &LoadedProgram, opts: CompileOpts) -> CompiledProgram {
    let insns = prog.insns();
    let targets = jump_targets(insns);
    let all_facts = prog.analysis().facts();
    // Per-pc fact under the current options: default (no fact) when
    // elision is off or the analysis carries none for this pc.
    let fact = |pc: usize| -> InsnFact {
        if opts.elide {
            all_facts.get(pc).copied().unwrap_or_default()
        } else {
            InsnFact::default()
        }
    };

    let mut ops: Vec<Op> = Vec::with_capacity(insns.len());
    let mut stores: Vec<StackStore> = Vec::new();
    let mut fused_ops = 0usize;
    let mut elided_sites = 0usize;
    // pc -> op index, u32::MAX for pcs consumed into a predecessor
    // (lddw high slots, fused tails) — never jump targets, per the
    // verifier and the fusion guard below.
    let mut pc2op = vec![u32::MAX; insns.len() + 1];
    // (op index, original jump pc) pairs needing target remapping.
    let mut fixups: Vec<(usize, usize)> = Vec::new();

    let mut pc = 0usize;
    while pc < insns.len() {
        let insn = insns[pc];
        pc2op[pc] = ops.len() as u32;
        let consumed = try_fuse(
            insns,
            pc,
            &targets,
            &fact,
            &mut ops,
            &mut stores,
            &mut fixups,
            &mut elided_sites,
        );
        if consumed > 0 {
            fused_ops += 1;
            pc += consumed;
            continue;
        }
        if let Some(op) = lower_fact(insn, fact(pc), &mut fixups, ops.len(), pc) {
            elided_sites += 1;
            ops.push(op);
            pc += 1;
            continue;
        }
        match insn.class() {
            BPF_ALU64 | BPF_ALU => {
                let is64 = insn.class() == BPF_ALU64;
                let op = insn.opcode & 0xf0;
                if op == BPF_END {
                    let width = match insn.imm {
                        16 => 16,
                        32 => 32,
                        _ => 64,
                    };
                    ops.push(Op::Endian {
                        dst: insn.dst,
                        width,
                    });
                } else if insn.opcode & 0x08 == BPF_X {
                    ops.push(if is64 {
                        Op::Alu64Reg {
                            op,
                            dst: insn.dst,
                            src: insn.src,
                        }
                    } else {
                        Op::Alu32Reg {
                            op,
                            dst: insn.dst,
                            src: insn.src,
                        }
                    });
                } else {
                    ops.push(if is64 {
                        Op::Alu64Imm {
                            op,
                            dst: insn.dst,
                            imm: insn.imm as i64 as u64,
                        }
                    } else {
                        Op::Alu32Imm {
                            op,
                            dst: insn.dst,
                            imm: insn.imm as u32,
                        }
                    });
                }
                pc += 1;
            }
            BPF_LD => match insns.get(pc + 1) {
                Some(hi) => {
                    let imm = (insn.imm as u32 as u64) | ((hi.imm as u32 as u64) << 32);
                    ops.push(Op::MovImm64 { dst: insn.dst, imm });
                    pc += 2;
                }
                None => {
                    ops.push(Op::Abort { pc: pc as u32 });
                    pc += 1;
                }
            },
            BPF_LDX => {
                let size = access_size(insn.opcode) as u8;
                if insn.src == REG_FP {
                    ops.push(Op::LoadStack {
                        size,
                        dst: insn.dst,
                        idx: stack_idx(insn.off),
                    });
                } else {
                    ops.push(Op::Load {
                        size,
                        dst: insn.dst,
                        src: insn.src,
                        off: insn.off,
                    });
                }
                pc += 1;
            }
            BPF_ST | BPF_STX => {
                let size = access_size(insn.opcode) as u8;
                if insn.class() == BPF_STX && insn.opcode & 0xe0 == BPF_ATOMIC {
                    ops.push(Op::AtomicAdd {
                        size,
                        dst: insn.dst,
                        src: insn.src,
                        off: insn.off,
                        fetch: insn.imm & BPF_FETCH != 0,
                    });
                } else if insn.class() == BPF_STX {
                    if insn.dst == REG_FP {
                        ops.push(Op::StoreStackReg {
                            size,
                            src: insn.src,
                            idx: stack_idx(insn.off),
                        });
                    } else {
                        ops.push(Op::StoreReg {
                            size,
                            dst: insn.dst,
                            src: insn.src,
                            off: insn.off,
                        });
                    }
                } else if insn.dst == REG_FP {
                    ops.push(Op::StoreStackImm {
                        size,
                        idx: stack_idx(insn.off),
                        imm: insn.imm as i64 as u64,
                    });
                } else {
                    ops.push(Op::StoreImm {
                        size,
                        dst: insn.dst,
                        off: insn.off,
                        imm: insn.imm as i64 as u64,
                    });
                }
                pc += 1;
            }
            BPF_JMP | BPF_JMP32 => {
                let op = insn.opcode & 0xf0;
                match op {
                    BPF_EXIT => ops.push(Op::Exit),
                    BPF_CALL => ops.push(match helper_by_id(insn.imm) {
                        Some(thunk) => Op::Call {
                            thunk,
                            cost: (crate::cost::CALL_DISPATCH_COST_NS
                                + crate::cost::helper_cost_ns(insn.imm))
                                as u32,
                        },
                        None => Op::CallUnknown { id: insn.imm },
                    }),
                    BPF_JA => {
                        fixups.push((ops.len(), pc));
                        ops.push(Op::Ja { target: 0 });
                    }
                    _ => {
                        fixups.push((ops.len(), pc));
                        let narrow = insn.class() == BPF_JMP32;
                        ops.push(if insn.opcode & 0x08 == BPF_X {
                            if narrow {
                                Op::Jmp32Reg {
                                    op,
                                    dst: insn.dst,
                                    src: insn.src,
                                    target: 0,
                                }
                            } else {
                                Op::JmpReg {
                                    op,
                                    dst: insn.dst,
                                    src: insn.src,
                                    target: 0,
                                }
                            }
                        } else if narrow {
                            Op::Jmp32Imm {
                                op,
                                dst: insn.dst,
                                rhs: insn.imm as u32,
                                target: 0,
                            }
                        } else {
                            Op::JmpImm {
                                op,
                                dst: insn.dst,
                                rhs: insn.imm as i64 as u64,
                                target: 0,
                            }
                        });
                    }
                }
                pc += 1;
            }
            _ => {
                ops.push(Op::Abort { pc: pc as u32 });
                pc += 1;
            }
        }
    }

    // Resolve branch targets: original pc offsets -> op indices.
    for (op_idx, jmp_pc) in fixups {
        let insn = insns[jmp_pc];
        let tgt_pc = (jmp_pc as i64 + 1 + i64::from(insn.off)) as usize;
        let tgt = pc2op.get(tgt_pc).copied().unwrap_or(u32::MAX);
        let tgt = if tgt == u32::MAX {
            // Out-of-range or mid-op target (impossible post-verify):
            // land on an op index past the end, which faults with
            // BadInstruction at run time like the interpreter would.
            ops.len() as u32
        } else {
            tgt
        };
        set_target(&mut ops[op_idx], tgt);
    }

    let op_costs: Vec<u32> = ops.iter().map(op_cost).collect();
    CompiledProgram {
        name: prog.name().to_owned(),
        ops: ops.into_boxed_slice(),
        op_costs: op_costs.into_boxed_slice(),
        stores: stores.into_boxed_slice(),
        insn_count: insns.len(),
        fused_ops,
        elided_sites,
        budget: DEFAULT_BUDGET,
    }
}

/// Lowers an instruction carrying a verifier-proved fact to its
/// unchecked op, or `None` if no fact applies (the caller falls back to
/// the generic lowering). `r10`-based accesses are left to the generic
/// path's syntactic elision, which already indexes the stack directly.
fn lower_fact(
    insn: Insn,
    fact: InsnFact,
    fixups: &mut Vec<(usize, usize)>,
    op_idx: usize,
    pc: usize,
) -> Option<Op> {
    match insn.class() {
        BPF_ALU64 | BPF_ALU if fact.div_nonzero => {
            let op = insn.opcode & 0xf0;
            if matches!(op, BPF_DIV | BPF_MOD) && insn.opcode & 0x08 == BPF_X {
                return Some(Op::DivReg {
                    dst: insn.dst,
                    src: insn.src,
                    rem: op == BPF_MOD,
                    narrow: insn.class() == BPF_ALU,
                });
            }
            None
        }
        BPF_LDX if insn.src != REG_FP => {
            let size = access_size(insn.opcode) as u8;
            match fact.mem? {
                MemFact::CtxConst { off } => Some(Op::LoadCtx {
                    size,
                    dst: insn.dst,
                    off,
                }),
                MemFact::StackConst { .. } | MemFact::StackDyn => Some(Op::LoadStackDyn {
                    size,
                    dst: insn.dst,
                    src: insn.src,
                    off: insn.off,
                }),
                MemFact::MapValue => Some(Op::LoadMapVal {
                    size,
                    dst: insn.dst,
                    src: insn.src,
                    off: insn.off,
                }),
            }
        }
        BPF_ST if insn.dst != REG_FP => {
            let size = access_size(insn.opcode) as u8;
            let imm = insn.imm as i64 as u64;
            match fact.mem? {
                MemFact::StackConst { .. } | MemFact::StackDyn => Some(Op::StoreStackDynImm {
                    size,
                    dst: insn.dst,
                    off: insn.off,
                    imm,
                }),
                MemFact::MapValue => Some(Op::StoreMapValImm {
                    size,
                    dst: insn.dst,
                    off: insn.off,
                    imm,
                }),
                MemFact::CtxConst { .. } => None,
            }
        }
        BPF_STX if insn.dst != REG_FP && insn.opcode & 0xe0 != BPF_ATOMIC => {
            let size = access_size(insn.opcode) as u8;
            match fact.mem? {
                MemFact::StackConst { .. } | MemFact::StackDyn => Some(Op::StoreStackDynReg {
                    size,
                    dst: insn.dst,
                    src: insn.src,
                    off: insn.off,
                }),
                MemFact::MapValue => Some(Op::StoreMapValReg {
                    size,
                    dst: insn.dst,
                    src: insn.src,
                    off: insn.off,
                }),
                MemFact::CtxConst { .. } => None,
            }
        }
        BPF_JMP | BPF_JMP32 => match fact.branch? {
            BranchFact::NeverTaken => Some(Op::Nop),
            BranchFact::AlwaysTaken => {
                fixups.push((op_idx, pc));
                Some(Op::JaElided { target: 0 })
            }
        },
        _ => None,
    }
}

fn set_target(op: &mut Op, tgt: u32) {
    match op {
        Op::Ja { target }
        | Op::JmpImm { target, .. }
        | Op::JmpReg { target, .. }
        | Op::Jmp32Imm { target, .. }
        | Op::Jmp32Reg { target, .. }
        | Op::LoadBranch { target, .. }
        | Op::MapLookupNull { target, .. }
        | Op::JaElided { target } => *target = tgt,
        _ => unreachable!("fixup on non-branch op"),
    }
}

/// Marks every instruction index some jump lands on. Fusion must not
/// swallow a marked instruction into a predecessor, or the jump would
/// land mid-op.
fn jump_targets(insns: &[Insn]) -> Vec<bool> {
    let mut t = vec![false; insns.len() + 1];
    let mut pc = 0usize;
    while pc < insns.len() {
        let insn = insns[pc];
        if insn.class() == BPF_LD {
            pc += 2;
            continue;
        }
        if matches!(insn.class(), BPF_JMP | BPF_JMP32) {
            let op = insn.opcode & 0xf0;
            if op != BPF_CALL && op != BPF_EXIT {
                let tgt = pc as i64 + 1 + i64::from(insn.off);
                if (0..=insns.len() as i64).contains(&tgt) {
                    t[tgt as usize] = true;
                }
            }
        }
        pc += 1;
    }
    t
}

/// Attempts to fuse the sequence starting at `pc` into a single op.
/// Returns the number of instructions consumed (0 = no fusion). A
/// sequence only fuses when its tail instructions are not jump targets.
#[allow(clippy::too_many_arguments)]
fn try_fuse(
    insns: &[Insn],
    pc: usize,
    targets: &[bool],
    fact: &impl Fn(usize) -> InsnFact,
    ops: &mut Vec<Op>,
    stores: &mut Vec<StackStore>,
    fixups: &mut Vec<(usize, usize)>,
    elided_sites: &mut usize,
) -> usize {
    let insn = insns[pc];

    // --- load (+ byteswap) + compare-branch: filter field checks ---
    if insn.class() == BPF_LDX {
        // A proved constant-offset context read folds into the fused op
        // as a direct byte-array access (the other load-bearing facts
        // are already subsumed by what fusion itself elides).
        let ctx_off = match fact(pc).mem {
            Some(MemFact::CtxConst { off }) if insn.src != REG_FP => Some(off),
            _ => None,
        };
        let mut at = pc + 1;
        let mut be = 0u8;
        // Optional byteswap of the loaded register.
        if let Some(next) = insns.get(at) {
            if !targets[at]
                && matches!(next.class(), BPF_ALU | BPF_ALU64)
                && next.opcode & 0xf0 == BPF_END
                && next.dst == insn.dst
            {
                be = match next.imm {
                    16 => 16,
                    32 => 32,
                    _ => 64,
                };
                at += 1;
            }
        }
        if let Some(next) = insns.get(at) {
            let op = next.opcode & 0xf0;
            let tail_clear = !targets[pc + 1..=at].iter().any(|&t| t);
            if tail_clear
                && matches!(next.class(), BPF_JMP | BPF_JMP32)
                && !matches!(op, BPF_CALL | BPF_EXIT | BPF_JA)
                && next.opcode & 0x08 == BPF_K
                && next.dst == insn.dst
            {
                let narrow = next.class() == BPF_JMP32;
                fixups.push((ops.len(), at));
                if ctx_off.is_some() {
                    *elided_sites += 1;
                }
                ops.push(Op::LoadBranch {
                    size: access_size(insn.opcode) as u8,
                    dst: insn.dst,
                    src: insn.src,
                    off: insn.off,
                    be,
                    cond: op,
                    narrow,
                    rhs: if narrow {
                        u64::from(next.imm as u32)
                    } else {
                        next.imm as i64 as u64
                    },
                    target: 0,
                    retire: (at + 1 - pc) as u8,
                    ctx_off,
                });
                return at + 1 - pc;
            }
            // ldx (+ be) + stx of the loaded register into a stack slot.
            if tail_clear
                && next.class() == BPF_STX
                && next.opcode & 0xe0 == BPF_MEM
                && next.dst == REG_FP
                && next.src == insn.dst
            {
                if ctx_off.is_some() {
                    *elided_sites += 1;
                }
                ops.push(Op::LoadToStack {
                    size: access_size(insn.opcode) as u8,
                    dst: insn.dst,
                    src: insn.src,
                    off: insn.off,
                    be,
                    st_size: access_size(next.opcode) as u8,
                    idx: stack_idx(next.off),
                    retire: (at + 1 - pc) as u8,
                    ctx_off,
                });
                return at + 1 - pc;
            }
        }
        // ldx + add imm + stx back to the same address and width: the
        // counter-increment idiom. `src != dst` keeps the address
        // register intact through the sequence, as the fused op assumes.
        if be == 0 && insn.src != insn.dst {
            if let (Some(add), Some(st)) = (insns.get(pc + 1), insns.get(pc + 2)) {
                if !targets[pc + 1]
                    && !targets[pc + 2]
                    && add.class() == BPF_ALU64
                    && add.opcode & 0xf8 == BPF_ADD | BPF_K
                    && add.dst == insn.dst
                    && st.class() == BPF_STX
                    && st.opcode & 0xe0 == BPF_MEM
                    && access_size(st.opcode) == access_size(insn.opcode)
                    && st.dst == insn.src
                    && st.src == insn.dst
                    && st.off == insn.off
                {
                    ops.push(Op::LoadAddStore {
                        size: access_size(insn.opcode) as u8,
                        dst: insn.dst,
                        src: insn.src,
                        off: insn.off,
                        imm: add.imm as i64 as u64,
                    });
                    return 3;
                }
            }
        }
        return 0;
    }

    // --- mov64 reg + add64 imm: address computation (lea) ---
    if insn.class() == BPF_ALU64 && insn.opcode & 0xf8 == BPF_MOV | BPF_X {
        if let Some(add) = insns.get(pc + 1) {
            if !targets[pc + 1]
                && add.class() == BPF_ALU64
                && add.opcode & 0xf8 == BPF_ADD | BPF_K
                && add.dst == insn.dst
            {
                ops.push(Op::Lea {
                    dst: insn.dst,
                    src: insn.src,
                    imm: add.imm as i64 as u64,
                });
                return 2;
            }
        }
        return 0;
    }

    // --- mov64 r0, imm + exit: the universal return idiom ---
    if insn.class() == BPF_ALU64 && insn.opcode & 0xf8 == BPF_MOV | BPF_K && insn.dst == 0 {
        if let Some(next) = insns.get(pc + 1) {
            if !targets[pc + 1] && next.class() == BPF_JMP && next.opcode & 0xf0 == BPF_EXIT {
                ops.push(Op::ExitImm {
                    imm: insn.imm as i64 as u64,
                });
                return 2;
            }
        }
        return 0;
    }

    // --- map-lookup + null-check: the counter-program idiom ---
    if insn.class() == BPF_JMP
        && insn.opcode & 0xf0 == BPF_CALL
        && insn.imm == helper_ids::MAP_LOOKUP_ELEM
    {
        if let Some(br) = insns.get(pc + 1) {
            let op = br.opcode & 0xf0;
            if !targets[pc + 1]
                && br.class() == BPF_JMP
                && matches!(op, BPF_JEQ | BPF_JNE)
                && br.opcode & 0x08 == BPF_K
                && br.dst == 0
                && br.imm == 0
            {
                fixups.push((ops.len(), pc + 1));
                ops.push(Op::MapLookupNull {
                    cond: op,
                    target: 0,
                });
                return 2;
            }
        }
        return 0;
    }

    // --- runs of immediate stack stores: key/scratch initialisation ---
    if insn.class() == BPF_ST && insn.opcode & 0xe0 == BPF_MEM && insn.dst == REG_FP {
        let mut at = pc + 1;
        while at < insns.len()
            && !targets[at]
            && insns[at].class() == BPF_ST
            && insns[at].opcode & 0xe0 == BPF_MEM
            && insns[at].dst == REG_FP
        {
            at += 1;
        }
        let count = at - pc;
        if count >= 2 {
            let start = stores.len() as u32;
            for s in &insns[pc..at] {
                stores.push(StackStore {
                    idx: stack_idx(s.off),
                    len: access_size(s.opcode) as u8,
                    imm: s.imm as i64 as u64,
                });
            }
            ops.push(Op::StoreRun {
                start,
                count: count as u16,
            });
            return count;
        }
        return 0;
    }

    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg::*, Asm, Cond, Size};
    use crate::map::MapDef;
    use crate::program::{load_with_opts, AttachType, LoadOpts, Program};
    use crate::vm::{standard_helpers, FixedEnv, Vm};

    fn compile_asm(asm: Asm, maps: &MapRegistry) -> CompiledProgram {
        let prog = Program::new(
            "t",
            AttachType::Kprobe("f".into()),
            asm.build().expect("assembles"),
        );
        let loaded = load_with_opts(
            prog,
            maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .expect("verifies");
        compile(&loaded)
    }

    fn both_tiers(asm: Asm) -> (u64, u64) {
        let maps = MapRegistry::new();
        let prog = Program::new(
            "t",
            AttachType::Kprobe("f".into()),
            asm.build().expect("assembles"),
        );
        let loaded = load_with_opts(
            prog,
            &maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .expect("verifies");
        let ctx = TraceContext::default();
        let mut m1 = MapRegistry::new();
        let mut m2 = MapRegistry::new();
        let mut e1 = FixedEnv::default();
        let mut e2 = FixedEnv::default();
        let i = Vm::new()
            .execute(&loaded, &ctx, &[], &mut m1, &mut e1)
            .expect("interp");
        let j = compile(&loaded)
            .execute(&ctx, &[], &mut m2, &mut e2)
            .expect("jit");
        assert_eq!(
            i.insns_executed, j.insns_retired,
            "retired-instruction accounting must match the interpreter"
        );
        (i.ret, j.ret)
    }

    #[test]
    fn arithmetic_matches_interpreter() {
        let (i, j) = both_tiers(
            Asm::new()
                .mov64_imm(R0, 7)
                .alu64_imm(crate::asm::AluOp::Mul, R0, 6)
                .alu64_imm(crate::asm::AluOp::Add, R0, -2)
                .exit(),
        );
        assert_eq!(i, j);
        assert_eq!(j, 40);
    }

    #[test]
    fn stack_roundtrip_elided_checks() {
        let (i, j) = both_tiers(
            Asm::new()
                .mov64_imm(R1, 0x1122_3344)
                .stx(Size::W, R10, R1, -8)
                .ldx(Size::W, R0, R10, -8)
                .exit(),
        );
        assert_eq!(i, j);
        assert_eq!(j, 0x1122_3344);
    }

    #[test]
    fn store_run_fuses_and_matches() {
        let maps = MapRegistry::new();
        let asm = Asm::new()
            .st(Size::W, R10, -8, 0x55)
            .st(Size::B, R10, -4, 0x7f)
            .st(Size::H, R10, -2, 0x0102)
            .ldx(Size::DW, R0, R10, -8)
            .exit();
        let compiled = compile_asm(asm.clone(), &maps);
        assert!(compiled.fused_op_count() >= 1, "store run should fuse");
        let (i, j) = both_tiers(asm);
        assert_eq!(i, j);
    }

    #[test]
    fn counter_increment_fuses_to_one_rmw_op() {
        // `ldx; add imm; stx` back to the same address fuses into a
        // single read-modify-write op that must still leave the full
        // 64-bit sum in the destination register.
        let maps = MapRegistry::new();
        let asm = Asm::new()
            .mov64_imm(R1, 41)
            .stx(Size::DW, R10, R1, -8)
            .mov64(R2, R10)
            .alu64_imm(crate::asm::AluOp::Add, R2, -8)
            .ldx(Size::DW, R3, R2, 0)
            .alu64_imm(crate::asm::AluOp::Add, R3, 1)
            .stx(Size::DW, R2, R3, 0)
            .ldx(Size::DW, R0, R10, -8)
            .exit();
        let compiled = compile_asm(asm.clone(), &maps);
        assert!(
            compiled.fused_op_count() >= 2,
            "lea and rmw sequences should fuse"
        );
        let (i, j) = both_tiers(asm);
        assert_eq!(i, j);
        assert_eq!(j, 42, "stored value must reflect the increment");
    }

    #[test]
    fn load_branch_fusion_preserves_register() {
        // The fused compare-branch must still leave the loaded value in
        // the destination register for code after the branch.
        let asm = Asm::new()
            .mov64_imm(R1, 0xbeef)
            .stx(Size::H, R10, R1, -2)
            .mov64(R2, R10)
            .alu64_imm(crate::asm::AluOp::Add, R2, -2)
            .ldx(Size::H, R3, R2, 0)
            .jmp_imm(Cond::Ne, R3, 0xbeef, "miss")
            .mov64(R0, R3)
            .exit()
            .label("miss")
            .mov64_imm(R0, 0)
            .exit();
        let (i, j) = both_tiers(asm);
        assert_eq!(i, j);
        assert_eq!(j, 0xbeef);
    }

    #[test]
    fn map_lookup_null_check_fuses() {
        let mut maps = MapRegistry::new();
        let fd = maps.create(MapDef::array(8, 4), 1).unwrap();
        let mut maps2 = MapRegistry::new();
        assert_eq!(maps2.create(MapDef::array(8, 4), 1).unwrap(), fd);
        let asm = Asm::new()
            .st(Size::W, R10, -4, 0)
            .mov64(R2, R10)
            .alu64_imm(crate::asm::AluOp::Add, R2, -4)
            .ld_map_fd(R1, fd)
            .call(helper_ids::MAP_LOOKUP_ELEM)
            .jmp_imm(Cond::Eq, R0, 0, "miss")
            .ldx(Size::DW, R1, R0, 0)
            .alu64_imm(crate::asm::AluOp::Add, R1, 1)
            .stx(Size::DW, R0, R1, 0)
            .mov64_imm(R0, 1)
            .exit()
            .label("miss")
            .mov64_imm(R0, 0)
            .exit();
        let prog = Program::new(
            "count",
            AttachType::Kprobe("f".into()),
            asm.build().unwrap(),
        );
        let loaded = load_with_opts(
            prog,
            &maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .unwrap();
        let compiled = compile(&loaded);
        assert!(compiled.fused_op_count() >= 1, "lookup+null should fuse");

        let ctx = TraceContext::default();
        let mut env = FixedEnv::default();
        let i = Vm::new()
            .execute(&loaded, &ctx, &[], &mut maps, &mut env)
            .unwrap();
        let j = compiled.execute(&ctx, &[], &mut maps2, &mut env).unwrap();
        assert_eq!(i.ret, j.ret);
        assert_eq!(i.insns_executed, j.insns_retired);
        assert!(j.ops_executed < i.insns_executed, "fusion reduces op count");
        assert!(j.fused_hits >= 1);
        // Identical map side effects.
        let a = maps
            .get_mut(fd)
            .unwrap()
            .lookup(&0u32.to_le_bytes(), 0)
            .unwrap()
            .to_vec();
        let b = maps2
            .get_mut(fd)
            .unwrap()
            .lookup(&0u32.to_le_bytes(), 0)
            .unwrap()
            .to_vec();
        assert_eq!(a, b);
    }

    #[test]
    fn oob_access_faults_identically() {
        let asm = Asm::new().mov64_imm(R1, 0).ldx(Size::DW, R0, R1, 0).exit();
        let maps = MapRegistry::new();
        let prog = Program::new("oob", AttachType::Kprobe("f".into()), asm.build().unwrap());
        let loaded = load_with_opts(
            prog,
            &maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .unwrap();
        let ctx = TraceContext::default();
        let mut m1 = MapRegistry::new();
        let mut m2 = MapRegistry::new();
        let mut env = FixedEnv::default();
        let i = Vm::new().execute(&loaded, &ctx, &[], &mut m1, &mut env);
        let j = compile(&loaded).execute(&ctx, &[], &mut m2, &mut env);
        assert_eq!(i.unwrap_err(), j.unwrap_err());
    }

    #[test]
    fn fused_branch_target_lands_on_whole_op() {
        // The tail of a fusable ldx+branch pair is itself a jump target
        // here: fusion must be blocked, or the jump to "check" would
        // land mid-op (the compiler maps it to an out-of-range index
        // and the run aborts — caught by the equality asserts).
        let asm = Asm::new()
            .mov64_imm(R1, 0)
            .mov64_imm(R2, 1)
            .stx(Size::DW, R10, R2, -8)
            .jmp_imm(Cond::Eq, R1, 0, "check")
            .ldx(Size::DW, R2, R10, -8)
            .label("check")
            .jmp_imm(Cond::Ne, R2, 1, "bad")
            .mov64_imm(R0, 9)
            .exit()
            .label("bad")
            .mov64_imm(R0, 0)
            .exit();
        let (i, j) = both_tiers(asm);
        assert_eq!(i, j);
        assert_eq!(j, 9);
    }

    #[test]
    fn proven_ctx_load_is_elided() {
        let maps = MapRegistry::new();
        let asm = Asm::new().ldx(Size::DW, R0, R1, 0).exit();
        let prog = Program::new("t", AttachType::Kprobe("f".into()), asm.build().unwrap());
        let loaded = load_with_opts(
            prog,
            &maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .unwrap();
        let on = compile(&loaded);
        let off = compile_with(&loaded, CompileOpts { elide: false });
        assert!(on.elided_site_count() >= 1, "ctx load should be proven");
        assert_eq!(off.elided_site_count(), 0);

        let ctx = TraceContext::default();
        let mut m1 = MapRegistry::new();
        let mut m2 = MapRegistry::new();
        let mut env = FixedEnv::default();
        let a = on.execute(&ctx, &[], &mut m1, &mut env).unwrap();
        let b = off.execute(&ctx, &[], &mut m2, &mut env).unwrap();
        assert!(a.checks_elided >= 1);
        assert_eq!(b.checks_elided, 0);
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.insns_retired, b.insns_retired);
    }

    #[test]
    fn statically_decided_branches_elide_with_retired_parity() {
        // Never taken: the jump compiles to a Nop that still retires.
        let never = Asm::new()
            .mov64_imm(R2, 3)
            .jmp_imm(Cond::Gt, R2, 5, "dead")
            .mov64_imm(R0, 1)
            .exit()
            .label("dead")
            .mov64_imm(R0, 0)
            .exit();
        assert!(compile_asm(never.clone(), &MapRegistry::new()).elided_site_count() >= 1);
        let (i, j) = both_tiers(never); // asserts retired parity
        assert_eq!(i, j);
        assert_eq!(j, 1);

        // Always taken: the compare compiles to an unconditional jump.
        let always = Asm::new()
            .mov64_imm(R2, 9)
            .jmp_imm(Cond::Gt, R2, 5, "tgt")
            .mov64_imm(R0, 0)
            .exit()
            .label("tgt")
            .mov64_imm(R0, 7)
            .exit();
        assert!(compile_asm(always.clone(), &MapRegistry::new()).elided_site_count() >= 1);
        let (i, j) = both_tiers(always);
        assert_eq!(i, j);
        assert_eq!(j, 7);
    }

    #[test]
    fn proven_nonzero_divisor_skips_zero_check_in_both_tiers() {
        // `r2 = ctx[0] | 1` is nonzero by known bits, so the register
        // division carries a div_nonzero fact and both tiers skip the
        // runtime zero test.
        let asm = Asm::new()
            .ldx(Size::DW, R2, R1, 0)
            .alu64_imm(crate::asm::AluOp::Or, R2, 1)
            .mov64_imm(R0, 100)
            .alu64(crate::asm::AluOp::Div, R0, R2)
            .exit();
        let maps = MapRegistry::new();
        let prog = Program::new("d", AttachType::Kprobe("f".into()), asm.build().unwrap());
        let loaded = load_with_opts(
            prog,
            &maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .unwrap();
        let ctx = TraceContext::default();
        let mut m1 = MapRegistry::new();
        let mut m2 = MapRegistry::new();
        let mut env = FixedEnv::default();
        let i = Vm::new()
            .execute(&loaded, &ctx, &[], &mut m1, &mut env)
            .unwrap();
        assert!(i.checks_elided >= 1, "interp should skip the zero test");
        let j = compile(&loaded)
            .execute(&ctx, &[], &mut m2, &mut env)
            .unwrap();
        assert!(j.checks_elided >= 2, "jit skips ctx bounds and zero test");
        assert_eq!(i.ret, j.ret);
        assert_eq!(j.ret, 100); // divisor is 0 | 1 = 1
    }

    #[test]
    fn null_checked_map_value_load_is_elided() {
        let mut maps = MapRegistry::new();
        let fd = maps.create(MapDef::array(8, 4), 1).unwrap();
        let asm = Asm::new()
            .st(Size::W, R10, -4, 0)
            .mov64(R2, R10)
            .add64_imm(R2, -4)
            .ld_map_fd(R1, fd)
            .call(helper_ids::MAP_LOOKUP_ELEM)
            .jmp_imm(Cond::Eq, R0, 0, "miss")
            .ldx(Size::DW, R3, R0, 0)
            .mov64(R0, R3)
            .exit()
            .label("miss")
            .mov64_imm(R0, 1)
            .exit();
        let prog = Program::new("m", AttachType::Kprobe("f".into()), asm.build().unwrap());
        let loaded = load_with_opts(
            prog,
            &maps,
            &standard_helpers(),
            &LoadOpts { optimize: false },
        )
        .unwrap();
        let on = compile(&loaded);
        let off = compile_with(&loaded, CompileOpts { elide: false });
        assert!(on.elided_site_count() > off.elided_site_count());

        let ctx = TraceContext::default();
        let mut env = FixedEnv::default();
        let mut maps2 = MapRegistry::new();
        assert_eq!(maps2.create(MapDef::array(8, 4), 1).unwrap(), fd);
        let a = on.execute(&ctx, &[], &mut maps, &mut env).unwrap();
        let b = off.execute(&ctx, &[], &mut maps2, &mut env).unwrap();
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.ret, 0, "array slot pre-zeroed, lookup hits");
        assert!(a.checks_elided >= 1, "value-size check should be elided");
    }
}
