//! eBPF maps: the kernel↔user shared data structures trace programs
//! store their results in.
//!
//! vNetTracer's trace scripts keep intermediate data "temporarily stored in
//! the eBPF data structures inside kernel" (§II) and ship records to user
//! space through a perf buffer; the agent drains them periodically. Four
//! map types cover everything the paper's scripts need:
//!
//! * [`MapType::Hash`] — keyed records (per-flow counters, per-packet
//!   timestamps keyed by trace ID),
//! * [`MapType::Array`] — fixed slots (configuration, histograms),
//! * [`MapType::PerCpuArray`] — per-CPU slots (softirq distribution,
//!   Fig. 13a),
//! * [`MapType::PerfEventArray`] — per-CPU ring buffers for streaming
//!   trace records to user space.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Minimum perf buffer size in bytes (paper footnote 1: "the buffer size
/// range is from 32 bytes to 128k-16 bytes").
pub const MIN_BUFFER_SIZE: usize = 32;
/// Maximum perf buffer size in bytes (see [`MIN_BUFFER_SIZE`]).
pub const MAX_BUFFER_SIZE: usize = 128 * 1024 - 16;

/// The kind of map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapType {
    /// Hash table keyed by arbitrary fixed-size keys.
    Hash,
    /// Array indexed by a little-endian `u32` key.
    Array,
    /// Per-CPU array: each CPU sees its own slot, avoiding cache-line
    /// contention on hot counters.
    PerCpuArray,
    /// Per-CPU ring buffers written by `perf_event_output`.
    PerfEventArray,
}

/// Map definition: type and dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapDef {
    /// The map type.
    pub map_type: MapType,
    /// Key size in bytes (must be 4 for array types).
    pub key_size: u32,
    /// Value size in bytes.
    pub value_size: u32,
    /// Maximum number of entries (array length; hash capacity). For
    /// [`MapType::PerfEventArray`] this is the per-CPU buffer size in
    /// bytes, constrained to `32..=128*1024-16`.
    pub max_entries: u32,
}

impl MapDef {
    /// A hash map definition.
    pub fn hash(key_size: u32, value_size: u32, max_entries: u32) -> Self {
        MapDef {
            map_type: MapType::Hash,
            key_size,
            value_size,
            max_entries,
        }
    }

    /// An array definition.
    pub fn array(value_size: u32, max_entries: u32) -> Self {
        MapDef {
            map_type: MapType::Array,
            key_size: 4,
            value_size,
            max_entries,
        }
    }

    /// A per-CPU array definition.
    pub fn per_cpu_array(value_size: u32, max_entries: u32) -> Self {
        MapDef {
            map_type: MapType::PerCpuArray,
            key_size: 4,
            value_size,
            max_entries,
        }
    }

    /// A perf event array with the given per-CPU buffer size in bytes.
    pub fn perf(buffer_size: u32) -> Self {
        MapDef {
            map_type: MapType::PerfEventArray,
            key_size: 4,
            value_size: 0,
            max_entries: buffer_size,
        }
    }
}

/// Errors from map operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Key or value length did not match the definition.
    BadSize {
        /// What was expected.
        expected: usize,
        /// What was provided.
        got: usize,
    },
    /// Array index out of range.
    IndexOutOfBounds(u32),
    /// Hash map is at `max_entries` and the key is new.
    Full,
    /// Key not present.
    NotFound,
    /// The map definition is invalid (e.g. perf buffer size outside
    /// `32..=128k-16`, or zero-sized keys/values).
    BadDefinition(String),
    /// Operation unsupported for this map type.
    WrongType,
}

impl core::fmt::Display for MapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MapError::BadSize { expected, got } => {
                write!(f, "expected {expected} bytes, got {got}")
            }
            MapError::IndexOutOfBounds(i) => write!(f, "index {i} out of bounds"),
            MapError::Full => f.write_str("map is full"),
            MapError::NotFound => f.write_str("key not found"),
            MapError::BadDefinition(s) => write!(f, "invalid map definition: {s}"),
            MapError::WrongType => f.write_str("operation unsupported for this map type"),
        }
    }
}

impl std::error::Error for MapError {}

/// One per-CPU perf ring: a circular byte buffer of `max_entries` bytes
/// plus a queue of pending record lengths. Records are copied in at the
/// write cursor (wrapping at the end) and read back out in FIFO order;
/// the only allocation after construction is the scratch buffer a
/// wrapped record is re-assembled into, and that is reused across
/// drains.
#[derive(Debug, Clone)]
struct PerfRing {
    buf: Vec<u8>,
    head: usize,
    used: usize,
    lens: std::collections::VecDeque<usize>,
    lost: u64,
    scratch: Vec<u8>,
}

impl PerfRing {
    fn new(capacity: usize) -> Self {
        PerfRing {
            buf: vec![0; capacity],
            head: 0,
            used: 0,
            lens: std::collections::VecDeque::new(),
            lost: 0,
            scratch: Vec::new(),
        }
    }

    fn push(&mut self, record: &[u8]) {
        let cap = self.buf.len();
        if record.len() > cap - self.used {
            self.lost += 1;
            return;
        }
        let tail = (self.head + self.used) % cap;
        let first = record.len().min(cap - tail);
        self.buf[tail..tail + first].copy_from_slice(&record[..first]);
        self.buf[..record.len() - first].copy_from_slice(&record[first..]);
        self.used += record.len();
        self.lens.push_back(record.len());
    }

    fn drain_with(&mut self, f: &mut dyn FnMut(&[u8])) -> usize {
        let cap = self.buf.len();
        let mut drained = 0;
        // The scratch buffer is taken out for the duration so a wrapped
        // record can be assembled into it while `self.buf` stays borrowed.
        let mut scratch = std::mem::take(&mut self.scratch);
        while let Some(len) = self.lens.pop_front() {
            let end = self.head + len;
            if end <= cap {
                f(&self.buf[self.head..end]);
            } else {
                scratch.clear();
                scratch.extend_from_slice(&self.buf[self.head..]);
                scratch.extend_from_slice(&self.buf[..end - cap]);
                f(&scratch);
            }
            self.head = end % cap;
            self.used -= len;
            drained += 1;
        }
        self.scratch = scratch;
        drained
    }
}

#[derive(Debug, Clone)]
enum Storage {
    Hash(HashMap<Vec<u8>, Vec<u8>>),
    Array(Vec<Vec<u8>>),
    PerCpu(Vec<Vec<Vec<u8>>>),
    Perf(Vec<PerfRing>),
}

/// A live map instance.
#[derive(Debug, Clone)]
pub struct Map {
    def: MapDef,
    storage: Storage,
}

impl Map {
    /// Creates a map for `num_cpus` CPUs.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::BadDefinition`] for invalid dimensions — in
    /// particular a perf buffer size outside the paper's documented
    /// `32..=128k-16` byte range.
    pub fn new(def: MapDef, num_cpus: usize) -> Result<Self, MapError> {
        let cpus = num_cpus.max(1);
        let storage = match def.map_type {
            MapType::Hash => {
                if def.key_size == 0 || def.value_size == 0 || def.max_entries == 0 {
                    return Err(MapError::BadDefinition("zero-sized hash dimension".into()));
                }
                Storage::Hash(HashMap::new())
            }
            MapType::Array => {
                if def.key_size != 4 {
                    return Err(MapError::BadDefinition("array key must be 4 bytes".into()));
                }
                if def.value_size == 0 || def.max_entries == 0 {
                    return Err(MapError::BadDefinition("zero-sized array dimension".into()));
                }
                Storage::Array(vec![
                    vec![0; def.value_size as usize];
                    def.max_entries as usize
                ])
            }
            MapType::PerCpuArray => {
                if def.key_size != 4 {
                    return Err(MapError::BadDefinition("array key must be 4 bytes".into()));
                }
                if def.value_size == 0 || def.max_entries == 0 {
                    return Err(MapError::BadDefinition("zero-sized array dimension".into()));
                }
                Storage::PerCpu(vec![
                    vec![
                        vec![0; def.value_size as usize];
                        def.max_entries as usize
                    ];
                    cpus
                ])
            }
            MapType::PerfEventArray => {
                let size = def.max_entries as usize;
                if !(MIN_BUFFER_SIZE..=MAX_BUFFER_SIZE).contains(&size) {
                    return Err(MapError::BadDefinition(format!(
                        "perf buffer size {size} outside {MIN_BUFFER_SIZE}..={MAX_BUFFER_SIZE}"
                    )));
                }
                Storage::Perf(vec![PerfRing::new(size); cpus])
            }
        };
        Ok(Map { def, storage })
    }

    /// The map's definition.
    pub fn def(&self) -> MapDef {
        self.def
    }

    fn check_key(&self, key: &[u8]) -> Result<(), MapError> {
        if key.len() != self.def.key_size as usize {
            return Err(MapError::BadSize {
                expected: self.def.key_size as usize,
                got: key.len(),
            });
        }
        Ok(())
    }

    fn array_index(&self, key: &[u8]) -> Result<usize, MapError> {
        self.check_key(key)?;
        let idx = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
        if idx >= self.def.max_entries {
            return Err(MapError::IndexOutOfBounds(idx));
        }
        Ok(idx as usize)
    }

    /// Looks up a value; `cpu` selects the slot for per-CPU maps.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::NotFound`] when absent, or a size/type error.
    pub fn lookup(&mut self, key: &[u8], cpu: usize) -> Result<&mut [u8], MapError> {
        match &mut self.storage {
            Storage::Hash(h) => {
                if key.len() != self.def.key_size as usize {
                    return Err(MapError::BadSize {
                        expected: self.def.key_size as usize,
                        got: key.len(),
                    });
                }
                h.get_mut(key)
                    .map(|v| v.as_mut_slice())
                    .ok_or(MapError::NotFound)
            }
            Storage::Array(slots) => {
                let idx = {
                    let def = self.def;
                    if key.len() != def.key_size as usize {
                        return Err(MapError::BadSize {
                            expected: def.key_size as usize,
                            got: key.len(),
                        });
                    }
                    let idx = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
                    if idx >= def.max_entries {
                        return Err(MapError::IndexOutOfBounds(idx));
                    }
                    idx as usize
                };
                Ok(slots[idx].as_mut_slice())
            }
            Storage::PerCpu(cpus) => {
                let def = self.def;
                if key.len() != def.key_size as usize {
                    return Err(MapError::BadSize {
                        expected: def.key_size as usize,
                        got: key.len(),
                    });
                }
                let idx = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
                if idx >= def.max_entries {
                    return Err(MapError::IndexOutOfBounds(idx));
                }
                let c = cpu % cpus.len();
                Ok(cpus[c][idx as usize].as_mut_slice())
            }
            Storage::Perf(_) => Err(MapError::WrongType),
        }
    }

    /// Inserts or overwrites a value.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::Full`] for a new key in a full hash map, or a
    /// size/type error.
    pub fn update(&mut self, key: &[u8], value: &[u8], cpu: usize) -> Result<(), MapError> {
        if value.len() != self.def.value_size as usize {
            return Err(MapError::BadSize {
                expected: self.def.value_size as usize,
                got: value.len(),
            });
        }
        match &mut self.storage {
            Storage::Hash(h) => {
                if key.len() != self.def.key_size as usize {
                    return Err(MapError::BadSize {
                        expected: self.def.key_size as usize,
                        got: key.len(),
                    });
                }
                if !h.contains_key(key) && h.len() >= self.def.max_entries as usize {
                    return Err(MapError::Full);
                }
                h.insert(key.to_vec(), value.to_vec());
                Ok(())
            }
            Storage::Array(_) => {
                let idx = self.array_index(key)?;
                if let Storage::Array(slots) = &mut self.storage {
                    slots[idx].copy_from_slice(value);
                }
                Ok(())
            }
            Storage::PerCpu(_) => {
                let idx = self.array_index(key)?;
                if let Storage::PerCpu(cpus) = &mut self.storage {
                    let n = cpus.len();
                    cpus[cpu % n][idx].copy_from_slice(value);
                }
                Ok(())
            }
            Storage::Perf(_) => Err(MapError::WrongType),
        }
    }

    /// Deletes a key (hash maps only).
    ///
    /// # Errors
    ///
    /// Returns [`MapError::NotFound`] if absent, [`MapError::WrongType`]
    /// for non-hash maps.
    pub fn delete(&mut self, key: &[u8]) -> Result<(), MapError> {
        match &mut self.storage {
            Storage::Hash(h) => {
                if key.len() != self.def.key_size as usize {
                    return Err(MapError::BadSize {
                        expected: self.def.key_size as usize,
                        got: key.len(),
                    });
                }
                h.remove(key).map(|_| ()).ok_or(MapError::NotFound)
            }
            _ => Err(MapError::WrongType),
        }
    }

    /// Iterates over hash-map entries (key, value).
    pub fn iter_hash(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        let entries: Vec<(&[u8], &[u8])> = match &self.storage {
            Storage::Hash(h) => h
                .iter()
                .map(|(k, v)| (k.as_slice(), v.as_slice()))
                .collect(),
            _ => Vec::new(),
        };
        entries.into_iter()
    }

    /// Number of live entries (hash) or slots (arrays).
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Hash(h) => h.len(),
            Storage::Array(s) => s.len(),
            Storage::PerCpu(c) => c.first().map_or(0, Vec::len),
            Storage::Perf(rings) => rings.iter().map(|r| r.lens.len()).sum(),
        }
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a record into the perf ring of `cpu`
    /// (`bpf_perf_event_output`). Oversized or overflowing records are
    /// counted as lost, mirroring perf buffer semantics.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::WrongType`] for non-perf maps.
    pub fn perf_output(&mut self, cpu: usize, record: &[u8]) -> Result<(), MapError> {
        match &mut self.storage {
            Storage::Perf(rings) => {
                let n = rings.len();
                rings[cpu % n].push(record);
                Ok(())
            }
            _ => Err(MapError::WrongType),
        }
    }

    /// Drains all records from `cpu`'s perf ring in FIFO order, calling
    /// `f` with each record's bytes — the zero-allocation drain the
    /// batched collection path uses. The slice passed to `f` is only
    /// valid for the duration of the call. Returns the number of records
    /// drained (0 for non-perf maps).
    pub fn perf_drain_with(&mut self, cpu: usize, mut f: impl FnMut(&[u8])) -> usize {
        match &mut self.storage {
            Storage::Perf(rings) => {
                let n = rings.len();
                rings[cpu % n].drain_with(&mut f)
            }
            _ => 0,
        }
    }

    /// Drains all records from `cpu`'s perf ring (the agent's periodic
    /// buffer dump), allocating a `Vec` per record.
    pub fn perf_drain(&mut self, cpu: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        self.perf_drain_with(cpu, |raw| out.push(raw.to_vec()));
        out
    }

    /// Drains records from every CPU's ring, in CPU order.
    pub fn perf_drain_all(&mut self) -> Vec<Vec<u8>> {
        let cpus = match &self.storage {
            Storage::Perf(rings) => rings.len(),
            _ => 0,
        };
        (0..cpus).flat_map(|c| self.perf_drain(c)).collect()
    }

    /// Number of records lost to ring overflow on `cpu`.
    pub fn perf_lost(&self, cpu: usize) -> u64 {
        match &self.storage {
            Storage::Perf(rings) => rings[cpu % rings.len()].lost,
            _ => 0,
        }
    }
}

/// A table of live maps, indexed by fd. Shared between the loader, the VM
/// and the agent that reads results.
#[derive(Debug, Default)]
pub struct MapRegistry {
    maps: Vec<Map>,
}

impl MapRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a map and returns its fd.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError::BadDefinition`] from [`Map::new`].
    pub fn create(&mut self, def: MapDef, num_cpus: usize) -> Result<i32, MapError> {
        let map = Map::new(def, num_cpus)?;
        self.maps.push(map);
        Ok((self.maps.len() - 1) as i32)
    }

    /// Borrows a map by fd.
    pub fn get(&self, fd: i32) -> Option<&Map> {
        usize::try_from(fd).ok().and_then(|i| self.maps.get(i))
    }

    /// Mutably borrows a map by fd.
    pub fn get_mut(&mut self, fd: i32) -> Option<&mut Map> {
        usize::try_from(fd).ok().and_then(|i| self.maps.get_mut(i))
    }

    /// Number of maps.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// Whether the registry holds no maps.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_crud() {
        let mut m = Map::new(MapDef::hash(4, 8, 2), 1).unwrap();
        assert_eq!(m.lookup(&[1, 0, 0, 0], 0), Err(MapError::NotFound));
        m.update(&[1, 0, 0, 0], &7u64.to_le_bytes(), 0).unwrap();
        assert_eq!(m.lookup(&[1, 0, 0, 0], 0).unwrap(), &7u64.to_le_bytes());
        m.update(&[2, 0, 0, 0], &8u64.to_le_bytes(), 0).unwrap();
        // Full for new keys, fine for existing.
        assert_eq!(
            m.update(&[3, 0, 0, 0], &9u64.to_le_bytes(), 0),
            Err(MapError::Full)
        );
        m.update(&[1, 0, 0, 0], &10u64.to_le_bytes(), 0).unwrap();
        m.delete(&[1, 0, 0, 0]).unwrap();
        assert_eq!(m.delete(&[1, 0, 0, 0]), Err(MapError::NotFound));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn hash_rejects_bad_sizes() {
        let mut m = Map::new(MapDef::hash(4, 8, 4), 1).unwrap();
        assert!(matches!(
            m.lookup(&[1, 2], 0),
            Err(MapError::BadSize {
                expected: 4,
                got: 2
            })
        ));
        assert!(matches!(
            m.update(&[1, 0, 0, 0], &[0; 3], 0),
            Err(MapError::BadSize {
                expected: 8,
                got: 3
            })
        ));
    }

    #[test]
    fn array_indexing() {
        let mut m = Map::new(MapDef::array(8, 4), 1).unwrap();
        m.update(&2u32.to_le_bytes(), &42u64.to_le_bytes(), 0)
            .unwrap();
        assert_eq!(
            m.lookup(&2u32.to_le_bytes(), 0).unwrap(),
            &42u64.to_le_bytes()
        );
        assert_eq!(
            m.lookup(&9u32.to_le_bytes(), 0),
            Err(MapError::IndexOutOfBounds(9))
        );
        // Arrays are pre-initialised to zero.
        assert_eq!(
            m.lookup(&0u32.to_le_bytes(), 0).unwrap(),
            &0u64.to_le_bytes()
        );
    }

    #[test]
    fn per_cpu_array_isolates_cpus() {
        let mut m = Map::new(MapDef::per_cpu_array(8, 1), 4).unwrap();
        m.update(&0u32.to_le_bytes(), &1u64.to_le_bytes(), 0)
            .unwrap();
        m.update(&0u32.to_le_bytes(), &2u64.to_le_bytes(), 3)
            .unwrap();
        assert_eq!(
            m.lookup(&0u32.to_le_bytes(), 0).unwrap(),
            &1u64.to_le_bytes()
        );
        assert_eq!(
            m.lookup(&0u32.to_le_bytes(), 3).unwrap(),
            &2u64.to_le_bytes()
        );
    }

    #[test]
    fn in_place_mutation_through_lookup() {
        let mut m = Map::new(MapDef::array(8, 1), 1).unwrap();
        {
            let v = m.lookup(&0u32.to_le_bytes(), 0).unwrap();
            let n = u64::from_le_bytes(v.try_into().unwrap()) + 5;
            v.copy_from_slice(&n.to_le_bytes());
        }
        assert_eq!(
            m.lookup(&0u32.to_le_bytes(), 0).unwrap(),
            &5u64.to_le_bytes()
        );
    }

    #[test]
    fn perf_ring_push_drain_lost() {
        let mut m = Map::new(MapDef::perf(64), 2).unwrap();
        m.perf_output(0, &[1; 32]).unwrap();
        m.perf_output(0, &[2; 32]).unwrap();
        m.perf_output(0, &[3; 8]).unwrap(); // 64 used, overflow
        assert_eq!(m.perf_lost(0), 1);
        let drained = m.perf_drain(0);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0], vec![1; 32]);
        // After drain, space is free again.
        m.perf_output(0, &[4; 8]).unwrap();
        assert_eq!(m.perf_drain_all().len(), 1);
    }

    #[test]
    fn perf_oversized_record_is_lost_not_truncated() {
        let mut m = Map::new(MapDef::perf(32), 1).unwrap();
        // A record bigger than the whole buffer can never fit.
        m.perf_output(0, &[9; 33]).unwrap();
        assert_eq!(m.perf_lost(0), 1);
        assert!(m.perf_drain(0).is_empty(), "nothing partial was stored");
        // Exactly buffer-sized fits.
        m.perf_output(0, &[7; 32]).unwrap();
        assert_eq!(m.perf_lost(0), 1);
        assert_eq!(m.perf_drain(0), vec![vec![7; 32]]);
    }

    #[test]
    fn perf_wraparound_preserves_record_bytes() {
        let mut m = Map::new(MapDef::perf(32), 1).unwrap();
        // Advance the write cursor to 20, then drain so head = 20.
        let first: Vec<u8> = (0..20).collect();
        m.perf_output(0, &first).unwrap();
        assert_eq!(m.perf_drain(0), vec![first]);
        // This 24-byte record occupies [20..32) and wraps into [0..12).
        let wrapped: Vec<u8> = (100..124).collect();
        m.perf_output(0, &wrapped).unwrap();
        let mut seen = Vec::new();
        let n = m.perf_drain_with(0, |raw| seen.push(raw.to_vec()));
        assert_eq!(n, 1);
        assert_eq!(seen, vec![wrapped], "wrapped record reassembled intact");
        assert_eq!(m.perf_lost(0), 0);
    }

    #[test]
    fn perf_records_straddling_wraparound_stay_in_fifo_order() {
        let mut m = Map::new(MapDef::perf(32), 1).unwrap();
        m.perf_output(0, &[1; 24]).unwrap();
        assert_eq!(m.perf_drain(0).len(), 1); // head now 24
        let a: Vec<u8> = (0..16).collect(); // [24..32) + [0..8)
        let b: Vec<u8> = (50..66).collect(); // [8..24)
        m.perf_output(0, &a).unwrap();
        m.perf_output(0, &b).unwrap();
        assert_eq!(m.perf_drain(0), vec![a, b]);
    }

    #[test]
    fn perf_overflow_increments_lost_exactly() {
        let mut m = Map::new(MapDef::perf(32), 1).unwrap();
        // Two 16-byte records fill the buffer exactly.
        m.perf_output(0, &[1; 16]).unwrap();
        m.perf_output(0, &[2; 16]).unwrap();
        assert_eq!(m.perf_lost(0), 0);
        // Every further push is lost, one count each — even a 1-byte one.
        m.perf_output(0, &[3; 16]).unwrap();
        m.perf_output(0, &[4; 1]).unwrap();
        assert_eq!(m.perf_lost(0), 2);
        // Draining frees the space; the lost counter is cumulative.
        assert_eq!(m.perf_drain(0).len(), 2);
        m.perf_output(0, &[5; 8]).unwrap();
        assert_eq!(m.perf_lost(0), 2);
        assert_eq!(m.perf_drain(0), vec![vec![5; 8]]);
    }

    #[test]
    fn perf_drain_with_on_non_perf_map_is_a_no_op() {
        let mut arr = Map::new(MapDef::array(4, 1), 1).unwrap();
        let mut called = false;
        assert_eq!(arr.perf_drain_with(0, |_| called = true), 0);
        assert!(!called);
    }

    #[test]
    fn perf_buffer_size_limits_enforced() {
        assert!(Map::new(MapDef::perf(31), 1).is_err(), "below 32 bytes");
        assert!(Map::new(MapDef::perf(32), 1).is_ok());
        assert!(Map::new(MapDef::perf(128 * 1024 - 16), 1).is_ok());
        assert!(
            Map::new(MapDef::perf(128 * 1024 - 15), 1).is_err(),
            "above 128k-16"
        );
    }

    #[test]
    fn bad_definitions_rejected() {
        assert!(Map::new(MapDef::hash(0, 8, 4), 1).is_err());
        assert!(Map::new(MapDef::array(0, 4), 1).is_err());
        assert!(Map::new(
            MapDef {
                map_type: MapType::Array,
                key_size: 8,
                value_size: 8,
                max_entries: 1
            },
            1
        )
        .is_err());
    }

    #[test]
    fn wrong_type_operations() {
        let mut perf = Map::new(MapDef::perf(64), 1).unwrap();
        assert_eq!(
            perf.lookup(&0u32.to_le_bytes(), 0),
            Err(MapError::WrongType)
        );
        let mut arr = Map::new(MapDef::array(4, 1), 1).unwrap();
        assert_eq!(arr.perf_output(0, &[1]), Err(MapError::WrongType));
        assert_eq!(arr.delete(&0u32.to_le_bytes()), Err(MapError::WrongType));
    }

    #[test]
    fn registry_assigns_fds() {
        let mut reg = MapRegistry::new();
        let fd0 = reg.create(MapDef::hash(4, 4, 4), 1).unwrap();
        let fd1 = reg.create(MapDef::array(4, 4), 1).unwrap();
        assert_eq!((fd0, fd1), (0, 1));
        assert!(reg.get(fd1).is_some());
        assert!(reg.get(99).is_none());
        assert!(reg.get(-1).is_none());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn iter_hash_yields_entries() {
        let mut m = Map::new(MapDef::hash(4, 4, 8), 1).unwrap();
        m.update(&[1, 0, 0, 0], &[9, 0, 0, 0], 0).unwrap();
        m.update(&[2, 0, 0, 0], &[8, 0, 0, 0], 0).unwrap();
        let mut keys: Vec<u32> = m
            .iter_hash()
            .map(|(k, _)| u32::from_le_bytes([k[0], k[1], k[2], k[3]]))
            .collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }
}
