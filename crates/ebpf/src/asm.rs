//! A small eBPF assembler with label resolution.
//!
//! vNetTracer's control-plane compiles filter rules and actions into eBPF
//! bytecode; this assembler is what that compiler (and tests) use to emit
//! instructions without hand-computing jump offsets.
//!
//! # Examples
//!
//! ```
//! use vnet_ebpf::asm::{Asm, Cond, Size, reg::*};
//!
//! // return ctx.pkt_len >= 100 ? 1 : 0   (pkt_len at ctx offset 8)
//! let prog = Asm::new()
//!     .ldx(Size::W, R2, R1, 8)
//!     .jmp_imm(Cond::Ge, R2, 100, "big")
//!     .mov64_imm(R0, 0)
//!     .exit()
//!     .label("big")
//!     .mov64_imm(R0, 1)
//!     .exit()
//!     .build()
//!     .unwrap();
//! assert_eq!(prog.len(), 6);
//! ```

use std::collections::HashMap;

use crate::insn::*;

/// Register name constants (`R0`–`R10`).
pub mod reg {
    /// Return value / scratch.
    pub const R0: u8 = 0;
    /// First argument / context pointer.
    pub const R1: u8 = 1;
    /// Second argument.
    pub const R2: u8 = 2;
    /// Third argument.
    pub const R3: u8 = 3;
    /// Fourth argument.
    pub const R4: u8 = 4;
    /// Fifth argument.
    pub const R5: u8 = 5;
    /// Callee-saved.
    pub const R6: u8 = 6;
    /// Callee-saved.
    pub const R7: u8 = 7;
    /// Callee-saved.
    pub const R8: u8 = 8;
    /// Callee-saved.
    pub const R9: u8 = 9;
    /// Frame pointer (read-only).
    pub const R10: u8 = 10;
}

/// Access size for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    DW,
}

impl Size {
    fn bits(self) -> u8 {
        match self {
            Size::W => BPF_W,
            Size::H => BPF_H,
            Size::B => BPF_B,
            Size::DW => BPF_DW,
        }
    }
}

/// Jump condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// `dst & src != 0`.
    Set,
    /// Signed greater-than.
    SGt,
    /// Signed greater-or-equal.
    SGe,
    /// Signed less-than.
    SLt,
    /// Signed less-or-equal.
    SLe,
}

impl Cond {
    fn bits(self) -> u8 {
        match self {
            Cond::Eq => BPF_JEQ,
            Cond::Ne => BPF_JNE,
            Cond::Gt => BPF_JGT,
            Cond::Ge => BPF_JGE,
            Cond::Lt => BPF_JLT,
            Cond::Le => BPF_JLE,
            Cond::Set => BPF_JSET,
            Cond::SGt => BPF_JSGT,
            Cond::SGe => BPF_JSGE,
            Cond::SLt => BPF_JSLT,
            Cond::SLe => BPF_JSLE,
        }
    }
}

/// ALU operation for the generic [`Asm::alu64`] / [`Asm::alu64_imm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Unsigned division.
    Div,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
    /// Left shift.
    Lsh,
    /// Logical right shift.
    Rsh,
    /// Unsigned modulo.
    Mod,
    /// Bitwise XOR.
    Xor,
    /// Arithmetic right shift.
    Arsh,
}

impl AluOp {
    fn bits(self) -> u8 {
        match self {
            AluOp::Add => BPF_ADD,
            AluOp::Sub => BPF_SUB,
            AluOp::Mul => BPF_MUL,
            AluOp::Div => BPF_DIV,
            AluOp::Or => BPF_OR,
            AluOp::And => BPF_AND,
            AluOp::Lsh => BPF_LSH,
            AluOp::Rsh => BPF_RSH,
            AluOp::Mod => BPF_MOD,
            AluOp::Xor => BPF_XOR,
            AluOp::Arsh => BPF_ARSH,
        }
    }
}

/// Error produced when assembling fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A jump offset did not fit in 16 bits.
    JumpOutOfRange(String),
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::JumpOutOfRange(l) => write!(f, "jump to `{l}` out of 16-bit range"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
struct Fixup {
    insn_index: usize,
    label: String,
}

/// The assembler: a builder accumulating instructions and resolving labels
/// at [`Asm::build`] time.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    insns: Vec<Insn>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction count (useful for size accounting).
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Defines a label at the current position.
    pub fn label(mut self, name: &str) -> Self {
        // Duplicates detected at build time so the builder stays infallible.
        if self
            .labels
            .insert(name.to_owned(), self.insns.len())
            .is_some()
        {
            self.labels.insert(format!("__dup__{name}"), usize::MAX);
            self.fixups.push(Fixup {
                insn_index: usize::MAX,
                label: name.to_owned(),
            });
        }
        self
    }

    /// Emits a raw instruction.
    pub fn raw(mut self, insn: Insn) -> Self {
        self.insns.push(insn);
        self
    }

    // --- Moves ---

    /// `dst = imm` (64-bit).
    pub fn mov64_imm(self, dst: u8, imm: i32) -> Self {
        self.raw(Insn::new(BPF_ALU64 | BPF_MOV | BPF_K, dst, 0, 0, imm))
    }

    /// `dst = src` (64-bit).
    pub fn mov64(self, dst: u8, src: u8) -> Self {
        self.raw(Insn::new(BPF_ALU64 | BPF_MOV | BPF_X, dst, src, 0, 0))
    }

    /// `dst = imm` (32-bit, upper half cleared).
    pub fn mov32_imm(self, dst: u8, imm: i32) -> Self {
        self.raw(Insn::new(BPF_ALU | BPF_MOV | BPF_K, dst, 0, 0, imm))
    }

    /// Loads a 64-bit immediate (two slots).
    pub fn lddw(self, dst: u8, imm: u64) -> Self {
        let lo = imm as u32 as i32;
        let hi = (imm >> 32) as u32 as i32;
        self.raw(Insn::new(BPF_LD | BPF_IMM | BPF_DW, dst, 0, 0, lo))
            .raw(Insn::new(0, 0, 0, 0, hi))
    }

    /// Loads a map fd as a 64-bit pseudo value (two slots), the form the
    /// loader relocates to a live map reference.
    pub fn ld_map_fd(self, dst: u8, fd: i32) -> Self {
        self.raw(Insn::new(
            BPF_LD | BPF_IMM | BPF_DW,
            dst,
            PSEUDO_MAP_FD,
            0,
            fd,
        ))
        .raw(Insn::new(0, 0, 0, 0, 0))
    }

    // --- ALU ---

    /// Generic 64-bit ALU with register operand.
    pub fn alu64(self, op: AluOp, dst: u8, src: u8) -> Self {
        self.raw(Insn::new(BPF_ALU64 | op.bits() | BPF_X, dst, src, 0, 0))
    }

    /// Generic 64-bit ALU with immediate operand.
    pub fn alu64_imm(self, op: AluOp, dst: u8, imm: i32) -> Self {
        self.raw(Insn::new(BPF_ALU64 | op.bits() | BPF_K, dst, 0, 0, imm))
    }

    /// `dst += imm`.
    pub fn add64_imm(self, dst: u8, imm: i32) -> Self {
        self.alu64_imm(AluOp::Add, dst, imm)
    }

    /// `dst += src`.
    pub fn add64(self, dst: u8, src: u8) -> Self {
        self.alu64(AluOp::Add, dst, src)
    }

    /// `dst -= src`.
    pub fn sub64(self, dst: u8, src: u8) -> Self {
        self.alu64(AluOp::Sub, dst, src)
    }

    /// `dst = -dst` (64-bit).
    pub fn neg64(self, dst: u8) -> Self {
        self.raw(Insn::new(BPF_ALU64 | BPF_NEG, dst, 0, 0, 0))
    }

    /// `dst = htobe16(dst)`.
    pub fn be16(self, dst: u8) -> Self {
        self.raw(Insn::new(BPF_ALU | BPF_END | BPF_X, dst, 0, 0, 16))
    }

    /// `dst = htobe32(dst)`.
    pub fn be32(self, dst: u8) -> Self {
        self.raw(Insn::new(BPF_ALU | BPF_END | BPF_X, dst, 0, 0, 32))
    }

    /// `dst = htobe64(dst)`.
    pub fn be64(self, dst: u8) -> Self {
        self.raw(Insn::new(BPF_ALU | BPF_END | BPF_X, dst, 0, 0, 64))
    }

    // --- Memory ---

    /// `dst = *(size*)(src + off)`.
    pub fn ldx(self, size: Size, dst: u8, src: u8, off: i16) -> Self {
        self.raw(Insn::new(BPF_LDX | BPF_MEM | size.bits(), dst, src, off, 0))
    }

    /// `*(size*)(dst + off) = src`.
    pub fn stx(self, size: Size, dst: u8, src: u8, off: i16) -> Self {
        self.raw(Insn::new(BPF_STX | BPF_MEM | size.bits(), dst, src, off, 0))
    }

    /// `*(size*)(dst + off) = imm`.
    pub fn st(self, size: Size, dst: u8, off: i16, imm: i32) -> Self {
        self.raw(Insn::new(BPF_ST | BPF_MEM | size.bits(), dst, 0, off, imm))
    }

    /// Atomic `*(size*)(dst + off) += src` (word or double-word only).
    pub fn atomic_add(self, size: Size, dst: u8, src: u8, off: i16) -> Self {
        self.raw(Insn::new(
            BPF_STX | BPF_ATOMIC | size.bits(),
            dst,
            src,
            off,
            BPF_ADD as i32,
        ))
    }

    /// Atomic fetch-and-add: `src = atomic_fetch_add(dst + off, src)`.
    pub fn atomic_fetch_add(self, size: Size, dst: u8, src: u8, off: i16) -> Self {
        self.raw(Insn::new(
            BPF_STX | BPF_ATOMIC | size.bits(),
            dst,
            src,
            off,
            BPF_ADD as i32 | BPF_FETCH,
        ))
    }

    // --- Control flow ---

    /// Unconditional jump to `label`.
    pub fn jump(mut self, label: &str) -> Self {
        self.fixups.push(Fixup {
            insn_index: self.insns.len(),
            label: label.to_owned(),
        });
        self.insns.push(Insn::new(BPF_JMP | BPF_JA, 0, 0, 0, 0));
        self
    }

    /// Conditional jump comparing `reg` against an immediate.
    pub fn jmp_imm(mut self, cond: Cond, reg: u8, imm: i32, label: &str) -> Self {
        self.fixups.push(Fixup {
            insn_index: self.insns.len(),
            label: label.to_owned(),
        });
        self.insns
            .push(Insn::new(BPF_JMP | cond.bits() | BPF_K, reg, 0, 0, imm));
        self
    }

    /// Conditional jump comparing two registers.
    pub fn jmp_reg(mut self, cond: Cond, dst: u8, src: u8, label: &str) -> Self {
        self.fixups.push(Fixup {
            insn_index: self.insns.len(),
            label: label.to_owned(),
        });
        self.insns
            .push(Insn::new(BPF_JMP | cond.bits() | BPF_X, dst, src, 0, 0));
        self
    }

    /// Conditional 32-bit jump comparing `reg` against an immediate.
    pub fn jmp32_imm(mut self, cond: Cond, reg: u8, imm: i32, label: &str) -> Self {
        self.fixups.push(Fixup {
            insn_index: self.insns.len(),
            label: label.to_owned(),
        });
        self.insns
            .push(Insn::new(BPF_JMP32 | cond.bits() | BPF_K, reg, 0, 0, imm));
        self
    }

    /// Calls helper `id`.
    pub fn call(self, id: i32) -> Self {
        self.raw(Insn::new(BPF_JMP | BPF_CALL, 0, 0, 0, id))
    }

    /// Returns from the program (`r0` is the return value).
    pub fn exit(self) -> Self {
        self.raw(Insn::new(BPF_JMP | BPF_EXIT, 0, 0, 0, 0))
    }

    /// Resolves labels and returns the instruction stream.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] when a label is undefined, duplicated, or a
    /// jump offset does not fit in 16 bits.
    pub fn build(mut self) -> Result<Vec<Insn>, AsmError> {
        for fixup in &self.fixups {
            if fixup.insn_index == usize::MAX {
                return Err(AsmError::DuplicateLabel(fixup.label.clone()));
            }
            let &target = self
                .labels
                .get(&fixup.label)
                .ok_or_else(|| AsmError::UndefinedLabel(fixup.label.clone()))?;
            let rel = target as i64 - fixup.insn_index as i64 - 1;
            let off: i16 = rel
                .try_into()
                .map_err(|_| AsmError::JumpOutOfRange(fixup.label.clone()))?;
            self.insns[fixup.insn_index].off = off;
        }
        Ok(self.insns)
    }
}

#[cfg(test)]
mod tests {
    use super::reg::*;
    use super::*;

    #[test]
    fn forward_jump_offsets_resolve() {
        let prog = Asm::new()
            .jmp_imm(Cond::Eq, R1, 0, "zero")
            .mov64_imm(R0, 1)
            .exit()
            .label("zero")
            .mov64_imm(R0, 0)
            .exit()
            .build()
            .unwrap();
        // jmp at 0 targets insn 3: off = 3 - 0 - 1 = 2.
        assert_eq!(prog[0].off, 2);
    }

    #[test]
    fn unconditional_jump() {
        let prog = Asm::new()
            .jump("end")
            .mov64_imm(R0, 9)
            .label("end")
            .exit()
            .build()
            .unwrap();
        assert_eq!(prog[0].off, 1);
        assert_eq!(prog[0].opcode, BPF_JMP | BPF_JA);
    }

    #[test]
    fn undefined_label_errors() {
        let err = Asm::new().jump("nowhere").exit().build().unwrap_err();
        assert_eq!(err, AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_errors() {
        let err = Asm::new()
            .label("a")
            .exit()
            .label("a")
            .exit()
            .build()
            .unwrap_err();
        assert_eq!(err, AsmError::DuplicateLabel("a".into()));
    }

    #[test]
    fn lddw_emits_two_slots() {
        let prog = Asm::new()
            .lddw(R1, 0x1122_3344_5566_7788)
            .exit()
            .build()
            .unwrap();
        assert_eq!(prog.len(), 3);
        assert!(prog[0].is_lddw());
        assert_eq!(prog[0].imm as u32, 0x5566_7788);
        assert_eq!(prog[1].imm as u32, 0x1122_3344);
    }

    #[test]
    fn ld_map_fd_marks_pseudo() {
        let prog = Asm::new().ld_map_fd(R1, 5).exit().build().unwrap();
        assert_eq!(prog[0].src, PSEUDO_MAP_FD);
        assert_eq!(prog[0].imm, 5);
    }

    #[test]
    fn memory_forms() {
        let prog = Asm::new()
            .ldx(Size::H, R2, R1, 12)
            .stx(Size::DW, R10, R2, -8)
            .st(Size::B, R10, -16, 0x7f)
            .exit()
            .build()
            .unwrap();
        assert_eq!(prog[0].opcode, BPF_LDX | BPF_MEM | BPF_H);
        assert_eq!(prog[1].opcode, BPF_STX | BPF_MEM | BPF_DW);
        assert_eq!(prog[1].off, -8);
        assert_eq!(prog[2].opcode, BPF_ST | BPF_MEM | BPF_B);
    }

    #[test]
    fn endian_ops() {
        let prog = Asm::new()
            .be16(R1)
            .be32(R2)
            .be64(R3)
            .exit()
            .build()
            .unwrap();
        assert_eq!(prog[0].imm, 16);
        assert_eq!(prog[1].imm, 32);
        assert_eq!(prog[2].imm, 64);
    }

    #[test]
    fn backward_jump_encodes_negative_offset() {
        // The assembler permits it; the verifier is what rejects loops.
        let prog = Asm::new()
            .label("top")
            .mov64_imm(R0, 0)
            .jump("top")
            .exit()
            .build()
            .unwrap();
        assert_eq!(prog[1].off, -2);
    }
}
