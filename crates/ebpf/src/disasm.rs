//! A disassembler for eBPF programs, in the style of the kernel
//! verifier's listing output (`r2 = *(u16 *)(r7 +12)`, `if r0 == 0 goto
//! +3`, …).
//!
//! Useful when debugging generated trace scripts: the compiler in
//! `vnettracer` emits a few hundred instructions per script, and a
//! readable listing is how one audits what a filter actually checks.

use crate::insn::*;

fn size_suffix(opcode: u8) -> &'static str {
    match opcode & 0x18 {
        BPF_W => "u32",
        BPF_H => "u16",
        BPF_B => "u8",
        _ => "u64",
    }
}

fn alu_symbol(op: u8) -> Option<&'static str> {
    Some(match op {
        BPF_ADD => "+=",
        BPF_SUB => "-=",
        BPF_MUL => "*=",
        BPF_DIV => "/=",
        BPF_OR => "|=",
        BPF_AND => "&=",
        BPF_LSH => "<<=",
        BPF_RSH => ">>=",
        BPF_MOD => "%=",
        BPF_XOR => "^=",
        BPF_MOV => "=",
        BPF_ARSH => "s>>=",
        _ => return None,
    })
}

fn jmp_symbol(op: u8) -> Option<&'static str> {
    Some(match op {
        BPF_JEQ => "==",
        BPF_JNE => "!=",
        BPF_JGT => ">",
        BPF_JGE => ">=",
        BPF_JLT => "<",
        BPF_JLE => "<=",
        BPF_JSET => "&",
        BPF_JSGT => "s>",
        BPF_JSGE => "s>=",
        BPF_JSLT => "s<",
        BPF_JSLE => "s<=",
        _ => return None,
    })
}

/// Renders one instruction. For the first slot of an `lddw`, `next` must
/// be the second slot. Unknown encodings render as raw bytes.
pub fn disasm_insn(insn: &Insn, next: Option<&Insn>) -> String {
    let dst = insn.dst;
    let src = insn.src;
    let off = insn.off;
    let imm = insn.imm;
    match insn.class() {
        BPF_ALU | BPF_ALU64 => {
            let narrow = if insn.class() == BPF_ALU { "w" } else { "" };
            let op = insn.opcode & 0xf0;
            if op == BPF_END {
                return format!("r{dst} = be{imm} r{dst}");
            }
            if op == BPF_NEG {
                return format!("{narrow}r{dst} = -{narrow}r{dst}");
            }
            let Some(sym) = alu_symbol(op) else {
                return format!("(bad alu) {insn:?}");
            };
            if insn.opcode & 0x08 == BPF_X {
                format!("{narrow}r{dst} {sym} {narrow}r{src}")
            } else {
                format!("{narrow}r{dst} {sym} {imm}")
            }
        }
        BPF_LD if insn.is_lddw() => {
            let hi = next.map(|n| n.imm as u32 as u64).unwrap_or(0);
            let value = (imm as u32 as u64) | (hi << 32);
            if src == PSEUDO_MAP_FD {
                format!("r{dst} = map_fd({imm})")
            } else {
                format!("r{dst} = {value:#x} ll")
            }
        }
        BPF_LDX => {
            format!("r{dst} = *({} *)(r{src} {off:+})", size_suffix(insn.opcode))
        }
        BPF_ST => {
            format!("*({} *)(r{dst} {off:+}) = {imm}", size_suffix(insn.opcode))
        }
        BPF_STX if insn.opcode & 0xe0 == BPF_ATOMIC => {
            if insn.imm & BPF_FETCH != 0 {
                format!(
                    "r{src} = atomic_fetch_add(({} *)(r{dst} {off:+}), r{src})",
                    size_suffix(insn.opcode)
                )
            } else {
                format!(
                    "lock *({} *)(r{dst} {off:+}) += r{src}",
                    size_suffix(insn.opcode)
                )
            }
        }
        BPF_STX => {
            format!("*({} *)(r{dst} {off:+}) = r{src}", size_suffix(insn.opcode))
        }
        BPF_JMP | BPF_JMP32 => {
            let narrow = if insn.class() == BPF_JMP32 { "w" } else { "" };
            match insn.opcode & 0xf0 {
                BPF_EXIT => "exit".to_owned(),
                BPF_CALL => format!("call {imm}"),
                BPF_JA => format!("goto {off:+}"),
                op => match jmp_symbol(op) {
                    Some(sym) if insn.opcode & 0x08 == BPF_X => {
                        format!("if {narrow}r{dst} {sym} {narrow}r{src} goto {off:+}")
                    }
                    Some(sym) => format!("if {narrow}r{dst} {sym} {imm} goto {off:+}"),
                    None => format!("(bad jmp) {insn:?}"),
                },
            }
        }
        _ => format!("(bad insn) {insn:?}"),
    }
}

/// Disassembles a whole program into numbered lines.
pub fn disassemble(insns: &[Insn]) -> Vec<String> {
    let mut out = Vec::with_capacity(insns.len());
    let mut i = 0;
    while i < insns.len() {
        let insn = &insns[i];
        let text = disasm_insn(insn, insns.get(i + 1));
        out.push(format!("{i:4}: {text}"));
        i += if insn.is_lddw() { 2 } else { 1 };
    }
    out
}

/// Disassembles a whole program into numbered lines annotated with the
/// verifier analysis: each reachable instruction carries a `;` comment
/// with the joined register state at its input and any fact the analysis
/// proved about it; unreachable instructions are flagged dead.
pub fn disassemble_annotated(insns: &[Insn], analysis: &crate::analysis::Analysis) -> Vec<String> {
    use crate::analysis::{BranchFact, MemFact};
    let mut out = Vec::with_capacity(insns.len());
    let mut i = 0;
    while i < insns.len() {
        let insn = &insns[i];
        let text = disasm_insn(insn, insns.get(i + 1));
        let mut line = format!("{i:4}: {text}");
        let fact = analysis.fact(i);
        let mut notes = Vec::new();
        if let Some(regs) = analysis.state_at(i) {
            let s = crate::analysis::fmt_regs(regs);
            if !s.is_empty() {
                notes.push(s);
            }
        } else if !fact.reachable {
            notes.push("dead".to_owned());
        }
        match fact.mem {
            Some(MemFact::CtxConst { off }) => notes.push(format!("proved: ctx[{off}]")),
            Some(MemFact::StackConst { idx }) => {
                notes.push(format!("proved: fp{:+}", idx as i64 - STACK_SIZE as i64))
            }
            Some(MemFact::StackDyn) => notes.push("proved: in-frame".to_owned()),
            Some(MemFact::MapValue) => notes.push("proved: map value in bounds".to_owned()),
            None => {}
        }
        if fact.div_nonzero {
            notes.push("proved: divisor nonzero".to_owned());
        }
        match fact.branch {
            Some(BranchFact::AlwaysTaken) => notes.push("proved: always taken".to_owned()),
            Some(BranchFact::NeverTaken) => notes.push("proved: never taken".to_owned()),
            None => {}
        }
        if !notes.is_empty() {
            line.push_str(" ; ");
            line.push_str(&notes.join(" ; "));
        }
        out.push(line);
        i += if insn.is_lddw() { 2 } else { 1 };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{reg::*, AluOp, Asm, Cond, Size};

    fn lines(asm: Asm) -> Vec<String> {
        disassemble(&asm.build().unwrap())
            .into_iter()
            .map(|l| l.split_once(": ").unwrap().1.to_owned())
            .collect()
    }

    #[test]
    fn alu_and_mov_forms() {
        let l = lines(
            Asm::new()
                .mov64_imm(R0, 42)
                .add64_imm(R0, -7)
                .alu64(AluOp::Xor, R0, R3)
                .mov32_imm(R2, 5)
                .neg64(R1)
                .be16(R4)
                .exit(),
        );
        assert_eq!(
            l,
            vec![
                "r0 = 42",
                "r0 += -7",
                "r0 ^= r3",
                "wr2 = 5",
                "r1 = -r1",
                "r4 = be16 r4",
                "exit",
            ]
        );
    }

    #[test]
    fn memory_forms() {
        let l = lines(
            Asm::new()
                .ldx(Size::H, R2, R7, 12)
                .stx(Size::DW, R10, R2, -8)
                .st(Size::B, R10, -16, 1)
                .exit(),
        );
        assert_eq!(
            l,
            vec![
                "r2 = *(u16 *)(r7 +12)",
                "*(u64 *)(r10 -8) = r2",
                "*(u8 *)(r10 -16) = 1",
                "exit",
            ]
        );
    }

    #[test]
    fn jumps_calls_and_lddw() {
        let l = lines(
            Asm::new()
                .jmp_imm(Cond::Eq, R1, 0, "end")
                .jmp32_imm(Cond::Ge, R2, 7, "end")
                .lddw(R3, 0x1122_3344_5566_7788)
                .ld_map_fd(R1, 4)
                .call(5)
                .label("end")
                .mov64_imm(R0, 0)
                .exit(),
        );
        assert_eq!(
            l,
            vec![
                "if r1 == 0 goto +6",
                "if wr2 >= 7 goto +5",
                "r3 = 0x1122334455667788 ll",
                "r1 = map_fd(4)",
                "call 5",
                "r0 = 0",
                "exit",
            ]
        );
    }

    #[test]
    fn compiled_scripts_disassemble_without_bad_lines() {
        // Sanity over a realistic program: every generated instruction
        // renders as something other than "(bad …)".
        let asm = Asm::new()
            .mov64(R6, R1)
            .ldx(Size::DW, R7, R1, 24)
            .jmp_reg(Cond::Gt, R7, R8, "miss")
            .mov64_imm(R0, 1)
            .exit()
            .label("miss")
            .mov64_imm(R0, 0)
            .exit();
        for line in disassemble(&asm.build().unwrap()) {
            assert!(!line.contains("(bad"), "line: {line}");
        }
    }

    #[test]
    fn line_numbers_skip_lddw_bodies() {
        let listing = disassemble(&Asm::new().lddw(R1, 1).exit().build().unwrap());
        assert_eq!(listing.len(), 2);
        assert!(listing[0].starts_with("   0:"));
        assert!(
            listing[1].starts_with("   2:"),
            "exit sits at slot 2: {listing:?}"
        );
    }
}
