//! A SystemTap-style tracer cost model.
//!
//! The paper's Fig. 7(b) comparison attaches a SystemTap script at
//! `tcp_recvmsg` (run with `STP_NO_OVERLOAD`) and measures ~10% Netperf
//! throughput loss on a 1 GbE network and 26.5% on 10 GbE, attributing it
//! to "the frequency of traces and the continual data copies between the
//! kernel space and user space" (§IV-B).
//!
//! This probe reproduces that cost structure instead of the eBPF one:
//! every firing pays a kprobe trap + SystemTap runtime handler cost plus
//! a per-byte relay copy toward user space — orders of magnitude more
//! than a JIT-compiled eBPF program's in-kernel map write. The default
//! parameters are calibrated so the Fig. 7(b) crossover reproduces (see
//! `EXPERIMENTS.md`).

use serde::{Deserialize, Serialize};
use vnet_sim::probe::{ProbeEvent, ProbeOutcome, ProbeSink};
use vnet_sim::time::SimDuration;

/// Cost parameters of the SystemTap model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemTapCost {
    /// kprobe int3 trap + SystemTap runtime entry/exit, per event.
    pub handler_ns: u64,
    /// Relay-channel copy cost per record byte (kernel → user space).
    pub copy_ns_per_byte: u64,
    /// Size of the record each probe firing emits.
    pub record_bytes: usize,
}

impl Default for SystemTapCost {
    fn default() -> Self {
        // Calibration: with a 64-byte record this totals
        // 2600 + 64*16 = 3624 ns per event — the value that reproduces
        // the paper's ~10% (1G) / 26.5% (10G) Netperf losses against a
        // 10 µs receive-stack service time.
        SystemTapCost {
            handler_ns: 2_600,
            copy_ns_per_byte: 16,
            record_bytes: 64,
        }
    }
}

impl SystemTapCost {
    /// Total cost charged per probe firing.
    pub fn per_event(&self) -> SimDuration {
        SimDuration::from_nanos(self.handler_ns + self.copy_ns_per_byte * self.record_bytes as u64)
    }
}

/// A [`ProbeSink`] charging SystemTap-scale costs and keeping the same
/// timestamp record a SystemTap script would (so the comparison traces
/// the same information).
#[derive(Debug, Default)]
pub struct SystemTapProbe {
    cost: SystemTapCost,
    events: u64,
    records: Vec<(u64, usize)>,
}

impl SystemTapProbe {
    /// Creates a probe with the default calibrated costs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a probe with explicit costs.
    pub fn with_cost(cost: SystemTapCost) -> Self {
        SystemTapProbe {
            cost,
            events: 0,
            records: Vec::new(),
        }
    }

    /// Number of events traced.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The recorded `(timestamp_ns, packet_len)` pairs.
    pub fn records(&self) -> &[(u64, usize)] {
        &self.records
    }

    /// The per-event cost in use.
    pub fn cost(&self) -> SystemTapCost {
        self.cost
    }
}

impl ProbeSink for SystemTapProbe {
    fn handle(&mut self, event: &ProbeEvent<'_>) -> ProbeOutcome {
        self.events += 1;
        self.records
            .push((event.monotonic_ns, event.packet.map_or(0, |p| p.len())));
        ProbeOutcome::with_cost(self.cost.per_event())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::SocketAddrV4;
    use std::sync::{Arc, Mutex};
    use vnet_sim::device::{DeviceConfig, Forwarding, ServiceModel};
    use vnet_sim::node::NodeClock;
    use vnet_sim::packet::{FlowKey, PacketBuilder, SocketAddrV4Ext};
    use vnet_sim::probe::Hook;
    use vnet_sim::time::SimTime;
    use vnet_sim::world::World;

    #[test]
    fn default_cost_is_microseconds_scale() {
        let cost = SystemTapCost::default();
        let per_event = cost.per_event().as_nanos();
        assert!(per_event > 3_000 && per_event < 4_000, "got {per_event}");
    }

    #[test]
    fn probe_charges_cost_and_records() {
        let mut w = World::new(61);
        let n = w.add_node("host", 1, NodeClock::perfect());
        let dev = w.add_device(
            DeviceConfig::new("stack", n)
                .service(ServiceModel::Fixed(vnet_sim::SimDuration::from_micros(1)))
                .kernel_functions(vnet_sim::device::KernelFunctions::new(
                    &["tcp_recvmsg"],
                    &[],
                ))
                .forwarding(Forwarding::Deliver),
        );
        let probe = Arc::new(Mutex::new(SystemTapProbe::new()));
        w.attach_probe(n, Hook::kprobe("tcp_recvmsg"), probe.clone());
        let flow = FlowKey::udp(
            SocketAddrV4::sock("10.0.0.1", 1),
            SocketAddrV4::sock("10.0.0.2", 2),
        );
        w.inject(dev, PacketBuilder::udp(flow, vec![0; 100]).build());
        w.run_until(SimTime::from_millis(1));
        assert_eq!(probe.lock().unwrap().events(), 1);
        assert_eq!(probe.lock().unwrap().records()[0].1, 14 + 20 + 8 + 100);
        // The packet's service was delayed by the probe cost: tx happens
        // at 1us + 3.624us.
        let c = w.device_counters(dev);
        assert_eq!(c.rx_packets, 1);
    }

    #[test]
    fn cost_scales_with_record_size() {
        let small = SystemTapCost {
            record_bytes: 16,
            ..Default::default()
        };
        let large = SystemTapCost {
            record_bytes: 256,
            ..Default::default()
        };
        assert!(large.per_event() > small.per_event());
        let probe = SystemTapProbe::with_cost(large);
        assert_eq!(probe.cost().record_bytes, 256);
    }
}
