//! A zero-cost counting probe: the "no tracing" control arm.
//!
//! Useful to verify that probe *attachment* itself adds nothing — only
//! probe execution cost perturbs the system — and to count events without
//! influencing the experiment.

use vnet_sim::probe::{ProbeEvent, ProbeOutcome, ProbeSink};

/// A probe that counts firings at zero simulated cost.
#[derive(Debug, Default)]
pub struct CountingProbe {
    events: u64,
    bytes: u64,
}

impl CountingProbe {
    /// Creates a counting probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total packet bytes observed.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl ProbeSink for CountingProbe {
    fn handle(&mut self, event: &ProbeEvent<'_>) -> ProbeOutcome {
        self.events += 1;
        self.bytes += event.packet.map_or(0, |p| p.len() as u64);
        ProbeOutcome::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_sim::ids::{CpuId, NodeId};
    use vnet_sim::probe::{Direction, Hook};

    #[test]
    fn counts_without_cost() {
        let mut p = CountingProbe::new();
        let hook = Hook::kprobe("f");
        let ev = ProbeEvent {
            node: NodeId(0),
            cpu: CpuId(0),
            hook: &hook,
            device: None,
            device_name: None,
            direction: Direction::Rx,
            packet: None,
            monotonic_ns: 0,
            aux: 0,
        };
        let out = p.handle(&ev);
        assert_eq!(out.cost, vnet_sim::SimDuration::ZERO);
        assert_eq!(p.events(), 1);
        assert_eq!(p.bytes(), 0);
    }
}
