//! # vnet-baselines — comparison tracers
//!
//! The paper positions vNetTracer against SystemTap (§II, §IV-B): both can
//! attach to the same kernel functions, but SystemTap pays per-event
//! kernel→user copies and a heavyweight runtime, while eBPF keeps trace
//! data in kernel memory. [`systemtap::SystemTapProbe`] models those costs
//! as a [`vnet_sim::probe::ProbeSink`] so the two tracers can be attached
//! at the *same* tracepoints in the *same* scenarios; [`noop::CountingProbe`]
//! is the zero-cost control arm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod noop;
pub mod systemtap;

pub use noop::CountingProbe;
pub use systemtap::{SystemTapCost, SystemTapProbe};
