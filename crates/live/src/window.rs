//! Event-time windows and watermarks.
//!
//! Records arrive out of order: per-CPU perf rings interleave, agents
//! drain on independent schedules, and each node stamps records on its
//! own (skewed) clock. The window runtime assigns every record to the
//! event-time windows covering its *aligned* timestamp, and a
//! [`WatermarkTracker`] decides when a window's input is complete enough
//! to finalize. The watermark is derived from per-agent heartbeats: an
//! agent heartbeating at master time `t` has drained everything it will
//! ever emit below `t − slack`, where the slack covers the configured
//! allowed lateness plus the residual error of that agent's
//! [`SkewEstimate`] alignment (Cristian's bound: at most the one-way
//! estimate). The global watermark is the minimum frontier over all
//! registered agents — one stalled agent holds every window open rather
//! than letting its records be dropped as late.

use std::collections::HashMap;

use vnettracer::clock_sync::SkewEstimate;

/// An event-time window scheme: fixed-width windows every `slide_ns`.
/// `slide_ns == width_ns` gives tumbling windows; `slide_ns < width_ns`
/// gives overlapping sliding windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window width in nanoseconds.
    pub width_ns: u64,
    /// Distance between consecutive window starts, in nanoseconds.
    pub slide_ns: u64,
}

impl WindowSpec {
    /// Non-overlapping windows of `width_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `width_ns` is zero.
    pub fn tumbling(width_ns: u64) -> Self {
        assert!(width_ns > 0, "window width must be non-zero");
        WindowSpec {
            width_ns,
            slide_ns: width_ns,
        }
    }

    /// Overlapping windows of `width_ns` starting every `slide_ns`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero or `slide_ns > width_ns`.
    pub fn sliding(width_ns: u64, slide_ns: u64) -> Self {
        assert!(
            width_ns > 0 && slide_ns > 0,
            "window sizes must be non-zero"
        );
        assert!(slide_ns <= width_ns, "slide must not exceed width");
        WindowSpec { width_ns, slide_ns }
    }

    /// Start timestamps of every window containing event time `ts` —
    /// at most `⌈width/slide⌉` of them, in ascending order.
    pub fn windows(&self, ts: u64) -> impl Iterator<Item = u64> + '_ {
        // Window [k·slide, k·slide + width) contains ts iff
        // k ≤ ts/slide and k·slide > ts − width.
        let last = ts / self.slide_ns;
        let first = if ts < self.width_ns {
            0
        } else {
            (ts - self.width_ns) / self.slide_ns + 1
        };
        (first..=last).map(move |k| k * self.slide_ns)
    }

    /// End (exclusive) of the window starting at `start_ns`.
    pub fn end(&self, start_ns: u64) -> u64 {
        start_ns.saturating_add(self.width_ns)
    }
}

/// Per-agent completeness frontiers and the global watermark they imply.
#[derive(Debug, Clone, Default)]
pub struct WatermarkTracker {
    /// Per-agent: (frontier_ns, slack_ns, skew, last_heartbeat_now_ns).
    agents: HashMap<String, AgentFrontier>,
    late_records: u64,
}

#[derive(Debug, Clone, Copy)]
struct AgentFrontier {
    frontier_ns: u64,
    slack_ns: u64,
    skew: Option<SkewEstimate>,
    last_seen_ns: u64,
}

impl WatermarkTracker {
    /// Creates a tracker with no agents (watermark pinned at 0 until the
    /// first registration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an agent the watermark must wait for. `skew` aligns the
    /// agent's record timestamps onto the master base and widens its
    /// slack by the alignment's residual error bound (`one_way_ns`);
    /// `allowed_lateness_ns` is the extra disorder budget.
    pub fn register_agent(
        &mut self,
        node: &str,
        skew: Option<SkewEstimate>,
        allowed_lateness_ns: u64,
    ) {
        let slack = allowed_lateness_ns + skew.map_or(0, |s| s.one_way_ns);
        self.agents.insert(
            node.to_owned(),
            AgentFrontier {
                frontier_ns: 0,
                slack_ns: slack,
                skew,
                last_seen_ns: 0,
            },
        );
    }

    /// Whether `node` was registered.
    pub fn knows(&self, node: &str) -> bool {
        self.agents.contains_key(node)
    }

    /// Aligns a record timestamp from `node` onto the master time base.
    /// Timestamps from unregistered nodes pass through unaligned.
    pub fn align(&self, node: &str, ts_ns: u64) -> u64 {
        match self.agents.get(node).and_then(|a| a.skew) {
            Some(skew) => skew.align_remote_ns(ts_ns),
            None => ts_ns,
        }
    }

    /// Advances `node`'s frontier from a heartbeat at master time
    /// `now_ns`. Frontiers never move backwards.
    pub fn heartbeat(&mut self, node: &str, now_ns: u64) {
        if let Some(a) = self.agents.get_mut(node) {
            a.last_seen_ns = a.last_seen_ns.max(now_ns);
            let frontier = now_ns.saturating_sub(a.slack_ns);
            a.frontier_ns = a.frontier_ns.max(frontier);
        }
    }

    /// Forces every frontier up to `ts_ns` — used at shutdown to flush
    /// all remaining windows once no more data can arrive.
    pub fn advance_all(&mut self, ts_ns: u64) {
        for a in self.agents.values_mut() {
            a.frontier_ns = a.frontier_ns.max(ts_ns);
        }
    }

    /// The global watermark: the minimum agent frontier (0 with no
    /// agents). Windows ending at or below it are input-complete.
    pub fn watermark_ns(&self) -> u64 {
        self.agents
            .values()
            .map(|a| a.frontier_ns)
            .min()
            .unwrap_or(0)
    }

    /// Counts (and reports) whether an aligned timestamp is late — i.e.
    /// below the watermark, destined for windows already finalized.
    pub fn note_if_late(&mut self, aligned_ts_ns: u64) -> bool {
        let late = aligned_ts_ns < self.watermark_ns();
        if late {
            self.late_records += 1;
        }
        late
    }

    /// Total records that arrived below the watermark.
    pub fn late_records(&self) -> u64 {
        self.late_records
    }

    /// Agents whose last heartbeat is more than `stall_ns` behind the
    /// most recent heartbeat seen from any agent, sorted by name.
    pub fn stalled_agents(&self, stall_ns: u64) -> Vec<(String, u64)> {
        let lead = self.agents.values().map(|a| a.last_seen_ns).max();
        let Some(lead) = lead else {
            return Vec::new();
        };
        let mut out: Vec<(String, u64)> = self
            .agents
            .iter()
            .filter(|(_, a)| lead.saturating_sub(a.last_seen_ns) > stall_ns)
            .map(|(n, a)| (n.clone(), lead.saturating_sub(a.last_seen_ns)))
            .collect();
        out.sort();
        out
    }

    /// Number of registered agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_assignment_is_unique() {
        let w = WindowSpec::tumbling(1_000);
        assert_eq!(w.windows(0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(w.windows(999).collect::<Vec<_>>(), vec![0]);
        assert_eq!(w.windows(1_000).collect::<Vec<_>>(), vec![1_000]);
        assert_eq!(w.windows(5_500).collect::<Vec<_>>(), vec![5_000]);
        assert_eq!(w.end(5_000), 6_000);
    }

    #[test]
    fn sliding_assignment_covers_overlaps() {
        let w = WindowSpec::sliding(1_000, 250);
        // ts=1100 is inside windows starting at 250, 500, 750, 1000.
        assert_eq!(
            w.windows(1_100).collect::<Vec<_>>(),
            vec![250, 500, 750, 1_000]
        );
        // Early timestamps clamp at window 0.
        assert_eq!(w.windows(100).collect::<Vec<_>>(), vec![0]);
        // Every returned window actually contains the timestamp.
        for ts in [0u64, 1, 249, 250, 999, 1_000, 10_137] {
            for start in w.windows(ts) {
                assert!(start <= ts && ts < w.end(start), "ts={ts} start={start}");
            }
        }
    }

    #[test]
    fn watermark_is_minimum_frontier() {
        let mut wm = WatermarkTracker::new();
        assert_eq!(wm.watermark_ns(), 0);
        wm.register_agent("a", None, 100);
        wm.register_agent("b", None, 100);
        wm.heartbeat("a", 1_000);
        assert_eq!(wm.watermark_ns(), 0, "b has not reported");
        wm.heartbeat("b", 600);
        assert_eq!(wm.watermark_ns(), 500);
        wm.heartbeat("a", 2_000);
        assert_eq!(wm.watermark_ns(), 500, "still held by b");
        wm.heartbeat("b", 2_000);
        assert_eq!(wm.watermark_ns(), 1_900);
        // Heartbeats never regress the frontier.
        wm.heartbeat("b", 1_000);
        assert_eq!(wm.watermark_ns(), 1_900);
    }

    #[test]
    fn skew_widens_slack_and_aligns() {
        let skew = SkewEstimate {
            one_way_ns: 400,
            offset_ns: 2_000,
            skew_ns: 2_000,
            samples: 100,
        };
        let mut wm = WatermarkTracker::new();
        wm.register_agent("remote", Some(skew), 100);
        wm.heartbeat("remote", 10_000);
        // Slack = lateness 100 + one-way 400.
        assert_eq!(wm.watermark_ns(), 9_500);
        // Remote clocks lead by 2us; alignment removes the lead.
        assert_eq!(wm.align("remote", 12_000), 10_000);
        assert_eq!(wm.align("unknown", 12_000), 12_000);
    }

    #[test]
    fn late_records_are_counted() {
        let mut wm = WatermarkTracker::new();
        wm.register_agent("a", None, 0);
        wm.heartbeat("a", 5_000);
        assert!(wm.note_if_late(4_999));
        assert!(!wm.note_if_late(5_000));
        assert_eq!(wm.late_records(), 1);
    }

    #[test]
    fn stalled_agents_lag_the_leader() {
        let mut wm = WatermarkTracker::new();
        wm.register_agent("a", None, 0);
        wm.register_agent("b", None, 0);
        wm.heartbeat("a", 10_000);
        wm.heartbeat("b", 2_000);
        assert_eq!(wm.stalled_agents(5_000), vec![("b".to_owned(), 8_000)]);
        assert!(wm.stalled_agents(10_000).is_empty());
    }
}
