//! # vnet-live — streaming analysis over the live trace stream
//!
//! The offline pipeline (`vnettracer::metrics` over `vnet-tsdb`) answers
//! questions *after* a run by scanning the whole trace database; its
//! cost grows with trace size. This crate answers the same questions
//! *during* the run: a [`LiveEngine`] subscribes to the collector's
//! ingest path ([`vnettracer::IngestSubscriber`]) and folds every record
//! batch into incremental per-window operators the moment it arrives.
//! Resident state is bounded by the number of open windows, the pairing
//! caps and a fixed closed-window ring — independent of how many records
//! the trace database accumulates.
//!
//! The pieces:
//!
//! * [`window`] — event-time tumbling/sliding windows plus a
//!   [`WatermarkTracker`] that decides when a window's input is complete,
//!   driven by per-agent heartbeats widened by each agent's
//!   [`SkewEstimate`](vnettracer::clock_sync::SkewEstimate) residual;
//!   records below the watermark are counted, not silently dropped;
//! * [`operators`] — incremental throughput, latency (log-bucketed
//!   [`LogHistogram`](vnet_tsdb::sketch::LogHistogram) percentiles plus
//!   RFC 3550 jitter) and loss (trace-ID pairing with timeout eviction);
//! * [`alert`] — EWMA baseline detectors emitting typed [`Alert`]s for
//!   latency spikes, loss bursts, throughput collapses and stalled
//!   agents;
//! * [`engine`] — the [`LiveEngine`] tying it together: align → late
//!   check → route → evict → finalize → detect.
//!
//! ## Attaching to a tracer
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use vnet_live::{LiveConfig, LiveEngine, WindowSpec};
//!
//! let cfg = LiveConfig::new(WindowSpec::tumbling(1_000_000)) // 1 ms
//!     .track_throughput("flannel1_rx")
//!     .track_latency("flannel1_rx", "flannel2_rx")
//!     .track_loss("flannel1_rx", "flannel2_rx");
//! let mut engine = LiveEngine::new(cfg);
//! engine.register_agent("server1", None);
//! engine.register_agent("server2", None);
//! let engine = Rc::new(RefCell::new(engine));
//! // tracer.subscribe(engine.clone());
//! // …run the scenario; then:
//! engine.borrow_mut().finish();
//! for w in engine.borrow().closed_windows() {
//!     println!("window {}..{}", w.start_ns, w.end_ns);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alert;
pub mod engine;
pub mod operators;
pub mod window;

pub use alert::{Alert, AlertKind, AnomalyDetector, DetectorConfig};
pub use engine::{EngineState, LiveConfig, LiveEngine, WindowResult};
pub use operators::{LatencySummary, LossWindow, PairTracker, ThroughputWindow};
pub use window::{WatermarkTracker, WindowSpec};
