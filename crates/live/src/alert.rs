//! Anomaly detection over closed windows.
//!
//! Detectors keep an EWMA baseline per metric stream and compare each
//! finalized window against it, so an alert means "this window deviates
//! from this pair's own recent history", not "this window crossed a
//! global constant". Baselines need a short warm-up before they are
//! trusted; the stalled-agent detector instead watches heartbeat lag
//! directly and fires on the transition into the stalled state.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::engine::WindowResult;

/// What went wrong, with enough context to act on.
#[derive(Debug, Clone, PartialEq)]
pub enum AlertKind {
    /// A latency pair's p99 jumped well above its EWMA baseline.
    LatencySpike {
        /// `from->to` tracepoint pair.
        pair: String,
        /// The window's p99 latency.
        p99_ns: u64,
        /// The EWMA baseline it was judged against.
        baseline_ns: f64,
    },
    /// A loss pair's window loss rate crossed the configured threshold.
    LossBurst {
        /// `upstream->downstream` tracepoint pair.
        pair: String,
        /// Packets lost in the window.
        lost: u64,
        /// Upstream packets seen in the window.
        seen: u64,
    },
    /// A tracepoint's window throughput collapsed below a fraction of
    /// its EWMA baseline.
    ThroughputCollapse {
        /// The tracepoint name.
        tracepoint: String,
        /// The window's throughput in bits/second.
        bps: f64,
        /// The EWMA baseline it was judged against.
        baseline_bps: f64,
    },
    /// An agent's heartbeats lag far behind the other agents', holding
    /// the watermark (and every open window) back.
    StalledAgent {
        /// The silent agent.
        node: String,
        /// How far its last heartbeat lags the leader, in nanoseconds.
        lag_ns: u64,
    },
}

/// A typed alert emitted by the [`AnomalyDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Event time the alert refers to: the window start for windowed
    /// detectors, the ingest time for stall detection.
    pub at_ns: u64,
    /// The anomaly.
    pub kind: AlertKind,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            AlertKind::LatencySpike {
                pair,
                p99_ns,
                baseline_ns,
            } => write!(
                f,
                "[{:>12}ns] latency spike    {pair}: p99 {p99_ns}ns vs baseline {baseline_ns:.0}ns",
                self.at_ns
            ),
            AlertKind::LossBurst { pair, lost, seen } => write!(
                f,
                "[{:>12}ns] loss burst       {pair}: {lost}/{seen} packets lost",
                self.at_ns
            ),
            AlertKind::ThroughputCollapse {
                tracepoint,
                bps,
                baseline_bps,
            } => write!(
                f,
                "[{:>12}ns] tput collapse    {tracepoint}: {bps:.0}bps vs baseline {baseline_bps:.0}bps",
                self.at_ns
            ),
            AlertKind::StalledAgent { node, lag_ns } => write!(
                f,
                "[{:>12}ns] stalled agent    {node}: heartbeat lags leader by {lag_ns}ns",
                self.at_ns
            ),
        }
    }
}

/// Detector thresholds and baseline smoothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// EWMA smoothing factor for baselines (weight of the newest
    /// window).
    pub ewma_alpha: f64,
    /// Windows a baseline must absorb before its stream can alert.
    pub warmup_windows: u64,
    /// Latency spike fires when window p99 > factor × baseline.
    pub latency_spike_factor: f64,
    /// Throughput collapse fires when window bps < factor × baseline.
    pub collapse_factor: f64,
    /// Loss burst fires when window loss rate ≥ this.
    pub loss_rate_threshold: f64,
    /// …and at least this many packets were actually lost.
    pub min_lost: u64,
    /// Heartbeat lag behind the leading agent that counts as stalled.
    pub stall_timeout_ns: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            ewma_alpha: 0.3,
            warmup_windows: 3,
            latency_spike_factor: 3.0,
            collapse_factor: 0.3,
            loss_rate_threshold: 0.05,
            min_lost: 3,
            stall_timeout_ns: 50_000_000,
        }
    }
}

/// An EWMA baseline with a warm-up counter.
#[derive(Debug, Clone, Copy, Default)]
struct Ewma {
    value: f64,
    windows: u64,
}

impl Ewma {
    /// Folds in a new observation; returns the baseline *before* the
    /// update if the stream is warmed up.
    fn observe(&mut self, alpha: f64, warmup: u64, x: f64) -> Option<f64> {
        let baseline = (self.windows >= warmup).then_some(self.value);
        if self.windows == 0 {
            self.value = x;
        } else {
            self.value += alpha * (x - self.value);
        }
        self.windows += 1;
        baseline
    }
}

/// Runs every detector over each finalized window and over heartbeat
/// stalls, accumulating [`Alert`]s for the caller to drain.
#[derive(Debug, Default)]
pub struct AnomalyDetector {
    cfg: DetectorConfig,
    latency: HashMap<String, Ewma>,
    throughput: HashMap<String, Ewma>,
    /// Agents currently in the stalled state, to alert only on entry.
    stalled: HashSet<String>,
}

impl AnomalyDetector {
    /// Creates a detector with the given thresholds.
    pub fn new(cfg: DetectorConfig) -> Self {
        AnomalyDetector {
            cfg,
            ..Default::default()
        }
    }

    /// Judges one finalized window against the per-stream baselines.
    pub fn on_window(&mut self, w: &WindowResult, out: &mut Vec<Alert>) {
        for (pair, s) in &w.latency {
            if s.count == 0 {
                continue;
            }
            let obs = s.p99_ns as f64;
            if let Some(baseline) = self.latency.entry(pair.clone()).or_default().observe(
                self.cfg.ewma_alpha,
                self.cfg.warmup_windows,
                obs,
            ) {
                if baseline > 0.0 && obs > self.cfg.latency_spike_factor * baseline {
                    out.push(Alert {
                        at_ns: w.start_ns,
                        kind: AlertKind::LatencySpike {
                            pair: pair.clone(),
                            p99_ns: s.p99_ns,
                            baseline_ns: baseline,
                        },
                    });
                }
            }
        }
        for (tp, t) in &w.throughput {
            let obs = t.bps();
            if obs <= 0.0 {
                continue;
            }
            if let Some(baseline) = self.throughput.entry(tp.clone()).or_default().observe(
                self.cfg.ewma_alpha,
                self.cfg.warmup_windows,
                obs,
            ) {
                if baseline > 0.0 && obs < self.cfg.collapse_factor * baseline {
                    out.push(Alert {
                        at_ns: w.start_ns,
                        kind: AlertKind::ThroughputCollapse {
                            tracepoint: tp.clone(),
                            bps: obs,
                            baseline_bps: baseline,
                        },
                    });
                }
            }
        }
        for (pair, l) in &w.loss {
            if l.lost >= self.cfg.min_lost && l.rate() >= self.cfg.loss_rate_threshold {
                out.push(Alert {
                    at_ns: w.start_ns,
                    kind: AlertKind::LossBurst {
                        pair: pair.clone(),
                        lost: l.lost,
                        seen: l.seen,
                    },
                });
            }
        }
    }

    /// Updates the stalled-agent state machine from the current lag
    /// report, alerting once per stall episode.
    pub fn on_stall_report(
        &mut self,
        stalled: &[(String, u64)],
        now_ns: u64,
        out: &mut Vec<Alert>,
    ) {
        let current: HashSet<&str> = stalled.iter().map(|(n, _)| n.as_str()).collect();
        for (node, lag_ns) in stalled {
            if self.stalled.insert(node.clone()) {
                out.push(Alert {
                    at_ns: now_ns,
                    kind: AlertKind::StalledAgent {
                        node: node.clone(),
                        lag_ns: *lag_ns,
                    },
                });
            }
        }
        self.stalled.retain(|n| current.contains(n.as_str()));
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{LatencySummary, LossWindow, ThroughputWindow};

    fn lat(p99: u64) -> LatencySummary {
        LatencySummary {
            count: 10,
            p50_ns: p99 / 2,
            p95_ns: p99,
            p99_ns: p99,
            mean_ns: p99 as f64 / 2.0,
            jitter: Some((-5, 5)),
            smoothed_jitter_ns: 1.0,
        }
    }

    fn window(start: u64, p99: u64) -> WindowResult {
        WindowResult {
            start_ns: start,
            end_ns: start + 1_000,
            throughput: Vec::new(),
            latency: vec![("a->b".to_owned(), lat(p99))],
            loss: Vec::new(),
        }
    }

    #[test]
    fn latency_spike_needs_warmup_then_fires() {
        let mut d = AnomalyDetector::new(DetectorConfig {
            warmup_windows: 2,
            ..Default::default()
        });
        let mut out = Vec::new();
        d.on_window(&window(0, 100_000), &mut out);
        d.on_window(&window(1_000, 50_000), &mut out); // huge jump, still warming
        assert!(out.is_empty(), "no alerts during warm-up");
        d.on_window(&window(2_000, 1_000_000), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].kind,
            AlertKind::LatencySpike {
                p99_ns: 1_000_000,
                ..
            }
        ));
        // A normal window afterwards stays quiet.
        out.clear();
        d.on_window(&window(3_000, 90_000), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn loss_burst_respects_min_lost_and_rate() {
        let mut d = AnomalyDetector::new(DetectorConfig::default());
        let mut out = Vec::new();
        let mut w = window(0, 1);
        w.latency.clear();
        w.loss = vec![(
            "a->b".to_owned(),
            LossWindow {
                seen: 100,
                delivered: 98,
                lost: 2,
            },
        )];
        d.on_window(&w, &mut out);
        assert!(out.is_empty(), "2 lost is under min_lost");
        w.loss[0].1 = LossWindow {
            seen: 100,
            delivered: 90,
            lost: 10,
        };
        d.on_window(&w, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].kind, AlertKind::LossBurst { lost: 10, .. }));
    }

    #[test]
    fn throughput_collapse_fires_below_baseline_fraction() {
        let mut d = AnomalyDetector::new(DetectorConfig {
            warmup_windows: 1,
            ..Default::default()
        });
        let mut out = Vec::new();
        let steady = ThroughputWindow {
            count: 100,
            bytes: 100_000,
            first_ts: 0,
            last_ts: 999_999,
        };
        let trickle = ThroughputWindow {
            count: 2,
            bytes: 200,
            first_ts: 0,
            last_ts: 999_999,
        };
        let mut w = window(0, 1);
        w.latency.clear();
        w.throughput = vec![("rx".to_owned(), steady)];
        d.on_window(&w, &mut out);
        assert!(out.is_empty());
        w.throughput = vec![("rx".to_owned(), trickle)];
        d.on_window(&w, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].kind, AlertKind::ThroughputCollapse { .. }));
    }

    #[test]
    fn stall_alerts_once_per_episode() {
        let mut d = AnomalyDetector::new(DetectorConfig::default());
        let mut out = Vec::new();
        let lag = vec![("b".to_owned(), 80_000_000u64)];
        d.on_stall_report(&lag, 1_000, &mut out);
        d.on_stall_report(&lag, 2_000, &mut out);
        assert_eq!(out.len(), 1, "repeated reports do not re-alert");
        // Recovery then a second stall re-alerts.
        d.on_stall_report(&[], 3_000, &mut out);
        d.on_stall_report(&lag, 4_000, &mut out);
        assert_eq!(out.len(), 2);
    }
}
