//! The streaming engine: batches in, finalized windows and alerts out.
//!
//! [`LiveEngine`] implements [`IngestSubscriber`], so attaching it to a
//! collector (`tracer.subscribe(...)`) makes every collection cycle flow
//! through the operators as it is ingested — the trace database keeps
//! growing, but the engine's resident state stays bounded by the number
//! of *open* windows, the pairing caps and the closed-window ring, all
//! independent of how many records have ever passed through.
//!
//! Per batch the engine: advances the source agent's watermark frontier
//! from the heartbeat, aligns each record timestamp through the agent's
//! skew estimate, drops-and-counts records below the watermark, routes
//! the rest to every matching operator, then evicts timed-out pairings
//! and finalizes windows. A window `[s, s+width)` finalizes only once
//! `watermark ≥ s + width + pair_timeout`: by then every pairing whose
//! loss would land in the window has either completed or been evicted,
//! so the emitted counts are final.

use std::collections::{BTreeSet, VecDeque};

use vnet_sim::time::SimTime;
use vnet_tsdb::sketch::DEFAULT_SKETCH_ERROR;
use vnet_tsdb::RecordBatch;
use vnettracer::clock_sync::SkewEstimate;
use vnettracer::IngestSubscriber;

use crate::alert::{Alert, AnomalyDetector, DetectorConfig};
use crate::operators::{
    Evicted, LatencyOp, LatencySummary, LossOp, LossWindow, Side, ThroughputOp, ThroughputWindow,
};
use crate::window::{WatermarkTracker, WindowSpec};

/// What to compute and how tightly to bound state.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// The event-time window scheme shared by every operator.
    pub window: WindowSpec,
    /// Tracepoints to compute windowed throughput for.
    pub throughput: Vec<String>,
    /// `(from, to)` tracepoint pairs to compute windowed latency for.
    pub latency: Vec<(String, String)>,
    /// `(upstream, downstream)` tracepoint pairs to compute loss for.
    pub loss: Vec<(String, String)>,
    /// Extra out-of-orderness budget added to every agent's watermark
    /// slack, on top of its skew estimate's residual error.
    pub allowed_lateness_ns: u64,
    /// How long an unmatched pairing may wait for its other half before
    /// being finalized as a loss.
    pub pair_timeout_ns: u64,
    /// Relative error bound for the latency sketches.
    pub sketch_error: f64,
    /// Hard cap on unmatched pairings per latency/loss operator.
    pub max_pending_pairs: usize,
    /// Finalized windows retained for the caller (oldest dropped first).
    pub max_closed_windows: usize,
    /// Anomaly detector thresholds.
    pub detector: DetectorConfig,
}

impl LiveConfig {
    /// A config computing nothing yet over the given window scheme, with
    /// conservative defaults for the state bounds.
    pub fn new(window: WindowSpec) -> Self {
        LiveConfig {
            window,
            throughput: Vec::new(),
            latency: Vec::new(),
            loss: Vec::new(),
            allowed_lateness_ns: 0,
            pair_timeout_ns: 10_000_000,
            sketch_error: DEFAULT_SKETCH_ERROR,
            max_pending_pairs: 65_536,
            max_closed_windows: 256,
            detector: DetectorConfig::default(),
        }
    }

    /// Adds a windowed-throughput tracepoint.
    pub fn track_throughput(mut self, tracepoint: &str) -> Self {
        self.throughput.push(tracepoint.to_owned());
        self
    }

    /// Adds a windowed-latency (and jitter) tracepoint pair.
    pub fn track_latency(mut self, from: &str, to: &str) -> Self {
        self.latency.push((from.to_owned(), to.to_owned()));
        self
    }

    /// Adds a windowed-loss tracepoint pair.
    pub fn track_loss(mut self, upstream: &str, downstream: &str) -> Self {
        self.loss.push((upstream.to_owned(), downstream.to_owned()));
        self
    }

    /// Builds the operator set a module profile contributes: each
    /// [`vnettracer::MetricSpec`] becomes the matching `track_*` call.
    /// This is how `ModuleRegistry::metrics` output turns into a running
    /// engine.
    pub fn from_metric_specs(window: WindowSpec, specs: &[vnettracer::MetricSpec]) -> Self {
        let mut cfg = LiveConfig::new(window);
        for spec in specs {
            cfg = match spec {
                vnettracer::MetricSpec::Latency { from, to } => cfg.track_latency(from, to),
                vnettracer::MetricSpec::Throughput { table } => cfg.track_throughput(table),
                vnettracer::MetricSpec::Loss {
                    upstream,
                    downstream,
                } => cfg.track_loss(upstream, downstream),
            };
        }
        cfg
    }
}

/// Every metric of one finalized window, labelled by stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowResult {
    /// Window start (inclusive), aligned master nanoseconds.
    pub start_ns: u64,
    /// Window end (exclusive).
    pub end_ns: u64,
    /// Per-tracepoint throughput accumulators.
    pub throughput: Vec<(String, ThroughputWindow)>,
    /// Per-pair (`from->to`) latency summaries.
    pub latency: Vec<(String, LatencySummary)>,
    /// Per-pair (`up->down`) loss counters.
    pub loss: Vec<(String, LossWindow)>,
}

/// A point-in-time accounting of everything the engine keeps resident —
/// the quantities that must stay bounded regardless of trace size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineState {
    /// Open (not yet finalized) windows, summed across operators.
    pub open_windows: usize,
    /// Sketch buckets alive across all open-window and total sketches.
    pub sketch_buckets: usize,
    /// Unmatched pairings waiting for their other half.
    pub pending_pairs: usize,
    /// Finalized windows retained in the ring.
    pub closed_windows: usize,
    /// Records dropped (and counted) for arriving below the watermark.
    pub late_records: u64,
    /// Records routed into at least one operator.
    pub records_processed: u64,
}

/// The streaming analysis engine. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct LiveEngine {
    cfg: LiveConfig,
    watermark: WatermarkTracker,
    throughput: Vec<ThroughputOp>,
    latency: Vec<LatencyOp>,
    loss: Vec<LossOp>,
    detector: AnomalyDetector,
    closed: VecDeque<WindowResult>,
    alerts: Vec<Alert>,
    evict_scratch: Vec<Evicted>,
    records_processed: u64,
    now_ns: u64,
}

impl LiveEngine {
    /// Builds the operator set described by `cfg`.
    pub fn new(cfg: LiveConfig) -> Self {
        let throughput = cfg
            .throughput
            .iter()
            .map(|tp| ThroughputOp::new(tp.clone()))
            .collect();
        let latency = cfg
            .latency
            .iter()
            .map(|(f, t)| {
                LatencyOp::new(
                    f.clone(),
                    t.clone(),
                    cfg.sketch_error,
                    cfg.max_pending_pairs,
                )
            })
            .collect();
        let loss = cfg
            .loss
            .iter()
            .map(|(u, d)| LossOp::new(u.clone(), d.clone(), cfg.max_pending_pairs))
            .collect();
        let detector = AnomalyDetector::new(cfg.detector);
        LiveEngine {
            cfg,
            watermark: WatermarkTracker::new(),
            throughput,
            latency,
            loss,
            detector,
            closed: VecDeque::new(),
            alerts: Vec::new(),
            evict_scratch: Vec::new(),
            records_processed: 0,
            now_ns: 0,
        }
    }

    /// Registers an agent the watermark must wait for, with the skew
    /// estimate used to align its timestamps (None for the local node).
    pub fn register_agent(&mut self, node: &str, skew: Option<SkewEstimate>) {
        self.watermark
            .register_agent(node, skew, self.cfg.allowed_lateness_ns);
    }

    /// Feeds one collection cycle's batch, attributing frontier movement
    /// to the heartbeat embedded in the cycle (`now_ns`, master clock).
    pub fn ingest(&mut self, batch: &RecordBatch, now_ns: u64) {
        self.now_ns = self.now_ns.max(now_ns);
        for group in batch.groups() {
            if group.records.is_empty() {
                continue;
            }
            let m = group.measurement.as_str();
            let tput: Vec<usize> = (0..self.throughput.len())
                .filter(|&i| self.throughput[i].measurement == m)
                .collect();
            let lat: Vec<(usize, Side)> = (0..self.latency.len())
                .filter_map(|i| {
                    let op = &self.latency[i];
                    if op.from == m {
                        Some((i, Side::Up))
                    } else if op.to == m {
                        Some((i, Side::Down))
                    } else {
                        None
                    }
                })
                .collect();
            let loss: Vec<(usize, Side)> = (0..self.loss.len())
                .filter_map(|i| {
                    let op = &self.loss[i];
                    if op.upstream == m {
                        Some((i, Side::Up))
                    } else if op.downstream == m {
                        Some((i, Side::Down))
                    } else {
                        None
                    }
                })
                .collect();
            if tput.is_empty() && lat.is_empty() && loss.is_empty() {
                continue;
            }
            for r in &group.records {
                let ts = self.watermark.align(&group.node, r.timestamp_ns);
                if self.watermark.note_if_late(ts) {
                    continue;
                }
                self.records_processed += 1;
                for &i in &tput {
                    self.throughput[i].push(
                        &self.cfg.window,
                        ts,
                        r.pkt_len as u64,
                        r.has_trace_id(),
                    );
                }
                if r.has_trace_id() {
                    for &(i, side) in &lat {
                        self.latency[i].push(&self.cfg.window, side, r.trace_id, ts);
                    }
                    for &(i, side) in &loss {
                        self.loss[i].push(&self.cfg.window, side, r.trace_id, ts);
                    }
                }
            }
        }
        self.advance();
    }

    /// Advances `node`'s watermark frontier from a heartbeat at master
    /// time `now_ns`, finalizing any windows that became complete.
    pub fn heartbeat(&mut self, node: &str, now_ns: u64) {
        self.now_ns = self.now_ns.max(now_ns);
        self.watermark.heartbeat(node, now_ns);
        self.advance();
    }

    /// Forces every frontier far past all data and finalizes everything
    /// still open — call once at the end of a run. Uses a sentinel well
    /// below `u64::MAX` so window-end arithmetic cannot wrap.
    pub fn finish(&mut self) {
        self.watermark.advance_all(u64::MAX / 4);
        self.advance();
    }

    /// Evicts timed-out pairings, finalizes complete windows, and runs
    /// the anomaly detectors over each newly closed window.
    fn advance(&mut self) {
        let watermark = self.watermark.watermark_ns();
        // checked_sub: until a full timeout has elapsed no entry can have
        // timed out, not even one keyed at t=0.
        if let Some(evict_before) = watermark.checked_sub(self.cfg.pair_timeout_ns) {
            for op in &mut self.latency {
                op.evict(evict_before, &mut self.evict_scratch);
            }
            for op in &mut self.loss {
                op.evict(&self.cfg.window, evict_before, &mut self.evict_scratch);
            }
        }

        // A window is final once even its slowest pairing has resolved.
        let mut to_close: BTreeSet<u64> = BTreeSet::new();
        let complete = |start: u64, spec: &WindowSpec| {
            spec.end(start).saturating_add(self.cfg.pair_timeout_ns) <= watermark
        };
        for op in &self.throughput {
            to_close.extend(op.open_starts().filter(|&s| complete(s, &self.cfg.window)));
        }
        for op in &self.latency {
            to_close.extend(op.open_starts().filter(|&s| complete(s, &self.cfg.window)));
        }
        for op in &self.loss {
            to_close.extend(op.open_starts().filter(|&s| complete(s, &self.cfg.window)));
        }
        for start in to_close {
            let result = WindowResult {
                start_ns: start,
                end_ns: self.cfg.window.end(start),
                throughput: self
                    .throughput
                    .iter_mut()
                    .filter_map(|op| op.close(start).map(|w| (op.measurement.clone(), w)))
                    .collect(),
                latency: self
                    .latency
                    .iter_mut()
                    .filter_map(|op| {
                        op.close(start)
                            .map(|w| (format!("{}->{}", op.from, op.to), w))
                    })
                    .collect(),
                loss: self
                    .loss
                    .iter_mut()
                    .filter_map(|op| {
                        op.close(start)
                            .map(|w| (format!("{}->{}", op.upstream, op.downstream), w))
                    })
                    .collect(),
            };
            self.detector.on_window(&result, &mut self.alerts);
            self.closed.push_back(result);
            while self.closed.len() > self.cfg.max_closed_windows {
                self.closed.pop_front();
            }
        }

        let stalled = self
            .watermark
            .stalled_agents(self.cfg.detector.stall_timeout_ns);
        self.detector
            .on_stall_report(&stalled, self.now_ns, &mut self.alerts);
    }

    /// Finalized windows still in the ring, oldest first.
    pub fn closed_windows(&self) -> impl Iterator<Item = &WindowResult> {
        self.closed.iter()
    }

    /// Removes and returns all finalized windows, oldest first.
    pub fn drain_closed(&mut self) -> Vec<WindowResult> {
        self.closed.drain(..).collect()
    }

    /// Removes and returns all pending alerts, in emission order.
    pub fn drain_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.alerts)
    }

    /// The current global watermark.
    pub fn watermark_ns(&self) -> u64 {
        self.watermark.watermark_ns()
    }

    /// Cumulative latency totals for the `(from, to)` pair, if tracked
    /// and non-empty.
    pub fn latency_total(&self, from: &str, to: &str) -> Option<LatencySummary> {
        self.latency
            .iter()
            .find(|op| op.from == from && op.to == to)
            .and_then(|op| op.total())
    }

    /// Cumulative throughput totals for `tracepoint`, if tracked.
    pub fn throughput_total(&self, tracepoint: &str) -> Option<ThroughputWindow> {
        self.throughput
            .iter()
            .find(|op| op.measurement == tracepoint)
            .map(|op| op.total())
    }

    /// Cumulative loss totals for the `(upstream, downstream)` pair, if
    /// tracked. Pairings still inside the timeout are in neither bucket.
    pub fn loss_total(&self, upstream: &str, downstream: &str) -> Option<LossWindow> {
        self.loss
            .iter()
            .find(|op| op.upstream == upstream && op.downstream == downstream)
            .map(|op| op.total())
    }

    /// Unmatched pairings evicted for the `(upstream, downstream)`
    /// latency pair (no sample could be produced for them).
    pub fn latency_unmatched(&self, from: &str, to: &str) -> Option<u64> {
        self.latency
            .iter()
            .find(|op| op.from == from && op.to == to)
            .map(|op| op.unmatched)
    }

    /// Snapshot of all resident state, for bound checks and debugging.
    pub fn state(&self) -> EngineState {
        EngineState {
            open_windows: self
                .throughput
                .iter()
                .map(|o| o.open_count())
                .sum::<usize>()
                + self.latency.iter().map(|o| o.open_count()).sum::<usize>()
                + self.loss.iter().map(|o| o.open_count()).sum::<usize>(),
            sketch_buckets: self.latency.iter().map(|o| o.bucket_count()).sum(),
            pending_pairs: self.latency.iter().map(|o| o.pending_len()).sum::<usize>()
                + self.loss.iter().map(|o| o.pending_len()).sum::<usize>(),
            closed_windows: self.closed.len(),
            late_records: self.watermark.late_records(),
            records_processed: self.records_processed,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LiveConfig {
        &self.cfg
    }
}

impl IngestSubscriber for LiveEngine {
    fn on_batch(
        &mut self,
        node: &str,
        _heartbeat_seq: u64,
        batch: &RecordBatch,
        _lost_records: u64,
        now: SimTime,
    ) {
        self.ingest(batch, now.as_nanos());
        // The collector forwards the batch-borne heartbeat right after
        // this call; advancing here too (idempotent — frontiers only
        // move forward) keeps the engine correct when driven directly.
        self.heartbeat(node, now.as_nanos());
    }

    fn on_heartbeat(&mut self, node: &str, _seq: u64, now: SimTime) {
        self.heartbeat(node, now.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnet_tsdb::record::CompactRecord;

    fn rec(ts: u64, trace_id: u32, pkt_len: u32) -> CompactRecord {
        CompactRecord {
            timestamp_ns: ts,
            trace_id,
            pkt_len,
            flags: 1,
            ..Default::default()
        }
    }

    fn engine() -> LiveEngine {
        let cfg = LiveConfig::new(WindowSpec::tumbling(1_000_000))
            .track_throughput("tx")
            .track_latency("tx", "rx")
            .track_loss("tx", "rx");
        let mut e = LiveEngine::new(cfg);
        e.register_agent("n1", None);
        e
    }

    fn feed(e: &mut LiveEngine, table: &str, recs: &[CompactRecord], now: u64) {
        let mut b = RecordBatch::new();
        for r in recs {
            b.push(table, "n1", *r);
        }
        e.ingest(&b, now);
        e.heartbeat("n1", now);
    }

    #[test]
    fn windows_close_after_pair_timeout_and_report_all_metrics() {
        let mut e = engine();
        feed(
            &mut e,
            "tx",
            &[
                rec(100_000, 1, 100),
                rec(200_000, 2, 100),
                rec(300_000, 3, 100),
            ],
            100_000,
        );
        feed(
            &mut e,
            "rx",
            &[rec(150_000, 1, 100), rec(260_000, 2, 100)],
            500_000,
        );
        assert!(e.closed_windows().next().is_none(), "window still open");
        // Watermark must pass end (1ms) + pair timeout (10ms).
        e.heartbeat("n1", 12_000_000);
        let closed = e.drain_closed();
        assert_eq!(closed.len(), 1);
        let w = &closed[0];
        assert_eq!(w.start_ns, 0);
        assert_eq!(w.throughput[0].1.count, 3);
        let (_, lat) = &w.latency[0];
        assert_eq!(lat.count, 2);
        assert_eq!(lat.jitter, Some((10_000, 10_000)));
        let (_, loss) = &w.loss[0];
        assert_eq!(loss.seen, 3);
        assert_eq!(loss.delivered, 2);
        assert_eq!(loss.lost, 1, "trace 3 timed out unmatched");
    }

    #[test]
    fn late_records_counted_not_crashing() {
        let mut e = engine();
        e.heartbeat("n1", 5_000_000);
        feed(&mut e, "tx", &[rec(1_000_000, 1, 100)], 5_100_000);
        let s = e.state();
        assert_eq!(s.late_records, 1);
        assert_eq!(s.records_processed, 0);
    }

    #[test]
    fn finish_flushes_everything() {
        let mut e = engine();
        feed(&mut e, "tx", &[rec(100, 1, 100)], 100);
        feed(&mut e, "rx", &[rec(150, 1, 100)], 300);
        assert!(e.closed_windows().next().is_none());
        e.finish();
        let closed = e.drain_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].loss[0].1.delivered, 1);
        assert_eq!(e.state().open_windows, 0);
        assert_eq!(e.state().pending_pairs, 0);
    }

    #[test]
    fn closed_ring_is_bounded() {
        let mut cfg = LiveConfig::new(WindowSpec::tumbling(1_000)).track_throughput("tx");
        cfg.max_closed_windows = 4;
        let mut e = LiveEngine::new(cfg);
        e.register_agent("n1", None);
        for k in 0..100u64 {
            feed(
                &mut e,
                "tx",
                &[rec(k * 1_000, 0, 100), rec(k * 1_000 + 500, 0, 100)],
                k * 1_000 + 600,
            );
        }
        e.finish();
        assert_eq!(e.state().closed_windows, 4);
        let oldest = e.closed_windows().next().unwrap().start_ns;
        assert_eq!(oldest, 96_000, "oldest windows were dropped");
    }

    #[test]
    fn totals_match_cumulative_stream() {
        let mut e = engine();
        for k in 0..10u64 {
            let ts = k * 100_000;
            feed(&mut e, "tx", &[rec(ts, k as u32 + 1, 100)], ts + 1_000);
            feed(
                &mut e,
                "rx",
                &[rec(ts + 5_000, k as u32 + 1, 100)],
                ts + 6_000,
            );
        }
        e.finish();
        let t = e.throughput_total("tx").unwrap();
        assert_eq!(t.count, 10);
        assert_eq!(t.bytes, 10 * 96);
        let l = e.loss_total("tx", "rx").unwrap();
        assert_eq!((l.seen, l.delivered, l.lost), (10, 10, 0));
        let lat = e.latency_total("tx", "rx").unwrap();
        assert_eq!(lat.count, 10);
        assert_eq!(lat.jitter, Some((0, 0)), "constant 5us delay");
    }
}
