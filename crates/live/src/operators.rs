//! Incremental per-window operators: throughput, latency, loss.
//!
//! Each operator maintains O(1)-per-window state updated record by
//! record — no buffering of raw samples. Latency and loss pair records
//! across two tracepoints by trace ID through a [`PairTracker`] whose
//! pending set is bounded two ways: entries older than the pair timeout
//! are evicted as the watermark passes them (an unmatched upstream
//! becomes a loss), and a hard capacity cap force-evicts the oldest
//! entry under overload, so state cannot grow with trace size even if
//! the watermark stalls.

use std::collections::{BTreeMap, HashMap, VecDeque};

use vnet_tsdb::sketch::LogHistogram;
use vnettracer::metrics::{JitterTracker, TRACE_ID_WIRE_BYTES};

use crate::window::WindowSpec;

/// One side of a trace-ID pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The upstream (`from`) tracepoint.
    Up,
    /// The downstream (`to`) tracepoint.
    Down,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    up_ts: Option<u64>,
    down_ts: Option<u64>,
    /// Event time of the first-arriving side — the eviction key.
    key_ts: u64,
}

/// A completed (upstream, downstream) timestamp pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairedSample {
    /// Upstream event timestamp (aligned).
    pub up_ts: u64,
    /// Downstream event timestamp (aligned).
    pub down_ts: u64,
}

/// An entry evicted unmatched: at most one side ever arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The upstream timestamp, if the upstream record arrived.
    pub up_ts: Option<u64>,
    /// The downstream timestamp, if the downstream record arrived.
    pub down_ts: Option<u64>,
}

/// Bounded trace-ID pairing state shared by the latency and loss
/// operators. Either side may arrive first; the first record per
/// (id, side) wins, matching the offline join's first-record rule.
#[derive(Debug, Default)]
pub struct PairTracker {
    pending: HashMap<u32, Pending>,
    fifo: VecDeque<(u32, u64)>,
    max_pending: usize,
}

impl PairTracker {
    /// Creates a tracker holding at most `max_pending` unmatched entries.
    pub fn new(max_pending: usize) -> Self {
        PairTracker {
            pending: HashMap::new(),
            fifo: VecDeque::new(),
            max_pending: max_pending.max(1),
        }
    }

    /// Number of unmatched entries currently held.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one record; returns the completed pair when this record
    /// matched the opposite side. `overflow` collects entries
    /// force-evicted by the capacity cap.
    pub fn observe(
        &mut self,
        trace_id: u32,
        side: Side,
        ts: u64,
        overflow: &mut Vec<Evicted>,
    ) -> Option<PairedSample> {
        match self.pending.get_mut(&trace_id) {
            Some(p) => {
                match side {
                    Side::Up if p.up_ts.is_none() => p.up_ts = Some(ts),
                    Side::Down if p.down_ts.is_none() => p.down_ts = Some(ts),
                    // A duplicate of an already-seen side: first wins.
                    _ => return None,
                }
                if let (Some(up_ts), Some(down_ts)) = (p.up_ts, p.down_ts) {
                    self.pending.remove(&trace_id);
                    return Some(PairedSample { up_ts, down_ts });
                }
                None
            }
            None => {
                let p = match side {
                    Side::Up => Pending {
                        up_ts: Some(ts),
                        down_ts: None,
                        key_ts: ts,
                    },
                    Side::Down => Pending {
                        up_ts: None,
                        down_ts: Some(ts),
                        key_ts: ts,
                    },
                };
                self.pending.insert(trace_id, p);
                self.fifo.push_back((trace_id, ts));
                while self.pending.len() > self.max_pending {
                    if let Some(e) = self.pop_front_live() {
                        overflow.push(e);
                    } else {
                        break;
                    }
                }
                None
            }
        }
    }

    /// Pops the oldest still-pending entry, skipping stale fifo slots
    /// left behind by completed pairs.
    fn pop_front_live(&mut self) -> Option<Evicted> {
        while let Some((id, ts)) = self.fifo.pop_front() {
            if let Some(p) = self.pending.get(&id) {
                if p.key_ts == ts {
                    let p = self.pending.remove(&id).expect("just found");
                    return Some(Evicted {
                        up_ts: p.up_ts,
                        down_ts: p.down_ts,
                    });
                }
            }
        }
        None
    }

    /// Evicts every entry whose first arrival is at or below
    /// `threshold_ts` — called as the watermark passes the pair timeout.
    pub fn evict_older_than(&mut self, threshold_ts: u64, out: &mut Vec<Evicted>) {
        loop {
            match self.fifo.front() {
                Some(&(id, ts)) if ts <= threshold_ts => {
                    self.fifo.pop_front();
                    if let Some(p) = self.pending.get(&id) {
                        if p.key_ts == ts {
                            let p = self.pending.remove(&id).expect("just found");
                            out.push(Evicted {
                                up_ts: p.up_ts,
                                down_ts: p.down_ts,
                            });
                        }
                    }
                }
                _ => break,
            }
        }
    }
}

/// Per-window throughput accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ThroughputWindow {
    /// Records in the window.
    pub count: u64,
    /// Effective wire bytes (packet length minus the trace-ID trailer).
    pub bytes: u64,
    /// Earliest record timestamp.
    pub first_ts: u64,
    /// Latest record timestamp.
    pub last_ts: u64,
}

impl ThroughputWindow {
    fn push(&mut self, ts: u64, bytes: u64) {
        if self.count == 0 {
            self.first_ts = ts;
            self.last_ts = ts;
        } else {
            self.first_ts = self.first_ts.min(ts);
            self.last_ts = self.last_ts.max(ts);
        }
        self.count += 1;
        self.bytes += bytes;
    }

    /// Throughput in bits/second over the records' own span (the
    /// paper's `Σ(S_i − S_ID)/(T_N − T_1)` formula applied window-
    /// locally); 0 with fewer than two records.
    pub fn bps(&self) -> f64 {
        if self.count < 2 || self.last_ts == self.first_ts {
            return 0.0;
        }
        (self.bytes * 8) as f64 / ((self.last_ts - self.first_ts) as f64 / 1e9)
    }
}

/// Streaming throughput at one tracepoint: per-window accumulators plus
/// exact running totals (which reproduce the offline whole-table
/// computation without a scan).
#[derive(Debug)]
pub struct ThroughputOp {
    /// The traced tracepoint (table) name.
    pub measurement: String,
    windows: BTreeMap<u64, ThroughputWindow>,
    total: ThroughputWindow,
}

impl ThroughputOp {
    pub(crate) fn new(measurement: String) -> Self {
        ThroughputOp {
            measurement,
            windows: BTreeMap::new(),
            total: ThroughputWindow::default(),
        }
    }

    pub(crate) fn push(&mut self, spec: &WindowSpec, ts: u64, pkt_len: u64, has_trace_id: bool) {
        let bytes = pkt_len.saturating_sub(if has_trace_id { TRACE_ID_WIRE_BYTES } else { 0 });
        for start in spec.windows(ts) {
            self.windows.entry(start).or_default().push(ts, bytes);
        }
        self.total.push(ts, bytes);
    }

    pub(crate) fn close(&mut self, start: u64) -> Option<ThroughputWindow> {
        self.windows.remove(&start)
    }

    pub(crate) fn open_starts(&self) -> impl Iterator<Item = u64> + '_ {
        self.windows.keys().copied()
    }

    pub(crate) fn open_count(&self) -> usize {
        self.windows.len()
    }

    /// Exact running totals since the engine started.
    pub fn total(&self) -> ThroughputWindow {
        self.total
    }
}

/// Summary of one window's latency distribution, extracted from the
/// window's sketch and jitter tracker at close time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of paired samples.
    pub count: u64,
    /// Median, within the sketch's relative error.
    pub p50_ns: u64,
    /// 95th percentile, within the sketch's relative error.
    pub p95_ns: u64,
    /// 99th percentile, within the sketch's relative error.
    pub p99_ns: u64,
    /// Exact mean.
    pub mean_ns: f64,
    /// Exact (min, max) successive-difference jitter range; `None`
    /// before two samples.
    pub jitter: Option<(i64, i64)>,
    /// RFC 3550 smoothed jitter.
    pub smoothed_jitter_ns: f64,
}

#[derive(Debug)]
struct LatencyWindow {
    sketch: LogHistogram,
    jitter: JitterTracker,
}

impl LatencyWindow {
    fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.sketch.count(),
            p50_ns: self.sketch.quantile(0.50).unwrap_or(0),
            p95_ns: self.sketch.quantile(0.95).unwrap_or(0),
            p99_ns: self.sketch.quantile(0.99).unwrap_or(0),
            mean_ns: self.sketch.mean(),
            jitter: self.jitter.range(),
            smoothed_jitter_ns: self.jitter.smoothed_ns(),
        }
    }
}

/// Streaming two-tracepoint latency: trace-ID pairing feeding one
/// log-bucketed sketch and jitter tracker per window (plus cumulative
/// ones), assigned to the window containing the *downstream* timestamp.
#[derive(Debug)]
pub struct LatencyOp {
    /// Upstream tracepoint name.
    pub from: String,
    /// Downstream tracepoint name.
    pub to: String,
    pairs: PairTracker,
    windows: BTreeMap<u64, LatencyWindow>,
    total_sketch: LogHistogram,
    total_jitter: JitterTracker,
    sketch_error: f64,
    /// Pairs whose delta came out negative (clock inversion beyond the
    /// skew estimate) — dropped, as offline data cleaning would.
    pub negative_dropped: u64,
    /// Pairs evicted unmatched (no latency sample possible).
    pub unmatched: u64,
}

impl LatencyOp {
    pub(crate) fn new(from: String, to: String, sketch_error: f64, max_pending: usize) -> Self {
        LatencyOp {
            from,
            to,
            pairs: PairTracker::new(max_pending),
            windows: BTreeMap::new(),
            total_sketch: LogHistogram::with_relative_error(sketch_error),
            total_jitter: JitterTracker::new(),
            sketch_error,
            negative_dropped: 0,
            unmatched: 0,
        }
    }

    pub(crate) fn push(&mut self, spec: &WindowSpec, side: Side, trace_id: u32, ts: u64) {
        let mut overflow = Vec::new();
        if let Some(pair) = self.pairs.observe(trace_id, side, ts, &mut overflow) {
            self.record_pair(spec, pair);
        }
        self.unmatched += overflow.len() as u64;
    }

    fn record_pair(&mut self, spec: &WindowSpec, pair: PairedSample) {
        let Some(delta) = pair.down_ts.checked_sub(pair.up_ts) else {
            self.negative_dropped += 1;
            return;
        };
        let err = self.sketch_error;
        for start in spec.windows(pair.down_ts) {
            let w = self.windows.entry(start).or_insert_with(|| LatencyWindow {
                sketch: LogHistogram::with_relative_error(err),
                jitter: JitterTracker::new(),
            });
            w.sketch.record(delta);
            w.jitter.push(delta);
        }
        self.total_sketch.record(delta);
        self.total_jitter.push(delta);
    }

    pub(crate) fn evict(&mut self, threshold_ts: u64, scratch: &mut Vec<Evicted>) {
        scratch.clear();
        self.pairs.evict_older_than(threshold_ts, scratch);
        self.unmatched += scratch.len() as u64;
    }

    pub(crate) fn close(&mut self, start: u64) -> Option<LatencySummary> {
        self.windows.remove(&start).map(|w| w.summary())
    }

    pub(crate) fn open_starts(&self) -> impl Iterator<Item = u64> + '_ {
        self.windows.keys().copied()
    }

    pub(crate) fn open_count(&self) -> usize {
        self.windows.len()
    }

    pub(crate) fn pending_len(&self) -> usize {
        self.pairs.pending_len()
    }

    pub(crate) fn bucket_count(&self) -> usize {
        self.windows
            .values()
            .map(|w| w.sketch.bucket_count())
            .sum::<usize>()
            + self.total_sketch.bucket_count()
    }

    /// Cumulative latency summary since the engine started, within the
    /// sketch's documented error for percentiles and exact for the
    /// jitter range (same [`JitterTracker`] as the offline path).
    pub fn total(&self) -> Option<LatencySummary> {
        if self.total_sketch.count() == 0 {
            return None;
        }
        Some(LatencySummary {
            count: self.total_sketch.count(),
            p50_ns: self.total_sketch.quantile(0.50).unwrap_or(0),
            p95_ns: self.total_sketch.quantile(0.95).unwrap_or(0),
            p99_ns: self.total_sketch.quantile(0.99).unwrap_or(0),
            mean_ns: self.total_sketch.mean(),
            jitter: self.total_jitter.range(),
            smoothed_jitter_ns: self.total_jitter.smoothed_ns(),
        })
    }
}

/// Per-window loss accumulator: upstream arrivals against completed and
/// timed-out pairings, keyed by the *upstream* timestamp's window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossWindow {
    /// Upstream records seen (`N_i`, window-local).
    pub seen: u64,
    /// Upstream records matched downstream.
    pub delivered: u64,
    /// Upstream records evicted unmatched after the pair timeout.
    pub lost: u64,
}

impl LossWindow {
    /// `R_loss = N_loss / N_i`, 0 when nothing was seen.
    pub fn rate(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.lost as f64 / self.seen as f64
        }
    }
}

/// Streaming two-tracepoint loss: trace-ID pairing with timeout-based
/// eviction. An upstream record that outlives the pair timeout without a
/// downstream match is a loss; downstream-only entries evict silently.
#[derive(Debug)]
pub struct LossOp {
    /// Upstream tracepoint name.
    pub upstream: String,
    /// Downstream tracepoint name.
    pub downstream: String,
    pairs: PairTracker,
    windows: BTreeMap<u64, LossWindow>,
    total: LossWindow,
}

impl LossOp {
    pub(crate) fn new(upstream: String, downstream: String, max_pending: usize) -> Self {
        LossOp {
            upstream,
            downstream,
            pairs: PairTracker::new(max_pending),
            windows: BTreeMap::new(),
            total: LossWindow::default(),
        }
    }

    pub(crate) fn push(&mut self, spec: &WindowSpec, side: Side, trace_id: u32, ts: u64) {
        if side == Side::Up {
            for start in spec.windows(ts) {
                self.windows.entry(start).or_default().seen += 1;
            }
            self.total.seen += 1;
        }
        let mut overflow = Vec::new();
        if let Some(pair) = self.pairs.observe(trace_id, side, ts, &mut overflow) {
            for start in spec.windows(pair.up_ts) {
                self.windows.entry(start).or_default().delivered += 1;
            }
            self.total.delivered += 1;
        }
        self.account_evictions(spec, &overflow);
    }

    pub(crate) fn evict(
        &mut self,
        spec: &WindowSpec,
        threshold_ts: u64,
        scratch: &mut Vec<Evicted>,
    ) {
        scratch.clear();
        self.pairs.evict_older_than(threshold_ts, scratch);
        let evicted = std::mem::take(scratch);
        self.account_evictions(spec, &evicted);
        *scratch = evicted;
    }

    fn account_evictions(&mut self, spec: &WindowSpec, evicted: &[Evicted]) {
        for e in evicted {
            // Only an unmatched *upstream* is a lost packet; an orphan
            // downstream record has no upstream baseline to count
            // against (the offline N_i − N_j clamps these to zero too).
            if let (Some(up_ts), None) = (e.up_ts, e.down_ts) {
                for start in spec.windows(up_ts) {
                    self.windows.entry(start).or_default().lost += 1;
                }
                self.total.lost += 1;
            }
        }
    }

    pub(crate) fn close(&mut self, start: u64) -> Option<LossWindow> {
        self.windows.remove(&start)
    }

    pub(crate) fn open_starts(&self) -> impl Iterator<Item = u64> + '_ {
        self.windows.keys().copied()
    }

    pub(crate) fn open_count(&self) -> usize {
        self.windows.len()
    }

    pub(crate) fn pending_len(&self) -> usize {
        self.pairs.pending_len()
    }

    /// Cumulative loss totals since the engine started. `lost` counts
    /// only finalized (timed-out) pairs; entries still inside the pair
    /// timeout are neither delivered nor lost yet.
    pub fn total(&self) -> LossWindow {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WindowSpec {
        WindowSpec::tumbling(1_000)
    }

    #[test]
    fn pair_tracker_matches_either_order() {
        let mut t = PairTracker::new(16);
        let mut ov = Vec::new();
        assert_eq!(t.observe(1, Side::Up, 100, &mut ov), None);
        assert_eq!(
            t.observe(1, Side::Down, 150, &mut ov),
            Some(PairedSample {
                up_ts: 100,
                down_ts: 150
            })
        );
        // Downstream first (cross-agent drain order).
        assert_eq!(t.observe(2, Side::Down, 300, &mut ov), None);
        assert_eq!(
            t.observe(2, Side::Up, 250, &mut ov),
            Some(PairedSample {
                up_ts: 250,
                down_ts: 300
            })
        );
        assert_eq!(t.pending_len(), 0);
        assert!(ov.is_empty());
    }

    #[test]
    fn pair_tracker_first_record_wins() {
        let mut t = PairTracker::new(16);
        let mut ov = Vec::new();
        t.observe(1, Side::Up, 100, &mut ov);
        t.observe(1, Side::Up, 120, &mut ov); // duplicate upstream
        let pair = t.observe(1, Side::Down, 150, &mut ov).unwrap();
        assert_eq!(pair.up_ts, 100);
    }

    #[test]
    fn timeout_eviction_reports_unmatched() {
        let mut t = PairTracker::new(16);
        let mut ov = Vec::new();
        t.observe(1, Side::Up, 100, &mut ov);
        t.observe(2, Side::Up, 500, &mut ov);
        t.observe(1, Side::Down, 140, &mut ov); // 1 completes
        let mut evicted = Vec::new();
        t.evict_older_than(400, &mut evicted);
        assert!(evicted.is_empty(), "2 is newer than the threshold");
        t.evict_older_than(500, &mut evicted);
        assert_eq!(
            evicted,
            vec![Evicted {
                up_ts: Some(500),
                down_ts: None
            }]
        );
        assert_eq!(t.pending_len(), 0);
    }

    #[test]
    fn capacity_cap_force_evicts_oldest() {
        let mut t = PairTracker::new(2);
        let mut ov = Vec::new();
        t.observe(1, Side::Up, 100, &mut ov);
        t.observe(2, Side::Up, 200, &mut ov);
        t.observe(3, Side::Up, 300, &mut ov);
        assert_eq!(t.pending_len(), 2);
        assert_eq!(
            ov,
            vec![Evicted {
                up_ts: Some(100),
                down_ts: None
            }]
        );
    }

    #[test]
    fn throughput_windows_and_totals() {
        let mut op = ThroughputOp::new("rx".into());
        // Two windows: [0,1000) and [1000,2000); 104-byte tagged packets.
        for ts in [0u64, 500, 999, 1_000, 1_500] {
            op.push(&spec(), ts, 104, true);
        }
        let w0 = op.close(0).unwrap();
        assert_eq!(w0.count, 3);
        assert_eq!(w0.bytes, 300);
        assert_eq!(w0.first_ts, 0);
        assert_eq!(w0.last_ts, 999);
        let expected = (300.0 * 8.0) / (999.0 / 1e9);
        assert!((w0.bps() - expected).abs() < 1e-6);
        let total = op.total();
        assert_eq!(total.count, 5);
        assert_eq!(total.bytes, 500);
        assert_eq!(total.first_ts, 0);
        assert_eq!(total.last_ts, 1_500);
    }

    #[test]
    fn latency_op_pairs_into_downstream_window() {
        let mut op = LatencyOp::new("a".into(), "b".into(), 0.01, 1024);
        op.push(&spec(), Side::Up, 7, 900);
        op.push(&spec(), Side::Down, 7, 1_100); // delta 200, window 1000
        op.push(&spec(), Side::Up, 8, 950);
        op.push(&spec(), Side::Down, 8, 1_250); // delta 300, window 1000
        assert!(op.close(0).is_none(), "samples land in the down window");
        let s = op.close(1_000).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.jitter, Some((100, 100)));
        assert!((s.mean_ns - 250.0).abs() < 1e-9);
        let total = op.total().unwrap();
        assert_eq!(total.count, 2);
    }

    #[test]
    fn latency_negative_deltas_dropped() {
        let mut op = LatencyOp::new("a".into(), "b".into(), 0.01, 1024);
        op.push(&spec(), Side::Up, 7, 2_000);
        op.push(&spec(), Side::Down, 7, 1_500);
        assert_eq!(op.negative_dropped, 1);
        assert!(op.total().is_none());
    }

    #[test]
    fn loss_op_counts_seen_delivered_lost() {
        let mut op = LossOp::new("a".into(), "b".into(), 1024);
        let s = spec();
        op.push(&s, Side::Up, 1, 100);
        op.push(&s, Side::Up, 2, 200);
        op.push(&s, Side::Up, 3, 300);
        op.push(&s, Side::Down, 1, 150);
        let mut scratch = Vec::new();
        op.evict(&s, 400, &mut scratch);
        let w = op.close(0).unwrap();
        assert_eq!(w.seen, 3);
        assert_eq!(w.delivered, 1);
        assert_eq!(w.lost, 2);
        assert!((w.rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(op.total().lost, 2);
    }

    #[test]
    fn loss_orphan_downstream_is_not_a_loss() {
        let mut op = LossOp::new("a".into(), "b".into(), 1024);
        let s = spec();
        op.push(&s, Side::Down, 9, 100);
        let mut scratch = Vec::new();
        op.evict(&s, 1_000, &mut scratch);
        assert_eq!(op.total(), LossWindow::default());
        assert!(op.close(0).is_none());
    }
}
