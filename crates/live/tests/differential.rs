//! Differential suite: the streaming engine must agree with the offline
//! pipeline once watermarks have passed all data.
//!
//! Each case generates a random paired packet stream, feeds the same
//! records to (a) a `TraceDb` analyzed by the offline
//! `vnettracer::metrics` functions and (b) a `LiveEngine` driven batch
//! by batch with heartbeats, then compares after `finish()`:
//!
//! * throughput and loss — exactly (same integer arithmetic);
//! * the jitter range and RFC 3550 smoothed jitter — exactly (both
//!   sides feed the same `JitterTracker` in the same sample order);
//! * latency percentiles — within the sketch's relative error bound
//!   against the exact nearest-rank values.

use proptest::prelude::*;
use vnet_live::{LiveConfig, LiveEngine, WindowSpec};
use vnet_tsdb::record::CompactRecord;
use vnet_tsdb::{RecordBatch, TraceDb};
use vnettracer::metrics;

/// One generated packet: inter-arrival gap, one-way delay, whether the
/// downstream tracepoint sees it, and its size.
#[derive(Debug, Clone, Copy)]
struct Pkt {
    gap_ns: u64,
    delay_ns: u64,
    delivered: bool,
    pkt_len: u32,
}

prop_compose! {
    fn arb_pkt()(
        gap_ns in 1u64..5_000,
        delay_ns in 0u64..50_000,
        deliver_roll in 0u8..100,
        pkt_len in 50u32..1_500,
    ) -> Pkt {
        // ~85% of packets make it to the downstream tracepoint.
        Pkt { gap_ns, delay_ns, delivered: deliver_roll < 85, pkt_len }
    }
}

fn rec(ts: u64, trace_id: u32, pkt_len: u32) -> CompactRecord {
    CompactRecord {
        timestamp_ns: ts,
        trace_id,
        pkt_len,
        flags: 1,
        ..Default::default()
    }
}

/// Exact nearest-rank percentile over a sorted slice.
fn exact_pct(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Feeds the stream to both pipelines: cycles of up to 16 packets, each
/// cycle one `RecordBatch` (ups then downs, generation order) followed
/// by heartbeats at the cycle's last upstream timestamp — a frontier no
/// future record can undercut.
fn run_both(pkts: &[Pkt], sketch_error: f64) -> (TraceDb, LiveEngine) {
    let cfg = LiveConfig {
        sketch_error,
        ..LiveConfig::new(WindowSpec::tumbling(20_000))
            .track_throughput("up")
            .track_throughput("down")
            .track_latency("up", "down")
            .track_loss("up", "down")
    };
    let mut engine = LiveEngine::new(cfg);
    engine.register_agent("n1", None);
    engine.register_agent("n2", None);

    let mut db = TraceDb::new();
    let mut batch = RecordBatch::new();
    let mut t1 = 0u64;
    for (cycle_idx, cycle) in pkts.chunks(16).enumerate() {
        batch.clear();
        let mut last_t1 = t1;
        for (j, p) in cycle.iter().enumerate() {
            t1 += p.gap_ns;
            last_t1 = t1;
            let id = (cycle_idx * 16 + j) as u32 + 1;
            batch.push("up", "n1", rec(t1, id, p.pkt_len));
            if p.delivered {
                batch.push("down", "n2", rec(t1 + p.delay_ns, id, p.pkt_len));
            }
        }
        db.insert_batch(&batch);
        engine.ingest(&batch, last_t1);
        engine.heartbeat("n1", last_t1);
        engine.heartbeat("n2", last_t1);
    }
    engine.finish();
    (db, engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Throughput and loss totals match the offline scan exactly.
    #[test]
    fn throughput_and_loss_exact(pkts in proptest::collection::vec(arb_pkt(), 2..300)) {
        let (db, engine) = run_both(&pkts, 0.01);

        for table in ["up", "down"] {
            let offline = metrics::throughput_at(&db, table);
            let live = engine.throughput_total(table).unwrap().bps();
            prop_assert!(
                (offline - live).abs() <= offline.abs() * 1e-12,
                "throughput at {}: offline {} vs live {}", table, offline, live
            );
        }

        let offline = metrics::packet_loss(&db, "up", "down");
        let live = engine.loss_total("up", "down").unwrap();
        prop_assert_eq!(live.seen, offline.upstream);
        prop_assert_eq!(live.lost, offline.lost);
        prop_assert_eq!(live.seen - live.delivered, offline.lost);
        // No record was dropped as late and none is still pending.
        let state = engine.state();
        prop_assert_eq!(state.late_records, 0);
        prop_assert_eq!(state.pending_pairs, 0);
    }

    /// The jitter range and smoothed jitter match exactly: the offline
    /// join yields samples in the same order the engine completes them.
    #[test]
    fn jitter_exact(pkts in proptest::collection::vec(arb_pkt(), 2..300)) {
        let (db, engine) = run_both(&pkts, 0.01);
        let samples = metrics::latency_between(&db, "up", "down", None);
        let offline = metrics::jitter_range(&samples);
        match engine.latency_total("up", "down") {
            Some(live) => {
                prop_assert_eq!(live.jitter, offline);
                // Same f64 recurrence over the same sequence.
                let mut tracker = metrics::JitterTracker::new();
                for &s in &samples {
                    tracker.push(s);
                }
                prop_assert_eq!(live.smoothed_jitter_ns, tracker.smoothed_ns());
                prop_assert_eq!(live.count, samples.len() as u64);
            }
            None => prop_assert!(samples.is_empty()),
        }
    }

    /// Latency percentiles agree with the exact nearest-rank values
    /// within the sketch's relative-error bound.
    #[test]
    fn latency_percentiles_within_sketch_error(
        pkts in proptest::collection::vec(arb_pkt(), 10..300),
        alpha_mil in 5u64..50,
    ) {
        let alpha = alpha_mil as f64 / 1_000.0;
        let (db, engine) = run_both(&pkts, alpha);
        let mut samples = metrics::latency_between(&db, "up", "down", None);
        samples.sort_unstable();
        if !samples.is_empty() {
            let live = engine.latency_total("up", "down").unwrap();
            for (q, est) in [(0.50, live.p50_ns), (0.95, live.p95_ns), (0.99, live.p99_ns)] {
                let exact = exact_pct(&samples, q);
                let bound = alpha * exact as f64 + 1.0;
                prop_assert!(
                    (est as f64 - exact as f64).abs() <= bound,
                    "q={}: sketch {} vs exact {} (alpha {})", q, est, exact, alpha
                );
            }
        }
    }

    /// Tumbling windows partition the stream: per-window counts sum to
    /// the totals, so nothing is dropped or double-counted on the way
    /// from open state to finalized windows.
    #[test]
    fn closed_windows_partition_the_stream(
        pkts in proptest::collection::vec(arb_pkt(), 2..300),
    ) {
        let (_db, mut engine) = run_both(&pkts, 0.01);
        let totals = engine.loss_total("up", "down").unwrap();
        let up_total = engine.throughput_total("up").unwrap();
        let closed = engine.drain_closed();
        let mut seen = 0u64;
        let mut delivered = 0u64;
        let mut lost = 0u64;
        let mut up_count = 0u64;
        for w in &closed {
            for (_, l) in &w.loss {
                seen += l.seen;
                delivered += l.delivered;
                lost += l.lost;
            }
            for (name, t) in &w.throughput {
                if name == "up" {
                    up_count += t.count;
                }
            }
        }
        prop_assert_eq!(seen, totals.seen);
        prop_assert_eq!(delivered, totals.delivered);
        prop_assert_eq!(lost, totals.lost);
        prop_assert_eq!(up_count, up_total.count);
        prop_assert_eq!(seen, delivered + lost, "every packet resolves");
    }
}
