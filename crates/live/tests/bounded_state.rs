//! Memory-bound check: a million-record stream must not grow the
//! engine's resident state.
//!
//! The whole point of the streaming tier is that the trace database can
//! keep growing while the analysis state does not. This test pushes
//! over a million records through a fully loaded engine (throughput ×2,
//! latency, loss) cycle by cycle — the same drive pattern the collector
//! produces — sampling the [`EngineState`] accounting after every cycle
//! and asserting each component stays under a fixed cap that does not
//! depend on how much has been ingested.

use vnet_live::{EngineState, LiveConfig, LiveEngine, WindowSpec};
use vnet_tsdb::record::CompactRecord;
use vnet_tsdb::RecordBatch;

/// Packets per collection cycle (2 records each: up + down).
const CYCLE: u64 = 512;
/// Cycles to run: > 1M records in total (each packet yields an upstream
/// record and, for 9 in 10, a downstream one).
const CYCLES: u64 = 1_100;
/// Event-time gap between packets.
const STEP_NS: u64 = 100;

fn rec(ts: u64, trace_id: u32) -> CompactRecord {
    CompactRecord {
        timestamp_ns: ts,
        trace_id,
        pkt_len: 100,
        flags: 1,
        ..Default::default()
    }
}

#[test]
fn million_records_bounded_state() {
    let mut cfg = LiveConfig::new(WindowSpec::tumbling(100_000))
        .track_throughput("up")
        .track_throughput("down")
        .track_latency("up", "down")
        .track_loss("up", "down");
    // A tight pair timeout keeps windows finalizing close behind the
    // stream; the ring and pending caps are the hard backstops.
    cfg.pair_timeout_ns = 200_000;
    cfg.max_closed_windows = 32;
    cfg.max_pending_pairs = 8_192;
    let max_sketch_buckets = 4 * 512; // few open windows + totals, each bounded

    let mut engine = LiveEngine::new(cfg);
    engine.register_agent("n1", None);
    engine.register_agent("n2", None);

    let mut batch = RecordBatch::new();
    let mut peak = EngineState {
        open_windows: 0,
        sketch_buckets: 0,
        pending_pairs: 0,
        closed_windows: 0,
        late_records: 0,
        records_processed: 0,
    };
    let mut closed_total = 0usize;
    for cycle in 0..CYCLES {
        batch.clear();
        let base = cycle * CYCLE;
        for j in 0..CYCLE {
            let i = base + j;
            let ts = i * STEP_NS;
            let id = (i % u64::from(u32::MAX)) as u32;
            batch.push("up", "n1", rec(ts, id));
            // Every 10th packet is lost upstream of the second tap.
            if !i.is_multiple_of(10) {
                batch.push("down", "n2", rec(ts + 50, id));
            }
        }
        let now = (base + CYCLE) * STEP_NS;
        engine.ingest(&batch, now);
        engine.heartbeat("n1", now);
        engine.heartbeat("n2", now);
        closed_total += engine.drain_closed().len();

        let s = engine.state();
        peak.open_windows = peak.open_windows.max(s.open_windows);
        peak.sketch_buckets = peak.sketch_buckets.max(s.sketch_buckets);
        peak.pending_pairs = peak.pending_pairs.max(s.pending_pairs);
        peak.closed_windows = peak.closed_windows.max(s.closed_windows);
    }
    engine.finish();
    closed_total += engine.drain_closed().len();
    let end = engine.state();

    // Volume: the stream really was > 1M records, none dropped as late.
    assert!(
        end.records_processed > 1_000_000,
        "processed {} records",
        end.records_processed
    );
    assert_eq!(end.late_records, 0);
    // ~560 windows span the stream; nearly all must finalize in flight
    // rather than pile up until the end.
    assert!(closed_total > 500, "only {closed_total} windows finalized");

    // The caps: every resident component stayed bounded at its peak,
    // independent of the million records that flowed through.
    assert!(
        peak.open_windows <= 64,
        "peak open windows {}",
        peak.open_windows
    );
    assert!(
        peak.sketch_buckets <= max_sketch_buckets,
        "peak sketch buckets {}",
        peak.sketch_buckets
    );
    assert!(
        peak.pending_pairs <= 8_192,
        "peak pending pairs {}",
        peak.pending_pairs
    );
    assert!(
        peak.closed_windows <= 32,
        "peak closed ring {}",
        peak.closed_windows
    );

    // And the stream still resolved correctly: 1 in 10 packets lost.
    let loss = engine.loss_total("up", "down").unwrap();
    assert_eq!(loss.seen, CYCLE * CYCLES);
    assert_eq!(loss.lost, loss.seen / 10 + (loss.seen % 10).min(1));
    assert_eq!(loss.seen, loss.delivered + loss.lost);
}
