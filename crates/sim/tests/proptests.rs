//! Property-based tests for the packet codecs and trace-ID operations.

use proptest::prelude::*;
use std::net::{Ipv4Addr, SocketAddrV4};
use vnet_sim::packet::{
    trace_id, vxlan_decapsulate, vxlan_encapsulate, FlowKey, Ipv4Header, PacketBuilder, TcpFlags,
    TcpOption, ETHERNET_HEADER_LEN,
};

prop_compose! {
    fn arb_ip()(a in 1u8..=254, b in 0u8..=255, c in 0u8..=255, d in 1u8..=254) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }
}

prop_compose! {
    fn arb_udp_flow()(src in arb_ip(), dst in arb_ip(), sp in 1u16..=65535, dp in 1u16..=65535)
        -> FlowKey
    {
        FlowKey::udp(SocketAddrV4::new(src, sp), SocketAddrV4::new(dst, dp))
    }
}

prop_compose! {
    fn arb_tcp_flow()(src in arb_ip(), dst in arb_ip(), sp in 1u16..=65535, dp in 1u16..=65535)
        -> FlowKey
    {
        FlowKey::tcp(SocketAddrV4::new(src, sp), SocketAddrV4::new(dst, dp))
    }
}

proptest! {
    /// Any built UDP frame parses back to its flow and payload, with a
    /// valid IP checksum.
    #[test]
    fn udp_build_parse_round_trip(flow in arb_udp_flow(), payload in proptest::collection::vec(any::<u8>(), 0..1400)) {
        let pkt = PacketBuilder::udp(flow, payload.clone()).build();
        let parsed = pkt.parse().expect("parses");
        prop_assert_eq!(parsed.flow(), flow);
        prop_assert_eq!(parsed.payload, &payload[..]);
        prop_assert!(Ipv4Header::checksum_valid(&pkt.bytes()[ETHERNET_HEADER_LEN..]));
    }

    /// Any built TCP frame parses back, including its options.
    #[test]
    fn tcp_build_parse_round_trip(
        flow in arb_tcp_flow(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
        with_mss in any::<bool>(),
        id in any::<u32>(),
    ) {
        let mut b = PacketBuilder::tcp(flow, seq, ack, TcpFlags::ACK, payload.clone());
        if with_mss {
            b = b.tcp_option(TcpOption::Mss(1460));
        }
        let pkt = b.tcp_option(TcpOption::TraceId(id)).build();
        let parsed = pkt.parse().expect("parses");
        prop_assert_eq!(parsed.flow(), flow);
        prop_assert_eq!(parsed.payload, &payload[..]);
        prop_assert_eq!(parsed.tcp_trace_id(), Some(id));
    }

    /// UDP trace-ID inject → strip restores the exact original bytes
    /// (application transparency), for any payload and ID.
    #[test]
    fn udp_trace_id_transparency(
        flow in arb_udp_flow(),
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
        id in any::<u32>(),
    ) {
        let original = PacketBuilder::udp(flow, payload).build();
        let mut pkt = original.clone();
        trace_id::inject_udp_trailer(&mut pkt, id).expect("inject");
        prop_assert_eq!(trace_id::read_udp_trailer(&pkt), Some(id));
        let recovered = trace_id::strip_udp_trailer(&mut pkt).expect("strip");
        prop_assert_eq!(recovered, id);
        prop_assert_eq!(pkt.bytes(), original.bytes());
    }

    /// TCP trace-ID injection preserves payload, flow and checksum.
    #[test]
    fn tcp_trace_id_preserves_frame(
        flow in arb_tcp_flow(),
        payload in proptest::collection::vec(any::<u8>(), 0..1000),
        id in any::<u32>(),
    ) {
        let mut pkt = PacketBuilder::tcp(flow, 5, 6, TcpFlags::PSH, payload.clone()).build();
        trace_id::inject_tcp_option(&mut pkt, id).expect("inject");
        let parsed = pkt.parse().expect("still parses");
        prop_assert_eq!(parsed.tcp_trace_id(), Some(id));
        prop_assert_eq!(parsed.payload, &payload[..]);
        prop_assert_eq!(parsed.flow(), flow);
        prop_assert!(Ipv4Header::checksum_valid(&pkt.bytes()[ETHERNET_HEADER_LEN..]));
    }

    /// VXLAN encapsulation round-trips any inner frame bit-exactly.
    #[test]
    fn vxlan_round_trip(
        flow in arb_udp_flow(),
        payload in proptest::collection::vec(any::<u8>(), 0..1300),
        vni in 0u32..(1 << 24),
        outer_src in arb_ip(),
        outer_dst in arb_ip(),
        sport in 1u16..=65535,
    ) {
        let inner = PacketBuilder::udp(flow, payload).build();
        let outer = vxlan_encapsulate(&inner, vni, outer_src, outer_dst, sport);
        let (got_vni, recovered) = vxlan_decapsulate(&outer).expect("decaps");
        prop_assert_eq!(got_vni, vni);
        prop_assert_eq!(recovered.bytes(), inner.bytes());
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn parser_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let pkt = vnet_sim::packet::Packet::from_bytes(&bytes[..]);
        let _ = pkt.parse(); // must not panic
    }

    /// RPS hashing is deterministic and direction-sensitive.
    #[test]
    fn rps_hash_properties(flow in arb_udp_flow()) {
        prop_assert_eq!(flow.rps_hash(), flow.rps_hash());
        prop_assert_eq!(flow.reversed().reversed(), flow);
    }
}

mod sched_props {
    use proptest::prelude::*;
    use vnet_sim::ids::{CpuId, VcpuId};
    use vnet_sim::sched::{
        Credit2Scheduler, CreditScheduler, HyperScheduler, DEFAULT_CONTEXT_SWITCH_COST,
    };
    use vnet_sim::time::{SimDuration, SimTime};

    /// Drives a scheduler through an arbitrary wake/run/sleep trace and
    /// checks the core guarantees:
    /// * a wake never promises a time in the past;
    /// * the wake delay never exceeds the rate limit plus two context
    ///   switches (the hog's switch-in after the previous sleep delays
    ///   the start of its window, and the preemption pays one more);
    /// * repeated wakes before the promise keep the same promise.
    fn drive(mut sched: Box<dyn HyperScheduler>, gaps: Vec<u32>, ratelimit_us: u32) {
        sched.set_ratelimit(SimDuration::from_micros(u64::from(ratelimit_us)));
        let io = VcpuId(0);
        let hog = VcpuId(1);
        sched.add_vcpu(io, CpuId(0), 256, false);
        sched.add_vcpu(hog, CpuId(0), 256, true);
        let bound = SimDuration::from_micros(u64::from(ratelimit_us))
            + DEFAULT_CONTEXT_SWITCH_COST
            + DEFAULT_CONTEXT_SWITCH_COST;
        let mut now = SimTime::ZERO;
        for gap in gaps {
            now += SimDuration::from_micros(u64::from(gap) + 1);
            let runs_at = sched.wake(io, now);
            assert!(runs_at >= now, "promise {runs_at} before wake time {now}");
            assert!(
                runs_at - now <= bound,
                "delay {} exceeds ratelimit bound {}",
                runs_at - now,
                bound
            );
            let again = sched.wake(io, now);
            assert_eq!(again, runs_at, "re-wake must keep the promise");
            // Run briefly, then sleep.
            let done = runs_at + SimDuration::from_micros(2);
            sched.sleep(io, done);
            now = done;
        }
    }

    proptest! {
        #[test]
        fn credit2_wake_promises_bounded(
            gaps in proptest::collection::vec(0u32..3_000, 1..50),
            ratelimit_us in 0u32..2_000,
        ) {
            drive(Box::new(Credit2Scheduler::new()), gaps, ratelimit_us);
        }

        #[test]
        fn credit1_wake_promises_bounded(
            gaps in proptest::collection::vec(0u32..3_000, 1..50),
            ratelimit_us in 0u32..2_000,
        ) {
            drive(Box::new(CreditScheduler::new()), gaps, ratelimit_us);
        }

        /// The token-bucket policer never admits more than burst +
        /// rate * elapsed bytes.
        #[test]
        fn policer_never_over_admits(
            arrivals in proptest::collection::vec((1u32..100, 1usize..2_000), 1..200),
            rate_kbps in 1u64..1_000_000,
            burst_kb in 1u64..10_000,
        ) {
            use vnet_sim::device::{PolicerConfig, TokenBucket};
            let cfg = PolicerConfig { rate_kbps, burst_kb };
            let mut tb = TokenBucket::new(cfg);
            let mut now_ns: u64 = 0;
            let mut admitted_bits: u64 = 0;
            for (gap_us, len) in arrivals {
                now_ns += u64::from(gap_us) * 1_000;
                if tb.admit(len, SimTime::from_nanos(now_ns)) {
                    admitted_bits += (len as u64) * 8;
                }
            }
            let budget = burst_kb * 1_000
                + (rate_kbps as u128 * 1_000 * now_ns as u128 / 1_000_000_000) as u64
                // one packet of slack for the boundary admission
                + 2_000 * 8;
            prop_assert!(
                admitted_bits <= budget,
                "admitted {admitted_bits} bits exceeds budget {budget}"
            );
        }
    }
}

mod conservation {
    use proptest::prelude::*;
    use std::net::SocketAddrV4;
    use std::sync::{Arc, Mutex};
    use vnet_sim::device::{DeviceConfig, Forwarding, ServiceModel};
    use vnet_sim::node::NodeClock;
    use vnet_sim::packet::{FlowKey, PacketBuilder, SocketAddrV4Ext};
    use vnet_sim::time::{SimDuration, SimTime};
    use vnet_sim::world::World;

    struct Counter(Arc<Mutex<u64>>);
    impl vnet_sim::app::App for Counter {
        fn on_packet(&mut self, _: &mut vnet_sim::app::AppCtx<'_>, _: vnet_sim::packet::Packet) {
            *self.0.lock().unwrap() += 1;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Packet conservation: every injected packet is either delivered,
        /// dropped (with a counted reason), or still queued/in flight —
        /// across random loads, queue sizes and a mid-run device failure.
        #[test]
        fn injected_equals_delivered_plus_dropped_plus_queued(
            bursts in proptest::collection::vec((0u64..400, 1usize..40), 1..6),
            queue_cap in 1usize..64,
            service_us in 1u64..20,
            fail_window in proptest::option::of((0u64..2_000, 1u64..2_000)),
        ) {
            let mut w = World::new(7);
            let n = w.add_node("host", 1, NodeClock::perfect());
            let src = w.add_device(
                DeviceConfig::new("src", n)
                    .service(ServiceModel::Fixed(SimDuration::from_nanos(200)))
                    .queue_capacity(10_000),
            );
            let mid = w.add_device(
                DeviceConfig::new("mid", n)
                    .service(ServiceModel::Fixed(SimDuration::from_micros(service_us)))
                    .queue_capacity(queue_cap),
            );
            let sink = w.add_device(
                DeviceConfig::new("sink", n)
                    .service(ServiceModel::Fixed(SimDuration::from_nanos(100)))
                    .queue_capacity(10_000)
                    .forwarding(Forwarding::Deliver),
            );
            w.connect(src, mid, SimDuration::from_micros(1));
            w.connect(mid, sink, SimDuration::from_micros(1));
            let delivered = Arc::new(Mutex::new(0u64));
            let app = w.add_app(n, src, Box::new(Counter(Arc::clone(&delivered))));
            w.bind_app(sink, 7, app);

            let flow = FlowKey::udp(
                SocketAddrV4::sock("10.0.0.1", 1),
                SocketAddrV4::sock("10.0.0.2", 7),
            );
            let mut injected = 0u64;
            let mut clock = SimTime::ZERO;
            for (gap_us, count) in &bursts {
                clock += SimDuration::from_micros(*gap_us);
                w.run_until(clock);
                for _ in 0..*count {
                    w.inject(src, PacketBuilder::udp(flow, vec![0u8; 40]).build());
                    injected += 1;
                }
            }
            if let Some((down_at, dur)) = fail_window {
                let down = SimTime::from_micros(down_at.min(clock.as_micros()));
                if down > w.now() {
                    w.run_until(down);
                }
                w.set_device_down(mid, true);
                w.run_for(SimDuration::from_micros(dur));
                w.set_device_down(mid, false);
            }
            // Drain for long enough that nothing can still be in flight
            // unless it is queued behind the failed window.
            w.run_for(SimDuration::from_millis(50));

            let dropped: u64 = [src, mid, sink]
                .iter()
                .map(|&d| w.device_counters(d).dropped_total())
                .sum();
            let queued: u64 =
                [src, mid, sink].iter().map(|&d| w.device_queue_len(d) as u64).sum();
            prop_assert_eq!(
                injected,
                *delivered.lock().unwrap() + dropped + queued,
                "conservation violated: injected {} delivered {} dropped {} queued {}",
                injected,
                delivered.lock().unwrap(),
                dropped,
                queued
            );
            prop_assert_eq!(queued, 0, "everything drains after recovery");
        }
    }
}
