//! Applications: workload endpoints driving and receiving traffic.
//!
//! An [`App`] is attached to a node and bound to a transmit device (its
//! "socket"). The [`crate::world::World`] invokes its callbacks; the app
//! responds by queueing actions on the [`AppCtx`] — sending packets and
//! arming timers. Workload generators (Sockperf-, iPerf-, Netperf- and
//! memcached-style) in `vnet-workloads` implement this trait.

use rand::rngs::SmallRng;

use crate::ids::{AppId, NodeId};
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// An action an application requests during a callback.
#[derive(Debug)]
pub enum AppAction {
    /// Send a packet through the app's bound transmit device.
    Send(Packet),
    /// Arm a timer that fires `delay` from now with the given tag.
    Timer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Tag passed back to [`App::on_timer`].
        tag: u64,
    },
}

/// The context handed to application callbacks.
#[derive(Debug)]
pub struct AppCtx<'w> {
    /// The application's id.
    pub app: AppId,
    /// The node the application runs on.
    pub node: NodeId,
    now: SimTime,
    monotonic_ns: u64,
    rng: &'w mut SmallRng,
    actions: Vec<AppAction>,
}

impl<'w> AppCtx<'w> {
    /// Creates a context (called by the world).
    pub(crate) fn new(
        app: AppId,
        node: NodeId,
        now: SimTime,
        monotonic_ns: u64,
        rng: &'w mut SmallRng,
    ) -> Self {
        AppCtx {
            app,
            node,
            now,
            monotonic_ns,
            rng,
            actions: Vec::new(),
        }
    }

    /// Ground-truth simulation time. Applications normally should use
    /// [`AppCtx::monotonic_ns`] — the node's (possibly skewed) clock — to
    /// mirror what real applications can observe.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node's `CLOCK_MONOTONIC` reading, in nanoseconds.
    pub fn monotonic_ns(&self) -> u64 {
        self.monotonic_ns
    }

    /// Sends `pkt` through the app's bound transmit device.
    pub fn send(&mut self, pkt: Packet) {
        self.actions.push(AppAction::Send(pkt));
    }

    /// Arms a timer firing `delay` from now, delivered to
    /// [`App::on_timer`] with `tag`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(AppAction::Timer { delay, tag });
    }

    /// The world's deterministic random-number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Drains the queued actions (called by the world).
    pub(crate) fn take_actions(&mut self) -> Vec<AppAction> {
        std::mem::take(&mut self.actions)
    }
}

/// A workload endpoint.
///
/// All callbacks receive an [`AppCtx`] for timing, randomness and actions.
pub trait App: Send {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        let _ = ctx;
    }

    /// Called when a packet is delivered to a port this app is bound to.
    fn on_packet(&mut self, ctx: &mut AppCtx<'_>, pkt: Packet);

    /// Called when a timer armed with [`AppCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, tag: u64) {
        let _ = (ctx, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_accumulates_actions() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut ctx = AppCtx::new(
            AppId(0),
            NodeId(0),
            SimTime::from_micros(5),
            5_000,
            &mut rng,
        );
        assert_eq!(ctx.now(), SimTime::from_micros(5));
        assert_eq!(ctx.monotonic_ns(), 5_000);
        ctx.set_timer(SimDuration::from_micros(10), 42);
        ctx.send(Packet::from_bytes(vec![0u8; 8]));
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[0], AppAction::Timer { tag: 42, .. }));
        assert!(matches!(actions[1], AppAction::Send(_)));
        assert!(ctx.take_actions().is_empty(), "drained");
    }

    #[test]
    fn rng_is_usable() {
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(7);
        let mut ctx = AppCtx::new(AppId(1), NodeId(0), SimTime::ZERO, 0, &mut rng);
        let a: u32 = ctx.rng().gen();
        let b: u32 = ctx.rng().gen();
        assert_ne!(a, b);
    }
}
