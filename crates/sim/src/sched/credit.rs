//! The Xen credit1 scheduler.

use crate::ids::{CpuId, VcpuId};
use crate::time::{SimDuration, SimTime};

use super::pcpu::{Flavor, SchedCore};
use super::HyperScheduler;

/// Xen's first-generation credit scheduler.
///
/// Credit1 places woken vCPUs with remaining credit in a BOOST priority
/// band so they preempt lower bands immediately — *except* that since Xen
/// 4.2 the context-switch rate limit still defers the preemption. The paper
/// notes the long-tail-latency issue of Case Study II "also works for the
/// same issue in credit1".
///
/// # Examples
///
/// ```
/// use vnet_sim::sched::{CreditScheduler, HyperScheduler};
/// use vnet_sim::ids::{CpuId, VcpuId};
/// use vnet_sim::time::{SimDuration, SimTime};
///
/// let mut sched = CreditScheduler::new();
/// sched.add_vcpu(VcpuId(0), CpuId(0), 256, false);
/// let runs_at = sched.wake(VcpuId(0), SimTime::ZERO);
/// assert!(runs_at >= SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct CreditScheduler {
    core: SchedCore,
}

impl CreditScheduler {
    /// Creates a credit1 scheduler with the default 1000 µs rate limit.
    pub fn new() -> Self {
        CreditScheduler {
            core: SchedCore::new(Flavor::Credit1),
        }
    }

    /// Sets the per-switch context-switch cost.
    pub fn set_context_switch_cost(&mut self, cost: SimDuration) {
        self.core.set_context_switch_cost(cost);
    }

    /// Whether `vcpu` currently holds BOOST priority.
    pub fn is_boosted(&self, vcpu: VcpuId) -> bool {
        self.core.vcpu_state(vcpu).is_some_and(|v| v.boosted)
    }
}

impl Default for CreditScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl HyperScheduler for CreditScheduler {
    fn name(&self) -> &str {
        "credit"
    }

    fn add_vcpu(&mut self, vcpu: VcpuId, pcpu: CpuId, weight: u32, always_runnable: bool) {
        self.core.add_vcpu(vcpu, pcpu, weight, always_runnable);
    }

    fn wake(&mut self, vcpu: VcpuId, now: SimTime) -> SimTime {
        self.core.wake(vcpu, now)
    }

    fn sleep(&mut self, vcpu: VcpuId, now: SimTime) {
        self.core.sleep(vcpu, now)
    }

    fn run_gate(&mut self, vcpu: VcpuId, now: SimTime) -> SimTime {
        self.core.run_gate(vcpu, now)
    }

    fn ratelimit(&self) -> SimDuration {
        self.core.ratelimit()
    }

    fn set_ratelimit(&mut self, ratelimit: SimDuration) {
        self.core.set_ratelimit(ratelimit);
    }

    fn context_switches(&self) -> u64 {
        self.core.context_switches()
    }

    fn credit_of(&self, vcpu: VcpuId) -> Option<i64> {
        self.core.credit_of(vcpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boost_is_granted_on_wake_and_cleared_on_sleep() {
        let mut s = CreditScheduler::new();
        s.add_vcpu(VcpuId(0), CpuId(0), 256, false);
        s.add_vcpu(VcpuId(1), CpuId(0), 256, true);
        let t = s.wake(VcpuId(0), SimTime::from_micros(10));
        assert!(s.is_boosted(VcpuId(0)));
        s.sleep(VcpuId(0), t);
        assert!(!s.is_boosted(VcpuId(0)));
    }

    #[test]
    fn name_and_default() {
        assert_eq!(CreditScheduler::default().name(), "credit");
    }
}
