//! Shared per-pCPU scheduling core used by both credit schedulers.
//!
//! The two Xen schedulers differ in how they *order* runnable vCPUs
//! (credit1 uses BOOST/UNDER/OVER priority bands, credit2 orders purely by
//! credit), but the mechanism behind Case Study II — the context-switch
//! rate limit that defers preemption by a freshly woken vCPU — is common to
//! both. This module implements that mechanism once.

use std::collections::HashMap;

use crate::ids::{CpuId, VcpuId};
use crate::time::{SimDuration, SimTime};

use super::{DEFAULT_CONTEXT_SWITCH_COST, DEFAULT_RATELIMIT};

/// Initial credit grant, in credit units (1 unit = 1 ns of weighted run
/// time at the reference weight 256).
const CREDIT_INIT: i64 = 10_000_000;

/// Which scheduler flavour the core is emulating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Xen credit1: woken vCPUs receive BOOST priority.
    Credit1,
    /// Xen credit2: vCPUs are ordered purely by credit.
    Credit2,
}

/// Per-vCPU scheduling state.
#[derive(Debug, Clone)]
pub struct VcpuState {
    /// The vCPU id.
    pub vcpu: VcpuId,
    /// Physical CPU this vCPU is pinned to.
    pub pcpu: CpuId,
    /// Scheduling weight (Xen default 256).
    pub weight: u32,
    /// Remaining credit.
    pub credit: i64,
    /// Whether the vCPU never sleeps (a CPU-hog).
    pub always_runnable: bool,
    /// Whether the vCPU is currently asleep (no pending work).
    pub asleep: bool,
    /// credit1 BOOST flag, set on wake while credit remains.
    pub boosted: bool,
    /// Total time this vCPU has spent running.
    pub total_runtime: SimDuration,
}

/// Per-pCPU run state.
#[derive(Debug, Clone)]
pub struct PcpuState {
    /// The physical CPU.
    pub cpu: CpuId,
    /// Currently running vCPU, if any.
    pub running: Option<VcpuId>,
    /// When the current vCPU started running.
    pub running_since: SimTime,
    /// vCPUs that have woken and are waiting for the rate limit to expire,
    /// with the instant each is promised the CPU.
    pub waiting: Vec<(VcpuId, SimTime)>,
}

/// The shared scheduling engine.
#[derive(Debug)]
pub struct SchedCore {
    flavor: Flavor,
    vcpus: HashMap<VcpuId, VcpuState>,
    pcpus: HashMap<CpuId, PcpuState>,
    ratelimit: SimDuration,
    context_switch_cost: SimDuration,
    switches: u64,
}

impl SchedCore {
    /// Creates a core for the given flavour with Xen's default rate limit.
    pub fn new(flavor: Flavor) -> Self {
        SchedCore {
            flavor,
            vcpus: HashMap::new(),
            pcpus: HashMap::new(),
            ratelimit: DEFAULT_RATELIMIT,
            context_switch_cost: DEFAULT_CONTEXT_SWITCH_COST,
            switches: 0,
        }
    }

    /// The configured rate limit.
    pub fn ratelimit(&self) -> SimDuration {
        self.ratelimit
    }

    /// Sets the rate limit (zero disables it).
    pub fn set_ratelimit(&mut self, ratelimit: SimDuration) {
        self.ratelimit = ratelimit;
    }

    /// Sets the per-switch context-switch cost.
    pub fn set_context_switch_cost(&mut self, cost: SimDuration) {
        self.context_switch_cost = cost;
    }

    /// Number of context switches performed.
    pub fn context_switches(&self) -> u64 {
        self.switches
    }

    /// Current credit of `vcpu`.
    pub fn credit_of(&self, vcpu: VcpuId) -> Option<i64> {
        self.vcpus.get(&vcpu).map(|v| v.credit)
    }

    /// Read-only view of a vCPU's state.
    pub fn vcpu_state(&self, vcpu: VcpuId) -> Option<&VcpuState> {
        self.vcpus.get(&vcpu)
    }

    /// Registers a vCPU pinned to `pcpu`.
    ///
    /// # Panics
    ///
    /// Panics if the vCPU was already registered.
    pub fn add_vcpu(&mut self, vcpu: VcpuId, pcpu: CpuId, weight: u32, always_runnable: bool) {
        let state = VcpuState {
            vcpu,
            pcpu,
            weight: weight.max(1),
            credit: CREDIT_INIT,
            always_runnable,
            asleep: !always_runnable,
            boosted: false,
            total_runtime: SimDuration::ZERO,
        };
        assert!(
            self.vcpus.insert(vcpu, state).is_none(),
            "vCPU {vcpu} registered twice"
        );
        let p = self.pcpus.entry(pcpu).or_insert_with(|| PcpuState {
            cpu: pcpu,
            running: None,
            running_since: SimTime::ZERO,
            waiting: Vec::new(),
        });
        if always_runnable && p.running.is_none() {
            p.running = Some(vcpu);
            p.running_since = SimTime::ZERO;
        }
    }

    /// Charges `who` for running during `[from, to)` and updates credits.
    fn burn(&mut self, who: VcpuId, from: SimTime, to: SimTime) {
        if to <= from {
            return;
        }
        let ran = to - from;
        let v = self.vcpus.get_mut(&who).expect("burn for unknown vcpu");
        v.total_runtime += ran;
        // Burn rate scales inversely with weight (reference weight 256).
        v.credit -= (ran.as_nanos() as i64) * 256 / i64::from(v.weight);
        if v.credit <= 0 {
            // Credit reset epoch: replenish everyone on this pCPU, as
            // credit2 does when the next-to-run vCPU would be negative.
            let pcpu = v.pcpu;
            for other in self.vcpus.values_mut() {
                if other.pcpu == pcpu {
                    other.credit += CREDIT_INIT;
                }
            }
        }
    }

    /// Applies any promised switch whose time has arrived.
    fn materialize(&mut self, cpu: CpuId, now: SimTime) {
        loop {
            // Promote the earliest-due waiter whose promise time has
            // passed. Each iteration re-borrows the pCPU entry because
            // `burn` needs exclusive access to the vCPU table.
            let Some(p) = self.pcpus.get_mut(&cpu) else {
                return;
            };
            let Some(pos) = p.waiting.iter().position(|&(_, t)| t <= now) else {
                return;
            };
            let (v, t) = p.waiting.remove(pos);
            let prev = p.running;
            let since = p.running_since;
            p.running = Some(v);
            p.running_since = t;
            self.switches += 1;
            if let Some(prev) = prev {
                self.burn(prev, since, t);
            }
        }
    }

    /// Highest-priority runnable vCPU on `cpu` other than `excluding`.
    fn pick_next(&self, cpu: CpuId, excluding: VcpuId) -> Option<VcpuId> {
        self.vcpus
            .values()
            .filter(|v| v.pcpu == cpu && !v.asleep && v.vcpu != excluding)
            .max_by_key(|v| match self.flavor {
                // credit1: BOOST band outranks credit order.
                Flavor::Credit1 => (v.boosted as i64, v.credit),
                Flavor::Credit2 => (0, v.credit),
            })
            .map(|v| v.vcpu)
    }

    /// Wakes `vcpu` at `now`; returns when it will be running.
    pub fn wake(&mut self, vcpu: VcpuId, now: SimTime) -> SimTime {
        let pcpu = self.vcpus.get(&vcpu).expect("wake of unknown vcpu").pcpu;
        self.materialize(pcpu, now);
        {
            let v = self.vcpus.get_mut(&vcpu).expect("vcpu exists");
            v.asleep = false;
            if self.flavor == Flavor::Credit1 && v.credit > 0 {
                v.boosted = true;
            }
        }
        let p = self.pcpus.get_mut(&pcpu).expect("pcpu exists");
        if p.running == Some(vcpu) {
            return now;
        }
        if let Some(&(_, promised)) = p.waiting.iter().find(|&&(w, _)| w == vcpu) {
            return promised;
        }
        match p.running {
            None => {
                let run_at = now + self.context_switch_cost;
                p.running = Some(vcpu);
                p.running_since = run_at;
                self.switches += 1;
                run_at
            }
            Some(_current) => {
                // The woken vCPU has higher effective priority (it barely
                // consumes credit; in credit1 it is BOOSTed), so it will
                // preempt — but not before the current vCPU has run for
                // the rate-limit window.
                let earliest = p.running_since + self.ratelimit;
                let run_at = if now >= earliest {
                    now + self.context_switch_cost
                } else {
                    earliest + self.context_switch_cost
                };
                p.waiting.push((vcpu, run_at));
                run_at
            }
        }
    }

    /// Puts `vcpu` to sleep at `now` and hands the pCPU to the next
    /// runnable vCPU.
    pub fn sleep(&mut self, vcpu: VcpuId, now: SimTime) {
        let pcpu = self.vcpus.get(&vcpu).expect("sleep of unknown vcpu").pcpu;
        self.materialize(pcpu, now);
        {
            let v = self.vcpus.get_mut(&vcpu).expect("vcpu exists");
            v.asleep = true;
            v.boosted = false;
        }
        let p = self.pcpus.get_mut(&pcpu).expect("pcpu exists");
        p.waiting.retain(|&(w, _)| w != vcpu);
        if p.running == Some(vcpu) {
            let since = p.running_since;
            let next = self.pick_next(pcpu, vcpu);
            let p = self.pcpus.get_mut(&pcpu).expect("pcpu exists");
            p.running = next;
            p.running_since = now + self.context_switch_cost;
            if next.is_some() {
                self.switches += 1;
            }
            self.burn(vcpu, since, now);
        }
    }

    /// When work arriving at `now` for `vcpu` can be processed.
    pub fn run_gate(&mut self, vcpu: VcpuId, now: SimTime) -> SimTime {
        let pcpu = self.vcpus.get(&vcpu).expect("gate for unknown vcpu").pcpu;
        self.materialize(pcpu, now);
        let p = self.pcpus.get(&pcpu).expect("pcpu exists");
        if p.running == Some(vcpu) {
            return now;
        }
        self.wake(vcpu, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> SchedCore {
        let mut c = SchedCore::new(Flavor::Credit2);
        c.add_vcpu(VcpuId(0), CpuId(0), 256, false); // io
        c.add_vcpu(VcpuId(1), CpuId(0), 256, true); // hog
        c
    }

    #[test]
    fn hog_owns_idle_cpu_from_start() {
        let c = core();
        assert!(!c.vcpu_state(VcpuId(1)).unwrap().asleep);
        assert_eq!(c.pcpus[&CpuId(0)].running, Some(VcpuId(1)));
    }

    #[test]
    fn wake_on_idle_cpu_is_immediate_plus_switch_cost() {
        let mut c = SchedCore::new(Flavor::Credit2);
        c.add_vcpu(VcpuId(0), CpuId(0), 256, false);
        let t = c.wake(VcpuId(0), SimTime::from_micros(50));
        assert_eq!(t, SimTime::from_micros(50) + DEFAULT_CONTEXT_SWITCH_COST);
        assert_eq!(c.context_switches(), 1);
    }

    #[test]
    fn repeated_wake_returns_same_promise() {
        let mut c = core();
        let t1 = c.wake(VcpuId(0), SimTime::from_micros(100));
        let t2 = c.wake(VcpuId(0), SimTime::from_micros(200));
        assert_eq!(t1, t2, "second wake before the promise must not move it");
    }

    #[test]
    fn wake_after_ratelimit_expiry_preempts_immediately() {
        let mut c = core();
        // Hog has been running since t=0; wake at 5 ms > 1 ms ratelimit.
        let t = c.wake(VcpuId(0), SimTime::from_micros(5_000));
        assert_eq!(t, SimTime::from_micros(5_000) + DEFAULT_CONTEXT_SWITCH_COST);
    }

    #[test]
    fn sleep_hands_cpu_back_to_hog() {
        let mut c = core();
        let t = c.wake(VcpuId(0), SimTime::from_micros(100));
        // Promise materializes once time passes.
        c.sleep(VcpuId(0), t + SimDuration::from_micros(3));
        assert_eq!(c.pcpus[&CpuId(0)].running, Some(VcpuId(1)));
        // Next wake is again deferred by a full ratelimit from hog restart.
        let restart = t + SimDuration::from_micros(3) + DEFAULT_CONTEXT_SWITCH_COST;
        let t2 = c.wake(VcpuId(0), restart + SimDuration::from_micros(1));
        assert_eq!(
            t2,
            restart + DEFAULT_RATELIMIT + DEFAULT_CONTEXT_SWITCH_COST
        );
    }

    #[test]
    fn run_gate_is_now_when_running() {
        let mut c = SchedCore::new(Flavor::Credit2);
        c.add_vcpu(VcpuId(0), CpuId(0), 256, false);
        let t = c.wake(VcpuId(0), SimTime::ZERO);
        assert_eq!(
            c.run_gate(VcpuId(0), t + SimDuration::from_micros(1)),
            t + SimDuration::from_micros(1)
        );
    }

    #[test]
    fn io_vcpu_credit_stays_above_hog() {
        let mut c = core();
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            now += SimDuration::from_micros(1_500);
            let t = c.wake(VcpuId(0), now);
            c.sleep(VcpuId(0), t + SimDuration::from_micros(5));
            now = t + SimDuration::from_micros(5);
        }
        let io = c.credit_of(VcpuId(0)).unwrap();
        let hog = c.credit_of(VcpuId(1)).unwrap();
        assert!(
            io > hog,
            "I/O vCPU must retain more credit (io={io}, hog={hog})"
        );
    }

    #[test]
    fn credit1_boost_flag_set_on_wake() {
        let mut c = SchedCore::new(Flavor::Credit1);
        c.add_vcpu(VcpuId(0), CpuId(0), 256, false);
        c.add_vcpu(VcpuId(1), CpuId(0), 256, true);
        c.wake(VcpuId(0), SimTime::from_micros(10));
        assert!(c.vcpu_state(VcpuId(0)).unwrap().boosted);
        c.sleep(VcpuId(0), SimTime::from_micros(2_000));
        assert!(!c.vcpu_state(VcpuId(0)).unwrap().boosted);
    }

    #[test]
    fn zero_ratelimit_removes_deferral() {
        let mut c = core();
        c.set_ratelimit(SimDuration::ZERO);
        let t = c.wake(VcpuId(0), SimTime::from_micros(100));
        assert_eq!(t, SimTime::from_micros(100) + DEFAULT_CONTEXT_SWITCH_COST);
    }

    #[test]
    fn two_hogs_ordered_by_credit() {
        let mut c = SchedCore::new(Flavor::Credit2);
        c.add_vcpu(VcpuId(0), CpuId(0), 256, false);
        c.add_vcpu(VcpuId(1), CpuId(0), 256, true);
        c.add_vcpu(VcpuId(2), CpuId(0), 256, true);
        // Run the io vcpu briefly so hog 1 burns credit.
        let t = c.wake(VcpuId(0), SimTime::from_micros(2_000));
        c.sleep(VcpuId(0), t + SimDuration::from_micros(10));
        // After hog1 burned credit, pick_next should favour hog2.
        let next = c.pick_next(CpuId(0), VcpuId(0));
        assert_eq!(next, Some(VcpuId(2)));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_vcpu_rejected() {
        let mut c = SchedCore::new(Flavor::Credit2);
        c.add_vcpu(VcpuId(0), CpuId(0), 256, false);
        c.add_vcpu(VcpuId(0), CpuId(0), 256, false);
    }
}
