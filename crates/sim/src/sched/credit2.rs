//! The Xen credit2 scheduler.

use crate::ids::{CpuId, VcpuId};
use crate::time::{SimDuration, SimTime};

use super::pcpu::{Flavor, SchedCore};
use super::HyperScheduler;

/// Xen's second-generation credit scheduler, designed for fairness,
/// responsiveness and scalability.
///
/// As the paper observes when diagnosing Case Study II, credit2 removed the
/// OVER/UNDER/BOOST priority bands of credit1 — "all the vCPUs were just
/// ordered by their credit". A woken I/O vCPU always has more credit than a
/// CPU-hog, so scheduling *order* is never the problem; the context-switch
/// **rate limit** (default 1000 µs) is: the hog may not be preempted until
/// it has run a full rate-limit window, which delays packet delivery by up
/// to that window. Setting the rate limit to zero restores near-baseline
/// latency, the fix the authors reported to the Xen community.
///
/// # Examples
///
/// ```
/// use vnet_sim::sched::{Credit2Scheduler, HyperScheduler};
/// use vnet_sim::time::SimDuration;
///
/// let mut sched = Credit2Scheduler::new();
/// assert_eq!(sched.ratelimit(), SimDuration::from_micros(1000));
/// sched.set_ratelimit(SimDuration::ZERO); // the Case Study II fix
/// ```
#[derive(Debug)]
pub struct Credit2Scheduler {
    core: SchedCore,
}

impl Credit2Scheduler {
    /// Creates a credit2 scheduler with the default 1000 µs rate limit.
    pub fn new() -> Self {
        Credit2Scheduler {
            core: SchedCore::new(Flavor::Credit2),
        }
    }

    /// Sets the per-switch context-switch cost.
    pub fn set_context_switch_cost(&mut self, cost: SimDuration) {
        self.core.set_context_switch_cost(cost);
    }
}

impl Default for Credit2Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl HyperScheduler for Credit2Scheduler {
    fn name(&self) -> &str {
        "credit2"
    }

    fn add_vcpu(&mut self, vcpu: VcpuId, pcpu: CpuId, weight: u32, always_runnable: bool) {
        self.core.add_vcpu(vcpu, pcpu, weight, always_runnable);
    }

    fn wake(&mut self, vcpu: VcpuId, now: SimTime) -> SimTime {
        self.core.wake(vcpu, now)
    }

    fn sleep(&mut self, vcpu: VcpuId, now: SimTime) {
        self.core.sleep(vcpu, now)
    }

    fn run_gate(&mut self, vcpu: VcpuId, now: SimTime) -> SimTime {
        self.core.run_gate(vcpu, now)
    }

    fn ratelimit(&self) -> SimDuration {
        self.core.ratelimit()
    }

    fn set_ratelimit(&mut self, ratelimit: SimDuration) {
        self.core.set_ratelimit(ratelimit);
    }

    fn context_switches(&self) -> u64 {
        self.core.context_switches()
    }

    fn credit_of(&self, vcpu: VcpuId) -> Option<i64> {
        self.core.credit_of(vcpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sawtooth_delay_pattern_under_periodic_arrivals() {
        // Reproduce the mechanism behind Fig. 11(b): packets arriving every
        // 100 µs while a hog shares the pCPU see scheduling delays that
        // jump to ~1 ms and descend back toward zero.
        let mut s = Credit2Scheduler::new();
        s.set_context_switch_cost(SimDuration::ZERO);
        s.add_vcpu(VcpuId(0), CpuId(0), 256, false);
        s.add_vcpu(VcpuId(1), CpuId(0), 256, true);
        let mut delays = Vec::new();
        let mut sleeping = true;
        let mut run_until = SimTime::ZERO;
        for i in 0..40u64 {
            let arrive = SimTime::from_micros(100 * (i + 1));
            if !sleeping && arrive > run_until {
                s.sleep(VcpuId(0), run_until);
                sleeping = true;
                let _ = sleeping;
            }
            let runs = s.run_gate(VcpuId(0), arrive);
            delays.push((runs - arrive).as_micros());
            sleeping = false;
            run_until = runs + SimDuration::from_micros(1);
        }
        let max = *delays.iter().max().unwrap();
        assert!(
            max >= 800,
            "peak delay near the 1000us ratelimit, got {max}"
        );
        // Descending runs: within a burst the delay decreases by ~period.
        let has_descent = delays.windows(2).any(|w| w[0] >= 100 && w[0] - w[1] >= 90);
        assert!(has_descent, "expected sawtooth descent, delays={delays:?}");
        let has_low = delays.iter().any(|&d| d < 100);
        assert!(has_low, "sawtooth must reach near zero, delays={delays:?}");
    }

    #[test]
    fn name_and_default() {
        assert_eq!(Credit2Scheduler::default().name(), "credit2");
    }
}
