//! Hypervisor vCPU schedulers.
//!
//! Case Study II of the paper traces a long-tail-latency problem to the
//! *context-switch rate limit* of Xen's credit schedulers: a woken
//! I/O-bound vCPU, even with higher credit, may not preempt the running
//! CPU-bound vCPU until that vCPU has run for `ratelimit_us` (1000 µs by
//! default). This module implements both generations of the scheduler —
//! [`credit::CreditScheduler`] (credit1, with BOOST priority) and
//! [`credit2::Credit2Scheduler`] (ordered purely by credit) — faithfully
//! enough to reproduce the sawtooth scheduling delay of Fig. 11(b) and its
//! disappearance when the rate limit is set to zero (Fig. 10).

pub mod credit;
pub mod credit2;
mod pcpu;

pub use credit::CreditScheduler;
pub use credit2::Credit2Scheduler;
pub use pcpu::{PcpuState, VcpuState};

use crate::ids::{CpuId, VcpuId};
use crate::time::{SimDuration, SimTime};

/// Default Xen context-switch rate limit (1000 µs), introduced in Xen 4.2.
pub const DEFAULT_RATELIMIT: SimDuration = SimDuration::from_micros(1000);

/// Default cost of a vCPU context switch charged on every switch.
pub const DEFAULT_CONTEXT_SWITCH_COST: SimDuration = SimDuration::from_nanos(1_500);

/// A hypervisor scheduler multiplexing vCPUs onto physical CPUs.
///
/// The simulator calls [`HyperScheduler::wake`] when work (a packet)
/// arrives for a sleeping vCPU and [`HyperScheduler::sleep`] when the vCPU
/// runs out of work; the returned instants gate when vCPU-bound devices may
/// start serving packets.
pub trait HyperScheduler: Send {
    /// The scheduler's name (`"credit"` or `"credit2"`).
    fn name(&self) -> &str;

    /// Registers a vCPU pinned to `pcpu` with the given scheduling weight.
    /// `always_runnable` marks CPU-hog vCPUs that never sleep.
    fn add_vcpu(&mut self, vcpu: VcpuId, pcpu: CpuId, weight: u32, always_runnable: bool);

    /// Reports that `vcpu` has work as of `now`; returns the instant it
    /// will actually be running on its pCPU.
    fn wake(&mut self, vcpu: VcpuId, now: SimTime) -> SimTime;

    /// Reports that `vcpu` has no more work as of `now`.
    fn sleep(&mut self, vcpu: VcpuId, now: SimTime);

    /// The instant at which `vcpu` can process work arriving at `now`
    /// (equals `now` if it is already running).
    fn run_gate(&mut self, vcpu: VcpuId, now: SimTime) -> SimTime;

    /// The configured context-switch rate limit.
    fn ratelimit(&self) -> SimDuration;

    /// Reconfigures the context-switch rate limit (the tuning knob of Case
    /// Study II; `SimDuration::ZERO` disables it).
    fn set_ratelimit(&mut self, ratelimit: SimDuration);

    /// Number of vCPU context switches performed so far.
    fn context_switches(&self) -> u64;

    /// Current credit of `vcpu`, if known. Exposed so trace scripts can
    /// observe scheduler state, as the authors did when diagnosing Case
    /// Study II ("we traced vCPU credit").
    fn credit_of(&self, vcpu: VcpuId) -> Option<i64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut s: Box<dyn HyperScheduler>) {
        let io = VcpuId(0);
        let hog = VcpuId(1);
        s.add_vcpu(io, CpuId(0), 256, false);
        s.add_vcpu(hog, CpuId(0), 256, true);

        // Hog owns the CPU from t=0. A wake at 100us is deferred by the
        // ratelimit (until 1000us) plus the context-switch cost.
        let t = s.wake(io, SimTime::from_micros(100));
        assert_eq!(
            t,
            SimTime::from_micros(1000) + DEFAULT_CONTEXT_SWITCH_COST,
            "wake deferred to end of ratelimit window"
        );
        s.sleep(io, t + SimDuration::from_micros(5));

        // Second cycle: the hog restarted (one switch cost after the io
        // vCPU slept); the next wake is deferred by a fresh ratelimit.
        let restart = t + SimDuration::from_micros(5) + DEFAULT_CONTEXT_SWITCH_COST;
        let t2 = s.wake(io, restart + SimDuration::from_micros(10));
        assert_eq!(
            t2,
            restart + DEFAULT_RATELIMIT + DEFAULT_CONTEXT_SWITCH_COST
        );
        s.sleep(io, t2);

        // Disable the rate limit: wake is immediate (modulo switch cost).
        s.set_ratelimit(SimDuration::ZERO);
        let restart2 = t2 + DEFAULT_CONTEXT_SWITCH_COST;
        let t3 = s.wake(io, restart2 + SimDuration::from_micros(10));
        assert_eq!(
            t3,
            restart2 + SimDuration::from_micros(10) + DEFAULT_CONTEXT_SWITCH_COST
        );
        assert!(s.context_switches() >= 3);
    }

    #[test]
    fn credit2_ratelimit_defers_wakeups() {
        exercise(Box::new(Credit2Scheduler::new()));
    }

    #[test]
    fn credit1_ratelimit_defers_wakeups() {
        // The paper notes the same issue (and fix) applies to credit1.
        exercise(Box::new(CreditScheduler::new()));
    }
}
