//! # vnet-sim — a discrete-event simulator of virtualized networks
//!
//! This crate is the substrate on which the [vNetTracer (ICDCS 2018)]
//! reproduction runs. It models, at packet granularity and with real byte
//! buffers, the virtualized network stacks the paper traces:
//!
//! * **Packets** ([`packet`]) — Ethernet/IPv4/TCP/UDP/VXLAN frames with
//!   genuine encode/decode and checksums, including the byte-level
//!   trace-ID patch ([`packet::trace_id`]).
//! * **Devices** ([`device`]) — NICs, Open vSwitch ports and fabric,
//!   Linux bridges, veth pairs, VXLAN endpoints and guest stacks, each a
//!   queue + serving process with configurable service models, ingress
//!   policing and forwarding.
//! * **Schedulers** ([`sched`]) — Xen credit1/credit2 vCPU schedulers with
//!   the context-switch rate limit behind Case Study II.
//! * **Softirqs** ([`softirq`]) — per-CPU softirq serialization and
//!   steering (IRQ affinity / RPS) behind Case Study III.
//! * **Probes** ([`probe`]) — named kernel-function and device hooks where
//!   tracers attach; probe execution cost feeds back into packet
//!   processing time, so tracing overhead perturbs the system exactly as
//!   it would on a live kernel.
//! * **The world** ([`world`]) — the event loop tying nodes, devices,
//!   schedulers, applications and probes together. It runs sequentially
//!   by default and shards across worker threads under
//!   [`world::World::set_parallelism`], using conservative lookahead
//!   synchronization; for a fixed seed the simulation is bit-identical
//!   at every thread count.
//!
//! The crate deliberately knows nothing about eBPF or vNetTracer itself;
//! those live in `vnet-ebpf` and `vnettracer` and plug in through
//! [`probe::ProbeSink`].
//!
//! ## Example
//!
//! ```
//! use vnet_sim::device::{DeviceConfig, Forwarding};
//! use vnet_sim::node::NodeClock;
//! use vnet_sim::time::{SimDuration, SimTime};
//! use vnet_sim::world::World;
//!
//! let mut world = World::new(7);
//! let host = world.add_node("server1", 20, NodeClock::perfect());
//! let nic = world.add_device(DeviceConfig::new("eth0", host));
//! let stack = world.add_device(DeviceConfig::new("rx", host).forwarding(Forwarding::Deliver));
//! world.connect(nic, stack, SimDuration::from_micros(30));
//! world.run_until(SimTime::from_millis(10));
//! assert_eq!(world.now(), SimTime::from_millis(10));
//! ```
//!
//! [vNetTracer (ICDCS 2018)]: https://doi.org/10.1109/ICDCS.2018.00151

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod device;
pub mod event;
pub mod ids;
pub mod node;
pub mod packet;
pub mod probe;
pub mod profile;
pub mod sched;
pub(crate) mod shard;
pub mod softirq;
pub mod time;
pub mod world;

pub use ids::{AppId, CpuId, DeviceId, NodeId, VcpuId};
pub use time::{SimDuration, SimTime};
pub use world::World;
