//! Trace-driven, time-varying link models.
//!
//! A [`LinkProfile`] replays a per-link schedule of
//! `(time, delay, loss_rate, rate)` segments over an output port: during
//! a segment the link's propagation delay is *replaced* by the segment's
//! delay, packets are dropped on the wire with the segment's loss
//! probability (drawn from the sending node's seeded RNG stream, so runs
//! stay bit-identical at any thread count), and an optional link rate
//! serializes frames through a shared wire — back-to-back frames queue
//! behind each other exactly as on a rate-limited pipe.
//!
//! Profiles load from a compact line-oriented trace format (see
//! [`LinkProfile::parse_trace`]) and attach to ports via
//! [`crate::world::World::attach_link_profile`]. The module also ships a
//! library of *adversarial condition generators* — LEO-handover delay
//! steps, congested-WAN rate dips, flapping links, asymmetric-route delay
//! skew, and bursty Gilbert–Elliott loss. Every generator returns the
//! exact [`Episode`] windows in which its condition is active, which is
//! the ground truth the detector-validation harness scores emitted
//! alerts against.
//!
//! Sharding note: the conservative lookahead of the parallel event loop
//! uses each profiled link's *minimum* scheduled delay (never the
//! initial one), so a profile that shrinks a link's delay mid-run cannot
//! let a cross-shard packet arrive inside an already-closed window.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::{SimDuration, SimTime};

/// One segment of a link schedule: from `start` (inclusive) until the
/// next segment's start, the link behaves as described here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSegment {
    /// When this segment becomes active.
    pub start: SimTime,
    /// One-way propagation delay during the segment (replaces the port's
    /// base latency).
    pub delay: SimDuration,
    /// Probability in `[0, 1]` that a frame entering the wire during
    /// this segment is lost.
    pub loss_rate: f64,
    /// Optional link rate in bits/second; frames serialize through the
    /// wire at this rate and queue behind each other. `None` means the
    /// wire is infinitely fast (propagation delay only).
    pub rate_bps: Option<u64>,
}

/// A time-indexed schedule of [`LinkSegment`]s replayed over a link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    segments: Vec<LinkSegment>,
}

impl LinkProfile {
    /// Builds a profile from segments, validating the schedule: it must
    /// be non-empty, start at time zero, have strictly increasing
    /// segment starts, finite loss rates in `[0, 1]`, and positive rates.
    pub fn new(segments: Vec<LinkSegment>) -> Result<LinkProfile, String> {
        if segments.is_empty() {
            return Err("profile needs at least one segment".into());
        }
        if segments[0].start != SimTime::ZERO {
            return Err(format!(
                "first segment must start at t=0, not {}",
                segments[0].start
            ));
        }
        for pair in segments.windows(2) {
            if pair[1].start <= pair[0].start {
                return Err(format!(
                    "segment starts must strictly increase ({} then {})",
                    pair[0].start, pair[1].start
                ));
            }
        }
        for seg in &segments {
            if !seg.loss_rate.is_finite() || !(0.0..=1.0).contains(&seg.loss_rate) {
                return Err(format!("loss_rate {} outside [0, 1]", seg.loss_rate));
            }
            if seg.rate_bps == Some(0) {
                return Err("rate must be positive".into());
            }
        }
        Ok(LinkProfile { segments })
    }

    /// A single-segment profile: constant delay, no loss, no rate limit.
    pub fn constant(delay: SimDuration) -> LinkProfile {
        LinkProfile {
            segments: vec![LinkSegment {
                start: SimTime::ZERO,
                delay,
                loss_rate: 0.0,
                rate_bps: None,
            }],
        }
    }

    /// The validated schedule.
    pub fn segments(&self) -> &[LinkSegment] {
        &self.segments
    }

    /// The segment active at instant `t` (the last segment whose start
    /// is at or before `t`).
    pub fn segment_at(&self, t: SimTime) -> &LinkSegment {
        match self.segments.partition_point(|s| s.start <= t) {
            0 => &self.segments[0],
            n => &self.segments[n - 1],
        }
    }

    /// The minimum delay across every segment of the schedule — the
    /// conservative bound the sharded event loop's lookahead must use
    /// for this link, since any segment may be active when a packet
    /// crosses.
    pub fn min_delay(&self) -> SimDuration {
        self.segments
            .iter()
            .map(|s| s.delay)
            .min()
            .expect("validated profiles are non-empty")
    }

    /// Parses the compact trace format: one segment per line as
    /// `<t_us> <delay_us> <loss_rate> <rate_mbps|->`, with `#` starting
    /// a comment and blank lines ignored.
    ///
    /// ```
    /// use vnet_sim::profile::LinkProfile;
    /// let p = LinkProfile::parse_trace("
    ///     0      30  0.0  -   # LEO handover: 30us base...
    ///     15000  300 0.0  -   # ...300us during the switch...
    ///     35000  30  0.0  -   # ...then back
    /// ").unwrap();
    /// assert_eq!(p.segments().len(), 3);
    /// ```
    pub fn parse_trace(text: &str) -> Result<LinkProfile, String> {
        let mut segments = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(format!(
                    "line {}: expected `t_us delay_us loss rate_mbps|-`, got {:?}",
                    lineno + 1,
                    line
                ));
            }
            let t_us: u64 = fields[0]
                .parse()
                .map_err(|e| format!("line {}: bad time: {e}", lineno + 1))?;
            let delay_us: u64 = fields[1]
                .parse()
                .map_err(|e| format!("line {}: bad delay: {e}", lineno + 1))?;
            let loss_rate: f64 = fields[2]
                .parse()
                .map_err(|e| format!("line {}: bad loss rate: {e}", lineno + 1))?;
            let rate_bps = if fields[3] == "-" {
                None
            } else {
                let mbps: f64 = fields[3]
                    .parse()
                    .map_err(|e| format!("line {}: bad rate: {e}", lineno + 1))?;
                if !mbps.is_finite() || mbps <= 0.0 {
                    return Err(format!("line {}: rate must be positive", lineno + 1));
                }
                Some((mbps * 1e6) as u64)
            };
            segments.push(LinkSegment {
                start: SimTime::from_micros(t_us),
                delay: SimDuration::from_micros(delay_us),
                loss_rate,
                rate_bps,
            });
        }
        LinkProfile::new(segments)
    }

    /// Serializes the profile back into the trace format accepted by
    /// [`LinkProfile::parse_trace`].
    pub fn to_trace(&self) -> String {
        let mut out = String::from("# t_us delay_us loss rate_mbps\n");
        for seg in &self.segments {
            let rate = match seg.rate_bps {
                Some(bps) => format!("{}", bps as f64 / 1e6),
                None => "-".to_owned(),
            };
            out.push_str(&format!(
                "{} {} {} {}\n",
                seg.start.as_micros(),
                seg.delay.as_micros(),
                seg.loss_rate,
                rate
            ));
        }
        out
    }
}

/// A ground-truth window during which an adversarial condition is
/// active, as recorded by the generator that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// When the condition starts.
    pub start: SimTime,
    /// When the condition ends (exclusive).
    pub end: SimTime,
}

impl Episode {
    /// Whether `t` falls inside the episode, widened by `slack` on both
    /// sides — the matching tolerance the validation harness uses when
    /// scoring an alert timestamp against this window.
    pub fn contains_with_slack(&self, t: SimTime, slack: SimDuration) -> bool {
        let lo = self.start.as_nanos().saturating_sub(slack.as_nanos());
        let hi = self.end.as_nanos().saturating_add(slack.as_nanos());
        (lo..hi).contains(&t.as_nanos())
    }
}

/// Emits periodic episodes `[s, s+dwell)` starting at `warmup`, spaced
/// `period` apart, entirely inside `[0, run)`.
fn periodic_episodes(
    warmup: SimDuration,
    period: SimDuration,
    dwell: SimDuration,
    run: SimDuration,
) -> Vec<Episode> {
    assert!(dwell < period, "episodes must not overlap");
    let mut eps = Vec::new();
    let mut s = SimTime::ZERO + warmup;
    while (s + dwell).as_nanos() <= run.as_nanos() {
        eps.push(Episode {
            start: s,
            end: s + dwell,
        });
        s += period;
    }
    eps
}

/// Builds a delay-step schedule: `base` delay outside the episodes,
/// `elevated` delay inside them.
fn delay_step_profile(
    base: SimDuration,
    elevated: SimDuration,
    episodes: &[Episode],
) -> LinkProfile {
    let seg = |start: SimTime, delay: SimDuration| LinkSegment {
        start,
        delay,
        loss_rate: 0.0,
        rate_bps: None,
    };
    let mut segments = vec![seg(SimTime::ZERO, base)];
    for ep in episodes {
        segments.push(seg(ep.start, elevated));
        segments.push(seg(ep.end, base));
    }
    LinkProfile::new(segments).expect("generated schedule is valid")
}

/// LEO-handover delay steps: every `period` after `warmup` the
/// constellation hands the link to another satellite and one-way delay
/// jumps from `base` to `step_delay` for `dwell`. Returns the profile
/// and the exact handover windows.
pub fn leo_handover(
    base: SimDuration,
    step_delay: SimDuration,
    warmup: SimDuration,
    period: SimDuration,
    dwell: SimDuration,
    run: SimDuration,
) -> (LinkProfile, Vec<Episode>) {
    let episodes = periodic_episodes(warmup, period, dwell, run);
    (delay_step_profile(base, step_delay, &episodes), episodes)
}

/// Asymmetric-route delay skew: one direction of a link detours through
/// a longer route (`skewed` delay) during each episode while the reverse
/// direction keeps its base profile. Attach the returned profile to
/// *one* direction only.
pub fn asymmetric_skew(
    base: SimDuration,
    skewed: SimDuration,
    warmup: SimDuration,
    period: SimDuration,
    dwell: SimDuration,
    run: SimDuration,
) -> (LinkProfile, Vec<Episode>) {
    let episodes = periodic_episodes(warmup, period, dwell, run);
    (delay_step_profile(base, skewed, &episodes), episodes)
}

/// Congested-WAN rate dips: the link serializes at `base_rate_bps`
/// normally and collapses to `dip_rate_bps` during each episode, so
/// offered load queues behind the wire and receiver throughput dips.
pub fn congested_wan(
    delay: SimDuration,
    base_rate_bps: u64,
    dip_rate_bps: u64,
    warmup: SimDuration,
    period: SimDuration,
    dwell: SimDuration,
    run: SimDuration,
) -> (LinkProfile, Vec<Episode>) {
    assert!(
        base_rate_bps > 0 && dip_rate_bps > 0,
        "rates must be positive"
    );
    let episodes = periodic_episodes(warmup, period, dwell, run);
    let seg = |start: SimTime, rate: u64| LinkSegment {
        start,
        delay,
        loss_rate: 0.0,
        rate_bps: Some(rate),
    };
    let mut segments = vec![seg(SimTime::ZERO, base_rate_bps)];
    for ep in &episodes {
        segments.push(seg(ep.start, dip_rate_bps));
        segments.push(seg(ep.end, base_rate_bps));
    }
    (
        LinkProfile::new(segments).expect("generated schedule is valid"),
        episodes,
    )
}

/// Flapping link: the device at the receiving end of a link goes
/// administratively down for `downtime` every `period` after `warmup`.
/// Returns the `(when, down?)` schedule to feed
/// [`crate::world::World::schedule_device_down`] plus the outage
/// windows. Realized as scheduled events, flaps are deterministic at any
/// thread count.
pub fn flapping(
    warmup: SimDuration,
    period: SimDuration,
    downtime: SimDuration,
    run: SimDuration,
) -> (Vec<(SimTime, bool)>, Vec<Episode>) {
    let episodes = periodic_episodes(warmup, period, downtime, run);
    let schedule = episodes
        .iter()
        .flat_map(|ep| [(ep.start, true), (ep.end, false)])
        .collect();
    (schedule, episodes)
}

/// Bursty Gilbert–Elliott loss: a two-state Markov chain (good/bad)
/// advanced every `step`, with per-step transition probabilities
/// `p_enter_bad` and `p_exit_bad` and loss rate `loss_bad` while in the
/// bad state (lossless in the good state). The chain is expanded into an
/// explicit segment schedule at generation time using a [`SmallRng`]
/// seeded with `seed`, so the ground-truth bad windows are exact and the
/// replay is deterministic regardless of thread count. The chain starts
/// after `warmup` (good until then) and a final good segment closes the
/// schedule at `run`.
#[allow(clippy::too_many_arguments)] // a chain spec, not a call-site burden
pub fn gilbert_elliott(
    delay: SimDuration,
    loss_bad: f64,
    seed: u64,
    p_enter_bad: f64,
    p_exit_bad: f64,
    step: SimDuration,
    warmup: SimDuration,
    run: SimDuration,
) -> (LinkProfile, Vec<Episode>) {
    assert!(step.as_nanos() > 0, "step must be positive");
    assert!((0.0..=1.0).contains(&loss_bad), "loss_bad outside [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let seg = |start: SimTime, loss: f64| LinkSegment {
        start,
        delay,
        loss_rate: loss,
        rate_bps: None,
    };
    let mut segments = vec![seg(SimTime::ZERO, 0.0)];
    let mut episodes = Vec::new();
    let mut bad = false;
    let mut bad_since = SimTime::ZERO;
    let mut t = SimTime::ZERO + warmup;
    while t.as_nanos() < run.as_nanos() {
        let flip = if bad {
            rng.gen_bool(p_exit_bad)
        } else {
            rng.gen_bool(p_enter_bad)
        };
        if flip {
            bad = !bad;
            if bad {
                bad_since = t;
                segments.push(seg(t, loss_bad));
            } else {
                episodes.push(Episode {
                    start: bad_since,
                    end: t,
                });
                segments.push(seg(t, 0.0));
            }
        }
        t += step;
    }
    if bad {
        episodes.push(Episode {
            start: bad_since,
            end: t,
        });
        segments.push(seg(t, 0.0));
    }
    (
        LinkProfile::new(segments).expect("generated schedule is valid"),
        episodes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn segment_lookup_and_min_delay() {
        let p = LinkProfile::new(vec![
            LinkSegment {
                start: SimTime::ZERO,
                delay: us(30),
                loss_rate: 0.0,
                rate_bps: None,
            },
            LinkSegment {
                start: SimTime::from_micros(100),
                delay: us(5),
                loss_rate: 0.5,
                rate_bps: Some(1_000_000),
            },
        ])
        .unwrap();
        assert_eq!(p.segment_at(SimTime::ZERO).delay, us(30));
        assert_eq!(p.segment_at(SimTime::from_micros(99)).delay, us(30));
        assert_eq!(p.segment_at(SimTime::from_micros(100)).delay, us(5));
        assert_eq!(p.segment_at(SimTime::from_secs(1)).loss_rate, 0.5);
        assert_eq!(p.min_delay(), us(5));
    }

    #[test]
    fn validation_rejects_bad_schedules() {
        assert!(LinkProfile::new(vec![]).is_err(), "empty");
        let seg = |start_us: u64, loss: f64| LinkSegment {
            start: SimTime::from_micros(start_us),
            delay: us(1),
            loss_rate: loss,
            rate_bps: None,
        };
        assert!(
            LinkProfile::new(vec![seg(5, 0.0)]).is_err(),
            "must start at zero"
        );
        assert!(
            LinkProfile::new(vec![seg(0, 0.0), seg(0, 0.0)]).is_err(),
            "strictly increasing starts"
        );
        assert!(LinkProfile::new(vec![seg(0, 1.5)]).is_err(), "loss > 1");
        assert!(LinkProfile::new(vec![seg(0, -0.1)]).is_err(), "loss < 0");
    }

    #[test]
    fn trace_format_round_trips() {
        let (p, _) = congested_wan(
            us(30),
            100_000_000,
            500_000,
            SimDuration::from_millis(20),
            SimDuration::from_millis(60),
            SimDuration::from_millis(20),
            SimDuration::from_millis(200),
        );
        let text = p.to_trace();
        let back = LinkProfile::parse_trace(&text).unwrap();
        assert_eq!(p, back, "trace serialization round-trips:\n{text}");
    }

    #[test]
    fn parse_trace_rejects_garbage() {
        assert!(LinkProfile::parse_trace("0 30").is_err(), "short line");
        assert!(LinkProfile::parse_trace("x 30 0 -").is_err(), "bad time");
        assert!(LinkProfile::parse_trace("0 30 0 0").is_err(), "zero rate");
        assert!(
            LinkProfile::parse_trace("# only comments").is_err(),
            "empty"
        );
    }

    #[test]
    fn leo_handover_episodes_match_profile_steps() {
        let (p, eps) = leo_handover(
            us(30),
            us(300),
            SimDuration::from_millis(20),
            SimDuration::from_millis(60),
            SimDuration::from_millis(20),
            SimDuration::from_millis(200),
        );
        assert_eq!(eps.len(), 3);
        for ep in &eps {
            assert_eq!(p.segment_at(ep.start).delay, us(300));
            assert_eq!(p.segment_at(ep.end).delay, us(30));
        }
        assert_eq!(p.min_delay(), us(30));
    }

    #[test]
    fn flapping_schedule_pairs_with_episodes() {
        let (sched, eps) = flapping(
            SimDuration::from_millis(10),
            SimDuration::from_millis(40),
            SimDuration::from_millis(10),
            SimDuration::from_millis(100),
        );
        // Episodes at 10, 50 and 90ms; the last ends exactly at the run
        // bound and still counts.
        assert_eq!(eps.len(), 3);
        assert_eq!(sched.len(), 6);
        assert_eq!(sched[0], (SimTime::from_millis(10), true));
        assert_eq!(sched[1], (SimTime::from_millis(20), false));
    }

    #[test]
    fn gilbert_elliott_is_seed_deterministic() {
        let args = (
            us(30),
            0.5,
            99u64,
            0.2,
            0.4,
            SimDuration::from_millis(5),
            SimDuration::from_millis(20),
            SimDuration::from_millis(400),
        );
        let (p1, e1) = gilbert_elliott(
            args.0, args.1, args.2, args.3, args.4, args.5, args.6, args.7,
        );
        let (p2, e2) = gilbert_elliott(
            args.0, args.1, args.2, args.3, args.4, args.5, args.6, args.7,
        );
        assert_eq!(p1, p2);
        assert_eq!(e1, e2);
        assert!(!e1.is_empty(), "chain must enter the bad state");
        for ep in &e1 {
            assert_eq!(p1.segment_at(ep.start).loss_rate, 0.5);
            assert!(ep.end > ep.start);
            assert!(ep.start.as_nanos() >= SimDuration::from_millis(20).as_nanos());
        }
    }

    #[test]
    fn episode_slack_matching() {
        let ep = Episode {
            start: SimTime::from_millis(10),
            end: SimTime::from_millis(20),
        };
        let slack = SimDuration::from_millis(2);
        assert!(ep.contains_with_slack(SimTime::from_millis(9), slack));
        assert!(ep.contains_with_slack(SimTime::from_millis(21), slack));
        assert!(!ep.contains_with_slack(SimTime::from_millis(7), slack));
        assert!(!ep.contains_with_slack(SimTime::from_millis(23), slack));
    }
}
