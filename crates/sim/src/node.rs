//! Nodes (physical machines) and their clocks.

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;
use crate::time::SimTime;

/// A per-node monotonic clock, possibly skewed relative to simulation
/// ground truth.
///
/// Real machines' `CLOCK_MONOTONIC` sources differ by an offset (they booted
/// at different times) and a small frequency error (drift). vNetTracer
/// measures the *relative* skew between nodes with Cristian's algorithm
/// (paper §III-B, Fig. 4); this clock model is what makes that measurement
/// meaningful in the simulator.
///
/// # Examples
///
/// ```
/// use vnet_sim::node::NodeClock;
/// use vnet_sim::time::SimTime;
///
/// let clock = NodeClock::with_offset_ns(1_000);
/// assert_eq!(clock.monotonic_ns(SimTime::from_nanos(500)), 1_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeClock {
    /// Offset added to ground-truth time, in nanoseconds.
    offset_ns: i64,
    /// Frequency error in parts per million.
    drift_ppm: f64,
}

impl Default for NodeClock {
    fn default() -> Self {
        NodeClock {
            offset_ns: 0,
            drift_ppm: 0.0,
        }
    }
}

impl NodeClock {
    /// A perfectly synchronised clock.
    pub fn perfect() -> Self {
        Self::default()
    }

    /// A clock whose monotonic reading leads ground truth by `offset_ns`
    /// (negative values lag).
    pub fn with_offset_ns(offset_ns: i64) -> Self {
        NodeClock {
            offset_ns,
            drift_ppm: 0.0,
        }
    }

    /// A clock with both an offset and a frequency error in ppm.
    pub fn with_offset_and_drift(offset_ns: i64, drift_ppm: f64) -> Self {
        NodeClock {
            offset_ns,
            drift_ppm,
        }
    }

    /// The node's `CLOCK_MONOTONIC` reading at ground-truth instant `t`,
    /// in nanoseconds. Saturates at zero rather than going negative.
    pub fn monotonic_ns(&self, t: SimTime) -> u64 {
        let base = t.as_nanos() as i64;
        let drift = (t.as_nanos() as f64 * self.drift_ppm / 1e6) as i64;
        (base + self.offset_ns + drift).max(0) as u64
    }

    /// The configured offset in nanoseconds.
    pub fn offset_ns(&self) -> i64 {
        self.offset_ns
    }

    /// The configured drift in ppm.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }
}

/// A physical machine in the simulated world.
#[derive(Debug)]
pub struct Node {
    /// The node's id.
    pub id: NodeId,
    /// Human-readable name (e.g. `"server1"`).
    pub name: String,
    /// Number of physical CPUs.
    pub num_cpus: u16,
    /// The node's monotonic clock.
    pub clock: NodeClock,
}

impl Node {
    /// Creates a node description.
    pub fn new(id: NodeId, name: impl Into<String>, num_cpus: u16, clock: NodeClock) -> Self {
        Node {
            id,
            name: name.into(),
            num_cpus,
            clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_tracks_ground_truth() {
        let c = NodeClock::perfect();
        assert_eq!(c.monotonic_ns(SimTime::from_micros(5)), 5_000);
    }

    #[test]
    fn offset_applies() {
        let ahead = NodeClock::with_offset_ns(250);
        let behind = NodeClock::with_offset_ns(-250);
        let t = SimTime::from_nanos(1_000);
        assert_eq!(ahead.monotonic_ns(t), 1_250);
        assert_eq!(behind.monotonic_ns(t), 750);
    }

    #[test]
    fn negative_reading_saturates_to_zero() {
        let c = NodeClock::with_offset_ns(-1_000_000);
        assert_eq!(c.monotonic_ns(SimTime::from_nanos(10)), 0);
    }

    #[test]
    fn drift_accumulates_with_time() {
        // +100 ppm: 1 second of true time reads 100 microseconds long.
        let c = NodeClock::with_offset_and_drift(0, 100.0);
        assert_eq!(
            c.monotonic_ns(SimTime::from_secs(1)),
            1_000_000_000 + 100_000
        );
    }

    #[test]
    fn monotonicity_under_drift() {
        let c = NodeClock::with_offset_and_drift(37, -50.0);
        let mut last = 0;
        for ns in (0..2_000_000).step_by(10_000) {
            let v = c.monotonic_ns(SimTime::from_nanos(ns));
            assert!(v >= last, "clock must be monotonic");
            last = v;
        }
    }
}
